file(REMOVE_RECURSE
  "CMakeFiles/cmcc_fortran.dir/Ast.cpp.o"
  "CMakeFiles/cmcc_fortran.dir/Ast.cpp.o.d"
  "CMakeFiles/cmcc_fortran.dir/AstPrinter.cpp.o"
  "CMakeFiles/cmcc_fortran.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/cmcc_fortran.dir/Lexer.cpp.o"
  "CMakeFiles/cmcc_fortran.dir/Lexer.cpp.o.d"
  "CMakeFiles/cmcc_fortran.dir/Parser.cpp.o"
  "CMakeFiles/cmcc_fortran.dir/Parser.cpp.o.d"
  "CMakeFiles/cmcc_fortran.dir/Token.cpp.o"
  "CMakeFiles/cmcc_fortran.dir/Token.cpp.o.d"
  "libcmcc_fortran.a"
  "libcmcc_fortran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmcc_fortran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
