
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fortran/Ast.cpp" "src/fortran/CMakeFiles/cmcc_fortran.dir/Ast.cpp.o" "gcc" "src/fortran/CMakeFiles/cmcc_fortran.dir/Ast.cpp.o.d"
  "/root/repo/src/fortran/AstPrinter.cpp" "src/fortran/CMakeFiles/cmcc_fortran.dir/AstPrinter.cpp.o" "gcc" "src/fortran/CMakeFiles/cmcc_fortran.dir/AstPrinter.cpp.o.d"
  "/root/repo/src/fortran/Lexer.cpp" "src/fortran/CMakeFiles/cmcc_fortran.dir/Lexer.cpp.o" "gcc" "src/fortran/CMakeFiles/cmcc_fortran.dir/Lexer.cpp.o.d"
  "/root/repo/src/fortran/Parser.cpp" "src/fortran/CMakeFiles/cmcc_fortran.dir/Parser.cpp.o" "gcc" "src/fortran/CMakeFiles/cmcc_fortran.dir/Parser.cpp.o.d"
  "/root/repo/src/fortran/Token.cpp" "src/fortran/CMakeFiles/cmcc_fortran.dir/Token.cpp.o" "gcc" "src/fortran/CMakeFiles/cmcc_fortran.dir/Token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cmcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
