file(REMOVE_RECURSE
  "libcmcc_fortran.a"
)
