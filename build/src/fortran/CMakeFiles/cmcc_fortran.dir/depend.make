# Empty dependencies file for cmcc_fortran.
# This may be replaced when dependencies are built.
