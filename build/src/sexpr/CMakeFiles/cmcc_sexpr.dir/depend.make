# Empty dependencies file for cmcc_sexpr.
# This may be replaced when dependencies are built.
