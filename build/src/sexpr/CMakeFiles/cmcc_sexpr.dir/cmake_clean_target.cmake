file(REMOVE_RECURSE
  "libcmcc_sexpr.a"
)
