file(REMOVE_RECURSE
  "CMakeFiles/cmcc_sexpr.dir/DefStencil.cpp.o"
  "CMakeFiles/cmcc_sexpr.dir/DefStencil.cpp.o.d"
  "CMakeFiles/cmcc_sexpr.dir/SExpr.cpp.o"
  "CMakeFiles/cmcc_sexpr.dir/SExpr.cpp.o.d"
  "libcmcc_sexpr.a"
  "libcmcc_sexpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmcc_sexpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
