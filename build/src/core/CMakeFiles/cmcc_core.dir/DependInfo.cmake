
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Compiler.cpp" "src/core/CMakeFiles/cmcc_core.dir/Compiler.cpp.o" "gcc" "src/core/CMakeFiles/cmcc_core.dir/Compiler.cpp.o.d"
  "/root/repo/src/core/Multistencil.cpp" "src/core/CMakeFiles/cmcc_core.dir/Multistencil.cpp.o" "gcc" "src/core/CMakeFiles/cmcc_core.dir/Multistencil.cpp.o.d"
  "/root/repo/src/core/RegisterAllocation.cpp" "src/core/CMakeFiles/cmcc_core.dir/RegisterAllocation.cpp.o" "gcc" "src/core/CMakeFiles/cmcc_core.dir/RegisterAllocation.cpp.o.d"
  "/root/repo/src/core/RingBufferPlan.cpp" "src/core/CMakeFiles/cmcc_core.dir/RingBufferPlan.cpp.o" "gcc" "src/core/CMakeFiles/cmcc_core.dir/RingBufferPlan.cpp.o.d"
  "/root/repo/src/core/Schedule.cpp" "src/core/CMakeFiles/cmcc_core.dir/Schedule.cpp.o" "gcc" "src/core/CMakeFiles/cmcc_core.dir/Schedule.cpp.o.d"
  "/root/repo/src/core/ScheduleIO.cpp" "src/core/CMakeFiles/cmcc_core.dir/ScheduleIO.cpp.o" "gcc" "src/core/CMakeFiles/cmcc_core.dir/ScheduleIO.cpp.o.d"
  "/root/repo/src/core/ScheduleStats.cpp" "src/core/CMakeFiles/cmcc_core.dir/ScheduleStats.cpp.o" "gcc" "src/core/CMakeFiles/cmcc_core.dir/ScheduleStats.cpp.o.d"
  "/root/repo/src/core/Verifier.cpp" "src/core/CMakeFiles/cmcc_core.dir/Verifier.cpp.o" "gcc" "src/core/CMakeFiles/cmcc_core.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stencil/CMakeFiles/cmcc_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/sexpr/CMakeFiles/cmcc_sexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/fortran/CMakeFiles/cmcc_fortran.dir/DependInfo.cmake"
  "/root/repo/build/src/cm2/CMakeFiles/cmcc_cm2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cmcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
