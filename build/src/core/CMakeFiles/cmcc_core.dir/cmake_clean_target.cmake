file(REMOVE_RECURSE
  "libcmcc_core.a"
)
