# Empty compiler generated dependencies file for cmcc_core.
# This may be replaced when dependencies are built.
