file(REMOVE_RECURSE
  "CMakeFiles/cmcc_core.dir/Compiler.cpp.o"
  "CMakeFiles/cmcc_core.dir/Compiler.cpp.o.d"
  "CMakeFiles/cmcc_core.dir/Multistencil.cpp.o"
  "CMakeFiles/cmcc_core.dir/Multistencil.cpp.o.d"
  "CMakeFiles/cmcc_core.dir/RegisterAllocation.cpp.o"
  "CMakeFiles/cmcc_core.dir/RegisterAllocation.cpp.o.d"
  "CMakeFiles/cmcc_core.dir/RingBufferPlan.cpp.o"
  "CMakeFiles/cmcc_core.dir/RingBufferPlan.cpp.o.d"
  "CMakeFiles/cmcc_core.dir/Schedule.cpp.o"
  "CMakeFiles/cmcc_core.dir/Schedule.cpp.o.d"
  "CMakeFiles/cmcc_core.dir/ScheduleIO.cpp.o"
  "CMakeFiles/cmcc_core.dir/ScheduleIO.cpp.o.d"
  "CMakeFiles/cmcc_core.dir/ScheduleStats.cpp.o"
  "CMakeFiles/cmcc_core.dir/ScheduleStats.cpp.o.d"
  "CMakeFiles/cmcc_core.dir/Verifier.cpp.o"
  "CMakeFiles/cmcc_core.dir/Verifier.cpp.o.d"
  "libcmcc_core.a"
  "libcmcc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmcc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
