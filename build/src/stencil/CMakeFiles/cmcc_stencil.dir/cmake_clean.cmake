file(REMOVE_RECURSE
  "CMakeFiles/cmcc_stencil.dir/PatternLibrary.cpp.o"
  "CMakeFiles/cmcc_stencil.dir/PatternLibrary.cpp.o.d"
  "CMakeFiles/cmcc_stencil.dir/Recognizer.cpp.o"
  "CMakeFiles/cmcc_stencil.dir/Recognizer.cpp.o.d"
  "CMakeFiles/cmcc_stencil.dir/Render.cpp.o"
  "CMakeFiles/cmcc_stencil.dir/Render.cpp.o.d"
  "CMakeFiles/cmcc_stencil.dir/StencilSpec.cpp.o"
  "CMakeFiles/cmcc_stencil.dir/StencilSpec.cpp.o.d"
  "libcmcc_stencil.a"
  "libcmcc_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmcc_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
