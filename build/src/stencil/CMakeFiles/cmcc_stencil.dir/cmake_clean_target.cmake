file(REMOVE_RECURSE
  "libcmcc_stencil.a"
)
