# Empty compiler generated dependencies file for cmcc_stencil.
# This may be replaced when dependencies are built.
