
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stencil/PatternLibrary.cpp" "src/stencil/CMakeFiles/cmcc_stencil.dir/PatternLibrary.cpp.o" "gcc" "src/stencil/CMakeFiles/cmcc_stencil.dir/PatternLibrary.cpp.o.d"
  "/root/repo/src/stencil/Recognizer.cpp" "src/stencil/CMakeFiles/cmcc_stencil.dir/Recognizer.cpp.o" "gcc" "src/stencil/CMakeFiles/cmcc_stencil.dir/Recognizer.cpp.o.d"
  "/root/repo/src/stencil/Render.cpp" "src/stencil/CMakeFiles/cmcc_stencil.dir/Render.cpp.o" "gcc" "src/stencil/CMakeFiles/cmcc_stencil.dir/Render.cpp.o.d"
  "/root/repo/src/stencil/StencilSpec.cpp" "src/stencil/CMakeFiles/cmcc_stencil.dir/StencilSpec.cpp.o" "gcc" "src/stencil/CMakeFiles/cmcc_stencil.dir/StencilSpec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fortran/CMakeFiles/cmcc_fortran.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cmcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
