# Empty compiler generated dependencies file for cmcc_cm2.
# This may be replaced when dependencies are built.
