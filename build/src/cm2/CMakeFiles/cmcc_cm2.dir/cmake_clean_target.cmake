file(REMOVE_RECURSE
  "libcmcc_cm2.a"
)
