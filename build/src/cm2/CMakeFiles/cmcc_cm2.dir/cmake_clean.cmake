file(REMOVE_RECURSE
  "CMakeFiles/cmcc_cm2.dir/FloatingPointUnit.cpp.o"
  "CMakeFiles/cmcc_cm2.dir/FloatingPointUnit.cpp.o.d"
  "CMakeFiles/cmcc_cm2.dir/GridComm.cpp.o"
  "CMakeFiles/cmcc_cm2.dir/GridComm.cpp.o.d"
  "CMakeFiles/cmcc_cm2.dir/Instruction.cpp.o"
  "CMakeFiles/cmcc_cm2.dir/Instruction.cpp.o.d"
  "CMakeFiles/cmcc_cm2.dir/MachineConfig.cpp.o"
  "CMakeFiles/cmcc_cm2.dir/MachineConfig.cpp.o.d"
  "CMakeFiles/cmcc_cm2.dir/NodeGrid.cpp.o"
  "CMakeFiles/cmcc_cm2.dir/NodeGrid.cpp.o.d"
  "CMakeFiles/cmcc_cm2.dir/Sequencer.cpp.o"
  "CMakeFiles/cmcc_cm2.dir/Sequencer.cpp.o.d"
  "CMakeFiles/cmcc_cm2.dir/Timing.cpp.o"
  "CMakeFiles/cmcc_cm2.dir/Timing.cpp.o.d"
  "libcmcc_cm2.a"
  "libcmcc_cm2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmcc_cm2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
