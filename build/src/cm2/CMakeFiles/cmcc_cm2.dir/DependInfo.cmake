
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cm2/FloatingPointUnit.cpp" "src/cm2/CMakeFiles/cmcc_cm2.dir/FloatingPointUnit.cpp.o" "gcc" "src/cm2/CMakeFiles/cmcc_cm2.dir/FloatingPointUnit.cpp.o.d"
  "/root/repo/src/cm2/GridComm.cpp" "src/cm2/CMakeFiles/cmcc_cm2.dir/GridComm.cpp.o" "gcc" "src/cm2/CMakeFiles/cmcc_cm2.dir/GridComm.cpp.o.d"
  "/root/repo/src/cm2/Instruction.cpp" "src/cm2/CMakeFiles/cmcc_cm2.dir/Instruction.cpp.o" "gcc" "src/cm2/CMakeFiles/cmcc_cm2.dir/Instruction.cpp.o.d"
  "/root/repo/src/cm2/MachineConfig.cpp" "src/cm2/CMakeFiles/cmcc_cm2.dir/MachineConfig.cpp.o" "gcc" "src/cm2/CMakeFiles/cmcc_cm2.dir/MachineConfig.cpp.o.d"
  "/root/repo/src/cm2/NodeGrid.cpp" "src/cm2/CMakeFiles/cmcc_cm2.dir/NodeGrid.cpp.o" "gcc" "src/cm2/CMakeFiles/cmcc_cm2.dir/NodeGrid.cpp.o.d"
  "/root/repo/src/cm2/Sequencer.cpp" "src/cm2/CMakeFiles/cmcc_cm2.dir/Sequencer.cpp.o" "gcc" "src/cm2/CMakeFiles/cmcc_cm2.dir/Sequencer.cpp.o.d"
  "/root/repo/src/cm2/Timing.cpp" "src/cm2/CMakeFiles/cmcc_cm2.dir/Timing.cpp.o" "gcc" "src/cm2/CMakeFiles/cmcc_cm2.dir/Timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cmcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
