file(REMOVE_RECURSE
  "CMakeFiles/cmcc_baseline.dir/FixedLibrary.cpp.o"
  "CMakeFiles/cmcc_baseline.dir/FixedLibrary.cpp.o.d"
  "CMakeFiles/cmcc_baseline.dir/VectorUnitModel.cpp.o"
  "CMakeFiles/cmcc_baseline.dir/VectorUnitModel.cpp.o.d"
  "libcmcc_baseline.a"
  "libcmcc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmcc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
