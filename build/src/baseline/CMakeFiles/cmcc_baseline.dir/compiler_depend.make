# Empty compiler generated dependencies file for cmcc_baseline.
# This may be replaced when dependencies are built.
