file(REMOVE_RECURSE
  "libcmcc_baseline.a"
)
