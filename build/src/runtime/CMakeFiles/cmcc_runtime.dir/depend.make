# Empty dependencies file for cmcc_runtime.
# This may be replaced when dependencies are built.
