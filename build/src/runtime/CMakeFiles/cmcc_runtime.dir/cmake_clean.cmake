file(REMOVE_RECURSE
  "CMakeFiles/cmcc_runtime.dir/Array2D.cpp.o"
  "CMakeFiles/cmcc_runtime.dir/Array2D.cpp.o.d"
  "CMakeFiles/cmcc_runtime.dir/DistributedArray.cpp.o"
  "CMakeFiles/cmcc_runtime.dir/DistributedArray.cpp.o.d"
  "CMakeFiles/cmcc_runtime.dir/Executor.cpp.o"
  "CMakeFiles/cmcc_runtime.dir/Executor.cpp.o.d"
  "CMakeFiles/cmcc_runtime.dir/HaloExchange.cpp.o"
  "CMakeFiles/cmcc_runtime.dir/HaloExchange.cpp.o.d"
  "CMakeFiles/cmcc_runtime.dir/Reference.cpp.o"
  "CMakeFiles/cmcc_runtime.dir/Reference.cpp.o.d"
  "CMakeFiles/cmcc_runtime.dir/StripMiner.cpp.o"
  "CMakeFiles/cmcc_runtime.dir/StripMiner.cpp.o.d"
  "CMakeFiles/cmcc_runtime.dir/Volume.cpp.o"
  "CMakeFiles/cmcc_runtime.dir/Volume.cpp.o.d"
  "libcmcc_runtime.a"
  "libcmcc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmcc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
