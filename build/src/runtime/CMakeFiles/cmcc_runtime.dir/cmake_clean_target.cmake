file(REMOVE_RECURSE
  "libcmcc_runtime.a"
)
