
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Array2D.cpp" "src/runtime/CMakeFiles/cmcc_runtime.dir/Array2D.cpp.o" "gcc" "src/runtime/CMakeFiles/cmcc_runtime.dir/Array2D.cpp.o.d"
  "/root/repo/src/runtime/DistributedArray.cpp" "src/runtime/CMakeFiles/cmcc_runtime.dir/DistributedArray.cpp.o" "gcc" "src/runtime/CMakeFiles/cmcc_runtime.dir/DistributedArray.cpp.o.d"
  "/root/repo/src/runtime/Executor.cpp" "src/runtime/CMakeFiles/cmcc_runtime.dir/Executor.cpp.o" "gcc" "src/runtime/CMakeFiles/cmcc_runtime.dir/Executor.cpp.o.d"
  "/root/repo/src/runtime/HaloExchange.cpp" "src/runtime/CMakeFiles/cmcc_runtime.dir/HaloExchange.cpp.o" "gcc" "src/runtime/CMakeFiles/cmcc_runtime.dir/HaloExchange.cpp.o.d"
  "/root/repo/src/runtime/Reference.cpp" "src/runtime/CMakeFiles/cmcc_runtime.dir/Reference.cpp.o" "gcc" "src/runtime/CMakeFiles/cmcc_runtime.dir/Reference.cpp.o.d"
  "/root/repo/src/runtime/StripMiner.cpp" "src/runtime/CMakeFiles/cmcc_runtime.dir/StripMiner.cpp.o" "gcc" "src/runtime/CMakeFiles/cmcc_runtime.dir/StripMiner.cpp.o.d"
  "/root/repo/src/runtime/Volume.cpp" "src/runtime/CMakeFiles/cmcc_runtime.dir/Volume.cpp.o" "gcc" "src/runtime/CMakeFiles/cmcc_runtime.dir/Volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cmcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cm2/CMakeFiles/cmcc_cm2.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/cmcc_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cmcc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sexpr/CMakeFiles/cmcc_sexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/fortran/CMakeFiles/cmcc_fortran.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
