file(REMOVE_RECURSE
  "libcmcc_support.a"
)
