# Empty dependencies file for cmcc_support.
# This may be replaced when dependencies are built.
