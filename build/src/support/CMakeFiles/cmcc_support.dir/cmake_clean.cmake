file(REMOVE_RECURSE
  "CMakeFiles/cmcc_support.dir/Diagnostic.cpp.o"
  "CMakeFiles/cmcc_support.dir/Diagnostic.cpp.o.d"
  "CMakeFiles/cmcc_support.dir/Error.cpp.o"
  "CMakeFiles/cmcc_support.dir/Error.cpp.o.d"
  "CMakeFiles/cmcc_support.dir/StringUtils.cpp.o"
  "CMakeFiles/cmcc_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/cmcc_support.dir/TextTable.cpp.o"
  "CMakeFiles/cmcc_support.dir/TextTable.cpp.o.d"
  "libcmcc_support.a"
  "libcmcc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmcc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
