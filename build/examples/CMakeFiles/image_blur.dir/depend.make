# Empty dependencies file for image_blur.
# This may be replaced when dependencies are built.
