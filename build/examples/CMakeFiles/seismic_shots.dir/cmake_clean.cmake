file(REMOVE_RECURSE
  "CMakeFiles/seismic_shots.dir/seismic_shots.cpp.o"
  "CMakeFiles/seismic_shots.dir/seismic_shots.cpp.o.d"
  "seismic_shots"
  "seismic_shots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seismic_shots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
