# Empty dependencies file for seismic_shots.
# This may be replaced when dependencies are built.
