file(REMOVE_RECURSE
  "CMakeFiles/seismic.dir/seismic.cpp.o"
  "CMakeFiles/seismic.dir/seismic.cpp.o.d"
  "seismic"
  "seismic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seismic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
