# Empty compiler generated dependencies file for seismic.
# This may be replaced when dependencies are built.
