# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cmccc_inline_estimate "/root/repo/build/tools/cmccc" "-e" "R = C1*CSHIFT(X,1,-1) + C2*X" "--estimate" "--dump-stencil")
set_tests_properties(cmccc_inline_estimate PROPERTIES  PASS_REGULAR_EXPRESSION "measured Mflops" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cmccc_rejects_bad_statement "/root/repo/build/tools/cmccc" "-e" "R = X * X")
set_tests_properties(cmccc_rejects_bad_statement PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cmccc_multi_source_flag "/root/repo/build/tools/cmccc" "--multi-source" "--machine=2048" "-e" "R = C1*CSHIFT(U,1,-1) + C2*U - 1.0*UPREV" "--estimate")
set_tests_properties(cmccc_multi_source_flag PROPERTIES  PASS_REGULAR_EXPRESSION "sources:    2" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cmccc_dump_schedule "/root/repo/build/tools/cmccc" "-e" "R = 0.5*CSHIFT(X,2,1) + 0.5*X" "--dump-schedule" "--dump-multistencil")
set_tests_properties(cmccc_dump_schedule PROPERTIES  PASS_REGULAR_EXPRESSION "madd" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cmccc_unknown_option "/root/repo/build/tools/cmccc" "--bogus")
set_tests_properties(cmccc_unknown_option PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cmccc_emit_and_reload "sh" "-c" "/root/repo/build/tools/cmccc -e 'R = C1*CSHIFT(X,1,-1) + C2*X' --emit=emit_test.cmccode --quiet && /root/repo/build/tools/cmccc emit_test.cmccode --estimate | grep -q 'measured Mflops'")
set_tests_properties(cmccc_emit_and_reload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cmccc_file_fortran "/root/repo/build/tools/cmccc" "/root/repo/examples/stencils/cross.f90" "--dump-stencil" "--estimate")
set_tests_properties(cmccc_file_fortran PROPERTIES  PASS_REGULAR_EXPRESSION "widths:     8 4 2 1" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;34;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cmccc_file_diamond "/root/repo/build/tools/cmccc" "/root/repo/examples/stencils/diamond.f90" "--stats")
set_tests_properties(cmccc_file_diamond PROPERTIES  PASS_REGULAR_EXPRESSION "unroll 15" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;40;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cmccc_file_lisp "/root/repo/build/tools/cmccc" "/root/repo/examples/stencils/cross.lisp" "--quiet" "--estimate")
set_tests_properties(cmccc_file_lisp PROPERTIES  PASS_REGULAR_EXPRESSION "measured Mflops" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;45;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cmccc_file_fused "/root/repo/build/tools/cmccc" "/root/repo/examples/stencils/seismic_fused.f90" "--multi-source")
set_tests_properties(cmccc_file_fused PROPERTIES  PASS_REGULAR_EXPRESSION "sources:    2" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;51;add_test;/root/repo/tools/CMakeLists.txt;0;")
