file(REMOVE_RECURSE
  "CMakeFiles/cmccc.dir/cmccc.cpp.o"
  "CMakeFiles/cmccc.dir/cmccc.cpp.o.d"
  "cmccc"
  "cmccc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmccc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
