# Empty compiler generated dependencies file for cmccc.
# This may be replaced when dependencies are built.
