# Empty dependencies file for multistencil_test.
# This may be replaced when dependencies are built.
