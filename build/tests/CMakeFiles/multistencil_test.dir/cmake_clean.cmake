file(REMOVE_RECURSE
  "CMakeFiles/multistencil_test.dir/multistencil_test.cpp.o"
  "CMakeFiles/multistencil_test.dir/multistencil_test.cpp.o.d"
  "multistencil_test"
  "multistencil_test.pdb"
  "multistencil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistencil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
