
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/parser_test.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/parser_test.dir/parser_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/cmcc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cmcc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cmcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cm2/CMakeFiles/cmcc_cm2.dir/DependInfo.cmake"
  "/root/repo/build/src/stencil/CMakeFiles/cmcc_stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/sexpr/CMakeFiles/cmcc_sexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/fortran/CMakeFiles/cmcc_fortran.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cmcc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
