file(REMOVE_RECURSE
  "CMakeFiles/directive_test.dir/directive_test.cpp.o"
  "CMakeFiles/directive_test.dir/directive_test.cpp.o.d"
  "directive_test"
  "directive_test.pdb"
  "directive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
