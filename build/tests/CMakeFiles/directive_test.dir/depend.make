# Empty dependencies file for directive_test.
# This may be replaced when dependencies are built.
