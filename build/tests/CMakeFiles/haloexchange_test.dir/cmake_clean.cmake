file(REMOVE_RECURSE
  "CMakeFiles/haloexchange_test.dir/haloexchange_test.cpp.o"
  "CMakeFiles/haloexchange_test.dir/haloexchange_test.cpp.o.d"
  "haloexchange_test"
  "haloexchange_test.pdb"
  "haloexchange_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haloexchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
