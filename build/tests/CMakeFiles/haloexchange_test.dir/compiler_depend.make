# Empty compiler generated dependencies file for haloexchange_test.
# This may be replaced when dependencies are built.
