file(REMOVE_RECURSE
  "CMakeFiles/scheduleio_test.dir/scheduleio_test.cpp.o"
  "CMakeFiles/scheduleio_test.dir/scheduleio_test.cpp.o.d"
  "scheduleio_test"
  "scheduleio_test.pdb"
  "scheduleio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduleio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
