# Empty dependencies file for scheduleio_test.
# This may be replaced when dependencies are built.
