file(REMOVE_RECURSE
  "CMakeFiles/cm2_test.dir/cm2_test.cpp.o"
  "CMakeFiles/cm2_test.dir/cm2_test.cpp.o.d"
  "cm2_test"
  "cm2_test.pdb"
  "cm2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
