# Empty compiler generated dependencies file for cm2_test.
# This may be replaced when dependencies are built.
