file(REMOVE_RECURSE
  "CMakeFiles/frontend_robustness_test.dir/frontend_robustness_test.cpp.o"
  "CMakeFiles/frontend_robustness_test.dir/frontend_robustness_test.cpp.o.d"
  "frontend_robustness_test"
  "frontend_robustness_test.pdb"
  "frontend_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
