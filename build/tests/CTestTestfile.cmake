# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/recognizer_test[1]_include.cmake")
include("/root/repo/build/tests/multistencil_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/cm2_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/multisource_test[1]_include.cmake")
include("/root/repo/build/tests/volume_test[1]_include.cmake")
include("/root/repo/build/tests/directive_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/haloexchange_test[1]_include.cmake")
include("/root/repo/build/tests/scheduleio_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
