# Empty compiler generated dependencies file for bench_seismic.
# This may be replaced when dependencies are built.
