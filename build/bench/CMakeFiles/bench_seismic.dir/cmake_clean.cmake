file(REMOVE_RECURSE
  "CMakeFiles/bench_seismic.dir/bench_seismic.cpp.o"
  "CMakeFiles/bench_seismic.dir/bench_seismic.cpp.o.d"
  "bench_seismic"
  "bench_seismic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seismic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
