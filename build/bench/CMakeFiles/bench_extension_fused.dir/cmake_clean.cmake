file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_fused.dir/bench_extension_fused.cpp.o"
  "CMakeFiles/bench_extension_fused.dir/bench_extension_fused.cpp.o.d"
  "bench_extension_fused"
  "bench_extension_fused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
