# Empty compiler generated dependencies file for bench_extension_fused.
# This may be replaced when dependencies are built.
