file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_strips.dir/bench_ablation_strips.cpp.o"
  "CMakeFiles/bench_ablation_strips.dir/bench_ablation_strips.cpp.o.d"
  "bench_ablation_strips"
  "bench_ablation_strips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_strips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
