# Empty compiler generated dependencies file for bench_ablation_strips.
# This may be replaced when dependencies are built.
