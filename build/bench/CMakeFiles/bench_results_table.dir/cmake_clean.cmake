file(REMOVE_RECURSE
  "CMakeFiles/bench_results_table.dir/bench_results_table.cpp.o"
  "CMakeFiles/bench_results_table.dir/bench_results_table.cpp.o.d"
  "bench_results_table"
  "bench_results_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_results_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
