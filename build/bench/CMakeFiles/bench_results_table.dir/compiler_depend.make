# Empty compiler generated dependencies file for bench_results_table.
# This may be replaced when dependencies are built.
