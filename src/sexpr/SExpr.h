//===- sexpr/SExpr.h - S-expression reader ---------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small S-expression reader for the paper's version-1 front end, which
/// was prototyped in Lucid Common Lisp and processed (defstencil ...)
/// forms. Atoms are symbols (upper-cased, Lisp-style) or numbers; lists
/// are parenthesized. ';' starts a comment.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SEXPR_SEXPR_H
#define CMCC_SEXPR_SEXPR_H

#include "support/Diagnostic.h"
#include "support/SourceLocation.h"
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cmcc {
namespace sexpr {

/// One node of a parsed S-expression tree.
struct SExpr {
  enum class Kind { Symbol, Number, List };

  Kind TheKind = Kind::List;
  SourceLocation Location;
  std::string Symbol;           ///< Valid for Symbol (upper-cased).
  double Number = 0.0;          ///< Valid for Number.
  std::vector<SExpr> Elements;  ///< Valid for List.

  bool isSymbol() const { return TheKind == Kind::Symbol; }
  bool isSymbol(std::string_view Name) const;
  bool isNumber() const { return TheKind == Kind::Number; }
  bool isList() const { return TheKind == Kind::List; }
  size_t size() const { return Elements.size(); }
  const SExpr &operator[](size_t I) const { return Elements[I]; }

  /// Renders back to text (canonical spacing).
  std::string str() const;
};

/// Reads every top-level form in \p Source. Errors go to \p Diags and
/// yield std::nullopt.
std::optional<std::vector<SExpr>> readAll(std::string_view Source,
                                          DiagnosticEngine &Diags);

/// Reads exactly one top-level form.
std::optional<SExpr> readOne(std::string_view Source,
                             DiagnosticEngine &Diags);

} // namespace sexpr
} // namespace cmcc

#endif // CMCC_SEXPR_SEXPR_H
