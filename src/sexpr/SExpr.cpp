//===- sexpr/SExpr.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "sexpr/SExpr.h"
#include "support/StringUtils.h"
#include <cctype>
#include <cstdlib>

using namespace cmcc;
using namespace cmcc::sexpr;

bool SExpr::isSymbol(std::string_view Name) const {
  return isSymbol() && equalsInsensitive(Symbol, Name);
}

std::string SExpr::str() const {
  switch (TheKind) {
  case Kind::Symbol:
    return toLower(Symbol);
  case Kind::Number: {
    if (Number == static_cast<long>(Number))
      return std::to_string(static_cast<long>(Number));
    return formatFixed(Number, 6);
  }
  case Kind::List: {
    std::string Out = "(";
    for (size_t I = 0; I != Elements.size(); ++I) {
      if (I != 0)
        Out += ' ';
      Out += Elements[I].str();
    }
    Out += ')';
    return Out;
  }
  }
  return "";
}

namespace {

/// Tokenizing reader over one buffer.
class Reader {
public:
  Reader(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  std::optional<SExpr> readForm();
  void skipSpace();
  bool atEnd() {
    skipSpace();
    return Pos >= Source.size();
  }
  SourceLocation here() const { return {Line, Column}; }

private:
  char peek() const { return Pos < Source.size() ? Source[Pos] : '\0'; }
  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

void Reader::skipSpace() {
  while (Pos < Source.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == ';') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }
}

/// True for characters that can appear in a Lisp atom in this subset.
static bool isAtomChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '-' ||
         C == '+' || C == '_' || C == '*' || C == ':' || C == '=' ||
         C == '.' || C == '/' || C == '<' || C == '>' || C == '?';
}

std::optional<SExpr> Reader::readForm() {
  skipSpace();
  if (Pos >= Source.size()) {
    Diags.error(here(), "unexpected end of input");
    return std::nullopt;
  }
  SourceLocation Loc = here();
  char C = peek();
  if (C == '(') {
    advance();
    SExpr List;
    List.TheKind = SExpr::Kind::List;
    List.Location = Loc;
    while (true) {
      skipSpace();
      if (Pos >= Source.size()) {
        Diags.error(Loc, "unterminated list");
        return std::nullopt;
      }
      if (peek() == ')') {
        advance();
        return List;
      }
      std::optional<SExpr> Element = readForm();
      if (!Element)
        return std::nullopt;
      List.Elements.push_back(std::move(*Element));
    }
  }
  if (C == ')') {
    Diags.error(Loc, "unmatched ')'");
    advance();
    return std::nullopt;
  }

  // Atom.
  std::string Text;
  while (Pos < Source.size() && isAtomChar(peek()))
    Text.push_back(advance());
  if (Text.empty()) {
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    advance();
    return std::nullopt;
  }

  // A number if it parses fully as one.
  char *End = nullptr;
  double Value = std::strtod(Text.c_str(), &End);
  if (End && *End == '\0' && End != Text.c_str()) {
    SExpr Num;
    Num.TheKind = SExpr::Kind::Number;
    Num.Location = Loc;
    Num.Number = Value;
    return Num;
  }

  SExpr Sym;
  Sym.TheKind = SExpr::Kind::Symbol;
  Sym.Location = Loc;
  Sym.Symbol = toUpper(Text);
  return Sym;
}

} // namespace

std::optional<std::vector<SExpr>>
cmcc::sexpr::readAll(std::string_view Source, DiagnosticEngine &Diags) {
  Reader R(Source, Diags);
  std::vector<SExpr> Forms;
  while (!R.atEnd()) {
    std::optional<SExpr> Form = R.readForm();
    if (!Form)
      return std::nullopt;
    Forms.push_back(std::move(*Form));
  }
  return Forms;
}

std::optional<SExpr> cmcc::sexpr::readOne(std::string_view Source,
                                          DiagnosticEngine &Diags) {
  std::optional<std::vector<SExpr>> Forms = readAll(Source, Diags);
  if (!Forms)
    return std::nullopt;
  if (Forms->size() != 1) {
    Diags.error({1, 1}, "expected exactly one form, found " +
                            std::to_string(Forms->size()));
    return std::nullopt;
  }
  return std::move(Forms->front());
}
