//===- sexpr/DefStencil.h - The Lisp defstencil front end -----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translator for the paper's version-1 front end, which processed Lisp
/// definitions such as
///
/// \code
///   (defstencil cross (r x c1 c2 c3 c4 c5)
///     (single-float single-float)
///     (:= r (+ (* c1 (cshift x 1 -1))
///              (* c2 (cshift x 2 -1))
///              (* c3 x)
///              (* c4 (cshift x 2 +1))
///              (* c5 (cshift x 1 +1)))))
/// \endcode
///
/// The form is lowered to the same Fortran AST the version-2 front end
/// produces and run through the shared Recognizer, so both front ends
/// feed one compilation pipeline (as in the paper, where the microcode
/// and compilation algorithms were shared).
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SEXPR_DEFSTENCIL_H
#define CMCC_SEXPR_DEFSTENCIL_H

#include "sexpr/SExpr.h"
#include "stencil/StencilSpec.h"
#include <optional>
#include <string>
#include <vector>

namespace cmcc {
namespace sexpr {

/// A translated (defstencil ...) form.
struct DefStencil {
  std::string Name;
  std::vector<std::string> Parameters;
  StencilSpec Spec;
};

/// Translates one (defstencil ...) form.
std::optional<DefStencil> translateDefStencil(const SExpr &Form,
                                              DiagnosticEngine &Diags);

/// Reads and translates \p Source, which must contain one defstencil.
std::optional<DefStencil> defStencilFromSource(std::string_view Source,
                                               DiagnosticEngine &Diags);

} // namespace sexpr
} // namespace cmcc

#endif // CMCC_SEXPR_DEFSTENCIL_H
