//===- sexpr/DefStencil.cpp -----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "sexpr/DefStencil.h"
#include "fortran/Ast.h"
#include "stencil/Recognizer.h"
#include "support/StringUtils.h"

using namespace cmcc;
using namespace cmcc::sexpr;
namespace ft = cmcc::fortran;

namespace {

/// Lowers a defstencil expression to the shared Fortran AST.
class ExprLowering {
public:
  explicit ExprLowering(DiagnosticEngine &Diags) : Diags(Diags) {}

  ft::ExprPtr lower(const SExpr &E);

private:
  ft::ExprPtr lowerCall(const SExpr &E);
  ft::ExprPtr fail(const SExpr &E, std::string Message) {
    Diags.error(E.Location, std::move(Message));
    return nullptr;
  }

  DiagnosticEngine &Diags;
};

ft::ExprPtr ExprLowering::lower(const SExpr &E) {
  if (E.isNumber())
    return std::make_unique<ft::RealLiteralExpr>(E.Location, E.Number);
  if (E.isSymbol())
    return std::make_unique<ft::ArrayNameExpr>(E.Location, E.Symbol);
  if (E.isList())
    return lowerCall(E);
  return fail(E, "unsupported expression form");
}

ft::ExprPtr ExprLowering::lowerCall(const SExpr &E) {
  if (E.size() == 0 || !E[0].isSymbol())
    return fail(E, "expected an operator form");
  const std::string &Op = E[0].Symbol;

  if (Op == "+" || Op == "-") {
    if (E.size() < 2)
      return fail(E, "'" + Op + "' needs at least one operand");
    // Unary minus.
    if (Op == "-" && E.size() == 2) {
      ft::ExprPtr Inner = lower(E[1]);
      if (!Inner)
        return nullptr;
      return std::make_unique<ft::UnaryExpr>(
          E.Location, ft::UnaryExpr::Op::Minus, std::move(Inner));
    }
    ft::ExprPtr Acc = lower(E[1]);
    if (!Acc)
      return nullptr;
    for (size_t I = 2; I != E.size(); ++I) {
      ft::ExprPtr Next = lower(E[I]);
      if (!Next)
        return nullptr;
      ft::BinaryExpr::Op BOp =
          Op == "+" ? ft::BinaryExpr::Op::Add : ft::BinaryExpr::Op::Sub;
      Acc = std::make_unique<ft::BinaryExpr>(E.Location, BOp, std::move(Acc),
                                             std::move(Next));
    }
    return Acc;
  }

  if (Op == "*") {
    if (E.size() != 3)
      return fail(E, "'*' takes exactly two operands in the recognized "
                     "stencil form");
    ft::ExprPtr L = lower(E[1]);
    ft::ExprPtr R = lower(E[2]);
    if (!L || !R)
      return nullptr;
    return std::make_unique<ft::BinaryExpr>(
        E.Location, ft::BinaryExpr::Op::Mul, std::move(L), std::move(R));
  }

  if (Op == "CSHIFT" || Op == "EOSHIFT") {
    if (E.size() != 4 || !E[2].isNumber() || !E[3].isNumber())
      return fail(E, "(" + toLower(Op) + " x dim shift) expects an array "
                                         "expression and two integers");
    ft::ExprPtr Array = lower(E[1]);
    if (!Array)
      return nullptr;
    int Dim = static_cast<int>(E[2].Number);
    int Shift = static_cast<int>(E[3].Number);
    if (Dim != 1 && Dim != 2)
      return fail(E[2], "DIM must be 1 or 2");
    ft::ShiftCallExpr::ShiftKind Kind =
        Op == "CSHIFT" ? ft::ShiftCallExpr::ShiftKind::Circular
                       : ft::ShiftCallExpr::ShiftKind::EndOff;
    return std::make_unique<ft::ShiftCallExpr>(E.Location, Kind,
                                               std::move(Array), Dim, Shift);
  }

  return fail(E[0], "unknown operator '" + toLower(Op) + "'");
}

} // namespace

std::optional<DefStencil>
cmcc::sexpr::translateDefStencil(const SExpr &Form, DiagnosticEngine &Diags) {
  if (!Form.isList() || Form.size() < 4 || !Form[0].isSymbol("DEFSTENCIL")) {
    Diags.error(Form.Location, "expected (defstencil name (params) (types) "
                               "(:= result expr))");
    return std::nullopt;
  }
  if (!Form[1].isSymbol()) {
    Diags.error(Form[1].Location, "defstencil name must be a symbol");
    return std::nullopt;
  }

  DefStencil Def;
  Def.Name = Form[1].Symbol;

  if (!Form[2].isList()) {
    Diags.error(Form[2].Location, "defstencil parameter list must be a list");
    return std::nullopt;
  }
  for (const SExpr &P : Form[2].Elements) {
    if (!P.isSymbol()) {
      Diags.error(P.Location, "parameter names must be symbols");
      return std::nullopt;
    }
    Def.Parameters.push_back(P.Symbol);
  }

  // Form[3] is the type list, e.g. (single-float single-float). The
  // prototype only handled single precision; accept and ignore it, but
  // reject anything that is plainly not a type list.
  const SExpr *Body = nullptr;
  if (Form[3].isList() && Form[3].size() > 0 && Form[3][0].isSymbol(":=")) {
    Body = &Form[3]; // Types omitted.
  } else if (Form.size() >= 5 && Form[4].isList() && Form[4].size() > 0 &&
             Form[4][0].isSymbol(":=")) {
    Body = &Form[4];
  } else {
    Diags.error(Form.Location, "defstencil body (:= result expr) not found");
    return std::nullopt;
  }
  if (Body->size() != 3 || !(*Body)[1].isSymbol()) {
    Diags.error(Body->Location, "body must be (:= result expr)");
    return std::nullopt;
  }

  ExprLowering Lowering(Diags);
  ft::ExprPtr Value = Lowering.lower((*Body)[2]);
  if (!Value)
    return std::nullopt;

  ft::AssignmentStmt Stmt;
  Stmt.Location = Body->Location;
  Stmt.Target = (*Body)[1].Symbol;
  Stmt.Value = std::move(Value);

  Recognizer R(Diags);
  std::optional<StencilSpec> Spec = R.recognize(Stmt);
  if (!Spec)
    return std::nullopt;
  Def.Spec = std::move(*Spec);
  return Def;
}

std::optional<DefStencil>
cmcc::sexpr::defStencilFromSource(std::string_view Source,
                                  DiagnosticEngine &Diags) {
  std::optional<SExpr> Form = readOne(Source, Diags);
  if (!Form)
    return std::nullopt;
  return translateDefStencil(*Form, Diags);
}
