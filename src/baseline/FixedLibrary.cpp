//===- baseline/FixedLibrary.cpp ------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "baseline/FixedLibrary.h"
#include "core/Compiler.h"
#include "runtime/Executor.h"
#include "stencil/PatternLibrary.h"
#include <cmath>

using namespace cmcc;

Expected<TimingReport>
cmcc::fixedLibraryReport(const MachineConfig &Config, int SubRows,
                         int SubCols, int Iterations,
                         const FixedLibraryCosts &Costs) {
  // The library's one routine: the nine-point cross of the 1989 seismic
  // code, at its fixed width, with less tuned sequencer timing.
  MachineConfig Library = Config;
  Library.SequencerCyclesPerOp *= Costs.SequencerFactor;

  ConvolutionCompiler CC(Library);
  Expected<CompiledStencil> Compiled =
      CC.compile(makePattern(PatternId::Cross9R2));
  if (!Compiled)
    return Compiled.error();
  if (!Compiled->withWidth(Costs.FixedWidth))
    return makeError("the fixed library's width-" +
                     std::to_string(Costs.FixedWidth) +
                     " plan does not fit this machine");

  Executor::Options Opts;
  Opts.ForceWidth = Costs.FixedWidth;
  Opts.Primitive = CommPrimitive::LegacyNews; // Pre-1991 grid primitives.
  Opts.Mode = Executor::FunctionalMode::None;
  Executor Exec(Library, Opts);

  TimingReport Report;
  Report.Cycles = Exec.analyticCycles(*Compiled, SubRows, SubCols);
  Report.Iterations = Iterations;
  Report.Nodes = Library.nodeCount();
  Report.ClockMHz = Library.ClockMHz;
  Report.HostSecondsPerIteration =
      Exec.hostSecondsPerIteration(*Compiled, SubCols);
  Report.UsefulFlopsPerNodePerIteration =
      static_cast<long>(Compiled->Spec.usefulFlopsPerPoint()) * SubRows *
      SubCols;
  return Report;
}
