//===- baseline/VectorUnitModel.cpp ---------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "baseline/VectorUnitModel.h"
#include <cmath>
#include <cstdlib>

using namespace cmcc;

TimingReport cmcc::vectorUnitStencilReport(const MachineConfig &Config,
                                           const StencilSpec &Spec,
                                           int SubRows, int SubCols,
                                           int Iterations,
                                           const VectorUnitCosts &Costs) {
  const long Elements = static_cast<long>(SubRows) * SubCols;
  double Cycles = 0.0;
  long Passes = 0;

  bool First = true;
  for (const Tap &T : Spec.Taps) {
    if (T.HasData) {
      // One one-step grid shift per unit of Manhattan distance.
      int Steps = std::abs(T.At.Dy) + std::abs(T.At.Dx);
      if (Steps > 0)
        Cycles += Steps * (Costs.ShiftStartupCycles +
                           Costs.ShiftCyclesPerElementPerStep * Elements);
      // Multiply pass: T = C * shifted.
      Cycles += Costs.PassStartupCycles +
                Costs.CyclesPerElementPerPass * Elements;
      ++Passes;
    }
    // Accumulate pass: R = R + T (the first term is just an assignment,
    // folded into its multiply pass).
    if (!First) {
      Cycles += Costs.PassStartupCycles +
                Costs.CyclesPerElementPerPass * Elements;
      ++Passes;
    }
    First = false;
  }

  TimingReport Report;
  Report.Cycles.Compute = static_cast<long>(std::llround(Cycles));
  Report.Iterations = Iterations;
  Report.Nodes = Config.nodeCount();
  Report.ClockMHz = Config.ClockMHz;
  // One host dispatch per elementwise pass (the stock compiler drives
  // each full-array operation from the front end).
  Report.HostSecondsPerIteration =
      (Config.HostOverheadUsPerCall +
       Passes * Config.HostOverheadUsPerStrip) *
      1e-6;
  Report.UsefulFlopsPerNodePerIteration =
      static_cast<long>(Spec.usefulFlopsPerPoint()) * Elements;
  return Report;
}

TimingReport cmcc::vectorUnitCopyReport(const MachineConfig &Config,
                                        int SubRows, int SubCols,
                                        int Iterations,
                                        const VectorUnitCosts &Costs) {
  const long Elements = static_cast<long>(SubRows) * SubCols;
  TimingReport Report;
  Report.Cycles.Compute = static_cast<long>(std::llround(
      Costs.PassStartupCycles + Costs.CyclesPerElementPerPass * Elements));
  Report.Iterations = Iterations;
  Report.Nodes = Config.nodeCount();
  Report.ClockMHz = Config.ClockMHz;
  Report.HostSecondsPerIteration =
      (Config.HostOverheadUsPerCall + Config.HostOverheadUsPerStrip) * 1e-6;
  Report.UsefulFlopsPerNodePerIteration = 0; // Copies do no useful flops.
  return Report;
}
