//===- baseline/VectorUnitModel.h - Stock slicewise codegen ---*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A model of what the stock CM Fortran compiler (slicewise model, §3)
/// does with a stencil assignment: each CSHIFT becomes a full-array grid
/// communication into a temporary, and each multiply and add becomes a
/// separate full-array elementwise pass through the vector unit (vectors
/// of length 4, seven vector registers — no cross-statement register
/// reuse). The paper quotes this framework at "around 4 gigaflops"; the
/// convolution compiler's entire contribution is the gap between this
/// baseline and >10 Gflops.
///
/// The model is also used for the pointwise fix-up statements of the
/// seismic application (the separately-added tenth term and the
/// time-step copies).
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_BASELINE_VECTORUNITMODEL_H
#define CMCC_BASELINE_VECTORUNITMODEL_H

#include "cm2/MachineConfig.h"
#include "cm2/Timing.h"
#include "stencil/StencilSpec.h"

namespace cmcc {

/// Cost parameters of the stock code generator (calibrated once; see
/// DESIGN.md §2).
struct VectorUnitCosts {
  /// Cycles per element per elementwise pass (load/load/op/store through
  /// the vector pipeline).
  double CyclesPerElementPerPass = 2.0;
  /// Fixed start-up per elementwise pass.
  int PassStartupCycles = 120;
  /// Cycles per element per unit of shift distance (the old NEWS-style
  /// grid primitive moves the whole array one step per call).
  double ShiftCyclesPerElementPerStep = 2.0;
  /// Fixed start-up per one-step shift call.
  int ShiftStartupCycles = 350;
};

/// Timing of one stencil assignment compiled by the stock slicewise code
/// generator on \p Config, for per-node subgrids of SubRows x SubCols.
/// The numerical result is by definition the reference evaluation, so no
/// functional path is needed.
TimingReport vectorUnitStencilReport(const MachineConfig &Config,
                                     const StencilSpec &Spec, int SubRows,
                                     int SubCols, int Iterations,
                                     const VectorUnitCosts &Costs = {});

/// Timing of a whole-array copy "A = B" under the stock code generator
/// (used by the rolled seismic main loop).
TimingReport vectorUnitCopyReport(const MachineConfig &Config, int SubRows,
                                  int SubCols, int Iterations,
                                  const VectorUnitCosts &Costs = {});

} // namespace cmcc

#endif // CMCC_BASELINE_VECTORUNITMODEL_H
