//===- baseline/FixedLibrary.h - The 1989 hand-coded routine --*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A model of the hand-crafted library routines behind the 1989 Gordon
/// Bell run (5.6 Gflops): the same chained multiply-add inner-loop idea,
/// but as a *fixed* routine — one preselected pattern (the nine-point
/// cross), a fixed multistencil width of 4, the pre-existing
/// one-direction grid primitives, and somewhat less tuned sequencer code.
/// The convolution compiler of the paper generalizes this library (any
/// pattern, any width that fits) and improves the communication, which
/// is exactly the gap the baseline benchmark B1 shows.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_BASELINE_FIXEDLIBRARY_H
#define CMCC_BASELINE_FIXEDLIBRARY_H

#include "cm2/MachineConfig.h"
#include "cm2/Timing.h"
#include "support/Error.h"

namespace cmcc {

/// Parameters of the 1989 library model.
struct FixedLibraryCosts {
  /// The hand-written 1989 sequencer code issued dynamic parts less
  /// tightly than the 1991 microcode (relative factor; calibrated so
  /// the library's nine-point cross lands at its published 5.6 Gflops —
  /// the paper "generalized and improved" these very techniques).
  double SequencerFactor = 1.76;
  /// The library supported only this multistencil width.
  int FixedWidth = 4;
};

/// Timing of the 1989 fixed library applied to its nine-point cross on
/// \p Config. Fails if the machine cannot hold the width-4 plan.
Expected<TimingReport> fixedLibraryReport(const MachineConfig &Config,
                                          int SubRows, int SubCols,
                                          int Iterations,
                                          const FixedLibraryCosts &Costs = {});

} // namespace cmcc

#endif // CMCC_BASELINE_FIXEDLIBRARY_H
