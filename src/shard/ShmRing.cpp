//===- shard/ShmRing.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "shard/ShmRing.h"
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>

#include <sys/mman.h>
#include <unistd.h>

using namespace cmcc;
using namespace cmcc::shard;

namespace {
constexpr uint64_t RingMagic = 0x434D434352494E47ull; // "CMCCRING"
} // namespace

/// One direction's progress counters. Head and Tail count bytes ever
/// written/read (monotonic, wrapping modulo capacity only at the data
/// indexing step), on separate cache lines so the two sides' updates
/// do not bounce.
struct ShmRing::Region {
  alignas(64) std::atomic<uint64_t> Head;
  alignas(64) std::atomic<uint64_t> Tail;
};

struct ShmRing::Header {
  uint64_t Magic;
  uint64_t Capacity;
  Region ToWorker;
  Region ToCoordinator;
};

static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "ring counters must be lock-free across processes");

ShmRing::~ShmRing() {
  if (Base)
    ::munmap(Base, MapBytes);
  if (OwnedFd >= 0)
    ::close(OwnedFd);
}

ShmRing::ShmRing(ShmRing &&O) noexcept
    : Base(O.Base), MapBytes(O.MapBytes), Capacity(O.Capacity),
      OwnedFd(O.OwnedFd), TimeoutMs(O.TimeoutMs) {
  O.Base = nullptr;
  O.OwnedFd = -1;
}

ShmRing &ShmRing::operator=(ShmRing &&O) noexcept {
  if (this != &O) {
    if (Base)
      ::munmap(Base, MapBytes);
    if (OwnedFd >= 0)
      ::close(OwnedFd);
    Base = O.Base;
    MapBytes = O.MapBytes;
    Capacity = O.Capacity;
    OwnedFd = O.OwnedFd;
    TimeoutMs = O.TimeoutMs;
    O.Base = nullptr;
    O.OwnedFd = -1;
  }
  return *this;
}

Expected<ShmRing> ShmRing::create(size_t RingBytes, long TimeoutMs) {
  if (RingBytes == 0)
    return makeError("shard ring capacity must be positive");
  const size_t Total = sizeof(Header) + 2 * RingBytes;

  int Fd = static_cast<int>(::memfd_create("cmcc-shard-ring", 0));
  if (Fd < 0) {
    // Fall back to an unlinked temporary file (same lifetime semantics:
    // the data exists only while mapped/open).
    char Path[] = "/tmp/cmcc-shard-ring-XXXXXX";
    Fd = ::mkstemp(Path);
    if (Fd < 0)
      return makeError("cannot create shard ring segment: " +
                       std::string(std::strerror(errno)));
    ::unlink(Path);
  }
  if (::ftruncate(Fd, static_cast<off_t>(Total)) != 0) {
    int E = errno;
    ::close(Fd);
    return makeError("cannot size shard ring segment: " +
                     std::string(std::strerror(E)));
  }
  void *Map =
      ::mmap(nullptr, Total, PROT_READ | PROT_WRITE, MAP_SHARED, Fd, 0);
  if (Map == MAP_FAILED) {
    int E = errno;
    ::close(Fd);
    return makeError("cannot map shard ring segment: " +
                     std::string(std::strerror(E)));
  }

  ShmRing R;
  R.Base = Map;
  R.MapBytes = Total;
  R.Capacity = RingBytes;
  R.OwnedFd = Fd;
  R.TimeoutMs = TimeoutMs;
  Header *H = new (Map) Header;
  H->Magic = RingMagic;
  H->Capacity = RingBytes;
  H->ToWorker.Head.store(0, std::memory_order_relaxed);
  H->ToWorker.Tail.store(0, std::memory_order_relaxed);
  H->ToCoordinator.Head.store(0, std::memory_order_relaxed);
  H->ToCoordinator.Tail.store(0, std::memory_order_relaxed);
  return R;
}

Expected<ShmRing> ShmRing::attach(int Fd, long TimeoutMs) {
  Header Probe;
  ssize_t N = ::pread(Fd, &Probe, sizeof(Probe), 0);
  if (N != static_cast<ssize_t>(sizeof(Probe)) || Probe.Magic != RingMagic)
    return makeError("shard ring fd does not hold a valid ring segment");
  const size_t Total = sizeof(Header) + 2 * Probe.Capacity;
  void *Map =
      ::mmap(nullptr, Total, PROT_READ | PROT_WRITE, MAP_SHARED, Fd, 0);
  if (Map == MAP_FAILED)
    return makeError("cannot map shard ring segment: " +
                     std::string(std::strerror(errno)));
  ShmRing R;
  R.Base = Map;
  R.MapBytes = Total;
  R.Capacity = Probe.Capacity;
  R.OwnedFd = -1;
  R.TimeoutMs = TimeoutMs;
  return R;
}

ShmRing::Region &ShmRing::region(RingDir Dir) const {
  Header *H = static_cast<Header *>(Base);
  return Dir == RingDir::ToWorker ? H->ToWorker : H->ToCoordinator;
}

uint8_t *ShmRing::data(RingDir Dir) const {
  uint8_t *D = static_cast<uint8_t *>(Base) + sizeof(Header);
  return Dir == RingDir::ToWorker ? D : D + Capacity;
}

namespace {

/// Progress wait: spin briefly, then sleep in short steps. The deadline
/// restarts on every byte of progress, so a slow peer is fine and only
/// a dead one times out.
class ProgressWaiter {
public:
  explicit ProgressWaiter(long TimeoutMs)
      : Deadline(std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(TimeoutMs)),
        TimeoutMs(TimeoutMs) {}

  void madeProgress() {
    Spins = 0;
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(TimeoutMs);
  }

  bool waitOnce() {
    if (std::chrono::steady_clock::now() >= Deadline)
      return false;
    if (++Spins < 1024)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    return true;
  }

private:
  std::chrono::steady_clock::time_point Deadline;
  long TimeoutMs;
  int Spins = 0;
};

} // namespace

Error ShmRing::write(RingDir Dir, const void *Src, size_t Len) {
  assert(valid() && "write on an unmapped ring");
  Region &R = region(Dir);
  uint8_t *D = data(Dir);
  const uint8_t *In = static_cast<const uint8_t *>(Src);
  size_t Done = 0;
  ProgressWaiter Waiter(TimeoutMs);
  while (Done != Len) {
    const uint64_t Head = R.Head.load(std::memory_order_relaxed);
    const uint64_t Tail = R.Tail.load(std::memory_order_acquire);
    const size_t Free = Capacity - static_cast<size_t>(Head - Tail);
    if (Free == 0) {
      if (!Waiter.waitOnce())
        return Error::transient("shard ring write timed out (peer gone?)");
      continue;
    }
    size_t Chunk = std::min(Free, Len - Done);
    const size_t At = static_cast<size_t>(Head % Capacity);
    const size_t ToEnd = Capacity - At;
    if (Chunk <= ToEnd) {
      std::memcpy(D + At, In + Done, Chunk);
    } else {
      std::memcpy(D + At, In + Done, ToEnd);
      std::memcpy(D, In + Done + ToEnd, Chunk - ToEnd);
    }
    R.Head.store(Head + Chunk, std::memory_order_release);
    Done += Chunk;
    Waiter.madeProgress();
  }
  return Error::success();
}

Error ShmRing::read(RingDir Dir, void *Dst, size_t Len) {
  assert(valid() && "read on an unmapped ring");
  Region &R = region(Dir);
  const uint8_t *D = data(Dir);
  uint8_t *Out = static_cast<uint8_t *>(Dst);
  size_t Done = 0;
  ProgressWaiter Waiter(TimeoutMs);
  while (Done != Len) {
    const uint64_t Tail = R.Tail.load(std::memory_order_relaxed);
    const uint64_t Head = R.Head.load(std::memory_order_acquire);
    const size_t Avail = static_cast<size_t>(Head - Tail);
    if (Avail == 0) {
      if (!Waiter.waitOnce())
        return Error::transient("shard ring read timed out (peer gone?)");
      continue;
    }
    size_t Chunk = std::min(Avail, Len - Done);
    const size_t At = static_cast<size_t>(Tail % Capacity);
    const size_t ToEnd = Capacity - At;
    if (Out) {
      if (Chunk <= ToEnd) {
        std::memcpy(Out + Done, D + At, Chunk);
      } else {
        std::memcpy(Out + Done, D + At, ToEnd);
        std::memcpy(Out + Done + ToEnd, D, Chunk - ToEnd);
      }
    }
    R.Tail.store(Tail + Chunk, std::memory_order_release);
    Done += Chunk;
    Waiter.madeProgress();
  }
  return Error::success();
}

Error ShmRing::discard(RingDir Dir, size_t Len) {
  return read(Dir, nullptr, Len);
}

long cmcc::shard::shardTimeoutMs() {
  if (const char *Env = std::getenv("CMCC_SHARD_TIMEOUT_MS")) {
    long V = std::strtol(Env, nullptr, 10);
    if (V > 0)
      return V;
  }
  return 120000;
}

size_t cmcc::shard::shardRingBytes() {
  if (const char *Env = std::getenv("CMCC_SHARD_RING_MB")) {
    long MB = std::strtol(Env, nullptr, 10);
    if (MB >= 1 && MB <= 1024)
      return static_cast<size_t>(MB) << 20;
  }
  return 8u << 20;
}
