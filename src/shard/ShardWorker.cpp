//===- shard/ShardWorker.cpp ----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "shard/ShardWorker.h"
#include "backends/Registry.h"
#include "core/ScheduleIO.h"
#include "obs/TraceContext.h"
#include "runtime/HaloTransport.h"
#include "runtime/Partition.h"
#include "shard/ShardProtocol.h"
#include "shard/ShmRing.h"
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace cmcc;
using namespace cmcc::shard;

namespace {

/// The worker's side of the transport seam: each exchange sends a
/// ShardHaloRequest frame, streams this shard's edge blocks through the
/// ToCoordinator ring, then blocks on the coordinator's response (the
/// relay) and reads the neighbors' blocks back from the ToWorker ring.
/// The coordinator answers every in-flight request each round — either
/// with blocks or with an abort ack when a sibling died — so a blocked
/// exchange always terminates.
class SocketTransport : public HaloTransport {
public:
  SocketTransport(int SocketFd, ShmRing &Ring)
      : SocketFd(SocketFd), Ring(Ring) {}

  Expected<HaloBlocks> exchange(int SourceIndex, HaloStep Step,
                                const HaloBlocks &Out) override {
    const auto Start = std::chrono::steady_clock::now();
    HaloMessage M;
    M.SourceIndex = static_cast<uint32_t>(SourceIndex);
    M.Step = static_cast<uint16_t>(Step);
    M.LowCount = Out.Low.size();
    M.HighCount = Out.High.size();
    if (Error E = sendFrame(SocketFd, net::MsgType::ShardHaloRequest,
                            ++RequestId, encodeHalo(M)))
      return E;
    if (Error E =
            Ring.writeFloats(RingDir::ToCoordinator, Out.Low.data(),
                             Out.Low.size()))
      return E;
    if (Error E = Ring.writeFloats(RingDir::ToCoordinator, Out.High.data(),
                                   Out.High.size()))
      return E;

    Expected<Frame> F = recvFrame(SocketFd);
    if (!F)
      return F.error();
    AckMessage Ack;
    if (F->Header.Type != net::MsgType::ShardHaloResponse ||
        !decodeAck(F->Payload, Ack))
      return Error::transient("shard worker: malformed halo response");
    if (!Ack.Ok)
      return Error::transient("shard exchange aborted: " + Ack.Message);

    HaloBlocks In;
    In.Low.resize(Ack.LowCount);
    In.High.resize(Ack.HighCount);
    if (Error E =
            Ring.readFloats(RingDir::ToWorker, In.Low.data(), In.Low.size()))
      return E;
    if (Error E = Ring.readFloats(RingDir::ToWorker, In.High.data(),
                                  In.High.size()))
      return E;
    WaitNs += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
    return In;
  }

  /// Nanoseconds spent inside exchange() since the last reset — the
  /// per-run blocked time the RunReply reports back.
  uint64_t WaitNs = 0;

private:
  int SocketFd;
  ShmRing &Ring;
  uint64_t RequestId = 0;
};

/// Everything one Init establishes. The Domain/Transport pointers handed
/// to the backend refer into this struct, so it lives on the heap at a
/// stable address for the worker's lifetime.
struct WorkerState {
  MachineConfig GlobalConfig;
  MachineConfig LocalConfig;
  PartitionDomain Domain;
  std::unique_ptr<SocketTransport> Transport;
  std::unique_ptr<const ExecutionBackend> Backend;
  /// Plans parsed (and re-verified) once, keyed by the coordinator's
  /// plan fingerprint.
  std::map<uint64_t, CompiledStencil> Plans;
  /// Local blocks of the scattered arrays, by coordinator slot id.
  std::map<uint32_t, std::unique_ptr<DistributedArray>> Slots;
};

Expected<WorkerState> initialize(const InitMessage &Init, int SocketFd,
                                 ShmRing &Ring) {
  Expected<ShardGrid> SG = makeShardGrid(Init.Config.NodeRows,
                                         Init.Config.NodeCols, Init.ShardRows,
                                         Init.ShardCols);
  if (!SG)
    return SG.error();
  if (Init.Shard < 0 || Init.Shard >= SG->count())
    return makeError("shard worker: shard id out of range");
  if (!isBackendName(Init.Backend))
    return unknownBackendError(Init.Backend);

  WorkerState State;
  State.GlobalConfig = Init.Config;
  State.Domain = shardDomain(*SG, Init.Shard, Init.Config.NodeRows,
                             Init.Config.NodeCols);
  State.LocalConfig = shardMachineConfig(Init.Config, State.Domain);
  State.Transport = std::make_unique<SocketTransport>(SocketFd, Ring);
  return State;
}

/// Completes initialize() once the state has its final address: the
/// backend captures pointers into \p State.
Error buildBackend(WorkerState &State, const InitMessage &Init) {
  Executor::Options Opts;
  Opts.Primitive = static_cast<CommPrimitive>(Init.Primitive);
  Opts.AllowCornerSkip = Init.AllowCornerSkip;
  Opts.UseHalfStrips = Init.UseHalfStrips;
  Opts.UseFastPath = Init.UseFastPath;
  Opts.ForceWidth = Init.ForceWidth;
  Opts.ThreadCount = Init.ThreadCount;
  Opts.Mode = Executor::FunctionalMode::AllNodes;
  Opts.Domain = &State.Domain;
  Opts.Transport = State.Transport.get();
  State.Backend = createBackend(Init.Backend, State.LocalConfig, Opts);
  if (!State.Backend)
    return unknownBackendError(Init.Backend);
  return Error::success();
}

Error sendAck(int Fd, net::MsgType Type, uint64_t RequestId,
              const AckMessage &Ack) {
  return sendFrame(Fd, Type, RequestId, encodeAck(Ack));
}

AckMessage errorAck(const Error &E) {
  AckMessage Ack;
  Ack.Ok = false;
  Ack.Transient = E.isTransient();
  Ack.Message = E.message();
  return Ack;
}

/// Streams one local array through the ring in local node-id order —
/// the scatter/gather order both sides agree on.
Error streamSubgrids(ShmRing &Ring, RingDir Dir, const DistributedArray &A,
                     bool Writing, DistributedArray *Dst) {
  const NodeGrid &Grid = A.grid();
  for (int Id = 0; Id < Grid.nodeCount(); ++Id) {
    const NodeCoord At = Grid.coordOf(Id);
    const size_t Count =
        static_cast<size_t>(A.subRows()) * static_cast<size_t>(A.subCols());
    if (Writing) {
      if (Error E = Ring.writeFloats(Dir, A.subgrid(At).data(), Count))
        return E;
    } else {
      if (Error E = Ring.readFloats(Dir, Dst->subgrid(At).data(), Count))
        return E;
    }
  }
  return Error::success();
}

} // namespace

int cmcc::shard::runShardWorker(int SocketFd, int ShmFd) {
  Expected<ShmRing> RingOrErr = ShmRing::attach(ShmFd, shardTimeoutMs());
  if (!RingOrErr)
    return 1;
  ShmRing Ring = RingOrErr.takeValue();

  std::unique_ptr<WorkerState> State;

  for (;;) {
    Expected<Frame> F = recvFrame(SocketFd);
    if (!F)
      return 0; // Coordinator gone (EOF): a worker has nothing to save.
    const net::MsgType Type = F->Header.Type;
    const uint64_t Req = F->Header.RequestId;

    switch (Type) {
    case net::MsgType::ShardInitRequest: {
      InitMessage Init;
      if (!decodeInit(F->Payload, Init)) {
        (void)sendAck(SocketFd, net::MsgType::ShardInitResponse, Req,
                      errorAck(makeError("malformed ShardInit payload")));
        break;
      }
      Expected<WorkerState> NewState = initialize(Init, SocketFd, Ring);
      if (!NewState) {
        (void)sendAck(SocketFd, net::MsgType::ShardInitResponse, Req,
                      errorAck(NewState.error()));
        break;
      }
      auto Fresh = std::make_unique<WorkerState>(NewState.takeValue());
      if (Error E = buildBackend(*Fresh, Init)) {
        (void)sendAck(SocketFd, net::MsgType::ShardInitResponse, Req,
                      errorAck(E));
        break;
      }
      State = std::move(Fresh);
      (void)sendAck(SocketFd, net::MsgType::ShardInitResponse, Req, {});
      break;
    }

    case net::MsgType::ShardPlanRequest: {
      PlanMessage M;
      if (!State || !decodePlan(F->Payload, M)) {
        (void)sendAck(SocketFd, net::MsgType::ShardPlanResponse, Req,
                      errorAck(makeError("ShardPlan before Init, or "
                                         "malformed payload")));
        break;
      }
      // Parse against the *global* machine: schedule re-verification
      // (register budgets, pipeline model) is grid-independent, and the
      // global config is the one the plan was compiled for.
      Expected<CompiledStencil> Plan =
          parseCompiledStencil(M.Text, State->GlobalConfig);
      if (!Plan) {
        (void)sendAck(SocketFd, net::MsgType::ShardPlanResponse, Req,
                      errorAck(Plan.error()));
        break;
      }
      State->Plans.insert_or_assign(M.Fingerprint, Plan.takeValue());
      (void)sendAck(SocketFd, net::MsgType::ShardPlanResponse, Req, {});
      break;
    }

    case net::MsgType::ShardDataRequest: {
      DataMessage M;
      if (!State || !decodeData(F->Payload, M)) {
        (void)sendAck(SocketFd, net::MsgType::ShardDataResponse, Req,
                      errorAck(makeError("ShardData before Init, or "
                                         "malformed payload")));
        break;
      }
      const uint64_t Expect = static_cast<uint64_t>(State->Domain
                                                        .localNodeCount()) *
                              static_cast<uint64_t>(M.SubRows) *
                              static_cast<uint64_t>(M.SubCols);
      if (M.SubRows <= 0 || M.SubCols <= 0 || M.FloatCount != Expect) {
        // The floats are already committed to the ring; drain them so
        // the stream stays aligned for the next message.
        (void)Ring.discard(RingDir::ToWorker,
                           static_cast<size_t>(M.FloatCount) * sizeof(float));
        (void)sendAck(SocketFd, net::MsgType::ShardDataResponse, Req,
                      errorAck(makeError("ShardData shape/count mismatch")));
        break;
      }
      NodeGrid LocalGrid(State->LocalConfig);
      auto A = std::make_unique<DistributedArray>(LocalGrid, M.SubRows,
                                                  M.SubCols);
      if (Error E = streamSubgrids(Ring, RingDir::ToWorker, *A,
                                   /*Writing=*/false, A.get())) {
        (void)sendAck(SocketFd, net::MsgType::ShardDataResponse, Req,
                      errorAck(E));
        break;
      }
      State->Slots.insert_or_assign(M.Slot, std::move(A));
      (void)sendAck(SocketFd, net::MsgType::ShardDataResponse, Req, {});
      break;
    }

    case net::MsgType::ShardRunRequest: {
      RunMessage M;
      RunReply Reply;
      if (!State || !decodeRun(F->Payload, M)) {
        Reply.Ok = false;
        Reply.Message = "ShardRun before Init, or malformed payload";
        (void)sendFrame(SocketFd, net::MsgType::ShardRunResponse, Req,
                        encodeRunReply(Reply));
        break;
      }
      auto PlanIt = State->Plans.find(M.Fingerprint);
      ResolvedStencilArguments Resolved;
      std::unique_ptr<DistributedArray> Result;
      Error Setup = Error::success();
      if (PlanIt == State->Plans.end()) {
        Setup = makeError("ShardRun names an unknown plan fingerprint");
      } else if (M.SourceSlots.size() !=
                     static_cast<size_t>(PlanIt->second.Spec.sourceCount()) ||
                 M.TapSlots.size() != PlanIt->second.Spec.Taps.size()) {
        Setup = makeError("ShardRun slot lists do not match the plan");
      } else if (M.SubRows <= 0 || M.SubCols <= 0) {
        Setup = makeError("ShardRun result shape is invalid");
      } else {
        NodeGrid LocalGrid(State->LocalConfig);
        Result = std::make_unique<DistributedArray>(LocalGrid, M.SubRows,
                                                    M.SubCols);
        Resolved.Result = Result.get();
        for (uint32_t Slot : M.SourceSlots) {
          auto It = State->Slots.find(Slot);
          if (It == State->Slots.end()) {
            Setup = makeError("ShardRun source slot was never scattered");
            break;
          }
          Resolved.Sources.push_back(It->second.get());
        }
        if (!Setup)
          for (int64_t Slot : M.TapSlots) {
            if (Slot < 0) {
              Resolved.TapCoefficients.push_back(nullptr);
              continue;
            }
            auto It = State->Slots.find(static_cast<uint32_t>(Slot));
            if (It == State->Slots.end()) {
              Setup = makeError("ShardRun tap slot was never scattered");
              break;
            }
            Resolved.TapCoefficients.push_back(It->second.get());
          }
      }
      if (Setup) {
        Reply.Ok = false;
        Reply.Transient = Setup.isTransient();
        Reply.Message = Setup.message();
        (void)sendFrame(SocketFd, net::MsgType::ShardRunResponse, Req,
                        encodeRunReply(Reply));
        break;
      }

      // Execute under the job's trace so every worker's spans join the
      // coordinator's timeline.
      obs::ScopedTraceContext TraceScope(M.TraceId, M.ParentSpan);
      State->Transport->WaitNs = 0;
      RunOptions RO;
      RO.Iterations = M.Iterations;
      RO.TimeTile = M.TimeTile;
      Expected<TimingReport> R =
          State->Backend->runResolved(PlanIt->second, Resolved, RO);
      if (!R) {
        Reply.Ok = false;
        Reply.Transient = R.error().isTransient();
        Reply.Message = R.error().message();
        (void)sendFrame(SocketFd, net::MsgType::ShardRunResponse, Req,
                        encodeRunReply(Reply));
        break;
      }
      Reply.Report = *R;
      Reply.ExchangeWaitNs = State->Transport->WaitNs;
      if (Error E = sendFrame(SocketFd, net::MsgType::ShardRunResponse, Req,
                              encodeRunReply(Reply)))
        return 0;
      if (Error E = streamSubgrids(Ring, RingDir::ToCoordinator, *Result,
                                   /*Writing=*/true, nullptr))
        return 0;
      break;
    }

    case net::MsgType::ShardShutdownRequest:
      (void)sendAck(SocketFd, net::MsgType::ShardShutdownResponse, Req, {});
      return 0;

    default:
      // An unexpected type on the private pair means the two sides have
      // desynchronized; nothing on this socket can be trusted anymore.
      return 1;
    }
  }
}
