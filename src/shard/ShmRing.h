//===- shard/ShmRing.h - Shared-memory bulk-data rings --------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bulk-data path between a shard coordinator and one worker
/// process: a shared-memory segment holding two single-producer /
/// single-consumer byte rings, one per direction. Control frames (the
/// Shard* messages in net/Wire.h) travel over the socketpair; float
/// payloads — scattered subgrids, halo edge blocks, gathered results —
/// stream through here, so a halo row never pays a copy through the
/// kernel socket buffers.
///
/// A transfer is announced by a frame first (which carries the byte
/// count), then streamed: the writer fills the ring as space frees and
/// the reader drains as data arrives, both sides pumping concurrently.
/// That makes payloads larger than the ring capacity safe by
/// construction — neither side ever waits for the whole payload to fit.
/// Progress waits are bounded by a deadline (CMCC_SHARD_TIMEOUT_MS, or
/// the configured default); a worker that dies mid-transfer surfaces as
/// a timeout, which the coordinator converts into a transient error.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SHARD_SHMRING_H
#define CMCC_SHARD_SHMRING_H

#include "support/Error.h"
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace cmcc {
namespace shard {

/// Which of the two rings a transfer uses, named by direction.
enum class RingDir {
  ToWorker,      ///< Coordinator writes, worker reads.
  ToCoordinator, ///< Worker writes, coordinator reads.
};

/// One mapped segment with both rings. Create on the coordinator side
/// (a memfd, passed to the worker as an inherited fd), attach on the
/// worker side. Each ring is SPSC: exactly one process writes ToWorker
/// (the coordinator) and one reads it (the worker), and vice versa, so
/// the head/tail counters need only acquire/release ordering.
class ShmRing {
public:
  ShmRing() = default;
  ~ShmRing();
  ShmRing(ShmRing &&O) noexcept;
  ShmRing &operator=(ShmRing &&O) noexcept;
  ShmRing(const ShmRing &) = delete;
  ShmRing &operator=(const ShmRing &) = delete;

  /// Allocates and maps a fresh segment whose rings each hold
  /// \p RingBytes. Uses memfd_create, falling back to an unlinked
  /// temporary file; either way the segment lives exactly as long as
  /// the mappings.
  static Expected<ShmRing> create(size_t RingBytes, long TimeoutMs);

  /// Maps the segment behind an inherited \p Fd (validates the header).
  /// Does not take ownership of the fd.
  static Expected<ShmRing> attach(int Fd, long TimeoutMs);

  /// The fd to hand to a spawned worker (-1 when attached or empty).
  int fd() const { return OwnedFd; }

  bool valid() const { return Base != nullptr; }

  /// Streams \p Len bytes into \p Dir, blocking as needed for space.
  /// Fails (transiently) if no progress beats the deadline.
  Error write(RingDir Dir, const void *Data, size_t Len);

  /// Streams \p Len bytes out of \p Dir, blocking as needed for data.
  Error read(RingDir Dir, void *Data, size_t Len);

  /// Float-array conveniences over write/read.
  Error writeFloats(RingDir Dir, const float *Data, size_t Count) {
    return write(Dir, Data, Count * sizeof(float));
  }
  Error readFloats(RingDir Dir, float *Data, size_t Count) {
    return read(Dir, Data, Count * sizeof(float));
  }

  /// Reads and discards \p Len bytes (abort paths drain announced
  /// payloads so the ring stays clean for the next run).
  Error discard(RingDir Dir, size_t Len);

private:
  struct Region;
  struct Header;
  Region &region(RingDir Dir) const;
  uint8_t *data(RingDir Dir) const;

  void *Base = nullptr;
  size_t MapBytes = 0;
  size_t Capacity = 0;
  int OwnedFd = -1;
  long TimeoutMs = 120000;
};

/// The timeout every shard-side blocking operation uses:
/// CMCC_SHARD_TIMEOUT_MS from the environment, else 120000.
long shardTimeoutMs();

/// The per-direction ring capacity: CMCC_SHARD_RING_MB from the
/// environment (clamped to [1, 1024]), else 8 MiB.
size_t shardRingBytes();

} // namespace shard
} // namespace cmcc

#endif // CMCC_SHARD_SHMRING_H
