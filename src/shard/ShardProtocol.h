//===- shard/ShardProtocol.h - Coordinator/worker messages ----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control protocol between a shard coordinator and its worker
/// processes, spoken in the same length-prefixed frames as the public
/// network protocol (net/Wire.h) but over the coordinator's private
/// socketpairs — a public server never accepts Shard* types. Control
/// frames are small; every bulk float payload a frame announces streams
/// through the worker's ShmRing instead.
///
/// Conversation per worker, in order:
///
///   Init      — the global machine, the shard grid, this worker's
///               shard id, the inner backend and its options. The
///               worker derives its PartitionDomain and narrowed
///               MachineConfig and constructs the backend with the
///               partition/transport seam plugged in.
///   Plan      — a compiled stencil by plan fingerprint, carried as
///               .cmccode text; the worker parses, re-verifies, and
///               caches it. Sent once per (worker, fingerprint).
///   Data      — one array's local block: slot id + shape in the
///               frame, the floats through the ring.
///   Run       — execute a cached plan over slotted arrays. While it
///               runs, the *worker* initiates Halo requests at each
///               §5.1 exchange step; the coordinator relays blocks
///               between workers. The response carries the timing
///               report, then the result block streams back.
///   Shutdown  — orderly exit.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SHARD_SHARDPROTOCOL_H
#define CMCC_SHARD_SHARDPROTOCOL_H

#include "cm2/MachineConfig.h"
#include "cm2/Timing.h"
#include "net/Wire.h"
#include "runtime/Partition.h"
#include "support/Error.h"
#include <cstdint>
#include <string>
#include <vector>

namespace cmcc {
namespace shard {

/// ShardInitRequest payload.
struct InitMessage {
  MachineConfig Config; ///< The *global* machine.
  int ShardRows = 1;
  int ShardCols = 1;
  int Shard = 0;
  std::string Backend; ///< Inner backend name ("cm2", "native", "njit").
  // Executor/backend options that must match the unsharded run.
  uint16_t Primitive = 0;
  bool AllowCornerSkip = true;
  bool UseHalfStrips = true;
  bool UseFastPath = true;
  int ForceWidth = 0;
  int ThreadCount = 0;
  int RowsPerTile = 32;
  long TimeoutMs = 120000;
};

/// ShardPlanRequest payload (the .cmccode text of one compiled plan).
struct PlanMessage {
  uint64_t Fingerprint = 0;
  std::string Text;
};

/// ShardDataRequest payload; FloatCount floats follow through the ring.
struct DataMessage {
  uint32_t Slot = 0;
  int SubRows = 0;
  int SubCols = 0;
  uint64_t FloatCount = 0;
};

/// ShardRunRequest payload.
struct RunMessage {
  uint64_t Fingerprint = 0;
  int Iterations = 1;
  /// Time-tile depth (RunOptions::TimeTile); 1 = classic single step.
  int TimeTile = 1;
  int SubRows = 0;
  int SubCols = 0;
  uint64_t TraceId = 0;
  uint64_t ParentSpan = 0;
  /// Slot of each StencilSpec source, by source index.
  std::vector<uint32_t> SourceSlots;
  /// Slot per tap; -1 for taps without an array coefficient.
  std::vector<int64_t> TapSlots;
};

/// ShardHaloRequest payload (worker -> coordinator); the Low then High
/// blocks follow through the ring, ToCoordinator.
struct HaloMessage {
  uint32_t SourceIndex = 0;
  uint16_t Step = 0; ///< HaloStep as an int.
  uint64_t LowCount = 0;
  uint64_t HighCount = 0;
};

/// Generic response payload (Init/Plan/Data/Shutdown responses, and
/// ShardHaloResponse with the counts of the blocks that follow through
/// the ring, ToWorker).
struct AckMessage {
  bool Ok = true;
  bool Transient = false;
  std::string Message;
  uint64_t LowCount = 0;  ///< Halo responses only.
  uint64_t HighCount = 0; ///< Halo responses only.
};

/// ShardRunResponse payload; on Ok, the result block's floats follow
/// through the ring, ToCoordinator.
struct RunReply {
  bool Ok = true;
  bool Transient = false;
  std::string Message;
  TimingReport Report;
  /// Total nanoseconds this worker spent blocked in halo exchanges.
  uint64_t ExchangeWaitNs = 0;
};

std::vector<uint8_t> encodeInit(const InitMessage &M);
std::vector<uint8_t> encodePlan(const PlanMessage &M);
std::vector<uint8_t> encodeData(const DataMessage &M);
std::vector<uint8_t> encodeRun(const RunMessage &M);
std::vector<uint8_t> encodeHalo(const HaloMessage &M);
std::vector<uint8_t> encodeAck(const AckMessage &M);
std::vector<uint8_t> encodeRunReply(const RunReply &M);

bool decodeInit(const std::vector<uint8_t> &Payload, InitMessage &M);
bool decodePlan(const std::vector<uint8_t> &Payload, PlanMessage &M);
bool decodeData(const std::vector<uint8_t> &Payload, DataMessage &M);
bool decodeRun(const std::vector<uint8_t> &Payload, RunMessage &M);
bool decodeHalo(const std::vector<uint8_t> &Payload, HaloMessage &M);
bool decodeAck(const std::vector<uint8_t> &Payload, AckMessage &M);
bool decodeRunReply(const std::vector<uint8_t> &Payload, RunReply &M);

/// One received frame.
struct Frame {
  net::FrameHeader Header;
  std::vector<uint8_t> Payload;
};

/// Writes one complete frame to \p Fd (send with MSG_NOSIGNAL — a dead
/// peer is a transient error, never a SIGPIPE).
Error sendFrame(int Fd, net::MsgType Type, uint64_t RequestId,
                const std::vector<uint8_t> &Payload);

/// Reads one complete frame from \p Fd. EOF, a timeout (SO_RCVTIMEO),
/// and a malformed header are all transient errors — each means the
/// peer is gone or unusable, and the retry ladder owns what happens
/// next.
Expected<Frame> recvFrame(int Fd);

} // namespace shard
} // namespace cmcc

#endif // CMCC_SHARD_SHARDPROTOCOL_H
