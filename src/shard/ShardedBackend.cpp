//===- shard/ShardedBackend.cpp -------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "shard/ShardedBackend.h"
#include "core/PlanFingerprint.h"
#include "core/ScheduleIO.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "obs/TraceContext.h"
#include "shard/ShardProtocol.h"
#include "shard/ShmRing.h"
#include "support/FaultInjection.h"
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <set>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

extern char **environ;

using namespace cmcc;
using namespace cmcc::shard;

namespace {

/// Power-of-two nanosecond buckets matching the registry's default
/// microsecond latency scale.
std::vector<double> exchangeNsBounds() {
  std::vector<double> Bounds = obs::Histogram::latencyBoundsUs();
  for (double &B : Bounds)
    B *= 1000.0;
  return Bounds;
}

AckMessage abortAck() {
  AckMessage Abort;
  Abort.Ok = false;
  Abort.Transient = true;
  Abort.Message = "shard run aborted";
  return Abort;
}

} // namespace

/// One worker process and its plumbing. Indexed by shard id.
struct ShardedBackend::Worker {
  pid_t Pid = -1;
  int SocketFd = -1;
  ShmRing Ring;
  PartitionDomain Domain;
  bool Alive = false;
  uint64_t NextRequestId = 0;
  /// Plan fingerprints this process has parsed and cached.
  std::set<uint64_t> PlansSent;

  ~Worker() {
    if (SocketFd >= 0)
      ::close(SocketFd);
  }

  /// Declares the worker lost: closes the socket (the worker exits on
  /// EOF if it is still running), reaps the process, and counts the
  /// death. The slot respawns on the next run.
  void die() {
    if (SocketFd >= 0) {
      ::close(SocketFd);
      SocketFd = -1;
    }
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
      Pid = -1;
    }
    if (Alive) {
      Alive = false;
      obs::Registry::process().counter("shard.deaths").add(1);
    }
  }

  Error send(net::MsgType Type, const std::vector<uint8_t> &Payload) {
    return sendFrame(SocketFd, Type, ++NextRequestId, Payload);
  }

  /// Receives the response frame of \p Type and surfaces a non-Ok ack
  /// as the Error it encodes.
  Expected<AckMessage> expectAck(net::MsgType Type) {
    Expected<Frame> F = recvFrame(SocketFd);
    if (!F)
      return F.error();
    AckMessage Ack;
    if (F->Header.Type != Type || !decodeAck(F->Payload, Ack))
      return Error::transient("shard worker sent an unexpected frame");
    if (!Ack.Ok)
      return Ack.Transient ? Error::transient(Ack.Message)
                           : makeError(Ack.Message);
    return Ack;
  }

  Error call(net::MsgType Req, const std::vector<uint8_t> &Payload,
             net::MsgType Resp) {
    if (Error E = send(Req, Payload))
      return E;
    Expected<AckMessage> Ack = expectAck(Resp);
    return Ack ? Error::success() : Ack.error();
  }

  /// Drives this worker out of an in-flight run so the socket and ring
  /// are clean for the next one: answers halo requests with abort acks
  /// (draining their announced ring bytes first) until the worker's
  /// RunReply arrives, and drains the streamed result of a reply that
  /// reported success. \p PendingHalo marks a halo request already read
  /// off the socket (its outgoing blocks already drained) that still
  /// awaits a response; \p AlreadyDone marks a worker whose RunReply was
  /// already read (\p DoneOk its verdict).
  void quiesce(uint64_t ResultFloatCount, bool PendingHalo,
               uint64_t PendingReq, bool AlreadyDone, bool DoneOk) {
    if (!Alive)
      return;
    if (AlreadyDone) {
      if (DoneOk && Ring.discard(RingDir::ToCoordinator,
                                 ResultFloatCount * sizeof(float)))
        die();
      return;
    }
    if (PendingHalo && sendFrame(SocketFd, net::MsgType::ShardHaloResponse,
                                 PendingReq, encodeAck(abortAck()))) {
      die();
      return;
    }
    for (;;) {
      Expected<Frame> F = recvFrame(SocketFd);
      if (!F) {
        die();
        return;
      }
      if (F->Header.Type == net::MsgType::ShardHaloRequest) {
        HaloMessage H;
        if (!decodeHalo(F->Payload, H) ||
            Ring.discard(RingDir::ToCoordinator,
                         (H.LowCount + H.HighCount) * sizeof(float)) ||
            sendFrame(SocketFd, net::MsgType::ShardHaloResponse,
                      F->Header.RequestId, encodeAck(abortAck()))) {
          die();
          return;
        }
        continue;
      }
      if (F->Header.Type == net::MsgType::ShardRunResponse) {
        RunReply R;
        if (!decodeRunReply(F->Payload, R)) {
          die();
          return;
        }
        if (R.Ok && Ring.discard(RingDir::ToCoordinator,
                                 ResultFloatCount * sizeof(float)))
          die();
        return;
      }
      die();
      return;
    }
  }
};

ShardedBackend::ShardedBackend(const MachineConfig &Config, Options O)
    : Config(Config), Opts(std::move(O)), InnerName(Opts.InnerBackend) {
  Expected<ShardGrid> SG =
      (Opts.ShardRows > 0 && Opts.ShardCols > 0)
          ? makeShardGrid(Config.NodeRows, Config.NodeCols, Opts.ShardRows,
                          Opts.ShardCols)
          : chooseShardGrid(Config.NodeRows, Config.NodeCols, Opts.Shards);
  if (!SG) {
    GridError = SG.error();
    return;
  }
  Grid = *SG;
  Workers.resize(static_cast<size_t>(Grid.count()));
}

ShardedBackend::~ShardedBackend() {
  for (auto &W : Workers) {
    if (!W)
      continue;
    if (W->Alive && W->SocketFd >= 0)
      (void)sendFrame(W->SocketFd, net::MsgType::ShardShutdownRequest,
                      ++W->NextRequestId, {});
    if (W->SocketFd >= 0) {
      ::close(W->SocketFd);
      W->SocketFd = -1;
    }
    if (W->Pid > 0) {
      // A healthy worker exits on shutdown/EOF promptly; escalate only
      // if it wedges.
      bool Reaped = false;
      for (int I = 0; I != 200 && !Reaped; ++I) {
        if (::waitpid(W->Pid, nullptr, WNOHANG) != 0)
          Reaped = true;
        else
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (!Reaped) {
        ::kill(W->Pid, SIGKILL);
        ::waitpid(W->Pid, nullptr, 0);
      }
      W->Pid = -1;
    }
  }
}

const char *ShardedBackend::name() const { return InnerName.c_str(); }

bool ShardedBackend::reportsWallClock() const { return InnerName != "cm2"; }

std::string ShardedBackend::workerPath() const {
  if (!Opts.WorkerPath.empty())
    return Opts.WorkerPath;
  if (const char *Env = std::getenv("CMCC_SHARD_WORKER"))
    if (*Env)
      return Env;
#ifdef CMCC_SHARD_WORKER_DEFAULT
  return CMCC_SHARD_WORKER_DEFAULT;
#else
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N > 0) {
    Buf[N] = '\0';
    std::string Self(Buf);
    size_t Slash = Self.rfind('/');
    if (Slash != std::string::npos)
      return Self.substr(0, Slash + 1) + "cmcc_shard_worker";
  }
  return "cmcc_shard_worker";
#endif
}

Error ShardedBackend::spawnWorker(int Shard) const {
  if (fault::probe("shard.spawn"))
    return fault::injectedFault("shard.spawn");

  Expected<ShmRing> RingOrErr =
      ShmRing::create(shardRingBytes(), shardTimeoutMs());
  if (!RingOrErr)
    return RingOrErr.error();
  ::fcntl(RingOrErr->fd(), F_SETFD, FD_CLOEXEC);

  int Sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, Sv) != 0)
    return Error::transient(std::string("shard spawn: socketpair: ") +
                            std::strerror(errno));

  // The child's copies live at fds >= 10 (plain dups are inheritable)
  // and are dup2'd onto the fixed fds 3 and 4 by the spawn file
  // actions; pre-dup'ing sidesteps adddup2's same-fd corner cases.
  int ChildSock = ::fcntl(Sv[1], F_DUPFD, 10);
  int ChildRing = ::fcntl(RingOrErr->fd(), F_DUPFD, 10);
  ::close(Sv[1]);
  if (ChildSock < 0 || ChildRing < 0) {
    if (ChildSock >= 0)
      ::close(ChildSock);
    if (ChildRing >= 0)
      ::close(ChildRing);
    ::close(Sv[0]);
    return Error::transient("shard spawn: cannot dup worker fds");
  }

  posix_spawn_file_actions_t Actions;
  posix_spawn_file_actions_init(&Actions);
  posix_spawn_file_actions_adddup2(&Actions, ChildSock, 3);
  posix_spawn_file_actions_adddup2(&Actions, ChildRing, 4);

  const std::string Path = workerPath();
  std::string ArgSock = "--socket-fd=3";
  std::string ArgRing = "--shm-fd=4";
  std::string ArgShard = "--shard=" + std::to_string(Shard);
  std::vector<char *> Argv = {const_cast<char *>(Path.c_str()),
                              ArgSock.data(), ArgRing.data(), ArgShard.data(),
                              nullptr};

  // Inherit the environment, but point each worker's trace (if any) at
  // its own file: "run.json" -> "run.shard<i>.json".
  std::vector<std::string> EnvStore;
  for (char **E = environ; *E; ++E) {
    std::string S(*E);
    const std::string Key = "CMCC_TRACE=";
    if (S.rfind(Key, 0) == 0 && S.size() > Key.size()) {
      std::string Stem = S.substr(Key.size());
      const std::string Ext = ".json";
      if (Stem.size() > Ext.size() &&
          Stem.compare(Stem.size() - Ext.size(), Ext.size(), Ext) == 0)
        Stem.resize(Stem.size() - Ext.size());
      S = Key + Stem + ".shard" + std::to_string(Shard) + ".json";
    }
    EnvStore.push_back(std::move(S));
  }
  std::vector<char *> Envp;
  for (std::string &S : EnvStore)
    Envp.push_back(S.data());
  Envp.push_back(nullptr);

  pid_t Pid = -1;
  int Rc = ::posix_spawn(&Pid, Path.c_str(), &Actions, nullptr, Argv.data(),
                         Envp.data());
  posix_spawn_file_actions_destroy(&Actions);
  ::close(ChildSock);
  ::close(ChildRing);
  if (Rc != 0) {
    ::close(Sv[0]);
    return Error::transient("cannot spawn shard worker '" + Path +
                            "': " + std::strerror(Rc));
  }

  // Frame reads time out rather than hang forever on a wedged worker.
  const long Ms = shardTimeoutMs();
  struct timeval Tv;
  Tv.tv_sec = Ms / 1000;
  Tv.tv_usec = (Ms % 1000) * 1000;
  ::setsockopt(Sv[0], SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));

  auto W = std::make_unique<Worker>();
  W->Pid = Pid;
  W->SocketFd = Sv[0];
  W->Ring = RingOrErr.takeValue();
  W->Domain = shardDomain(Grid, Shard, Config.NodeRows, Config.NodeCols);
  W->Alive = true;

  InitMessage Init;
  Init.Config = Config;
  Init.ShardRows = Grid.Rows;
  Init.ShardCols = Grid.Cols;
  Init.Shard = Shard;
  Init.Backend = Opts.InnerBackend;
  Init.Primitive = static_cast<uint16_t>(Opts.ExecOpts.Primitive);
  Init.AllowCornerSkip = Opts.ExecOpts.AllowCornerSkip;
  Init.UseHalfStrips = Opts.ExecOpts.UseHalfStrips;
  Init.UseFastPath = Opts.ExecOpts.UseFastPath;
  Init.ForceWidth = Opts.ExecOpts.ForceWidth;
  Init.ThreadCount = Opts.ExecOpts.ThreadCount;
  Init.TimeoutMs = shardTimeoutMs();
  if (Error E = W->call(net::MsgType::ShardInitRequest, encodeInit(Init),
                        net::MsgType::ShardInitResponse)) {
    W->die();
    return E.isTransient() ? std::move(E) : Error::transient(E.message());
  }

  Workers[static_cast<size_t>(Shard)] = std::move(W);
  return Error::success();
}

Error ShardedBackend::ensureWorkers() const {
  for (int I = 0; I != Grid.count(); ++I) {
    auto &Slot = Workers[static_cast<size_t>(I)];
    if (Slot && Slot->Alive)
      continue;
    const bool Respawn = Slot != nullptr;
    Slot.reset();
    if (Error E = spawnWorker(I))
      return E;
    obs::Registry &Reg = obs::Registry::process();
    Reg.counter("shard.spawns").add(1);
    if (Respawn)
      Reg.counter("shard.respawns").add(1);
  }
  return Error::success();
}

Error ShardedBackend::ensurePlan(const CompiledStencil &Compiled,
                                 uint64_t Fingerprint, Worker &W) const {
  if (W.PlansSent.count(Fingerprint))
    return Error::success();
  auto It = PlanTexts.find(Fingerprint);
  if (It == PlanTexts.end())
    It = PlanTexts.emplace(Fingerprint, writeCompiledStencil(Compiled, Config))
             .first;
  PlanMessage M;
  M.Fingerprint = Fingerprint;
  M.Text = It->second;
  if (Error E = W.call(net::MsgType::ShardPlanRequest, encodePlan(M),
                       net::MsgType::ShardPlanResponse))
    return E;
  W.PlansSent.insert(Fingerprint);
  return Error::success();
}

Error ShardedBackend::scatterArray(Worker &W, uint32_t Slot,
                                   const DistributedArray &A) const {
  const uint64_t PerNode = static_cast<uint64_t>(A.subRows()) *
                           static_cast<uint64_t>(A.subCols());
  DataMessage M;
  M.Slot = Slot;
  M.SubRows = A.subRows();
  M.SubCols = A.subCols();
  M.FloatCount = PerNode * static_cast<uint64_t>(W.Domain.localNodeCount());
  if (Error E = W.send(net::MsgType::ShardDataRequest, encodeData(M)))
    return E;
  // Local node-id order (row-major over the shard's block), the order
  // the worker fills its subgrids in.
  for (int LR = 0; LR != W.Domain.LocalRows; ++LR)
    for (int LC = 0; LC != W.Domain.LocalCols; ++LC) {
      const NodeCoord At{W.Domain.globalRow(LR), W.Domain.globalCol(LC)};
      if (Error E = W.Ring.writeFloats(RingDir::ToWorker,
                                       A.subgrid(At).data(), PerNode))
        return E;
    }
  Expected<AckMessage> Ack = W.expectAck(net::MsgType::ShardDataResponse);
  return Ack ? Error::success() : Ack.error();
}

Error ShardedBackend::relayAndGather(const ResolvedStencilArguments &Resolved,
                                     std::vector<TimingReport> &Reports) const {
  const int N = Grid.count();
  const uint64_t ResultPerNode =
      static_cast<uint64_t>(Resolved.Result->subRows()) *
      static_cast<uint64_t>(Resolved.Result->subCols());
  obs::Registry &Reg = obs::Registry::process();
  obs::Histogram &ExchangeNs =
      Reg.histogram("shard.exchange_ns", exchangeNsBounds());

  struct RoundMsg {
    bool Got = false;
    bool IsHalo = false;
    uint64_t Req = 0;
    HaloMessage Halo;
    HaloBlocks Out; ///< Halo messages: the drained outgoing blocks.
    RunReply Reply;
  };

  int Round = 0;
  for (;; ++Round) {
    // Chaos drills, one probe per relay round: a SIGKILLed worker
    // exercises death detection + respawn; an exchange fault exercises
    // the abort path without losing a process.
    if (fault::probe("shard.worker_death")) {
      Worker &Victim = *Workers[static_cast<size_t>(Round % N)];
      if (Victim.Alive && Victim.Pid > 0)
        ::kill(Victim.Pid, SIGKILL);
    }
    const bool InjectAbort = fault::probe("shard.exchange");

    // Collect one frame per live worker. Every worker announces before
    // it streams, so reading frame-then-ring per worker cannot wedge.
    const auto RoundStart = std::chrono::steady_clock::now();
    std::vector<RoundMsg> Msgs(static_cast<size_t>(N));
    bool AnyDead = false, AnyFailed = false;
    int HaloCount = 0, DoneCount = 0;
    for (int I = 0; I != N; ++I) {
      RoundMsg &M = Msgs[static_cast<size_t>(I)];
      Worker &W = *Workers[static_cast<size_t>(I)];
      Expected<Frame> F = recvFrame(W.SocketFd);
      if (!F) {
        W.die();
        AnyDead = true;
        continue;
      }
      M.Req = F->Header.RequestId;
      if (F->Header.Type == net::MsgType::ShardHaloRequest &&
          decodeHalo(F->Payload, M.Halo)) {
        M.Out.Low.resize(M.Halo.LowCount);
        M.Out.High.resize(M.Halo.HighCount);
        if (W.Ring.readFloats(RingDir::ToCoordinator, M.Out.Low.data(),
                              M.Out.Low.size()) ||
            W.Ring.readFloats(RingDir::ToCoordinator, M.Out.High.data(),
                              M.Out.High.size())) {
          W.die();
          AnyDead = true;
          continue;
        }
        M.Got = true;
        M.IsHalo = true;
        ++HaloCount;
      } else if (F->Header.Type == net::MsgType::ShardRunResponse &&
                 decodeRunReply(F->Payload, M.Reply)) {
        M.Got = true;
        if (!M.Reply.Ok)
          AnyFailed = true;
        ++DoneCount;
      } else {
        W.die();
        AnyDead = true;
      }
    }

    // Workers desynchronize only on failure; a round mixing exchanges
    // with completions means someone's run already failed or the two
    // sides disagree — either way, abort cleanly.
    bool Desync = HaloCount != 0 && DoneCount != 0;
    if (HaloCount == N)
      for (int I = 1; I != N; ++I)
        if (Msgs[static_cast<size_t>(I)].Halo.SourceIndex !=
                Msgs[0].Halo.SourceIndex ||
            Msgs[static_cast<size_t>(I)].Halo.Step != Msgs[0].Halo.Step)
          Desync = true;

    if (AnyDead || AnyFailed || InjectAbort || Desync) {
      for (int I = 0; I != N; ++I) {
        const RoundMsg &M = Msgs[static_cast<size_t>(I)];
        Worker &W = *Workers[static_cast<size_t>(I)];
        if (!M.Got)
          continue; // Already dead.
        const uint64_t ResultFloats =
            ResultPerNode * static_cast<uint64_t>(W.Domain.localNodeCount());
        W.quiesce(ResultFloats, /*PendingHalo=*/M.IsHalo, M.Req,
                  /*AlreadyDone=*/!M.IsHalo,
                  /*DoneOk=*/!M.IsHalo && M.Reply.Ok);
      }
      if (InjectAbort)
        return fault::injectedFault("shard.exchange");
      if (AnyDead)
        return Error::transient(
            "shard worker died mid-run; the fleet respawns on retry");
      for (int I = 0; I != N; ++I) {
        const RoundMsg &M = Msgs[static_cast<size_t>(I)];
        if (M.Got && !M.IsHalo && !M.Reply.Ok)
          return M.Reply.Transient ? Error::transient(M.Reply.Message)
                                   : makeError(M.Reply.Message);
      }
      return Error::transient("shard run desynchronized; aborted");
    }

    if (DoneCount == N) {
      // Every worker succeeded: gather result blocks (each worker is
      // already streaming its own ring) and surface the reports.
      Reports.clear();
      for (int I = 0; I != N; ++I) {
        Worker &W = *Workers[static_cast<size_t>(I)];
        for (int LR = 0; LR != W.Domain.LocalRows; ++LR)
          for (int LC = 0; LC != W.Domain.LocalCols; ++LC) {
            const NodeCoord At{W.Domain.globalRow(LR),
                               W.Domain.globalCol(LC)};
            if (W.Ring.readFloats(RingDir::ToCoordinator,
                                  Resolved.Result->subgrid(At).data(),
                                  ResultPerNode)) {
              W.die();
              return Error::transient("shard result gather failed");
            }
          }
        const RoundMsg &M = Msgs[static_cast<size_t>(I)];
        Reports.push_back(M.Reply.Report);
        Reg.counter("shard." + std::to_string(I) + ".runs").add(1);
        Reg.sum("shard." + std::to_string(I) + ".exchange_wait_ns")
            .add(static_cast<double>(M.Reply.ExchangeWaitNs));
      }
      Reg.counter("shard.runs").add(1);
      return Error::success();
    }

    // A full halo round: route each worker's edges to its neighbors.
    // In.Low is the low-side neighbor's High block and vice versa —
    // block-level wraparound mirrors the node-level torus.
    const bool WE =
        Msgs[0].Halo.Step == static_cast<uint16_t>(HaloStep::WestEast);
    bool RelayFailed = false;
    for (int I = 0; I != N && !RelayFailed; ++I) {
      Worker &W = *Workers[static_cast<size_t>(I)];
      const int LowNbr = WE ? Grid.westOf(I) : Grid.northOf(I);
      const int HighNbr = WE ? Grid.eastOf(I) : Grid.southOf(I);
      const std::vector<float> &InLow =
          Msgs[static_cast<size_t>(LowNbr)].Out.High;
      const std::vector<float> &InHigh =
          Msgs[static_cast<size_t>(HighNbr)].Out.Low;
      AckMessage Ack;
      Ack.LowCount = InLow.size();
      Ack.HighCount = InHigh.size();
      if (sendFrame(W.SocketFd, net::MsgType::ShardHaloResponse, Msgs[I].Req,
                    encodeAck(Ack)) ||
          W.Ring.writeFloats(RingDir::ToWorker, InLow.data(), InLow.size()) ||
          W.Ring.writeFloats(RingDir::ToWorker, InHigh.data(),
                             InHigh.size())) {
        W.die();
        // Workers already answered continue to their next exchange;
        // the rest still wait on this one. Quiesce both kinds.
        for (int J = 0; J != N; ++J) {
          if (J == I)
            continue;
          Worker &O = *Workers[static_cast<size_t>(J)];
          const uint64_t ResultFloats =
              ResultPerNode *
              static_cast<uint64_t>(O.Domain.localNodeCount());
          O.quiesce(ResultFloats, /*PendingHalo=*/J > I,
                    Msgs[static_cast<size_t>(J)].Req,
                    /*AlreadyDone=*/false, /*DoneOk=*/false);
        }
        RelayFailed = true;
      }
    }
    if (RelayFailed)
      return Error::transient("shard halo relay failed; worker lost");

    ExchangeNs.observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - RoundStart)
            .count()));
  }
}

Expected<TimingReport>
ShardedBackend::runResolved(const CompiledStencil &Compiled,
                            const ResolvedStencilArguments &Resolved,
                            const RunOptions &RO) const {
  CMCC_SPAN("backend.shard.run");
  if (GridError)
    return GridError;
  if (!Resolved.Result || Resolved.Sources.empty() || !Resolved.Sources[0])
    return makeError("sharded run requires resolved result and source arrays");

  std::lock_guard<std::mutex> Lock(RunMutex);
  if (Error E = ensureWorkers())
    return E;

  const uint64_t Fingerprint =
      planFingerprint(Compiled.Spec, Config, InnerName);
  for (auto &W : Workers)
    if (Error E = ensurePlan(Compiled, Fingerprint, *W)) {
      if (E.isTransient())
        W->die();
      return E;
    }

  // Assign one scatter slot per *distinct* array (sources and tap
  // coefficients often alias), in first-appearance order.
  std::vector<const DistributedArray *> SlotArrays;
  std::map<const DistributedArray *, uint32_t> SlotOf;
  auto SlotFor = [&](const DistributedArray *A) -> int64_t {
    if (!A)
      return -1;
    auto It = SlotOf.find(A);
    if (It == SlotOf.end()) {
      It = SlotOf.emplace(A, static_cast<uint32_t>(SlotArrays.size())).first;
      SlotArrays.push_back(A);
    }
    return It->second;
  };
  RunMessage Run;
  for (const DistributedArray *S : Resolved.Sources)
    Run.SourceSlots.push_back(static_cast<uint32_t>(SlotFor(S)));
  for (const DistributedArray *T : Resolved.TapCoefficients)
    Run.TapSlots.push_back(SlotFor(T));

  for (auto &W : Workers)
    for (uint32_t Slot = 0; Slot != SlotArrays.size(); ++Slot)
      if (Error E = scatterArray(*W, Slot, *SlotArrays[Slot])) {
        W->die();
        return E.isTransient() ? std::move(E) : Error::transient(E.message());
      }

  Run.Fingerprint = Fingerprint;
  Run.Iterations = RO.Iterations;
  // Workers run the tiled chain locally: the partitioned exchange
  // already carries arbitrary border widths (and the extra coefficient
  // exchanges) through the relay, which is size-agnostic.
  Run.TimeTile = RO.TimeTile;
  Run.SubRows = Resolved.Result->subRows();
  Run.SubCols = Resolved.Result->subCols();
  const obs::TraceContext Ctx = obs::currentTraceContext();
  Run.TraceId = Ctx.TraceId;
  Run.ParentSpan = Ctx.SpanId;

  const auto RunStart = std::chrono::steady_clock::now();
  for (auto &W : Workers)
    if (Error E = W->send(net::MsgType::ShardRunRequest, encodeRun(Run))) {
      W->die();
      return Error::transient("shard run dispatch failed: " + E.message());
    }

  std::vector<TimingReport> Reports;
  if (Error E = relayAndGather(Resolved, Reports))
    return E;

  // The merged report: one shard's per-node accounting *is* the global
  // machine's (synchronous SIMD — every node runs the same schedule on
  // the same subgrid shape), so only the node count widens. Measuring
  // backends report the coordinator's wall clock, which honestly
  // includes scatter, relay, and gather.
  TimingReport Report = Reports.front();
  Report.Nodes = Config.NodeRows * Config.NodeCols;
  if (reportsWallClock())
    Report.HostSecondsPerIteration =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      RunStart)
            .count() /
        static_cast<double>(std::max(1, RO.Iterations));
  return Report;
}

Expected<TimingReport> ShardedBackend::timeOnly(const CompiledStencil &Compiled,
                                                int SubRows, int SubCols,
                                                const RunOptions &RO) const {
  if (GridError)
    return GridError;
  const StencilSpec &Spec = Compiled.Spec;
  const NodeGrid G(Config);

  // Scratch arrays with the native backend's exact deterministic
  // seeding, so a sharded timing run computes the same values an
  // unsharded one would.
  DistributedArray Result(G, SubRows, SubCols);
  std::vector<std::unique_ptr<DistributedArray>> Owned;
  auto MakeScratch = [&](uint64_t Seed) {
    Owned.push_back(std::make_unique<DistributedArray>(G, SubRows, SubCols));
    DistributedArray &A = *Owned.back();
    for (int Id = 0; Id != G.nodeCount(); ++Id)
      A.subgrid(G.coordOf(Id)).fillRandom(Seed * 7919 + Id);
    return &A;
  };

  StencilArguments Args;
  Args.Result = &Result;
  uint64_t Seed = 1;
  Args.Source = MakeScratch(Seed++);
  for (const std::string &Name : Spec.ExtraSources)
    Args.ExtraSources[Name] = MakeScratch(Seed++);
  for (const std::string &Name : Spec.coefficientArrayNames())
    Args.Coefficients[Name] = MakeScratch(Seed++);

  return run(Compiled, Args, RO);
}
