//===- shard/ShardProtocol.cpp --------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "shard/ShardProtocol.h"
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

using namespace cmcc;
using namespace cmcc::shard;
using cmcc::net::ByteReader;
using cmcc::net::ByteWriter;

namespace {

void putConfig(ByteWriter &W, const MachineConfig &C) {
  W.u32(static_cast<uint32_t>(C.NodeRows));
  W.u32(static_cast<uint32_t>(C.NodeCols));
  W.f64(C.ClockMHz);
  W.u16(static_cast<uint16_t>(C.Fpu));
  W.u32(static_cast<uint32_t>(C.NumRegisters));
  W.u32(static_cast<uint32_t>(C.MulToAddCycles));
  W.u32(static_cast<uint32_t>(C.AddToWriteCycles));
  W.u32(static_cast<uint32_t>(C.LoadLatencyCycles));
  W.u32(static_cast<uint32_t>(C.PipeReversalCycles));
  W.u32(static_cast<uint32_t>(C.StaticPartLatchCycles));
  W.u32(static_cast<uint32_t>(C.PerLineOverheadCycles));
  W.u32(static_cast<uint32_t>(C.HalfStripStartupCycles));
  W.u32(static_cast<uint32_t>(C.ScratchMemoryParts));
  W.f64(C.SequencerCyclesPerOp);
  W.f64(C.HostOverheadUsPerCall);
  W.f64(C.HostOverheadUsPerStrip);
  W.u32(static_cast<uint32_t>(C.CommStartupCycles));
  W.u32(static_cast<uint32_t>(C.CommCyclesPerElement));
  W.u32(static_cast<uint32_t>(C.CornerStartupCycles));
  W.u32(static_cast<uint32_t>(C.LegacyCommStartupCycles));
  W.f64(C.LegacyCommElementFactor);
}

bool getConfig(ByteReader &R, MachineConfig &C) {
  uint32_t U = 0;
  uint16_t Fpu = 0;
  bool Ok = true;
  auto I = [&](int &Field) {
    Ok = Ok && R.u32(U);
    Field = static_cast<int>(U);
  };
  I(C.NodeRows);
  I(C.NodeCols);
  Ok = Ok && R.f64(C.ClockMHz);
  Ok = Ok && R.u16(Fpu);
  C.Fpu = static_cast<FpuKind>(Fpu);
  I(C.NumRegisters);
  I(C.MulToAddCycles);
  I(C.AddToWriteCycles);
  I(C.LoadLatencyCycles);
  I(C.PipeReversalCycles);
  I(C.StaticPartLatchCycles);
  I(C.PerLineOverheadCycles);
  I(C.HalfStripStartupCycles);
  I(C.ScratchMemoryParts);
  Ok = Ok && R.f64(C.SequencerCyclesPerOp);
  Ok = Ok && R.f64(C.HostOverheadUsPerCall);
  Ok = Ok && R.f64(C.HostOverheadUsPerStrip);
  I(C.CommStartupCycles);
  I(C.CommCyclesPerElement);
  I(C.CornerStartupCycles);
  I(C.LegacyCommStartupCycles);
  Ok = Ok && R.f64(C.LegacyCommElementFactor);
  return Ok;
}

void putReport(ByteWriter &W, const TimingReport &T) {
  W.i64(T.Cycles.Compute);
  W.i64(T.Cycles.PipeReversal);
  W.i64(T.Cycles.LineOverhead);
  W.i64(T.Cycles.StripStartup);
  W.i64(T.Cycles.Communication);
  W.i64(T.UsefulFlopsPerNodePerIteration);
  W.i64(T.Iterations);
  W.f64(T.HostSecondsPerIteration);
  W.u32(static_cast<uint32_t>(T.Nodes));
  W.f64(T.ClockMHz);
}

bool getReport(ByteReader &R, TimingReport &T) {
  uint32_t Nodes = 0;
  bool Ok = R.i64(T.Cycles.Compute) && R.i64(T.Cycles.PipeReversal) &&
            R.i64(T.Cycles.LineOverhead) && R.i64(T.Cycles.StripStartup) &&
            R.i64(T.Cycles.Communication) &&
            R.i64(T.UsefulFlopsPerNodePerIteration) && R.i64(T.Iterations) &&
            R.f64(T.HostSecondsPerIteration) && R.u32(Nodes) &&
            R.f64(T.ClockMHz);
  T.Nodes = static_cast<int>(Nodes);
  return Ok;
}

} // namespace

std::vector<uint8_t> cmcc::shard::encodeInit(const InitMessage &M) {
  ByteWriter W;
  putConfig(W, M.Config);
  W.u32(static_cast<uint32_t>(M.ShardRows));
  W.u32(static_cast<uint32_t>(M.ShardCols));
  W.u32(static_cast<uint32_t>(M.Shard));
  W.str(M.Backend);
  W.u16(M.Primitive);
  W.u8(M.AllowCornerSkip ? 1 : 0);
  W.u8(M.UseHalfStrips ? 1 : 0);
  W.u8(M.UseFastPath ? 1 : 0);
  W.u32(static_cast<uint32_t>(M.ForceWidth));
  W.u32(static_cast<uint32_t>(M.ThreadCount));
  W.u32(static_cast<uint32_t>(M.RowsPerTile));
  W.i64(M.TimeoutMs);
  return W.take();
}

bool cmcc::shard::decodeInit(const std::vector<uint8_t> &Payload,
                             InitMessage &M) {
  ByteReader R(Payload.data(), Payload.size());
  if (!getConfig(R, M.Config))
    return false;
  uint32_t SR = 0, SC = 0, Shard = 0, FW = 0, TC = 0, RPT = 0;
  uint8_t Corner = 0, Half = 0, Fast = 0;
  int64_t Timeout = 0;
  bool Ok = R.u32(SR) && R.u32(SC) && R.u32(Shard) && R.str(M.Backend) &&
            R.u16(M.Primitive) && R.u8(Corner) && R.u8(Half) && R.u8(Fast) &&
            R.u32(FW) && R.u32(TC) && R.u32(RPT) && R.i64(Timeout);
  if (!Ok || !R.exhausted())
    return false;
  M.ShardRows = static_cast<int>(SR);
  M.ShardCols = static_cast<int>(SC);
  M.Shard = static_cast<int>(Shard);
  M.AllowCornerSkip = Corner != 0;
  M.UseHalfStrips = Half != 0;
  M.UseFastPath = Fast != 0;
  M.ForceWidth = static_cast<int>(FW);
  M.ThreadCount = static_cast<int>(TC);
  M.RowsPerTile = static_cast<int>(RPT);
  M.TimeoutMs = static_cast<long>(Timeout);
  return true;
}

std::vector<uint8_t> cmcc::shard::encodePlan(const PlanMessage &M) {
  ByteWriter W;
  W.u64(M.Fingerprint);
  W.str(M.Text);
  return W.take();
}

bool cmcc::shard::decodePlan(const std::vector<uint8_t> &Payload,
                             PlanMessage &M) {
  ByteReader R(Payload.data(), Payload.size());
  // Plans can be large; allow up to the frame payload cap.
  return R.u64(M.Fingerprint) && R.str(M.Text, net::MaxPayloadBytes) &&
         R.exhausted();
}

std::vector<uint8_t> cmcc::shard::encodeData(const DataMessage &M) {
  ByteWriter W;
  W.u32(M.Slot);
  W.u32(static_cast<uint32_t>(M.SubRows));
  W.u32(static_cast<uint32_t>(M.SubCols));
  W.u64(M.FloatCount);
  return W.take();
}

bool cmcc::shard::decodeData(const std::vector<uint8_t> &Payload,
                             DataMessage &M) {
  ByteReader R(Payload.data(), Payload.size());
  uint32_t SR = 0, SC = 0;
  bool Ok = R.u32(M.Slot) && R.u32(SR) && R.u32(SC) && R.u64(M.FloatCount);
  if (!Ok || !R.exhausted())
    return false;
  M.SubRows = static_cast<int>(SR);
  M.SubCols = static_cast<int>(SC);
  return true;
}

std::vector<uint8_t> cmcc::shard::encodeRun(const RunMessage &M) {
  ByteWriter W;
  W.u64(M.Fingerprint);
  W.u32(static_cast<uint32_t>(M.Iterations));
  W.u32(static_cast<uint32_t>(M.TimeTile));
  W.u32(static_cast<uint32_t>(M.SubRows));
  W.u32(static_cast<uint32_t>(M.SubCols));
  W.u64(M.TraceId);
  W.u64(M.ParentSpan);
  W.u32(static_cast<uint32_t>(M.SourceSlots.size()));
  for (uint32_t S : M.SourceSlots)
    W.u32(S);
  W.u32(static_cast<uint32_t>(M.TapSlots.size()));
  for (int64_t S : M.TapSlots)
    W.i64(S);
  return W.take();
}

bool cmcc::shard::decodeRun(const std::vector<uint8_t> &Payload,
                            RunMessage &M) {
  ByteReader R(Payload.data(), Payload.size());
  uint32_t It = 0, TT = 0, SR = 0, SC = 0, NSrc = 0, NTap = 0;
  if (!(R.u64(M.Fingerprint) && R.u32(It) && R.u32(TT) && R.u32(SR) &&
        R.u32(SC) && R.u64(M.TraceId) && R.u64(M.ParentSpan) && R.u32(NSrc)))
    return false;
  if (NSrc > 1024 || R.remaining() < NSrc * 4)
    return false;
  M.SourceSlots.resize(NSrc);
  for (uint32_t &S : M.SourceSlots)
    if (!R.u32(S))
      return false;
  if (!R.u32(NTap) || NTap > (1u << 20) || R.remaining() < NTap * 8)
    return false;
  M.TapSlots.resize(NTap);
  for (int64_t &S : M.TapSlots)
    if (!R.i64(S))
      return false;
  if (!R.exhausted())
    return false;
  M.Iterations = static_cast<int>(It);
  M.TimeTile = static_cast<int>(TT);
  M.SubRows = static_cast<int>(SR);
  M.SubCols = static_cast<int>(SC);
  return true;
}

std::vector<uint8_t> cmcc::shard::encodeHalo(const HaloMessage &M) {
  ByteWriter W;
  W.u32(M.SourceIndex);
  W.u16(M.Step);
  W.u64(M.LowCount);
  W.u64(M.HighCount);
  return W.take();
}

bool cmcc::shard::decodeHalo(const std::vector<uint8_t> &Payload,
                             HaloMessage &M) {
  ByteReader R(Payload.data(), Payload.size());
  return R.u32(M.SourceIndex) && R.u16(M.Step) && R.u64(M.LowCount) &&
         R.u64(M.HighCount) && R.exhausted();
}

std::vector<uint8_t> cmcc::shard::encodeAck(const AckMessage &M) {
  ByteWriter W;
  W.u8(M.Ok ? 1 : 0);
  W.u8(M.Transient ? 1 : 0);
  W.str(M.Message);
  W.u64(M.LowCount);
  W.u64(M.HighCount);
  return W.take();
}

bool cmcc::shard::decodeAck(const std::vector<uint8_t> &Payload,
                            AckMessage &M) {
  ByteReader R(Payload.data(), Payload.size());
  uint8_t Ok = 0, Transient = 0;
  bool Good = R.u8(Ok) && R.u8(Transient) && R.str(M.Message) &&
              R.u64(M.LowCount) && R.u64(M.HighCount) && R.exhausted();
  M.Ok = Ok != 0;
  M.Transient = Transient != 0;
  return Good;
}

std::vector<uint8_t> cmcc::shard::encodeRunReply(const RunReply &M) {
  ByteWriter W;
  W.u8(M.Ok ? 1 : 0);
  W.u8(M.Transient ? 1 : 0);
  W.str(M.Message);
  putReport(W, M.Report);
  W.u64(M.ExchangeWaitNs);
  return W.take();
}

bool cmcc::shard::decodeRunReply(const std::vector<uint8_t> &Payload,
                                 RunReply &M) {
  ByteReader R(Payload.data(), Payload.size());
  uint8_t Ok = 0, Transient = 0;
  bool Good = R.u8(Ok) && R.u8(Transient) && R.str(M.Message) &&
              getReport(R, M.Report) && R.u64(M.ExchangeWaitNs) &&
              R.exhausted();
  M.Ok = Ok != 0;
  M.Transient = Transient != 0;
  return Good;
}

Error cmcc::shard::sendFrame(int Fd, net::MsgType Type, uint64_t RequestId,
                             const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Bytes =
      net::buildFrame(Type, RequestId, /*Tenant=*/0, Payload);
  size_t Done = 0;
  while (Done != Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Done, Bytes.size() - Done,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Error::transient("shard frame send failed: " +
                             std::string(std::strerror(errno)));
    }
    Done += static_cast<size_t>(N);
  }
  return Error::success();
}

Expected<Frame> cmcc::shard::recvFrame(int Fd) {
  auto ReadAll = [&](uint8_t *Out, size_t Len) -> Error {
    size_t Done = 0;
    while (Done != Len) {
      ssize_t N = ::recv(Fd, Out + Done, Len - Done, 0);
      if (N == 0)
        return Error::transient("shard peer closed the socket");
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return Error::transient("shard frame recv failed: " +
                               std::string(std::strerror(errno)));
      }
      Done += static_cast<size_t>(N);
    }
    return Error::success();
  };

  uint8_t HeaderBytes[net::FrameHeaderBytes];
  if (Error E = ReadAll(HeaderBytes, sizeof(HeaderBytes)))
    return E;
  Expected<net::FrameHeader> H =
      net::decodeFrameHeader(HeaderBytes, sizeof(HeaderBytes));
  if (!H)
    return Error::transient("shard frame header invalid: " +
                           H.error().message());
  Frame F;
  F.Header = *H;
  F.Payload.resize(H->PayloadBytes);
  if (H->PayloadBytes != 0)
    if (Error E = ReadAll(F.Payload.data(), F.Payload.size()))
      return E;
  return F;
}
