//===- shard/ShardedBackend.h - Multi-process execution -------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ExecutionBackend that partitions the machine's node grid into a
/// ShardGrid of rectangular blocks and runs each block in its own
/// worker process (DESIGN.md §5j). The coordinator speaks the Shard*
/// control protocol over per-worker socketpairs, streams bulk floats
/// through per-worker shared-memory rings, and relays block-edge halo
/// blocks between workers at every §5.1 exchange step — corners still
/// travel in two hops, cornerless stencils still skip the corner pads,
/// and the gathered result is bitwise what the unsharded run produces.
///
/// The coordinator is also the fleet manager: workers are spawned
/// lazily, a worker that dies (crash, kill, injected shard.worker_death
/// fault) fails the in-flight run transiently — the serving layer's
/// retry ladder re-runs the job — and the next run respawns the dead
/// slot and re-sends whatever state (plans, data) the fresh process
/// needs. Nothing but the in-flight job is ever lost.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SHARD_SHARDEDBACKEND_H
#define CMCC_SHARD_SHARDEDBACKEND_H

#include "runtime/Backend.h"
#include "runtime/Executor.h"
#include "runtime/Partition.h"
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cmcc {
namespace shard {

/// The coordinator side of sharded execution.
class ShardedBackend : public ExecutionBackend {
public:
  struct Options {
    /// Worker count when ShardRows/ShardCols are 0 (a near-square
    /// decomposition is chosen).
    int Shards = 2;
    /// Explicit decomposition; both nonzero to take effect.
    int ShardRows = 0;
    int ShardCols = 0;
    /// The backend each worker runs over its block.
    std::string InnerBackend = "cm2";
    /// Inner execution knobs, forwarded to every worker. Domain and
    /// Transport are owned by the seam and ignored here.
    Executor::Options ExecOpts;
    /// Worker binary; empty falls back to $CMCC_SHARD_WORKER, then the
    /// build-time default, then a sibling of /proc/self/exe.
    std::string WorkerPath;
  };

  ShardedBackend(const MachineConfig &Config, Options Opts);
  ~ShardedBackend() override;

  /// The *inner* backend's name: a sharded run executes the same plans,
  /// so plan fingerprints (and cache entries) must not fork on the
  /// process topology.
  const char *name() const override;

  bool reportsWallClock() const override;

  // Re-expose the base class's int-Iterations convenience overloads
  // (hidden by the RunOptions overrides).
  using ExecutionBackend::run;
  using ExecutionBackend::runResolved;
  using ExecutionBackend::timeOnly;

  Expected<TimingReport>
  runResolved(const CompiledStencil &Compiled,
              const ResolvedStencilArguments &Resolved,
              const RunOptions &RO) const override;

  Expected<TimingReport> timeOnly(const CompiledStencil &Compiled,
                                  int SubRows, int SubCols,
                                  const RunOptions &RO) const override;

  const MachineConfig &machine() const override { return Config; }

  /// The decomposition in use (meaningful only when valid()).
  ShardGrid shardGrid() const { return Grid; }

  /// False when the requested decomposition does not divide this
  /// machine's node grid; every run then fails with the explanation.
  bool valid() const { return !static_cast<bool>(GridError); }

  /// The decomposition's rejection text when !valid() (tools fail fast
  /// at startup with it instead of failing every job identically).
  std::string gridErrorMessage() const { return GridError.message(); }

private:
  struct Worker;

  Error ensureWorkers() const;
  Error spawnWorker(int Shard) const;
  Error ensurePlan(const CompiledStencil &Compiled, uint64_t Fingerprint,
                   Worker &W) const;
  Error scatterArray(Worker &W, uint32_t Slot,
                     const DistributedArray &A) const;
  Error relayAndGather(const ResolvedStencilArguments &Resolved,
                       std::vector<TimingReport> &Reports) const;
  std::string workerPath() const;

  MachineConfig Config;
  Options Opts;
  std::string InnerName;
  ShardGrid Grid;
  Error GridError = Error::success();

  /// One run at a time: the relay protocol is a lock-step collective
  /// over all workers.
  mutable std::mutex RunMutex;
  mutable std::vector<std::unique_ptr<Worker>> Workers;
  /// .cmccode text per plan fingerprint, serialized once.
  mutable std::map<uint64_t, std::string> PlanTexts;
};

} // namespace shard
} // namespace cmcc

#endif // CMCC_SHARD_SHARDEDBACKEND_H
