//===- shard/ShardWorker.h - Worker-process main loop ---------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The body of the cmcc_shard_worker process: one shard of the node
/// grid, executing the coordinator's jobs over the inherited socketpair
/// (control frames) and shared-memory ring (bulk floats). The worker
/// owns its slotted local arrays and its plan cache across runs, so a
/// failed run (an aborted exchange, an injected fault) leaves it ready
/// for the retry — the coordinator re-scatters and re-runs without
/// respawning.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SHARD_SHARDWORKER_H
#define CMCC_SHARD_SHARDWORKER_H

namespace cmcc {
namespace shard {

/// Serves the coordinator on \p SocketFd / \p ShmFd until a Shutdown
/// message or peer EOF. Returns the process exit code.
int runShardWorker(int SocketFd, int ShmFd);

} // namespace shard
} // namespace cmcc

#endif // CMCC_SHARD_SHARDWORKER_H
