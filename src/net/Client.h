//===- net/Client.h - StencilService network client -----------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the cmcc network protocol: one blocking
/// connection to a Server, offering the StencilService verbs
/// (submit / poll / wait / cancel / stats) as simple calls plus the
/// raw send/receive primitives the load harness uses to pipeline many
/// requests down one connection.
///
/// Blocking convenience calls (submit(), wait(), ...) send one request
/// and read until its response arrives; any interleaved responses to
/// pipelined requests issued through the raw primitives would be
/// misdelivered, so a connection is EITHER used via the conveniences or
/// via sendRequest()/receive() — not both at once. All calls are
/// single-threaded per connection (one Client per thread is the model;
/// the struct holds no locks).
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_NET_CLIENT_H
#define CMCC_NET_CLIENT_H

#include "net/Protocol.h"
#include "net/Server.h"
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cmcc {
namespace net {

/// One connection to a cmcc network server.
class Client {
public:
  struct Options {
    Endpoint Target;
    /// Tenant id stamped on every frame this connection sends.
    uint32_t Tenant = 0;
  };

  /// Connects (blocking). Fails with the connect(2) diagnostic.
  static Expected<std::unique_ptr<Client>> connect(const Options &Opts);

  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  //===--- Blocking conveniences ------------------------------------------===//

  Expected<HelloResponse> hello(const std::string &ClientName);
  Expected<SubmitResponse> submit(const SubmitRequest &Req);
  Expected<PollResponse> poll(int64_t JobId);
  Expected<WaitResponse> wait(int64_t JobId);
  Expected<CancelResponse> cancel(int64_t JobId);
  Expected<StatsResponse> stats();
  /// Per-job event timeline of a recently finished job (version 2).
  Expected<TimelineResponse> timeline(int64_t JobId);
  /// The server's flight-recorder JSON (version 2).
  Expected<DumpResponse> dump();

  //===--- Pipelining primitives ------------------------------------------===//

  /// A fresh request id (monotonic per connection).
  uint64_t nextRequestId() { return NextRequestId++; }

  /// Writes one request frame (blocking until fully written).
  Error sendRequest(MsgType Type, uint64_t RequestId,
                    const std::vector<uint8_t> &Payload);

  /// One response frame, header decoded, payload raw.
  struct RawResponse {
    FrameHeader Header;
    std::vector<uint8_t> Payload;
  };

  /// Reads the next response frame (blocking). Fails on EOF, a socket
  /// error, or a malformed frame.
  Expected<RawResponse> receive();

  uint32_t tenant() const { return Tenant; }

private:
  Client(int Fd, uint32_t Tenant) : Fd(Fd), Tenant(Tenant) {}

  /// Sends \p Req and reads to its response, expecting \p WantType.
  /// An ErrorResponse for our request id becomes a failure carrying
  /// the server's message.
  Expected<RawResponse> roundTrip(MsgType Type, uint64_t RequestId,
                                  const std::vector<uint8_t> &Payload,
                                  MsgType WantType);

  int Fd = -1;
  uint32_t Tenant = 0;
  uint64_t NextRequestId = 1;
};

} // namespace net
} // namespace cmcc

#endif // CMCC_NET_CLIENT_H
