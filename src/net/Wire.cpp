//===- net/Wire.cpp -------------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Wire.h"

using namespace cmcc;
using namespace cmcc::net;

bool net::isKnownMsgType(uint16_t Raw) {
  switch (static_cast<MsgType>(Raw)) {
  case MsgType::HelloRequest:
  case MsgType::HelloResponse:
  case MsgType::SubmitRequest:
  case MsgType::SubmitResponse:
  case MsgType::PollRequest:
  case MsgType::PollResponse:
  case MsgType::WaitRequest:
  case MsgType::WaitResponse:
  case MsgType::CancelRequest:
  case MsgType::CancelResponse:
  case MsgType::StatsRequest:
  case MsgType::StatsResponse:
  case MsgType::ErrorResponse:
  case MsgType::TimelineRequest:
  case MsgType::TimelineResponse:
  case MsgType::DumpRequest:
  case MsgType::DumpResponse:
  case MsgType::ShardInitRequest:
  case MsgType::ShardInitResponse:
  case MsgType::ShardPlanRequest:
  case MsgType::ShardPlanResponse:
  case MsgType::ShardDataRequest:
  case MsgType::ShardDataResponse:
  case MsgType::ShardRunRequest:
  case MsgType::ShardRunResponse:
  case MsgType::ShardHaloRequest:
  case MsgType::ShardHaloResponse:
  case MsgType::ShardShutdownRequest:
  case MsgType::ShardShutdownResponse:
    return true;
  }
  return false;
}

uint64_t net::fnv1a(const void *Data, size_t Len) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = 0; I != Len; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

namespace {

void putLe16(uint8_t *Out, uint16_t V) {
  Out[0] = static_cast<uint8_t>(V);
  Out[1] = static_cast<uint8_t>(V >> 8);
}

void putLe32(uint8_t *Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out[I] = static_cast<uint8_t>(V >> (8 * I));
}

void putLe64(uint8_t *Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out[I] = static_cast<uint8_t>(V >> (8 * I));
}

uint16_t getLe16(const uint8_t *In) {
  return static_cast<uint16_t>(In[0] | (In[1] << 8));
}

uint32_t getLe32(const uint8_t *In) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(In[I]) << (8 * I);
  return V;
}

uint64_t getLe64(const uint8_t *In) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(In[I]) << (8 * I);
  return V;
}

} // namespace

void net::encodeFrameHeader(const FrameHeader &H, uint8_t *Out) {
  putLe32(Out + 0, FrameMagic);
  putLe16(Out + 4, H.Version);
  putLe16(Out + 6, static_cast<uint16_t>(H.Type));
  putLe32(Out + 8, H.Tenant);
  putLe64(Out + 12, H.RequestId);
  putLe32(Out + 20, H.PayloadBytes);
  putLe32(Out + 24, static_cast<uint32_t>(fnv1a(Out, 24)));
}

Expected<FrameHeader> net::decodeFrameHeader(const uint8_t *Data, size_t Len) {
  if (Len < FrameHeaderBytes)
    return Error::failure("frame header truncated: " + std::to_string(Len) + " of " +
                 std::to_string(FrameHeaderBytes) + " bytes");
  if (getLe32(Data + 0) != FrameMagic)
    return Error::failure("bad frame magic (not a cmcc protocol stream)");
  // Verify the checksum before trusting anything else in the header —
  // especially the length field.
  const uint32_t Want = static_cast<uint32_t>(fnv1a(Data, 24));
  if (getLe32(Data + 24) != Want)
    return Error::failure("frame header checksum mismatch");
  FrameHeader H;
  H.Version = getLe16(Data + 4);
  if (H.Version < MinProtocolVersion || H.Version > ProtocolVersion)
    return Error::failure("unsupported protocol version " + std::to_string(H.Version) +
                 " (this end speaks " + std::to_string(MinProtocolVersion) +
                 ".." + std::to_string(ProtocolVersion) + ")");
  const uint16_t RawType = getLe16(Data + 6);
  if (!isKnownMsgType(RawType))
    return Error::failure("unknown message type " + std::to_string(RawType));
  H.Type = static_cast<MsgType>(RawType);
  H.Tenant = getLe32(Data + 8);
  H.RequestId = getLe64(Data + 12);
  H.PayloadBytes = getLe32(Data + 20);
  if (H.PayloadBytes > MaxPayloadBytes)
    return Error::failure("frame payload of " + std::to_string(H.PayloadBytes) +
                 " bytes exceeds the " + std::to_string(MaxPayloadBytes) +
                 "-byte cap");
  return H;
}

void ByteWriter::str(const std::string &S) {
  u32(static_cast<uint32_t>(S.size()));
  Buf.insert(Buf.end(), S.begin(), S.end());
}

void ByteWriter::floats(const float *Data, size_t Count) {
  u32(static_cast<uint32_t>(Count));
  const size_t Bytes = Count * sizeof(float);
  const size_t At = Buf.size();
  Buf.resize(At + Bytes);
  if (Bytes)
    std::memcpy(Buf.data() + At, Data, Bytes);
  u64(fnv1a(Buf.data() + At, Bytes));
}

bool ByteReader::str(std::string &S, size_t MaxLen) {
  uint32_t N;
  if (!u32(N))
    return false;
  if (N > MaxLen || N > remaining()) {
    Failed = true;
    return false;
  }
  S.assign(reinterpret_cast<const char *>(Data + Pos), N);
  Pos += N;
  return true;
}

bool ByteReader::floats(std::vector<float> &V, size_t MaxCount) {
  uint32_t N;
  if (!u32(N))
    return false;
  const size_t Bytes = static_cast<size_t>(N) * sizeof(float);
  // Validate the count against bytes actually present (plus the trailing
  // checksum) before the allocation.
  if (N > MaxCount || remaining() < Bytes + sizeof(uint64_t)) {
    Failed = true;
    return false;
  }
  const uint64_t Want = fnv1a(Data + Pos, Bytes);
  V.resize(N);
  if (Bytes)
    std::memcpy(V.data(), Data + Pos, Bytes);
  Pos += Bytes;
  uint64_t Got;
  if (!u64(Got))
    return false;
  if (Got != Want) {
    Failed = true;
    return false;
  }
  return true;
}

std::vector<uint8_t> net::buildFrame(MsgType Type, uint64_t RequestId,
                                     uint32_t Tenant,
                                     const std::vector<uint8_t> &Payload) {
  FrameHeader H;
  H.Type = Type;
  H.Tenant = Tenant;
  H.RequestId = RequestId;
  H.PayloadBytes = static_cast<uint32_t>(Payload.size());
  std::vector<uint8_t> Frame(FrameHeaderBytes + Payload.size());
  encodeFrameHeader(H, Frame.data());
  if (!Payload.empty())
    std::memcpy(Frame.data() + FrameHeaderBytes, Payload.data(),
                Payload.size());
  return Frame;
}
