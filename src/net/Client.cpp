//===- net/Client.cpp -----------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cmcc;
using namespace cmcc::net;

namespace {

/// write(2) until every byte is out (handles partial writes + EINTR).
Error writeFull(int Fd, const uint8_t *Data, size_t Len) {
  size_t Done = 0;
  while (Done < Len) {
    const ssize_t N = ::send(Fd, Data + Done, Len - Done, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Error::failure(std::string("socket write: ") + std::strerror(errno));
    }
    Done += static_cast<size_t>(N);
  }
  return Error::success();
}

/// read(2) until exactly \p Len bytes arrived; EOF mid-message fails.
Error readFull(int Fd, uint8_t *Data, size_t Len) {
  size_t Done = 0;
  while (Done < Len) {
    const ssize_t N = ::read(Fd, Data + Done, Len - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Error::failure(std::string("socket read: ") + std::strerror(errno));
    }
    if (N == 0)
      return Error::failure("connection closed by server");
    Done += static_cast<size_t>(N);
  }
  return Error::success();
}

} // namespace

Expected<std::unique_ptr<Client>> Client::connect(const Options &Opts) {
  int Fd = -1;
  if (Opts.Target.Transport == Endpoint::Kind::Unix) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return Error::failure(std::string("socket(AF_UNIX): ") + std::strerror(errno));
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Opts.Target.Path.c_str(),
                 sizeof(Addr.sun_path) - 1);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      const int E = errno;
      ::close(Fd);
      return Error::failure("connect(" + Opts.Target.Path +
                   "): " + std::strerror(E));
    }
  } else {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return Error::failure(std::string("socket(AF_INET): ") + std::strerror(errno));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(Opts.Target.Port));
    if (::inet_pton(AF_INET, Opts.Target.Host.c_str(), &Addr.sin_addr) != 1) {
      ::close(Fd);
      return Error::failure("bad server host '" + Opts.Target.Host + "'");
    }
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      const int E = errno;
      ::close(Fd);
      return Error::failure("connect(" + Opts.Target.str() +
                   "): " + std::strerror(E));
    }
    const int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  }
  return std::unique_ptr<Client>(new Client(Fd, Opts.Tenant));
}

Client::~Client() {
  if (Fd >= 0)
    ::close(Fd);
}

Error Client::sendRequest(MsgType Type, uint64_t RequestId,
                          const std::vector<uint8_t> &Payload) {
  const std::vector<uint8_t> Frame =
      buildFrame(Type, RequestId, Tenant, Payload);
  return writeFull(Fd, Frame.data(), Frame.size());
}

Expected<Client::RawResponse> Client::receive() {
  uint8_t Header[FrameHeaderBytes];
  if (Error E = readFull(Fd, Header, sizeof(Header)))
    return E;
  Expected<FrameHeader> H = decodeFrameHeader(Header, sizeof(Header));
  if (!H)
    return H.error();
  RawResponse R;
  R.Header = *H;
  R.Payload.resize(H->PayloadBytes);
  if (H->PayloadBytes)
    if (Error E = readFull(Fd, R.Payload.data(), R.Payload.size()))
      return E;
  return R;
}

Expected<Client::RawResponse>
Client::roundTrip(MsgType Type, uint64_t RequestId,
                  const std::vector<uint8_t> &Payload, MsgType WantType) {
  if (Error E = sendRequest(Type, RequestId, Payload))
    return E;
  // With no pipelined requests outstanding, the next responses are
  // ours (or stale responses to requests an earlier convenience call
  // abandoned on error — skipped by request id).
  while (true) {
    Expected<RawResponse> R = receive();
    if (!R)
      return R.error();
    if (R->Header.RequestId != RequestId)
      continue;
    if (R->Header.Type == MsgType::ErrorResponse) {
      Expected<ErrorResponse> E =
          decodeErrorResponse(R->Payload.data(), R->Payload.size());
      return Error::failure(E ? "server error: " + E->Message
                     : "server error (undecodable ErrorResponse)");
    }
    if (R->Header.Type != WantType)
      return Error::failure("unexpected response type " +
                   std::to_string(static_cast<int>(R->Header.Type)));
    return R;
  }
}

Expected<HelloResponse> Client::hello(const std::string &ClientName) {
  HelloRequest M;
  M.ClientName = ClientName;
  Expected<RawResponse> R = roundTrip(MsgType::HelloRequest, nextRequestId(),
                                      encode(M), MsgType::HelloResponse);
  if (!R)
    return R.error();
  return decodeHelloResponse(R->Payload.data(), R->Payload.size());
}

Expected<SubmitResponse> Client::submit(const SubmitRequest &Req) {
  Expected<RawResponse> R = roundTrip(MsgType::SubmitRequest, nextRequestId(),
                                      encode(Req), MsgType::SubmitResponse);
  if (!R)
    return R.error();
  return decodeSubmitResponse(R->Payload.data(), R->Payload.size());
}

Expected<PollResponse> Client::poll(int64_t JobId) {
  PollRequest M;
  M.JobId = JobId;
  Expected<RawResponse> R = roundTrip(MsgType::PollRequest, nextRequestId(),
                                      encode(M), MsgType::PollResponse);
  if (!R)
    return R.error();
  return decodePollResponse(R->Payload.data(), R->Payload.size());
}

Expected<WaitResponse> Client::wait(int64_t JobId) {
  WaitRequest M;
  M.JobId = JobId;
  Expected<RawResponse> R = roundTrip(MsgType::WaitRequest, nextRequestId(),
                                      encode(M), MsgType::WaitResponse);
  if (!R)
    return R.error();
  return decodeWaitResponse(R->Payload.data(), R->Payload.size());
}

Expected<CancelResponse> Client::cancel(int64_t JobId) {
  CancelRequest M;
  M.JobId = JobId;
  Expected<RawResponse> R = roundTrip(MsgType::CancelRequest, nextRequestId(),
                                      encode(M), MsgType::CancelResponse);
  if (!R)
    return R.error();
  return decodeCancelResponse(R->Payload.data(), R->Payload.size());
}

Expected<StatsResponse> Client::stats() {
  Expected<RawResponse> R =
      roundTrip(MsgType::StatsRequest, nextRequestId(), encode(StatsRequest{}),
                MsgType::StatsResponse);
  if (!R)
    return R.error();
  return decodeStatsResponse(R->Payload.data(), R->Payload.size());
}

Expected<TimelineResponse> Client::timeline(int64_t JobId) {
  TimelineRequest M;
  M.JobId = JobId;
  Expected<RawResponse> R = roundTrip(MsgType::TimelineRequest,
                                      nextRequestId(), encode(M),
                                      MsgType::TimelineResponse);
  if (!R)
    return R.error();
  return decodeTimelineResponse(R->Payload.data(), R->Payload.size());
}

Expected<DumpResponse> Client::dump() {
  Expected<RawResponse> R =
      roundTrip(MsgType::DumpRequest, nextRequestId(), encode(DumpRequest{}),
                MsgType::DumpResponse);
  if (!R)
    return R.error();
  return decodeDumpResponse(R->Payload.data(), R->Payload.size());
}
