//===- net/Protocol.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Protocol.h"

using namespace cmcc;
using namespace cmcc::net;

void net::encodeGrid(ByteWriter &W, const GridPayload &G) {
  W.str(G.Name);
  W.u32(G.Rows);
  W.u32(G.Cols);
  W.floats(G.Data.data(), G.Data.size());
}

bool net::decodeGrid(ByteReader &R, GridPayload &G) {
  if (!R.str(G.Name) || !R.u32(G.Rows) || !R.u32(G.Cols) ||
      !R.floats(G.Data))
    return false;
  // The dimensions must describe exactly the floats that arrived.
  return static_cast<uint64_t>(G.Rows) * G.Cols == G.Data.size();
}

TimingReport WaitResponse::report() const {
  TimingReport T;
  T.Cycles.Compute = CyclesCompute;
  T.Cycles.PipeReversal = CyclesPipeReversal;
  T.Cycles.LineOverhead = CyclesLineOverhead;
  T.Cycles.StripStartup = CyclesStripStartup;
  T.Cycles.Communication = CyclesCommunication;
  T.UsefulFlopsPerNodePerIteration = UsefulFlopsPerNodePerIteration;
  T.Iterations = Iterations;
  T.HostSecondsPerIteration = HostSecondsPerIteration;
  T.Nodes = static_cast<int>(Nodes);
  T.ClockMHz = ClockMHz;
  return T;
}

void WaitResponse::setReport(const TimingReport &R) {
  CyclesCompute = R.Cycles.Compute;
  CyclesPipeReversal = R.Cycles.PipeReversal;
  CyclesLineOverhead = R.Cycles.LineOverhead;
  CyclesStripStartup = R.Cycles.StripStartup;
  CyclesCommunication = R.Cycles.Communication;
  UsefulFlopsPerNodePerIteration = R.UsefulFlopsPerNodePerIteration;
  Iterations = R.Iterations;
  HostSecondsPerIteration = R.HostSecondsPerIteration;
  Nodes = static_cast<uint32_t>(R.Nodes);
  ClockMHz = R.ClockMHz;
}

namespace {

/// Shared tail of every decode: the payload must parse and be consumed
/// exactly.
template <typename T>
Expected<T> finish(ByteReader &R, T &&M, const char *What) {
  if (!R.exhausted())
    return Error::failure(std::string("malformed ") + What + " payload");
  return std::move(M);
}

} // namespace

//===--- Hello ------------------------------------------------------------===//

std::vector<uint8_t> net::encode(const HelloRequest &M) {
  ByteWriter W;
  W.str(M.ClientName);
  return W.take();
}

Expected<HelloRequest> net::decodeHelloRequest(const uint8_t *Data,
                                               size_t Len) {
  ByteReader R(Data, Len);
  HelloRequest M;
  R.str(M.ClientName);
  return finish(R, std::move(M), "HelloRequest");
}

std::vector<uint8_t> net::encode(const HelloResponse &M) {
  ByteWriter W;
  W.u16(M.Version);
  W.str(M.Banner);
  W.str(M.Machine);
  return W.take();
}

Expected<HelloResponse> net::decodeHelloResponse(const uint8_t *Data,
                                                 size_t Len) {
  ByteReader R(Data, Len);
  HelloResponse M;
  R.u16(M.Version);
  R.str(M.Banner);
  R.str(M.Machine);
  return finish(R, std::move(M), "HelloResponse");
}

//===--- Submit -----------------------------------------------------------===//

std::vector<uint8_t> net::encode(const SubmitRequest &M) {
  ByteWriter W;
  W.u8(M.Kind);
  W.str(M.Source);
  W.u64(M.Fingerprint);
  W.u32(M.SubRows);
  W.u32(M.SubCols);
  W.u32(M.Iterations);
  W.str(M.ResultName);
  W.u32(static_cast<uint32_t>(M.Grids.size()));
  for (const SubmitRequest::BoundGrid &B : M.Grids) {
    W.u8(static_cast<uint8_t>(B.Kind));
    encodeGrid(W, B.Grid);
  }
  // Version 2 trace context, always appended: a v2 payload decodes on
  // both ends, and a v1 decoder never gets here (it rejects the frame
  // header's version first).
  W.u64(M.TraceId);
  W.u64(M.ParentSpan);
  return W.take();
}

Expected<SubmitRequest> net::decodeSubmitRequest(const uint8_t *Data,
                                                 size_t Len) {
  ByteReader R(Data, Len);
  SubmitRequest M;
  uint32_t NGrids = 0;
  bool Ok = R.u8(M.Kind) && R.str(M.Source) && R.u64(M.Fingerprint) &&
            R.u32(M.SubRows) && R.u32(M.SubCols) && R.u32(M.Iterations) &&
            R.str(M.ResultName) && R.u32(NGrids);
  // Each grid costs at least a dozen bytes on the wire, so a count that
  // exceeds the remaining payload is bogus — reject before reserving.
  if (!Ok || NGrids > R.remaining())
    return Error::failure("malformed SubmitRequest payload");
  for (uint32_t I = 0; I != NGrids; ++I) {
    SubmitRequest::BoundGrid B;
    uint8_t Role = 0;
    if (!R.u8(Role) || Role > 2 || !decodeGrid(R, B.Grid))
      return Error::failure("malformed SubmitRequest payload");
    B.Kind = static_cast<SubmitRequest::Role>(Role);
    M.Grids.push_back(std::move(B));
  }
  // A version-1 payload ends here; version 2 appends the trace context.
  if (R.remaining() != 0 && (!R.u64(M.TraceId) || !R.u64(M.ParentSpan)))
    return Error::failure("malformed SubmitRequest payload");
  return finish(R, std::move(M), "SubmitRequest");
}

std::vector<uint8_t> net::encode(const SubmitResponse &M) {
  ByteWriter W;
  W.i64(M.JobId);
  return W.take();
}

Expected<SubmitResponse> net::decodeSubmitResponse(const uint8_t *Data,
                                                   size_t Len) {
  ByteReader R(Data, Len);
  SubmitResponse M;
  R.i64(M.JobId);
  return finish(R, std::move(M), "SubmitResponse");
}

//===--- Poll -------------------------------------------------------------===//

std::vector<uint8_t> net::encode(const PollRequest &M) {
  ByteWriter W;
  W.i64(M.JobId);
  return W.take();
}

Expected<PollRequest> net::decodePollRequest(const uint8_t *Data, size_t Len) {
  ByteReader R(Data, Len);
  PollRequest M;
  R.i64(M.JobId);
  return finish(R, std::move(M), "PollRequest");
}

std::vector<uint8_t> net::encode(const PollResponse &M) {
  ByteWriter W;
  W.u8(M.State);
  return W.take();
}

Expected<PollResponse> net::decodePollResponse(const uint8_t *Data,
                                               size_t Len) {
  ByteReader R(Data, Len);
  PollResponse M;
  R.u8(M.State);
  return finish(R, std::move(M), "PollResponse");
}

//===--- Wait -------------------------------------------------------------===//

std::vector<uint8_t> net::encode(const WaitRequest &M) {
  ByteWriter W;
  W.i64(M.JobId);
  return W.take();
}

Expected<WaitRequest> net::decodeWaitRequest(const uint8_t *Data, size_t Len) {
  ByteReader R(Data, Len);
  WaitRequest M;
  R.i64(M.JobId);
  return finish(R, std::move(M), "WaitRequest");
}

std::vector<uint8_t> net::encode(const WaitResponse &M) {
  ByteWriter W;
  W.u8(M.Ok);
  W.u8(M.Status);
  W.str(M.Message);
  W.u64(M.Fingerprint);
  W.u8(M.CacheHit);
  W.u8(M.Coalesced);
  W.f64(M.CompileSeconds);
  W.f64(M.ExecuteSeconds);
  W.u32(M.Retries);
  W.u8(M.FellBack);
  W.i64(M.CyclesCompute);
  W.i64(M.CyclesPipeReversal);
  W.i64(M.CyclesLineOverhead);
  W.i64(M.CyclesStripStartup);
  W.i64(M.CyclesCommunication);
  W.i64(M.UsefulFlopsPerNodePerIteration);
  W.i64(M.Iterations);
  W.f64(M.HostSecondsPerIteration);
  W.u32(M.Nodes);
  W.f64(M.ClockMHz);
  W.u8(M.HasResult);
  if (M.HasResult)
    encodeGrid(W, M.Result);
  return W.take();
}

Expected<WaitResponse> net::decodeWaitResponse(const uint8_t *Data,
                                               size_t Len) {
  ByteReader R(Data, Len);
  WaitResponse M;
  bool Ok = R.u8(M.Ok) && R.u8(M.Status) && R.str(M.Message) &&
            R.u64(M.Fingerprint) && R.u8(M.CacheHit) && R.u8(M.Coalesced) &&
            R.f64(M.CompileSeconds) && R.f64(M.ExecuteSeconds) &&
            R.u32(M.Retries) && R.u8(M.FellBack) && R.i64(M.CyclesCompute) &&
            R.i64(M.CyclesPipeReversal) && R.i64(M.CyclesLineOverhead) &&
            R.i64(M.CyclesStripStartup) && R.i64(M.CyclesCommunication) &&
            R.i64(M.UsefulFlopsPerNodePerIteration) && R.i64(M.Iterations) &&
            R.f64(M.HostSecondsPerIteration) && R.u32(M.Nodes) &&
            R.f64(M.ClockMHz) && R.u8(M.HasResult);
  if (!Ok || (M.HasResult && !decodeGrid(R, M.Result)))
    return Error::failure("malformed WaitResponse payload");
  return finish(R, std::move(M), "WaitResponse");
}

//===--- Cancel -----------------------------------------------------------===//

std::vector<uint8_t> net::encode(const CancelRequest &M) {
  ByteWriter W;
  W.i64(M.JobId);
  return W.take();
}

Expected<CancelRequest> net::decodeCancelRequest(const uint8_t *Data,
                                                 size_t Len) {
  ByteReader R(Data, Len);
  CancelRequest M;
  R.i64(M.JobId);
  return finish(R, std::move(M), "CancelRequest");
}

std::vector<uint8_t> net::encode(const CancelResponse &M) {
  ByteWriter W;
  W.u8(M.Cancelled);
  return W.take();
}

Expected<CancelResponse> net::decodeCancelResponse(const uint8_t *Data,
                                                   size_t Len) {
  ByteReader R(Data, Len);
  CancelResponse M;
  R.u8(M.Cancelled);
  return finish(R, std::move(M), "CancelResponse");
}

//===--- Stats ------------------------------------------------------------===//

std::vector<uint8_t> net::encode(const StatsRequest &) { return {}; }

Expected<StatsRequest> net::decodeStatsRequest(const uint8_t *Data,
                                               size_t Len) {
  ByteReader R(Data, Len);
  return finish(R, StatsRequest{}, "StatsRequest");
}

std::vector<uint8_t> net::encode(const StatsResponse &M) {
  ByteWriter W;
  W.str(M.Json);
  W.str(M.Table);
  W.str(M.NetJson);
  W.str(M.NetTable);
  return W.take();
}

Expected<StatsResponse> net::decodeStatsResponse(const uint8_t *Data,
                                                 size_t Len) {
  ByteReader R(Data, Len);
  StatsResponse M;
  R.str(M.Json);
  R.str(M.Table);
  // A version-1 response ends here; version 2 appends the net metrics.
  if (R.remaining() != 0 && (!R.str(M.NetJson) || !R.str(M.NetTable)))
    return Error::failure("malformed StatsResponse payload");
  return finish(R, std::move(M), "StatsResponse");
}

//===--- Timeline ---------------------------------------------------------===//

std::vector<uint8_t> net::encode(const TimelineRequest &M) {
  ByteWriter W;
  W.i64(M.JobId);
  return W.take();
}

Expected<TimelineRequest> net::decodeTimelineRequest(const uint8_t *Data,
                                                     size_t Len) {
  ByteReader R(Data, Len);
  TimelineRequest M;
  R.i64(M.JobId);
  return finish(R, std::move(M), "TimelineRequest");
}

std::vector<uint8_t> net::encode(const TimelineResponse &M) {
  ByteWriter W;
  W.u8(M.Found);
  W.str(M.Json);
  return W.take();
}

Expected<TimelineResponse> net::decodeTimelineResponse(const uint8_t *Data,
                                                       size_t Len) {
  ByteReader R(Data, Len);
  TimelineResponse M;
  R.u8(M.Found);
  R.str(M.Json);
  return finish(R, std::move(M), "TimelineResponse");
}

//===--- Dump -------------------------------------------------------------===//

std::vector<uint8_t> net::encode(const DumpRequest &) { return {}; }

Expected<DumpRequest> net::decodeDumpRequest(const uint8_t *Data, size_t Len) {
  ByteReader R(Data, Len);
  return finish(R, DumpRequest{}, "DumpRequest");
}

std::vector<uint8_t> net::encode(const DumpResponse &M) {
  ByteWriter W;
  W.str(M.Json);
  return W.take();
}

Expected<DumpResponse> net::decodeDumpResponse(const uint8_t *Data,
                                               size_t Len) {
  ByteReader R(Data, Len);
  DumpResponse M;
  // A full flight-recorder ring serializes to a few hundred KiB; allow
  // well past that while staying under the frame cap.
  R.str(M.Json, 8u << 20);
  return finish(R, std::move(M), "DumpResponse");
}

//===--- Error ------------------------------------------------------------===//

std::vector<uint8_t> net::encode(const ErrorResponse &M) {
  ByteWriter W;
  W.u16(M.Code);
  W.str(M.Message);
  return W.take();
}

Expected<ErrorResponse> net::decodeErrorResponse(const uint8_t *Data,
                                                 size_t Len) {
  ByteReader R(Data, Len);
  ErrorResponse M;
  R.u16(M.Code);
  R.str(M.Message);
  return finish(R, std::move(M), "ErrorResponse");
}
