//===- net/Protocol.h - Request/response message codecs -------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The message-level half of the cmcc network protocol: plain structs
/// for every request and response the StencilService front door speaks,
/// with encode functions producing frame payloads and decode functions
/// that accept arbitrary bytes and fail cleanly (see net/Wire.h for the
/// byte-level contract).
///
/// The request/response pairs mirror the StencilService API one to one
/// (submit / poll / wait / cancel / stats) plus a Hello handshake.
/// Grids cross the wire as *global* arrays — the client never needs to
/// know the server's node decomposition — and WaitResponse carries the
/// full TimingReport field by field, so a result reconstructed client
/// side is bitwise identical to what an in-process wait() returns.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_NET_PROTOCOL_H
#define CMCC_NET_PROTOCOL_H

#include "net/Wire.h"
#include "service/StencilService.h"
#include <cstdint>
#include <string>
#include <vector>

namespace cmcc {
namespace net {

/// One named global array on the wire (raw f32 data + FNV-1a64
/// checksum, via ByteWriter::floats).
struct GridPayload {
  std::string Name;
  uint32_t Rows = 0;
  uint32_t Cols = 0;
  std::vector<float> Data; ///< Row-major, Rows*Cols elements.
};

void encodeGrid(ByteWriter &W, const GridPayload &G);
bool decodeGrid(ByteReader &R, GridPayload &G);

//===--- Hello ------------------------------------------------------------===//

/// Opens a connection: the client names itself, the server answers with
/// its identity. Optional — the server serves requests without it — but
/// it is the cheap way to verify version compatibility up front.
struct HelloRequest {
  std::string ClientName;
};

struct HelloResponse {
  uint16_t Version = ProtocolVersion;
  std::string Banner;  ///< Server provenance (compiler identity, flags).
  std::string Machine; ///< MachineConfig::summary() of the served machine.
};

//===--- Submit -----------------------------------------------------------===//

/// A StencilService::JobRequest on the wire. Tenant travels in the
/// frame header, not here. When Grids is empty the job is timing-only
/// for SubRows x SubCols; otherwise Grids[0] is the source array and
/// ResultName names the output, with coefficient / extra-source arrays
/// following (Role tells the server where each one binds).
struct SubmitRequest {
  uint8_t Kind = 0; ///< StencilService::SourceKind as its integer value.
  std::string Source;
  uint64_t Fingerprint = 0;
  uint32_t SubRows = 64;
  uint32_t SubCols = 64;
  uint32_t Iterations = 1;
  std::string ResultName; ///< Empty for timing-only jobs.
  enum class Role : uint8_t { Source = 0, Coefficient = 1, ExtraSource = 2 };
  struct BoundGrid {
    Role Kind = Role::Source;
    GridPayload Grid;
  };
  std::vector<BoundGrid> Grids;
  /// Version 2: client-minted trace context, appended after the grids
  /// so a version-1 payload (which simply ends there) still decodes.
  /// Zero means "not traced".
  uint64_t TraceId = 0;
  uint64_t ParentSpan = 0;
};

struct SubmitResponse {
  int64_t JobId = 0;
};

//===--- Poll -------------------------------------------------------------===//

struct PollRequest {
  int64_t JobId = 0;
};

struct PollResponse {
  uint8_t State = 0; ///< StencilService::JobState as its integer value.
};

//===--- Wait -------------------------------------------------------------===//

struct WaitRequest {
  int64_t JobId = 0;
};

/// A StencilService::JobResult on the wire, TimingReport included so
/// rates computed client side match the server exactly. Result (when
/// present) is the gathered global output grid.
struct WaitResponse {
  uint8_t Ok = 0;
  uint8_t Status = 0; ///< StencilService::JobStatus as its integer value.
  std::string Message;
  uint64_t Fingerprint = 0;
  uint8_t CacheHit = 0;
  uint8_t Coalesced = 0;
  double CompileSeconds = 0.0;
  double ExecuteSeconds = 0.0;
  uint32_t Retries = 0;
  uint8_t FellBack = 0;
  // TimingReport, field by field.
  int64_t CyclesCompute = 0;
  int64_t CyclesPipeReversal = 0;
  int64_t CyclesLineOverhead = 0;
  int64_t CyclesStripStartup = 0;
  int64_t CyclesCommunication = 0;
  int64_t UsefulFlopsPerNodePerIteration = 0;
  int64_t Iterations = 1;
  double HostSecondsPerIteration = 0.0;
  uint32_t Nodes = 1;
  double ClockMHz = 7.0;
  uint8_t HasResult = 0;
  GridPayload Result;

  /// Rebuilds the TimingReport this response carries.
  TimingReport report() const;
  /// Captures \p R into the timing fields.
  void setReport(const TimingReport &R);
};

//===--- Cancel -----------------------------------------------------------===//

struct CancelRequest {
  int64_t JobId = 0;
};

struct CancelResponse {
  uint8_t Cancelled = 0; ///< StencilService::cancel()'s return.
};

//===--- Stats ------------------------------------------------------------===//

struct StatsRequest {};

struct StatsResponse {
  std::string Json;  ///< ServiceStats::json().
  std::string Table; ///< ServiceStats::str().
  /// Version 2: the server's net.* wire metrics (request latency and
  /// frame-size histograms), appended so a version-1 response still
  /// decodes. Empty when the peer predates them.
  std::string NetJson;  ///< Registry::json("net.").
  std::string NetTable; ///< Registry::table("net.").
};

//===--- Timeline ---------------------------------------------------------===//

/// Asks for the per-job event timeline (admitted, queued, compile
/// begin/end, execute attempts, retries, fallback, completion) of a
/// recently finished job, from the service's bounded ring.
struct TimelineRequest {
  int64_t JobId = 0;
};

struct TimelineResponse {
  uint8_t Found = 0;
  std::string Json; ///< StencilService::timelineJson() when Found.
};

//===--- Dump -------------------------------------------------------------===//

/// Asks for the process flight recorder (obs::FlightRecorder JSON):
/// black-box forensics over the wire, the remote twin of SIGUSR1.
struct DumpRequest {};

struct DumpResponse {
  std::string Json;
};

//===--- Error ------------------------------------------------------------===//

/// The server's answer to any request it could not serve at the
/// protocol level (malformed payload, unknown job binding, draining).
/// Service-level failures (compile errors, quota rejections) travel in
/// their normal responses instead.
struct ErrorResponse {
  uint16_t Code = 0; ///< ErrBadRequest / ErrDraining / ErrInternal.
  std::string Message;
};

constexpr uint16_t ErrBadRequest = 1;
constexpr uint16_t ErrDraining = 2;
constexpr uint16_t ErrInternal = 3;

//===--- Codecs -----------------------------------------------------------===//
// encode() returns the frame *payload* (pair with buildFrame); each
// decode accepts raw payload bytes and fails cleanly on anything
// malformed, truncated, or trailing-garbage.

std::vector<uint8_t> encode(const HelloRequest &M);
std::vector<uint8_t> encode(const HelloResponse &M);
std::vector<uint8_t> encode(const SubmitRequest &M);
std::vector<uint8_t> encode(const SubmitResponse &M);
std::vector<uint8_t> encode(const PollRequest &M);
std::vector<uint8_t> encode(const PollResponse &M);
std::vector<uint8_t> encode(const WaitRequest &M);
std::vector<uint8_t> encode(const WaitResponse &M);
std::vector<uint8_t> encode(const CancelRequest &M);
std::vector<uint8_t> encode(const CancelResponse &M);
std::vector<uint8_t> encode(const StatsRequest &M);
std::vector<uint8_t> encode(const StatsResponse &M);
std::vector<uint8_t> encode(const ErrorResponse &M);
std::vector<uint8_t> encode(const TimelineRequest &M);
std::vector<uint8_t> encode(const TimelineResponse &M);
std::vector<uint8_t> encode(const DumpRequest &M);
std::vector<uint8_t> encode(const DumpResponse &M);

Expected<HelloRequest> decodeHelloRequest(const uint8_t *Data, size_t Len);
Expected<HelloResponse> decodeHelloResponse(const uint8_t *Data, size_t Len);
Expected<SubmitRequest> decodeSubmitRequest(const uint8_t *Data, size_t Len);
Expected<SubmitResponse> decodeSubmitResponse(const uint8_t *Data, size_t Len);
Expected<PollRequest> decodePollRequest(const uint8_t *Data, size_t Len);
Expected<PollResponse> decodePollResponse(const uint8_t *Data, size_t Len);
Expected<WaitRequest> decodeWaitRequest(const uint8_t *Data, size_t Len);
Expected<WaitResponse> decodeWaitResponse(const uint8_t *Data, size_t Len);
Expected<CancelRequest> decodeCancelRequest(const uint8_t *Data, size_t Len);
Expected<CancelResponse> decodeCancelResponse(const uint8_t *Data, size_t Len);
Expected<StatsRequest> decodeStatsRequest(const uint8_t *Data, size_t Len);
Expected<StatsResponse> decodeStatsResponse(const uint8_t *Data, size_t Len);
Expected<ErrorResponse> decodeErrorResponse(const uint8_t *Data, size_t Len);
Expected<TimelineRequest> decodeTimelineRequest(const uint8_t *Data,
                                                size_t Len);
Expected<TimelineResponse> decodeTimelineResponse(const uint8_t *Data,
                                                  size_t Len);
Expected<DumpRequest> decodeDumpRequest(const uint8_t *Data, size_t Len);
Expected<DumpResponse> decodeDumpResponse(const uint8_t *Data, size_t Len);

} // namespace net
} // namespace cmcc

#endif // CMCC_NET_PROTOCOL_H
