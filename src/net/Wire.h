//===- net/Wire.h - Length-prefixed binary wire format --------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level half of the cmcc network protocol (DESIGN.md §5h):
/// a versioned fixed-size frame header and bounds-checked little-endian
/// payload codecs. Everything the server reads off a socket flows
/// through ByteReader, whose contract is absolute: a truncated,
/// corrupted, or hostile byte stream produces a clean decode failure —
/// never a crash, never a read past the buffer, never an allocation
/// sized by an unvalidated length field.
///
/// Frame layout (28 bytes, little-endian, followed by PayloadBytes of
/// payload):
///
///   offset  size  field
///        0     4  magic      0x434D4331 ("CMC1" on a little-endian wire)
///        4     2  version    protocol version (currently 2; 1 accepted)
///        6     2  type       MsgType
///        8     4  tenant     tenant id (0 = anonymous default tenant)
///       12     8  request id caller-chosen correlation id, echoed back
///       20     4  payload length in bytes (<= MaxPayloadBytes)
///       24     4  header checksum: FNV-1a over bytes [0, 24)
///
/// The checksum is verified before the length field is trusted, so a
/// corrupt header cannot command a giant read. Float arrays travel as
/// raw IEEE-754 bit patterns guarded by an FNV-1a64 payload checksum —
/// results that cross the wire are bitwise what the backend produced.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_NET_WIRE_H
#define CMCC_NET_WIRE_H

#include "support/Error.h"
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace cmcc {
namespace net {

/// "CMC1", read as a little-endian u32.
constexpr uint32_t FrameMagic = 0x31434D43u;

/// The protocol version this library speaks. Bumped on any frame or
/// payload layout change. Version 2 added the submit trace-context
/// fields and the Timeline/Dump message pairs; every v2 payload change
/// is append-only, so frames from MinProtocolVersion peers still decode
/// and both ends reject anything outside [Min, Current] cleanly.
constexpr uint16_t ProtocolVersion = 2;
constexpr uint16_t MinProtocolVersion = 1;

/// Upper bound on one frame's payload. Large enough for a 2048-node
/// machine's gathered result grid, small enough that a corrupt or
/// hostile length field cannot balloon server memory.
constexpr uint32_t MaxPayloadBytes = 64u << 20;

/// Bytes in the fixed frame header.
constexpr size_t FrameHeaderBytes = 28;

/// Every message the protocol knows. Requests are odd, their responses
/// even (response = request + 1); ErrorResponse answers any request the
/// server could not serve.
enum class MsgType : uint16_t {
  HelloRequest = 1,
  HelloResponse = 2,
  SubmitRequest = 3,
  SubmitResponse = 4,
  PollRequest = 5,
  PollResponse = 6,
  WaitRequest = 7,
  WaitResponse = 8,
  CancelRequest = 9,
  CancelResponse = 10,
  StatsRequest = 11,
  StatsResponse = 12,
  ErrorResponse = 14,
  // Version 2.
  TimelineRequest = 15,
  TimelineResponse = 16,
  DumpRequest = 17,
  DumpResponse = 18,
  // The shard coordinator/worker protocol (src/shard/). Same framing,
  // same odd/even convention, but spoken only over the coordinator's
  // private socketpairs — a public server never accepts these.
  ShardInitRequest = 33,
  ShardInitResponse = 34,
  ShardPlanRequest = 35,
  ShardPlanResponse = 36,
  ShardDataRequest = 37,
  ShardDataResponse = 38,
  ShardRunRequest = 39,
  ShardRunResponse = 40,
  ShardHaloRequest = 41,
  ShardHaloResponse = 42,
  ShardShutdownRequest = 43,
  ShardShutdownResponse = 44,
};

/// True for type values this protocol version defines.
bool isKnownMsgType(uint16_t Raw);

/// FNV-1a over \p Len bytes (the protocol's only hash: header checksums
/// truncate it to 32 bits, grid payloads keep all 64).
uint64_t fnv1a(const void *Data, size_t Len);

/// The decoded fixed header of one frame.
struct FrameHeader {
  uint16_t Version = ProtocolVersion;
  MsgType Type = MsgType::ErrorResponse;
  uint32_t Tenant = 0;
  uint64_t RequestId = 0;
  uint32_t PayloadBytes = 0;
};

/// Encodes \p H into exactly FrameHeaderBytes at \p Out (checksum
/// included).
void encodeFrameHeader(const FrameHeader &H, uint8_t *Out);

/// Decodes a header from \p Data (which must hold at least
/// FrameHeaderBytes). Verifies magic, version, checksum, known type,
/// and the payload bound; the message names which check failed.
Expected<FrameHeader> decodeFrameHeader(const uint8_t *Data, size_t Len);

/// Little-endian payload builder. Append-only; take() surrenders the
/// buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u16(uint16_t V) { appendLe(V); }
  void u32(uint32_t V) { appendLe(V); }
  void u64(uint64_t V) { appendLe(V); }
  void i64(int64_t V) { appendLe(static_cast<uint64_t>(V)); }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    appendLe(Bits);
  }

  /// u32 length followed by the raw bytes.
  void str(const std::string &S);

  /// u32 element count, raw IEEE-754 floats, then an FNV-1a64 checksum
  /// of those float bytes.
  void floats(const float *Data, size_t Count);

  size_t size() const { return Buf.size(); }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  template <typename T> void appendLe(T V) {
    for (size_t I = 0; I != sizeof(T); ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian payload reader. Every accessor returns
/// false (and latches the failure) instead of reading past the end;
/// decode functions test ok() once at the end. A length field is never
/// used to size an allocation before the remaining-bytes check proves
/// the bytes are actually present.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Len) : Data(Data), Len(Len) {}

  bool u8(uint8_t &V) { return readLe(V); }
  bool u16(uint16_t &V) { return readLe(V); }
  bool u32(uint32_t &V) { return readLe(V); }
  bool u64(uint64_t &V) { return readLe(V); }
  bool i64(int64_t &V) {
    uint64_t Bits;
    if (!readLe(Bits))
      return false;
    V = static_cast<int64_t>(Bits);
    return true;
  }
  bool f64(double &V) {
    uint64_t Bits;
    if (!readLe(Bits))
      return false;
    std::memcpy(&V, &Bits, sizeof(V));
    return true;
  }

  /// Reads a u32-length-prefixed string of at most \p MaxLen bytes.
  bool str(std::string &S, size_t MaxLen = 1u << 20);

  /// Reads a float array written by ByteWriter::floats and verifies its
  /// checksum (a checksum mismatch is a failed read).
  bool floats(std::vector<float> &V, size_t MaxCount = 1u << 24);

  /// True while no read has failed.
  bool ok() const { return !Failed; }

  /// True when the payload was consumed exactly — trailing garbage is
  /// a decode error at the message layer.
  bool exhausted() const { return !Failed && Pos == Len; }

  size_t remaining() const { return Len - Pos; }

private:
  template <typename T> bool readLe(T &V) {
    if (Failed || Len - Pos < sizeof(T)) {
      Failed = true;
      return false;
    }
    T Out = 0;
    for (size_t I = 0; I != sizeof(T); ++I)
      Out |= static_cast<T>(Data[Pos + I]) << (8 * I);
    V = Out;
    Pos += sizeof(T);
    return true;
  }

  const uint8_t *Data;
  size_t Len;
  size_t Pos = 0;
  bool Failed = false;
};

/// Builds one complete frame (header + payload) ready to write to a
/// socket.
std::vector<uint8_t> buildFrame(MsgType Type, uint64_t RequestId,
                                uint32_t Tenant,
                                const std::vector<uint8_t> &Payload);

} // namespace net
} // namespace cmcc

#endif // CMCC_NET_WIRE_H
