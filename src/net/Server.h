//===- net/Server.h - Poll-based StencilService network server -*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network front door (DESIGN.md §5h): a poll()-based multi-client
/// server that bridges TCP and Unix-domain-socket connections onto one
/// StencilService. One event-loop thread owns every socket; the
/// service's own workers do the compiling and executing, and their
/// completions re-enter the loop through a self-pipe — no
/// thread-per-connection, no thread-per-job, no blocking call anywhere
/// on the loop.
///
/// Per connection the server keeps a read buffer (frames are parsed as
/// bytes arrive; a frame split across a thousand 1-byte reads works)
/// and a write queue (responses flush as the socket drains). Requests
/// on one connection are independent: a client may pipeline many
/// submits and waits and receive the responses as each job finishes,
/// correlated by the request id it chose.
///
/// Admission is bounded at two layers: the server caps concurrent
/// connections (excess accepts are closed immediately, counted), and
/// the StencilService applies its queue cap and per-tenant quotas to
/// every submit, keyed by the tenant id in each frame header.
///
/// Draining: requestDrain() is async-signal-safe (an atomic store plus
/// a self-pipe write), so a SIGTERM handler may call it directly. A
/// draining server stops accepting, rejects new submits with
/// ErrDraining, serves every in-flight job to completion, flushes all
/// write queues, then exits the loop.
///
/// Fault sites (support/FaultInjection.h): net.accept drops a freshly
/// accepted connection, net.read and net.write fail the socket op and
/// drop the connection — the client-visible behavior of a flaky
/// network, injected deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_NET_SERVER_H
#define CMCC_NET_SERVER_H

#include "net/Protocol.h"
#include "service/StencilService.h"
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cmcc {
namespace net {

/// A listening endpoint specification. Parseable from the cmcc_serve
/// --listen syntax: "unix:PATH" or "tcp:HOST:PORT" (port 0 picks an
/// ephemeral port; tcpPort() reports the one bound).
struct Endpoint {
  enum class Kind { Tcp, Unix };
  Kind Transport = Kind::Unix;
  std::string Host = "127.0.0.1"; ///< Tcp only.
  int Port = 0;                   ///< Tcp only; 0 = ephemeral.
  std::string Path;               ///< Unix only.

  static Expected<Endpoint> parse(const std::string &Spec);
  std::string str() const;
};

/// The server. start() spawns the event-loop thread; stop() drains and
/// joins. One server serves one StencilService, which must outlive it.
class Server {
public:
  struct Options {
    std::vector<Endpoint> Listen;
    /// Concurrent-connection bound; accepts beyond it are closed
    /// immediately (counted in net.rejected_overload).
    int MaxConnections = 256;
    /// Returned in HelloResponse::Banner (e.g. provenanceSummary()).
    std::string Banner;
  };

  /// Loop-owned observability snapshot (monotonic totals). The same
  /// numbers feed the process obs registry as net.* counters.
  struct Counters {
    long Accepted = 0;         ///< Connections accepted and served.
    long RejectedOverload = 0; ///< Accepts closed at MaxConnections.
    long DroppedFault = 0;     ///< Connections dropped by a net.* fault.
    long Closed = 0;           ///< Connections that ended any way.
    long FramesIn = 0;
    long FramesOut = 0;
    long DecodeErrors = 0;     ///< Malformed payloads answered ErrBadRequest.
    long ProtocolErrors = 0;   ///< Broken framing: connection closed.
  };

  Server(StencilService &Service, Options Opts);
  ~Server(); ///< Equivalent to stop().

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds every endpoint and spawns the event loop. Fails (binding
  /// nothing) if any endpoint cannot be bound.
  Error start();

  /// Drains (idempotent) and joins the loop thread.
  void stop();

  /// Begins a graceful drain. Async-signal-safe: callable from a
  /// SIGTERM handler.
  void requestDrain();

  /// True once the loop thread has exited (all jobs served, buffers
  /// flushed).
  bool finished() const { return LoopDone.load(std::memory_order_acquire); }

  /// The port actually bound for the first TCP endpoint (resolves
  /// ephemeral port 0), or -1 when no TCP endpoint is listening.
  int tcpPort() const { return BoundTcpPort; }

  /// Snapshot of the loop counters (safe from any thread).
  Counters counters() const;

private:
  struct Conn;
  struct JobRec;

  void loop();
  void acceptAll(int ListenFd);
  /// Reads until EAGAIN; false = drop the connection.
  bool readConn(Conn &C);
  /// Writes queued bytes until EAGAIN; false = drop the connection.
  bool writeConn(Conn &C);
  /// Parses and dispatches every complete frame in C's read buffer.
  /// False = framing is broken, close after flushing the error.
  bool parseFrames(Conn &C);
  void dispatch(Conn &C, const FrameHeader &H, const uint8_t *Payload);
  void handleSubmit(Conn &C, const FrameHeader &H, const uint8_t *Payload);
  void handleWait(Conn &C, const FrameHeader &H, const WaitRequest &M);
  /// Queues one encoded response frame on \p C.
  void send(Conn &C, MsgType Type, uint64_t RequestId, uint32_t Tenant,
            const std::vector<uint8_t> &Payload);
  void sendError(Conn &C, const FrameHeader &H, uint16_t Code,
                 const std::string &Message);
  /// Builds the WaitResponse for a finished job and queues it.
  void deliverResult(Conn &C, JobRec &J, uint64_t RequestId);
  /// Drains the finished-job queue fed by the service callback.
  void processFinished();
  void closeConn(uint64_t ConnId);
  /// True when draining with nothing left to serve or flush.
  bool drainComplete() const;

  StencilService &Service;
  Options Opts;

  //===--- Loop-owned state (no locks: only the loop thread touches it) ---===//
  /// One live connection. Identified by a monotonically increasing id,
  /// never by fd (fds are recycled by the kernel; ids are not).
  struct Conn {
    uint64_t Id = 0;
    int Fd = -1;
    std::vector<uint8_t> In;
    std::deque<std::vector<uint8_t>> Out;
    size_t OutPos = 0; ///< Bytes of Out.front() already written.
    bool Closing = false; ///< Close once Out flushes.
  };

  /// One job submitted over the wire: owns the bound arrays until the
  /// result is delivered (or discarded, when the submitter vanished).
  struct JobRec {
    StencilService::JobId Id = 0;
    uint64_t ConnId = 0; ///< Submitting connection (may be gone).
    uint32_t Tenant = 0;
    bool Finished = false;
    bool WantResult = false; ///< Bound arrays: gather + return the result.
    std::string ResultName;
    /// A waiter parked on this job (at most one; a second WaitRequest
    /// for the same job answers from the finished state).
    bool HasWaiter = false;
    uint64_t WaiterConn = 0;
    uint64_t WaiterRequestId = 0;
    /// When the (current) WaitRequest arrived; deliverResult observes
    /// the park-to-delivery latency into net.req_us.wait.
    uint64_t WaiterArrivedNs = 0;
    std::unique_ptr<StencilArguments> Args;
    std::vector<std::unique_ptr<DistributedArray>> Arrays;
  };

  std::map<uint64_t, Conn> Conns;
  std::map<StencilService::JobId, JobRec> Jobs;
  uint64_t NextConnId = 1;
  std::vector<int> ListenFds;
  int BoundTcpPort = -1;
  std::vector<std::string> UnixPaths; ///< Unlinked on shutdown.
  Counters Stats;

  //===--- Cross-thread state ---------------------------------------------===//
  /// Jobs the service finished, fed by its callback thread(s).
  std::mutex FinishedMutex;
  std::deque<StencilService::JobId> FinishedQueue;
  std::atomic<bool> Draining{false};
  std::atomic<bool> LoopDone{false};
  /// Self-pipe: [0] read end owned by poll(), [1] written by
  /// requestDrain() and the finished callback.
  int WakePipe[2] = {-1, -1};
  mutable std::mutex CountersMutex;
  Counters PublishedStats; ///< Copied from Stats each loop iteration.

  std::thread LoopThread;
};

} // namespace net
} // namespace cmcc

#endif // CMCC_NET_SERVER_H
