//===- net/Server.cpp -----------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"
#include "cm2/NodeGrid.h"
#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "obs/TraceContext.h"
#include "support/FaultInjection.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cmcc;
using namespace cmcc::net;

//===----------------------------------------------------------------------===//
// Endpoint
//===----------------------------------------------------------------------===//

Expected<Endpoint> Endpoint::parse(const std::string &Spec) {
  Endpoint E;
  if (Spec.rfind("unix:", 0) == 0) {
    E.Transport = Kind::Unix;
    E.Path = Spec.substr(5);
    if (E.Path.empty())
      return Error::failure("empty unix socket path in '" + Spec + "'");
    if (E.Path.size() >= sizeof(sockaddr_un{}.sun_path))
      return Error::failure("unix socket path too long: '" + E.Path + "'");
    return E;
  }
  if (Spec.rfind("tcp:", 0) == 0) {
    E.Transport = Kind::Tcp;
    const std::string Rest = Spec.substr(4);
    const size_t Colon = Rest.rfind(':');
    if (Colon == std::string::npos)
      return Error::failure("expected tcp:HOST:PORT, got '" + Spec + "'");
    E.Host = Rest.substr(0, Colon);
    if (E.Host.empty())
      E.Host = "127.0.0.1";
    const std::string PortStr = Rest.substr(Colon + 1);
    char *End = nullptr;
    const long Port = std::strtol(PortStr.c_str(), &End, 10);
    if (PortStr.empty() || *End != '\0' || Port < 0 || Port > 65535)
      return Error::failure("bad tcp port in '" + Spec + "'");
    E.Port = static_cast<int>(Port);
    return E;
  }
  return Error::failure("expected unix:PATH or tcp:HOST:PORT, got '" + Spec + "'");
}

std::string Endpoint::str() const {
  if (Transport == Kind::Unix)
    return "unix:" + Path;
  return "tcp:" + Host + ":" + std::to_string(Port);
}

//===----------------------------------------------------------------------===//
// Socket helpers
//===----------------------------------------------------------------------===//

namespace {

bool setNonBlocking(int Fd) {
  const int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// Binds + listens on \p E; returns the fd or a failure. For TCP,
/// \p BoundPort receives the actual port (resolving ephemeral 0).
Expected<int> openListener(const Endpoint &E, int &BoundPort) {
  if (E.Transport == Endpoint::Kind::Unix) {
    const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return Error::failure(std::string("socket(AF_UNIX): ") + std::strerror(errno));
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, E.Path.c_str(), sizeof(Addr.sun_path) - 1);
    // A stale socket file from a previous run would make bind fail;
    // removing it is safe because two live servers on one path was
    // never a supported configuration.
    ::unlink(E.Path.c_str());
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
      const int E2 = errno;
      ::close(Fd);
      return Error::failure("bind(" + E.Path + "): " + std::strerror(E2));
    }
    if (::listen(Fd, 128) != 0 || !setNonBlocking(Fd)) {
      const int E2 = errno;
      ::close(Fd);
      return Error::failure("listen(" + E.Path + "): " + std::strerror(E2));
    }
    return Fd;
  }

  const int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Error::failure(std::string("socket(AF_INET): ") + std::strerror(errno));
  const int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(E.Port));
  if (E.Host == "0.0.0.0")
    Addr.sin_addr.s_addr = htonl(INADDR_ANY);
  else if (::inet_pton(AF_INET, E.Host.c_str(), &Addr.sin_addr) != 1) {
    ::close(Fd);
    return Error::failure("bad tcp host '" + E.Host + "' (dotted quad expected)");
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    const int E2 = errno;
    ::close(Fd);
    return Error::failure("bind(" + E.str() + "): " + std::strerror(E2));
  }
  if (::listen(Fd, 128) != 0 || !setNonBlocking(Fd)) {
    const int E2 = errno;
    ::close(Fd);
    return Error::failure("listen(" + E.str() + "): " + std::strerror(E2));
  }
  sockaddr_in Bound{};
  socklen_t BoundLen = sizeof(Bound);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &BoundLen) == 0)
    BoundPort = ntohs(Bound.sin_port);
  return Fd;
}

//===--- Wire histograms --------------------------------------------------===//
// Process-registry histograms for the wire path. Function-local statics
// so the references resolve once (thread-safe init) and the loop pays
// only the observe() itself.

obs::Histogram &frameBytesIn() {
  static obs::Histogram &H = obs::Registry::process().histogram(
      "net.frame_bytes_in", obs::Histogram::byteBounds());
  return H;
}

obs::Histogram &frameBytesOut() {
  static obs::Histogram &H = obs::Registry::process().histogram(
      "net.frame_bytes_out", obs::Histogram::byteBounds());
  return H;
}

/// Per-message-type request latency, dispatch to response queued (for
/// waits: request arrival to result delivery, park time included).
obs::Histogram &reqHistogram(MsgType T) {
  obs::Registry &Reg = obs::Registry::process();
  switch (T) {
  case MsgType::HelloRequest: {
    static obs::Histogram &H = Reg.histogram("net.req_us.hello");
    return H;
  }
  case MsgType::SubmitRequest: {
    static obs::Histogram &H = Reg.histogram("net.req_us.submit");
    return H;
  }
  case MsgType::PollRequest: {
    static obs::Histogram &H = Reg.histogram("net.req_us.poll");
    return H;
  }
  case MsgType::WaitRequest: {
    static obs::Histogram &H = Reg.histogram("net.req_us.wait");
    return H;
  }
  case MsgType::CancelRequest: {
    static obs::Histogram &H = Reg.histogram("net.req_us.cancel");
    return H;
  }
  case MsgType::StatsRequest: {
    static obs::Histogram &H = Reg.histogram("net.req_us.stats");
    return H;
  }
  case MsgType::TimelineRequest: {
    static obs::Histogram &H = Reg.histogram("net.req_us.timeline");
    return H;
  }
  case MsgType::DumpRequest: {
    static obs::Histogram &H = Reg.histogram("net.req_us.dump");
    return H;
  }
  default: {
    static obs::Histogram &H = Reg.histogram("net.req_us.other");
    return H;
  }
  }
}

using FR = obs::FlightRecorder;

} // namespace

//===----------------------------------------------------------------------===//
// Server lifecycle
//===----------------------------------------------------------------------===//

Server::Server(StencilService &Service, Options Opts)
    : Service(Service), Opts(std::move(Opts)) {}

Server::~Server() { stop(); }

Error Server::start() {
  if (Opts.Listen.empty())
    return Error::failure("server started with no endpoints to listen on");
  if (::pipe(WakePipe) != 0)
    return Error::failure(std::string("pipe(): ") + std::strerror(errno));
  setNonBlocking(WakePipe[0]);
  setNonBlocking(WakePipe[1]);

  for (const Endpoint &E : Opts.Listen) {
    int Port = -1;
    Expected<int> Fd = openListener(E, Port);
    if (!Fd) {
      for (int F : ListenFds)
        ::close(F);
      ListenFds.clear();
      ::close(WakePipe[0]);
      ::close(WakePipe[1]);
      WakePipe[0] = WakePipe[1] = -1;
      return Fd.error();
    }
    ListenFds.push_back(*Fd);
    if (E.Transport == Endpoint::Kind::Unix)
      UnixPaths.push_back(E.Path);
    else if (BoundTcpPort < 0)
      BoundTcpPort = Port;
  }

  // The completion bridge: service workers push finished ids and poke
  // the pipe; only the loop thread consumes.
  Service.setJobFinishedCallback([this](StencilService::JobId Id) {
    {
      std::lock_guard<std::mutex> Lock(FinishedMutex);
      FinishedQueue.push_back(Id);
    }
    const char Byte = 'f';
    [[maybe_unused]] ssize_t N = ::write(WakePipe[1], &Byte, 1);
  });

  FR::process().record(FR::EventKind::ServerStart, "server",
                       static_cast<uint64_t>(ListenFds.size()),
                       static_cast<uint64_t>(Opts.MaxConnections));
  LoopThread = std::thread([this] { loop(); });
  return Error::success();
}

void Server::requestDrain() {
  // Async-signal-safe: one atomic store and one write(2). The loop
  // notices Draining on its next wake-up.
  Draining.store(true, std::memory_order_release);
  if (WakePipe[1] >= 0) {
    const char Byte = 'd';
    [[maybe_unused]] ssize_t N = ::write(WakePipe[1], &Byte, 1);
  }
}

void Server::stop() {
  if (!LoopThread.joinable())
    return;
  requestDrain();
  LoopThread.join();
  Service.setJobFinishedCallback(nullptr);
  for (int Fd : ListenFds)
    ::close(Fd);
  ListenFds.clear();
  for (const std::string &P : UnixPaths)
    ::unlink(P.c_str());
  UnixPaths.clear();
  if (WakePipe[0] >= 0) {
    ::close(WakePipe[0]);
    ::close(WakePipe[1]);
    WakePipe[0] = WakePipe[1] = -1;
  }
}

Server::Counters Server::counters() const {
  std::lock_guard<std::mutex> Lock(CountersMutex);
  return PublishedStats;
}

bool Server::drainComplete() const {
  // Every submitted job must have finished (drain never abandons
  // work), but a finished result nobody waited for does not hold the
  // shutdown hostage.
  for (const auto &[Id, J] : Jobs)
    if (!J.Finished)
      return false;
  for (const auto &[Id, C] : Conns)
    if (!C.Out.empty())
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// The event loop
//===----------------------------------------------------------------------===//

void Server::loop() {
  obs::Registry &Reg = obs::Registry::process();
  obs::Counter &CtrAccepted = Reg.counter("net.accepted");
  obs::Counter &CtrOverload = Reg.counter("net.rejected_overload");
  obs::Counter &CtrDropped = Reg.counter("net.dropped_fault");
  obs::Counter &CtrFramesIn = Reg.counter("net.frames_in");
  obs::Counter &CtrFramesOut = Reg.counter("net.frames_out");
  obs::Counter &CtrDecodeErrors = Reg.counter("net.decode_errors");
  Counters Mirrored; // Last values pushed into the registry.

  bool AcceptingClosed = false;
  while (true) {
    const bool Drain = Draining.load(std::memory_order_acquire);
    if (Drain && !AcceptingClosed) {
      FR::process().record(FR::EventKind::DrainBegin, "server",
                           static_cast<uint64_t>(Conns.size()),
                           static_cast<uint64_t>(Jobs.size()));
      for (int Fd : ListenFds)
        ::close(Fd);
      ListenFds.clear();
      for (const std::string &P : UnixPaths)
        ::unlink(P.c_str());
      AcceptingClosed = true;
    }
    if (Drain && drainComplete())
      break;

    std::vector<pollfd> Fds;
    Fds.push_back({WakePipe[0], POLLIN, 0});
    const size_t FirstListener = Fds.size();
    for (int Fd : ListenFds)
      Fds.push_back({Fd, POLLIN, 0});
    const size_t FirstConn = Fds.size();
    std::vector<uint64_t> ConnIds;
    for (auto &[Id, C] : Conns) {
      short Events = C.Closing ? 0 : POLLIN;
      if (!C.Out.empty())
        Events |= POLLOUT;
      Fds.push_back({C.Fd, Events, 0});
      ConnIds.push_back(Id);
    }

    const int N = ::poll(Fds.data(), Fds.size(), 500);
    if (N < 0 && errno != EINTR)
      break;

    if (Fds[0].revents & POLLIN) {
      char Buf[256];
      while (::read(WakePipe[0], Buf, sizeof(Buf)) > 0)
        ;
    }
    processFinished();

    for (size_t I = FirstListener; I != FirstConn; ++I)
      if (Fds[I].revents & POLLIN)
        acceptAll(Fds[I].fd);

    for (size_t I = FirstConn; I != Fds.size(); ++I) {
      const uint64_t Id = ConnIds[I - FirstConn];
      auto It = Conns.find(Id);
      if (It == Conns.end())
        continue; // Closed by an earlier event this iteration.
      Conn &C = It->second;
      const short Re = Fds[I].revents;
      if (Re & (POLLERR | POLLHUP | POLLNVAL)) {
        // POLLHUP with readable data still pending is delivered with
        // POLLIN on Linux; by the time only POLLHUP remains the peer
        // is gone for good.
        if (!(Re & POLLIN)) {
          closeConn(Id);
          continue;
        }
      }
      if (Re & POLLIN) {
        if (!readConn(C) || !parseFrames(C)) {
          closeConn(Id);
          continue;
        }
      }
      if (Re & POLLOUT) {
        if (!writeConn(C)) {
          closeConn(Id);
          continue;
        }
      }
      if (C.Closing && C.Out.empty())
        closeConn(Id);
    }

    // Publish counters: the deltas feed the process registry, the
    // totals feed counters() for tests and the serve tool.
    CtrAccepted.add(Stats.Accepted - Mirrored.Accepted);
    CtrOverload.add(Stats.RejectedOverload - Mirrored.RejectedOverload);
    CtrDropped.add(Stats.DroppedFault - Mirrored.DroppedFault);
    CtrFramesIn.add(Stats.FramesIn - Mirrored.FramesIn);
    CtrFramesOut.add(Stats.FramesOut - Mirrored.FramesOut);
    CtrDecodeErrors.add(Stats.DecodeErrors - Mirrored.DecodeErrors);
    Mirrored = Stats;
    {
      std::lock_guard<std::mutex> Lock(CountersMutex);
      PublishedStats = Stats;
    }
  }

  for (auto &[Id, C] : Conns)
    ::close(C.Fd);
  Conns.clear();
  Jobs.clear();
  {
    std::lock_guard<std::mutex> Lock(CountersMutex);
    PublishedStats = Stats;
  }
  FR::process().record(FR::EventKind::ServerStop, "server",
                       static_cast<uint64_t>(Stats.Accepted),
                       static_cast<uint64_t>(Stats.FramesIn));
  LoopDone.store(true, std::memory_order_release);
}

void Server::acceptAll(int ListenFd) {
  while (true) {
    const int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN or a transient accept error: poll again.
    if (fault::probe("net.accept")) {
      ++Stats.DroppedFault;
      ::close(Fd);
      continue;
    }
    if (static_cast<int>(Conns.size()) >= Opts.MaxConnections) {
      // Bounded accept: shedding beyond the cap beats collapsing
      // under it. The client sees a clean close before any frame.
      ++Stats.RejectedOverload;
      FR::process().record(FR::EventKind::ConnRejected, "overload",
                           static_cast<uint64_t>(Conns.size()));
      ::close(Fd);
      continue;
    }
    setNonBlocking(Fd);
    const int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    Conn C;
    C.Id = NextConnId++;
    C.Fd = Fd;
    ++Stats.Accepted;
    FR::process().record(FR::EventKind::ConnAccepted, nullptr, C.Id);
    Conns.emplace(C.Id, std::move(C));
  }
}

bool Server::readConn(Conn &C) {
  if (fault::probe("net.read")) {
    ++Stats.DroppedFault;
    return false;
  }
  char Buf[64 * 1024];
  while (true) {
    const ssize_t N = ::read(C.Fd, Buf, sizeof(Buf));
    if (N > 0) {
      C.In.insert(C.In.end(), Buf, Buf + N);
      if (N < static_cast<ssize_t>(sizeof(Buf)))
        return true;
      continue;
    }
    if (N == 0)
      return false; // Peer closed.
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
}

bool Server::writeConn(Conn &C) {
  if (fault::probe("net.write")) {
    ++Stats.DroppedFault;
    return false;
  }
  while (!C.Out.empty()) {
    const std::vector<uint8_t> &Front = C.Out.front();
    const ssize_t N = ::send(C.Fd, Front.data() + C.OutPos,
                             Front.size() - C.OutPos, MSG_NOSIGNAL);
    if (N < 0)
      return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
    C.OutPos += static_cast<size_t>(N);
    if (C.OutPos == Front.size()) {
      C.Out.pop_front();
      C.OutPos = 0;
    }
  }
  return true;
}

void Server::closeConn(uint64_t ConnId) {
  auto It = Conns.find(ConnId);
  if (It == Conns.end())
    return;
  ::close(It->second.Fd);
  Conns.erase(It);
  ++Stats.Closed;
  FR::process().record(FR::EventKind::ConnClosed, nullptr, ConnId);
  // Jobs this connection submitted stay alive — the service is already
  // running them and tearing down their arrays mid-execution would be
  // a use-after-free. Their results are discarded at completion.
  for (auto &[Id, J] : Jobs)
    if (J.HasWaiter && J.WaiterConn == ConnId)
      J.HasWaiter = false;
}

//===----------------------------------------------------------------------===//
// Frame parsing and dispatch
//===----------------------------------------------------------------------===//

bool Server::parseFrames(Conn &C) {
  size_t Pos = 0;
  while (C.In.size() - Pos >= FrameHeaderBytes) {
    Expected<FrameHeader> H =
        decodeFrameHeader(C.In.data() + Pos, C.In.size() - Pos);
    if (!H) {
      // Broken framing: there is no way to find the next frame
      // boundary, so answer once and close.
      ++Stats.ProtocolErrors;
      ErrorResponse E;
      E.Code = ErrBadRequest;
      E.Message = H.error().message();
      send(C, MsgType::ErrorResponse, 0, 0, encode(E));
      C.Closing = true;
      break;
    }
    if (C.In.size() - Pos < FrameHeaderBytes + H->PayloadBytes)
      break; // Frame incomplete; wait for more bytes.
    ++Stats.FramesIn;
    frameBytesIn().observe(
        static_cast<double>(FrameHeaderBytes + H->PayloadBytes));
    dispatch(C, *H, C.In.data() + Pos + FrameHeaderBytes);
    Pos += FrameHeaderBytes + H->PayloadBytes;
  }
  if (Pos)
    C.In.erase(C.In.begin(), C.In.begin() + static_cast<long>(Pos));
  // Flush eagerly: most responses fit the socket buffer, and waiting
  // for the next poll() round-trip would add latency for nothing.
  return writeConn(C);
}

void Server::send(Conn &C, MsgType Type, uint64_t RequestId, uint32_t Tenant,
                  const std::vector<uint8_t> &Payload) {
  C.Out.push_back(buildFrame(Type, RequestId, Tenant, Payload));
  frameBytesOut().observe(static_cast<double>(C.Out.back().size()));
  ++Stats.FramesOut;
}

void Server::sendError(Conn &C, const FrameHeader &H, uint16_t Code,
                       const std::string &Message) {
  ErrorResponse E;
  E.Code = Code;
  E.Message = Message;
  if (Code == ErrBadRequest) {
    ++Stats.DecodeErrors;
    FR::process().record(FR::EventKind::DecodeError, "bad_request",
                         static_cast<uint64_t>(H.Type), H.RequestId);
  }
  send(C, MsgType::ErrorResponse, H.RequestId, H.Tenant, encode(E));
}

void Server::dispatch(Conn &C, const FrameHeader &H, const uint8_t *Payload) {
  // Dispatch-to-response-queued latency per message type. Waits are the
  // exception: a parked wait's latency runs until deliverResult, so the
  // timer stays disarmed here and deliverResult observes instead.
  struct ReqTimer {
    obs::Histogram &Hist;
    uint64_t StartNs;
    bool Armed;
    ~ReqTimer() {
      if (Armed)
        Hist.observe(
            static_cast<double>(obs::detail::nowNs() - StartNs) / 1000.0);
    }
  } Timer{reqHistogram(H.Type), obs::detail::nowNs(),
          H.Type != MsgType::WaitRequest};
  switch (H.Type) {
  case MsgType::HelloRequest: {
    Expected<HelloRequest> M = decodeHelloRequest(Payload, H.PayloadBytes);
    if (!M)
      return sendError(C, H, ErrBadRequest, M.error().message());
    HelloResponse R;
    R.Banner = Opts.Banner;
    R.Machine = Service.machine().summary();
    send(C, MsgType::HelloResponse, H.RequestId, H.Tenant, encode(R));
    return;
  }
  case MsgType::SubmitRequest:
    return handleSubmit(C, H, Payload);
  case MsgType::PollRequest: {
    Expected<PollRequest> M = decodePollRequest(Payload, H.PayloadBytes);
    if (!M)
      return sendError(C, H, ErrBadRequest, M.error().message());
    PollResponse R;
    R.State = static_cast<uint8_t>(Service.poll(M->JobId));
    send(C, MsgType::PollResponse, H.RequestId, H.Tenant, encode(R));
    return;
  }
  case MsgType::WaitRequest: {
    Expected<WaitRequest> M = decodeWaitRequest(Payload, H.PayloadBytes);
    if (!M)
      return sendError(C, H, ErrBadRequest, M.error().message());
    return handleWait(C, H, *M);
  }
  case MsgType::CancelRequest: {
    Expected<CancelRequest> M = decodeCancelRequest(Payload, H.PayloadBytes);
    if (!M)
      return sendError(C, H, ErrBadRequest, M.error().message());
    CancelResponse R;
    R.Cancelled = Service.cancel(M->JobId) ? 1 : 0;
    send(C, MsgType::CancelResponse, H.RequestId, H.Tenant, encode(R));
    return;
  }
  case MsgType::StatsRequest: {
    Expected<StatsRequest> M = decodeStatsRequest(Payload, H.PayloadBytes);
    if (!M)
      return sendError(C, H, ErrBadRequest, M.error().message());
    const ServiceStats S = Service.stats();
    StatsResponse R;
    R.Json = S.json();
    R.Table = S.str();
    R.NetJson = obs::Registry::process().json("net.");
    R.NetTable = obs::Registry::process().table("net.");
    send(C, MsgType::StatsResponse, H.RequestId, H.Tenant, encode(R));
    return;
  }
  case MsgType::TimelineRequest: {
    Expected<TimelineRequest> M =
        decodeTimelineRequest(Payload, H.PayloadBytes);
    if (!M)
      return sendError(C, H, ErrBadRequest, M.error().message());
    TimelineResponse R;
    R.Json = Service.timelineJson(M->JobId);
    R.Found = R.Json.empty() ? 0 : 1;
    send(C, MsgType::TimelineResponse, H.RequestId, H.Tenant, encode(R));
    return;
  }
  case MsgType::DumpRequest: {
    Expected<DumpRequest> M = decodeDumpRequest(Payload, H.PayloadBytes);
    if (!M)
      return sendError(C, H, ErrBadRequest, M.error().message());
    DumpResponse R;
    R.Json = obs::FlightRecorder::process().json();
    send(C, MsgType::DumpResponse, H.RequestId, H.Tenant, encode(R));
    return;
  }
  default:
    // A response type arriving at the server is a confused client.
    return sendError(C, H, ErrBadRequest,
                     "unexpected message type " +
                         std::to_string(static_cast<int>(H.Type)));
  }
}

//===----------------------------------------------------------------------===//
// Submit: wire grids -> distributed arrays -> service job
//===----------------------------------------------------------------------===//

void Server::handleSubmit(Conn &C, const FrameHeader &H,
                          const uint8_t *Payload) {
  Expected<SubmitRequest> M = decodeSubmitRequest(Payload, H.PayloadBytes);
  if (!M)
    return sendError(C, H, ErrBadRequest, M.error().message());
  if (Draining.load(std::memory_order_acquire))
    return sendError(C, H, ErrDraining, "server is draining; resubmit elsewhere");

  // Adopt the client-minted trace context for the dispatch itself, so
  // the server's submit span nests under the client's in a merged
  // Perfetto trace; the ids then travel into the service job.
  obs::ScopedTraceContext TraceScope(M->TraceId, M->ParentSpan);
  CMCC_SPAN("server.submit");

  JobRec J;
  J.ConnId = C.Id;
  J.Tenant = H.Tenant;
  J.ResultName = M->ResultName.empty() ? "RESULT" : M->ResultName;

  StencilService::JobRequest Req;
  if (M->Kind > static_cast<uint8_t>(StencilService::SourceKind::Fingerprint))
    return sendError(C, H, ErrBadRequest,
                     "unknown source kind " + std::to_string(M->Kind));
  Req.Kind = static_cast<StencilService::SourceKind>(M->Kind);
  Req.Source = M->Source;
  Req.Fingerprint = M->Fingerprint;
  Req.Tenant = H.Tenant;
  Req.TraceId = M->TraceId;
  Req.ParentSpan = M->ParentSpan;
  Req.Iterations = static_cast<int>(M->Iterations);
  if (Req.Iterations <= 0)
    return sendError(C, H, ErrBadRequest, "iterations must be positive");

  const NodeGrid Grid(Service.machine());
  if (M->Grids.empty()) {
    // Timing-only job.
    if (M->SubRows == 0 || M->SubCols == 0 || M->SubRows > 1u << 16 ||
        M->SubCols > 1u << 16)
      return sendError(C, H, ErrBadRequest, "bad timing-only subgrid shape");
    Req.SubRows = static_cast<int>(M->SubRows);
    Req.SubCols = static_cast<int>(M->SubCols);
  } else {
    if (M->Grids[0].Kind != SubmitRequest::Role::Source)
      return sendError(C, H, ErrBadRequest,
                       "the first grid must be the source array");
    J.WantResult = true;
    J.Args = std::make_unique<StencilArguments>();
    int SubRows = 0, SubCols = 0;
    for (size_t I = 0; I != M->Grids.size(); ++I) {
      const SubmitRequest::BoundGrid &B = M->Grids[I];
      const GridPayload &G = B.Grid;
      if (G.Rows == 0 || G.Cols == 0 ||
          G.Rows % static_cast<uint32_t>(Grid.rows()) != 0 ||
          G.Cols % static_cast<uint32_t>(Grid.cols()) != 0)
        return sendError(C, H, ErrBadRequest,
                         "grid '" + G.Name + "' (" + std::to_string(G.Rows) +
                             "x" + std::to_string(G.Cols) +
                             ") does not decompose over the " +
                             std::to_string(Grid.rows()) + "x" +
                             std::to_string(Grid.cols()) + " node grid");
      Array2D Global(static_cast<int>(G.Rows), static_cast<int>(G.Cols));
      std::memcpy(Global.data(), G.Data.data(),
                  G.Data.size() * sizeof(float));
      auto A = std::make_unique<DistributedArray>(
          Grid, static_cast<int>(G.Rows) / Grid.rows(),
          static_cast<int>(G.Cols) / Grid.cols());
      A->scatter(Global);
      switch (B.Kind) {
      case SubmitRequest::Role::Source:
        if (J.Args->Source)
          return sendError(C, H, ErrBadRequest, "duplicate source grid");
        J.Args->Source = A.get();
        SubRows = A->subRows();
        SubCols = A->subCols();
        break;
      case SubmitRequest::Role::Coefficient:
        J.Args->Coefficients[G.Name] = A.get();
        break;
      case SubmitRequest::Role::ExtraSource:
        J.Args->ExtraSources[G.Name] = A.get();
        break;
      }
      J.Arrays.push_back(std::move(A));
    }
    auto Result = std::make_unique<DistributedArray>(Grid, SubRows, SubCols);
    J.Args->Result = Result.get();
    J.Arrays.push_back(std::move(Result));
    Req.Args = J.Args.get();
    Req.SubRows = SubRows;
    Req.SubCols = SubCols;
  }

  // The finished callback may fire for this id before submit()
  // returns (a born-rejected job); the queued notification is only
  // consumed by this same thread, so registering the JobRec after
  // submit() and marking it from the queued notification is race-free.
  const StencilService::JobId Id = Service.submit(std::move(Req));
  J.Id = Id;
  Jobs.emplace(Id, std::move(J));

  SubmitResponse R;
  R.JobId = Id;
  send(C, MsgType::SubmitResponse, H.RequestId, H.Tenant, encode(R));
}

//===----------------------------------------------------------------------===//
// Wait and completion delivery
//===----------------------------------------------------------------------===//

void Server::handleWait(Conn &C, const FrameHeader &H, const WaitRequest &M) {
  auto It = Jobs.find(M.JobId);
  if (It == Jobs.end()) {
    // Not a job this server submitted (or its result was already
    // delivered). Answer the way the service answers a bad id.
    WaitResponse R;
    R.Ok = 0;
    R.Status = static_cast<uint8_t>(StencilService::JobStatus::BadJobId);
    R.Message = "wait on unknown job id " + std::to_string(M.JobId);
    send(C, MsgType::WaitResponse, H.RequestId, H.Tenant, encode(R));
    return;
  }
  JobRec &J = It->second;
  if (J.Finished) {
    J.WaiterArrivedNs = obs::detail::nowNs();
    deliverResult(C, J, H.RequestId);
    Jobs.erase(It);
    return;
  }
  if (J.HasWaiter)
    return sendError(C, H, ErrBadRequest,
                     "job " + std::to_string(M.JobId) +
                         " already has a waiter");
  J.HasWaiter = true;
  J.WaiterConn = C.Id;
  J.WaiterRequestId = H.RequestId;
  J.WaiterArrivedNs = obs::detail::nowNs();
}

void Server::deliverResult(Conn &C, JobRec &J, uint64_t RequestId) {
  // The job is finished, so this wait() returns without blocking.
  StencilService::JobResult Res = Service.wait(J.Id);
  WaitResponse R;
  R.Ok = Res.Ok ? 1 : 0;
  R.Status = static_cast<uint8_t>(Res.Status);
  R.Message = Res.Message;
  R.Fingerprint = Res.Fingerprint;
  R.CacheHit = Res.CacheHit ? 1 : 0;
  R.Coalesced = Res.Coalesced ? 1 : 0;
  R.CompileSeconds = Res.CompileSeconds;
  R.ExecuteSeconds = Res.ExecuteSeconds;
  R.Retries = static_cast<uint32_t>(Res.Retries);
  R.FellBack = Res.FellBack ? 1 : 0;
  R.setReport(Res.Report);
  if (Res.Ok && J.WantResult && J.Args && J.Args->Result) {
    const Array2D Global = J.Args->Result->gather();
    R.HasResult = 1;
    R.Result.Name = J.ResultName;
    R.Result.Rows = static_cast<uint32_t>(Global.rows());
    R.Result.Cols = static_cast<uint32_t>(Global.cols());
    R.Result.Data.assign(Global.data(),
                         Global.data() + static_cast<size_t>(Global.rows()) *
                                             Global.cols());
  }
  send(C, MsgType::WaitResponse, RequestId, J.Tenant, encode(R));
  if (J.WaiterArrivedNs)
    reqHistogram(MsgType::WaitRequest)
        .observe(static_cast<double>(obs::detail::nowNs() -
                                     J.WaiterArrivedNs) /
                 1000.0);
}

void Server::processFinished() {
  std::deque<StencilService::JobId> Batch;
  {
    std::lock_guard<std::mutex> Lock(FinishedMutex);
    Batch.swap(FinishedQueue);
  }
  for (StencilService::JobId Id : Batch) {
    auto It = Jobs.find(Id);
    if (It == Jobs.end())
      continue; // Already delivered (finished-before-wait path).
    JobRec &J = It->second;
    J.Finished = true;
    if (!J.HasWaiter) {
      if (Conns.find(J.ConnId) == Conns.end())
        Jobs.erase(It); // Orphan: submitter gone, discard the result.
      continue;
    }
    auto CIt = Conns.find(J.WaiterConn);
    if (CIt == Conns.end()) {
      J.HasWaiter = false;
      continue;
    }
    const uint64_t WaiterConn = J.WaiterConn;
    deliverResult(CIt->second, J, J.WaiterRequestId);
    Jobs.erase(It);
    if (!writeConn(CIt->second))
      closeConn(WaiterConn);
  }
}
