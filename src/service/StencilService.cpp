//===- service/StencilService.cpp -----------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/StencilService.h"
#include "backends/Registry.h"
#include "core/PlanFingerprint.h"
#include "fortran/Parser.h"
#include "obs/Trace.h"
#include "sexpr/DefStencil.h"
#include "stencil/Recognizer.h"
#include "support/Assert.h"
#include <chrono>

using namespace cmcc;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Begin)
      .count();
}

/// Memo key: the front-end kind matters (the same text could be valid
/// under two front ends), the text is the rest.
std::string memoKey(StencilService::SourceKind Kind,
                    const std::string &Source) {
  return std::to_string(static_cast<int>(Kind)) + "\n" + Source;
}

} // namespace

StencilService::StencilService(const MachineConfig &Config, Options Opts)
    : Config(Config), Opts(Opts), Compiler(Config),
      Engine(createBackend(Opts.Backend, Config, Opts.Exec)),
      Cache(Config, Opts.Cache),
      JobsSubmitted(Metrics.counter("service.jobs_submitted")),
      JobsCompleted(Metrics.counter("service.jobs_completed")),
      JobsFailed(Metrics.counter("service.jobs_failed")),
      FrontEndRuns(Metrics.counter("service.frontend_runs")),
      SourceMemoHits(Metrics.counter("service.source_memo_hits")),
      CompilesPerformed(Metrics.counter("service.compiles_performed")),
      CompilesCoalesced(Metrics.counter("service.compiles_coalesced")),
      QueueDepth(Metrics.gauge("service.queue_depth")),
      CompileUs(Metrics.histogram("service.compile_us")),
      ExecuteUs(Metrics.histogram("service.execute_us")),
      SimSeconds(Metrics.sum("service.sim_seconds")),
      UsefulFlops(Metrics.sum("service.useful_flops")) {
  assert(Engine && "unknown backend name (validate with isBackendName)");
  Compiler.setAllowMultipleSources(Opts.AllowMultipleSources);
  int N = std::max(1, Opts.Workers);
  Workers.reserve(N);
  for (int I = 0; I != N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

StencilService::~StencilService() {
  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    ShuttingDown = true;
  }
  JobsChanged.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

StencilService::JobId StencilService::submit(JobRequest Request) {
  CMCC_SPAN("service.submit");
  Job *Raw;
  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    assert(!ShuttingDown && "submit after shutdown began");
    auto J = std::make_unique<Job>();
    J->Id = NextId++;
    J->Request = std::move(Request);
    Raw = J.get();
    Jobs.emplace(Raw->Id, std::move(J));
    Queue.push_back(Raw);
    JobsSubmitted.add(1);
    QueueDepth.add(1);
  }
  JobsChanged.notify_all();
  return Raw->Id;
}

StencilService::JobState StencilService::poll(JobId Id) const {
  std::lock_guard<std::mutex> Lock(JobsMutex);
  auto It = Jobs.find(Id);
  assert(It != Jobs.end() && "poll of an unknown job id");
  return It->second->State;
}

StencilService::JobResult StencilService::wait(JobId Id) {
  std::unique_lock<std::mutex> Lock(JobsMutex);
  auto It = Jobs.find(Id);
  assert(It != Jobs.end() && "wait on an unknown job id");
  Job *J = It->second.get();
  JobsChanged.wait(Lock, [&] {
    return J->State == JobState::Done || J->State == JobState::Failed;
  });
  return J->Result;
}

void StencilService::drain() {
  std::unique_lock<std::mutex> Lock(JobsMutex);
  JobsChanged.wait(Lock, [&] {
    for (const auto &Entry : Jobs)
      if (Entry.second->State != JobState::Done &&
          Entry.second->State != JobState::Failed)
        return false;
    return true;
  });
}

void StencilService::workerLoop() {
  for (;;) {
    Job *J = nullptr;
    {
      std::unique_lock<std::mutex> Lock(JobsMutex);
      JobsChanged.wait(Lock, [&] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty()) {
        if (ShuttingDown)
          return; // Queue drained; every submitted job has run.
        continue;
      }
      J = Queue.front();
      Queue.pop_front();
      QueueDepth.add(-1);
      J->State = JobState::Compiling;
    }
    process(*J);
  }
}

bool StencilService::resolveSpec(Job &J, std::optional<StencilSpec> &Spec,
                                 uint64_t &Fp) {
  CMCC_SPAN("service.resolve_spec");
  const JobRequest &Req = J.Request;
  if (Req.Kind == SourceKind::Fingerprint) {
    Fp = Req.Fingerprint;
    return true; // No spec: the plan must already exist (or be in flight).
  }

  const std::string Key = memoKey(Req.Kind, Req.Source);
  {
    std::lock_guard<std::mutex> Lock(MemoMutex);
    auto It = SourceMemo.find(Key);
    if (It != SourceMemo.end()) {
      Spec = It->second.Spec;
      Fp = It->second.Fingerprint;
      SourceMemoHits.add(1);
      return true;
    }
  }

  // Memo miss: run the front end. Two jobs racing on the same new text
  // may both pay this (parse + recognize is cheap); the expensive
  // compile below is still deduplicated by fingerprint.
  DiagnosticEngine Diags;
  std::optional<StencilSpec> Recognized;
  switch (Req.Kind) {
  case SourceKind::FortranAssignment: {
    std::optional<fortran::AssignmentStmt> Stmt =
        fortran::Parser::assignmentFromSource(Req.Source, Diags);
    if (Stmt) {
      RecognizerOptions RO;
      RO.AllowMultipleSources = Opts.AllowMultipleSources;
      Recognizer R(Diags, RO);
      Recognized = R.recognize(*Stmt);
    }
    break;
  }
  case SourceKind::FortranSubroutine: {
    std::optional<fortran::Subroutine> Sub =
        fortran::Parser::subroutineFromSource(Req.Source, Diags);
    if (Sub) {
      RecognizerOptions RO;
      RO.AllowMultipleSources = Opts.AllowMultipleSources;
      Recognizer R(Diags, RO);
      Recognized = R.recognize(*Sub);
    }
    break;
  }
  case SourceKind::DefStencil: {
    std::optional<sexpr::DefStencil> Def =
        sexpr::defStencilFromSource(Req.Source, Diags);
    if (Def)
      Recognized = Def->Spec;
    break;
  }
  case SourceKind::Fingerprint:
    CMCC_UNREACHABLE("handled above");
  }
  FrontEndRuns.add(1);
  if (!Recognized) {
    J.Result.Message = Diags.hasErrors()
                           ? Diags.str()
                           : "source was not recognized as a stencil";
    return false;
  }

  // Backend-scoped: the same spec compiles to the same plan either way
  // today, but a cached plan's identity includes where it runs.
  Fp = planFingerprint(*Recognized, Config, Opts.Backend);
  Spec = std::move(Recognized);
  {
    std::lock_guard<std::mutex> Lock(MemoMutex);
    SourceMemo.emplace(Key, MemoEntry{*Spec, Fp});
  }
  return true;
}

std::shared_ptr<const CompiledStencil>
StencilService::resolvePlan(Job &J, const std::optional<StencilSpec> &Spec,
                            uint64_t Fp) {
  CMCC_SPAN("service.resolve_plan");
  // Fast path: the cache (memory, then disk with re-verification).
  if (std::shared_ptr<const CompiledStencil> Plan = Cache.lookup(Fp)) {
    J.Result.CacheHit = true;
    return Plan;
  }

  // Miss: join an in-flight compile of this fingerprint or become its
  // owner. The recheck under InFlightMutex closes the window where an
  // owner has inserted into the cache but not yet unregistered — without
  // it a second worker could compile the same plan twice.
  std::shared_ptr<InFlightCompile> IF;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    auto It = InFlight.find(Fp);
    if (It != InFlight.end()) {
      IF = It->second;
    } else if (std::shared_ptr<const CompiledStencil> Plan = Cache.peek(Fp)) {
      J.Result.CacheHit = true;
      return Plan;
    } else {
      IF = std::make_shared<InFlightCompile>();
      InFlight.emplace(Fp, IF);
      Owner = true;
    }
  }

  if (!Owner) {
    // Coalesce: wait for the owner's verdict.
    CompilesCoalesced.add(1);
    J.Result.Coalesced = true;
    std::unique_lock<std::mutex> Lock(IF->Mutex);
    IF->Ready.wait(Lock, [&] { return IF->Done; });
    if (!IF->Plan) {
      J.Result.Message = IF->Error;
      return nullptr;
    }
    return IF->Plan;
  }

  // Owner: compile exactly once for everyone parked on IF.
  std::shared_ptr<const CompiledStencil> Plan;
  std::string Failure;
  if (!Spec) {
    Failure = "fingerprint " + fingerprintHex(Fp) +
              " is not cached and the job carries no source to compile";
  } else {
    CMCC_SPAN("service.compile");
    auto Begin = std::chrono::steady_clock::now();
    Expected<CompiledStencil> Compiled = Compiler.compile(*Spec);
    double Seconds = secondsSince(Begin);
    CompilesPerformed.add(1);
    CompileUs.observe(Seconds * 1e6);
    if (Compiled)
      Plan = std::make_shared<const CompiledStencil>(Compiled.takeValue());
    else
      Failure = Compiled.error().message();
  }
  if (Plan)
    Cache.insert(Fp, Plan); // Insert BEFORE unregistering (see recheck).
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    InFlight.erase(Fp);
  }
  {
    std::lock_guard<std::mutex> Lock(IF->Mutex);
    IF->Done = true;
    IF->Plan = Plan;
    IF->Error = Failure;
  }
  IF->Ready.notify_all();
  if (!Plan)
    J.Result.Message = Failure;
  return Plan;
}

void StencilService::process(Job &J) {
  CMCC_SPAN("service.job");
  auto CompileBegin = std::chrono::steady_clock::now();

  std::optional<StencilSpec> Spec;
  uint64_t Fp = 0;
  if (!resolveSpec(J, Spec, Fp)) {
    finish(J, JobState::Failed);
    return;
  }
  J.Result.Fingerprint = Fp;

  std::shared_ptr<const CompiledStencil> Plan = resolvePlan(J, Spec, Fp);
  J.Result.CompileSeconds = secondsSince(CompileBegin);
  if (!Plan) {
    finish(J, JobState::Failed);
    return;
  }
  J.Result.Plan = Plan;

  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    J.State = JobState::Executing;
  }
  JobsChanged.notify_all();

  CMCC_SPAN("service.execute");
  auto ExecBegin = std::chrono::steady_clock::now();
  Expected<TimingReport> Report =
      J.Request.Args
          ? Engine->run(*Plan, *J.Request.Args, J.Request.Iterations)
          : Engine->timeOnly(*Plan, J.Request.SubRows, J.Request.SubCols,
                             J.Request.Iterations);
  if (!Report) {
    J.Result.ExecuteSeconds = secondsSince(ExecBegin);
    J.Result.Message = Report.error().message();
    finish(J, JobState::Failed);
    return;
  }
  J.Result.Report = *Report;
  J.Result.ExecuteSeconds = secondsSince(ExecBegin);
  J.Result.Ok = true;
  finish(J, JobState::Done);
}

void StencilService::finish(Job &J, JobState Final) {
  if (Final == JobState::Done) {
    JobsCompleted.add(1);
    ExecuteUs.observe(J.Result.ExecuteSeconds * 1e6);
    const TimingReport &R = J.Result.Report;
    SimSeconds.add(R.elapsedSeconds());
    UsefulFlops.add(static_cast<double>(R.UsefulFlopsPerNodePerIteration) *
                    R.Nodes * R.Iterations);
  } else {
    JobsFailed.add(1);
  }
  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    J.State = Final;
  }
  JobsChanged.notify_all();
}

ServiceStats StencilService::stats() const {
  ServiceStats S;
  {
    // QueueDepth is written only under JobsMutex, so the now/max pair is
    // consistent with the queue; everything else is a relaxed snapshot.
    std::lock_guard<std::mutex> Lock(JobsMutex);
    S.JobsSubmitted = JobsSubmitted.value();
    S.QueueDepth = static_cast<int>(QueueDepth.value());
    S.MaxQueueDepth = static_cast<int>(QueueDepth.maximum());
  }
  S.JobsCompleted = JobsCompleted.value();
  S.JobsFailed = JobsFailed.value();
  S.FrontEndRuns = FrontEndRuns.value();
  S.SourceMemoHits = SourceMemoHits.value();
  S.CompilesPerformed = CompilesPerformed.value();
  S.CompilesCoalesced = CompilesCoalesced.value();
  S.CompileSecondsTotal = CompileUs.sum() / 1e6;
  S.ExecuteSecondsTotal = ExecuteUs.sum() / 1e6;
  S.SimSecondsTotal = SimSeconds.value();
  S.UsefulFlopsTotal = UsefulFlops.value();
  S.ReportsWallClock = Engine->reportsWallClock();
  S.Cache = Cache.counters();
  return S;
}
