//===- service/StencilService.cpp -----------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/StencilService.h"
#include "backends/Registry.h"
#include "core/PlanFingerprint.h"
#include "fortran/Parser.h"
#include "obs/FlightRecorder.h"
#include "obs/Trace.h"
#include "obs/TraceContext.h"
#include "sexpr/DefStencil.h"
#include "shard/ShardedBackend.h"
#include "runtime/TimeTile.h"
#include "stencil/Recognizer.h"
#include "support/Assert.h"
#include "support/FaultInjection.h"
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

using namespace cmcc;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Begin)
      .count();
}

/// Memo key: the front-end kind matters (the same text could be valid
/// under two front ends), the text is the rest.
std::string memoKey(StencilService::SourceKind Kind,
                    const std::string &Source) {
  return std::to_string(static_cast<int>(Kind)) + "\n" + Source;
}

/// The engine jobs run on: the named in-process backend, or — in
/// sharded mode — a multi-process coordinator running that backend
/// over worker blocks (same plans, same fingerprints, bitwise-equal
/// results; see DESIGN.md §5j).
std::unique_ptr<const ExecutionBackend>
makeServiceEngine(const MachineConfig &Config,
                  const StencilService::Options &Opts) {
  if (Opts.sharded()) {
    shard::ShardedBackend::Options SO;
    SO.Shards = Opts.Shards;
    SO.ShardRows = Opts.ShardRows;
    SO.ShardCols = Opts.ShardCols;
    SO.InnerBackend = Opts.Backend;
    SO.ExecOpts = Opts.Exec;
    return std::make_unique<shard::ShardedBackend>(Config, std::move(SO));
  }
  return createBackend(Opts.Backend, Config, Opts.Exec);
}

} // namespace

StencilService::StencilService(const MachineConfig &Config, Options Opts)
    : Config(Config), Opts(Opts), Compiler(Config),
      Engine(makeServiceEngine(Config, Opts)),
      Cache(Config, Opts.Cache),
      Tuner(std::make_unique<Autotuner>(
          Config,
          [this, &Opts] {
            Autotuner::Options AO;
            // Records live beside the cached plans unless redirected.
            AO.Dir = Opts.TuneDir.empty() ? Opts.Cache.DiskDir : Opts.TuneDir;
            AO.Depths = Opts.TuneDepths;
            // Metrics is a later member, so only its address is taken
            // here; the tuner touches it lazily, never at construction.
            AO.Metrics = &Metrics;
            return AO;
          }())),
      JobsSubmitted(Metrics.counter("service.jobs_submitted")),
      JobsCompleted(Metrics.counter("service.jobs_completed")),
      JobsFailed(Metrics.counter("service.jobs_failed")),
      FrontEndRuns(Metrics.counter("service.frontend_runs")),
      SourceMemoHits(Metrics.counter("service.source_memo_hits")),
      CompilesPerformed(Metrics.counter("service.compiles_performed")),
      CompilesCoalesced(Metrics.counter("service.compiles_coalesced")),
      Rejected(Metrics.counter("service.rejected")),
      CancelledJobs(Metrics.counter("service.cancelled")),
      DeadlinesExceeded(Metrics.counter("service.deadline_exceeded")),
      Retries(Metrics.counter("service.retries")),
      Fallbacks(Metrics.counter("service.fallbacks")),
      SlowJobs(Metrics.counter("service.slow_jobs")),
      Batches(Metrics.counter("service.batches")),
      BatchedJobs(Metrics.counter("service.batched_jobs")),
      QueueDepth(Metrics.gauge("service.queue_depth")),
      CompileUs(Metrics.histogram("service.compile_us")),
      ExecuteUs(Metrics.histogram("service.execute_us")),
      SimSeconds(Metrics.sum("service.sim_seconds")),
      UsefulFlops(Metrics.sum("service.useful_flops")) {
  assert(Engine && "unknown backend name (validate with isBackendName)");
  // Pre-register the tuner's mirrored counters so metrics exports show
  // them at zero even before (or without) any autotuned job.
  Metrics.counter("service.tune_hits");
  Metrics.counter("service.tune_disk_hits");
  Metrics.counter("service.tune_misses");
  Metrics.counter("service.tune_disk_rejects");
  Metrics.counter("service.tune_sweeps");
  Compiler.setAllowMultipleSources(Opts.AllowMultipleSources);
  int N = std::max(1, Opts.Workers);
  Workers.reserve(N);
  for (int I = 0; I != N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

StencilService::~StencilService() {
  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    ShuttingDown = true;
  }
  JobsChanged.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

const char *StencilService::jobEventName(JobEvent E) {
  switch (E) {
  case JobEvent::Submitted:
    return "submitted";
  case JobEvent::Rejected:
    return "rejected";
  case JobEvent::Queued:
    return "queued";
  case JobEvent::Dequeued:
    return "dequeued";
  case JobEvent::CacheHit:
    return "cache_hit";
  case JobEvent::Coalesced:
    return "coalesced";
  case JobEvent::CompileBegin:
    return "compile_begin";
  case JobEvent::CompileEnd:
    return "compile_end";
  case JobEvent::ExecuteAttempt:
    return "execute_attempt";
  case JobEvent::TransientFailure:
    return "transient_failure";
  case JobEvent::Retry:
    return "retry";
  case JobEvent::Fallback:
    return "fallback";
  case JobEvent::DeadlineExceeded:
    return "deadline_exceeded";
  case JobEvent::Cancelled:
    return "cancelled";
  case JobEvent::SlowJob:
    return "slow_job";
  case JobEvent::Done:
    return "done";
  case JobEvent::Failed:
    return "failed";
  case JobEvent::Batched:
    return "batched";
  case JobEvent::Autotuned:
    return "autotuned";
  }
  return "unknown";
}

const char *StencilService::jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Ok:
    return "ok";
  case JobStatus::Error:
    return "error";
  case JobStatus::QueueFull:
    return "queue_full";
  case JobStatus::DeadlineExceeded:
    return "deadline_exceeded";
  case JobStatus::BadJobId:
    return "bad_job_id";
  case JobStatus::Cancelled:
    return "cancelled";
  }
  return "unknown";
}

void StencilService::note(Job &J, JobEvent E, int32_t Detail) {
  J.Timeline.push_back({obs::detail::nowNs(), E, Detail});
}

void StencilService::archiveTimelineLocked(Job &J) {
  JobTimeline T;
  T.Id = J.Id;
  T.TraceId = J.Request.TraceId;
  T.Tenant = J.Request.Tenant;
  T.Fingerprint = J.Result.Fingerprint;
  T.Status = J.Result.Status;
  T.Events = std::move(J.Timeline);
  FinishedTimelines.push_back(std::move(T));
  while (FinishedTimelines.size() > std::max<size_t>(1, Opts.TimelineRingCap))
    FinishedTimelines.pop_front();
}

std::optional<StencilService::JobTimeline>
StencilService::timeline(JobId Id) const {
  std::lock_guard<std::mutex> Lock(JobsMutex);
  // Newest first: re-used ids (never in practice) would find the
  // latest life.
  for (auto It = FinishedTimelines.rbegin(); It != FinishedTimelines.rend();
       ++It)
    if (It->Id == Id)
      return *It;
  return std::nullopt;
}

std::string StencilService::timelineJson(JobId Id) const {
  std::optional<JobTimeline> T = timeline(Id);
  if (!T)
    return std::string();
  std::string Out;
  Out.reserve(256 + T->Events.size() * 64);
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "{\"job\": %ld, \"tenant\": %u, \"status\": \"%s\", ",
                T->Id, T->Tenant, jobStatusName(T->Status));
  Out += Buf;
  Out += "\"trace_id\": \"";
  Out += T->TraceId ? obs::formatTraceId(T->TraceId) : "";
  Out += "\", \"fingerprint\": \"";
  Out += obs::formatTraceId(T->Fingerprint);
  Out += "\", \"events\": [";
  const uint64_t Epoch = T->Events.empty() ? 0 : T->Events.front().Ns;
  bool First = true;
  for (const TimelineEntry &E : T->Events) {
    std::snprintf(Buf, sizeof(Buf),
                  "%s\n{\"t_ms\": %.6f, \"event\": \"%s\", \"detail\": %d, "
                  "\"ns\": %llu}",
                  First ? "" : ",",
                  static_cast<double>(E.Ns - Epoch) / 1e6, jobEventName(E.Event),
                  E.Detail, static_cast<unsigned long long>(E.Ns));
    Out += Buf;
    First = false;
  }
  Out += "\n]}\n";
  return Out;
}

StencilService::JobId StencilService::submit(JobRequest Request) {
  CMCC_SPAN("service.submit");
  Job *Raw;
  bool RejectedNow = false;
  {
    std::unique_lock<std::mutex> Lock(JobsMutex);
    assert(!ShuttingDown && "submit after shutdown began");
    TenantCounts &TC = tenantEntry(Request.Tenant);
    const TenantQuota &Quota = quotaFor(Request.Tenant);
    std::string RejectReason;
    // Tenant quotas reject unconditionally (even under Admission::Block):
    // blocking a quota violator would park it on the shared queue and
    // let one tenant starve the rest — the exact failure quotas exist
    // to prevent.
    if (Quota.MaxInFlight > 0 && TC.InFlight >= Quota.MaxInFlight) {
      RejectedNow = true;
      RejectReason = "rejected: tenant " + std::to_string(Request.Tenant) +
                     " over its in-flight quota (" +
                     std::to_string(Quota.MaxInFlight) + ")";
    } else if (Quota.MaxQueued > 0 && TC.Queued >= Quota.MaxQueued) {
      RejectedNow = true;
      RejectReason = "rejected: tenant " + std::to_string(Request.Tenant) +
                     " over its queue-share quota (" +
                     std::to_string(Quota.MaxQueued) + ")";
    } else {
      const size_t Cap = static_cast<size_t>(std::max(0, Opts.QueueCap));
      if (Cap != 0 && Queue.size() >= Cap) {
        if (Opts.Admit == Admission::Block) {
          // Backpressure: park the producer until a worker makes room.
          // ShuttingDown also wakes us (workers drain the whole queue at
          // shutdown, so enqueueing then is still safe).
          JobsChanged.wait(Lock,
                           [&] { return ShuttingDown || Queue.size() < Cap; });
        } else {
          RejectedNow = true;
          RejectReason = "rejected: queue full (cap " +
                         std::to_string(Opts.QueueCap) + ")";
        }
      }
    }
    auto J = std::make_unique<Job>();
    J->Id = NextId++;
    J->Request = std::move(Request);
    if (Opts.DeadlineMs > 0) {
      // The budget starts at admission, not at submit() entry: a
      // blocked producer's wait is backpressure, not job time.
      J->Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(Opts.DeadlineMs);
      J->HasDeadline = true;
    }
    Raw = J.get();
    Raw->AdmittedNs = obs::detail::nowNs();
    note(*Raw, JobEvent::Submitted);
    JobsSubmitted.add(1);
    ++TC.Submitted;
    TC.CtrSubmitted->add(1);
    if (RejectedNow) {
      // The caller still gets a real JobId — the job is just born
      // Failed, so poll/wait (and the soak's submitted ==
      // completed + failed ledger) work uniformly.
      Raw->State = JobState::Failed;
      Raw->Result.Status = JobStatus::QueueFull;
      Raw->Result.Message = std::move(RejectReason);
      note(*Raw, JobEvent::Rejected);
      obs::FlightRecorder::process().record(
          obs::FlightRecorder::EventKind::AdmissionReject, "service.submit",
          static_cast<uint64_t>(Raw->Id), Raw->Request.Tenant,
          Raw->Request.TraceId);
      Rejected.add(1);
      JobsFailed.add(1);
      ++TC.Rejected;
      ++TC.Failed;
      TC.CtrRejected->add(1);
      TC.CtrFailed->add(1);
      archiveTimelineLocked(*Raw);
    } else {
      note(*Raw, JobEvent::Queued);
      Queue.push_back(Raw);
      QueueDepth.add(1);
      ++TC.InFlight;
      ++TC.Queued;
    }
    Jobs.emplace(Raw->Id, std::move(J));
  }
  JobsChanged.notify_all();
  if (RejectedNow) {
    // A born-Failed job never reaches finish(); deliver its completion
    // notification here (after the job is visible in the table).
    if (std::function<void(JobId)> Cb = finishedCallback())
      Cb(Raw->Id);
  }
  return Raw->Id;
}

StencilService::JobState StencilService::poll(JobId Id) const {
  std::lock_guard<std::mutex> Lock(JobsMutex);
  auto It = Jobs.find(Id);
  // An id we never issued: report it the way wait() explains it
  // (BadJobId) rather than asserting — poll is how callers probe.
  if (It == Jobs.end())
    return JobState::Failed;
  return It->second->State;
}

const StencilService::TenantQuota &
StencilService::quotaFor(uint32_t Tenant) const {
  auto It = Opts.TenantQuotas.find(Tenant);
  return It != Opts.TenantQuotas.end() ? It->second
                                       : Opts.DefaultTenantQuota;
}

StencilService::TenantCounts &StencilService::tenantEntry(uint32_t Tenant) {
  TenantCounts &TC = Tenants[Tenant];
  if (!TC.CtrSubmitted) {
    const std::string Prefix =
        "service.tenant." + std::to_string(Tenant) + ".";
    TC.CtrSubmitted = &Metrics.counter(Prefix + "submitted");
    TC.CtrCompleted = &Metrics.counter(Prefix + "completed");
    TC.CtrFailed = &Metrics.counter(Prefix + "failed");
    TC.CtrRejected = &Metrics.counter(Prefix + "rejected");
  }
  return TC;
}

void StencilService::setJobFinishedCallback(std::function<void(JobId)> Cb) {
  std::lock_guard<std::mutex> Lock(CallbackMutex);
  OnJobFinished = std::move(Cb);
}

std::function<void(StencilService::JobId)>
StencilService::finishedCallback() const {
  std::lock_guard<std::mutex> Lock(CallbackMutex);
  return OnJobFinished;
}

bool StencilService::cancel(JobId Id) {
  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    auto It = Jobs.find(Id);
    if (It == Jobs.end())
      return false;
    Job *J = It->second.get();
    if (J->State != JobState::Queued)
      return false; // Picked up (or finished) — the real outcome wins.
    auto Pos = std::find(Queue.begin(), Queue.end(), J);
    assert(Pos != Queue.end() && "queued job missing from the queue");
    Queue.erase(Pos);
    QueueDepth.add(-1);
    J->State = JobState::Failed;
    J->Result.Status = JobStatus::Cancelled;
    J->Result.Message = "cancelled before execution";
    note(*J, JobEvent::Cancelled);
    obs::FlightRecorder::process().record(
        obs::FlightRecorder::EventKind::Cancelled, "service.cancel",
        static_cast<uint64_t>(J->Id), J->Request.Tenant, J->Request.TraceId);
    archiveTimelineLocked(*J);
    CancelledJobs.add(1);
    JobsFailed.add(1);
    TenantCounts &TC = tenantEntry(J->Request.Tenant);
    --TC.Queued;
    --TC.InFlight;
    ++TC.Failed;
    TC.CtrFailed->add(1);
  }
  // The erase made room at the cap; blocked producers may proceed.
  JobsChanged.notify_all();
  if (std::function<void(JobId)> Cb = finishedCallback())
    Cb(Id);
  return true;
}

StencilService::JobResult StencilService::wait(JobId Id) {
  std::unique_lock<std::mutex> Lock(JobsMutex);
  auto It = Jobs.find(Id);
  if (It == Jobs.end()) {
    // Waiting on an id submit() never returned must not hang (nothing
    // will ever finish it) or assert (release builds would read past
    // end). A definite failed result is the only safe answer.
    JobResult R;
    R.Status = JobStatus::BadJobId;
    R.Message = "wait on unknown job id " + std::to_string(Id);
    return R;
  }
  Job *J = It->second.get();
  JobsChanged.wait(Lock, [&] {
    return J->State == JobState::Done || J->State == JobState::Failed;
  });
  return J->Result;
}

void StencilService::drain() {
  std::unique_lock<std::mutex> Lock(JobsMutex);
  JobsChanged.wait(Lock, [&] {
    for (const auto &Entry : Jobs)
      if (Entry.second->State != JobState::Done &&
          Entry.second->State != JobState::Failed)
        return false;
    return true;
  });
}

void StencilService::workerLoop() {
  for (;;) {
    Job *J = nullptr;
    {
      std::unique_lock<std::mutex> Lock(JobsMutex);
      JobsChanged.wait(Lock, [&] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty()) {
        if (ShuttingDown)
          return; // Queue drained; every submitted job has run.
        continue;
      }
      J = Queue.front();
      Queue.pop_front();
      QueueDepth.add(-1);
      --tenantEntry(J->Request.Tenant).Queued;
      J->State = JobState::Compiling;
      note(*J, JobEvent::Dequeued);
    }
    // The pop made room: wake producers blocked on admission.
    JobsChanged.notify_all();
    // First cancellation point: a job that out-waited its deadline in
    // the queue fails before any compile work is spent on it.
    if (pastDeadline(*J)) {
      finish(*J, JobState::Failed);
      continue;
    }
    process(*J);
  }
}

bool StencilService::pastDeadline(Job &J) {
  if (!J.HasDeadline || std::chrono::steady_clock::now() < J.Deadline)
    return false;
  DeadlinesExceeded.add(1);
  J.Result.Status = JobStatus::DeadlineExceeded;
  J.Result.Message = "deadline of " + std::to_string(Opts.DeadlineMs) +
                     " ms exceeded";
  note(J, JobEvent::DeadlineExceeded,
       static_cast<int32_t>(Opts.DeadlineMs));
  obs::FlightRecorder::process().record(
      obs::FlightRecorder::EventKind::DeadlineExceeded, "service.deadline",
      static_cast<uint64_t>(J.Id), static_cast<uint64_t>(Opts.DeadlineMs),
      J.Request.TraceId);
  return true;
}

const ExecutionBackend &StencilService::fallbackEngine() {
  std::lock_guard<std::mutex> Lock(FallbackMutex);
  if (!Fallback)
    Fallback = createBackend("cm2", Config, Opts.Exec);
  return *Fallback;
}

bool StencilService::resolveSpec(Job &J, std::optional<StencilSpec> &Spec,
                                 uint64_t &Fp) {
  CMCC_SPAN("service.resolve_spec");
  const JobRequest &Req = J.Request;
  if (Req.Kind == SourceKind::Fingerprint) {
    Fp = Req.Fingerprint;
    return true; // No spec: the plan must already exist (or be in flight).
  }

  const std::string Key = memoKey(Req.Kind, Req.Source);
  {
    std::lock_guard<std::mutex> Lock(MemoMutex);
    auto It = SourceMemo.find(Key);
    if (It != SourceMemo.end()) {
      Spec = It->second.Spec;
      Fp = It->second.Fingerprint;
      SourceMemoHits.add(1);
      return true;
    }
  }

  // Memo miss: run the front end. Two jobs racing on the same new text
  // may both pay this (parse + recognize is cheap); the expensive
  // compile below is still deduplicated by fingerprint.
  DiagnosticEngine Diags;
  std::optional<StencilSpec> Recognized;
  switch (Req.Kind) {
  case SourceKind::FortranAssignment: {
    std::optional<fortran::AssignmentStmt> Stmt =
        fortran::Parser::assignmentFromSource(Req.Source, Diags);
    if (Stmt) {
      RecognizerOptions RO;
      RO.AllowMultipleSources = Opts.AllowMultipleSources;
      Recognizer R(Diags, RO);
      Recognized = R.recognize(*Stmt);
    }
    break;
  }
  case SourceKind::FortranSubroutine: {
    std::optional<fortran::Subroutine> Sub =
        fortran::Parser::subroutineFromSource(Req.Source, Diags);
    if (Sub) {
      RecognizerOptions RO;
      RO.AllowMultipleSources = Opts.AllowMultipleSources;
      Recognizer R(Diags, RO);
      Recognized = R.recognize(*Sub);
    }
    break;
  }
  case SourceKind::DefStencil: {
    std::optional<sexpr::DefStencil> Def =
        sexpr::defStencilFromSource(Req.Source, Diags);
    if (Def)
      Recognized = Def->Spec;
    break;
  }
  case SourceKind::Fingerprint:
    CMCC_UNREACHABLE("handled above");
  }
  FrontEndRuns.add(1);
  if (!Recognized) {
    J.Result.Message = Diags.hasErrors()
                           ? Diags.str()
                           : "source was not recognized as a stencil";
    return false;
  }

  // Backend-scoped: the same spec compiles to the same plan either way
  // today, but a cached plan's identity includes where it runs.
  Fp = planFingerprint(*Recognized, Config, Opts.Backend);
  Spec = std::move(Recognized);
  {
    std::lock_guard<std::mutex> Lock(MemoMutex);
    SourceMemo.emplace(Key, MemoEntry{*Spec, Fp});
  }
  return true;
}

std::shared_ptr<const CompiledStencil>
StencilService::resolvePlan(Job &J, const std::optional<StencilSpec> &Spec,
                            uint64_t Fp) {
  CMCC_SPAN("service.resolve_plan");
  // Fast path: the cache (memory, then disk with re-verification).
  if (std::shared_ptr<const CompiledStencil> Plan = Cache.lookup(Fp)) {
    J.Result.CacheHit = true;
    note(J, JobEvent::CacheHit);
    return Plan;
  }

  // Miss: join an in-flight compile of this fingerprint or become its
  // owner. The recheck under InFlightMutex closes the window where an
  // owner has inserted into the cache but not yet unregistered — without
  // it a second worker could compile the same plan twice.
  std::shared_ptr<InFlightCompile> IF;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    auto It = InFlight.find(Fp);
    if (It != InFlight.end()) {
      IF = It->second;
    } else if (std::shared_ptr<const CompiledStencil> Plan = Cache.peek(Fp)) {
      J.Result.CacheHit = true;
      note(J, JobEvent::CacheHit);
      return Plan;
    } else {
      IF = std::make_shared<InFlightCompile>();
      InFlight.emplace(Fp, IF);
      Owner = true;
    }
  }

  if (!Owner) {
    // Coalesce: wait for the owner's verdict.
    CompilesCoalesced.add(1);
    J.Result.Coalesced = true;
    note(J, JobEvent::Coalesced);
    std::unique_lock<std::mutex> Lock(IF->Mutex);
    IF->Ready.wait(Lock, [&] { return IF->Done; });
    if (!IF->Plan) {
      J.Result.Message = IF->Error;
      return nullptr;
    }
    return IF->Plan;
  }

  // Owner: compile exactly once for everyone parked on IF.
  std::shared_ptr<const CompiledStencil> Plan;
  std::string Failure;
  if (!Spec) {
    Failure = "fingerprint " + fingerprintHex(Fp) +
              " is not cached and the job carries no source to compile";
  } else if (fault::probe("service.compile")) {
    // The whole compile fails, so every job parked on IF shares the
    // failure; the fingerprint stays uncached and a later submission
    // compiles fresh.
    Failure = fault::injectedFault("service.compile").message();
  } else {
    CMCC_SPAN("service.compile");
    note(J, JobEvent::CompileBegin);
    auto Begin = std::chrono::steady_clock::now();
    Expected<CompiledStencil> Compiled = Compiler.compile(*Spec);
    double Seconds = secondsSince(Begin);
    CompilesPerformed.add(1);
    CompileUs.observe(Seconds * 1e6);
    if (Compiled)
      Plan = std::make_shared<const CompiledStencil>(Compiled.takeValue());
    else
      Failure = Compiled.error().message();
    note(J, JobEvent::CompileEnd, Plan ? 1 : 0);
  }
  if (Plan)
    Cache.insert(Fp, Plan); // Insert BEFORE unregistering (see recheck).
  {
    std::lock_guard<std::mutex> Lock(InFlightMutex);
    InFlight.erase(Fp);
  }
  {
    std::lock_guard<std::mutex> Lock(IF->Mutex);
    IF->Done = true;
    IF->Plan = Plan;
    IF->Error = Failure;
  }
  IF->Ready.notify_all();
  if (!Plan)
    J.Result.Message = Failure;
  return Plan;
}

void StencilService::process(Job &J) {
  // Re-establish the submitting client's trace context on this worker:
  // every span below (resolve, compile, execute, the backend's own
  // spans, halo exchange on pool workers) inherits the client-minted
  // trace id.
  obs::ScopedTraceContext TraceScope(J.Request.TraceId, J.Request.ParentSpan);
  CMCC_SPAN("service.job");
  auto CompileBegin = std::chrono::steady_clock::now();

  std::optional<StencilSpec> Spec;
  uint64_t Fp = 0;
  if (!resolveSpec(J, Spec, Fp)) {
    finish(J, JobState::Failed);
    return;
  }
  J.Result.Fingerprint = Fp;

  std::shared_ptr<const CompiledStencil> Plan = resolvePlan(J, Spec, Fp);
  J.Result.CompileSeconds = secondsSince(CompileBegin);
  if (!Plan) {
    finish(J, JobState::Failed);
    return;
  }
  J.Result.Plan = Plan;

  // Second cancellation point: plan resolution (a compile, or a wait on
  // someone else's) may have eaten the whole budget.
  if (pastDeadline(J)) {
    finish(J, JobState::Failed);
    return;
  }

  // Plan batching: with the resolved plan in hand, queued jobs carrying
  // the same fingerprint can ride along with zero re-resolution.
  std::vector<Job *> Followers = claimBatch(J, Fp, Plan);

  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    J.State = JobState::Executing;
  }
  JobsChanged.notify_all();

  execute(J, *Plan);

  // Claimed followers run back-to-back on this worker: same immutable
  // plan object, no front end, no cache traffic — the batch is the warm
  // path with even the lookups amortized away. Each follower keeps its
  // own trace context, deadline, retry ladder, and ledger entry.
  for (Job *F : Followers) {
    obs::ScopedTraceContext FollowerScope(F->Request.TraceId,
                                          F->Request.ParentSpan);
    CMCC_SPAN("service.job");
    if (pastDeadline(*F)) {
      finish(*F, JobState::Failed);
      continue;
    }
    {
      std::lock_guard<std::mutex> Lock(JobsMutex);
      F->State = JobState::Executing;
    }
    JobsChanged.notify_all();
    execute(*F, *Plan);
  }
}

std::vector<StencilService::Job *>
StencilService::claimBatch(Job &Leader, uint64_t Fp,
                           std::shared_ptr<const CompiledStencil> Plan) {
  std::vector<Job *> Claimed;
  if (Opts.BatchWindowMs <= 0)
    return Claimed;
  CMCC_SPAN("service.batch_claim");

  // The fingerprint of a queued job, when knowable without front-end
  // work: explicit-fingerprint jobs carry it, source jobs are matched
  // through the memo (MemoMutex is a leaf lock, safe under JobsMutex).
  auto QueuedFp = [&](const Job &Q) -> std::optional<uint64_t> {
    if (Q.Request.Kind == SourceKind::Fingerprint)
      return Q.Request.Fingerprint;
    std::lock_guard<std::mutex> MemoLock(MemoMutex);
    auto It = SourceMemo.find(memoKey(Q.Request.Kind, Q.Request.Source));
    if (It != SourceMemo.end())
      return It->second.Fingerprint;
    return std::nullopt;
  };

  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(Opts.BatchWindowMs);
  std::unique_lock<std::mutex> Lock(JobsMutex);
  // Wait out the window for a same-plan job to arrive (Nagle-style:
  // the leader trades a bounded slice of its own latency for the
  // group's amortization). Shutdown wakes the wait; claiming during
  // shutdown is fine — workers drain every admitted job regardless.
  JobsChanged.wait_until(Lock, Deadline, [&] {
    if (ShuttingDown)
      return true;
    for (const Job *Q : Queue)
      if (std::optional<uint64_t> QF = QueuedFp(*Q); QF && *QF == Fp)
        return true;
    return false;
  });

  for (auto It = Queue.begin(); It != Queue.end();) {
    Job *Q = *It;
    const bool ViaMemo = Q->Request.Kind != SourceKind::Fingerprint;
    std::optional<uint64_t> QF = QueuedFp(*Q);
    if (!QF || *QF != Fp) {
      ++It;
      continue;
    }
    It = Queue.erase(It);
    QueueDepth.add(-1);
    --tenantEntry(Q->Request.Tenant).Queued;
    Q->State = JobState::Compiling;
    note(*Q, JobEvent::Dequeued);
    note(*Q, JobEvent::Batched);
    // Stamp the accounting a solo warm run of this job would have
    // produced — its source would resolve through the memo and its
    // plan through the cache — so grouped and ungrouped ledgers match.
    if (ViaMemo)
      SourceMemoHits.add(1);
    Q->Result.CacheHit = true;
    note(*Q, JobEvent::CacheHit);
    Q->Result.Fingerprint = Fp;
    Q->Result.Plan = Plan;
    Q->Result.Batched = true;
    BatchedJobs.add(1);
    Claimed.push_back(Q);
  }
  if (!Claimed.empty()) {
    Batches.add(1);
    // The leader's timeline records the group size it amortized for.
    note(Leader, JobEvent::Batched, static_cast<int32_t>(Claimed.size()));
  }
  Lock.unlock();
  // The erases made room at the cap: wake blocked producers.
  JobsChanged.notify_all();
  return Claimed;
}

int StencilService::effectiveTimeTile(Job &J, const CompiledStencil &Plan) {
  int SubRows = J.Request.SubRows;
  int SubCols = J.Request.SubCols;
  if (J.Request.Args && J.Request.Args->Result) {
    SubRows = J.Request.Args->Result->subRows();
    SubCols = J.Request.Args->Result->subCols();
  }
  int Want = J.Request.TimeTile > 0 ? J.Request.TimeTile : Opts.TimeTile;
  if (Want <= 0) {
    // Autotuned: warm fingerprints reuse the recorded winner, cold ones
    // sweep once (counted — tests pin "warm runs never re-sweep" on
    // these counters).
    Autotuner::TunedParams P =
        Tuner->resolve(J.Result.Fingerprint, *Engine, Plan, SubRows, SubCols);
    note(J, JobEvent::Autotuned, P.TimeTile);
    Want = P.TimeTile;
  }
  return timetile::clampTimeTile(Plan.Spec, Want, SubRows, SubCols);
}

void StencilService::execute(Job &J, const CompiledStencil &Plan) {
  CMCC_SPAN("service.execute");
  auto ExecBegin = std::chrono::steady_clock::now();
  auto Finish = [&](JobState Final) {
    J.Result.ExecuteSeconds = secondsSince(ExecBegin);
    finish(J, Final);
  };

  const ExecutionBackend *Exec = Engine.get();
  // The depth is resolved once, before the attempt loop: retries and
  // the cm2 fallback execute the identical fused unit, so a retried or
  // degraded job cannot silently change its numerical contract.
  RunOptions RO;
  RO.Iterations = J.Request.Iterations;
  RO.TimeTile = effectiveTimeTile(J, Plan);
  J.Result.TimeTileUsed = RO.TimeTile;
  int Attempt = 0; // Attempts on the current backend, 0-based.
  for (;;) {
    // Checked before each attempt, never after a success: a result that
    // lands while the final attempt races past the deadline was paid
    // for and is delivered.
    if (pastDeadline(J))
      return Finish(JobState::Failed);

    note(J, JobEvent::ExecuteAttempt, J.Result.Retries + 1);
    Expected<TimingReport> Report =
        J.Request.Args
            ? Exec->run(Plan, *J.Request.Args, RO)
            : Exec->timeOnly(Plan, J.Request.SubRows, J.Request.SubCols, RO);
    if (Report) {
      J.Result.Report = *Report;
      J.Result.Ok = true;
      J.Result.Status = JobStatus::Ok;
      return Finish(JobState::Done);
    }

    // A failed attempt leaves no partial state: every backend fails
    // before its compute loops, and a rerun overwrites the result
    // arrays from scratch — which is what makes retrying sound.
    if (!Report.error().isTransient()) {
      J.Result.Message = Report.error().message();
      return Finish(JobState::Failed);
    }

    note(J, JobEvent::TransientFailure, J.Result.Retries + 1);
    if (Attempt < Opts.MaxRetries) {
      ++Attempt;
      Retries.add(1);
      ++J.Result.Retries;
      obs::FlightRecorder::process().record(
          obs::FlightRecorder::EventKind::Retry, "service.execute",
          static_cast<uint64_t>(J.Id),
          static_cast<uint64_t>(J.Result.Retries), J.Request.TraceId);
      // Exponential backoff, clamped so a sleep can never push the job
      // past its deadline asleep (the pre-attempt check above catches
      // the expiry awake).
      long BackoffMs = Opts.RetryBackoffMs > 0
                           ? Opts.RetryBackoffMs << std::min(Attempt - 1, 20)
                           : 0;
      if (J.HasDeadline) {
        const long RemainingMs = static_cast<long>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                J.Deadline - std::chrono::steady_clock::now())
                .count());
        BackoffMs = std::min(BackoffMs, std::max(0L, RemainingMs));
      }
      note(J, JobEvent::Retry, static_cast<int32_t>(BackoffMs));
      if (BackoffMs > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs));
      continue;
    }

    // Retries exhausted. Degrade gracefully — once — to the in-process
    // cm2 reference backend, with a fresh retry budget there. Sharded
    // cm2 still falls back: losing the worker fleet must not lose the
    // job, and the unsharded reference computes the identical result.
    if (!J.Result.FellBack && Opts.FallbackToCm2 &&
        (Opts.Backend != "cm2" || Opts.sharded())) {
      J.Result.FellBack = true;
      Fallbacks.add(1);
      note(J, JobEvent::Fallback);
      obs::FlightRecorder::process().record(
          obs::FlightRecorder::EventKind::Fallback, "service.execute",
          static_cast<uint64_t>(J.Id), 0, J.Request.TraceId);
      Exec = &fallbackEngine();
      Attempt = 0;
      continue;
    }

    J.Result.Message = Report.error().message();
    return Finish(JobState::Failed);
  }
}

void StencilService::finish(Job &J, JobState Final) {
  note(J, Final == JobState::Done ? JobEvent::Done : JobEvent::Failed);
  const uint64_t TotalMs = (obs::detail::nowNs() - J.AdmittedNs) / 1000000u;
  const bool Slow =
      Opts.SlowJobMs > 0 && TotalMs > static_cast<uint64_t>(Opts.SlowJobMs);
  if (Slow) {
    note(J, JobEvent::SlowJob, static_cast<int32_t>(TotalMs));
    SlowJobs.add(1);
    obs::FlightRecorder::process().record(
        obs::FlightRecorder::EventKind::SlowJob, "service.finish",
        static_cast<uint64_t>(J.Id), TotalMs, J.Request.TraceId);
  }
  if (Final == JobState::Done) {
    JobsCompleted.add(1);
    ExecuteUs.observe(J.Result.ExecuteSeconds * 1e6);
    const TimingReport &R = J.Result.Report;
    SimSeconds.add(R.elapsedSeconds());
    UsefulFlops.add(static_cast<double>(R.UsefulFlopsPerNodePerIteration) *
                    R.Nodes * R.Iterations);
  } else {
    JobsFailed.add(1);
  }
  {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    TenantCounts &TC = tenantEntry(J.Request.Tenant);
    --TC.InFlight;
    if (Final == JobState::Done) {
      ++TC.Completed;
      TC.CtrCompleted->add(1);
    } else {
      ++TC.Failed;
      TC.CtrFailed->add(1);
    }
    J.State = Final;
    archiveTimelineLocked(J);
  }
  JobsChanged.notify_all();
  // A slow job's spans go to disk NOW (even though the trace normally
  // flushes on its own cadence): if the process dies later, the
  // evidence for the job that was already over budget survives.
  if (Slow && obs::Trace::active())
    obs::Trace::flush();
  if (std::function<void(JobId)> Cb = finishedCallback())
    Cb(J.Id);
}

ServiceStats StencilService::stats() const {
  ServiceStats S;
  {
    // QueueDepth is written only under JobsMutex, so the now/max pair is
    // consistent with the queue; everything else is a relaxed snapshot.
    std::lock_guard<std::mutex> Lock(JobsMutex);
    S.JobsSubmitted = JobsSubmitted.value();
    S.QueueDepth = static_cast<int>(QueueDepth.value());
    S.MaxQueueDepth = static_cast<int>(QueueDepth.maximum());
    S.Tenants.reserve(Tenants.size());
    for (const auto &Entry : Tenants) {
      const TenantCounts &TC = Entry.second;
      S.Tenants.push_back({Entry.first, TC.Submitted, TC.Completed,
                           TC.Failed, TC.Rejected, TC.InFlight, TC.Queued});
    }
  }
  S.JobsCompleted = JobsCompleted.value();
  S.JobsFailed = JobsFailed.value();
  S.FrontEndRuns = FrontEndRuns.value();
  S.SourceMemoHits = SourceMemoHits.value();
  S.CompilesPerformed = CompilesPerformed.value();
  S.CompilesCoalesced = CompilesCoalesced.value();
  S.Rejected = Rejected.value();
  S.Cancelled = CancelledJobs.value();
  S.DeadlineExceeded = DeadlinesExceeded.value();
  S.Retries = Retries.value();
  S.Fallbacks = Fallbacks.value();
  S.Batches = Batches.value();
  S.BatchedJobs = BatchedJobs.value();
  {
    Autotuner::Counters TC = Tuner->counters();
    S.TuneHits = TC.Hits;
    S.TuneDiskHits = TC.DiskHits;
    S.TuneMisses = TC.Misses;
    S.TuneDiskRejects = TC.DiskRejects;
    S.TuneSweeps = TC.Sweeps;
  }
  S.CompileSecondsTotal = CompileUs.sum() / 1e6;
  S.ExecuteSecondsTotal = ExecuteUs.sum() / 1e6;
  S.SimSecondsTotal = SimSeconds.value();
  S.UsefulFlopsTotal = UsefulFlops.value();
  S.ReportsWallClock = Engine->reportsWallClock();
  S.Cache = Cache.counters();
  return S;
}
