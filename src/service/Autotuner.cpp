//===- service/Autotuner.cpp ----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/Autotuner.h"
#include "backends/native/NativeBackend.h"
#include "core/PlanFingerprint.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/TimeTile.h"
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace cmcc;

namespace {

/// Sum of the phase histograms a run's host time lands in. The cm2
/// path records executor.run_host_us; the wall-clock backends record
/// backend.<name>.run_host_us around it — summing all three makes the
/// delta backend-agnostic.
double runHostUsTotal() {
  obs::Registry &R = obs::Registry::process();
  return R.histogram("executor.run_host_us").sum() +
         R.histogram("backend.native.run_host_us").sum() +
         R.histogram("backend.njit.run_host_us").sum();
}

} // namespace

Autotuner::Autotuner(const MachineConfig &Config, Options Opts)
    : Config(Config), Opts(std::move(Opts)) {
  if (this->Opts.Depths.empty())
    this->Opts.Depths = {1};
}

void Autotuner::noteMetric(const char *Name) {
  if (Opts.Metrics)
    Opts.Metrics->counter(Name).add(1);
}

std::string Autotuner::recordPath(const std::string &Dir,
                                  uint64_t Fingerprint) {
  return Dir + "/" + fingerprintHex(Fingerprint) + ".tune";
}

std::string Autotuner::machineStamp() const {
  std::ostringstream S;
  S << Config.NodeRows << "x" << Config.NodeCols << "@" << Config.ClockMHz;
  return S.str();
}

std::optional<Autotuner::TunedParams>
Autotuner::loadRecord(uint64_t Fingerprint, const std::string &BackendName) {
  if (Opts.Dir.empty())
    return std::nullopt;
  std::ifstream In(recordPath(Opts.Dir, Fingerprint));
  if (!In)
    return std::nullopt; // Nothing on disk: a plain (uncounted) miss.

  // Strict line-oriented parse: any missing line, bad key, or value
  // mismatch is a counted DiskReject — a damaged or stale record must
  // fall back to a fresh sweep, never half-apply.
  auto Reject = [&]() -> std::optional<TunedParams> {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Counts.DiskRejects;
    }
    noteMetric("service.tune_disk_rejects");
    return std::nullopt;
  };
  std::string Line;
  if (!std::getline(In, Line) || Line != "cmcc-tune v1")
    return Reject();

  TunedParams P;
  bool SawFp = false, SawMachine = false, SawBackend = false, SawTile = false;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::istringstream LS(Line);
    std::string Key;
    LS >> Key;
    if (Key == "fingerprint") {
      std::string Hex;
      LS >> Hex;
      if (Hex != fingerprintHex(Fingerprint))
        return Reject();
      SawFp = true;
    } else if (Key == "machine") {
      std::string Stamp;
      LS >> Stamp;
      if (Stamp != machineStamp())
        return Reject();
      SawMachine = true;
    } else if (Key == "backend") {
      std::string Name;
      LS >> Name;
      if (Name != BackendName)
        return Reject();
      SawBackend = true;
    } else if (Key == "time_tile") {
      if (!(LS >> P.TimeTile) || P.TimeTile < 1)
        return Reject();
      SawTile = true;
    } else if (Key == "threads") {
      if (!(LS >> P.ThreadCount) || P.ThreadCount < 0)
        return Reject();
    } else if (Key == "rows_per_tile") {
      if (!(LS >> P.RowsPerTile) || P.RowsPerTile < 1)
        return Reject();
    } else if (Key == "score_us") {
      if (!(LS >> P.ScoreUs))
        return Reject();
    } else {
      return Reject(); // Unknown key: a future version we cannot trust.
    }
  }
  if (!SawFp || !SawMachine || !SawBackend || !SawTile)
    return Reject(); // Truncated.
  return P;
}

void Autotuner::storeRecord(uint64_t Fingerprint,
                            const std::string &BackendName,
                            const TunedParams &P) {
  if (Opts.Dir.empty())
    return;
  std::error_code EC;
  std::filesystem::create_directories(Opts.Dir, EC);
  std::ofstream Out(recordPath(Opts.Dir, Fingerprint), std::ios::trunc);
  if (!Out)
    return; // Persistence is best-effort; memory still has the winner.
  Out << "cmcc-tune v1\n"
      << "fingerprint " << fingerprintHex(Fingerprint) << "\n"
      << "machine " << machineStamp() << "\n"
      << "backend " << BackendName << "\n"
      << "time_tile " << P.TimeTile << "\n"
      << "threads " << P.ThreadCount << "\n"
      << "rows_per_tile " << P.RowsPerTile << "\n"
      << "score_us " << P.ScoreUs << "\n";
}

std::optional<Autotuner::TunedParams>
Autotuner::lookup(uint64_t Fingerprint, const ExecutionBackend &Backend) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Memory.find(Fingerprint);
    if (It != Memory.end()) {
      ++Counts.Hits;
      noteMetric("service.tune_hits");
      return It->second;
    }
  }
  if (std::optional<TunedParams> P = loadRecord(Fingerprint, Backend.name())) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      ++Counts.DiskHits;
      Memory.emplace(Fingerprint, *P);
    }
    noteMetric("service.tune_disk_hits");
    return P;
  }
  return std::nullopt;
}

Autotuner::TunedParams Autotuner::tune(uint64_t Fingerprint,
                                       const ExecutionBackend &Backend,
                                       const CompiledStencil &Plan,
                                       int SubRows, int SubCols) {
  CMCC_SPAN("service.autotune");
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Counts.Misses;
    ++Counts.Sweeps;
  }
  noteMetric("service.tune_misses");
  noteMetric("service.tune_sweeps");

  // Candidate depths: each requested depth clamped to what the plan
  // and subgrid admit (deep requests collapse onto the deepest legal
  // tile), deduplicated, depth 1 always present as the baseline.
  std::vector<int> Depths{1};
  for (int D : Opts.Depths) {
    int K = timetile::clampTimeTile(Plan.Spec, D, SubRows, SubCols);
    if (std::find(Depths.begin(), Depths.end(), K) == Depths.end())
      Depths.push_back(K);
  }

  const bool WallClock = Backend.reportsWallClock();
  TunedParams Best;
  Best.ScoreUs = -1.0;
  for (int K : Depths) {
    RunOptions RO;
    RO.TimeTile = K;
    const double HistBefore = WallClock ? runHostUsTotal() : 0.0;
    Expected<TimingReport> Report =
        Backend.timeOnly(Plan, SubRows, SubCols, RO);
    if (!Report)
      continue; // An undeployable depth scores itself out.
    // Per-timestep cost: depth k's run covers k chained steps, so the
    // fair comparison divides by k. Wall-clock backends are scored by
    // the obs phase-histogram delta their run recorded (falling back
    // to the report when the run was too fast to register); cm2 by
    // the simulated machine time.
    double Us;
    if (WallClock) {
      Us = runHostUsTotal() - HistBefore;
      if (Us <= 0.0)
        Us = Report->HostSecondsPerIteration * 1e6;
    } else {
      Us = Report->secondsPerIteration() * 1e6;
    }
    Us /= K;
    if (Best.ScoreUs < 0.0 || Us < Best.ScoreUs) {
      Best.TimeTile = K;
      Best.ScoreUs = Us;
    }
  }
  if (Best.ScoreUs < 0.0)
    Best = TunedParams{}; // Every probe failed: keep the safe defaults.

  // Host-loop knobs: for the native backend, probe the strip-tile
  // height at the winning depth on private single-option instances
  // (the knob is a constructor option, not a RunOptions field). Other
  // backends keep the defaults — the record still carries them.
  if (std::string_view(Backend.name()) == "native") {
    double BestRowsUs = -1.0;
    for (int Rows : {16, 32, 64}) {
      NativeBackend::Options NO;
      NO.RowsPerTile = Rows;
      NativeBackend Probe(Config, NO);
      RunOptions RO;
      RO.TimeTile = Best.TimeTile;
      const double HistBefore = runHostUsTotal();
      Expected<TimingReport> Report =
          Probe.timeOnly(Plan, SubRows, SubCols, RO);
      if (!Report)
        continue;
      double Us = runHostUsTotal() - HistBefore;
      if (Us <= 0.0)
        Us = Report->HostSecondsPerIteration * 1e6;
      if (BestRowsUs < 0.0 || Us < BestRowsUs) {
        BestRowsUs = Us;
        Best.RowsPerTile = Rows;
      }
    }
  }

  storeRecord(Fingerprint, Backend.name(), Best);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Memory[Fingerprint] = Best;
  }
  return Best;
}

Autotuner::TunedParams Autotuner::resolve(uint64_t Fingerprint,
                                          const ExecutionBackend &Backend,
                                          const CompiledStencil &Plan,
                                          int SubRows, int SubCols) {
  if (std::optional<TunedParams> P = lookup(Fingerprint, Backend))
    return *P;
  return tune(Fingerprint, Backend, Plan, SubRows, SubCols);
}

Autotuner::Counters Autotuner::counters() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counts;
}
