//===- service/PlanCache.h - Sharded compiled-plan cache ------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concurrent in-memory LRU cache of compiled stencil plans keyed by
/// plan fingerprint (core/PlanFingerprint), with an optional on-disk
/// tier in the existing .cmccode format.
///
/// The cache is mutex-striped: fingerprints map to one of N shards, each
/// an independently locked LRU list, so concurrent lookups of different
/// patterns do not contend. Plans are handed out as
/// shared_ptr<const CompiledStencil> — a plan is immutable once compiled
/// (the executor only reads it), so a cached plan can be executing on
/// one thread while another evicts it.
///
/// The disk tier stores each entry as <dir>/<fingerprint-hex>.cmccode
/// via core/ScheduleIO. Loads re-run the full parse + schedule verifier;
/// a file that is truncated, tampered with, or written for a different
/// machine is counted as a miss (DiskRejects) and never crashes or
/// yields an unverified plan. The cache therefore cannot change
/// numerical results or simulated cycles: it only ever returns plans
/// that passed the same verifier a fresh compile would.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SERVICE_PLANCACHE_H
#define CMCC_SERVICE_PLANCACHE_H

#include "cm2/MachineConfig.h"
#include "core/Compiler.h"
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace cmcc {

/// A sharded LRU of immutable compiled plans.
class PlanCache {
public:
  struct Options {
    /// Total in-memory entries across all shards (>= Shards; each shard
    /// holds at least one entry).
    size_t Capacity = 64;
    /// Mutex stripes. Clamped to >= 1.
    int Shards = 8;
    /// When nonempty, the on-disk tier's directory (created on first
    /// write if missing). Entries are .cmccode files named by
    /// fingerprint hex.
    std::string DiskDir;
  };

  /// Monotonic counters, all readable without locking a shard.
  struct Counters {
    long Hits = 0;       ///< In-memory fingerprint hits.
    long Misses = 0;     ///< Neither tier had a verified plan.
    long Evictions = 0;  ///< LRU entries dropped to make room.
    long Insertions = 0; ///< Plans added (fresh compiles).
    long DiskHits = 0;   ///< Loaded from disk and re-verified OK.
    long DiskRejects = 0; ///< Disk entry present but corrupt/mismatched.

    long lookups() const { return Hits + Misses; }
    /// Fraction of lookups served without compiling (memory or disk).
    double hitRate() const {
      long L = lookups();
      return L == 0 ? 0.0 : static_cast<double>(Hits) / L;
    }
  };

  /// \p Config is the machine the cached plans were compiled for; the
  /// disk tier re-verifies loaded schedules against it.
  PlanCache(const MachineConfig &Config, Options Opts);

  /// Returns the cached plan for \p Fingerprint, consulting memory then
  /// disk, or nullptr (a miss). A disk hit is promoted into memory.
  std::shared_ptr<const CompiledStencil> lookup(uint64_t Fingerprint);

  /// In-memory-only recheck that touches no hit/miss counters (and not
  /// the disk tier). Used by the service's compile-dedup protocol to
  /// close the insert/unregister race without double-counting the
  /// original miss.
  std::shared_ptr<const CompiledStencil> peek(uint64_t Fingerprint);

  /// Inserts \p Plan under \p Fingerprint (no-op if already present),
  /// evicting the shard's least-recently-used entry when over capacity,
  /// and writes through to the disk tier when one is configured.
  void insert(uint64_t Fingerprint,
              std::shared_ptr<const CompiledStencil> Plan);

  /// Drops every in-memory entry (the disk tier is left alone).
  /// Counters keep accumulating.
  void clearMemory();

  Counters counters() const;

  /// Current in-memory entry count (sums shard sizes; a snapshot).
  size_t size() const;

  const Options &options() const { return Opts; }

private:
  struct Shard {
    std::mutex Mutex;
    /// Front = most recently used.
    std::list<std::pair<uint64_t, std::shared_ptr<const CompiledStencil>>>
        Lru;
    std::unordered_map<uint64_t, decltype(Lru)::iterator> Index;
  };

  Shard &shardFor(uint64_t Fingerprint) {
    return *Shards[Fingerprint % Shards.size()];
  }
  std::string diskPathFor(uint64_t Fingerprint) const;
  std::shared_ptr<const CompiledStencil> loadFromDisk(uint64_t Fingerprint);
  void storeToDisk(uint64_t Fingerprint, const CompiledStencil &Plan) const;

  MachineConfig Config;
  Options Opts;
  size_t PerShardCapacity;
  std::vector<std::unique_ptr<Shard>> Shards;

  mutable std::atomic<long> Hits{0}, Misses{0}, Evictions{0}, Insertions{0},
      DiskHits{0}, DiskRejects{0};
};

} // namespace cmcc

#endif // CMCC_SERVICE_PLANCACHE_H
