//===- service/StencilService.h - Compile-once-run-many server -*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer: a front object that accepts stencil jobs
/// (submit / poll / wait), compiles each distinct plan exactly once, and
/// streams repeat traffic through the cached register patterns — the
/// paper's amortization ("the compiler's entire output is data") turned
/// into an operational guarantee.
///
/// A job carries either source text (Fortran assignment, SUBROUTINE, or
/// Lisp defstencil) or a precompiled plan fingerprint, plus optionally
/// the distributed arrays to run against. Jobs flow through:
///
///   submit -> FIFO queue -> worker: resolve fingerprint -> PlanCache
///          -> (miss: compile ONCE, in-flight submissions of the same
///              fingerprint coalesce onto that compile)
///          -> execute on the simulated machine -> Done
///
/// Warm-path guarantee: a repeated source text is resolved through the
/// source memo (no lexer/parser/recognizer run) and its plan through the
/// cache (no planning/verification run); the only work left is the
/// execution itself. And because a cached plan is byte-identical to the
/// plan a fresh compile would produce, serving from the cache can never
/// change numerical results or simulated cycle counts (tested).
///
/// Workers are the service's own lightweight dispatch threads; the heavy
/// per-node functional fan-out of each execution runs on the shared
/// support/ThreadPool exactly as direct Executor::run calls do.
///
/// Robustness (DESIGN.md §5f): admission control bounds the queue
/// (reject-with-QueueFull or block, per Options), per-job deadlines are
/// enforced cooperatively at phase boundaries, transient execution
/// failures (see Error::isTransient) retry with exponential backoff, and
/// when a non-cm2 backend keeps failing transiently the job falls back
/// once to the cm2 reference backend. Every such event is counted
/// (service.rejected / deadline_exceeded / retries / fallbacks) and
/// stamped on the JobResult.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SERVICE_STENCILSERVICE_H
#define CMCC_SERVICE_STENCILSERVICE_H

#include "core/Compiler.h"
#include "obs/Metrics.h"
#include "runtime/Executor.h"
#include "service/Autotuner.h"
#include "service/PlanCache.h"
#include "service/ServiceStats.h"
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace cmcc {

/// An asynchronous compile-and-execute server for one simulated machine.
class StencilService {
public:
  using JobId = long;

  /// How a job describes its stencil.
  enum class SourceKind {
    FortranAssignment, ///< A bare assignment statement.
    FortranSubroutine, ///< An isolated SUBROUTINE.
    DefStencil,        ///< The Lisp (defstencil ...) form.
    Fingerprint,       ///< A precompiled plan fingerprint (no source).
  };

  /// Lifecycle of one job.
  enum class JobState {
    Queued,
    Compiling, ///< Resolving the plan (front end / cache / compile).
    Executing,
    Done,
    Failed,
  };

  /// Why a job ended the way it did (finer-grained than Done/Failed).
  enum class JobStatus {
    Ok,
    Error,            ///< Permanent failure (diagnostics in Message).
    QueueFull,        ///< Rejected at admission (queue cap or tenant quota).
    DeadlineExceeded, ///< Cancelled at a phase boundary past its deadline.
    BadJobId,         ///< wait() on an id submit() never returned.
    Cancelled,        ///< cancel() removed the job before it started.
  };

  struct JobRequest {
    SourceKind Kind = SourceKind::FortranAssignment;
    /// Source text for the three source kinds; ignored for Fingerprint.
    std::string Source;
    /// The plan key for SourceKind::Fingerprint.
    uint64_t Fingerprint = 0;
    /// Distributed-trace context minted by the submitting client (0 =
    /// untraced). The worker re-establishes it around the job so every
    /// span the job touches — service stages, compile phases, backend
    /// execution, halo exchange — carries the client's trace id, and
    /// the job's timeline records it for correlation.
    uint64_t TraceId = 0;
    uint64_t ParentSpan = 0;
    /// Who this job is served for (0 = the anonymous default tenant).
    /// Tenants are metered separately in ServiceStats and the service
    /// registry, and admission enforces Options::TenantQuotas per id.
    uint32_t Tenant = 0;
    /// When set, the job executes functionally against these arrays
    /// (caller keeps them alive until wait() returns; concurrent jobs
    /// must bind disjoint result arrays). When null, the job produces a
    /// timing-only report for SubRows x SubCols.
    StencilArguments *Args = nullptr;
    int SubRows = 64;
    int SubCols = 64;
    int Iterations = 1;
    /// Chained timesteps fused behind one wide halo exchange
    /// (runtime/TimeTile.h). 0 defers to Options::TimeTile (the service
    /// default, which may be autotuned); k >= 1 requests depth k. The
    /// effective depth is always clamped to what the plan and subgrid
    /// admit, and is identical across retries and the cm2 fallback.
    int TimeTile = 0;
  };

  struct JobResult {
    bool Ok = false;
    /// Why the job ended: JobStatus::Ok iff Ok.
    JobStatus Status = JobStatus::Error;
    /// Diagnostics / failure description when !Ok.
    std::string Message;
    uint64_t Fingerprint = 0;
    /// The plan came out of the cache (memory or disk tier).
    bool CacheHit = false;
    /// The job waited on another job's in-flight compile of the same
    /// fingerprint instead of compiling itself.
    bool Coalesced = false;
    /// Host wall-clock of plan resolution (front end + cache + compile).
    double CompileSeconds = 0.0;
    /// Host wall-clock of the execution phase.
    double ExecuteSeconds = 0.0;
    /// Execute attempts beyond the first (transient-failure retries,
    /// counting attempts on the fallback backend too).
    int Retries = 0;
    /// The job ran on the cm2 fallback backend after its primary
    /// backend kept failing transiently.
    bool FellBack = false;
    /// The job was claimed out of the queue by a batch leader with the
    /// same plan fingerprint and executed back-to-back with it, with no
    /// plan re-resolution of its own (leaders themselves stay false).
    bool Batched = false;
    /// The time-tile depth the job actually executed with (after the
    /// service default / autotuner / clamping resolved).
    int TimeTileUsed = 1;
    TimingReport Report;
    /// The (immutable) plan the job ran; usable for resubmission by
    /// fingerprint or direct Executor calls.
    std::shared_ptr<const CompiledStencil> Plan;
  };

  /// One step in a job's life, recorded with a nanosecond timestamp in
  /// the job's timeline. Detail disambiguates repeats (attempt number,
  /// backoff milliseconds).
  enum class JobEvent : uint8_t {
    Submitted,        ///< Entered submit() and passed/failed admission.
    Rejected,         ///< Failed admission (queue cap or tenant quota).
    Queued,           ///< Admitted onto the FIFO queue.
    Dequeued,         ///< A worker picked the job up.
    CacheHit,         ///< Plan came out of the cache.
    Coalesced,        ///< Parked on another job's in-flight compile.
    CompileBegin,     ///< This job owns the compile.
    CompileEnd,       ///< Compile finished (Detail: 1 ok, 0 failed).
    ExecuteAttempt,   ///< Execute attempt began (Detail: 1-based attempt).
    TransientFailure, ///< The attempt failed transiently (Detail: attempt).
    Retry,            ///< Retrying (Detail: backoff milliseconds).
    Fallback,         ///< Switched to the cm2 fallback backend.
    DeadlineExceeded, ///< Cooperative deadline cancellation fired.
    Cancelled,        ///< cancel() removed the job from the queue.
    SlowJob,          ///< Total latency exceeded Options::SlowJobMs.
    Done,             ///< Finished successfully.
    Failed,           ///< Finished unsuccessfully.
    Batched,          ///< Claimed by a same-fingerprint batch leader.
    Autotuned,        ///< Tuned depth resolved (Detail: the depth).
  };

  struct TimelineEntry {
    uint64_t Ns = 0; ///< obs::detail::nowNs() at the event.
    JobEvent Event = JobEvent::Submitted;
    int32_t Detail = 0;
  };

  /// The compact per-job event log, kept for recently finished jobs in
  /// a bounded ring (Options::TimelineRingCap) and served over the wire
  /// by the `timeline` request / `cmcc_client trace <jobid>`.
  struct JobTimeline {
    JobId Id = 0;
    uint64_t TraceId = 0;
    uint32_t Tenant = 0;
    uint64_t Fingerprint = 0;
    JobStatus Status = JobStatus::Error;
    std::vector<TimelineEntry> Events;
  };

  /// Stable lower-case name for \p E ("execute_attempt", ...).
  static const char *jobEventName(JobEvent E);
  /// Stable lower-case name for \p S ("ok", "deadline_exceeded", ...).
  static const char *jobStatusName(JobStatus S);

  /// What submit() does when the queue already holds QueueCap jobs.
  enum class Admission {
    Reject, ///< Fail the job immediately with JobStatus::QueueFull.
    Block,  ///< Block the submitter until a worker makes room.
  };

  /// Per-tenant admission limits. A quota violation always rejects
  /// (never blocks), so one greedy tenant cannot park its producers on
  /// the shared queue and starve everyone else.
  struct TenantQuota {
    /// Cap on a tenant's admitted-but-unfinished jobs; 0 = unlimited.
    int MaxInFlight = 0;
    /// Cap on a tenant's share of the queued (not yet dispatched)
    /// jobs; 0 = unlimited.
    int MaxQueued = 0;
  };

  struct Options {
    /// Dispatch threads draining the job queue.
    int Workers = 2;
    PlanCache::Options Cache;
    Executor::Options Exec;
    /// Enables the §9 multi-source extension in the recognizer.
    bool AllowMultipleSources = false;
    /// Execution backend jobs run on (a backends/Registry name). Plan
    /// fingerprints are backend-scoped, so one PlanCache directory can
    /// serve several backends without aliasing; "cm2" keeps every
    /// pre-seam fingerprint valid.
    std::string Backend = "cm2";
    /// Worker processes per job (DESIGN.md §5j). 1 runs Backend
    /// in-process (the pre-sharding behavior); >1 runs every job on a
    /// ShardedBackend that partitions the node grid over that many
    /// worker processes, each executing Backend over its block. The
    /// results are bitwise identical either way, and a worker death
    /// surfaces as a transient failure the retry ladder re-runs (the
    /// coordinator respawns the fleet member on the retry).
    int Shards = 1;
    /// Explicit shard decomposition; both nonzero to take effect
    /// (otherwise a near-square grid for Shards is chosen).
    int ShardRows = 0;
    int ShardCols = 0;
    /// True when jobs run on the multi-process sharded backend.
    bool sharded() const {
      return Shards > 1 || (ShardRows > 0 && ShardCols > 0);
    }
    /// Queued-job bound for admission control; 0 = unbounded (every
    /// submit is admitted, the pre-hardening behavior).
    int QueueCap = 0;
    /// Policy at the cap. Reject gives callers a definite QueueFull
    /// answer; Block is backpressure for batch producers.
    Admission Admit = Admission::Reject;
    /// Per-job wall-clock budget in milliseconds, measured from
    /// admission; 0 = none. Enforced cooperatively at phase boundaries
    /// (dequeue, post-compile, pre-attempt) — a result that lands while
    /// the final attempt races past the deadline is still delivered.
    long DeadlineMs = 0;
    /// Extra execute attempts after a *transient* failure (permanent
    /// failures never retry). Applies per backend: the fallback gets a
    /// fresh budget.
    int MaxRetries = 0;
    /// Base backoff before retry attempt k sleeps
    /// RetryBackoffMs * 2^(k-1), clamped to the deadline's remainder.
    long RetryBackoffMs = 1;
    /// After the primary backend exhausts its retries transiently, run
    /// the job once on the cm2 reference backend (no-op when Backend is
    /// already "cm2" *and* execution is unsharded — a sharded cm2 run
    /// can still fail transiently on a lost worker, so sharded services
    /// fall back to in-process cm2). Plans are backend-portable by
    /// construction — fingerprints are backend-scoped for cache
    /// identity, not ABI — so the fallback replays the identical
    /// CompiledStencil.
    bool FallbackToCm2 = true;
    /// Per-tenant admission limits by tenant id; tenants without an
    /// entry get DefaultTenantQuota.
    std::map<uint32_t, TenantQuota> TenantQuotas;
    /// The quota applied to tenants absent from TenantQuotas
    /// (unlimited by default — single-tenant callers see no change).
    TenantQuota DefaultTenantQuota;
    /// Jobs whose admission-to-finish latency exceeds this many
    /// milliseconds are flagged: counted (service.slow_jobs), recorded
    /// in the flight recorder, and — when a trace is active — the
    /// trace file is flushed immediately so the slow job's spans are on
    /// disk even if the process dies later. 0 disables the threshold.
    long SlowJobMs = 0;
    /// Finished-job timelines retained for the `timeline` query.
    size_t TimelineRingCap = 256;
    /// Plan-batched dispatch (DESIGN.md §5k): after a worker resolves a
    /// job's plan it waits up to this many milliseconds for queued jobs
    /// carrying the *same* plan fingerprint (known without front-end
    /// work: explicit-fingerprint jobs, or source texts already in the
    /// memo), claims them, and runs the group back-to-back with zero
    /// re-resolution. 0 disables batching (the classic one-job path).
    long BatchWindowMs = 0;
    /// Default time-tile depth for jobs that do not set their own
    /// (JobRequest::TimeTile == 0): 1 = classic untiled execution,
    /// k > 1 = fixed depth k (clamped per plan/subgrid), 0 = consult
    /// the autotuner per (fingerprint, machine) — cold fingerprints
    /// sweep once, warm ones reuse the persisted winner.
    int TimeTile = 1;
    /// Directory for persisted autotuner records; empty uses the plan
    /// cache's disk directory (records live beside the plans they
    /// tune), so a disk-less cache means memory-only tuning.
    std::string TuneDir;
    /// Candidate depths the autotuner sweeps (clamped per plan).
    std::vector<int> TuneDepths = {1, 2, 4, 8};
  };

  StencilService(const MachineConfig &Config, Options Opts);

  /// Drains the queue (every submitted job still runs), then joins the
  /// workers.
  ~StencilService();

  StencilService(const StencilService &) = delete;
  StencilService &operator=(const StencilService &) = delete;

  /// Enqueues a job. Returns immediately unless the queue is at
  /// Options::QueueCap under Admission::Block (backpressure: blocks the
  /// caller until a worker makes room). Under Admission::Reject a job
  /// over the cap still gets a JobId — already Failed, with
  /// JobStatus::QueueFull — so poll/wait work uniformly.
  JobId submit(JobRequest Request);

  /// Current state of \p Id. An id submit() never returned reports
  /// JobState::Failed (the state wait() would explain as BadJobId).
  JobState poll(JobId Id) const;

  /// Blocks until \p Id finishes; returns its result. An id submit()
  /// never returned yields an immediate failed result with
  /// JobStatus::BadJobId — never a hang.
  JobResult wait(JobId Id);

  /// Best-effort cancellation: removes \p Id from the queue and fails
  /// it with JobStatus::Cancelled. Returns false (and does nothing)
  /// once a worker has picked the job up — execution is never torn
  /// down mid-flight, so a false return means wait() will deliver the
  /// job's real outcome.
  bool cancel(JobId Id);

  /// Registers \p Cb to run (on the finishing thread, outside service
  /// locks) after any job reaches Done or Failed — including jobs born
  /// Failed at admission, whose callback may fire before submit()
  /// returns their id to the caller. The network server bridges its
  /// poll loop onto the service through this. Call before submitting.
  void setJobFinishedCallback(std::function<void(JobId)> Cb);

  /// Blocks until every job submitted so far has finished.
  void drain();

  /// The event log of a recently *finished* job (in-flight jobs are
  /// still being written by their worker; poll for completion first).
  /// Empty when \p Id was never issued or has aged out of the ring.
  std::optional<JobTimeline> timeline(JobId Id) const;

  /// The same timeline as one JSON object ({"job":..., "trace_id":...,
  /// "status":..., "events":[...]}); empty string when unknown.
  std::string timelineJson(JobId Id) const;

  /// Snapshot of the operational metrics.
  ServiceStats stats() const;

  /// The service's own metric registry (the counters behind stats()).
  /// Per-instance rather than obs::Registry::process() so that each
  /// service's totals stand alone; same counter kinds, same exporters.
  const obs::Registry &metrics() const { return Metrics; }

  PlanCache &cache() { return Cache; }
  const MachineConfig &machine() const { return Config; }

  /// The per-plan execution-knob tuner (its counters are part of
  /// stats(); exposed so tests can inspect and pre-seed records).
  Autotuner &autotuner() { return *Tuner; }

  /// The execution backend jobs run on.
  const ExecutionBackend &backend() const { return *Engine; }

private:
  struct Job {
    JobId Id = 0;
    JobRequest Request;
    JobState State = JobState::Queued;
    JobResult Result;
    /// Cancellation point for Options::DeadlineMs (set at admission).
    std::chrono::steady_clock::time_point Deadline;
    bool HasDeadline = false;
    /// Event log, moved into FinishedTimelines at finish. Written under
    /// JobsMutex until a worker dequeues the job (cancel refuses
    /// non-queued jobs), then exclusively by that worker.
    std::vector<TimelineEntry> Timeline;
    uint64_t AdmittedNs = 0; ///< Timeline epoch / slow-job baseline.
  };

  /// Appends one timeline event to \p J (see Job::Timeline for the
  /// ownership discipline making this safe without its own lock).
  static void note(Job &J, JobEvent E, int32_t Detail = 0);

  /// One compile in flight: submissions of the same fingerprint park
  /// here instead of compiling again.
  struct InFlightCompile {
    std::mutex Mutex;
    std::condition_variable Ready;
    bool Done = false;
    std::shared_ptr<const CompiledStencil> Plan;
    std::string Error;
  };

  /// What the source memo remembers per distinct source text: the
  /// recognized spec (so an evicted plan can be recompiled without the
  /// front end) and its fingerprint.
  struct MemoEntry {
    StencilSpec Spec;
    uint64_t Fingerprint = 0;
  };

  /// Per-tenant admission/outcome ledger (all writes under JobsMutex).
  /// The counter handles mirror the ledger into the service registry as
  /// tenant-labelled metrics ("service.tenant.<id>.<what>"), resolved
  /// once when the tenant is first seen.
  struct TenantCounts {
    long Submitted = 0;
    long Completed = 0;
    long Failed = 0;   ///< Includes rejected and cancelled jobs.
    long Rejected = 0; ///< Quota or queue-cap rejections.
    int InFlight = 0;  ///< Admitted, not yet finished.
    int Queued = 0;    ///< Queued, not yet dispatched.
    obs::Counter *CtrSubmitted = nullptr;
    obs::Counter *CtrCompleted = nullptr;
    obs::Counter *CtrFailed = nullptr;
    obs::Counter *CtrRejected = nullptr;
  };

  void workerLoop();
  void process(Job &J);
  /// Resolves the job's spec+fingerprint, running the front end only on
  /// a source-memo miss. Returns false after recording the failure.
  bool resolveSpec(Job &J, std::optional<StencilSpec> &Spec, uint64_t &Fp);
  /// Returns the plan for \p Fp, compiling it at most once process-wide.
  std::shared_ptr<const CompiledStencil>
  resolvePlan(Job &J, const std::optional<StencilSpec> &Spec, uint64_t Fp);
  /// Runs the execute phase: deadline checks before each attempt,
  /// retry-with-backoff on transient failures, one-shot cm2 fallback.
  void execute(Job &J, const CompiledStencil &Plan);
  /// Resolves the time-tile depth \p J executes with: request override,
  /// service default, or the autotuner's winner — then clamps to the
  /// plan and subgrid. Called once per job, before the attempt loop, so
  /// retries and the fallback run the identical depth.
  int effectiveTimeTile(Job &J, const CompiledStencil &Plan);
  /// Plan batching: waits up to Options::BatchWindowMs for queued jobs
  /// whose fingerprint equals \p Fp (cheaply knowable: explicit
  /// fingerprints or memoized sources), claims them off the queue with
  /// full dequeue accounting, and returns them stamped Batched with
  /// \p Plan attached. Returns an empty list when batching is off.
  std::vector<Job *> claimBatch(Job &Leader, uint64_t Fp,
                                std::shared_ptr<const CompiledStencil> Plan);
  void finish(Job &J, JobState Final);
  /// True (and counts + stamps the failure) when \p J is past its
  /// deadline; a cooperative cancellation point.
  bool pastDeadline(Job &J);
  /// The lazily built cm2 reference backend fallbacks run on.
  const ExecutionBackend &fallbackEngine();
  /// The quota that applies to \p Tenant.
  const TenantQuota &quotaFor(uint32_t Tenant) const;
  /// The tenant's ledger entry, with its registry counters resolved on
  /// first sighting. Caller holds JobsMutex.
  TenantCounts &tenantEntry(uint32_t Tenant);
  /// Moves \p J's timeline into the finished ring. Caller holds
  /// JobsMutex.
  void archiveTimelineLocked(Job &J);
  /// Snapshot of the registered finished-callback (may be empty).
  std::function<void(JobId)> finishedCallback() const;

  MachineConfig Config;
  Options Opts;
  ConvolutionCompiler Compiler;
  std::unique_ptr<const ExecutionBackend> Engine;
  /// Built on first fallback (never when Backend == "cm2").
  std::mutex FallbackMutex;
  std::unique_ptr<const ExecutionBackend> Fallback;
  PlanCache Cache;
  std::unique_ptr<Autotuner> Tuner;

  //===--- Job table and queue --------------------------------------------===//
  mutable std::mutex JobsMutex;
  std::condition_variable JobsChanged;
  std::unordered_map<JobId, std::unique_ptr<Job>> Jobs;
  std::deque<Job *> Queue;
  JobId NextId = 1;
  bool ShuttingDown = false;
  /// Per-tenant ledger (ordered so stats snapshots are stable).
  std::map<uint32_t, TenantCounts> Tenants;
  /// Recently finished jobs' timelines, oldest first (bounded by
  /// Options::TimelineRingCap; guarded by JobsMutex).
  std::deque<JobTimeline> FinishedTimelines;

  //===--- Completion notification ----------------------------------------===//
  mutable std::mutex CallbackMutex;
  std::function<void(JobId)> OnJobFinished;

  //===--- Compile deduplication ------------------------------------------===//
  std::mutex InFlightMutex;
  std::unordered_map<uint64_t, std::shared_ptr<InFlightCompile>> InFlight;

  //===--- Source memo ----------------------------------------------------===//
  mutable std::mutex MemoMutex;
  std::unordered_map<std::string, MemoEntry> SourceMemo;

  //===--- Stats (the service's private obs registry) ---------------------===//
  // The registry's own atomics are the synchronization; there is no
  // stats mutex. QueueDepth is only written under JobsMutex (push/pop),
  // so its now/max pair stays consistent with the queue it describes.
  obs::Registry Metrics;
  obs::Counter &JobsSubmitted;     ///< service.jobs_submitted
  obs::Counter &JobsCompleted;     ///< service.jobs_completed
  obs::Counter &JobsFailed;        ///< service.jobs_failed
  obs::Counter &FrontEndRuns;      ///< service.frontend_runs
  obs::Counter &SourceMemoHits;    ///< service.source_memo_hits
  obs::Counter &CompilesPerformed; ///< service.compiles_performed
  obs::Counter &CompilesCoalesced; ///< service.compiles_coalesced
  obs::Counter &Rejected;          ///< service.rejected (QueueFull)
  obs::Counter &CancelledJobs;     ///< service.cancelled
  obs::Counter &DeadlinesExceeded; ///< service.deadline_exceeded
  obs::Counter &Retries;           ///< service.retries (attempts past 1st)
  obs::Counter &Fallbacks;         ///< service.fallbacks (jobs, not attempts)
  obs::Counter &SlowJobs;          ///< service.slow_jobs (over SlowJobMs)
  obs::Counter &Batches;           ///< service.batches (groups formed)
  obs::Counter &BatchedJobs;       ///< service.batched_jobs (followers)
  obs::Gauge &QueueDepth;          ///< service.queue_depth (now + max)
  obs::Histogram &CompileUs;       ///< service.compile_us (per performed)
  obs::Histogram &ExecuteUs;       ///< service.execute_us (per completed)
  obs::Sum &SimSeconds;            ///< service.sim_seconds
  obs::Sum &UsefulFlops;           ///< service.useful_flops

  std::vector<std::thread> Workers;
};

} // namespace cmcc

#endif // CMCC_SERVICE_STENCILSERVICE_H
