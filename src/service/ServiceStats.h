//===- service/ServiceStats.h - Serving-layer metrics ---------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A snapshot of the StencilService's operational metrics: job counts,
/// compile-vs-execute latency totals, queue depth, plan-cache counters,
/// and the aggregate simulated rate across everything served. Rendered
/// as a TextTable for humans and as JSON for the perf-trajectory
/// tooling.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SERVICE_SERVICESTATS_H
#define CMCC_SERVICE_SERVICESTATS_H

#include "service/PlanCache.h"
#include <cstdint>
#include <string>
#include <vector>

namespace cmcc {

/// Point-in-time service metrics (all totals since construction).
struct ServiceStats {
  //===--- Jobs -----------------------------------------------------------===//
  long JobsSubmitted = 0;
  long JobsCompleted = 0; ///< Finished successfully.
  long JobsFailed = 0;    ///< Finished with a diagnostic.
  int QueueDepth = 0;     ///< Jobs queued but not yet picked up.
  int MaxQueueDepth = 0;  ///< High-water mark of QueueDepth.

  //===--- Robustness (DESIGN.md §5f) -------------------------------------===//
  long Rejected = 0;         ///< Jobs refused at admission (cap or quota).
  long Cancelled = 0;        ///< Jobs cancelled out of the queue.
  long DeadlineExceeded = 0; ///< Jobs cancelled past their deadline.
  long Retries = 0;          ///< Execute attempts beyond each job's first.
  long Fallbacks = 0;        ///< Jobs that fell back to the cm2 backend.

  //===--- Plan batching + autotuning (DESIGN.md §5k) ---------------------===//
  long Batches = 0;     ///< Same-fingerprint groups run back-to-back.
  long BatchedJobs = 0; ///< Follower jobs claimed into a batch.
  long TuneHits = 0;        ///< Tuned params served from memory.
  long TuneDiskHits = 0;    ///< Tuned params loaded from a valid record.
  long TuneMisses = 0;      ///< No usable record: a sweep ran.
  long TuneDiskRejects = 0; ///< Corrupt/stale/foreign tuning records.
  long TuneSweeps = 0;      ///< Full candidate sweeps performed.

  //===--- Multi-tenancy (DESIGN.md §5h) ----------------------------------===//
  /// One row per tenant id that has submitted anything (id 0 is the
  /// anonymous default tenant).
  struct TenantRow {
    uint32_t Tenant = 0;
    long Submitted = 0;
    long Completed = 0;
    long Failed = 0;   ///< Includes rejected and cancelled jobs.
    long Rejected = 0; ///< Quota or queue-cap rejections.
    int InFlight = 0;  ///< Admitted, not yet finished.
    int Queued = 0;    ///< Queued, not yet dispatched.
  };
  std::vector<TenantRow> Tenants;

  //===--- The compile-once economy ---------------------------------------===//
  long FrontEndRuns = 0;      ///< Parse+recognize passes actually performed.
  long SourceMemoHits = 0;    ///< Source text resolved without the front end.
  long CompilesPerformed = 0; ///< Full recognition+planning+verification runs.
  long CompilesCoalesced = 0; ///< Jobs that waited on another job's compile.
  PlanCache::Counters Cache;

  //===--- Latency and throughput -----------------------------------------===//
  double CompileSecondsTotal = 0.0; ///< Host wall-clock spent compiling.
  double ExecuteSecondsTotal = 0.0; ///< Host wall-clock spent executing.
  /// Machine seconds served: simulated seconds on the cm2 backend,
  /// measured wall-clock on backends that report it (see
  /// ReportsWallClock).
  double SimSecondsTotal = 0.0;
  double UsefulFlopsTotal = 0.0;    ///< Useful flops across all jobs served.
  /// True when the service's backend measures wall-clock instead of
  /// simulating cycles — flips the str() labels from "simulated" to
  /// "wall-clock" (JSON keys stay stable either way).
  bool ReportsWallClock = false;

  /// Aggregate simulated rate: useful flops over simulated seconds.
  double aggregateSimMflops() const {
    return SimSecondsTotal > 0.0 ? UsefulFlopsTotal / SimSecondsTotal / 1e6
                                 : 0.0;
  }

  /// Mean host compile latency over performed compiles.
  double meanCompileSeconds() const {
    return CompilesPerformed > 0 ? CompileSecondsTotal / CompilesPerformed
                                 : 0.0;
  }

  /// Mean host execute latency over completed jobs.
  double meanExecuteSeconds() const {
    return JobsCompleted > 0 ? ExecuteSecondsTotal / JobsCompleted : 0.0;
  }

  /// Two-column human-readable table.
  std::string str() const;

  /// A single JSON object (machine-readable dump).
  std::string json() const;
};

} // namespace cmcc

#endif // CMCC_SERVICE_SERVICESTATS_H
