//===- service/Autotuner.h - Per-plan execution-knob tuner ----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small empirical autotuner for the execution knobs a compiled plan
/// leaves open — today the time-tile depth (runtime/TimeTile.h), with
/// the host-loop parameters (thread count, rows per strip tile)
/// recorded alongside for backends that honor them.
///
/// The tuner is keyed like the plan cache: per (plan fingerprint,
/// machine). A cold key sweeps the candidate depths through the
/// backend's timeOnly path and scores each by *per-timestep* cost read
/// from the obs layer's phase histograms (backend.*.run_host_us /
/// executor.run_host_us deltas for wall-clock backends, the simulated
/// seconds for cm2) — depth k fuses k steps behind one exchange, so a
/// fair comparison divides by k. The winner persists as a versioned
/// text record beside the cached plan:
///
///     <dir>/<fingerprint-hex>.tune
///
///     cmcc-tune v1
///     fingerprint <hex16>
///     machine <rows>x<cols>@<mhz>
///     backend <name>
///     time_tile <k>
///     threads <n>
///     rows_per_tile <n>
///     score_us <float>
///
/// Warm keys are served from memory, then disk — never re-swept
/// (counted, so tests can assert the sweep ran exactly once). A record
/// that is truncated, corrupt, stale-versioned, or stamped for a
/// different machine/backend is a counted DiskReject and falls back to
/// a fresh sweep — mirroring the plan cache's discipline that disk
/// state can be lost or damaged but never change behavior silently.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SERVICE_AUTOTUNER_H
#define CMCC_SERVICE_AUTOTUNER_H

#include "cm2/MachineConfig.h"
#include "runtime/Backend.h"
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace cmcc {
namespace obs {
class Registry;
} // namespace obs

/// Chooses and remembers per-plan execution parameters.
class Autotuner {
public:
  /// The tuned knobs for one (fingerprint, machine) key.
  struct TunedParams {
    /// Chained timesteps fused behind one wide halo exchange.
    int TimeTile = 1;
    /// Host threads (0 = shared pool); recorded for native-family
    /// backends, informational elsewhere.
    int ThreadCount = 0;
    /// Rows per parallel strip tile (native-family backends).
    int RowsPerTile = 32;
    /// The winner's per-timestep score in microseconds (host us for
    /// wall-clock backends, simulated us for cm2).
    double ScoreUs = 0.0;
  };

  struct Options {
    /// Directory for persisted records; empty = memory-only tuning.
    std::string Dir;
    /// Candidate tile depths (clamped per plan/subgrid before use).
    std::vector<int> Depths = {1, 2, 4, 8};
    /// When set, every Counters increment is mirrored as a
    /// service.tune_* counter in this registry (so metrics exports
    /// carry the tuner's behavior). The registry must outlive the
    /// tuner; it is touched only from lookup()/tune(), never the
    /// constructor.
    obs::Registry *Metrics = nullptr;
  };

  /// Monotonic counters (all reads are lock-free snapshots).
  struct Counters {
    long Hits = 0;        ///< Served from memory.
    long DiskHits = 0;    ///< Loaded from a valid on-disk record.
    long Misses = 0;      ///< No usable record anywhere: a sweep ran.
    long DiskRejects = 0; ///< Record present but corrupt/stale/foreign.
    long Sweeps = 0;      ///< Full candidate sweeps performed.
  };

  Autotuner(const MachineConfig &Config, Options Opts);

  /// The tuned parameters for \p Fingerprint without sweeping: memory,
  /// then disk (a valid disk record is promoted into memory and counts
  /// DiskHits). std::nullopt means no usable record exists yet.
  std::optional<TunedParams> lookup(uint64_t Fingerprint,
                                    const ExecutionBackend &Backend);

  /// Sweeps Options::Depths (clamped to the plan and subgrid) through
  /// \p Backend.timeOnly, picks the cheapest per-timestep depth, and
  /// persists + remembers the winner. Returns the winner (TimeTile = 1
  /// when nothing beats the untiled run or the sweep cannot run at
  /// all). Thread-safe; concurrent sweeps of one key are wasteful but
  /// harmless (last writer wins with an equivalent record).
  TunedParams tune(uint64_t Fingerprint, const ExecutionBackend &Backend,
                   const CompiledStencil &Plan, int SubRows, int SubCols);

  /// lookup() falling back to tune() — the warm path never sweeps.
  TunedParams resolve(uint64_t Fingerprint, const ExecutionBackend &Backend,
                      const CompiledStencil &Plan, int SubRows, int SubCols);

  Counters counters() const;

  /// The record path for \p Fingerprint under \p Dir (exposed so tests
  /// can corrupt/truncate/stale records without path guessing).
  static std::string recordPath(const std::string &Dir, uint64_t Fingerprint);

private:
  /// "4x4@7" — the machine identity a record is valid for.
  std::string machineStamp() const;
  /// Bumps the mirrored obs counter \p Name when Options::Metrics is
  /// set; a no-op otherwise.
  void noteMetric(const char *Name);
  std::optional<TunedParams> loadRecord(uint64_t Fingerprint,
                                        const std::string &BackendName);
  void storeRecord(uint64_t Fingerprint, const std::string &BackendName,
                   const TunedParams &P);

  MachineConfig Config;
  Options Opts;

  mutable std::mutex Mutex;
  std::unordered_map<uint64_t, TunedParams> Memory;
  Counters Counts;
};

} // namespace cmcc

#endif // CMCC_SERVICE_AUTOTUNER_H
