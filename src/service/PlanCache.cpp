//===- service/PlanCache.cpp ----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/PlanCache.h"
#include "core/PlanFingerprint.h"
#include "core/ScheduleIO.h"
#include "support/FaultInjection.h"
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace cmcc;

PlanCache::PlanCache(const MachineConfig &Config, Options Opts)
    : Config(Config), Opts(Opts) {
  int ShardCount = std::max(1, this->Opts.Shards);
  if (this->Opts.Capacity < static_cast<size_t>(ShardCount))
    this->Opts.Capacity = static_cast<size_t>(ShardCount);
  PerShardCapacity =
      (this->Opts.Capacity + ShardCount - 1) / static_cast<size_t>(ShardCount);
  Shards.reserve(ShardCount);
  for (int I = 0; I != ShardCount; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

std::string PlanCache::diskPathFor(uint64_t Fingerprint) const {
  return Opts.DiskDir + "/" + fingerprintHex(Fingerprint) + ".cmccode";
}

std::shared_ptr<const CompiledStencil>
PlanCache::loadFromDisk(uint64_t Fingerprint) {
  std::ifstream In(diskPathFor(Fingerprint));
  if (!In)
    return nullptr; // Not on disk: an ordinary miss, not a reject.
  // Injected read fault: the file opened but behaves as corrupt — the
  // same counted-reject outcome a real bit flip produces.
  if (fault::probe("plancache.disk_read")) {
    DiskRejects.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  // The parser revalidates everything — format, counts, and the full
  // schedule verifier against this machine's pipeline model. Whatever is
  // wrong with the file (truncation, bit flips, wrong machine), the
  // outcome is a counted reject, never UB.
  Expected<CompiledStencil> Loaded =
      parseCompiledStencil(Buffer.str(), Config);
  if (!Loaded) {
    DiskRejects.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  DiskHits.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<const CompiledStencil>(Loaded.takeValue());
}

void PlanCache::storeToDisk(uint64_t Fingerprint,
                            const CompiledStencil &Plan) const {
  // Injected write fault: the store is silently lost, like a full disk.
  // The tier is best-effort by design, so this must be invisible to
  // correctness — only future disk hits are forgone.
  if (fault::probe("plancache.disk_write"))
    return;
  std::error_code EC;
  std::filesystem::create_directories(Opts.DiskDir, EC);
  if (EC)
    return; // Disk tier is best-effort; memory tier still works.
  std::string Path = diskPathFor(Fingerprint);
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp);
    if (!Out)
      return;
    Out << writeCompiledStencil(Plan, Config);
    if (!Out)
      return;
  }
  // Rename so a concurrent reader never sees a half-written file.
  std::filesystem::rename(Tmp, Path, EC);
}

std::shared_ptr<const CompiledStencil>
PlanCache::lookup(uint64_t Fingerprint) {
  Shard &S = shardFor(Fingerprint);
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Index.find(Fingerprint);
    if (It != S.Index.end()) {
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
      Hits.fetch_add(1, std::memory_order_relaxed);
      return It->second->second;
    }
  }
  if (!Opts.DiskDir.empty()) {
    // Load outside the shard lock: parsing + re-verifying is the slow
    // path and must not serialize other fingerprints of this stripe.
    if (std::shared_ptr<const CompiledStencil> Plan =
            loadFromDisk(Fingerprint)) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      insert(Fingerprint, Plan);
      return Plan;
    }
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

std::shared_ptr<const CompiledStencil> PlanCache::peek(uint64_t Fingerprint) {
  Shard &S = shardFor(Fingerprint);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Index.find(Fingerprint);
  if (It == S.Index.end())
    return nullptr;
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  return It->second->second;
}

void PlanCache::insert(uint64_t Fingerprint,
                       std::shared_ptr<const CompiledStencil> Plan) {
  if (!Plan)
    return;
  bool WriteDisk = false;
  Shard &S = shardFor(Fingerprint);
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Index.find(Fingerprint);
    if (It != S.Index.end()) {
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    } else {
      S.Lru.emplace_front(Fingerprint, Plan);
      S.Index[Fingerprint] = S.Lru.begin();
      Insertions.fetch_add(1, std::memory_order_relaxed);
      WriteDisk = !Opts.DiskDir.empty();
      while (S.Lru.size() > PerShardCapacity) {
        S.Index.erase(S.Lru.back().first);
        S.Lru.pop_back();
        Evictions.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (WriteDisk)
    storeToDisk(Fingerprint, *Plan);
}

void PlanCache::clearMemory() {
  for (std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    S->Lru.clear();
    S->Index.clear();
  }
}

PlanCache::Counters PlanCache::counters() const {
  Counters C;
  C.Hits = Hits.load(std::memory_order_relaxed);
  C.Misses = Misses.load(std::memory_order_relaxed);
  C.Evictions = Evictions.load(std::memory_order_relaxed);
  C.Insertions = Insertions.load(std::memory_order_relaxed);
  C.DiskHits = DiskHits.load(std::memory_order_relaxed);
  C.DiskRejects = DiskRejects.load(std::memory_order_relaxed);
  return C;
}

size_t PlanCache::size() const {
  size_t N = 0;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    N += S->Lru.size();
  }
  return N;
}
