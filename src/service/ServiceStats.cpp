//===- service/ServiceStats.cpp -------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/ServiceStats.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"
#include <cstdio>

using namespace cmcc;

std::string ServiceStats::str() const {
  TextTable T;
  T.setHeader({"metric", "value"});
  T.addRow({"jobs submitted", std::to_string(JobsSubmitted)});
  T.addRow({"jobs completed", std::to_string(JobsCompleted)});
  T.addRow({"jobs failed", std::to_string(JobsFailed)});
  T.addRow({"queue depth (now/max)", std::to_string(QueueDepth) + "/" +
                                         std::to_string(MaxQueueDepth)});
  T.addSeparator();
  T.addRow({"jobs rejected (cap/quota)", std::to_string(Rejected)});
  T.addRow({"jobs cancelled", std::to_string(Cancelled)});
  T.addRow({"deadlines exceeded", std::to_string(DeadlineExceeded)});
  T.addRow({"execute retries", std::to_string(Retries)});
  T.addRow({"backend fallbacks", std::to_string(Fallbacks)});
  T.addRow({"plan batches", std::to_string(Batches)});
  T.addRow({"batched jobs", std::to_string(BatchedJobs)});
  T.addRow({"autotune hits (mem/disk)", std::to_string(TuneHits) + "/" +
                                            std::to_string(TuneDiskHits)});
  T.addRow({"autotune sweeps", std::to_string(TuneSweeps)});
  T.addRow({"autotune disk rejects", std::to_string(TuneDiskRejects)});
  // Per-tenant rows only once a non-default tenant shows up — the
  // single-tenant table stays exactly as it always looked.
  const bool MultiTenant =
      Tenants.size() > 1 || (!Tenants.empty() && Tenants[0].Tenant != 0);
  if (MultiTenant) {
    T.addSeparator();
    for (const TenantRow &R : Tenants)
      T.addRow({"tenant " + std::to_string(R.Tenant) +
                    " (sub/done/fail/rej)",
                std::to_string(R.Submitted) + "/" +
                    std::to_string(R.Completed) + "/" +
                    std::to_string(R.Failed) + "/" +
                    std::to_string(R.Rejected)});
  }
  T.addSeparator();
  T.addRow({"front-end runs", std::to_string(FrontEndRuns)});
  T.addRow({"source-memo hits", std::to_string(SourceMemoHits)});
  T.addRow({"compiles performed", std::to_string(CompilesPerformed)});
  T.addRow({"compiles coalesced", std::to_string(CompilesCoalesced)});
  T.addRow({"plan-cache hits", std::to_string(Cache.Hits)});
  T.addRow({"plan-cache misses", std::to_string(Cache.Misses)});
  T.addRow({"plan-cache hit rate",
            formatFixed(100.0 * Cache.hitRate(), 1) + "%"});
  T.addRow({"plan-cache evictions", std::to_string(Cache.Evictions)});
  T.addRow({"disk-tier hits", std::to_string(Cache.DiskHits)});
  T.addRow({"disk-tier rejects", std::to_string(Cache.DiskRejects)});
  T.addSeparator();
  T.addRow({"compile seconds (total)", formatFixed(CompileSecondsTotal, 4)});
  T.addRow({"compile seconds (mean)", formatFixed(meanCompileSeconds(), 5)});
  T.addRow({"execute seconds (total)", formatFixed(ExecuteSecondsTotal, 4)});
  T.addRow({"execute seconds (mean)", formatFixed(meanExecuteSeconds(), 5)});
  const char *Timing = ReportsWallClock ? "wall-clock" : "simulated";
  T.addRow({std::string(Timing) + " seconds served",
            formatFixed(SimSecondsTotal, 3)});
  T.addRow({std::string("aggregate ") + Timing + " Mflops",
            formatFixed(aggregateSimMflops(), 1)});
  return T.str();
}

std::string ServiceStats::json() const {
  char Buffer[2048];
  std::snprintf(
      Buffer, sizeof(Buffer),
      "{\n"
      "  \"jobs_submitted\": %ld,\n"
      "  \"jobs_completed\": %ld,\n"
      "  \"jobs_failed\": %ld,\n"
      "  \"queue_depth\": %d,\n"
      "  \"max_queue_depth\": %d,\n"
      "  \"service.rejected\": %ld,\n"
      "  \"service.cancelled\": %ld,\n"
      "  \"service.deadline_exceeded\": %ld,\n"
      "  \"service.retries\": %ld,\n"
      "  \"service.fallbacks\": %ld,\n"
      "  \"service.batches\": %ld,\n"
      "  \"service.batched_jobs\": %ld,\n"
      "  \"tune_hits\": %ld,\n"
      "  \"tune_disk_hits\": %ld,\n"
      "  \"tune_misses\": %ld,\n"
      "  \"tune_disk_rejects\": %ld,\n"
      "  \"tune_sweeps\": %ld,\n"
      "  \"front_end_runs\": %ld,\n"
      "  \"source_memo_hits\": %ld,\n"
      "  \"compiles_performed\": %ld,\n"
      "  \"compiles_coalesced\": %ld,\n"
      "  \"cache_hits\": %ld,\n"
      "  \"cache_misses\": %ld,\n"
      "  \"cache_hit_rate\": %.6g,\n"
      "  \"cache_evictions\": %ld,\n"
      "  \"disk_hits\": %ld,\n"
      "  \"disk_rejects\": %ld,\n"
      "  \"compile_seconds_total\": %.6g,\n"
      "  \"execute_seconds_total\": %.6g,\n"
      "  \"sim_seconds_total\": %.6g,\n"
      "  \"useful_flops_total\": %.6g,\n"
      "  \"aggregate_sim_mflops\": %.6g,\n"
      "  \"tenants\": [",
      JobsSubmitted, JobsCompleted, JobsFailed, QueueDepth, MaxQueueDepth,
      Rejected, Cancelled, DeadlineExceeded, Retries, Fallbacks, Batches,
      BatchedJobs, TuneHits, TuneDiskHits, TuneMisses, TuneDiskRejects,
      TuneSweeps,
      FrontEndRuns, SourceMemoHits, CompilesPerformed, CompilesCoalesced,
      Cache.Hits, Cache.Misses, Cache.hitRate(), Cache.Evictions,
      Cache.DiskHits, Cache.DiskRejects, CompileSecondsTotal,
      ExecuteSecondsTotal, SimSecondsTotal, UsefulFlopsTotal,
      aggregateSimMflops());
  std::string Out = Buffer;
  for (size_t I = 0; I != Tenants.size(); ++I) {
    const TenantRow &R = Tenants[I];
    std::snprintf(Buffer, sizeof(Buffer),
                  "%s\n    {\"tenant\": %u, \"submitted\": %ld, "
                  "\"completed\": %ld, \"failed\": %ld, \"rejected\": %ld, "
                  "\"in_flight\": %d, \"queued\": %d}",
                  I == 0 ? "" : ",", R.Tenant, R.Submitted, R.Completed,
                  R.Failed, R.Rejected, R.InFlight, R.Queued);
    Out += Buffer;
  }
  Out += Tenants.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return Out;
}
