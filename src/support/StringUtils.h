//===- support/StringUtils.h - String helpers -----------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers used across the front ends and report writers.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SUPPORT_STRINGUTILS_H
#define CMCC_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace cmcc {

/// Returns \p S converted to upper case (ASCII only; Fortran identifiers
/// are case-insensitive).
std::string toUpper(std::string_view S);

/// Returns \p S converted to lower case (ASCII only).
std::string toLower(std::string_view S);

/// Returns \p S with leading and trailing ASCII whitespace removed.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Separator; empty pieces are kept.
std::vector<std::string_view> split(std::string_view S, char Separator);

/// Case-insensitive ASCII string equality (Fortran keyword matching).
bool equalsInsensitive(std::string_view A, std::string_view B);

/// Formats \p Value with \p Digits digits after the decimal point.
std::string formatFixed(double Value, unsigned Digits);

} // namespace cmcc

#endif // CMCC_SUPPORT_STRINGUTILS_H
