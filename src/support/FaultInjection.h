//===- support/FaultInjection.h - Deterministic fault registry -*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, deterministic, site-tagged fault-injection registry —
/// the chaos half of the serving story. Production stencil systems
/// (Devito's long-lived compiler services, any plan cache backed by real
/// disks) must degrade gracefully when a tier misbehaves; this registry
/// lets the tests *make* every tier misbehave, reproducibly.
///
/// Code under test declares injection sites by probing a tag:
///
///   if (fault::probe("plancache.disk_read"))
///     ...behave as if the read failed...
///
/// Sites wired through the stack (see DESIGN.md §5f):
///
///   plancache.disk_read    disk-tier load behaves as a corrupt entry
///   plancache.disk_write   disk-tier store is silently lost
///   backend.cm2.run        simulated execution fails (transient)
///   backend.native.run     native execution fails (transient)
///   backend.njit.run       njit execution fails (transient)
///   njit.cc                the njit toolchain invocation fails (transient)
///   halo.exchange          a halo exchange fails (transient)
///   threadpool.dispatch    pool dispatch degrades to inline execution
///   service.compile        a service-owned compile fails
///   net.accept             an accepted connection is dropped immediately
///   net.read               a socket read fails; the connection drops
///   net.write              a socket write fails; the connection drops
///   shard.spawn            spawning a shard worker fails (transient)
///   shard.exchange         a halo relay round aborts; workers survive
///   shard.worker_death     a live shard worker is SIGKILLed mid-relay;
///                          the run fails transiently and the fleet
///                          respawns the slot on retry
///
/// Rules are armed programmatically (arm()) or from the environment:
///
///   CMCC_FAULTS=site:rate[:count[:delay_ms]][,site:rate...]
///   CMCC_FAULT_SEED=n
///
/// where <site> is an exact tag or a prefix ending in '*', <rate> is the
/// per-probe fire probability, <count> caps total fires (-1 = unlimited)
/// and a nonzero <delay_ms> turns the rule into a latency fault (the
/// probe sleeps, then reports no failure).
///
/// Determinism: whether the Nth probe of a site fires is a pure function
/// of (seed, site, N, rule) — independent of wall-clock, thread timing,
/// and every other site. The same seed replays the same fire pattern.
///
/// Cost: when nothing is armed a probe is one relaxed atomic load and a
/// branch (bench_service asserts the executor hot loop pays <1% for its
/// probes); armed probes take a registry mutex, which only tests and
/// fault drills ever pay.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SUPPORT_FAULTINJECTION_H
#define CMCC_SUPPORT_FAULTINJECTION_H

#include "support/Error.h"
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cmcc {
namespace fault {

/// What a firing rule does to the probing code path.
enum class Action {
  Fail,  ///< The probe returns true: the site takes its failure path.
  Delay, ///< The probe sleeps DelayMs, then reports no failure.
};

/// One armed fault rule.
struct Rule {
  /// Site tag to match: exact, or a prefix ending in '*' ("halo.*",
  /// bare "*" matches everything).
  std::string Site;
  /// Probability each matching probe fires, clamped to [0, 1].
  double Rate = 1.0;
  /// Cap on total fires of this rule; -1 = unlimited.
  long MaxFires = -1;
  Action Kind = Action::Fail;
  /// Sleep per fire for Action::Delay rules.
  long DelayMs = 0;
};

/// The registry: armed rules plus per-site probe/fire counters.
class Registry {
public:
  Registry() = default;
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  /// Arms \p R (rules accumulate; several may match one site).
  void arm(Rule R);

  /// Seeds the deterministic fire pattern (default 0). Takes effect for
  /// subsequent probes; call before the workload for reproducibility.
  void setSeed(uint64_t Seed);

  /// Disarms every rule and zeroes every counter (the seed is kept).
  void reset();

  /// True when at least one rule is armed. Relaxed: this is the entire
  /// disabled-path cost of a probe.
  bool enabled() const { return Armed.load(std::memory_order_relaxed); }

  /// The probe behind fault::probe(): counts the site's probe, sleeps
  /// through firing Delay rules, and returns true when a Fail rule
  /// fires. Never call directly from hot paths — use fault::probe(),
  /// which short-circuits on enabled().
  bool shouldFail(const char *Site);

  /// Fail + delay rule firings observed at \p Site.
  long fires(const std::string &Site) const;

  /// Probes observed at \p Site (counted only while armed).
  long probes(const std::string &Site) const;

  /// Probes observed across all sites (counted only while armed).
  long totalProbes() const;

  /// Parses a CMCC_FAULTS-style spec ("site:rate[:count[:delay_ms]]"
  /// comma-separated) into rules.
  static Expected<std::vector<Rule>> parse(const std::string &Spec);

  /// The process-wide registry, configured from CMCC_FAULTS /
  /// CMCC_FAULT_SEED on first access (a malformed spec is reported to
  /// stderr and ignored).
  static Registry &process();

private:
  struct ArmedRule {
    Rule R;
    long Fires = 0;
  };
  struct SiteCounts {
    long Probes = 0;
    long Fires = 0;
  };

  std::atomic<bool> Armed{false};
  mutable std::mutex Mutex;
  uint64_t Seed = 0;
  std::vector<ArmedRule> Rules;
  std::map<std::string, SiteCounts> Sites;
};

/// The injection-site probe: true when the site must fail now. One
/// relaxed load + branch when nothing is armed.
inline bool probe(const char *Site) {
  Registry &R = Registry::process();
  return R.enabled() && R.shouldFail(Site);
}

/// The transient Error a failing site propagates; the service's retry
/// and fallback machinery keys off isTransient().
Error injectedFault(const char *Site);

} // namespace fault
} // namespace cmcc

#endif // CMCC_SUPPORT_FAULTINJECTION_H
