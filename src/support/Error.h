//===- support/Error.h - Lightweight recoverable-error types --*- C++ -*-===//
//
// Part of the CMCC project: a reproduction of "Fortran at Ten Gigaflops:
// The Connection Machine Convolution Compiler" (PLDI 1991).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal Error / Expected<T> pair in the spirit of llvm::Error and
/// llvm::Expected, for propagating recoverable errors (malformed source,
/// unsupported statement forms) without exceptions. An Error carries a
/// message; success is the empty state.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SUPPORT_ERROR_H
#define CMCC_SUPPORT_ERROR_H

#include "support/Assert.h"
#include <optional>
#include <string>
#include <utility>

namespace cmcc {

/// A recoverable error: either success (empty) or a failure message.
///
/// Unlike llvm::Error this type does not enforce checking at destruction
/// time; callers are expected to test it with the boolean conversion
/// (true means failure, matching LLVM's convention).
class [[nodiscard]] Error {
public:
  /// Constructs a success value.
  Error() = default;

  /// Constructs a failure value carrying \p Message.
  static Error failure(std::string Message) {
    Error E;
    E.Message = std::move(Message);
    return E;
  }

  /// Constructs a *transient* failure: one that may well succeed if the
  /// same operation is simply tried again (an injected fault, a flaky
  /// tier). The serving layer's retry/fallback machinery keys off this;
  /// ordinary failures (malformed source, bad arguments) are permanent
  /// and never retried.
  static Error transient(std::string Message) {
    Error E;
    E.Message = std::move(Message);
    E.Transient = true;
    return E;
  }

  /// Constructs a success value (for symmetry with llvm::Error::success).
  static Error success() { return Error(); }

  /// True for failures built with transient().
  bool isTransient() const { return Message.has_value() && Transient; }

  /// True when this is a failure.
  explicit operator bool() const { return Message.has_value(); }

  /// Returns the failure message. Only valid on failure values.
  const std::string &message() const {
    assert(Message && "message() called on a success Error");
    return *Message;
  }

private:
  std::optional<std::string> Message;
  bool Transient = false;
};

/// Either a value of type T or an error message, in the spirit of
/// llvm::Expected. True on success (opposite of Error).
template <typename T> class [[nodiscard]] Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure from \p E (which must be a failure).
  Expected(Error E) : Err(std::move(E)) {
    assert(Err && "Expected constructed from a success Error");
  }

  /// True when this holds a value.
  explicit operator bool() const { return Value.has_value(); }

  /// Accesses the contained value. Only valid on success.
  T &operator*() {
    assert(Value && "dereferencing a failed Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing a failed Expected");
    return *Value;
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Returns the error (valid only on failure).
  const Error &error() const {
    assert(!Value && "error() called on a successful Expected");
    return Err;
  }

  /// Moves the contained value out. Only valid on success.
  T takeValue() {
    assert(Value && "takeValue() on a failed Expected");
    return std::move(*Value);
  }

private:
  std::optional<T> Value;
  Error Err;
};

/// Builds a failure Error from a message.
Error makeError(std::string Message);

} // namespace cmcc

#endif // CMCC_SUPPORT_ERROR_H
