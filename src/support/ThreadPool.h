//===- support/ThreadPool.h - Host-side parallel-for pool -----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool with a blocking parallelFor — the host
/// execution engine behind the simulator's per-node fan-out. The machine
/// being modeled is synchronous SIMD: after the halo exchange every
/// node's half-strips are independent, so the functional loop over nodes
/// is embarrassingly parallel on the host. The pool deliberately has no
/// work stealing and no futures: one parallelFor at a time, indices
/// handed out by an atomic counter, the caller participating as a
/// worker. That is all the executor needs, and it keeps the engine easy
/// to reason about (and to run under -fsanitize=thread).
///
/// Parallelism must never change results: every index writes disjoint
/// data, and each index's work is internally sequential, so the output
/// is bitwise identical for any thread count (a property the tests
/// enforce).
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SUPPORT_THREADPOOL_H
#define CMCC_SUPPORT_THREADPOOL_H

#include "obs/Metrics.h"
#include "obs/TraceContext.h"
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cmcc {

/// A fixed pool of worker threads executing [0, N) index ranges.
class ThreadPool {
public:
  /// Creates a pool that runs loop bodies on \p Threads threads in
  /// total (the caller counts as one; Threads - 1 workers are spawned).
  /// Threads < 1 is clamped to 1, which makes parallelFor run inline.
  explicit ThreadPool(int Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total threads that execute loop bodies (callers of parallelFor
  /// included).
  int threadCount() const { return static_cast<int>(Workers.size()) + 1; }

  /// Runs Fn(0) ... Fn(N-1), in unspecified order, and returns when all
  /// calls have finished. The calling thread executes its share.
  /// Concurrent calls from different threads are serialized; a call from
  /// inside a loop body runs inline (no nested fan-out, no deadlock).
  void parallelFor(int N, const std::function<void(int)> &Fn);

  /// The process-wide pool the executor uses: lazily constructed on
  /// first use, sized by the CMCC_THREADS environment variable when set
  /// (clamped to >= 1), else std::thread::hardware_concurrency().
  static ThreadPool &shared();

  /// The thread count shared() will use (or did use), resolved from the
  /// environment without constructing the pool.
  static int sharedThreadCount();

private:
  void workerLoop();
  /// Pulls indices until the current loop is exhausted.
  void runIndices();

  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable WorkDone;
  /// Serializes concurrent parallelFor callers.
  std::mutex CallerMutex;

  const std::function<void(int)> *Body = nullptr;
  /// The submitting thread's trace context, captured per loop (under
  /// Mutex, like Body) so worker spans nest under the caller's span and
  /// carry the job's trace id instead of appearing as orphan roots.
  obs::TraceContext LoopCtx;
  std::atomic<int> NextIndex{0};
  int EndIndex = 0;
  /// When the current loop was handed to the workers; each worker's
  /// wake-up latency against it lands in the task-wait histogram.
  std::atomic<std::uint64_t> DispatchNs{0};
  //===--- Observability (process registry; pools share the names) --------===//
  obs::Counter &LoopsTotal;   ///< threadpool.loops_total
  obs::Gauge &LoopsActive;    ///< threadpool.loops_active (depth + max)
  obs::Histogram &TaskWaitUs; ///< threadpool.task_wait_us
  obs::Histogram &LoopUs;     ///< threadpool.loop_us
  /// Incremented per parallelFor; wakes workers exactly once per loop.
  long Generation = 0;
  /// Workers still inside the current loop.
  int Active = 0;
  bool ShuttingDown = false;
};

} // namespace cmcc

#endif // CMCC_SUPPORT_THREADPOOL_H
