//===- support/Diagnostic.h - Diagnostics engine --------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. The paper's planned production compiler
/// emits feedback when a flagged assignment statement cannot be handled by
/// the convolution technique (for lack of registers, for example); every
/// recognizer/compiler rejection in this codebase flows through here so
/// that user-facing messages carry locations and severities.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SUPPORT_DIAGNOSTIC_H
#define CMCC_SUPPORT_DIAGNOSTIC_H

#include "support/SourceLocation.h"
#include <string>
#include <vector>

namespace cmcc {

/// Severity of a diagnostic.
enum class DiagnosticSeverity {
  Note,
  Warning,
  Error,
};

/// One diagnostic message with an optional source location.
struct Diagnostic {
  DiagnosticSeverity Severity = DiagnosticSeverity::Error;
  SourceLocation Location;
  std::string Message;
};

/// Collects diagnostics produced while processing one compilation unit.
class DiagnosticEngine {
public:
  /// Records an error diagnostic.
  void error(SourceLocation Loc, std::string Message);

  /// Records a warning diagnostic.
  void warning(SourceLocation Loc, std::string Message);

  /// Records a note diagnostic.
  void note(SourceLocation Loc, std::string Message);

  /// Returns true if any error has been recorded.
  bool hasErrors() const { return NumErrors != 0; }

  /// Returns the number of recorded errors.
  unsigned errorCount() const { return NumErrors; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: severity: message" lines.
  std::string str() const;

  /// Drops all recorded diagnostics.
  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

/// Renders one diagnostic as "line:col: severity: message".
std::string formatDiagnostic(const Diagnostic &D);

} // namespace cmcc

#endif // CMCC_SUPPORT_DIAGNOSTIC_H
