//===- support/Provenance.h - Build-provenance stamp ----------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identity of the compiler (and flags) that built the current binary,
/// shared by the benchmark JSON stamps and the tools' --version output.
/// A measured number — or a served result — is only comparable to
/// another produced by the same toolchain on similar iron, so every
/// artifact that leaves the process carries this stamp.
///
/// The flags come in through the CMCC_COMPILE_FLAGS macro, defined per
/// target by CMake (empty when built outside CMake).
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SUPPORT_PROVENANCE_H
#define CMCC_SUPPORT_PROVENANCE_H

#include <string>
#include <thread>

namespace cmcc {

/// Compiler family and version that built this translation unit.
inline std::string compilerIdentity() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// The effective compile flags CMake stamped into this target.
inline std::string compileFlags() {
#ifdef CMCC_COMPILE_FLAGS
  return CMCC_COMPILE_FLAGS;
#else
  return "";
#endif
}

/// One-line provenance summary: compiler, flags, host core count.
inline std::string provenanceSummary() {
  return compilerIdentity() + "; flags: " + compileFlags() +
         "; host cores: " +
         std::to_string(std::thread::hardware_concurrency());
}

} // namespace cmcc

#endif // CMCC_SUPPORT_PROVENANCE_H
