//===- support/TextTable.h - Aligned text tables --------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A column-aligned plain-text table writer used by the benchmark
/// harnesses to print paper-style result tables.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SUPPORT_TEXTTABLE_H
#define CMCC_SUPPORT_TEXTTABLE_H

#include <string>
#include <vector>

namespace cmcc {

/// Accumulates rows of cells and renders them with aligned columns.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends one data row.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator row.
  void addSeparator();

  /// Renders the table. Columns are separated by two spaces; numeric-
  /// looking cells are right-aligned, everything else left-aligned.
  std::string str() const;

private:
  struct Row {
    std::vector<std::string> Cells;
    bool IsSeparator = false;
  };

  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace cmcc

#endif // CMCC_SUPPORT_TEXTTABLE_H
