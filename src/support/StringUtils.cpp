//===- support/StringUtils.cpp --------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"
#include <cctype>
#include <cstdio>

using namespace cmcc;

std::string cmcc::toUpper(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S)
    Out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(C))));
  return Out;
}

std::string cmcc::toLower(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S)
    Out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(C))));
  return Out;
}

std::string_view cmcc::trim(std::string_view S) {
  size_t Begin = 0;
  while (Begin < S.size() &&
         std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  size_t End = S.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string_view> cmcc::split(std::string_view S, char Separator) {
  std::vector<std::string_view> Pieces;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Separator) {
      Pieces.push_back(S.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Pieces;
}

bool cmcc::equalsInsensitive(std::string_view A, std::string_view B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I)
    if (std::toupper(static_cast<unsigned char>(A[I])) !=
        std::toupper(static_cast<unsigned char>(B[I])))
      return false;
  return true;
}

std::string cmcc::formatFixed(double Value, unsigned Digits) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", static_cast<int>(Digits),
                Value);
  return Buffer;
}
