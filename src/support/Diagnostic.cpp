//===- support/Diagnostic.cpp ---------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostic.h"
#include "support/Assert.h"

using namespace cmcc;

static const char *severityName(DiagnosticSeverity S) {
  switch (S) {
  case DiagnosticSeverity::Note:
    return "note";
  case DiagnosticSeverity::Warning:
    return "warning";
  case DiagnosticSeverity::Error:
    return "error";
  }
  CMCC_UNREACHABLE("unknown diagnostic severity");
}

void DiagnosticEngine::error(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagnosticSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagnosticSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLocation Loc, std::string Message) {
  Diags.push_back({DiagnosticSeverity::Note, Loc, std::move(Message)});
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}

std::string cmcc::formatDiagnostic(const Diagnostic &D) {
  std::string Out;
  if (D.Location.isValid()) {
    Out += std::to_string(D.Location.Line);
    Out += ':';
    Out += std::to_string(D.Location.Column);
    Out += ": ";
  }
  Out += severityName(D.Severity);
  Out += ": ";
  Out += D.Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += formatDiagnostic(D);
    Out += '\n';
  }
  return Out;
}
