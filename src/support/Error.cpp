//===- support/Error.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

using namespace cmcc;

Error cmcc::makeError(std::string Message) {
  return Error::failure(std::move(Message));
}
