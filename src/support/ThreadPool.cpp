//===- support/ThreadPool.cpp ---------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"
#include "obs/Trace.h"
#include "support/FaultInjection.h"
#include <cstdlib>
#include <string>

using namespace cmcc;

namespace {
/// True on threads currently executing a loop body; parallelFor from
/// such a thread must run inline rather than wait on the pool.
thread_local bool InsideLoopBody = false;
} // namespace

ThreadPool::ThreadPool(int Threads)
    : LoopsTotal(obs::Registry::process().counter("threadpool.loops_total")),
      LoopsActive(obs::Registry::process().gauge("threadpool.loops_active")),
      TaskWaitUs(
          obs::Registry::process().histogram("threadpool.task_wait_us")),
      LoopUs(obs::Registry::process().histogram("threadpool.loop_us")) {
  int Spawn = Threads < 1 ? 0 : Threads - 1;
  Workers.reserve(Spawn);
  for (int I = 0; I != Spawn; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runIndices() {
  for (;;) {
    int I = NextIndex.fetch_add(1, std::memory_order_relaxed);
    if (I >= EndIndex)
      return;
    (*Body)(I);
  }
}

void ThreadPool::workerLoop() {
  long SeenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkReady.wait(Lock, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
    }
    // Adopt the submitter's trace context for this loop's spans.
    obs::ScopedTraceContext TraceScope(LoopCtx.TraceId, LoopCtx.SpanId);
    // Wake-up latency: dispatch notify to this worker pulling its
    // first index (the queueing delay of the pool's "task").
    TaskWaitUs.observe(
        static_cast<double>(obs::detail::nowNs() -
                            DispatchNs.load(std::memory_order_relaxed)) /
        1000.0);
    InsideLoopBody = true;
    {
      CMCC_SPAN("threadpool.worker_run");
      runIndices();
    }
    InsideLoopBody = false;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Active == 0)
        WorkDone.notify_all();
    }
  }
}

void ThreadPool::parallelFor(int N, const std::function<void(int)> &Fn) {
  if (N <= 0)
    return;
  LoopsTotal.add(1);
  // Serial pool, tiny loop, a nested call from a loop body — or an
  // injected dispatch fault, which degrades this loop to inline serial
  // execution. Dispatch is the one site whose fault is benign by
  // construction: any thread count (including one) computes identical
  // bits, so the degraded mode must not change results.
  if (Workers.empty() || N == 1 || InsideLoopBody ||
      fault::probe("threadpool.dispatch")) {
    for (int I = 0; I != N; ++I)
      Fn(I);
    return;
  }
  // Loops queued on the pool (waiting on CallerMutex) plus the one
  // running: the pool's task-queue depth, high-water mark included.
  LoopsActive.add(1);
  obs::ScopedLatencyUs LoopTimer(LoopUs);
  CMCC_SPAN("threadpool.parallel_for");
  std::lock_guard<std::mutex> OneCaller(CallerMutex);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Body = &Fn;
    LoopCtx = obs::traceEnabled() ? obs::currentTraceContext()
                                  : obs::TraceContext();
    EndIndex = N;
    NextIndex.store(0, std::memory_order_relaxed);
    Active = static_cast<int>(Workers.size());
    ++Generation;
    DispatchNs.store(obs::detail::nowNs(), std::memory_order_relaxed);
  }
  WorkReady.notify_all();
  InsideLoopBody = true;
  runIndices();
  InsideLoopBody = false;
  std::unique_lock<std::mutex> Lock(Mutex);
  WorkDone.wait(Lock, [&] { return Active == 0; });
  Body = nullptr;
  LoopsActive.add(-1);
}

int ThreadPool::sharedThreadCount() {
  if (const char *Env = std::getenv("CMCC_THREADS")) {
    int Requested = std::atoi(Env);
    if (Requested >= 1)
      return Requested;
  }
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw == 0 ? 1 : static_cast<int>(Hw);
}

ThreadPool &ThreadPool::shared() {
  static ThreadPool Pool(sharedThreadCount());
  return Pool;
}
