//===- support/Random.h - Deterministic RNG -------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic SplitMix64 generator for tests and workload
/// generators. std::mt19937 is avoided so that property-test inputs are
/// identical across standard-library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SUPPORT_RANDOM_H
#define CMCC_SUPPORT_RANDOM_H

#include <cstdint>

namespace cmcc {

/// SplitMix64: fast, high-quality, and trivially reproducible.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniform in [0, Bound). Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) { return next() % Bound; }

  /// Returns an integer uniform in [Low, High] inclusive.
  int64_t nextInRange(int64_t Low, int64_t High) {
    return Low + static_cast<int64_t>(
                     nextBelow(static_cast<uint64_t>(High - Low + 1)));
  }

  /// Returns a float uniform in [0, 1).
  float nextFloat() {
    return static_cast<float>(next() >> 40) * (1.0f / 16777216.0f);
  }

  /// Returns a float uniform in [Low, High).
  float nextFloatInRange(float Low, float High) {
    return Low + (High - Low) * nextFloat();
  }

private:
  uint64_t State;
};

} // namespace cmcc

#endif // CMCC_SUPPORT_RANDOM_H
