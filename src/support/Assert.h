//===- support/Assert.h - Programmatic-error helpers ----------*- C++ -*-===//
//
// Part of the CMCC project: a reproduction of "Fortran at Ten Gigaflops:
// The Connection Machine Convolution Compiler" (PLDI 1991).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assertion-style helpers for documenting invariants that must hold unless
/// the program itself is buggy. Recoverable (user-input) errors go through
/// support/Error.h and support/Diagnostic.h instead.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SUPPORT_ASSERT_H
#define CMCC_SUPPORT_ASSERT_H

#include "obs/FlightRecorder.h"
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace cmcc {

/// Reports a violated internal invariant and aborts. The flight
/// recorder is dumped first so the crash leaves the last few thousand
/// structured events behind ($CMCC_FLIGHT_DUMP or stderr). Used by
/// CMCC_UNREACHABLE; do not call directly.
[[noreturn]] inline void reportUnreachable(const char *Msg, const char *File,
                                           unsigned Line) {
  std::fprintf(stderr, "%s:%u: unreachable executed: %s\n", File, Line, Msg);
  obs::FlightRecorder::dumpOnFatal(Msg);
  std::abort();
}

} // namespace cmcc

/// Marks a point in the program that cannot be reached if the program's
/// invariants hold. Always aborts with a message (this is a research
/// codebase; we keep the check in release builds too).
#define CMCC_UNREACHABLE(Msg)                                                  \
  ::cmcc::reportUnreachable(Msg, __FILE__, __LINE__)

#endif // CMCC_SUPPORT_ASSERT_H
