//===- support/SourceLocation.h - Line/column positions -------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 1-based line/column position into a source buffer, used by the lexer,
/// parser, recognizer, and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_SUPPORT_SOURCELOCATION_H
#define CMCC_SUPPORT_SOURCELOCATION_H

namespace cmcc {

/// A position in a source buffer. Line and column are 1-based; the value
/// {0, 0} means "unknown location".
struct SourceLocation {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }

  friend bool operator==(SourceLocation A, SourceLocation B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
};

} // namespace cmcc

#endif // CMCC_SUPPORT_SOURCELOCATION_H
