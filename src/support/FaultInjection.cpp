//===- support/FaultInjection.cpp -----------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"
#include "obs/FlightRecorder.h"
#include "support/Random.h"
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace cmcc;
using namespace cmcc::fault;

namespace {

uint64_t fnv1a(const char *Text) {
  uint64_t H = 1469598103934665603ULL;
  for (; *Text; ++Text) {
    H ^= static_cast<unsigned char>(*Text);
    H *= 1099511628211ULL;
  }
  return H;
}

/// Exact match, or \p Pattern is a prefix ending in '*'.
bool siteMatches(const std::string &Pattern, const char *Site) {
  if (!Pattern.empty() && Pattern.back() == '*')
    return std::string_view(Site).substr(0, Pattern.size() - 1) ==
           std::string_view(Pattern).substr(0, Pattern.size() - 1);
  return Pattern == Site;
}

/// The deterministic per-probe decision: a pure function of the seed,
/// the site, the site's probe index, and the rule's position — no clocks
/// and no shared RNG stream, so sites never perturb each other and the
/// same seed replays the same pattern.
bool decides(uint64_t Seed, uint64_t SiteHash, long ProbeIndex,
             size_t RuleIndex, double Rate) {
  SplitMix64 G(Seed ^ SiteHash ^
               (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(ProbeIndex + 1)) ^
               (0xbf58476d1ce4e5b9ULL * static_cast<uint64_t>(RuleIndex + 1)));
  return static_cast<double>(G.nextFloat()) < Rate;
}

} // namespace

void Registry::arm(Rule R) {
  if (R.Rate < 0.0)
    R.Rate = 0.0;
  if (R.Rate > 1.0)
    R.Rate = 1.0;
  std::lock_guard<std::mutex> Lock(Mutex);
  Rules.push_back(ArmedRule{std::move(R), 0});
  Armed.store(true, std::memory_order_relaxed);
}

void Registry::setSeed(uint64_t NewSeed) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Seed = NewSeed;
}

void Registry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Rules.clear();
  Sites.clear();
  Armed.store(false, std::memory_order_relaxed);
}

bool Registry::shouldFail(const char *Site) {
  long DelayMs = 0;
  bool Fail = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    SiteCounts &S = Sites[Site];
    const long Probe = S.Probes++;
    const uint64_t SiteHash = fnv1a(Site);
    for (size_t I = 0; I != Rules.size(); ++I) {
      ArmedRule &AR = Rules[I];
      if (!siteMatches(AR.R.Site, Site))
        continue;
      if (AR.R.MaxFires >= 0 && AR.Fires >= AR.R.MaxFires)
        continue;
      if (!decides(Seed, SiteHash, Probe, I, AR.R.Rate))
        continue;
      ++AR.Fires;
      ++S.Fires;
      if (AR.R.Kind == Action::Delay)
        DelayMs += AR.R.DelayMs;
      else
        Fail = true;
    }
  }
  // Record fired faults in the flight recorder (outside the lock; the
  // recorder is lock-free) so a post-mortem dump shows exactly which
  // injected faults the process absorbed. A = 1 for a failure, B =
  // accumulated delay in ms. Site is a string literal at every probe
  // site, so storing the pointer is safe.
  if (Fail || DelayMs > 0)
    obs::FlightRecorder::process().record(
        obs::FlightRecorder::EventKind::FaultFired, Site, Fail ? 1 : 0,
        static_cast<uint64_t>(DelayMs));
  // Sleep outside the lock: a latency fault must not stall every other
  // site's probes.
  if (DelayMs > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
  return Fail;
}

long Registry::fires(const std::string &Site) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sites.find(Site);
  return It == Sites.end() ? 0 : It->second.Fires;
}

long Registry::probes(const std::string &Site) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sites.find(Site);
  return It == Sites.end() ? 0 : It->second.Probes;
}

long Registry::totalProbes() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  long N = 0;
  for (const auto &Entry : Sites)
    N += Entry.second.Probes;
  return N;
}

Expected<std::vector<Rule>> Registry::parse(const std::string &Spec) {
  std::vector<Rule> Rules;
  size_t Begin = 0;
  while (Begin <= Spec.size()) {
    size_t End = Spec.find(',', Begin);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Entry = Spec.substr(Begin, End - Begin);
    Begin = End + 1;
    if (Entry.empty())
      continue;

    std::vector<std::string> Fields;
    size_t F = 0;
    while (F <= Entry.size()) {
      size_t Colon = Entry.find(':', F);
      if (Colon == std::string::npos)
        Colon = Entry.size();
      Fields.push_back(Entry.substr(F, Colon - F));
      F = Colon + 1;
    }
    if (Fields.size() < 2 || Fields.size() > 4)
      return makeError("fault rule '" + Entry +
                       "': want site:rate[:count[:delay_ms]]");
    Rule R;
    R.Site = Fields[0];
    if (R.Site.empty())
      return makeError("fault rule '" + Entry + "': empty site");
    char *EndPtr = nullptr;
    R.Rate = std::strtod(Fields[1].c_str(), &EndPtr);
    if (EndPtr == Fields[1].c_str() || *EndPtr != '\0' || R.Rate < 0.0 ||
        R.Rate > 1.0)
      return makeError("fault rule '" + Entry + "': bad rate '" + Fields[1] +
                       "' (want a probability in [0,1])");
    if (Fields.size() >= 3 && !Fields[2].empty()) {
      R.MaxFires = std::strtol(Fields[2].c_str(), &EndPtr, 10);
      if (EndPtr == Fields[2].c_str() || *EndPtr != '\0' || R.MaxFires < -1)
        return makeError("fault rule '" + Entry + "': bad count '" +
                         Fields[2] + "'");
    }
    if (Fields.size() == 4 && !Fields[3].empty()) {
      R.DelayMs = std::strtol(Fields[3].c_str(), &EndPtr, 10);
      if (EndPtr == Fields[3].c_str() || *EndPtr != '\0' || R.DelayMs < 0)
        return makeError("fault rule '" + Entry + "': bad delay_ms '" +
                         Fields[3] + "'");
      if (R.DelayMs > 0)
        R.Kind = Action::Delay;
    }
    Rules.push_back(std::move(R));
  }
  return Rules;
}

Registry &Registry::process() {
  static Registry *R = [] {
    auto *Reg = new Registry();
    if (const char *SeedEnv = std::getenv("CMCC_FAULT_SEED"))
      Reg->setSeed(std::strtoull(SeedEnv, nullptr, 10));
    if (const char *Env = std::getenv("CMCC_FAULTS")) {
      Expected<std::vector<Rule>> Parsed = parse(Env);
      if (Parsed) {
        for (Rule &R : *Parsed)
          Reg->arm(std::move(R));
      } else {
        std::fprintf(stderr, "cmcc: ignoring CMCC_FAULTS: %s\n",
                     Parsed.error().message().c_str());
      }
    }
    return Reg;
  }();
  return *R;
}

Error cmcc::fault::injectedFault(const char *Site) {
  return Error::transient(std::string("injected fault at ") + Site);
}
