//===- support/TextTable.cpp ----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TextTable.h"
#include <algorithm>
#include <cctype>

using namespace cmcc;

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back({std::move(Cells), /*IsSeparator=*/false});
}

void TextTable::addSeparator() { Rows.push_back({{}, /*IsSeparator=*/true}); }

/// Returns true if \p Cell looks like a number (right-align it).
static bool looksNumeric(const std::string &Cell) {
  if (Cell.empty())
    return false;
  for (char C : Cell)
    if (!std::isdigit(static_cast<unsigned char>(C)) && C != '.' && C != '-' &&
        C != '+' && C != 'x' && C != 'e' && C != 'E')
      return false;
  return true;
}

std::string TextTable::str() const {
  // Compute column widths over header and all rows.
  std::vector<size_t> Widths;
  auto Grow = [&](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I != Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Grow(Header);
  for (const Row &R : Rows)
    Grow(R.Cells);

  auto RenderRow = [&](const std::vector<std::string> &Cells,
                       std::string &Out) {
    for (size_t I = 0; I != Widths.size(); ++I) {
      const std::string Cell = I < Cells.size() ? Cells[I] : std::string();
      size_t Pad = Widths[I] - Cell.size();
      if (looksNumeric(Cell)) {
        Out.append(Pad, ' ');
        Out += Cell;
      } else {
        Out += Cell;
        Out.append(Pad, ' ');
      }
      if (I + 1 != Widths.size())
        Out += "  ";
    }
    // Trim trailing spaces from left-aligned last columns.
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };

  std::string Out;
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W;
  if (!Widths.empty())
    Total += 2 * (Widths.size() - 1);

  if (!Header.empty()) {
    RenderRow(Header, Out);
    Out.append(Total, '-');
    Out += '\n';
  }
  for (const Row &R : Rows) {
    if (R.IsSeparator) {
      Out.append(Total, '-');
      Out += '\n';
      continue;
    }
    RenderRow(R.Cells, Out);
  }
  return Out;
}
