//===- backends/native/NativeBackend.cpp ----------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
// Compiled with -ffp-contract=off (see backends/CMakeLists.txt): every
// term's product must round before the add, as the pipeline model's
// chain arithmetic does, or the 1-ulp-per-term equivalence contract
// with the cm2 backend breaks.
//
//===----------------------------------------------------------------------===//

#include "backends/native/NativeBackend.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/HaloExchange.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include <algorithm>
#include <chrono>
#include <memory>

using namespace cmcc;

namespace {

/// The sign-folded per-tap operand stream for one node, resolved once
/// before the row loops (the native analogue of FastNodeBinding, with
/// the tap loop hoisted outside the column loop so the column loop
/// vectorizes).
struct NodeTap {
  /// Padded source base at (Border + Dy, Border + Dx) — indexing it
  /// with [r * SourceStride + j] yields Source(r + Dy, j + Dx) of the
  /// subgrid. Null for bare-coefficient terms.
  const float *Source = nullptr;
  int SourceStride = 0;
  /// Coefficient subgrid base; null for scalar coefficients.
  const float *Coeff = nullptr;
  int CoeffStride = 0;
  float Sign = 1.0f;
  /// Sign * (float)Value, folded once (scalar coefficients only).
  float Immediate = 0.0f;
};

/// Computes result rows [RowBegin, RowEnd) of one node's subgrid.
/// Accumulation per point is 0.0f + term0 + term1 + ... in StencilSpec
/// tap order, each term Data * (Sign * Coeff) rounded separately —
/// the same chain the FPU executes, modulo the schedule's tap
/// permutation.
void computeRows(const std::vector<NodeTap> &Taps, float *Result,
                 int ResultStride, int Cols, int RowBegin, int RowEnd) {
  for (int R = RowBegin; R != RowEnd; ++R) {
    float *Out = Result + static_cast<size_t>(R) * ResultStride;
    std::fill(Out, Out + Cols, 0.0f);
    for (const NodeTap &T : Taps) {
      if (T.Source) {
        const float *Src = T.Source + static_cast<size_t>(R) * T.SourceStride;
        if (T.Coeff) {
          const float *C = T.Coeff + static_cast<size_t>(R) * T.CoeffStride;
          const float Sign = T.Sign;
          for (int J = 0; J != Cols; ++J)
            Out[J] += Src[J] * (Sign * C[J]);
        } else {
          const float Imm = T.Immediate;
          for (int J = 0; J != Cols; ++J)
            Out[J] += Src[J] * Imm;
        }
      } else if (T.Coeff) {
        // Bare array-coefficient term: the FPU multiplies by the 1.0
        // register, which is exact.
        const float *C = T.Coeff + static_cast<size_t>(R) * T.CoeffStride;
        const float Sign = T.Sign;
        for (int J = 0; J != Cols; ++J)
          Out[J] += Sign * C[J];
      } else {
        const float Imm = T.Immediate;
        for (int J = 0; J != Cols; ++J)
          Out[J] += Imm;
      }
    }
  }
}

} // namespace

Expected<TimingReport>
NativeBackend::runResolved(const CompiledStencil &Compiled,
                           const ResolvedStencilArguments &Resolved,
                           int Iterations) const {
  CMCC_SPAN("backend.native.run");
  if (fault::probe("backend.native.run"))
    return fault::injectedFault("backend.native.run");
  static obs::Counter &Runs =
      obs::Registry::process().counter("backend.native.runs");
  static obs::Histogram &RunHostUs =
      obs::Registry::process().histogram("backend.native.run_host_us");
  Runs.add(1);
  obs::ScopedLatencyUs RunTimer(RunHostUs);
  assert(Iterations > 0 && "iteration count must be positive");

  const StencilSpec &Spec = Compiled.Spec;
  const int SubRows = Resolved.Result->subRows();
  const int SubCols = Resolved.Result->subCols();
  const NodeGrid &Grid = Resolved.Result->grid();

  std::unique_ptr<ThreadPool> PrivatePool;
  ThreadPool *Pool;
  if (Opts.ThreadCount == 0) {
    Pool = &ThreadPool::shared();
  } else {
    PrivatePool = std::make_unique<ThreadPool>(Opts.ThreadCount);
    Pool = PrivatePool.get();
  }

  const auto Start = std::chrono::steady_clock::now();

  // Same §5.1 exchange protocol as the simulated path: wraparound /
  // zero-fill identical, skipped corners identically NaN-poisoned.
  const int Border = Spec.borderWidths().maximum();
  const bool FetchCorners = Spec.needsCornerData() || !Opts.AllowCornerSkip;
  std::vector<std::vector<Array2D>> PaddedBySource;
  {
    CMCC_SPAN("backend.native.halo_exchange");
    PaddedBySource.reserve(Spec.sourceCount());
    for (int S = 0; S != Spec.sourceCount(); ++S) {
      // Probed per exchange step, not per run: a multi-source stencil
      // can lose any one of its exchanges.
      if (fault::probe("halo.exchange"))
        return fault::injectedFault("halo.exchange");
      if (Opts.Domain) {
        Expected<std::vector<Array2D>> Padded = exchangeHalosPartitioned(
            *Resolved.Sources[S], *Opts.Domain, Opts.Transport, S, Border,
            Spec.BoundaryDim1, Spec.BoundaryDim2, FetchCorners, Pool);
        if (!Padded)
          return Padded.error();
        PaddedBySource.push_back(std::move(*Padded));
      } else {
        PaddedBySource.push_back(exchangeHalos(*Resolved.Sources[S], Border,
                                               Spec.BoundaryDim1,
                                               Spec.BoundaryDim2, FetchCorners,
                                               Pool));
      }
    }
  }

  {
    CMCC_SPAN("backend.native.compute");
    const int RowsPerTile = std::max(1, Opts.RowsPerTile);
    const int TilesPerNode = (SubRows + RowsPerTile - 1) / RowsPerTile;
    // Tiles are disjoint row bands of distinct result subgrids, so any
    // thread count computes identical bits.
    Pool->parallelFor(Grid.nodeCount() * TilesPerNode, [&](int Task) {
      const NodeCoord Node = Grid.coordOf(Task / TilesPerNode);
      const int RowBegin = (Task % TilesPerNode) * RowsPerTile;
      const int RowEnd = std::min(SubRows, RowBegin + RowsPerTile);

      std::vector<NodeTap> Taps;
      Taps.reserve(Spec.Taps.size());
      for (size_t I = 0; I != Spec.Taps.size(); ++I) {
        const Tap &T = Spec.Taps[I];
        NodeTap N;
        N.Sign = static_cast<float>(T.Sign);
        if (T.HasData) {
          const Array2D &Padded =
              PaddedBySource[T.SourceIndex][Grid.nodeId(Node)];
          N.SourceStride = Padded.cols();
          N.Source = Padded.data() +
                     static_cast<size_t>(Border + T.At.Dy) * N.SourceStride +
                     Border + T.At.Dx;
        }
        if (const DistributedArray *C = Resolved.TapCoefficients[I]) {
          const Array2D &Sub = C->subgrid(Node);
          N.Coeff = Sub.data();
          N.CoeffStride = Sub.cols();
        } else {
          N.Immediate = N.Sign * static_cast<float>(T.Coeff.Value);
        }
        Taps.push_back(N);
      }

      Array2D &Result = Resolved.Result->subgrid(Node);
      computeRows(Taps, Result.data(), Result.cols(), SubCols, RowBegin,
                  RowEnd);
    });
  }

  const double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  // Wall-clock report: no simulated cycles; the measured seconds ride
  // in the host field, so secondsPerIteration()/measuredMflops() are
  // real host throughput.
  TimingReport Report;
  Report.Iterations = Iterations;
  Report.Nodes = Config.nodeCount();
  Report.ClockMHz = Config.ClockMHz;
  Report.HostSecondsPerIteration = Seconds;
  Report.UsefulFlopsPerNodePerIteration =
      static_cast<long>(Spec.usefulFlopsPerPoint()) * SubRows * SubCols;
  return Report;
}

Expected<TimingReport> NativeBackend::timeOnly(const CompiledStencil &Compiled,
                                               int SubRows, int SubCols,
                                               int Iterations) const {
  CMCC_SPAN("backend.native.time_only");
  const StencilSpec &Spec = Compiled.Spec;
  const NodeGrid Grid(Config);

  // Scratch arrays, deterministically filled: this backend can only
  // time by running for real.
  DistributedArray Result(Grid, SubRows, SubCols);
  std::vector<std::unique_ptr<DistributedArray>> Owned;
  auto MakeScratch = [&](uint64_t Seed) {
    Owned.push_back(std::make_unique<DistributedArray>(Grid, SubRows, SubCols));
    DistributedArray &A = *Owned.back();
    for (int Id = 0; Id != Grid.nodeCount(); ++Id)
      A.subgrid(Grid.coordOf(Id)).fillRandom(Seed * 7919 + Id);
    return &A;
  };

  StencilArguments Args;
  Args.Result = &Result;
  uint64_t Seed = 1;
  Args.Source = MakeScratch(Seed++);
  for (const std::string &Name : Spec.ExtraSources)
    Args.ExtraSources[Name] = MakeScratch(Seed++);
  for (const std::string &Name : Spec.coefficientArrayNames())
    Args.Coefficients[Name] = MakeScratch(Seed++);

  return run(Compiled, Args, Iterations);
}
