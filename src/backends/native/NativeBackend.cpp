//===- backends/native/NativeBackend.cpp ----------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
// Compiled with -ffp-contract=off (see backends/CMakeLists.txt): every
// term's product must round before the add, as the pipeline model's
// chain arithmetic does, or the 1-ulp-per-term equivalence contract
// with the cm2 backend breaks.
//
//===----------------------------------------------------------------------===//

#include "backends/native/NativeBackend.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/HaloExchange.h"
#include "runtime/TimeTile.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>

using namespace cmcc;

namespace {

/// The sign-folded per-tap operand stream for one node, resolved once
/// before the row loops (the native analogue of FastNodeBinding, with
/// the tap loop hoisted outside the column loop so the column loop
/// vectorizes).
struct NodeTap {
  /// Padded source base at (Border + Dy, Border + Dx) — indexing it
  /// with [r * SourceStride + j] yields Source(r + Dy, j + Dx) of the
  /// subgrid. Null for bare-coefficient terms.
  const float *Source = nullptr;
  int SourceStride = 0;
  /// Coefficient subgrid base; null for scalar coefficients.
  const float *Coeff = nullptr;
  int CoeffStride = 0;
  float Sign = 1.0f;
  /// Sign * (float)Value, folded once (scalar coefficients only).
  float Immediate = 0.0f;
};

/// Computes result rows [RowBegin, RowEnd) of one node's subgrid.
/// Accumulation per point is 0.0f + term0 + term1 + ... in StencilSpec
/// tap order, each term Data * (Sign * Coeff) rounded separately —
/// the same chain the FPU executes, modulo the schedule's tap
/// permutation.
void computeRows(const std::vector<NodeTap> &Taps, float *Result,
                 int ResultStride, int Cols, int RowBegin, int RowEnd) {
  for (int R = RowBegin; R != RowEnd; ++R) {
    float *Out = Result + static_cast<size_t>(R) * ResultStride;
    std::fill(Out, Out + Cols, 0.0f);
    for (const NodeTap &T : Taps) {
      if (T.Source) {
        const float *Src = T.Source + static_cast<size_t>(R) * T.SourceStride;
        if (T.Coeff) {
          const float *C = T.Coeff + static_cast<size_t>(R) * T.CoeffStride;
          const float Sign = T.Sign;
          for (int J = 0; J != Cols; ++J)
            Out[J] += Src[J] * (Sign * C[J]);
        } else {
          const float Imm = T.Immediate;
          for (int J = 0; J != Cols; ++J)
            Out[J] += Src[J] * Imm;
        }
      } else if (T.Coeff) {
        // Bare array-coefficient term: the FPU multiplies by the 1.0
        // register, which is exact.
        const float *C = T.Coeff + static_cast<size_t>(R) * T.CoeffStride;
        const float Sign = T.Sign;
        for (int J = 0; J != Cols; ++J)
          Out[J] += Sign * C[J];
      } else {
        const float Imm = T.Immediate;
        for (int J = 0; J != Cols; ++J)
          Out[J] += Imm;
      }
    }
  }
}

} // namespace

Expected<TimingReport>
NativeBackend::runResolved(const CompiledStencil &Compiled,
                           const ResolvedStencilArguments &Resolved,
                           const RunOptions &RO) const {
  CMCC_SPAN("backend.native.run");
  if (fault::probe("backend.native.run"))
    return fault::injectedFault("backend.native.run");
  static obs::Counter &Runs =
      obs::Registry::process().counter("backend.native.runs");
  static obs::Histogram &RunHostUs =
      obs::Registry::process().histogram("backend.native.run_host_us");
  Runs.add(1);
  obs::ScopedLatencyUs RunTimer(RunHostUs);
  assert(RO.Iterations > 0 && "iteration count must be positive");

  const StencilSpec &Spec = Compiled.Spec;
  const int SubRows = Resolved.Result->subRows();
  const int SubCols = Resolved.Result->subCols();
  const NodeGrid &Grid = Resolved.Result->grid();
  const int K = RO.TimeTile;
  if (Error E = timetile::validateTimeTile(Spec, K, SubRows, SubCols))
    return E;
  const int Radius = Spec.borderWidths().maximum();
  const int Border = K * Radius;
  const int CoeffBorder = (K - 1) * Radius;

  std::unique_ptr<ThreadPool> PrivatePool;
  ThreadPool *Pool;
  if (Opts.ThreadCount == 0) {
    Pool = &ThreadPool::shared();
  } else {
    PrivatePool = std::make_unique<ThreadPool>(Opts.ThreadCount);
    Pool = PrivatePool.get();
  }

  const auto Start = std::chrono::steady_clock::now();

  // Same §5.1 exchange protocol as the simulated path: wraparound /
  // zero-fill identical, skipped corners identically NaN-poisoned.
  // Tiled runs always fetch corners — intermediate side-pad values
  // feed corner-adjacent cells of later steps.
  const bool FetchCorners =
      K > 1 || Spec.needsCornerData() || !Opts.AllowCornerSkip;
  auto Exchange = [&](const DistributedArray &A, int SourceIndex,
                      int B) -> Expected<std::vector<Array2D>> {
    // Probed per exchange step, not per run: any one of a run's
    // exchanges can be lost.
    if (fault::probe("halo.exchange"))
      return fault::injectedFault("halo.exchange");
    if (Opts.Domain)
      return exchangeHalosPartitioned(A, *Opts.Domain, Opts.Transport,
                                      SourceIndex, B, Spec.BoundaryDim1,
                                      Spec.BoundaryDim2, FetchCorners, Pool);
    return exchangeHalos(A, B, Spec.BoundaryDim1, Spec.BoundaryDim2,
                         FetchCorners, Pool);
  };
  std::vector<std::vector<Array2D>> PaddedBySource;
  // Tiled runs also pad each distinct coefficient array (by name, in
  // first-appearance tap order — the same deterministic order every
  // shard worker derives): intermediate pad cells multiply by the
  // *owner's* coefficients. Transport source indices follow the real
  // sources.
  std::vector<std::vector<Array2D>> CoeffPadded;
  std::vector<int> TapCoeffOrdinal(Spec.Taps.size(), -1);
  {
    CMCC_SPAN("backend.native.halo_exchange");
    PaddedBySource.reserve(Spec.sourceCount());
    for (int S = 0; S != Spec.sourceCount(); ++S) {
      Expected<std::vector<Array2D>> Padded =
          Exchange(*Resolved.Sources[S], S, Border);
      if (!Padded)
        return Padded.error();
      PaddedBySource.push_back(std::move(*Padded));
    }
    if (K > 1) {
      const std::vector<std::string> Names = Spec.coefficientArrayNames();
      for (size_t I = 0; I != Spec.Taps.size(); ++I)
        if (Spec.Taps[I].Coeff.isArray())
          TapCoeffOrdinal[I] = static_cast<int>(
              std::find(Names.begin(), Names.end(), Spec.Taps[I].Coeff.Name) -
              Names.begin());
      CoeffPadded.resize(Names.size());
      for (size_t N = 0; N != Names.size(); ++N) {
        const DistributedArray *C = nullptr;
        for (size_t I = 0; I != Spec.Taps.size(); ++I)
          if (TapCoeffOrdinal[I] == static_cast<int>(N)) {
            C = Resolved.TapCoefficients[I];
            break;
          }
        assert(C && "coefficient name resolved to no array");
        Expected<std::vector<Array2D>> Padded =
            Exchange(*C, Spec.sourceCount() + static_cast<int>(N),
                     CoeffBorder);
        if (!Padded)
          return Padded.error();
        CoeffPadded[N] = std::move(*Padded);
      }
    }
  }

  {
    CMCC_SPAN("backend.native.compute");
    const int RowsPerTile = std::max(1, Opts.RowsPerTile);

    // One compute pass: rows [RowBegin, RowEnd) of the POut-extended
    // rectangle of every node, reading inputs padded by InBorder and
    // writing outputs padded by OutBorder. The final step (POut == 0,
    // unpadded result, per-subgrid coefficients) and the classic
    // untiled run are the same pass.
    auto ComputePass = [&](const std::vector<Array2D> *In, int InBorder,
                           std::vector<Array2D> *Out, int OutBorder,
                           bool PaddedCoeffs, int POut) {
      const int ExtRows = SubRows + 2 * POut;
      const int ExtCols = SubCols + 2 * POut;
      const int TilesPerNode = (ExtRows + RowsPerTile - 1) / RowsPerTile;
      // Tiles are disjoint row bands of distinct output arrays, so any
      // thread count computes identical bits.
      Pool->parallelFor(Grid.nodeCount() * TilesPerNode, [&](int Task) {
        const int NodeId = Task / TilesPerNode;
        const NodeCoord Node = Grid.coordOf(NodeId);
        const int RowBegin = (Task % TilesPerNode) * RowsPerTile;
        const int RowEnd = std::min(ExtRows, RowBegin + RowsPerTile);

        std::vector<NodeTap> Taps;
        Taps.reserve(Spec.Taps.size());
        for (size_t I = 0; I != Spec.Taps.size(); ++I) {
          const Tap &T = Spec.Taps[I];
          NodeTap N;
          N.Sign = static_cast<float>(T.Sign);
          if (T.HasData) {
            const Array2D &Padded =
                In ? (*In)[NodeId] : PaddedBySource[T.SourceIndex][NodeId];
            N.SourceStride = Padded.cols();
            N.Source = Padded.data() +
                       static_cast<size_t>(InBorder - POut + T.At.Dy) *
                           N.SourceStride +
                       InBorder - POut + T.At.Dx;
          }
          if (Resolved.TapCoefficients[I]) {
            if (PaddedCoeffs) {
              const Array2D &Sub =
                  CoeffPadded[static_cast<size_t>(TapCoeffOrdinal[I])]
                             [static_cast<size_t>(NodeId)];
              N.CoeffStride = Sub.cols();
              N.Coeff = Sub.data() +
                        static_cast<size_t>(CoeffBorder - POut) *
                            N.CoeffStride +
                        CoeffBorder - POut;
            } else {
              const Array2D &Sub =
                  Resolved.TapCoefficients[I]->subgrid(Node);
              N.Coeff = Sub.data();
              N.CoeffStride = Sub.cols();
            }
          } else {
            N.Immediate = N.Sign * static_cast<float>(T.Coeff.Value);
          }
          Taps.push_back(N);
        }

        if (Out) {
          Array2D &O = (*Out)[static_cast<size_t>(NodeId)];
          float *Base = O.data() +
                        static_cast<size_t>(OutBorder - POut) * O.cols() +
                        OutBorder - POut;
          computeRows(Taps, Base, O.cols(), ExtCols, RowBegin, RowEnd);
        } else {
          Array2D &Result = Resolved.Result->subgrid(Node);
          computeRows(Taps, Result.data(), Result.cols(), ExtCols, RowBegin,
                      RowEnd);
        }
      });
    };

    if (K == 1) {
      ComputePass(nullptr, Border, nullptr, 0, false, 0);
    } else {
      // K-1 intermediate steps through double-buffered wide scratch;
      // the parallelFor join between steps is the barrier. Cells
      // beyond a step's valid extension are never read later (step
      // s+1 reaches exactly POut(s)), so the NaN fill at allocation
      // suffices.
      std::vector<Array2D> Buffers[2];
      for (auto &BufferSet : Buffers) {
        BufferSet.reserve(static_cast<size_t>(Grid.nodeCount()));
        for (int Id = 0; Id != Grid.nodeCount(); ++Id)
          BufferSet.emplace_back(SubRows + 2 * Border, SubCols + 2 * Border,
                                 std::numeric_limits<float>::quiet_NaN());
      }
      const bool AnyZero = Spec.BoundaryDim1 == BoundaryKind::Zero ||
                           Spec.BoundaryDim2 == BoundaryKind::Zero;
      for (int S = 1; S != K; ++S) {
        const int POut = (K - S) * Radius;
        std::vector<Array2D> *In =
            S == 1 ? &PaddedBySource[0] : &Buffers[S & 1];
        std::vector<Array2D> *Out = &Buffers[(S - 1) & 1];
        ComputePass(In, Border, Out, Border, true, POut);
        if (AnyZero) {
          // Cells whose global position is outside the array under a
          // Zero (EOSHIFT) boundary are identically zero at every
          // step; the wide exchange zero-filled them at step one and
          // this keeps them zero through the chain.
          Pool->parallelFor(Grid.nodeCount(), [&](int Id) {
            const NodeCoord Node = Grid.coordOf(Id);
            timetile::applyZeroMask(
                (*Out)[static_cast<size_t>(Id)], Border, POut, SubRows,
                SubCols, Spec.BoundaryDim1, Spec.BoundaryDim2,
                Opts.Domain ? Opts.Domain->globalRow(Node.Row) : Node.Row,
                Opts.Domain ? Opts.Domain->GlobalRows : Config.NodeRows,
                Opts.Domain ? Opts.Domain->globalCol(Node.Col) : Node.Col,
                Opts.Domain ? Opts.Domain->GlobalCols : Config.NodeCols);
          });
        }
      }
      ComputePass(&Buffers[(K - 2) & 1], Border, nullptr, 0, false, 0);
    }
  }

  const double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  // Wall-clock report: no simulated cycles; the measured seconds ride
  // in the host field, so secondsPerIteration()/measuredMflops() are
  // real host throughput. One fused unit advances K timesteps.
  TimingReport Report;
  Report.Iterations = RO.Iterations;
  Report.Nodes = Config.nodeCount();
  Report.ClockMHz = Config.ClockMHz;
  Report.HostSecondsPerIteration = Seconds;
  Report.UsefulFlopsPerNodePerIteration =
      static_cast<long>(Spec.usefulFlopsPerPoint()) * SubRows * SubCols *
      std::max(1, K);
  return Report;
}

Expected<TimingReport> NativeBackend::timeOnly(const CompiledStencil &Compiled,
                                               int SubRows, int SubCols,
                                               const RunOptions &RO) const {
  CMCC_SPAN("backend.native.time_only");
  const StencilSpec &Spec = Compiled.Spec;
  const NodeGrid Grid(Config);

  // Scratch arrays, deterministically filled: this backend can only
  // time by running for real.
  DistributedArray Result(Grid, SubRows, SubCols);
  std::vector<std::unique_ptr<DistributedArray>> Owned;
  auto MakeScratch = [&](uint64_t Seed) {
    Owned.push_back(std::make_unique<DistributedArray>(Grid, SubRows, SubCols));
    DistributedArray &A = *Owned.back();
    for (int Id = 0; Id != Grid.nodeCount(); ++Id)
      A.subgrid(Grid.coordOf(Id)).fillRandom(Seed * 7919 + Id);
    return &A;
  };

  StencilArguments Args;
  Args.Result = &Result;
  uint64_t Seed = 1;
  Args.Source = MakeScratch(Seed++);
  for (const std::string &Name : Spec.ExtraSources)
    Args.ExtraSources[Name] = MakeScratch(Seed++);
  for (const std::string &Name : Spec.coefficientArrayNames())
    Args.Coefficients[Name] = MakeScratch(Seed++);

  return run(Compiled, Args, RO);
}
