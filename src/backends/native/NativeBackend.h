//===- backends/native/NativeBackend.h - Host-speed backend ---*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A host-speed execution backend: lowers the recognized StencilSpec
/// directly to a tiled, thread-pooled C++ loop nest — no sequencer, no
/// FPU pipeline model, no simulation. The same recognizer/compiler
/// output the CM-2 backend consumes drives real hardware, the way
/// ForOpenCL lowers the same array syntax to plain accelerator loops.
///
/// Numerics are kept aligned with the simulated FPU on purpose:
///
///   * halos come from the same exchangeHalos protocol (wraparound /
///     zero-fill / poisoned skipped corners identical);
///   * each result point accumulates `0.0f + term0 + term1 + ...` in
///     single precision with each term rounded separately (the file is
///     compiled with -ffp-contract=off so no FMA contraction), exactly
///     the pipeline model's chain arithmetic;
///   * each term is `Data * (Sign * Coeff)` with the sign folded in
///     float, mirroring FastNodeBinding.
///
/// The one licensed difference is term *order*: native accumulates in
/// StencilSpec tap order while the compiled schedule may permute taps
/// (reads of registers about to be overwritten come first), so sums
/// agree bitwise for single-term stencils and to 1 ulp per term
/// otherwise — the contract tests/backend_equivalence_test enforces.
///
/// Timing reports carry measured wall-clock (in the host-seconds
/// field; the simulated cycle breakdown is zero), so measuredMflops()
/// is real machine throughput.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_BACKENDS_NATIVE_NATIVEBACKEND_H
#define CMCC_BACKENDS_NATIVE_NATIVEBACKEND_H

#include "runtime/Backend.h"
#include "runtime/HaloTransport.h"
#include "runtime/Partition.h"

namespace cmcc {

/// Host-speed execution of compiled stencils.
class NativeBackend : public ExecutionBackend {
public:
  struct Options {
    /// Skip corner halo data for cornerless stencils (same default as
    /// the simulated path; skipped corners stay NaN-poisoned).
    bool AllowCornerSkip = true;
    /// Host threads: 0 uses the process-wide shared pool
    /// (CMCC_THREADS), N >= 1 a private pool of exactly N threads.
    /// Thread count never changes results — tiles are disjoint.
    int ThreadCount = 0;
    /// Rows per parallel tile. Small enough to load-balance the pool
    /// even on one node's subgrid, large enough that a tile's rows
    /// amortize the dispatch.
    int RowsPerTile = 32;
    /// When set, this backend runs one shard's block of a larger node
    /// grid; block-edge halo traffic moves through Transport. Null runs
    /// the whole grid in-process.
    const PartitionDomain *Domain = nullptr;
    HaloTransport *Transport = nullptr;
  };

  explicit NativeBackend(const MachineConfig &Config) : Config(Config) {}
  NativeBackend(const MachineConfig &Config, Options Opts)
      : Config(Config), Opts(Opts) {}

  const char *name() const override { return "native"; }
  bool reportsWallClock() const override { return true; }

  // Re-expose the base class's int-Iterations convenience overloads
  // (hidden by the RunOptions overrides).
  using ExecutionBackend::run;
  using ExecutionBackend::runResolved;
  using ExecutionBackend::timeOnly;

  /// Computes the result arrays once and reports measured wall-clock
  /// seconds per iteration (the functional pass is identical for every
  /// iteration, as on the simulated machine). With Opts.TimeTile = k >
  /// 1, one wide exchange feeds k chained steps: intermediate steps
  /// compute shrinking extended rectangles in scratch (per-point
  /// arithmetic is position-independent here, so no owner replay is
  /// needed), zero-masked at global Zero edges, and the last step
  /// writes the result arrays.
  Expected<TimingReport>
  runResolved(const CompiledStencil &Compiled,
              const ResolvedStencilArguments &Resolved,
              const RunOptions &RO) const override;

  /// Measures a real run over internally allocated scratch arrays of
  /// the given per-node shape (deterministically filled); fails where
  /// a run would, e.g. a border exceeding the subgrid.
  Expected<TimingReport> timeOnly(const CompiledStencil &Compiled, int SubRows,
                                  int SubCols,
                                  const RunOptions &RO) const override;

  const MachineConfig &machine() const override { return Config; }
  const Options &options() const { return Opts; }

private:
  MachineConfig Config;
  Options Opts;
};

} // namespace cmcc

#endif // CMCC_BACKENDS_NATIVE_NATIVEBACKEND_H
