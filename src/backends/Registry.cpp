//===- backends/Registry.cpp ----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "backends/Registry.h"
#include "backends/cm2/Cm2Backend.h"
#include "backends/native/NativeBackend.h"
#include "backends/njit/NjitBackend.h"
#include "backends/njit/Toolchain.h"

using namespace cmcc;

std::vector<std::string> cmcc::availableBackendNames() {
  // Kept sorted by hand; the seam test asserts the order is sorted so
  // the list stays stable as backends are added.
  return {"cm2", "native", "njit"};
}

bool cmcc::isBackendName(std::string_view Name) {
  return Name == "cm2" || Name == "native" || Name == "njit";
}

bool cmcc::isBackendAvailable(std::string_view Name) {
  if (!isBackendName(Name))
    return false;
  if (Name == "njit")
    return njit::toolchainAvailable();
  return true;
}

Error cmcc::unknownBackendError(std::string_view Name) {
  std::string Known;
  for (const std::string &B : availableBackendNames())
    Known += Known.empty() ? B : ", " + B;
  return makeError("unknown backend '" + std::string(Name) +
                   "' (registered backends: " + Known + ")");
}

std::unique_ptr<ExecutionBackend>
cmcc::createBackend(std::string_view Name, const MachineConfig &Config,
                    const Executor::Options &ExecOpts) {
  if (Name == "cm2")
    return std::make_unique<Cm2Backend>(Config, ExecOpts);
  if (Name == "native") {
    NativeBackend::Options Opts;
    Opts.AllowCornerSkip = ExecOpts.AllowCornerSkip;
    Opts.ThreadCount = ExecOpts.ThreadCount;
    Opts.Domain = ExecOpts.Domain;
    Opts.Transport = ExecOpts.Transport;
    return std::make_unique<NativeBackend>(Config, Opts);
  }
  if (Name == "njit") {
    NjitBackend::Options Opts;
    Opts.AllowCornerSkip = ExecOpts.AllowCornerSkip;
    Opts.ThreadCount = ExecOpts.ThreadCount;
    Opts.Domain = ExecOpts.Domain;
    Opts.Transport = ExecOpts.Transport;
    return std::make_unique<NjitBackend>(Config, Opts);
  }
  return nullptr;
}
