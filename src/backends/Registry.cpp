//===- backends/Registry.cpp ----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "backends/Registry.h"
#include "backends/cm2/Cm2Backend.h"
#include "backends/native/NativeBackend.h"

using namespace cmcc;

std::vector<std::string> cmcc::availableBackendNames() {
  return {"cm2", "native"};
}

bool cmcc::isBackendName(std::string_view Name) {
  return Name == "cm2" || Name == "native";
}

std::unique_ptr<ExecutionBackend>
cmcc::createBackend(std::string_view Name, const MachineConfig &Config,
                    const Executor::Options &ExecOpts) {
  if (Name == "cm2")
    return std::make_unique<Cm2Backend>(Config, ExecOpts);
  if (Name == "native") {
    NativeBackend::Options Opts;
    Opts.AllowCornerSkip = ExecOpts.AllowCornerSkip;
    Opts.ThreadCount = ExecOpts.ThreadCount;
    return std::make_unique<NativeBackend>(Config, Opts);
  }
  return nullptr;
}
