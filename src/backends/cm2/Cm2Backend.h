//===- backends/cm2/Cm2Backend.h - The simulated CM-2 backend -*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's execution path behind the ExecutionBackend seam: a thin
/// adapter over runtime/Executor, whose halo exchange, strip mining,
/// and FPU pipeline model are unchanged. Results and simulated cycle
/// counts are bit-for-bit what a direct Executor::run produces — the
/// determinism tests and bench_obs's bitwise-identity assertion pin
/// this.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_BACKENDS_CM2_CM2BACKEND_H
#define CMCC_BACKENDS_CM2_CM2BACKEND_H

#include "runtime/Backend.h"
#include "runtime/Executor.h"

namespace cmcc {

/// Simulated CM-2 execution (the paper's machine). Timing reports carry
/// analytic cycle counts at the configured clock, not wall-clock.
class Cm2Backend : public ExecutionBackend {
public:
  explicit Cm2Backend(const MachineConfig &Config) : Exec(Config) {}
  Cm2Backend(const MachineConfig &Config, Executor::Options Opts)
      : Exec(Config, Opts) {}

  const char *name() const override { return "cm2"; }
  bool reportsWallClock() const override { return false; }

  // Re-expose the base class's int-Iterations convenience overloads
  // (hidden by the RunOptions overrides).
  using ExecutionBackend::run;
  using ExecutionBackend::runResolved;
  using ExecutionBackend::timeOnly;
  Expected<TimingReport>
  runResolved(const CompiledStencil &Compiled,
              const ResolvedStencilArguments &Resolved,
              const RunOptions &Opts) const override;
  Expected<TimingReport> timeOnly(const CompiledStencil &Compiled, int SubRows,
                                  int SubCols,
                                  const RunOptions &Opts) const override;
  const MachineConfig &machine() const override { return Exec.machine(); }

  /// The wrapped executor (for callers that need simulated-path knobs
  /// the seam does not expose, e.g. analytic cycle breakdowns).
  const Executor &executor() const { return Exec; }

private:
  Executor Exec;
};

} // namespace cmcc

#endif // CMCC_BACKENDS_CM2_CM2BACKEND_H
