//===- backends/cm2/Cm2Backend.cpp ----------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "backends/cm2/Cm2Backend.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/TimeTile.h"
#include "support/FaultInjection.h"

using namespace cmcc;

Expected<TimingReport>
Cm2Backend::runResolved(const CompiledStencil &Compiled,
                        const ResolvedStencilArguments &Resolved,
                        const RunOptions &Opts) const {
  // Backend-scoped observability; the Executor's own executor.* names
  // are unchanged underneath (bench_obs pins the simulated path).
  CMCC_SPAN("backend.cm2.run");
  if (fault::probe("backend.cm2.run"))
    return fault::injectedFault("backend.cm2.run");
  static obs::Counter &Runs =
      obs::Registry::process().counter("backend.cm2.runs");
  Runs.add(1);
  return Exec.runResolved(Compiled, Resolved, Opts);
}

Expected<TimingReport> Cm2Backend::timeOnly(const CompiledStencil &Compiled,
                                            int SubRows, int SubCols,
                                            const RunOptions &Opts) const {
  // Analytic and exact for any machine size — but still a run of this
  // backend as far as the serving layer is concerned, so timing-only
  // jobs exercise the same fault site as array-bound ones.
  if (fault::probe("backend.cm2.run"))
    return fault::injectedFault("backend.cm2.run");
  if (Error E = timetile::validateTimeTile(Compiled.Spec, Opts.TimeTile,
                                           SubRows, SubCols))
    return E;
  return Exec.timeOnly(Compiled, SubRows, SubCols, Opts);
}
