//===- backends/njit/Toolchain.h - Host C++ toolchain discovery *- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locates the host C++ compiler the njit backend shells out to, and
/// derives a stable *identity hash* for it so compiled artifacts can be
/// keyed by the toolchain that produced them (swap the compiler, get a
/// fresh artifact namespace — never a stale .so built by someone else's
/// flags).
///
/// Discovery order:
///
///   1. CMCC_NJIT_CC, when set, is authoritative: if it does not name
///      an executable the backend reports itself unavailable rather
///      than silently picking another compiler;
///   2. the compiler that built this binary (CMCC_HOST_CXX, baked in by
///      CMake), which is guaranteed compatible with the emitted code;
///   3. `c++`, `g++`, `clang++` on PATH.
///
/// Identity is computed without *executing* anything — resolved path +
/// file size + mtime + the compile flags + the emitter version — so a
/// warm artifact cache costs zero toolchain invocations to open (the
/// warm-restart drill in CI asserts exactly that).
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_BACKENDS_NJIT_TOOLCHAIN_H
#define CMCC_BACKENDS_NJIT_TOOLCHAIN_H

#include "support/Error.h"
#include <cstdint>
#include <string>

namespace cmcc {
namespace njit {

/// Bump whenever the emitted source or the kernel ABI changes: the
/// version participates in the toolchain identity hash, so old on-disk
/// artifacts are simply never found again instead of being dlopen'd
/// with a mismatched ABI.
inline constexpr int EmitterVersion = 1;

/// The flags every njit artifact is compiled with. -ffp-contract=off is
/// load-bearing: the emitted chain must round every product before its
/// add, exactly like the native backend and the simulated FPU.
inline constexpr const char *CompileFlags =
    "-O3 -shared -fPIC -ffp-contract=off";

/// A usable host compiler.
struct Toolchain {
  /// Resolved absolute path of the compiler executable.
  std::string Compiler;
  /// FNV-1a over (path, size, mtime, flags, emitter version): the
  /// artifact cache's per-toolchain namespace.
  uint64_t IdentityHash = 0;
  /// The hash as fixed-width hex (the .cmccjit/ subdirectory name).
  std::string identityHex() const;
};

/// Finds the host compiler per the discovery order above. The result is
/// not cached: callers (the artifact cache) hold onto it. Fails with a
/// message naming what was tried when no compiler is found.
Expected<Toolchain> detectToolchain();

/// True when detectToolchain() would succeed (the registry's
/// availability probe; cheap — a handful of stat calls, no exec).
bool toolchainAvailable();

} // namespace njit
} // namespace cmcc

#endif // CMCC_BACKENDS_NJIT_TOOLCHAIN_H
