//===- backends/njit/Toolchain.cpp ----------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "backends/njit/Toolchain.h"
#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

using namespace cmcc;
using namespace cmcc::njit;

namespace {

uint64_t fnv1a(uint64_t H, const std::string &Text) {
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

/// Stat-based executable check (no exec).
bool isExecutableFile(const std::string &Path, struct stat *St) {
  return ::stat(Path.c_str(), St) == 0 && S_ISREG(St->st_mode) &&
         ::access(Path.c_str(), X_OK) == 0;
}

/// Resolves \p Command to an absolute executable path: used verbatim
/// when it contains a '/', otherwise searched along PATH.
std::string resolveExecutable(const std::string &Command, struct stat *St) {
  if (Command.empty())
    return "";
  if (Command.find('/') != std::string::npos)
    return isExecutableFile(Command, St) ? Command : "";
  const char *PathEnv = std::getenv("PATH");
  if (!PathEnv)
    return "";
  std::string Paths = PathEnv;
  size_t Begin = 0;
  while (Begin <= Paths.size()) {
    size_t End = Paths.find(':', Begin);
    if (End == std::string::npos)
      End = Paths.size();
    std::string Dir = Paths.substr(Begin, End - Begin);
    if (!Dir.empty()) {
      std::string Candidate = Dir + "/" + Command;
      if (isExecutableFile(Candidate, St))
        return Candidate;
    }
    Begin = End + 1;
  }
  return "";
}

Expected<Toolchain> makeToolchain(const std::string &Resolved,
                                  const struct stat &St) {
  Toolchain TC;
  TC.Compiler = Resolved;
  // Identity: resolved path + size + mtime + flags + emitter version.
  // Replacing the compiler binary (new mtime/size) or changing the
  // flags/emitter re-namespaces every artifact; nothing stale can be
  // dlopen'd by accident.
  uint64_t H = 1469598103934665603ull;
  H = fnv1a(H, Resolved);
  H = fnv1a(H, std::to_string(static_cast<long long>(St.st_size)));
  H = fnv1a(H, std::to_string(static_cast<long long>(St.st_mtime)));
  H = fnv1a(H, CompileFlags);
  H = fnv1a(H, std::to_string(EmitterVersion));
  TC.IdentityHash = H;
  return TC;
}

} // namespace

std::string Toolchain::identityHex() const {
  char Buffer[20];
  std::snprintf(Buffer, sizeof(Buffer), "%016llx",
                static_cast<unsigned long long>(IdentityHash));
  return Buffer;
}

Expected<Toolchain> cmcc::njit::detectToolchain() {
  struct stat St;
  // CMCC_NJIT_CC is authoritative: a broken value means "unavailable",
  // never a silent fallback to another compiler.
  if (const char *Env = std::getenv("CMCC_NJIT_CC")) {
    std::string Resolved = resolveExecutable(Env, &St);
    if (Resolved.empty())
      return makeError(std::string("njit: CMCC_NJIT_CC='") + Env +
                       "' is not an executable");
    return makeToolchain(Resolved, St);
  }

  std::vector<std::string> Candidates;
#ifdef CMCC_HOST_CXX
  Candidates.push_back(CMCC_HOST_CXX); // The compiler that built us.
#endif
  Candidates.push_back("c++");
  Candidates.push_back("g++");
  Candidates.push_back("clang++");

  std::string Tried;
  for (const std::string &C : Candidates) {
    std::string Resolved = resolveExecutable(C, &St);
    if (!Resolved.empty())
      return makeToolchain(Resolved, St);
    Tried += Tried.empty() ? C : ", " + C;
  }
  return makeError("njit: no host C++ compiler found (tried " + Tried +
                   "; set CMCC_NJIT_CC)");
}

bool cmcc::njit::toolchainAvailable() {
  Expected<Toolchain> TC = detectToolchain();
  return static_cast<bool>(TC);
}
