//===- backends/njit/ArtifactCache.cpp ------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "backends/njit/ArtifactCache.h"
#include "core/PlanFingerprint.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/FaultInjection.h"
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dlfcn.h>
#include <fstream>
#include <iterator>
#include <sys/stat.h>
#include <unistd.h>

using namespace cmcc;
using namespace cmcc::njit;

namespace {

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISREG(St.st_mode);
}

/// mkdir -p: creates every missing component of \p Dir.
Error makeDirs(const std::string &Dir) {
  std::string Partial;
  size_t Begin = 0;
  while (Begin <= Dir.size()) {
    size_t End = Dir.find('/', Begin);
    if (End == std::string::npos)
      End = Dir.size();
    Partial.append(Dir, Begin, End - Begin);
    if (!Partial.empty() && ::mkdir(Partial.c_str(), 0755) != 0 &&
        errno != EEXIST)
      return makeError("njit: cannot create '" + Partial +
                       "': " + std::strerror(errno));
    Partial += '/';
    Begin = End + 1;
  }
  return Error::success();
}

/// Writes \p Text to \p Path via a process-unique temporary and an
/// atomic rename, so a concurrent reader never sees a torn file.
Error writeFileAtomic(const std::string &Path, const std::string &Text) {
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return makeError("njit: cannot write '" + Tmp +
                     "': " + std::strerror(errno));
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool Ok = Written == Text.size() && std::fclose(F) == 0;
  if (!Ok) {
    ::remove(Tmp.c_str());
    return makeError("njit: short write to '" + Tmp + "'");
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::remove(Tmp.c_str());
    return makeError("njit: cannot install '" + Path +
                     "': " + std::strerror(errno));
  }
  return Error::success();
}

/// Single-quotes \p S for a POSIX shell command line.
std::string shellQuote(const std::string &S) {
  std::string Out = "'";
  for (char C : S) {
    if (C == '\'')
      Out += "'\\''";
    else
      Out += C;
  }
  Out += "'";
  return Out;
}

} // namespace

ArtifactCache::ArtifactCache(Options Opts) : Opts(std::move(Opts)) {}

ArtifactCache::Counters ArtifactCache::counters() const {
  Counters C;
  C.MemHits = MemHits.load(std::memory_order_relaxed);
  C.DiskHits = DiskHits.load(std::memory_order_relaxed);
  C.DiskRejects = DiskRejects.load(std::memory_order_relaxed);
  C.Misses = Misses.load(std::memory_order_relaxed);
  C.Compiles = Compiles.load(std::memory_order_relaxed);
  return C;
}

Error ArtifactCache::ensureToolchain() {
  if (!ToolchainProbed) {
    TC = detectToolchain();
    ToolchainProbed = true;
  }
  if (!TC)
    return makeError(TC.error().message());
  return Error::success();
}

Expected<std::string> ArtifactCache::compilerPath() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Error E = ensureToolchain())
    return E;
  return TC->Compiler;
}

std::string ArtifactCache::artifactPath(uint64_t Fingerprint) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Error E = ensureToolchain()) {
    (void)E;
    return "";
  }
  return Opts.DiskDir + "/cc-" + TC->identityHex() + "/" +
         fingerprintHex(Fingerprint) + ".so";
}

Expected<Artifact> ArtifactCache::loadArtifact(
    const std::string &Path, const std::string &FingerprintHex) {
  CMCC_SPAN("njit.dlopen");
  // Validate the bytes on disk before dlopen: once a pathname is in the
  // process's link map, dlopen returns the cached mapping without ever
  // reopening the file, so post-dlopen symbol checks cannot see on-disk
  // damage. The ELF magic catches garbage and short writes; the
  // embedded fingerprint string catches a stale or mis-keyed object.
  {
    std::ifstream In(Path, std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    if (Bytes.size() < 64 || Bytes.compare(0, 4, "\x7f" "ELF") != 0)
      return makeError("njit: rejecting '" + Path +
                       "': not an ELF shared object");
    if (Bytes.find(FingerprintHex) == std::string::npos)
      return makeError("njit: rejecting '" + Path +
                       "': no fingerprint stamp " + FingerprintHex);
  }
  ::dlerror(); // Clear any stale error state.
  void *Handle = ::dlopen(Path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    const char *Why = ::dlerror();
    return makeError("njit: dlopen('" + Path +
                     "') failed: " + (Why ? Why : "unknown"));
  }
  // Validate before trusting: the stamp catches a mis-keyed or stale
  // artifact, the ABI check catches one built by an older emitter that
  // somehow survived the toolchain re-namespacing.
  auto Reject = [&](const std::string &Why) -> Expected<Artifact> {
    ::dlclose(Handle);
    return makeError("njit: rejecting '" + Path + "': " + Why);
  };
  const int *Abi = reinterpret_cast<const int *>(::dlsym(Handle, AbiSymbol));
  if (!Abi)
    return Reject(std::string("missing ") + AbiSymbol);
  if (*Abi != KernelAbiVersion)
    return Reject("kernel ABI v" + std::to_string(*Abi) + ", expected v" +
                  std::to_string(KernelAbiVersion));
  const char *Stamp =
      reinterpret_cast<const char *>(::dlsym(Handle, FingerprintSymbol));
  if (!Stamp)
    return Reject(std::string("missing ") + FingerprintSymbol);
  if (FingerprintHex != Stamp)
    return Reject("fingerprint stamp " + std::string(Stamp) + " != " +
                  FingerprintHex);
  void *Sym = ::dlsym(Handle, KernelSymbol);
  if (!Sym)
    return Reject(std::string("missing ") + KernelSymbol);
  Artifact A;
  A.Kernel = reinterpret_cast<KernelFn>(Sym);
  return A;
}

Error ArtifactCache::compileArtifact(uint64_t Fingerprint,
                                     const StencilSpec &Spec,
                                     const std::string &Path) {
  const std::string FpHex = fingerprintHex(Fingerprint);
  const std::string Stem = Path.substr(0, Path.size() - 3); // Drop ".so".
  const std::string SrcPath = Stem + ".cpp";
  const std::string LogPath = Stem + ".log";

  std::string Source;
  {
    CMCC_SPAN("njit.emit");
    Source = emitKernelSource(Spec, FpHex);
  }
  if (Error E = makeDirs(Path.substr(0, Path.rfind('/'))))
    return E;
  // The .cpp is kept beside the .so for inspection (TUTORIAL §12).
  if (Error E = writeFileAtomic(SrcPath, Source))
    return E;

  if (fault::probe("njit.cc"))
    return fault::injectedFault("njit.cc");

  const std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  const std::string Cmd = shellQuote(TC->Compiler) + " " + CompileFlags +
                          " -o " + shellQuote(Tmp) + " " +
                          shellQuote(SrcPath) + " 2> " + shellQuote(LogPath);
  Compiles.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::process().counter("njit.compiles").add(1);
  int Rc;
  {
    CMCC_SPAN("njit.cc");
    obs::ScopedLatencyUs Latency(
        obs::Registry::process().histogram("njit.compile_us"));
    Rc = std::system(Cmd.c_str());
  }
  if (Rc != 0) {
    ::remove(Tmp.c_str());
    // Transient: the toolchain may be momentarily broken (or a fault
    // drill); the service's ladder retries, then falls back to cm2.
    return Error::transient("njit: compile failed (status " +
                            std::to_string(Rc) + ") for plan " + FpHex +
                            "; see " + LogPath);
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::remove(Tmp.c_str());
    return makeError("njit: cannot install '" + Path +
                     "': " + std::strerror(errno));
  }
  return Error::success();
}

Expected<Artifact> ArtifactCache::lookup(uint64_t Fingerprint,
                                         const StencilSpec &Spec) {
  obs::Registry &Obs = obs::Registry::process();
  std::lock_guard<std::mutex> Lock(Mutex);

  auto It = Table.find(Fingerprint);
  if (It != Table.end()) {
    MemHits.fetch_add(1, std::memory_order_relaxed);
    Obs.counter("njit.cache.mem_hits").add(1);
    return It->second;
  }

  if (Error E = ensureToolchain())
    return E;

  const std::string FpHex = fingerprintHex(Fingerprint);
  const std::string Path =
      Opts.DiskDir + "/cc-" + TC->identityHex() + "/" + FpHex + ".so";

  if (fileExists(Path)) {
    Expected<Artifact> A = loadArtifact(Path, FpHex);
    if (A) {
      DiskHits.fetch_add(1, std::memory_order_relaxed);
      Obs.counter("njit.cache.disk_hits").add(1);
      Table.emplace(Fingerprint, *A);
      return *A;
    }
    // Corrupt / truncated / mis-stamped: count, evict, recompile fresh.
    DiskRejects.fetch_add(1, std::memory_order_relaxed);
    Obs.counter("njit.cache.disk_rejects").add(1);
    ::remove(Path.c_str());
  }

  Misses.fetch_add(1, std::memory_order_relaxed);
  Obs.counter("njit.cache.misses").add(1);
  if (Error E = compileArtifact(Fingerprint, Spec, Path))
    return E;
  Expected<Artifact> A = loadArtifact(Path, FpHex);
  if (!A)
    return makeError("njit: freshly built artifact unusable: " +
                     A.error().message());
  Table.emplace(Fingerprint, *A);
  return *A;
}
