//===- backends/njit/ArtifactCache.h - Compiled-kernel cache --*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-tier cache of njit-compiled kernels, mirroring the serving
/// layer's PlanCache shape: an in-memory handle table in front of an
/// on-disk artifact directory, both keyed by plan fingerprint.
///
///   memory   fingerprint -> dlopen handle + extracted kernel pointer
///   disk     <dir>/cc-<toolchain-hash>/<fingerprint-hex>.so
///            (the emitted .cpp is kept beside it for inspection)
///
/// The disk key folds in the *toolchain identity* (resolved compiler
/// path + size + mtime + flags + emitter version — see Toolchain.h), so
/// artifacts built by a different compiler, different flags, or an
/// older emitter are simply invisible, never mis-loaded. A warm service
/// restart therefore pays zero toolchain invocations: every lookup is a
/// stat + dlopen.
///
/// Robustness: a truncated, corrupt, or tampered .so on disk fails
/// dlopen or the post-load checks (missing kernel symbol, ABI-version
/// mismatch, fingerprint-stamp mismatch) and is counted as DiskRejects,
/// then recompiled fresh — never a crash, never a stale result
/// (tests/njit_test corrupts artifacts on purpose).
///
/// Handles are never dlclose'd: a kernel pointer may be executing on a
/// pool thread with no lifetime tie to the cache entry, and the table
/// is bounded by the number of distinct plans (the PlanCache already
/// bounds what the service keeps hot).
///
/// Fault sites: `njit.cc` fires as a failed toolchain invocation
/// (transient — the service's retry/fallback ladder handles it), and
/// `plancache`-style disk probes are not duplicated here because a bad
/// artifact already exercises the reject path.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_BACKENDS_NJIT_ARTIFACTCACHE_H
#define CMCC_BACKENDS_NJIT_ARTIFACTCACHE_H

#include "backends/njit/Emitter.h"
#include "backends/njit/Toolchain.h"
#include "stencil/StencilSpec.h"
#include "support/Error.h"
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace cmcc {
namespace njit {

/// One loaded kernel.
struct Artifact {
  KernelFn Kernel = nullptr;
};

/// The two-tier kernel cache for one artifact directory.
class ArtifactCache {
public:
  struct Options {
    /// Root of the on-disk tier (created on first compile). Artifacts
    /// live in a per-toolchain subdirectory under it.
    std::string DiskDir = ".cmccjit";
  };

  /// Monotonic counters (relaxed reads; the same shape as
  /// PlanCache::Counters so dashboards line up).
  struct Counters {
    long MemHits = 0;     ///< In-memory handle-table hits.
    long DiskHits = 0;    ///< dlopen'd from disk, all checks passed.
    long DiskRejects = 0; ///< Disk artifact present but unloadable/wrong.
    long Misses = 0;      ///< Neither tier had a usable kernel.
    long Compiles = 0;    ///< Toolchain invocations (the warm path's zero).
  };

  explicit ArtifactCache(Options Opts);

  /// Returns the kernel for \p Fingerprint / \p Spec, consulting memory,
  /// then disk, then emitting + compiling + dlopen'ing. Thread-safe; a
  /// compile is performed at most once per fingerprint per process (the
  /// table mutex doubles as compile dedup — compiles are rare and
  /// front-loaded, exactly like the service's plan compiles).
  Expected<Artifact> lookup(uint64_t Fingerprint, const StencilSpec &Spec);

  Counters counters() const;

  const Options &options() const { return Opts; }

  /// The detected toolchain's resolved compiler path, or the detection
  /// failure. Detection is lazy and cached (stat-only, no exec).
  Expected<std::string> compilerPath();

  /// Where \p Fingerprint's shared object lives on disk (empty until
  /// the toolchain has been detected). Exposed for tests and for the
  /// TUTORIAL's inspect-the-artifact walkthrough.
  std::string artifactPath(uint64_t Fingerprint);

private:
  /// Detects and memoizes the toolchain under Mutex.
  Error ensureToolchain();
  /// dlopen + symbol/ABI/fingerprint checks. Counts nothing itself.
  Expected<Artifact> loadArtifact(const std::string &Path,
                                  const std::string &FingerprintHex);
  /// Emit, shell out to the compiler, atomically install the .so.
  Error compileArtifact(uint64_t Fingerprint, const StencilSpec &Spec,
                        const std::string &Path);

  Options Opts;
  std::mutex Mutex;
  bool ToolchainProbed = false;
  Expected<Toolchain> TC{makeError("njit: toolchain not probed yet")};
  std::unordered_map<uint64_t, Artifact> Table;

  mutable std::atomic<long> MemHits{0}, DiskHits{0}, DiskRejects{0},
      Misses{0}, Compiles{0};
};

} // namespace njit
} // namespace cmcc

#endif // CMCC_BACKENDS_NJIT_ARTIFACTCACHE_H
