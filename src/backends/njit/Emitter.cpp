//===- backends/njit/Emitter.cpp ------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "backends/njit/Emitter.h"
#include "backends/njit/Toolchain.h"
#include <cstdio>

using namespace cmcc;
using namespace cmcc::njit;

namespace {

/// Exact float literal: hex-float round-trips every finite value
/// bit-for-bit through any conforming compiler.
std::string exactFloat(float V) {
  char Buffer[48];
  std::snprintf(Buffer, sizeof(Buffer), "%af", static_cast<double>(V));
  return Buffer;
}

std::string tapIndex(size_t I) { return std::to_string(I); }

} // namespace

std::string cmcc::njit::emitKernelSource(const StencilSpec &Spec,
                                         const std::string &FingerprintHex) {
  std::string Out;
  Out += "// cmcc njit kernel (emitter v" + std::to_string(EmitterVersion) +
         ", abi v" + std::to_string(KernelAbiVersion) + ")\n";
  Out += "// plan " + FingerprintHex + ": " + Spec.str() + "\n";
  Out += "// Each term is rounded separately (compiled with "
         "-ffp-contract=off);\n"
         "// the accumulation chain matches the native backend bit for "
         "bit.\n\n";
  Out += "extern \"C\" const char cmcc_njit_fingerprint[] = \"" +
         FingerprintHex + "\";\n";
  Out += "extern \"C\" const int cmcc_njit_abi = " +
         std::to_string(KernelAbiVersion) + ";\n\n";
  Out += "extern \"C\" void cmcc_njit_kernel(\n"
         "    float *__restrict__ Out, long OutStride,\n"
         "    const float *const *TapSrc, const long *TapSrcStride,\n"
         "    const float *const *TapCoeff, const long *TapCoeffStride,\n"
         "    long RowBegin, long RowEnd, long Cols) {\n";

  // Hoist every live tap slot into a named local once.
  for (size_t I = 0; I != Spec.Taps.size(); ++I) {
    const Tap &T = Spec.Taps[I];
    const std::string N = tapIndex(I);
    if (T.HasData) {
      Out += "  const float *const S" + N + " = TapSrc[" + N + "];\n";
      Out += "  const long SS" + N + " = TapSrcStride[" + N + "];\n";
    }
    if (T.Coeff.isArray()) {
      Out += "  const float *const C" + N + " = TapCoeff[" + N + "];\n";
      Out += "  const long CS" + N + " = TapCoeffStride[" + N + "];\n";
    }
  }
  Out += "  for (long R = RowBegin; R != RowEnd; ++R) {\n";
  Out += "    float *__restrict__ O = Out + R * OutStride;\n";
  for (size_t I = 0; I != Spec.Taps.size(); ++I) {
    const Tap &T = Spec.Taps[I];
    const std::string N = tapIndex(I);
    if (T.HasData)
      Out += "    const float *const P" + N + " = S" + N + " + R * SS" + N +
             ";\n";
    if (T.Coeff.isArray())
      Out += "    const float *const Q" + N + " = C" + N + " + R * CS" + N +
             ";\n";
  }
  Out += "    for (long J = 0; J != Cols; ++J) {\n";
  Out += "      float Acc = 0.0f;\n";
  for (size_t I = 0; I != Spec.Taps.size(); ++I) {
    const Tap &T = Spec.Taps[I];
    const std::string N = tapIndex(I);
    const bool Negative = T.Sign < 0.0;
    std::string Term;
    if (T.HasData) {
      if (T.Coeff.isArray()) {
        // Data * (Sign * Coeff): multiplying by ±1.0f is exact, so the
        // sign folds into a negation (or vanishes) symbolically.
        Term = "P" + N + "[J] * " +
               (Negative ? "(-Q" + N + "[J])" : "Q" + N + "[J]");
      } else {
        // Scalar coefficient: the native backend folds
        // float(Sign) * float(Value) once at run time; fold the same
        // float product here, at emit time, into an exact literal.
        float Imm = static_cast<float>(T.Sign) *
                    static_cast<float>(T.Coeff.Value);
        Term = "P" + N + "[J] * " + exactFloat(Imm);
      }
    } else if (T.Coeff.isArray()) {
      // Bare array-coefficient term (the paper's "c"): the FPU
      // multiplies by the exact 1.0 register.
      Term = Negative ? "(-Q" + N + "[J])" : "Q" + N + "[J]";
    } else {
      float Imm =
          static_cast<float>(T.Sign) * static_cast<float>(T.Coeff.Value);
      Term = exactFloat(Imm);
    }
    Out += "      Acc += " + Term + ";\n";
  }
  Out += "      O[J] = Acc;\n";
  Out += "    }\n";
  Out += "  }\n";
  Out += "}\n";
  return Out;
}
