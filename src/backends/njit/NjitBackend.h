//===- backends/njit/NjitBackend.h - JIT-specialized backend --*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third execution backend: instead of *interpreting* the
/// recognized StencilSpec (native) or simulating the CM-2 (cm2), each
/// recognized stencil is lowered to plan-specialized C++ — coefficients
/// constant-folded, tap chain fully unrolled, hot loop branch-free —
/// compiled out of process by the host toolchain, and dlopen'd. The
/// modern analogue of the paper's "compile once, run at machine speed"
/// bargain: the paper pays a sequencer-microcode compile per stencil,
/// njit pays one cc invocation per plan fingerprint, and both amortize
/// it over every subsequent run through a cache keyed by the plan.
///
/// Everything around the kernel is shared with the native backend: the
/// §5.1 halo-exchange protocol, the row-tiled thread-pool dispatch, the
/// resolveStencilArguments validation, and the wall-clock TimingReport.
/// The kernel computes the identical sequence of rounded float
/// operations (emitted and compiled with -ffp-contract=off), so njit
/// results are bitwise equal to native and inherit native's ≤1-ulp
/// contract with cm2 (backend_equivalence_test runs all three).
///
/// Failure semantics: no usable host compiler, a broken CMCC_NJIT_CC,
/// or a failing toolchain invocation (the `njit.cc` fault site) surface
/// as *transient* errors from run(), so a StencilService routes the job
/// down its PR-5 ladder — retry, then a counted fallback to cm2 — and
/// the caller still gets an answer.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_BACKENDS_NJIT_NJITBACKEND_H
#define CMCC_BACKENDS_NJIT_NJITBACKEND_H

#include "backends/njit/ArtifactCache.h"
#include "runtime/Backend.h"
#include "runtime/HaloTransport.h"
#include "runtime/Partition.h"

namespace cmcc {

/// Plan-specialized JIT execution of compiled stencils.
class NjitBackend : public ExecutionBackend {
public:
  struct Options {
    /// Same tiling/pool/corner options as the native backend — the
    /// dispatch around the kernel is identical machinery.
    bool AllowCornerSkip = true;
    int ThreadCount = 0;
    int RowsPerTile = 32;
    /// Artifact-cache root. Empty means CMCC_NJIT_CACHE_DIR from the
    /// environment, or ".cmccjit" (beside ".cmccode", the plan cache).
    std::string CacheDir;
    /// When set, this backend runs one shard's block of a larger node
    /// grid; block-edge halo traffic moves through Transport. Null runs
    /// the whole grid in-process.
    const PartitionDomain *Domain = nullptr;
    HaloTransport *Transport = nullptr;
  };

  explicit NjitBackend(const MachineConfig &Config)
      : NjitBackend(Config, Options()) {}
  NjitBackend(const MachineConfig &Config, Options Opts);

  const char *name() const override { return "njit"; }
  bool reportsWallClock() const override { return true; }

  // Re-expose the base class's int-Iterations convenience overloads
  // (hidden by the RunOptions overrides).
  using ExecutionBackend::run;
  using ExecutionBackend::runResolved;
  using ExecutionBackend::timeOnly;

  /// Looks up (or emits + compiles + loads) the plan's kernel, then
  /// runs it under the native backend's halo/tiling protocol. Reports
  /// measured wall-clock seconds per iteration; the JIT cost is *not*
  /// in the report — it is a per-plan cost, visible in the
  /// njit.compile_us histogram and in a service's cold-submit latency.
  Expected<TimingReport>
  runResolved(const CompiledStencil &Compiled,
              const ResolvedStencilArguments &Resolved,
              const RunOptions &RO) const override;

  /// Measures a real run over deterministically filled scratch arrays,
  /// exactly like the native backend.
  Expected<TimingReport> timeOnly(const CompiledStencil &Compiled, int SubRows,
                                  int SubCols,
                                  const RunOptions &RO) const override;

  const MachineConfig &machine() const override { return Config; }
  const Options &options() const { return Opts; }

  /// The backend's kernel cache (tests assert its counters; the
  /// warm-restart drill asserts Compiles stays zero).
  njit::ArtifactCache &cache() const { return Cache; }

private:
  MachineConfig Config;
  Options Opts;
  mutable njit::ArtifactCache Cache;
};

} // namespace cmcc

#endif // CMCC_BACKENDS_NJIT_NJITBACKEND_H
