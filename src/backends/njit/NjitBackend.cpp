//===- backends/njit/NjitBackend.cpp --------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "backends/njit/NjitBackend.h"
#include "core/PlanFingerprint.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/HaloExchange.h"
#include "runtime/TimeTile.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <memory>

using namespace cmcc;

namespace {

njit::ArtifactCache::Options cacheOptions(const NjitBackend::Options &Opts) {
  njit::ArtifactCache::Options CO;
  if (!Opts.CacheDir.empty())
    CO.DiskDir = Opts.CacheDir;
  else if (const char *Env = std::getenv("CMCC_NJIT_CACHE_DIR"))
    CO.DiskDir = Env;
  return CO;
}

} // namespace

NjitBackend::NjitBackend(const MachineConfig &Config, Options Opts)
    : Config(Config), Opts(Opts), Cache(cacheOptions(Opts)) {}

Expected<TimingReport>
NjitBackend::runResolved(const CompiledStencil &Compiled,
                         const ResolvedStencilArguments &Resolved,
                         const RunOptions &RO) const {
  CMCC_SPAN("backend.njit.run");
  if (fault::probe("backend.njit.run"))
    return fault::injectedFault("backend.njit.run");
  static obs::Counter &Runs =
      obs::Registry::process().counter("backend.njit.runs");
  static obs::Histogram &RunHostUs =
      obs::Registry::process().histogram("backend.njit.run_host_us");
  Runs.add(1);
  obs::ScopedLatencyUs RunTimer(RunHostUs);
  assert(RO.Iterations > 0 && "iteration count must be positive");

  const StencilSpec &Spec = Compiled.Spec;

  // The kernel is a per-plan artifact, resolved before the timed
  // region. An unusable toolchain is reported transient so a serving
  // layer degrades to cm2 instead of failing the job.
  const uint64_t Fingerprint = planFingerprint(Spec, Config, "njit");
  Expected<njit::Artifact> Kernel = Cache.lookup(Fingerprint, Spec);
  if (!Kernel)
    return Kernel.error().isTransient()
               ? Kernel.error()
               : Error::transient(Kernel.error().message());

  const int SubRows = Resolved.Result->subRows();
  const int SubCols = Resolved.Result->subCols();
  const NodeGrid &Grid = Resolved.Result->grid();
  const int K = RO.TimeTile;
  if (Error E = timetile::validateTimeTile(Spec, K, SubRows, SubCols))
    return E;
  const int Radius = Spec.borderWidths().maximum();
  const int Border = K * Radius;
  const int CoeffBorder = (K - 1) * Radius;

  std::unique_ptr<ThreadPool> PrivatePool;
  ThreadPool *Pool;
  if (Opts.ThreadCount == 0) {
    Pool = &ThreadPool::shared();
  } else {
    PrivatePool = std::make_unique<ThreadPool>(Opts.ThreadCount);
    Pool = PrivatePool.get();
  }

  const auto Start = std::chrono::steady_clock::now();

  // Same exchange protocol as the other backends (runtime/TimeTile.h
  // documents the widened tiled form; the kernel is geometry-oblivious
  // — bases, strides, and widths are call operands — so the same
  // artifact drives untiled runs, intermediate extended rectangles,
  // and the final step).
  const bool FetchCorners =
      K > 1 || Spec.needsCornerData() || !Opts.AllowCornerSkip;
  auto Exchange = [&](const DistributedArray &A, int SourceIndex,
                      int B) -> Expected<std::vector<Array2D>> {
    if (fault::probe("halo.exchange"))
      return fault::injectedFault("halo.exchange");
    if (Opts.Domain)
      return exchangeHalosPartitioned(A, *Opts.Domain, Opts.Transport,
                                      SourceIndex, B, Spec.BoundaryDim1,
                                      Spec.BoundaryDim2, FetchCorners, Pool);
    return exchangeHalos(A, B, Spec.BoundaryDim1, Spec.BoundaryDim2,
                         FetchCorners, Pool);
  };
  std::vector<std::vector<Array2D>> PaddedBySource;
  std::vector<std::vector<Array2D>> CoeffPadded;
  std::vector<int> TapCoeffOrdinal(Spec.Taps.size(), -1);
  {
    CMCC_SPAN("backend.njit.halo_exchange");
    PaddedBySource.reserve(Spec.sourceCount());
    for (int S = 0; S != Spec.sourceCount(); ++S) {
      Expected<std::vector<Array2D>> Padded =
          Exchange(*Resolved.Sources[S], S, Border);
      if (!Padded)
        return Padded.error();
      PaddedBySource.push_back(std::move(*Padded));
    }
    if (K > 1) {
      // Distinct coefficient arrays, by name in first-appearance tap
      // order (deterministic across shard workers), padded to the
      // deepest intermediate extension.
      const std::vector<std::string> Names = Spec.coefficientArrayNames();
      for (size_t I = 0; I != Spec.Taps.size(); ++I)
        if (Spec.Taps[I].Coeff.isArray())
          TapCoeffOrdinal[I] = static_cast<int>(
              std::find(Names.begin(), Names.end(), Spec.Taps[I].Coeff.Name) -
              Names.begin());
      CoeffPadded.resize(Names.size());
      for (size_t N = 0; N != Names.size(); ++N) {
        const DistributedArray *C = nullptr;
        for (size_t I = 0; I != Spec.Taps.size(); ++I)
          if (TapCoeffOrdinal[I] == static_cast<int>(N)) {
            C = Resolved.TapCoefficients[I];
            break;
          }
        assert(C && "coefficient name resolved to no array");
        Expected<std::vector<Array2D>> Padded =
            Exchange(*C, Spec.sourceCount() + static_cast<int>(N),
                     CoeffBorder);
        if (!Padded)
          return Padded.error();
        CoeffPadded[N] = std::move(*Padded);
      }
    }
  }

  {
    CMCC_SPAN("njit.run");
    const int RowsPerTile = std::max(1, Opts.RowsPerTile);
    const size_t TapCount = Spec.Taps.size();

    // One kernel pass over the POut-extended rectangle of every node
    // (POut == 0 with Out == nullptr is the classic untiled run and
    // the final tiled step).
    auto KernelPass = [&](const std::vector<Array2D> *In,
                          std::vector<Array2D> *Out, bool PaddedCoeffs,
                          int POut) {
      const int ExtRows = SubRows + 2 * POut;
      const int ExtCols = SubCols + 2 * POut;
      const int TilesPerNode = (ExtRows + RowsPerTile - 1) / RowsPerTile;
      Pool->parallelFor(Grid.nodeCount() * TilesPerNode, [&](int Task) {
        const int NodeId = Task / TilesPerNode;
        const NodeCoord Node = Grid.coordOf(NodeId);
        const int RowBegin = (Task % TilesPerNode) * RowsPerTile;
        const int RowEnd = std::min(ExtRows, RowBegin + RowsPerTile);

        // Pre-resolved operand slots, indexed by tap: bases already
        // offset so the kernel does no offset arithmetic. Slots the
        // emitted code hard-coded away are never read.
        std::vector<const float *> TapSrc(TapCount, nullptr);
        std::vector<long> TapSrcStride(TapCount, 0);
        std::vector<const float *> TapCoeff(TapCount, nullptr);
        std::vector<long> TapCoeffStride(TapCount, 0);
        for (size_t I = 0; I != TapCount; ++I) {
          const Tap &T = Spec.Taps[I];
          if (T.HasData) {
            const Array2D &Padded =
                In ? (*In)[static_cast<size_t>(NodeId)]
                   : PaddedBySource[T.SourceIndex][NodeId];
            TapSrcStride[I] = Padded.cols();
            TapSrc[I] = Padded.data() +
                        static_cast<size_t>(Border - POut + T.At.Dy) *
                            Padded.cols() +
                        Border - POut + T.At.Dx;
          }
          if (Resolved.TapCoefficients[I]) {
            if (PaddedCoeffs) {
              const Array2D &Sub =
                  CoeffPadded[static_cast<size_t>(TapCoeffOrdinal[I])]
                             [static_cast<size_t>(NodeId)];
              TapCoeffStride[I] = Sub.cols();
              TapCoeff[I] = Sub.data() +
                            static_cast<size_t>(CoeffBorder - POut) *
                                Sub.cols() +
                            CoeffBorder - POut;
            } else {
              const Array2D &Sub =
                  Resolved.TapCoefficients[I]->subgrid(Node);
              TapCoeff[I] = Sub.data();
              TapCoeffStride[I] = Sub.cols();
            }
          }
        }

        if (Out) {
          Array2D &O = (*Out)[static_cast<size_t>(NodeId)];
          float *Base = O.data() +
                        static_cast<size_t>(Border - POut) * O.cols() +
                        Border - POut;
          Kernel->Kernel(Base, O.cols(), TapSrc.data(), TapSrcStride.data(),
                         TapCoeff.data(), TapCoeffStride.data(), RowBegin,
                         RowEnd, ExtCols);
        } else {
          Array2D &Result = Resolved.Result->subgrid(Node);
          Kernel->Kernel(Result.data(), Result.cols(), TapSrc.data(),
                         TapSrcStride.data(), TapCoeff.data(),
                         TapCoeffStride.data(), RowBegin, RowEnd, ExtCols);
        }
      });
    };

    if (K == 1) {
      KernelPass(nullptr, nullptr, false, 0);
    } else {
      // K-1 intermediate steps through double-buffered wide scratch;
      // the parallelFor join between steps is the barrier.
      std::vector<Array2D> Buffers[2];
      for (auto &BufferSet : Buffers) {
        BufferSet.reserve(static_cast<size_t>(Grid.nodeCount()));
        for (int Id = 0; Id != Grid.nodeCount(); ++Id)
          BufferSet.emplace_back(SubRows + 2 * Border, SubCols + 2 * Border,
                                 std::numeric_limits<float>::quiet_NaN());
      }
      const bool AnyZero = Spec.BoundaryDim1 == BoundaryKind::Zero ||
                           Spec.BoundaryDim2 == BoundaryKind::Zero;
      for (int S = 1; S != K; ++S) {
        const int POut = (K - S) * Radius;
        std::vector<Array2D> *In =
            S == 1 ? &PaddedBySource[0] : &Buffers[S & 1];
        std::vector<Array2D> *Out = &Buffers[(S - 1) & 1];
        KernelPass(In, Out, true, POut);
        if (AnyZero) {
          Pool->parallelFor(Grid.nodeCount(), [&](int Id) {
            const NodeCoord Node = Grid.coordOf(Id);
            timetile::applyZeroMask(
                (*Out)[static_cast<size_t>(Id)], Border, POut, SubRows,
                SubCols, Spec.BoundaryDim1, Spec.BoundaryDim2,
                Opts.Domain ? Opts.Domain->globalRow(Node.Row) : Node.Row,
                Opts.Domain ? Opts.Domain->GlobalRows : Config.NodeRows,
                Opts.Domain ? Opts.Domain->globalCol(Node.Col) : Node.Col,
                Opts.Domain ? Opts.Domain->GlobalCols : Config.NodeCols);
          });
        }
      }
      KernelPass(&Buffers[(K - 2) & 1], nullptr, false, 0);
    }
  }

  const double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  TimingReport Report;
  Report.Iterations = RO.Iterations;
  Report.Nodes = Config.nodeCount();
  Report.ClockMHz = Config.ClockMHz;
  Report.HostSecondsPerIteration = Seconds;
  Report.UsefulFlopsPerNodePerIteration =
      static_cast<long>(Spec.usefulFlopsPerPoint()) * SubRows * SubCols *
      std::max(1, K);
  return Report;
}

Expected<TimingReport> NjitBackend::timeOnly(const CompiledStencil &Compiled,
                                             int SubRows, int SubCols,
                                             const RunOptions &RO) const {
  CMCC_SPAN("backend.njit.time_only");
  const StencilSpec &Spec = Compiled.Spec;
  const NodeGrid Grid(Config);

  // Scratch arrays, deterministically filled with the same seeds as the
  // native backend, so timeOnly results are comparable bit for bit.
  DistributedArray Result(Grid, SubRows, SubCols);
  std::vector<std::unique_ptr<DistributedArray>> Owned;
  auto MakeScratch = [&](uint64_t Seed) {
    Owned.push_back(std::make_unique<DistributedArray>(Grid, SubRows, SubCols));
    DistributedArray &A = *Owned.back();
    for (int Id = 0; Id != Grid.nodeCount(); ++Id)
      A.subgrid(Grid.coordOf(Id)).fillRandom(Seed * 7919 + Id);
    return &A;
  };

  StencilArguments Args;
  Args.Result = &Result;
  uint64_t Seed = 1;
  Args.Source = MakeScratch(Seed++);
  for (const std::string &Name : Spec.ExtraSources)
    Args.ExtraSources[Name] = MakeScratch(Seed++);
  for (const std::string &Name : Spec.coefficientArrayNames())
    Args.Coefficients[Name] = MakeScratch(Seed++);

  return run(Compiled, Args, RO);
}
