//===- backends/njit/NjitBackend.cpp --------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "backends/njit/NjitBackend.h"
#include "core/PlanFingerprint.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/HaloExchange.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>

using namespace cmcc;

namespace {

njit::ArtifactCache::Options cacheOptions(const NjitBackend::Options &Opts) {
  njit::ArtifactCache::Options CO;
  if (!Opts.CacheDir.empty())
    CO.DiskDir = Opts.CacheDir;
  else if (const char *Env = std::getenv("CMCC_NJIT_CACHE_DIR"))
    CO.DiskDir = Env;
  return CO;
}

} // namespace

NjitBackend::NjitBackend(const MachineConfig &Config, Options Opts)
    : Config(Config), Opts(Opts), Cache(cacheOptions(Opts)) {}

Expected<TimingReport>
NjitBackend::runResolved(const CompiledStencil &Compiled,
                         const ResolvedStencilArguments &Resolved,
                         int Iterations) const {
  CMCC_SPAN("backend.njit.run");
  if (fault::probe("backend.njit.run"))
    return fault::injectedFault("backend.njit.run");
  static obs::Counter &Runs =
      obs::Registry::process().counter("backend.njit.runs");
  static obs::Histogram &RunHostUs =
      obs::Registry::process().histogram("backend.njit.run_host_us");
  Runs.add(1);
  obs::ScopedLatencyUs RunTimer(RunHostUs);
  assert(Iterations > 0 && "iteration count must be positive");

  const StencilSpec &Spec = Compiled.Spec;

  // The kernel is a per-plan artifact, resolved before the timed
  // region. An unusable toolchain is reported transient so a serving
  // layer degrades to cm2 instead of failing the job.
  const uint64_t Fingerprint = planFingerprint(Spec, Config, "njit");
  Expected<njit::Artifact> Kernel = Cache.lookup(Fingerprint, Spec);
  if (!Kernel)
    return Kernel.error().isTransient()
               ? Kernel.error()
               : Error::transient(Kernel.error().message());

  const int SubRows = Resolved.Result->subRows();
  const int SubCols = Resolved.Result->subCols();
  const NodeGrid &Grid = Resolved.Result->grid();

  std::unique_ptr<ThreadPool> PrivatePool;
  ThreadPool *Pool;
  if (Opts.ThreadCount == 0) {
    Pool = &ThreadPool::shared();
  } else {
    PrivatePool = std::make_unique<ThreadPool>(Opts.ThreadCount);
    Pool = PrivatePool.get();
  }

  const auto Start = std::chrono::steady_clock::now();

  // Same §5.1 exchange protocol as the other backends.
  const int Border = Spec.borderWidths().maximum();
  const bool FetchCorners = Spec.needsCornerData() || !Opts.AllowCornerSkip;
  std::vector<std::vector<Array2D>> PaddedBySource;
  {
    CMCC_SPAN("backend.njit.halo_exchange");
    PaddedBySource.reserve(Spec.sourceCount());
    for (int S = 0; S != Spec.sourceCount(); ++S) {
      if (fault::probe("halo.exchange"))
        return fault::injectedFault("halo.exchange");
      if (Opts.Domain) {
        Expected<std::vector<Array2D>> Padded = exchangeHalosPartitioned(
            *Resolved.Sources[S], *Opts.Domain, Opts.Transport, S, Border,
            Spec.BoundaryDim1, Spec.BoundaryDim2, FetchCorners, Pool);
        if (!Padded)
          return Padded.error();
        PaddedBySource.push_back(std::move(*Padded));
      } else {
        PaddedBySource.push_back(exchangeHalos(*Resolved.Sources[S], Border,
                                               Spec.BoundaryDim1,
                                               Spec.BoundaryDim2, FetchCorners,
                                               Pool));
      }
    }
  }

  {
    CMCC_SPAN("njit.run");
    const int RowsPerTile = std::max(1, Opts.RowsPerTile);
    const int TilesPerNode = (SubRows + RowsPerTile - 1) / RowsPerTile;
    const size_t TapCount = Spec.Taps.size();
    Pool->parallelFor(Grid.nodeCount() * TilesPerNode, [&](int Task) {
      const NodeCoord Node = Grid.coordOf(Task / TilesPerNode);
      const int RowBegin = (Task % TilesPerNode) * RowsPerTile;
      const int RowEnd = std::min(SubRows, RowBegin + RowsPerTile);

      // Pre-resolved operand slots, indexed by tap: source bases
      // already offset to (Border + Dy, Border + Dx) of the padded
      // array, so the kernel does no offset arithmetic. Slots the
      // emitted code hard-coded away are never read.
      std::vector<const float *> TapSrc(TapCount, nullptr);
      std::vector<long> TapSrcStride(TapCount, 0);
      std::vector<const float *> TapCoeff(TapCount, nullptr);
      std::vector<long> TapCoeffStride(TapCount, 0);
      for (size_t I = 0; I != TapCount; ++I) {
        const Tap &T = Spec.Taps[I];
        if (T.HasData) {
          const Array2D &Padded =
              PaddedBySource[T.SourceIndex][Grid.nodeId(Node)];
          TapSrcStride[I] = Padded.cols();
          TapSrc[I] = Padded.data() +
                      static_cast<size_t>(Border + T.At.Dy) * Padded.cols() +
                      Border + T.At.Dx;
        }
        if (const DistributedArray *C = Resolved.TapCoefficients[I]) {
          const Array2D &Sub = C->subgrid(Node);
          TapCoeff[I] = Sub.data();
          TapCoeffStride[I] = Sub.cols();
        }
      }

      Array2D &Result = Resolved.Result->subgrid(Node);
      Kernel->Kernel(Result.data(), Result.cols(), TapSrc.data(),
                     TapSrcStride.data(), TapCoeff.data(),
                     TapCoeffStride.data(), RowBegin, RowEnd, SubCols);
    });
  }

  const double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  TimingReport Report;
  Report.Iterations = Iterations;
  Report.Nodes = Config.nodeCount();
  Report.ClockMHz = Config.ClockMHz;
  Report.HostSecondsPerIteration = Seconds;
  Report.UsefulFlopsPerNodePerIteration =
      static_cast<long>(Spec.usefulFlopsPerPoint()) * SubRows * SubCols;
  return Report;
}

Expected<TimingReport> NjitBackend::timeOnly(const CompiledStencil &Compiled,
                                             int SubRows, int SubCols,
                                             int Iterations) const {
  CMCC_SPAN("backend.njit.time_only");
  const StencilSpec &Spec = Compiled.Spec;
  const NodeGrid Grid(Config);

  // Scratch arrays, deterministically filled with the same seeds as the
  // native backend, so timeOnly results are comparable bit for bit.
  DistributedArray Result(Grid, SubRows, SubCols);
  std::vector<std::unique_ptr<DistributedArray>> Owned;
  auto MakeScratch = [&](uint64_t Seed) {
    Owned.push_back(std::make_unique<DistributedArray>(Grid, SubRows, SubCols));
    DistributedArray &A = *Owned.back();
    for (int Id = 0; Id != Grid.nodeCount(); ++Id)
      A.subgrid(Grid.coordOf(Id)).fillRandom(Seed * 7919 + Id);
    return &A;
  };

  StencilArguments Args;
  Args.Result = &Result;
  uint64_t Seed = 1;
  Args.Source = MakeScratch(Seed++);
  for (const std::string &Name : Spec.ExtraSources)
    Args.ExtraSources[Name] = MakeScratch(Seed++);
  for (const std::string &Name : Spec.coefficientArrayNames())
    Args.Coefficients[Name] = MakeScratch(Seed++);

  return run(Compiled, Args, Iterations);
}
