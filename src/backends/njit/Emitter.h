//===- backends/njit/Emitter.h - Plan-specialized C++ codegen -*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits the plan-specialized C++ a recognized stencil compiles to: the
/// modern analogue of the paper's generated sequencer microcode. Where
/// the generic native backend *interprets* the recognized spec — a loop
/// over taps, each tap a separate pass over the output row — the
/// emitted kernel is the spec turned into straight-line source:
///
///   * the tap chain is fully unrolled — one fused pass per row
///     computes `0.0f + term0 + term1 + ...` per point, the paper's
///     ring-buffered register access pattern with the ring flattened
///     into named locals;
///   * every scalar coefficient is constant-folded into the source as
///     an exact hex-float literal (the same `float(Sign) * float(Value)`
///     the native backend folds at run time);
///   * sign folding is done symbolically: `x * (-c)`, `x * c`, never a
///     multiply by a runtime ±1.0;
///   * the hot loop is branch-free and auto-vectorizable — the §5.1
///     halo protocol pads every source, so there is no boundary
///     interior/edge split left to make: the *whole subgrid* is
///     interior by construction, and the emitted nest says so.
///
/// Numerics contract: the emitted chain performs exactly the native
/// backend's sequence of rounded float operations (each product rounded
/// before its add; compiled with -ffp-contract=off), so njit results
/// are bitwise identical to native and inherit native's ≤ 1-ulp-per-term
/// agreement with the simulated cm2 FPU.
///
/// Kernel ABI (KernelAbiVersion): one extern "C" entry point computing
/// result rows [RowBegin, RowEnd) of one node's subgrid. Per-tap base
/// pointers arrive pre-resolved — source bases already offset to
/// (Border + Dy, Border + Dx) of the padded halo array — so the kernel
/// contains no offset arithmetic at all, only the unrolled chain.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_BACKENDS_NJIT_EMITTER_H
#define CMCC_BACKENDS_NJIT_EMITTER_H

#include "stencil/StencilSpec.h"
#include <string>

namespace cmcc {
namespace njit {

/// Bump together with Toolchain::EmitterVersion on any ABI change.
inline constexpr int KernelAbiVersion = 1;

/// The exported kernel's signature. Tap pointer/stride arrays are
/// indexed by StencilSpec tap order; slots a tap does not use are never
/// read (the emitted code hard-codes which slots exist).
using KernelFn = void (*)(float *Out, long OutStride,
                          const float *const *TapSrc, const long *TapSrcStride,
                          const float *const *TapCoeff,
                          const long *TapCoeffStride, long RowBegin,
                          long RowEnd, long Cols);

/// Symbol names the emitted shared object exports.
inline constexpr const char *KernelSymbol = "cmcc_njit_kernel";
inline constexpr const char *FingerprintSymbol = "cmcc_njit_fingerprint";
inline constexpr const char *AbiSymbol = "cmcc_njit_abi";

/// Renders the specialized kernel source for \p Spec. \p FingerprintHex
/// is stamped into the artifact (and checked after dlopen) so a
/// corrupted or mis-keyed .so can never serve the wrong plan.
std::string emitKernelSource(const StencilSpec &Spec,
                             const std::string &FingerprintHex);

} // namespace njit
} // namespace cmcc

#endif // CMCC_BACKENDS_NJIT_EMITTER_H
