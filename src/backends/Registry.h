//===- backends/Registry.h - Backend lookup by name -----------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name-to-backend construction for everything above the seam: the
/// serving layer routes per-backend, the tools expose --backend= and
/// --list-backends, and tests/benches enumerate what exists.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_BACKENDS_REGISTRY_H
#define CMCC_BACKENDS_REGISTRY_H

#include "runtime/Backend.h"
#include "runtime/Executor.h"
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cmcc {

/// Names of all execution backends, sorted — a stable presentation
/// order for --list-backends and for diagnostics.
std::vector<std::string> availableBackendNames();

/// True if \p Name names a backend createBackend can build.
bool isBackendName(std::string_view Name);

/// True if \p Name is usable *right now* on this host. Registration and
/// availability are distinct: njit is always registered but needs a
/// host C++ compiler (see njit/Toolchain.h); cm2 and native are always
/// available. Unavailable backends still construct — their run()
/// reports the failure (transiently, so a service can fall back).
bool isBackendAvailable(std::string_view Name);

/// The diagnostic for a --backend= value that names no backend: spells
/// out what was given and every registered name, so callers never
/// hand-roll (and let drift) their own list.
Error unknownBackendError(std::string_view Name);

/// Builds the backend \p Name executes for \p Config. The simulated
/// backend honors \p ExecOpts wholesale; the native and njit backends
/// adopt the knobs that translate (corner skip, thread count, the
/// partition domain/transport seam). Returns null for an unknown name —
/// callers validate with isBackendName first and diagnose with
/// unknownBackendError.
std::unique_ptr<ExecutionBackend>
createBackend(std::string_view Name, const MachineConfig &Config,
              const Executor::Options &ExecOpts = {});

} // namespace cmcc

#endif // CMCC_BACKENDS_REGISTRY_H
