//===- fortran/Lexer.h - Free-form Fortran lexer --------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for the free-form Fortran 90 subset. Handles '!' comments, '&'
/// line continuations (with the optional leading '&' on the continued
/// line), case-insensitive keywords, and integer/real literals.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_FORTRAN_LEXER_H
#define CMCC_FORTRAN_LEXER_H

#include "fortran/Token.h"
#include "support/Diagnostic.h"
#include <string_view>
#include <vector>

namespace cmcc {
namespace fortran {

/// Converts a source buffer into a token stream.
///
/// The lexer is run eagerly; lexical errors (bad characters, malformed
/// literals) are reported through the DiagnosticEngine and the offending
/// character skipped, so the parser always sees a well-formed stream that
/// ends with EndOfFile.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  /// Lexes the whole buffer. Consecutive statement separators are
  /// collapsed; an EndOfFile token is always last.
  std::vector<Token> lexAll();

private:
  Token lexToken();
  Token makeToken(TokenKind Kind, SourceLocation Loc, std::string Spelling);
  Token lexNumber();
  Token lexIdentifier();
  Token lexDirective();
  /// True when the upcoming comment is a "!CMCC$" directive.
  bool isDirectiveAhead() const;
  void skipHorizontalSpaceAndComments();
  /// Consumes a '&' continuation: skips to and over the newline (and an
  /// optional leading '&' on the next line). Returns false if the '&' is
  /// not followed by a newline.
  bool consumeContinuation();

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLocation here() const { return {Line, Column}; }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace fortran
} // namespace cmcc

#endif // CMCC_FORTRAN_LEXER_H
