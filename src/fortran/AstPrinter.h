//===- fortran/AstPrinter.h - AST dumping ---------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders expressions and statements back to a canonical one-line Fortran
/// spelling, for diagnostics and tests.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_FORTRAN_ASTPRINTER_H
#define CMCC_FORTRAN_ASTPRINTER_H

#include "fortran/Ast.h"
#include <string>

namespace cmcc {
namespace fortran {

/// Renders \p E with explicit parentheses around binary subexpressions
/// where precedence requires them.
std::string printExpr(const Expr &E);

/// Renders "TARGET = expr".
std::string printAssignment(const AssignmentStmt &S);

} // namespace fortran
} // namespace cmcc

#endif // CMCC_FORTRAN_ASTPRINTER_H
