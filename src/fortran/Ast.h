//===- fortran/Ast.h - AST for the stencil Fortran subset -----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the subset the convolution compiler processes:
/// whole-array assignment statements whose right-hand sides are built from
/// +, -, *, real literals, whole-array references, and CSHIFT/EOSHIFT
/// applications, optionally wrapped in SUBROUTINE units with
/// REAL, ARRAY(:,:) declarations.
///
/// The hierarchy uses LLVM-style kind tags with classof so that isa<> /
/// cast<> / dyn_cast<>-style helpers work without C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_FORTRAN_AST_H
#define CMCC_FORTRAN_AST_H

#include "support/Assert.h"
#include "support/SourceLocation.h"
#include <memory>
#include <string>
#include <vector>

namespace cmcc {
namespace fortran {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all expressions.
class Expr {
public:
  enum class Kind {
    ArrayName,
    RealLiteral,
    Unary,
    Binary,
    ShiftCall,
  };

  virtual ~Expr();

  Kind kind() const { return TheKind; }
  SourceLocation location() const { return Location; }

protected:
  Expr(Kind K, SourceLocation Loc) : TheKind(K), Location(Loc) {}

private:
  Kind TheKind;
  SourceLocation Location;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Checked downcast in the spirit of llvm::cast.
template <typename T> const T &exprCast(const Expr &E) {
  assert(T::classof(&E) && "exprCast to wrong expression kind");
  return static_cast<const T &>(E);
}

/// Conditional downcast in the spirit of llvm::dyn_cast.
template <typename T> const T *exprDynCast(const Expr *E) {
  return E && T::classof(E) ? static_cast<const T *>(E) : nullptr;
}

/// A whole-array reference (a bare identifier).
class ArrayNameExpr : public Expr {
public:
  ArrayNameExpr(SourceLocation Loc, std::string Name)
      : Expr(Kind::ArrayName, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  static bool classof(const Expr *E) { return E->kind() == Kind::ArrayName; }

private:
  std::string Name;
};

/// A real (or integer, widened) literal constant.
class RealLiteralExpr : public Expr {
public:
  RealLiteralExpr(SourceLocation Loc, double Value)
      : Expr(Kind::RealLiteral, Loc), Value(Value) {}

  double value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::RealLiteral; }

private:
  double Value;
};

/// Unary '+' or '-'.
class UnaryExpr : public Expr {
public:
  enum class Op { Plus, Minus };

  UnaryExpr(SourceLocation Loc, Op TheOp, ExprPtr Operand)
      : Expr(Kind::Unary, Loc), TheOp(TheOp), Operand(std::move(Operand)) {}

  Op op() const { return TheOp; }
  const Expr &operand() const { return *Operand; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  Op TheOp;
  ExprPtr Operand;
};

/// Binary '+', '-', or '*'.
class BinaryExpr : public Expr {
public:
  enum class Op { Add, Sub, Mul };

  BinaryExpr(SourceLocation Loc, Op TheOp, ExprPtr Lhs, ExprPtr Rhs)
      : Expr(Kind::Binary, Loc), TheOp(TheOp), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}

  Op op() const { return TheOp; }
  const Expr &lhs() const { return *Lhs; }
  const Expr &rhs() const { return *Rhs; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  Op TheOp;
  ExprPtr Lhs, Rhs;
};

/// A CSHIFT or EOSHIFT application.
///
/// Following the paper's grammar, the argument order is
/// (array-expression, DIM, SHIFT); DIM and SHIFT may also be given as
/// keyword arguments in either order. Both must be integer constants.
class ShiftCallExpr : public Expr {
public:
  enum class ShiftKind {
    Circular, ///< CSHIFT: wraparound boundary.
    EndOff,   ///< EOSHIFT: zero boundary.
  };

  ShiftCallExpr(SourceLocation Loc, ShiftKind TheShiftKind, ExprPtr Array,
                int Dim, int Shift)
      : Expr(Kind::ShiftCall, Loc), TheShiftKind(TheShiftKind),
        Array(std::move(Array)), Dim(Dim), Shift(Shift) {}

  ShiftKind shiftKind() const { return TheShiftKind; }
  const Expr &array() const { return *Array; }
  /// The DIM argument: 1 (rows) or 2 (columns).
  int dim() const { return Dim; }
  /// The SHIFT argument (may be negative).
  int shift() const { return Shift; }

  static bool classof(const Expr *E) { return E->kind() == Kind::ShiftCall; }

private:
  ShiftKind TheShiftKind;
  ExprPtr Array;
  int Dim;
  int Shift;
};

//===----------------------------------------------------------------------===//
// Statements and declarations
//===----------------------------------------------------------------------===//

/// A whole-array assignment statement "R = expr".
struct AssignmentStmt {
  SourceLocation Location;
  std::string Target;
  ExprPtr Value;
  /// True when the statement was flagged with the "!CMCC$ STENCIL"
  /// structured comment (§6): the compiler then reports a warning if
  /// the statement cannot be processed by the convolution technique.
  bool Flagged = false;
};

/// One declared array: "REAL, ARRAY(:,:) :: NAME" gives rank 2.
struct ArrayDecl {
  SourceLocation Location;
  std::string Name;
  unsigned Rank = 0;
};

/// A SUBROUTINE unit of the restricted form the paper's second prototype
/// accepts: parameters, REAL array declarations, assignment statements.
struct Subroutine {
  SourceLocation Location;
  std::string Name;
  std::vector<std::string> Parameters;
  std::vector<ArrayDecl> Declarations;
  std::vector<AssignmentStmt> Body;

  /// Returns the declaration for \p Name, or nullptr.
  const ArrayDecl *findDeclaration(const std::string &Name) const;
};

} // namespace fortran
} // namespace cmcc

#endif // CMCC_FORTRAN_AST_H
