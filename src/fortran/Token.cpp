//===- fortran/Token.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "fortran/Token.h"
#include "support/Assert.h"

using namespace cmcc;
using namespace cmcc::fortran;

const char *cmcc::fortran::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::EndOfStatement:
    return "end of statement";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntegerLiteral:
    return "integer literal";
  case TokenKind::RealLiteral:
    return "real literal";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::DoubleColon:
    return "'::'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::KwSubroutine:
    return "'SUBROUTINE'";
  case TokenKind::KwEnd:
    return "'END'";
  case TokenKind::KwReal:
    return "'REAL'";
  case TokenKind::KwArray:
    return "'ARRAY'";
  case TokenKind::KwDimension:
    return "'DIMENSION'";
  case TokenKind::Directive:
    return "directive";
  }
  CMCC_UNREACHABLE("unknown token kind");
}
