//===- fortran/Lexer.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "fortran/Lexer.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/StringUtils.h"
#include <cassert>
#include <cctype>
#include <cstdlib>

using namespace cmcc;
using namespace cmcc::fortran;

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipHorizontalSpaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r') {
      advance();
      continue;
    }
    if (C == '!') {
      // "!CMCC$ ..." is a structured-comment directive, not blank space.
      if (isDirectiveAhead())
        break;
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }
}

bool Lexer::isDirectiveAhead() const {
  static const char Sentinel[] = "!CMCC$";
  for (size_t I = 0; Sentinel[I] != '\0'; ++I) {
    char C = peek(I);
    if (std::toupper(static_cast<unsigned char>(C)) != Sentinel[I])
      return false;
  }
  return true;
}

Token Lexer::lexDirective() {
  SourceLocation Loc = here();
  for (int I = 0; I != 6; ++I)
    advance(); // The "!CMCC$" sentinel.
  std::string Text;
  while (!atEnd() && peek() != '\n')
    Text.push_back(advance());
  Token T = makeToken(TokenKind::Directive, Loc,
                      toUpper(std::string(trim(Text))));
  return T;
}

bool Lexer::consumeContinuation() {
  assert(peek() == '&' && "continuation must start at '&'");
  advance(); // the '&'
  skipHorizontalSpaceAndComments();
  if (atEnd())
    return true; // '&' at end of file: treat as harmless.
  if (peek() != '\n')
    return false;
  advance(); // the newline
  // The continued line may begin with another '&'.
  skipHorizontalSpaceAndComments();
  if (!atEnd() && peek() == '&')
    advance();
  return true;
}

Token Lexer::makeToken(TokenKind Kind, SourceLocation Loc,
                       std::string Spelling) {
  Token T;
  T.Kind = Kind;
  T.Location = Loc;
  T.Spelling = std::move(Spelling);
  return T;
}

Token Lexer::lexNumber() {
  SourceLocation Loc = here();
  std::string Text;
  bool SawDot = false;
  bool SawExponent = false;
  while (!atEnd()) {
    char C = peek();
    if (std::isdigit(static_cast<unsigned char>(C))) {
      Text.push_back(advance());
      continue;
    }
    if (C == '.' && !SawDot && !SawExponent &&
        std::isdigit(static_cast<unsigned char>(peek(1)))) {
      SawDot = true;
      Text.push_back(advance());
      continue;
    }
    // Trailing dot as in "1." is also legal Fortran.
    if (C == '.' && !SawDot && !SawExponent) {
      char After = peek(1);
      if (!std::isalpha(static_cast<unsigned char>(After))) {
        SawDot = true;
        Text.push_back(advance());
        continue;
      }
    }
    if ((C == 'e' || C == 'E' || C == 'd' || C == 'D') && !SawExponent &&
        (std::isdigit(static_cast<unsigned char>(peek(1))) ||
         ((peek(1) == '+' || peek(1) == '-') &&
          std::isdigit(static_cast<unsigned char>(peek(2)))))) {
      SawExponent = true;
      advance();
      Text.push_back('e'); // Normalize 'D' exponents for strtod.
      if (peek() == '+' || peek() == '-')
        Text.push_back(advance());
      continue;
    }
    break;
  }

  if (SawDot || SawExponent) {
    Token T = makeToken(TokenKind::RealLiteral, Loc, Text);
    T.RealValue = std::strtod(Text.c_str(), nullptr);
    return T;
  }
  Token T = makeToken(TokenKind::IntegerLiteral, Loc, Text);
  T.IntegerValue = std::strtol(Text.c_str(), nullptr, 10);
  T.RealValue = static_cast<double>(T.IntegerValue);
  return T;
}

Token Lexer::lexIdentifier() {
  SourceLocation Loc = here();
  std::string Text;
  while (!atEnd()) {
    char C = peek();
    if (std::isalnum(static_cast<unsigned char>(C)) || C == '_') {
      Text.push_back(advance());
      continue;
    }
    break;
  }
  std::string Upper = toUpper(Text);
  TokenKind Kind = TokenKind::Identifier;
  if (Upper == "SUBROUTINE")
    Kind = TokenKind::KwSubroutine;
  else if (Upper == "END")
    Kind = TokenKind::KwEnd;
  else if (Upper == "REAL")
    Kind = TokenKind::KwReal;
  else if (Upper == "ARRAY")
    Kind = TokenKind::KwArray;
  else if (Upper == "DIMENSION")
    Kind = TokenKind::KwDimension;
  return makeToken(Kind, Loc, std::move(Upper));
}

Token Lexer::lexToken() {
  while (true) {
    skipHorizontalSpaceAndComments();
    if (atEnd())
      return makeToken(TokenKind::EndOfFile, here(), "");
    char C = peek();
    if (C == '&') {
      SourceLocation Loc = here();
      if (!consumeContinuation()) {
        Diags.error(Loc, "'&' continuation must end its line");
        // Skip to end of line to recover.
        while (!atEnd() && peek() != '\n')
          advance();
      }
      continue;
    }
    if (C == '\n') {
      SourceLocation Loc = here();
      advance();
      return makeToken(TokenKind::EndOfStatement, Loc, "\\n");
    }
    break;
  }

  SourceLocation Loc = here();
  char C = peek();
  if (C == '!')
    return lexDirective();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  // A '.' starting a real literal like ".5".
  if (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    std::string Text = "0";
    Token T;
    advance();
    Text.push_back('.');
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      Text.push_back(advance());
    T = makeToken(TokenKind::RealLiteral, Loc, Text);
    T.RealValue = std::strtod(Text.c_str(), nullptr);
    return T;
  }
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier();

  advance();
  switch (C) {
  case '+':
    return makeToken(TokenKind::Plus, Loc, "+");
  case '-':
    return makeToken(TokenKind::Minus, Loc, "-");
  case '*':
    return makeToken(TokenKind::Star, Loc, "*");
  case '(':
    return makeToken(TokenKind::LParen, Loc, "(");
  case ')':
    return makeToken(TokenKind::RParen, Loc, ")");
  case ',':
    return makeToken(TokenKind::Comma, Loc, ",");
  case '=':
    return makeToken(TokenKind::Equal, Loc, "=");
  case ':':
    if (peek() == ':') {
      advance();
      return makeToken(TokenKind::DoubleColon, Loc, "::");
    }
    return makeToken(TokenKind::Colon, Loc, ":");
  case ';':
    // Fortran permits ';' as a statement separator on one line.
    return makeToken(TokenKind::EndOfStatement, Loc, ";");
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return lexToken();
  }
}

std::vector<Token> Lexer::lexAll() {
  CMCC_SPAN("frontend.lex");
  static obs::Counter &LexRuns =
      obs::Registry::process().counter("frontend.lex_runs");
  LexRuns.add(1);
  std::vector<Token> Tokens;
  while (true) {
    Token T = lexToken();
    // Collapse runs of statement separators and drop leading ones.
    if (T.is(TokenKind::EndOfStatement) &&
        (Tokens.empty() || Tokens.back().is(TokenKind::EndOfStatement)))
      continue;
    bool Done = T.is(TokenKind::EndOfFile);
    Tokens.push_back(std::move(T));
    if (Done)
      break;
  }
  return Tokens;
}
