//===- fortran/Token.h - Fortran token definitions ------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens for the free-form Fortran 90 subset accepted by the paper's
/// version-2 prototype: SUBROUTINE ... END units whose bodies are
/// whole-array assignment statements built from +, -, *, CSHIFT and
/// EOSHIFT.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_FORTRAN_TOKEN_H
#define CMCC_FORTRAN_TOKEN_H

#include "support/SourceLocation.h"
#include <string>

namespace cmcc {
namespace fortran {

/// Kinds of token produced by the Lexer.
enum class TokenKind {
  EndOfFile,
  EndOfStatement, ///< Newline not cancelled by a '&' continuation.
  Identifier,
  IntegerLiteral,
  RealLiteral,
  Plus,
  Minus,
  Star,
  LParen,
  RParen,
  Comma,
  Equal,
  DoubleColon,
  Colon,
  KwSubroutine,
  KwEnd,
  KwReal,
  KwArray,
  KwDimension,
  /// A structured comment "!CMCC$ ..." (the paper's planned directive
  /// for flagging stencil assignment statements; §6).
  Directive,
};

/// Returns a human-readable name for \p Kind (for diagnostics).
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Identifier text is stored upper-cased (Fortran is
/// case-insensitive); Spelling preserves the source spelling of literals.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  SourceLocation Location;
  std::string Spelling;
  /// Valid for IntegerLiteral.
  long IntegerValue = 0;
  /// Valid for RealLiteral.
  double RealValue = 0.0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace fortran
} // namespace cmcc

#endif // CMCC_FORTRAN_TOKEN_H
