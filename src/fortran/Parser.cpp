//===- fortran/Parser.cpp -------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "fortran/Parser.h"
#include "fortran/Lexer.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Assert.h"

using namespace cmcc;
using namespace cmcc::fortran;

const Token &Parser::peek(size_t Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1; // The stream always ends with EndOfFile.
  return Tokens[I];
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::consumeIf(TokenKind Kind) {
  if (!peek().is(Kind))
    return false;
  advance();
  return true;
}

void Parser::error(const Token &At, std::string Message) {
  Diags.error(At.Location, std::move(Message));
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (consumeIf(Kind))
    return true;
  error(peek(), std::string("expected ") + tokenKindName(Kind) + " " +
                    Context + ", found " + tokenKindName(peek().Kind));
  return false;
}

void Parser::skipToEndOfStatement() {
  while (!peek().is(TokenKind::EndOfStatement) &&
         !peek().is(TokenKind::EndOfFile))
    advance();
  consumeIf(TokenKind::EndOfStatement);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseAdditive(); }

ExprPtr Parser::parseAdditive() {
  ExprPtr Lhs = parseMultiplicative();
  if (!Lhs)
    return nullptr;
  while (peek().is(TokenKind::Plus) || peek().is(TokenKind::Minus)) {
    const Token &OpTok = advance();
    BinaryExpr::Op Op = OpTok.is(TokenKind::Plus) ? BinaryExpr::Op::Add
                                                  : BinaryExpr::Op::Sub;
    ExprPtr Rhs = parseMultiplicative();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(OpTok.Location, Op, std::move(Lhs),
                                       std::move(Rhs));
  }
  return Lhs;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  while (peek().is(TokenKind::Star)) {
    const Token &OpTok = advance();
    ExprPtr Rhs = parseUnary();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(OpTok.Location, BinaryExpr::Op::Mul,
                                       std::move(Lhs), std::move(Rhs));
  }
  return Lhs;
}

ExprPtr Parser::parseUnary() {
  if (peek().is(TokenKind::Minus) || peek().is(TokenKind::Plus)) {
    const Token &OpTok = advance();
    UnaryExpr::Op Op = OpTok.is(TokenKind::Minus) ? UnaryExpr::Op::Minus
                                                  : UnaryExpr::Op::Plus;
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(OpTok.Location, Op, std::move(Operand));
  }
  return parsePrimary();
}

std::optional<long> Parser::parseIntegerConstant() {
  bool Negative = false;
  if (consumeIf(TokenKind::Minus))
    Negative = true;
  else
    consumeIf(TokenKind::Plus);
  if (!peek().is(TokenKind::IntegerLiteral)) {
    error(peek(), "expected integer constant");
    return std::nullopt;
  }
  long Value = advance().IntegerValue;
  return Negative ? -Value : Value;
}

ExprPtr Parser::parseShiftCall(ShiftCallExpr::ShiftKind Kind,
                               const Token &Callee) {
  if (!expect(TokenKind::LParen, "after shift intrinsic name"))
    return nullptr;
  ExprPtr Array = parseExpr();
  if (!Array)
    return nullptr;

  // Remaining arguments: positional (DIM, SHIFT) as in the paper's
  // grammar, or keyword DIM= / SHIFT= in either order.
  std::optional<long> Dim, Shift;
  unsigned PositionalIndex = 0;
  while (consumeIf(TokenKind::Comma)) {
    if (peek().is(TokenKind::Identifier) && peek(1).is(TokenKind::Equal)) {
      Token Keyword = advance();
      advance(); // '='
      std::optional<long> Value = parseIntegerConstant();
      if (!Value)
        return nullptr;
      if (Keyword.Spelling == "DIM") {
        if (Dim)
          error(Keyword, "duplicate DIM argument");
        Dim = *Value;
      } else if (Keyword.Spelling == "SHIFT") {
        if (Shift)
          error(Keyword, "duplicate SHIFT argument");
        Shift = *Value;
      } else {
        error(Keyword, "unknown keyword argument '" + Keyword.Spelling +
                           "' (expected DIM or SHIFT)");
        return nullptr;
      }
      continue;
    }
    std::optional<long> Value = parseIntegerConstant();
    if (!Value)
      return nullptr;
    // The paper's positional form is (array, DIM, SHIFT).
    if (PositionalIndex == 0 && !Dim)
      Dim = *Value;
    else if (PositionalIndex <= 1 && !Shift)
      Shift = *Value;
    else {
      error(peek(), "too many arguments to shift intrinsic");
      return nullptr;
    }
    ++PositionalIndex;
  }
  if (!expect(TokenKind::RParen, "to close shift intrinsic call"))
    return nullptr;
  if (!Dim || !Shift) {
    error(Callee, std::string(Kind == ShiftCallExpr::ShiftKind::Circular
                                  ? "CSHIFT"
                                  : "EOSHIFT") +
                      " requires both DIM and SHIFT arguments");
    return nullptr;
  }
  if (*Dim != 1 && *Dim != 2) {
    error(Callee, "DIM must be 1 or 2 (stencils are over the two "
                  "distributed axes)");
    return nullptr;
  }
  return std::make_unique<ShiftCallExpr>(Callee.Location, Kind,
                                         std::move(Array),
                                         static_cast<int>(*Dim),
                                         static_cast<int>(*Shift));
}

ExprPtr Parser::parsePrimary() {
  const Token &T = peek();
  switch (T.Kind) {
  case TokenKind::RealLiteral: {
    const Token &Lit = advance();
    return std::make_unique<RealLiteralExpr>(Lit.Location, Lit.RealValue);
  }
  case TokenKind::IntegerLiteral: {
    const Token &Lit = advance();
    return std::make_unique<RealLiteralExpr>(Lit.Location, Lit.RealValue);
  }
  case TokenKind::LParen: {
    advance();
    ExprPtr Inner = parseExpr();
    if (!Inner)
      return nullptr;
    if (!expect(TokenKind::RParen, "to close parenthesized expression"))
      return nullptr;
    return Inner;
  }
  case TokenKind::Identifier: {
    Token Name = advance();
    if (Name.Spelling == "CSHIFT")
      return parseShiftCall(ShiftCallExpr::ShiftKind::Circular, Name);
    if (Name.Spelling == "EOSHIFT")
      return parseShiftCall(ShiftCallExpr::ShiftKind::EndOff, Name);
    if (peek().is(TokenKind::LParen)) {
      error(Name, "only whole-array references are supported; '" +
                      Name.Spelling +
                      "(...)' looks like an array section or a call other "
                      "than CSHIFT/EOSHIFT");
      return nullptr;
    }
    return std::make_unique<ArrayNameExpr>(Name.Location, Name.Spelling);
  }
  default:
    error(T, std::string("expected expression, found ") +
                 tokenKindName(T.Kind));
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Statements and units
//===----------------------------------------------------------------------===//

std::optional<AssignmentStmt> Parser::parseAssignment() {
  // Structured-comment directives precede the statement they flag.
  bool Flagged = false;
  while (peek().is(TokenKind::Directive)) {
    Token D = advance();
    if (D.Spelling == "STENCIL")
      Flagged = true;
    else
      Diags.warning(D.Location,
                    "ignoring unknown directive '!CMCC$ " + D.Spelling +
                        "'");
    consumeIf(TokenKind::EndOfStatement);
  }
  if (!peek().is(TokenKind::Identifier)) {
    error(peek(), "expected array name on the left-hand side");
    return std::nullopt;
  }
  Token Target = advance();
  if (!expect(TokenKind::Equal, "in assignment statement"))
    return std::nullopt;
  ExprPtr Value = parseExpr();
  if (!Value)
    return std::nullopt;
  if (!peek().is(TokenKind::EndOfStatement) &&
      !peek().is(TokenKind::EndOfFile)) {
    error(peek(), std::string("unexpected ") + tokenKindName(peek().Kind) +
                      " after assignment expression");
    return std::nullopt;
  }
  consumeIf(TokenKind::EndOfStatement);
  AssignmentStmt S;
  S.Location = Target.Location;
  S.Target = Target.Spelling;
  S.Value = std::move(Value);
  S.Flagged = Flagged;
  return S;
}

bool Parser::parseDeclarationStatement(std::vector<ArrayDecl> &Out) {
  const Token &RealTok = advance(); // KwReal
  unsigned Rank = 0;
  if (consumeIf(TokenKind::Comma)) {
    if (!peek().is(TokenKind::KwArray) && !peek().is(TokenKind::KwDimension)) {
      error(peek(), "expected ARRAY or DIMENSION attribute after 'REAL,'");
      return false;
    }
    advance();
    if (!expect(TokenKind::LParen, "after ARRAY/DIMENSION"))
      return false;
    do {
      if (!expect(TokenKind::Colon, "in assumed-shape specification"))
        return false;
      ++Rank;
    } while (consumeIf(TokenKind::Comma));
    if (!expect(TokenKind::RParen, "to close shape specification"))
      return false;
  }
  if (!expect(TokenKind::DoubleColon, "in declaration"))
    return false;
  do {
    if (!peek().is(TokenKind::Identifier)) {
      error(peek(), "expected declared name");
      return false;
    }
    Token Name = advance();
    ArrayDecl D;
    D.Location = Name.Location;
    D.Name = Name.Spelling;
    D.Rank = Rank;
    Out.push_back(std::move(D));
  } while (consumeIf(TokenKind::Comma));
  if (!peek().is(TokenKind::EndOfStatement) &&
      !peek().is(TokenKind::EndOfFile)) {
    error(peek(), "unexpected token after declaration");
    return false;
  }
  consumeIf(TokenKind::EndOfStatement);
  (void)RealTok;
  return true;
}

std::optional<Subroutine> Parser::parseSubroutine() {
  if (!expect(TokenKind::KwSubroutine, "to begin subroutine"))
    return std::nullopt;
  if (!peek().is(TokenKind::Identifier)) {
    error(peek(), "expected subroutine name");
    return std::nullopt;
  }
  Token Name = advance();

  Subroutine Sub;
  Sub.Location = Name.Location;
  Sub.Name = Name.Spelling;

  if (consumeIf(TokenKind::LParen)) {
    if (!peek().is(TokenKind::RParen)) {
      do {
        if (!peek().is(TokenKind::Identifier)) {
          error(peek(), "expected parameter name");
          return std::nullopt;
        }
        Sub.Parameters.push_back(advance().Spelling);
      } while (consumeIf(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen, "to close parameter list"))
      return std::nullopt;
  }
  if (!peek().is(TokenKind::EndOfStatement) &&
      !peek().is(TokenKind::EndOfFile)) {
    error(peek(), "unexpected token after subroutine header");
    return std::nullopt;
  }
  consumeIf(TokenKind::EndOfStatement);

  // Declarations first, then executable statements.
  while (peek().is(TokenKind::KwReal))
    if (!parseDeclarationStatement(Sub.Declarations))
      return std::nullopt;

  while (!peek().is(TokenKind::KwEnd) && !peek().is(TokenKind::EndOfFile)) {
    std::optional<AssignmentStmt> S = parseAssignment();
    if (!S)
      return std::nullopt;
    Sub.Body.push_back(std::move(*S));
  }

  if (!expect(TokenKind::KwEnd, "to close subroutine"))
    return std::nullopt;
  // Optional "END SUBROUTINE [name]".
  if (consumeIf(TokenKind::KwSubroutine))
    if (peek().is(TokenKind::Identifier))
      advance();
  consumeIf(TokenKind::EndOfStatement);
  return Sub;
}

std::optional<std::vector<Subroutine>> Parser::parseProgram() {
  std::vector<Subroutine> Units;
  while (!peek().is(TokenKind::EndOfFile)) {
    std::optional<Subroutine> Sub = parseSubroutine();
    if (!Sub)
      return std::nullopt;
    Units.push_back(std::move(*Sub));
  }
  return Units;
}

std::optional<Subroutine>
Parser::subroutineFromSource(std::string_view Source,
                             DiagnosticEngine &Diags) {
  CMCC_SPAN("frontend.parse");
  static obs::Counter &ParseRuns =
      obs::Registry::process().counter("frontend.parse_runs");
  ParseRuns.add(1);
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  std::optional<Subroutine> Sub = P.parseSubroutine();
  if (Diags.hasErrors())
    return std::nullopt;
  return Sub;
}

std::optional<AssignmentStmt>
Parser::assignmentFromSource(std::string_view Source,
                             DiagnosticEngine &Diags) {
  CMCC_SPAN("frontend.parse");
  static obs::Counter &ParseRuns =
      obs::Registry::process().counter("frontend.parse_runs");
  ParseRuns.add(1);
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  std::optional<AssignmentStmt> S = P.parseAssignment();
  if (Diags.hasErrors())
    return std::nullopt;
  return S;
}
