//===- fortran/Ast.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "fortran/Ast.h"

using namespace cmcc;
using namespace cmcc::fortran;

// Out-of-line virtual method anchor (LLVM rule: avoid vtable duplication).
Expr::~Expr() = default;

const ArrayDecl *Subroutine::findDeclaration(const std::string &Name) const {
  for (const ArrayDecl &D : Declarations)
    if (D.Name == Name)
      return &D;
  return nullptr;
}
