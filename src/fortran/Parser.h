//===- fortran/Parser.h - Recursive-descent parser ------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the restricted Fortran 90 form of the
/// paper's second prototype:
///
/// \code
///   SUBROUTINE CROSS (R, X, C1, C2, C3, C4, C5)
///   REAL, ARRAY(:,:) :: R, X, C1, C2, C3, C4, C5
///   R = C1 * CSHIFT(X, 1, -1) &
///     + C2 * CSHIFT(X, 2, -1) &
///     + C3 * X                &
///     + C4 * CSHIFT(X, 2, +1) &
///     + C5 * CSHIFT(X, 1, +1)
///   END
/// \endcode
///
/// Expression grammar: additive over multiplicative over unary over
/// primary; the only calls allowed are CSHIFT and EOSHIFT, whose argument
/// order follows the paper ((array, DIM, SHIFT), keywords allowed).
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_FORTRAN_PARSER_H
#define CMCC_FORTRAN_PARSER_H

#include "fortran/Ast.h"
#include "fortran/Token.h"
#include "support/Diagnostic.h"
#include <optional>
#include <vector>

namespace cmcc {
namespace fortran {

/// Parses token streams produced by the Lexer.
///
/// Parse failures are reported through the DiagnosticEngine; the failing
/// entry point returns std::nullopt. The parser does not attempt error
/// recovery beyond statement resynchronization: the paper's compiler
/// rejects anything outside the recognized form.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  /// Parses a full SUBROUTINE ... END unit.
  std::optional<Subroutine> parseSubroutine();

  /// Parses a sequence of SUBROUTINE units until end of file.
  std::optional<std::vector<Subroutine>> parseProgram();

  /// Parses a single bare assignment statement (the production-compiler
  /// entry point that needs no isolated subroutine).
  std::optional<AssignmentStmt> parseAssignment();

  /// Convenience: lexes and parses \p Source as one subroutine.
  static std::optional<Subroutine> subroutineFromSource(std::string_view Source,
                                                        DiagnosticEngine &Diags);

  /// Convenience: lexes and parses \p Source as one assignment statement.
  static std::optional<AssignmentStmt>
  assignmentFromSource(std::string_view Source, DiagnosticEngine &Diags);

private:
  ExprPtr parseExpr();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();
  ExprPtr parseShiftCall(ShiftCallExpr::ShiftKind Kind, const Token &Callee);
  std::optional<ArrayDecl> parseDeclGroupInto(std::vector<ArrayDecl> &Out);
  bool parseDeclarationStatement(std::vector<ArrayDecl> &Out);
  std::optional<long> parseIntegerConstant();

  const Token &peek(size_t Ahead = 0) const;
  const Token &advance();
  bool consumeIf(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void skipToEndOfStatement();
  void error(const Token &At, std::string Message);

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace fortran
} // namespace cmcc

#endif // CMCC_FORTRAN_PARSER_H
