//===- fortran/AstPrinter.cpp ---------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "fortran/AstPrinter.h"
#include "support/Assert.h"
#include "support/StringUtils.h"

using namespace cmcc;
using namespace cmcc::fortran;

namespace {

/// Precedence levels: additive < multiplicative < unary/primary.
enum Precedence { PrecAdd = 1, PrecMul = 2, PrecUnary = 3 };

std::string printWithPrecedence(const Expr &E, int Minimum);

std::string printImpl(const Expr &E, int &OutPrec) {
  switch (E.kind()) {
  case Expr::Kind::ArrayName:
    OutPrec = PrecUnary;
    return exprCast<ArrayNameExpr>(E).name();
  case Expr::Kind::RealLiteral: {
    OutPrec = PrecUnary;
    double V = exprCast<RealLiteralExpr>(E).value();
    if (V == static_cast<long>(V))
      return std::to_string(static_cast<long>(V)) + ".0";
    return formatFixed(V, 6);
  }
  case Expr::Kind::Unary: {
    const auto &U = exprCast<UnaryExpr>(E);
    OutPrec = PrecUnary;
    const char *Sign = U.op() == UnaryExpr::Op::Minus ? "-" : "+";
    return Sign + printWithPrecedence(U.operand(), PrecUnary);
  }
  case Expr::Kind::Binary: {
    const auto &B = exprCast<BinaryExpr>(E);
    const char *OpText = "";
    int Prec = PrecAdd;
    switch (B.op()) {
    case BinaryExpr::Op::Add:
      OpText = " + ";
      Prec = PrecAdd;
      break;
    case BinaryExpr::Op::Sub:
      OpText = " - ";
      Prec = PrecAdd;
      break;
    case BinaryExpr::Op::Mul:
      OpText = " * ";
      Prec = PrecMul;
      break;
    }
    OutPrec = Prec;
    // Right operand of '-' needs the next tighter level to stay correct.
    int RhsMin = B.op() == BinaryExpr::Op::Sub ? Prec + 1 : Prec;
    return printWithPrecedence(B.lhs(), Prec) + OpText +
           printWithPrecedence(B.rhs(), RhsMin);
  }
  case Expr::Kind::ShiftCall: {
    const auto &S = exprCast<ShiftCallExpr>(E);
    OutPrec = PrecUnary;
    std::string Out =
        S.shiftKind() == ShiftCallExpr::ShiftKind::Circular ? "CSHIFT("
                                                            : "EOSHIFT(";
    Out += printWithPrecedence(S.array(), 0);
    Out += ", " + std::to_string(S.dim());
    Out += ", " + std::to_string(S.shift());
    Out += ")";
    return Out;
  }
  }
  CMCC_UNREACHABLE("unknown expression kind");
}

std::string printWithPrecedence(const Expr &E, int Minimum) {
  int Prec = 0;
  std::string Text = printImpl(E, Prec);
  if (Prec < Minimum)
    return "(" + Text + ")";
  return Text;
}

} // namespace

std::string cmcc::fortran::printExpr(const Expr &E) {
  return printWithPrecedence(E, 0);
}

std::string cmcc::fortran::printAssignment(const AssignmentStmt &S) {
  return S.Target + " = " + printExpr(*S.Value);
}
