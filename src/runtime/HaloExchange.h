//===- runtime/HaloExchange.h - The §5.1 exchange protocol ----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interprocessor communication step of §5.1, implemented as the
/// protocol the paper describes rather than by global-index gathering:
///
///   1. temporary storage is allocated, padded on all four sides by the
///      maximum border width, and the node's own subgrid copied in;
///   2. data is exchanged with all four neighbors at once — the
///      West/East edge columns move first;
///   3. a second exchange moves the North/South edge rows *including
///      the just-received side pads*, so corner data reaches the
///      diagonal neighbor in two hops ("corner sections must be copied
///      to two neighbors (and, ultimately, to a diagonal neighbor as
///      well)"). For cornerless stencils this step ships only the core
///      columns and the corner pads are left poisoned (NaN), matching
///      the §5.1 optimization.
///
/// Every node performs the same steps simultaneously (the machine is
/// synchronous SIMD), so the protocol is computed for all nodes in one
/// call. The result is bit-identical to the direct global-torus
/// construction in buildPaddedSubgrid — a property the tests enforce —
/// but the data really moves neighbor to neighbor here.
///
/// The protocol also runs *partitioned*: a shard owning only a block of
/// the node grid (runtime/Partition.h) performs the same steps over its
/// local nodes and moves the block-edge traffic through a HaloTransport
/// instead of reading neighbor subgrids directly. The whole-grid domain
/// with no transport is exactly the in-process path — exchangeHalos
/// below delegates to it — so the sharded and unsharded exchanges are
/// one implementation, not two that can drift.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_RUNTIME_HALOEXCHANGE_H
#define CMCC_RUNTIME_HALOEXCHANGE_H

#include "runtime/DistributedArray.h"
#include "runtime/HaloTransport.h"
#include "runtime/Partition.h"
#include "support/Error.h"
#include <vector>

namespace cmcc {

class ThreadPool;

/// Performs the three-step exchange for every node of \p A at once.
/// Returns one padded subgrid per node, indexed by NodeGrid::nodeId.
///
/// With \p Pool, each step fans its per-node work out over the pool —
/// the steps mirror the machine's simultaneous exchanges, so within a
/// step every node touches only data no other node writes; the
/// barrier between steps is the parallelFor join. Results are bitwise
/// identical for any thread count (and to the serial Pool == nullptr
/// form).
std::vector<Array2D> exchangeHalos(const DistributedArray &A, int Border,
                                   BoundaryKind BoundaryDim1,
                                   BoundaryKind BoundaryDim2,
                                   bool FetchCorners,
                                   ThreadPool *Pool = nullptr);

/// The same protocol over one shard's node block. \p A holds only the
/// local block (its grid shape must equal the domain's local shape);
/// axes the domain spans entirely wrap locally exactly as the
/// unsharded exchange does, split axes pack their block edges and
/// exchange them through \p Transport (one WestEast call, then — when
/// the border is nonzero — one NorthSouth call, per source). \p
/// SourceIndex tags the transport calls so a multi-source job's
/// exchanges stay matched across shards. Fails only on transport
/// failures (lost worker, injected fault); those are transient.
Expected<std::vector<Array2D>> exchangeHalosPartitioned(
    const DistributedArray &A, const PartitionDomain &Domain,
    HaloTransport *Transport, int SourceIndex, int Border,
    BoundaryKind BoundaryDim1, BoundaryKind BoundaryDim2, bool FetchCorners,
    ThreadPool *Pool = nullptr);

} // namespace cmcc

#endif // CMCC_RUNTIME_HALOEXCHANGE_H
