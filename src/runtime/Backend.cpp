//===- runtime/Backend.cpp ------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Backend.h"

using namespace cmcc;

ExecutionBackend::~ExecutionBackend() = default;

Expected<TimingReport> ExecutionBackend::run(const CompiledStencil &Compiled,
                                             StencilArguments &Args,
                                             const RunOptions &Opts) const {
  Expected<ResolvedStencilArguments> Resolved =
      resolveStencilArguments(machine(), Compiled, Args);
  if (!Resolved)
    return Resolved.error();
  return runResolved(Compiled, *Resolved, Opts);
}

Expected<ResolvedStencilArguments>
cmcc::resolveStencilArguments(const MachineConfig &Config,
                              const CompiledStencil &Compiled,
                              const StencilArguments &Args) {
  const StencilSpec &Spec = Compiled.Spec;
  if (!Args.Result || !Args.Source)
    return makeError("result and source arrays must be bound");
  if (Args.Result == Args.Source)
    return makeError("result must not alias the stencil variable");
  const DistributedArray &R = *Args.Result;
  auto SameShape = [&](const DistributedArray &A) {
    return A.subRows() == R.subRows() && A.subCols() == R.subCols() &&
           A.grid().rows() == R.grid().rows() &&
           A.grid().cols() == R.grid().cols();
  };
  if (!SameShape(*Args.Source))
    return makeError("source shape differs from result shape (the paper "
                     "requires all arrays be divided the same way)");

  ResolvedStencilArguments Resolved;
  Resolved.Result = Args.Result;
  Resolved.Sources.reserve(Spec.sourceCount());
  Resolved.Sources.push_back(Args.Source);
  for (const std::string &Name : Spec.ExtraSources) {
    auto It = Args.ExtraSources.find(Name);
    if (It == Args.ExtraSources.end() || !It->second)
      return makeError("source array '" + Name + "' is not bound");
    if (!SameShape(*It->second))
      return makeError("source array '" + Name +
                       "' has a different shape");
    if (It->second == Args.Result)
      return makeError("result must not alias source '" + Name + "'");
    Resolved.Sources.push_back(It->second);
  }

  // Resolve coefficient names tap-by-tap so execution indexes a flat
  // vector; each distinct name is still validated exactly once.
  std::map<std::string, const DistributedArray *> Checked;
  Resolved.TapCoefficients.assign(Spec.Taps.size(), nullptr);
  for (size_t I = 0; I != Spec.Taps.size(); ++I) {
    const Tap &T = Spec.Taps[I];
    if (!T.Coeff.isArray())
      continue;
    auto Known = Checked.find(T.Coeff.Name);
    if (Known != Checked.end()) {
      Resolved.TapCoefficients[I] = Known->second;
      continue;
    }
    auto It = Args.Coefficients.find(T.Coeff.Name);
    if (It == Args.Coefficients.end() || !It->second)
      return makeError("coefficient array '" + T.Coeff.Name +
                       "' is not bound");
    if (!SameShape(*It->second))
      return makeError("coefficient array '" + T.Coeff.Name +
                       "' has a different shape");
    Checked.emplace(T.Coeff.Name, It->second);
    Resolved.TapCoefficients[I] = It->second;
  }

  int Border = Spec.borderWidths().maximum();
  if (Border > R.subRows() || Border > R.subCols())
    return makeError("stencil border width " + std::to_string(Border) +
                     " exceeds the per-node subgrid; data would be needed "
                     "from beyond the four neighbors");
  if (R.grid().rows() != Config.NodeRows || R.grid().cols() != Config.NodeCols)
    return makeError("arrays are distributed over a different node grid "
                     "than this executor's machine");
  return Resolved;
}
