//===- runtime/FpuBinding.cpp ---------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/FpuBinding.h"
#include "support/Assert.h"

using namespace cmcc;

FastNodeBinding::FastNodeBinding(const HalfStripOperands &O) {
  const std::vector<const Array2D *> &Sources = *O.PaddedSources;
  assert(!Sources.empty() && "a stencil always has a source array");
  SourceStride = Sources.front()->cols();
  SourceOrigins.reserve(Sources.size());
  for (const Array2D *P : Sources) {
    assert(P->cols() == SourceStride &&
           "all sources are padded to one shape");
    SourceOrigins.push_back(P->data() + O.Border * SourceStride +
                            O.LeftCol + O.Border);
  }
  SourceRows = SourceOrigins;

  Taps.reserve(O.Spec->Taps.size());
  for (size_t I = 0; I != O.Spec->Taps.size(); ++I) {
    const Tap &T = O.Spec->Taps[I];
    TapStream S;
    S.Sign = static_cast<float>(T.Sign);
    if (T.Coeff.isArray()) {
      const Array2D *Coef = (*O.TapCoefficients)[I];
      S.Stride = Coef->cols();
      S.Base = Coef->data() + O.LeftCol;
      S.Row = S.Base;
    } else {
      // Same float product the virtual binding computes per access,
      // performed once.
      S.Immediate = S.Sign * static_cast<float>(T.Coeff.Value);
    }
    Taps.push_back(S);
  }

  ResultStride = O.Result->cols();
  ResultBase = O.Result->data() + O.LeftCol;
  ResultRow = ResultBase;
}

void FastNodeBinding::setLine(int Row) {
  for (size_t S = 0; S != SourceRows.size(); ++S)
    SourceRows[S] = SourceOrigins[S] + Row * SourceStride;
  for (TapStream &T : Taps)
    if (T.Base)
      T.Row = T.Base + Row * T.Stride;
  ResultRow = ResultBase + Row * ResultStride;
}
