//===- runtime/TimeTile.cpp -----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/TimeTile.h"
#include <algorithm>
#include <string>

using namespace cmcc;
using namespace cmcc::timetile;

Error cmcc::timetile::validateTimeTile(const StencilSpec &Spec, int TimeTile,
                                       int SubRows, int SubCols) {
  if (TimeTile < 1)
    return makeError("time tile depth must be at least 1");
  if (TimeTile == 1)
    return Error::success();
  if (Spec.sourceCount() == 0)
    return makeError("time tiling requires a source array to chain "
                     "(the statement has no shifted-data terms)");
  if (Spec.sourceCount() > 1)
    return makeError("time tiling requires a single-source stencil: with "
                     "multiple sources it is ambiguous which input each "
                     "step's result feeds");
  const int Radius = Spec.borderWidths().maximum();
  const long Wide = static_cast<long>(TimeTile) * Radius;
  if (Wide > SubRows || Wide > SubCols)
    return makeError("time tile depth " + std::to_string(TimeTile) +
                     " widens the halo border to " + std::to_string(Wide) +
                     ", which exceeds the per-node subgrid; data would be "
                     "needed from beyond the four neighbors");
  return Error::success();
}

int cmcc::timetile::clampTimeTile(const StencilSpec &Spec, int TimeTile,
                                  int SubRows, int SubCols) {
  if (TimeTile <= 1)
    return 1;
  if (Spec.sourceCount() != 1)
    return 1;
  const int Radius = Spec.borderWidths().maximum();
  if (Radius == 0)
    return TimeTile;
  const int Fit = std::min(SubRows, SubCols) / Radius;
  return std::max(1, std::min(TimeTile, Fit));
}

std::vector<OwnerRegion> cmcc::timetile::ownerRegions(
    int SubRows, int SubCols, int POut, BoundaryKind BoundaryDim1,
    BoundaryKind BoundaryDim2, int GlobalRow, int GlobalRows, int GlobalCol,
    int GlobalCols) {
  assert(POut >= 0 && POut <= SubRows && POut <= SubCols &&
         "output extension exceeds the subgrid");
  std::vector<OwnerRegion> Regions;
  for (int DR = -1; DR <= 1; ++DR) {
    for (int DC = -1; DC <= 1; ++DC) {
      if (POut == 0 && (DR != 0 || DC != 0))
        continue;
      OwnerRegion Reg;
      Reg.DR = DR;
      Reg.DC = DC;
      // The slice of the owner's subgrid adjacent to this node: its
      // last POut rows for a northern owner, its first POut for a
      // southern one, the whole extent along an axis the region does
      // not cross.
      Reg.R0 = DR < 0 ? SubRows - POut : 0;
      Reg.R1 = DR > 0 ? POut : SubRows;
      Reg.C0 = DC < 0 ? SubCols - POut : 0;
      Reg.C1 = DC > 0 ? POut : SubCols;
      const bool CrossN = DR < 0 && GlobalRow == 0;
      const bool CrossS = DR > 0 && GlobalRow == GlobalRows - 1;
      const bool CrossW = DC < 0 && GlobalCol == 0;
      const bool CrossE = DC > 0 && GlobalCol == GlobalCols - 1;
      Reg.ZeroMasked =
          ((CrossN || CrossS) && BoundaryDim1 == BoundaryKind::Zero) ||
          ((CrossW || CrossE) && BoundaryDim2 == BoundaryKind::Zero);
      Regions.push_back(Reg);
    }
  }
  return Regions;
}

void cmcc::timetile::applyZeroMask(Array2D &Padded, int Border, int POut,
                                   int SubRows, int SubCols,
                                   BoundaryKind BoundaryDim1,
                                   BoundaryKind BoundaryDim2, int GlobalRow,
                                   int GlobalRows, int GlobalCol,
                                   int GlobalCols) {
  if (BoundaryDim1 != BoundaryKind::Zero &&
      BoundaryDim2 != BoundaryKind::Zero)
    return;
  // Subgrid-space cell (r, c) — r in [-POut, SubRows + POut) — sits at
  // global position (GlobalRow * SubRows + r, GlobalCol * SubCols + c);
  // outside the global array under a Zero boundary means identically
  // zero at every step of the chain.
  const long TotalRows = static_cast<long>(GlobalRows) * SubRows;
  const long TotalCols = static_cast<long>(GlobalCols) * SubCols;
  for (int R = -POut; R != SubRows + POut; ++R) {
    const long GR = static_cast<long>(GlobalRow) * SubRows + R;
    const bool RowOut = BoundaryDim1 == BoundaryKind::Zero &&
                        (GR < 0 || GR >= TotalRows);
    for (int C = -POut; C != SubCols + POut; ++C) {
      if (RowOut) {
        Padded.at(R + Border, C + Border) = 0.0f;
        continue;
      }
      const long GC = static_cast<long>(GlobalCol) * SubCols + C;
      if (BoundaryDim2 == BoundaryKind::Zero && (GC < 0 || GC >= TotalCols))
        Padded.at(R + Border, C + Border) = 0.0f;
    }
  }
}
