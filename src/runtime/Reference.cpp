//===- runtime/Reference.cpp ----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Reference.h"
#include "support/Assert.h"

using namespace cmcc;

Array2D cmcc::evaluateReference(const StencilSpec &Spec,
                                const ReferenceBindings &Bindings, int Rows,
                                int Cols) {
  Array2D Result(Rows, Cols);

  auto SourceArray = [&](int Index) -> const Array2D * {
    if (Index == 0)
      return Bindings.Source;
    auto It = Bindings.ExtraSources.find(Spec.sourceName(Index));
    assert(It != Bindings.ExtraSources.end() && "source array not bound");
    return It->second;
  };

  auto SourceAt = [&](int Index, int R, int C) -> float {
    bool RowOutside = R < 0 || R >= Rows;
    bool ColOutside = C < 0 || C >= Cols;
    if ((RowOutside && Spec.BoundaryDim1 == BoundaryKind::Zero) ||
        (ColOutside && Spec.BoundaryDim2 == BoundaryKind::Zero))
      return 0.0f;
    return SourceArray(Index)->atWrapped(R, C);
  };

  auto CoefficientAt = [&](const Tap &T, int R, int C) -> float {
    if (!T.Coeff.isArray())
      return static_cast<float>(T.Coeff.Value);
    auto It = Bindings.Coefficients.find(T.Coeff.Name);
    assert(It != Bindings.Coefficients.end() &&
           "coefficient array not bound");
    assert(It->second->rows() == Rows && It->second->cols() == Cols &&
           "coefficient shape mismatch");
    return It->second->at(R, C);
  };

  for (int R = 0; R != Rows; ++R) {
    for (int C = 0; C != Cols; ++C) {
      float Sum = 0.0f;
      for (const Tap &T : Spec.Taps) {
        float Coefficient = CoefficientAt(T, R, C);
        float Data = T.HasData
                         ? SourceAt(T.SourceIndex, R + T.At.Dy, C + T.At.Dx)
                         : 1.0f;
        Sum += static_cast<float>(T.Sign) * Coefficient * Data;
      }
      Result.at(R, C) = Sum;
    }
  }
  return Result;
}
