//===- runtime/HaloTransport.cpp ------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/HaloTransport.h"
#include <condition_variable>
#include <mutex>

using namespace cmcc;

HaloTransport::~HaloTransport() = default;

/// All-shard rendezvous state. Each exchange posts every shard's
/// outgoing blocks, barriers, lets every shard copy its neighbors'
/// blocks, then barriers again before anyone may repost.
struct LocalTransport::Rendezvous {
  explicit Rendezvous(ShardGrid SG)
      : SG(SG), Posted(static_cast<size_t>(SG.count()), nullptr) {}

  void barrier() {
    std::unique_lock<std::mutex> Lock(Mutex);
    const long Gen = Generation;
    if (++Arrived == SG.count()) {
      Arrived = 0;
      ++Generation;
      Changed.notify_all();
    } else {
      Changed.wait(Lock, [&] { return Generation != Gen; });
    }
  }

  HaloBlocks exchange(int Shard, HaloStep Step, const HaloBlocks &Out) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Posted[Shard] = &Out;
    }
    barrier();
    // All posted; reads are race-free until the release barrier.
    const int LowNbr = Step == HaloStep::WestEast ? SG.westOf(Shard)
                                                 : SG.northOf(Shard);
    const int HighNbr = Step == HaloStep::WestEast ? SG.eastOf(Shard)
                                                  : SG.southOf(Shard);
    HaloBlocks In;
    In.Low = Posted[LowNbr]->High;
    In.High = Posted[HighNbr]->Low;
    barrier();
    return In;
  }

  const ShardGrid SG;
  std::mutex Mutex;
  std::condition_variable Changed;
  int Arrived = 0;
  long Generation = 0;
  std::vector<const HaloBlocks *> Posted;
};

namespace {

class LocalEndpoint : public HaloTransport {
public:
  LocalEndpoint(std::shared_ptr<LocalTransport::Rendezvous> Shared, int Shard)
      : Shared(std::move(Shared)), Shard(Shard) {}

  Expected<HaloBlocks> exchange(int /*SourceIndex*/, HaloStep Step,
                                const HaloBlocks &Out) override {
    return Shared->exchange(Shard, Step, Out);
  }

private:
  std::shared_ptr<LocalTransport::Rendezvous> Shared;
  int Shard;
};

} // namespace

LocalTransport::LocalTransport(ShardGrid SG)
    : Shared(std::make_shared<Rendezvous>(SG)) {}

std::unique_ptr<HaloTransport> LocalTransport::endpoint(int Shard) {
  assert(Shard >= 0 && Shard < Shared->SG.count() && "shard id out of range");
  return std::make_unique<LocalEndpoint>(Shared, Shard);
}
