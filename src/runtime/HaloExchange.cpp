//===- runtime/HaloExchange.cpp -------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/HaloExchange.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/ThreadPool.h"
#include <functional>
#include <limits>

using namespace cmcc;

std::vector<Array2D> cmcc::exchangeHalos(const DistributedArray &A,
                                         int Border,
                                         BoundaryKind BoundaryDim1,
                                         BoundaryKind BoundaryDim2,
                                         bool FetchCorners,
                                         ThreadPool *Pool) {
  Expected<std::vector<Array2D>> Padded = exchangeHalosPartitioned(
      A, PartitionDomain::whole(A.grid().rows(), A.grid().cols()),
      /*Transport=*/nullptr, /*SourceIndex=*/0, Border, BoundaryDim1,
      BoundaryDim2, FetchCorners, Pool);
  // The whole-grid domain never touches a transport, so the partitioned
  // protocol cannot fail here.
  assert(Padded && "whole-grid halo exchange failed");
  return std::move(*Padded);
}

Expected<std::vector<Array2D>> cmcc::exchangeHalosPartitioned(
    const DistributedArray &A, const PartitionDomain &Domain,
    HaloTransport *Transport, int SourceIndex, int Border,
    BoundaryKind BoundaryDim1, BoundaryKind BoundaryDim2, bool FetchCorners,
    ThreadPool *Pool) {
  CMCC_SPAN("halo.exchange");
  static obs::Counter &Exchanges =
      obs::Registry::process().counter("halo.exchanges");
  Exchanges.add(1);
  const NodeGrid &Grid = A.grid();
  assert(Grid.rows() == Domain.LocalRows && Grid.cols() == Domain.LocalCols &&
         "array grid does not match the partition domain's local block");
  const int SR = A.subRows();
  const int SC = A.subCols();
  const int B = Border;
  assert(B >= 0 && B <= SR && B <= SC &&
         "border width exceeds the subgrid");
  const float Nan = std::numeric_limits<float>::quiet_NaN();

  // A split axis moves its block edges through the transport; an axis
  // the domain spans entirely wraps locally (the local torus is the
  // global torus there — the whole-grid domain reduces to the original
  // in-process protocol, transport never consulted).
  const bool RemoteWE = !Domain.spansAllCols();
  const bool RemoteNS = !Domain.spansAllRows();
  assert((!RemoteWE && !RemoteNS) || Transport != nullptr
             ? true
             : (RemoteWE || RemoteNS) == (Transport != nullptr));
  assert((!(RemoteWE || RemoteNS) || Transport) &&
         "split domain requires a transport");

  // Every node performs each step simultaneously on the machine; on the
  // host each step fans out over the pool, and the join between steps
  // is the barrier the protocol needs (step 3 reads side pads written
  // in step 2). Within a step, node Id writes only Padded[Id] regions
  // that no other node reads during that same step.
  auto ForEachNode = [&](const std::function<void(int)> &Fn) {
    if (Pool)
      Pool->parallelFor(Grid.nodeCount(), Fn);
    else
      for (int Id = 0; Id != Grid.nodeCount(); ++Id)
        Fn(Id);
  };

  // Step 1: temporary storage, own subgrid in the center. Unwritten pad
  // cells stay poisoned so mistakes are loud.
  std::vector<Array2D> Padded(Grid.nodeCount());
  {
    CMCC_SPAN("halo.step1_copy");
    ForEachNode([&](int Id) {
      Array2D P(SR + 2 * B, SC + 2 * B, B > 0 ? Nan : 0.0f);
      const Array2D &Own = A.subgrid(Grid.coordOf(Id));
      for (int R = 0; R != SR; ++R)
        for (int C = 0; C != SC; ++C)
          P.at(R + B, C + B) = Own.at(R, C);
      Padded[Id] = std::move(P);
    });
  }
  if (B == 0)
    return Padded;

  // Step 2: every node exchanges its edge columns with its West and
  // East neighbors simultaneously. On a split axis the block-edge
  // columns cross the transport: Low carries the west-edge nodes'
  // leftmost core columns, High the east-edge nodes' rightmost, one
  // SR x B row-major block per local node row.
  {
    CMCC_SPAN("halo.step2_we");
    HaloBlocks In;
    if (RemoteWE) {
      const size_t BlockFloats =
          static_cast<size_t>(Domain.LocalRows) * SR * B;
      HaloBlocks Out;
      Out.Low.resize(BlockFloats);
      Out.High.resize(BlockFloats);
      for (int LR = 0; LR != Domain.LocalRows; ++LR) {
        const Array2D &WestEdge = A.subgrid({LR, 0});
        const Array2D &EastEdge = A.subgrid({LR, Grid.cols() - 1});
        for (int R = 0; R != SR; ++R)
          for (int C = 0; C != B; ++C) {
            const size_t At =
                (static_cast<size_t>(LR) * SR + R) * B + C;
            Out.Low[At] = WestEdge.at(R, C);
            Out.High[At] = EastEdge.at(R, SC - B + C);
          }
      }
      Expected<HaloBlocks> Got =
          Transport->exchange(SourceIndex, HaloStep::WestEast, Out);
      if (!Got)
        return Got.error();
      In = std::move(*Got);
      if (In.Low.size() != BlockFloats || In.High.size() != BlockFloats)
        return Error::transient(
            "halo transport returned a west/east block of the wrong size");
    }

    ForEachNode([&](int Id) {
      NodeCoord Here = Grid.coordOf(Id);
      Array2D &P = Padded[Id];

      // West pad <- west neighbor's rightmost core columns.
      bool CrossW = Domain.globalCol(Here.Col) == 0;
      const Array2D *WestSub =
          (RemoteWE && Here.Col == 0)
              ? nullptr
              : &A.subgrid(Grid.neighbor(Here, Direction::West));
      for (int R = 0; R != SR; ++R)
        for (int C = 0; C != B; ++C)
          P.at(R + B, C) =
              (CrossW && BoundaryDim2 == BoundaryKind::Zero)
                  ? 0.0f
                  : (WestSub
                         ? WestSub->at(R, SC - B + C)
                         : In.Low[(static_cast<size_t>(Here.Row) * SR + R) *
                                      B +
                                  C]);

      // East pad <- east neighbor's leftmost core columns.
      bool CrossE = Domain.globalCol(Here.Col) == Domain.GlobalCols - 1;
      const Array2D *EastSub =
          (RemoteWE && Here.Col == Grid.cols() - 1)
              ? nullptr
              : &A.subgrid(Grid.neighbor(Here, Direction::East));
      for (int R = 0; R != SR; ++R)
        for (int C = 0; C != B; ++C)
          P.at(R + B, SC + B + C) =
              (CrossE && BoundaryDim2 == BoundaryKind::Zero)
                  ? 0.0f
                  : (EastSub
                         ? EastSub->at(R, C)
                         : In.High[(static_cast<size_t>(Here.Row) * SR + R) *
                                       B +
                                   C]);
    });
  }

  // Step 3: exchange edge rows with the North and South neighbors. The
  // shipped rows include the side pads received in step 2, so corner
  // data arrives from the diagonal neighbor in two hops — including
  // across shard boundaries, where the side pads a block edge ships may
  // themselves have just crossed the transport. For cornerless stencils
  // only the core columns move and the corner pads stay poisoned
  // (§5.1's skipped third step) — on a split axis those columns never
  // enter the transport blocks at all. A node writes its own top and
  // bottom pad rows and reads its neighbors' *core* edge rows (B <= SR
  // keeps the two disjoint), so the nodes of this step are independent
  // too.
  const int ColBegin = FetchCorners ? 0 : B;
  const int ColEnd = FetchCorners ? SC + 2 * B : SC + B;
  {
    CMCC_SPAN("halo.step3_ns");
    const int ShipCols = ColEnd - ColBegin;
    HaloBlocks In;
    if (RemoteNS) {
      const size_t BlockFloats =
          static_cast<size_t>(Domain.LocalCols) * B * ShipCols;
      HaloBlocks Out;
      Out.Low.resize(BlockFloats);
      Out.High.resize(BlockFloats);
      for (int LC = 0; LC != Domain.LocalCols; ++LC) {
        const Array2D &NorthEdge = Padded[Grid.nodeId({0, LC})];
        const Array2D &SouthEdge = Padded[Grid.nodeId({Grid.rows() - 1, LC})];
        for (int R = 0; R != B; ++R)
          for (int C = ColBegin; C != ColEnd; ++C) {
            const size_t At = (static_cast<size_t>(LC) * B + R) * ShipCols +
                              (C - ColBegin);
            Out.Low[At] = NorthEdge.at(B + R, C);
            Out.High[At] = SouthEdge.at(SR + R, C);
          }
      }
      Expected<HaloBlocks> Got =
          Transport->exchange(SourceIndex, HaloStep::NorthSouth, Out);
      if (!Got)
        return Got.error();
      In = std::move(*Got);
      if (In.Low.size() != BlockFloats || In.High.size() != BlockFloats)
        return Error::transient(
            "halo transport returned a north/south block of the wrong size");
    }

    ForEachNode([&](int Id) {
      NodeCoord Here = Grid.coordOf(Id);
      Array2D &P = Padded[Id];

      // North pad <- north neighbor's bottommost core rows (with pads).
      bool CrossN = Domain.globalRow(Here.Row) == 0;
      const Array2D *NorthP =
          (RemoteNS && Here.Row == 0)
              ? nullptr
              : &Padded[Grid.nodeId(Grid.neighbor(Here, Direction::North))];
      for (int R = 0; R != B; ++R)
        for (int C = ColBegin; C != ColEnd; ++C)
          P.at(R, C) =
              (CrossN && BoundaryDim1 == BoundaryKind::Zero)
                  ? 0.0f
                  : (NorthP
                         ? NorthP->at(SR + R, C)
                         : In.Low[(static_cast<size_t>(Here.Col) * B + R) *
                                      ShipCols +
                                  (C - ColBegin)]);

      // South pad <- south neighbor's topmost core rows (with pads).
      bool CrossS = Domain.globalRow(Here.Row) == Domain.GlobalRows - 1;
      const Array2D *SouthP =
          (RemoteNS && Here.Row == Grid.rows() - 1)
              ? nullptr
              : &Padded[Grid.nodeId(Grid.neighbor(Here, Direction::South))];
      for (int R = 0; R != B; ++R)
        for (int C = ColBegin; C != ColEnd; ++C)
          P.at(SR + B + R, C) =
              (CrossS && BoundaryDim1 == BoundaryKind::Zero)
                  ? 0.0f
                  : (SouthP
                         ? SouthP->at(B + R, C)
                         : In.High[(static_cast<size_t>(Here.Col) * B + R) *
                                       ShipCols +
                                   (C - ColBegin)]);
    });
  }
  return Padded;
}
