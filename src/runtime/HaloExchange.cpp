//===- runtime/HaloExchange.cpp -------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/HaloExchange.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/ThreadPool.h"
#include <functional>
#include <limits>

using namespace cmcc;

std::vector<Array2D> cmcc::exchangeHalos(const DistributedArray &A,
                                         int Border,
                                         BoundaryKind BoundaryDim1,
                                         BoundaryKind BoundaryDim2,
                                         bool FetchCorners,
                                         ThreadPool *Pool) {
  CMCC_SPAN("halo.exchange");
  static obs::Counter &Exchanges =
      obs::Registry::process().counter("halo.exchanges");
  Exchanges.add(1);
  const NodeGrid &Grid = A.grid();
  const int SR = A.subRows();
  const int SC = A.subCols();
  const int B = Border;
  assert(B >= 0 && B <= SR && B <= SC &&
         "border width exceeds the subgrid");
  const float Nan = std::numeric_limits<float>::quiet_NaN();

  // Every node performs each step simultaneously on the machine; on the
  // host each step fans out over the pool, and the join between steps
  // is the barrier the protocol needs (step 3 reads side pads written
  // in step 2). Within a step, node Id writes only Padded[Id] regions
  // that no other node reads during that same step.
  auto ForEachNode = [&](const std::function<void(int)> &Fn) {
    if (Pool)
      Pool->parallelFor(Grid.nodeCount(), Fn);
    else
      for (int Id = 0; Id != Grid.nodeCount(); ++Id)
        Fn(Id);
  };

  // Step 1: temporary storage, own subgrid in the center. Unwritten pad
  // cells stay poisoned so mistakes are loud.
  std::vector<Array2D> Padded(Grid.nodeCount());
  {
    CMCC_SPAN("halo.step1_copy");
    ForEachNode([&](int Id) {
      Array2D P(SR + 2 * B, SC + 2 * B, B > 0 ? Nan : 0.0f);
      const Array2D &Own = A.subgrid(Grid.coordOf(Id));
      for (int R = 0; R != SR; ++R)
        for (int C = 0; C != SC; ++C)
          P.at(R + B, C + B) = Own.at(R, C);
      Padded[Id] = std::move(P);
    });
  }
  if (B == 0)
    return Padded;

  // Step 2: every node exchanges its edge columns with its West and
  // East neighbors simultaneously.
  {
    CMCC_SPAN("halo.step2_we");
    ForEachNode([&](int Id) {
      NodeCoord Here = Grid.coordOf(Id);
      Array2D &P = Padded[Id];

      // West pad <- west neighbor's rightmost core columns.
      NodeCoord West = Grid.neighbor(Here, Direction::West);
      bool CrossW = Here.Col == 0;
      const Array2D &WestSub = A.subgrid(West);
      for (int R = 0; R != SR; ++R)
        for (int C = 0; C != B; ++C)
          P.at(R + B, C) = (CrossW && BoundaryDim2 == BoundaryKind::Zero)
                               ? 0.0f
                               : WestSub.at(R, SC - B + C);

      // East pad <- east neighbor's leftmost core columns.
      NodeCoord East = Grid.neighbor(Here, Direction::East);
      bool CrossE = Here.Col == Grid.cols() - 1;
      const Array2D &EastSub = A.subgrid(East);
      for (int R = 0; R != SR; ++R)
        for (int C = 0; C != B; ++C)
          P.at(R + B, SC + B + C) =
              (CrossE && BoundaryDim2 == BoundaryKind::Zero)
                  ? 0.0f
                  : EastSub.at(R, C);
    });
  }

  // Step 3: exchange edge rows with the North and South neighbors. The
  // shipped rows include the side pads received in step 2, so corner
  // data arrives from the diagonal neighbor in two hops. For cornerless
  // stencils only the core columns move and the corner pads stay
  // poisoned (§5.1's skipped third step). A node writes its own top and
  // bottom pad rows and reads its neighbors' *core* edge rows (B <= SR
  // keeps the two disjoint), so the nodes of this step are independent
  // too.
  const int ColBegin = FetchCorners ? 0 : B;
  const int ColEnd = FetchCorners ? SC + 2 * B : SC + B;
  {
    CMCC_SPAN("halo.step3_ns");
    ForEachNode([&](int Id) {
      NodeCoord Here = Grid.coordOf(Id);
      Array2D &P = Padded[Id];

      // North pad <- north neighbor's bottommost core rows (with pads).
      NodeCoord North = Grid.neighbor(Here, Direction::North);
      bool CrossN = Here.Row == 0;
      const Array2D &NorthP = Padded[Grid.nodeId(North)];
      for (int R = 0; R != B; ++R)
        for (int C = ColBegin; C != ColEnd; ++C)
          P.at(R, C) = (CrossN && BoundaryDim1 == BoundaryKind::Zero)
                           ? 0.0f
                           : NorthP.at(SR + R, C);

      // South pad <- south neighbor's topmost core rows (with pads).
      NodeCoord South = Grid.neighbor(Here, Direction::South);
      bool CrossS = Here.Row == Grid.rows() - 1;
      const Array2D &SouthP = Padded[Grid.nodeId(South)];
      for (int R = 0; R != B; ++R)
        for (int C = ColBegin; C != ColEnd; ++C)
          P.at(SR + B + R, C) =
              (CrossS && BoundaryDim1 == BoundaryKind::Zero)
                  ? 0.0f
                  : SouthP.at(B + R, C);
    });
  }
  return Padded;
}
