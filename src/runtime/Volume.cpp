//===- runtime/Volume.cpp -------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Volume.h"

using namespace cmcc;

DistributedVolume::DistributedVolume(const NodeGrid &Grid, int Depth,
                                     int SubRows, int SubCols) {
  assert(Depth > 0 && "volume needs at least one plane");
  Planes.reserve(Depth);
  for (int D = 0; D != Depth; ++D)
    Planes.push_back(
        std::make_unique<DistributedArray>(Grid, SubRows, SubCols));
}

Expected<TimingReport> cmcc::runVolume(const Executor &Exec,
                                       const CompiledStencil &Compiled,
                                       VolumeArguments &Args,
                                       int Iterations) {
  if (!Args.Result || !Args.Source)
    return makeError("result and source volumes must be bound");
  const int Depth = Args.Result->depth();
  if (Args.Source->depth() != Depth)
    return makeError("source volume depth differs from result depth");
  for (const auto &[Name, V] : Args.Coefficients)
    if (!V || V->depth() != Depth)
      return makeError("coefficient volume '" + Name +
                       "' has a different depth");
  for (const auto &[Name, V] : Args.ExtraSources)
    if (!V || V->depth() != Depth)
      return makeError("source volume '" + Name +
                       "' has a different depth");

  TimingReport Total;
  for (int D = 0; D != Depth; ++D) {
    StencilArguments Plane;
    Plane.Result = &Args.Result->plane(D);
    Plane.Source = &Args.Source->plane(D);
    for (const auto &[Name, V] : Args.Coefficients)
      Plane.Coefficients[Name] = &V->plane(D);
    for (const auto &[Name, V] : Args.ExtraSources)
      Plane.ExtraSources[Name] = &V->plane(D);

    Expected<TimingReport> Report = Exec.run(Compiled, Plane, Iterations);
    if (!Report)
      return makeError("plane " + std::to_string(D) + ": " +
                       Report.error().message());
    if (D == 0) {
      Total = *Report;
      continue;
    }
    // Machine cycles accumulate plane by plane; the host pays the
    // per-strip dispatches again but the call overhead only once.
    Total.Cycles += Report->Cycles;
    Total.UsefulFlopsPerNodePerIteration +=
        Report->UsefulFlopsPerNodePerIteration;
    Total.HostSecondsPerIteration +=
        Report->HostSecondsPerIteration -
        Exec.machine().HostOverheadUsPerCall * 1e-6;
  }
  return Total;
}
