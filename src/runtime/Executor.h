//===- runtime/Executor.h - The run-time library --------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's run-time library (§5): allocates halo storage, performs
/// the border exchange, strip-mines each node's subgrid (greedy widest
/// strip, two half-strips each), and drives the microcode — here, the
/// FPU pipeline model executing the compiled dynamic-part schedules.
///
/// Execution is *functional* (it produces the numerical result by running
/// the schedules through the pipeline model) and *timed* (cycle costs per
/// the machine configuration). Because the CM-2 is synchronous SIMD, one
/// iteration's cycle count is exact for every iteration, so a timed run
/// of N iterations executes the arrays once and scales the cycle cost —
/// the same reasoning that makes the paper's extrapolations reliable.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_RUNTIME_EXECUTOR_H
#define CMCC_RUNTIME_EXECUTOR_H

#include "cm2/GridComm.h"
#include "cm2/Timing.h"
#include "core/Compiler.h"
#include "runtime/Backend.h"
#include "runtime/DistributedArray.h"
#include "runtime/HaloTransport.h"
#include "runtime/Partition.h"
#include "runtime/StripMiner.h"
#include "runtime/TimeTile.h"
#include <map>
#include <string>

namespace cmcc {

/// Executes compiled stencils on a simulated machine.
class Executor {
public:
  /// How much functional work to do; timing is identical in all modes.
  enum class FunctionalMode {
    /// Run the schedules on every node's data (full result).
    AllNodes,
    /// Run only node (0,0) — still exercises every schedule; used by
    /// large-machine benches where gathering a full result is pointless.
    SingleNode,
    /// Timing only.
    None,
  };

  struct Options {
    CommPrimitive Primitive = CommPrimitive::NodeGridExchange;
    /// Skip the corner-exchange step for cornerless stencils (§5.1).
    bool AllowCornerSkip = true;
    /// Process strips as two half-strips (§5.2); false = ablation A3.
    bool UseHalfStrips = true;
    /// Force a single multistencil width (0 = greedy widest).
    int ForceWidth = 0;
    FunctionalMode Mode = FunctionalMode::AllNodes;
    /// Resolve half-strip operands to flat pointer bindings once per
    /// half-strip (devirtualized inner loop). False runs the virtual
    /// FpuMemoryInterface reference binding; results are bitwise
    /// identical either way (tested).
    bool UseFastPath = true;
    /// Host threads for the functional fan-out: 0 uses the process-wide
    /// shared pool (CMCC_THREADS env var, else hardware concurrency);
    /// N >= 1 uses a private pool of exactly N threads. Thread count
    /// never changes results or simulated timing — nodes are
    /// independent after the halo exchange.
    int ThreadCount = 0;
    /// When set, this executor runs one shard's block of a larger node
    /// grid: the machine config describes the local block, and halo
    /// traffic crossing the block's edges moves through Transport (the
    /// transport-abstracted §5.1 protocol in runtime/HaloExchange.h).
    /// Null runs the whole grid in-process, exactly as before.
    const PartitionDomain *Domain = nullptr;
    HaloTransport *Transport = nullptr;
  };

  explicit Executor(const MachineConfig &Config) : Config(Config) {}
  Executor(const MachineConfig &Config, Options Opts)
      : Config(Config), Opts(Opts) {}

  /// Runs \p Compiled over \p Args. The result subgrids are written once
  /// (all iterations compute the same values — the paper's timing loops
  /// re-execute one statement); the report's cycle counts cover one
  /// iteration of the fused unit and scale by Opts.Iterations. With
  /// Opts.TimeTile = k > 1 the fused unit is k *chained* timesteps fed
  /// by one wide halo exchange (runtime/TimeTile.h).
  Expected<TimingReport> run(const CompiledStencil &Compiled,
                             StencilArguments &Args,
                             const RunOptions &RO) const;
  Expected<TimingReport> run(const CompiledStencil &Compiled,
                             StencilArguments &Args, int Iterations) const {
    RunOptions RO;
    RO.Iterations = Iterations;
    return run(Compiled, Args, RO);
  }

  /// run() after name resolution: the execution body over arguments a
  /// caller already resolved (the cm2 backend's runResolved, the shard
  /// workers). run() is resolve + runResolved.
  Expected<TimingReport> runResolved(const CompiledStencil &Compiled,
                                     const ResolvedStencilArguments &Resolved,
                                     const RunOptions &RO) const;
  Expected<TimingReport> runResolved(const CompiledStencil &Compiled,
                                     const ResolvedStencilArguments &Resolved,
                                     int Iterations) const {
    RunOptions RO;
    RO.Iterations = Iterations;
    return runResolved(Compiled, Resolved, RO);
  }

  /// Cycle cost of one fused unit (TimeTile chained steps) on one node,
  /// computed analytically from the schedules (no functional work).
  /// Exposed for tests, which check it against the op counts the
  /// pipeline model actually executed.
  CycleBreakdown analyticCycles(const CompiledStencil &Compiled, int SubRows,
                                int SubCols, int TimeTile) const;
  CycleBreakdown analyticCycles(const CompiledStencil &Compiled, int SubRows,
                                int SubCols) const {
    return analyticCycles(Compiled, SubRows, SubCols, 1);
  }

  /// A full timing report without touching (or allocating) any array
  /// data: exact for any machine size because the timing of a
  /// synchronous SIMD machine depends only on the per-node subgrid
  /// shape. Used for full-machine benchmark rows.
  TimingReport timeOnly(const CompiledStencil &Compiled, int SubRows,
                        int SubCols, const RunOptions &RO) const;
  TimingReport timeOnly(const CompiledStencil &Compiled, int SubRows,
                        int SubCols, int Iterations) const {
    RunOptions RO;
    RO.Iterations = Iterations;
    return timeOnly(Compiled, SubRows, SubCols, RO);
  }

  /// Host (front-end) seconds per iteration.
  double hostSecondsPerIteration(const CompiledStencil &Compiled,
                                 int SubCols) const;

  const MachineConfig &machine() const { return Config; }
  const Options &options() const { return Opts; }

  /// A half-strip with its width's schedule pre-resolved: the plan is
  /// computed once per run() and shared by every node (the schedule is
  /// read-only during execution).
  struct PlannedStrip {
    HalfStrip HS;
    const WidthSchedule *Sched = nullptr;
  };

private:
  /// Runs one node's strips against the already-exchanged halos
  /// (PaddedBySource[sourceIndex][nodeId]), each padded by \p Border.
  /// Operand arrays come from \p Resolved — names were resolved once,
  /// up front, in run().
  void runNode(const CompiledStencil &Compiled,
               const ResolvedStencilArguments &Resolved,
               DistributedArray &ResultArray,
               const std::vector<std::vector<Array2D>> &PaddedBySource,
               const std::vector<PlannedStrip> &Plan, NodeCoord Node,
               int Border, long *OpsExecuted) const;
  std::vector<HalfStrip> planFor(const CompiledStencil &Compiled,
                                 int SubRows, int SubCols) const;
  std::vector<PlannedStrip> resolvedPlanFor(const CompiledStencil &Compiled,
                                            int SubRows, int SubCols) const;

  /// One owner region of one intermediate tiled step, with the strip
  /// plan pre-intersected against its owner-space window: restricted
  /// half-strips plus the op count executing them costs (every node
  /// executes the same strips — SIMD lock-step — so the count is
  /// node-independent; masked regions skip execution and their ops).
  struct RegionStrips {
    timetile::OwnerRegion Window;
    std::vector<PlannedStrip> Strips;
    long Ops = 0;
  };
  /// One intermediate step (1 .. k-1): output extension POut =
  /// (k - step) x radius and its owner-region work lists.
  struct TiledStep {
    int POut = 0;
    std::vector<RegionStrips> Regions;
  };
  /// The intermediate-step work lists for tile depth \p TimeTile; empty
  /// for depth 1. Geometry only (unmasked) — per-node masking is
  /// re-derived from the node's global position at execution time.
  std::vector<TiledStep> tiledSteps(const CompiledStencil &Compiled,
                                    const std::vector<PlannedStrip> &Plan,
                                    int SubRows, int SubCols,
                                    int TimeTile) const;
  /// Executes one node's share of one intermediate tiled step: replays
  /// each owner region's restricted strips against the node's wide
  /// scratch via ClampedRegionBinding; zero-fills masked regions.
  void runNodeTiledStep(const CompiledStencil &Compiled, const Array2D &In,
                        Array2D &Out,
                        const std::vector<const Array2D *> &PaddedCoefficients,
                        const TiledStep &Step, NodeCoord Node, int Border,
                        int CoeffBorder, long *OpsExecuted) const;

  MachineConfig Config;
  Options Opts;
};

} // namespace cmcc

#endif // CMCC_RUNTIME_EXECUTOR_H
