//===- runtime/DistributedArray.h - Block-decomposed arrays ---*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A global array divided among the node grid exactly as Figure 1 of the
/// paper shows: nodes arranged in a 2-D grid, each containing an equal
/// rectangular subgrid of every array. Also provides the halo-filling
/// step of §5.1: a subgrid padded on all four sides by the maximum border
/// width, filled from the neighbors' subgrids (wraparound at the global
/// edges for CSHIFT, zeros for EOSHIFT), with the corner pads filled only
/// when the stencil needs diagonal data — skipped corners are poisoned
/// with NaN so that any schedule that touches data it did not fetch is
/// caught by the tests.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_RUNTIME_DISTRIBUTEDARRAY_H
#define CMCC_RUNTIME_DISTRIBUTEDARRAY_H

#include "cm2/NodeGrid.h"
#include "runtime/Array2D.h"
#include "stencil/StencilSpec.h"
#include <string>
#include <vector>

namespace cmcc {

/// A global (SubRows*NodeRows) x (SubCols*NodeCols) array stored as one
/// subgrid per node.
class DistributedArray {
public:
  DistributedArray(const NodeGrid &Grid, int SubRows, int SubCols);

  int subRows() const { return SubRows; }
  int subCols() const { return SubCols; }
  int globalRows() const { return SubRows * Grid.rows(); }
  int globalCols() const { return SubCols * Grid.cols(); }
  const NodeGrid &grid() const { return Grid; }

  Array2D &subgrid(NodeCoord C);
  const Array2D &subgrid(NodeCoord C) const;

  /// Scatters \p Global (must match the global shape).
  void scatter(const Array2D &Global);

  /// Gathers the subgrids back into one global array.
  Array2D gather() const;

  /// Global element access (for tests).
  float atGlobal(int R, int C) const;

  /// Renders the Figure-1 style block map, e.g. "A(1:64,1:64)" per node.
  std::string describeDecomposition(const std::string &Name) const;

private:
  NodeGrid Grid;
  int SubRows, SubCols;
  std::vector<Array2D> Subgrids;
};

/// The halo exchange of §5.1, for one node: returns the node's subgrid
/// padded by \p Border on all four sides. Data comes from the global
/// torus (neighbor subgrids; wraparound at edges) with EOSHIFT
/// dimensions zero-filled outside the global array. When \p FetchCorners
/// is false the four Border x Border corner pads are filled with NaN.
Array2D buildPaddedSubgrid(const DistributedArray &A, NodeCoord Node,
                           int Border, BoundaryKind BoundaryDim1,
                           BoundaryKind BoundaryDim2, bool FetchCorners);

} // namespace cmcc

#endif // CMCC_RUNTIME_DISTRIBUTEDARRAY_H
