//===- runtime/Reference.h - Golden scalar evaluator ----------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct scalar evaluation of a StencilSpec over global arrays — the
/// semantic ground truth every compiled execution is tested against.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_RUNTIME_REFERENCE_H
#define CMCC_RUNTIME_REFERENCE_H

#include "runtime/Array2D.h"
#include "stencil/StencilSpec.h"
#include <map>
#include <string>

namespace cmcc {

/// Arrays bound by name for a reference evaluation.
struct ReferenceBindings {
  const Array2D *Source = nullptr;
  std::map<std::string, const Array2D *> Coefficients;
  /// Additional source arrays, by name (multi-source extension).
  std::map<std::string, const Array2D *> ExtraSources;
};

/// Evaluates \p Spec pointwise: for every (i, j),
/// R(i,j) = sum_t Sign_t * Coeff_t(i,j) * X(i+Dy_t, j+Dx_t), with
/// circular or zero boundary per dimension. Coefficient arrays must all
/// be present in \p Bindings and share the result's shape.
Array2D evaluateReference(const StencilSpec &Spec,
                          const ReferenceBindings &Bindings, int Rows,
                          int Cols);

} // namespace cmcc

#endif // CMCC_RUNTIME_REFERENCE_H
