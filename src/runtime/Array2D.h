//===- runtime/Array2D.h - Host-side 2-D float arrays ---------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense row-major single-precision 2-D array. Single precision is the
/// paper's setting throughout (all measurements are 32-bit).
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_RUNTIME_ARRAY2D_H
#define CMCC_RUNTIME_ARRAY2D_H

#include "support/Assert.h"
#include <cstdint>
#include <vector>

namespace cmcc {

/// A rows x cols array of floats.
class Array2D {
public:
  Array2D() = default;
  Array2D(int Rows, int Cols, float Fill = 0.0f)
      : Rows(Rows), Cols(Cols),
        Data(static_cast<size_t>(Rows) * Cols, Fill) {
    assert(Rows >= 0 && Cols >= 0 && "negative array shape");
  }

  int rows() const { return Rows; }
  int cols() const { return Cols; }
  bool empty() const { return Data.empty(); }

  float &at(int R, int C) {
    assert(R >= 0 && R < Rows && C >= 0 && C < Cols && "index out of range");
    return Data[static_cast<size_t>(R) * Cols + C];
  }
  float at(int R, int C) const {
    assert(R >= 0 && R < Rows && C >= 0 && C < Cols && "index out of range");
    return Data[static_cast<size_t>(R) * Cols + C];
  }

  /// Raw row-major storage (rows() * cols() floats); the executor's
  /// fast-path bindings index it with precomputed strides.
  float *data() { return Data.data(); }
  const float *data() const { return Data.data(); }

  /// Element with circular (toroidal) index wrapping — Fortran CSHIFT
  /// semantics.
  float atWrapped(int R, int C) const;

  void fill(float Value) { Data.assign(Data.size(), Value); }

  /// Fills with deterministic pseudo-random values in [Low, High).
  void fillRandom(uint64_t Seed, float Low = -1.0f, float High = 1.0f);

  /// Largest absolute elementwise difference; returns +inf on shape
  /// mismatch or if either array holds a NaN.
  static float maxAbsDifference(const Array2D &A, const Array2D &B);

private:
  int Rows = 0, Cols = 0;
  std::vector<float> Data;
};

} // namespace cmcc

#endif // CMCC_RUNTIME_ARRAY2D_H
