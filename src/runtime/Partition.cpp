//===- runtime/Partition.cpp ----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Partition.h"
#include <string>

using namespace cmcc;

namespace {

bool isPowerOfTwo(int V) { return V > 0 && (V & (V - 1)) == 0; }

} // namespace

Expected<ShardGrid> cmcc::makeShardGrid(int NodeRows, int NodeCols,
                                        int ShardRows, int ShardCols) {
  if (!isPowerOfTwo(ShardRows) || !isPowerOfTwo(ShardCols))
    return makeError("shard grid " + std::to_string(ShardRows) + "x" +
                     std::to_string(ShardCols) +
                     " must have power-of-two dimensions (shard blocks are "
                     "hypercube sub-grids)");
  if (ShardRows > NodeRows || ShardCols > NodeCols)
    return makeError("shard grid " + std::to_string(ShardRows) + "x" +
                     std::to_string(ShardCols) + " exceeds the " +
                     std::to_string(NodeRows) + "x" +
                     std::to_string(NodeCols) + " node grid");
  // Power-of-two dims of a power-of-two grid always divide evenly, but
  // the grid could in principle be configured oddly; check explicitly.
  if (NodeRows % ShardRows != 0 || NodeCols % ShardCols != 0)
    return makeError("shard grid " + std::to_string(ShardRows) + "x" +
                     std::to_string(ShardCols) +
                     " does not divide the node grid evenly");
  return ShardGrid{ShardRows, ShardCols};
}

Expected<ShardGrid> cmcc::chooseShardGrid(int NodeRows, int NodeCols,
                                          int Shards) {
  if (!isPowerOfTwo(Shards))
    return makeError("shard count " + std::to_string(Shards) +
                     " must be a power of two");
  int SR = 1, SC = 1;
  for (int Remaining = Shards; Remaining > 1; Remaining /= 2) {
    const bool CanR = SR * 2 <= NodeRows;
    const bool CanC = SC * 2 <= NodeCols;
    if (!CanR && !CanC)
      return makeError(std::to_string(Shards) + " shards exceed the " +
                       std::to_string(NodeRows) + "x" +
                       std::to_string(NodeCols) +
                       " node grid (at most one node per shard)");
    // Split whichever axis currently has the larger per-shard extent,
    // keeping the blocks near-square (less block perimeter = less halo
    // traffic per shard).
    if (CanR && (!CanC || NodeRows / SR >= NodeCols / SC))
      SR *= 2;
    else
      SC *= 2;
  }
  return makeShardGrid(NodeRows, NodeCols, SR, SC);
}

PartitionDomain cmcc::shardDomain(const ShardGrid &SG, int Shard, int NodeRows,
                                  int NodeCols) {
  assert(Shard >= 0 && Shard < SG.count() && "shard id out of range");
  assert(NodeRows % SG.Rows == 0 && NodeCols % SG.Cols == 0 &&
         "shard grid does not divide the node grid");
  PartitionDomain D;
  D.LocalRows = NodeRows / SG.Rows;
  D.LocalCols = NodeCols / SG.Cols;
  D.NodeRowBegin = SG.rowOf(Shard) * D.LocalRows;
  D.NodeColBegin = SG.colOf(Shard) * D.LocalCols;
  D.GlobalRows = NodeRows;
  D.GlobalCols = NodeCols;
  return D;
}

MachineConfig cmcc::shardMachineConfig(const MachineConfig &Global,
                                       const PartitionDomain &Domain) {
  MachineConfig Local = Global;
  Local.NodeRows = Domain.LocalRows;
  Local.NodeCols = Domain.LocalCols;
  return Local;
}
