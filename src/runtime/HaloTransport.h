//===- runtime/HaloTransport.h - Pluggable halo movement ------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport seam under the §5.1 exchange protocol. Inside one
/// shard, halo data still moves neighbor-to-neighbor through shared
/// memory exactly as before; at the shard's block edges the protocol
/// hands a packed edge-block pair to a HaloTransport and blocks until
/// the matching blocks from the two axis neighbors arrive.
///
/// The protocol's two steps map onto two transport calls per source
/// array:
///
///   * WestEast:  the shard's west-edge nodes' leftmost core columns
///     (Low) and east-edge nodes' rightmost core columns (High) go
///     out; the west neighbor's High and east neighbor's Low come
///     back and fill the side pads.
///   * NorthSouth: the shard's north-edge nodes' topmost *padded* rows
///     (Low) and south-edge nodes' bottommost padded rows (High) go
///     out. Because these rows include the side pads received in the
///     WestEast step, corner data still reaches the diagonal neighbor
///     in two hops — across process boundaries exactly as the paper
///     moves it across node boundaries. Cornerless stencils ship only
///     the core columns, so skipped corner pads never cross the wire
///     and stay NaN-poisoned end to end.
///
/// Every shard of a job must make the same sequence of exchange calls
/// (the machines are synchronous by construction: all shards run the
/// same plan over same-shape blocks), so a transport may treat each
/// call as an all-shard rendezvous. LocalTransport is the in-process
/// reference implementation used by the transport-seam tests: P
/// endpoints over a mutex/condvar barrier, bitwise-equal to the
/// unsharded exchange by construction.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_RUNTIME_HALOTRANSPORT_H
#define CMCC_RUNTIME_HALOTRANSPORT_H

#include "runtime/Partition.h"
#include "support/Error.h"
#include <memory>
#include <vector>

namespace cmcc {

/// Which exchange step a transport call serves.
enum class HaloStep : int {
  WestEast = 0,   ///< Step 2: edge columns.
  NorthSouth = 1, ///< Step 3: edge rows including side pads.
};

/// One axis's packed edge blocks. "Low" faces the lower coordinate
/// (West for columns, North for rows), "High" the higher. Outgoing
/// blocks hold this shard's edges; the returned pair holds the
/// neighbors' opposing edges (Low = what arrived from the low-side
/// neighbor, i.e. that neighbor's High block).
struct HaloBlocks {
  std::vector<float> Low;
  std::vector<float> High;
};

/// Moves block-edge halo data between shards. Calls are blocking
/// collectives: every shard calls with the same (SourceIndex, Step)
/// sequence, and each call completes only when the neighbors' blocks
/// are in hand. Failures are transient (a lost worker, an injected
/// fault) — the serving layer's retry ladder re-runs the whole job.
class HaloTransport {
public:
  virtual ~HaloTransport();

  virtual Expected<HaloBlocks> exchange(int SourceIndex, HaloStep Step,
                                        const HaloBlocks &Out) = 0;
};

/// The in-process reference transport: one endpoint per shard, all
/// backed by a shared rendezvous. Each exchange is a two-phase barrier
/// (post blocks; read neighbors' blocks; release), so an endpoint's
/// exchange() must be driven from its own thread. Endpoints keep the
/// shared state alive; the factory object may be destroyed first.
class LocalTransport {
public:
  explicit LocalTransport(ShardGrid SG);

  /// The transport endpoint shard \p Shard calls. Valid for the shared
  /// state's lifetime (endpoints co-own it).
  std::unique_ptr<HaloTransport> endpoint(int Shard);

  /// The shared rendezvous state (opaque; public so endpoint classes
  /// can co-own it).
  struct Rendezvous;

private:
  std::shared_ptr<Rendezvous> Shared;
};

} // namespace cmcc

#endif // CMCC_RUNTIME_HALOTRANSPORT_H
