//===- runtime/Executor.cpp -----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Executor.h"
#include "cm2/FloatingPointUnit.h"
#include "cm2/Sequencer.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/FpuBinding.h"
#include "runtime/HaloExchange.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include <algorithm>
#include <cmath>
#include <memory>

using namespace cmcc;

namespace {

/// Drives the FPU through one node's planned half-strips with \p
/// BindingT resolving memory operands (FastNodeBinding by default,
/// VirtualNodeBinding when Options::UseFastPath is off). Returns the
/// executed-op count for the cross-check against the analytic total.
template <typename BindingT>
long runStripsWithBinding(FloatingPointUnit &Fpu,
                          const std::vector<const Array2D *> &PaddedSources,
                          int Border, const StencilSpec &Spec,
                          const std::vector<const Array2D *> &TapCoefficients,
                          Array2D &Result,
                          const std::vector<Executor::PlannedStrip> &Plan) {
  long Ops = 0;
  for (const Executor::PlannedStrip &PS : Plan) {
    // Trace-only: one relaxed load + branch per half-strip when off.
    CMCC_SPAN("fpu.half_strip");
    const HalfStrip &HS = PS.HS;
    const WidthSchedule *W = PS.Sched;
    Fpu.reset();
    if (W->Regs.hasUnitRegister())
      Fpu.pokeRegister(W->Regs.unitRegister(), 1.0f);

    HalfStripOperands Operands;
    Operands.PaddedSources = &PaddedSources;
    Operands.Border = Border;
    Operands.Spec = &Spec;
    Operands.TapCoefficients = &TapCoefficients;
    Operands.Result = &Result;
    Operands.LeftCol = HS.LeftCol;
    BindingT Mem(Operands);
    // Lines are processed bottom to top; the prologue's offsets are
    // relative to the first (bottom) line.
    Mem.setLine(HS.RowEnd - 1);
    Fpu.executeSequence(W->Prologue, Mem);
    const int U = static_cast<int>(W->Phases.size());
    for (int T = 0; T != HS.lines(); ++T) {
      Mem.setLine(HS.RowEnd - 1 - T);
      Fpu.executeSequence(W->Phases[T % U], Mem);
    }
    Fpu.drainPipeline();
    Ops += Fpu.loadsExecuted() + Fpu.maddsExecuted() +
           Fpu.storesExecuted() + Fpu.fillersExecuted();
  }
  return Ops;
}

} // namespace

std::vector<HalfStrip> Executor::planFor(const CompiledStencil &Compiled,
                                         int SubRows, int SubCols) const {
  std::vector<int> Widths;
  for (int W : Compiled.availableWidths()) {
    if (Opts.ForceWidth != 0 && W != Opts.ForceWidth && W != 1)
      continue;
    Widths.push_back(W);
  }
  if (Widths.empty())
    return {};
  return planHalfStrips(planStrips(SubCols, Widths), SubRows,
                        Opts.UseHalfStrips);
}

std::vector<Executor::PlannedStrip>
Executor::resolvedPlanFor(const CompiledStencil &Compiled, int SubRows,
                          int SubCols) const {
  std::vector<PlannedStrip> Plan;
  for (const HalfStrip &HS : planFor(Compiled, SubRows, SubCols)) {
    const WidthSchedule *W = Compiled.withWidth(HS.Width);
    assert(W && "strip plan chose an unavailable width");
    Plan.push_back({HS, W});
  }
  return Plan;
}

void Executor::runNode(const CompiledStencil &Compiled,
                       const ResolvedStencilArguments &Resolved,
                       DistributedArray &ResultArray,
                       const std::vector<std::vector<Array2D>> &PaddedBySource,
                       const std::vector<PlannedStrip> &Plan, NodeCoord Node,
                       int Border, long *OpsExecuted) const {
  const StencilSpec &Spec = Compiled.Spec;

  // The halo exchange already ran (every node exchanges simultaneously);
  // pick this node's padded copy of each source.
  const int NodeId = ResultArray.grid().nodeId(Node);
  std::vector<const Array2D *> PaddedSources;
  PaddedSources.reserve(Spec.sourceCount());
  for (int S = 0; S != Spec.sourceCount(); ++S)
    PaddedSources.push_back(&PaddedBySource[S][NodeId]);

  // Coefficient names were resolved once per run(); index, don't look up.
  std::vector<const Array2D *> TapCoefficients(Spec.Taps.size(), nullptr);
  for (size_t I = 0; I != Spec.Taps.size(); ++I)
    if (const DistributedArray *C = Resolved.TapCoefficients[I])
      TapCoefficients[I] = &C->subgrid(Node);

  Array2D &Result = ResultArray.subgrid(Node);

  FloatingPointUnit Fpu(Config);
  long Ops =
      Opts.UseFastPath
          ? runStripsWithBinding<FastNodeBinding>(Fpu, PaddedSources, Border,
                                                  Spec, TapCoefficients,
                                                  Result, Plan)
          : runStripsWithBinding<VirtualNodeBinding>(Fpu, PaddedSources,
                                                     Border, Spec,
                                                     TapCoefficients, Result,
                                                     Plan);
  if (OpsExecuted)
    *OpsExecuted = Ops;
}

std::vector<Executor::TiledStep>
Executor::tiledSteps(const CompiledStencil &Compiled,
                     const std::vector<PlannedStrip> &Plan, int SubRows,
                     int SubCols, int TimeTile) const {
  std::vector<TiledStep> Steps;
  if (TimeTile <= 1)
    return Steps;
  const int Radius = Compiled.Spec.borderWidths().maximum();
  for (int S = 1; S != TimeTile; ++S) {
    TiledStep Step;
    Step.POut = (TimeTile - S) * Radius;
    // Geometry only — mask flags are re-derived per node at execution
    // time from its global grid position, so circular boundaries here
    // keep every region unmasked.
    for (const timetile::OwnerRegion &Reg : timetile::ownerRegions(
             SubRows, SubCols, Step.POut, BoundaryKind::Circular,
             BoundaryKind::Circular, 0, 1, 0, 1)) {
      RegionStrips RS;
      RS.Window = Reg;
      // Restrict the shared strip plan to the region's owner-space
      // window: full-width strips with clipped line ranges (clipped
      // stores are dropped by the clamped binding but still burn
      // cycles, like deselected SIMD processors). Strips whose columns
      // miss the window entirely are skipped.
      for (const PlannedStrip &PS : Plan) {
        if (PS.HS.LeftCol + PS.HS.Width <= Reg.C0 ||
            PS.HS.LeftCol >= Reg.C1)
          continue;
        const int R0 = std::max(PS.HS.RowBegin, Reg.R0);
        const int R1 = std::min(PS.HS.RowEnd, Reg.R1);
        if (R0 >= R1)
          continue;
        PlannedStrip Clipped = PS;
        Clipped.HS.RowBegin = R0;
        Clipped.HS.RowEnd = R1;
        RS.Strips.push_back(Clipped);
        RS.Ops += static_cast<long>(Clipped.Sched->Prologue.size()) +
                  static_cast<long>(Clipped.HS.lines()) *
                      Clipped.Sched->opsPerLine();
      }
      Step.Regions.push_back(std::move(RS));
    }
    Steps.push_back(std::move(Step));
  }
  return Steps;
}

void Executor::runNodeTiledStep(
    const CompiledStencil &Compiled, const Array2D &In, Array2D &Out,
    const std::vector<const Array2D *> &PaddedCoefficients,
    const TiledStep &Step, NodeCoord Node, int Border, int CoeffBorder,
    long *OpsExecuted) const {
  const StencilSpec &Spec = Compiled.Spec;
  const int SubRows = In.rows() - 2 * Border;
  const int SubCols = In.cols() - 2 * Border;

  // Fresh NaN fill each step: values outside the step's valid extension
  // must never be mistaken for data (the clamped binding's loads beyond
  // the allocation return NaN for the same reason).
  if (Out.rows() != In.rows() || Out.cols() != In.cols())
    Out = Array2D(In.rows(), In.cols(),
                  std::numeric_limits<float>::quiet_NaN());
  else
    Out.fill(std::numeric_limits<float>::quiet_NaN());

  const int GlobalRow = Opts.Domain ? Opts.Domain->globalRow(Node.Row)
                                    : Node.Row;
  const int GlobalCol = Opts.Domain ? Opts.Domain->globalCol(Node.Col)
                                    : Node.Col;
  const int GlobalRows = Opts.Domain ? Opts.Domain->GlobalRows
                                     : Config.NodeRows;
  const int GlobalCols = Opts.Domain ? Opts.Domain->GlobalCols
                                     : Config.NodeCols;
  const std::vector<timetile::OwnerRegion> Regions = timetile::ownerRegions(
      SubRows, SubCols, Step.POut, Spec.BoundaryDim1, Spec.BoundaryDim2,
      GlobalRow, GlobalRows, GlobalCol, GlobalCols);
  assert(Regions.size() == Step.Regions.size() &&
         "per-node regions disagree with the precomputed step geometry");

  FloatingPointUnit Fpu(Config);
  long Ops = 0;
  for (size_t I = 0; I != Regions.size(); ++I) {
    const timetile::OwnerRegion &Reg = Regions[I];
    const int RowShift = Border + Reg.DR * SubRows;
    const int ColShift = Border + Reg.DC * SubCols;
    if (Reg.ZeroMasked) {
      // The owner sits across a Zero (EOSHIFT) global edge: the cells
      // are identically zero at every step — written, never computed
      // (the SIMD machine still burns the cycles; see analyticCycles).
      for (int R = Reg.R0; R != Reg.R1; ++R)
        for (int C = Reg.C0; C != Reg.C1; ++C)
          Out.at(R + RowShift, C + ColShift) = 0.0f;
      continue;
    }
    for (const PlannedStrip &PS : Step.Regions[I].Strips) {
      CMCC_SPAN("fpu.half_strip");
      const WidthSchedule *W = PS.Sched;
      Fpu.reset();
      if (W->Regs.hasUnitRegister())
        Fpu.pokeRegister(W->Regs.unitRegister(), 1.0f);

      ClampedRegionBinding::Operands Operands;
      Operands.Input = &In;
      Operands.InRow0 = RowShift;
      Operands.InCol0 = ColShift;
      Operands.Spec = &Spec;
      Operands.PaddedCoefficients = &PaddedCoefficients;
      Operands.CoRow0 = RowShift - Border + CoeffBorder;
      Operands.CoCol0 = ColShift - Border + CoeffBorder;
      Operands.Output = &Out;
      Operands.OutRow0 = RowShift;
      Operands.OutCol0 = ColShift;
      Operands.LeftCol = PS.HS.LeftCol;
      Operands.KeepRow0 = Reg.R0;
      Operands.KeepRow1 = Reg.R1;
      Operands.KeepCol0 = Reg.C0;
      Operands.KeepCol1 = Reg.C1;
      ClampedRegionBinding Mem(Operands);
      Mem.setLine(PS.HS.RowEnd - 1);
      Fpu.executeSequence(W->Prologue, Mem);
      const int U = static_cast<int>(W->Phases.size());
      for (int T = 0; T != PS.HS.lines(); ++T) {
        Mem.setLine(PS.HS.RowEnd - 1 - T);
        Fpu.executeSequence(W->Phases[T % U], Mem);
      }
      Fpu.drainPipeline();
      Ops += Fpu.loadsExecuted() + Fpu.maddsExecuted() +
             Fpu.storesExecuted() + Fpu.fillersExecuted();
    }
  }
  if (OpsExecuted)
    *OpsExecuted += Ops;
}

CycleBreakdown Executor::analyticCycles(const CompiledStencil &Compiled,
                                        int SubRows, int SubCols,
                                        int TimeTile) const {
  const StencilSpec &Spec = Compiled.Spec;
  CycleBreakdown Cycles;
  const int Radius = Spec.borderWidths().maximum();
  const int Border = TimeTile * Radius;

  Sequencer Seq(Config);
  const std::vector<PlannedStrip> Plan =
      resolvedPlanFor(Compiled, SubRows, SubCols);
  // Intermediate steps: every node executes every region's restricted
  // strips in lock-step (a masked region's node is merely deselected —
  // it burns the same cycles), so per-node cost is the plain sum.
  for (const TiledStep &Step : tiledSteps(Compiled, Plan, SubRows, SubCols,
                                          TimeTile))
    for (const RegionStrips &RS : Step.Regions)
      for (const PlannedStrip &PS : RS.Strips)
        Cycles += Seq.halfStripCycles(
            static_cast<int>(PS.Sched->Prologue.size()), PS.HS.lines(),
            PS.Sched->opsPerLine(), PS.Sched->maddsPerLine());
  // Final step: the standard full-subgrid plan.
  for (const PlannedStrip &PS : Plan)
    Cycles += Seq.halfStripCycles(static_cast<int>(PS.Sched->Prologue.size()),
                                  PS.HS.lines(), PS.Sched->opsPerLine(),
                                  PS.Sched->maddsPerLine());

  HaloExchangeShape Shape;
  Shape.SubgridRows = SubRows;
  Shape.SubgridCols = SubCols;
  Shape.BorderWidth = Border;
  // Tiled runs always ship corners: side-pad intermediate values feed
  // corner-adjacent cells of later steps even for cornerless stencils.
  Shape.NeedsCorners = TimeTile > 1 ? true
                                    : (Spec.needsCornerData() ||
                                       !Opts.AllowCornerSkip);
  // Every source array needs its own halo exchange.
  Cycles.Communication =
      haloExchangeCycles(Config, Shape, Opts.Primitive) *
      std::max(1, Spec.sourceCount());
  if (TimeTile > 1) {
    // Intermediate pad cells index coefficient arrays at owner
    // positions, so each distinct coefficient array is exchanged once
    // per tile at border (k-1) x radius.
    HaloExchangeShape CoeffShape = Shape;
    CoeffShape.BorderWidth = (TimeTile - 1) * Radius;
    CoeffShape.NeedsCorners = true;
    Cycles.Communication +=
        haloExchangeCycles(Config, CoeffShape, Opts.Primitive) *
        static_cast<long>(Spec.coefficientArrayNames().size());
  }
  return Cycles;
}

double Executor::hostSecondsPerIteration(const CompiledStencil &Compiled,
                                         int SubCols) const {
  // The run-time library's outer loops run on the front-end computer:
  // one dispatch per call plus one per half-strip. SubRows only affects
  // the microcode's internal line count, not the dispatch count.
  size_t Dispatches = planFor(Compiled, /*SubRows=*/2, SubCols).size();
  return (Config.HostOverheadUsPerCall +
          static_cast<double>(Dispatches) * Config.HostOverheadUsPerStrip) *
         1e-6;
}

TimingReport Executor::timeOnly(const CompiledStencil &Compiled, int SubRows,
                                int SubCols, const RunOptions &RO) const {
  CMCC_SPAN("executor.time_only");
  TimingReport Report;
  Report.Cycles = analyticCycles(Compiled, SubRows, SubCols, RO.TimeTile);
  Report.Iterations = RO.Iterations;
  Report.Nodes = Config.nodeCount();
  Report.ClockMHz = Config.ClockMHz;
  Report.HostSecondsPerIteration = hostSecondsPerIteration(Compiled, SubCols);
  if (RO.TimeTile > 1) {
    // A tiled iteration dispatches every intermediate region strip plus
    // the final full plan.
    const std::vector<PlannedStrip> Plan =
        resolvedPlanFor(Compiled, SubRows, SubCols);
    size_t Dispatches = Plan.size();
    for (const TiledStep &Step :
         tiledSteps(Compiled, Plan, SubRows, SubCols, RO.TimeTile))
      for (const RegionStrips &RS : Step.Regions)
        Dispatches += RS.Strips.size();
    Report.HostSecondsPerIteration =
        (Config.HostOverheadUsPerCall +
         static_cast<double>(Dispatches) * Config.HostOverheadUsPerStrip) *
        1e-6;
  }
  // One fused unit advances the solution TimeTile timesteps.
  Report.UsefulFlopsPerNodePerIteration =
      static_cast<long>(Compiled.Spec.usefulFlopsPerPoint()) * SubRows *
      SubCols * std::max(1, RO.TimeTile);
  return Report;
}

Expected<TimingReport> Executor::run(const CompiledStencil &Compiled,
                                     StencilArguments &Args,
                                     const RunOptions &RO) const {
  // Validate and resolve every bound name exactly once; the per-node
  // paths index the flat vectors.
  Expected<ResolvedStencilArguments> Resolved =
      resolveStencilArguments(Config, Compiled, Args);
  if (!Resolved)
    return Resolved.error();
  return runResolved(Compiled, *Resolved, RO);
}

Expected<TimingReport>
Executor::runResolved(const CompiledStencil &Compiled,
                      const ResolvedStencilArguments &Resolved,
                      const RunOptions &RO) const {
  CMCC_SPAN("executor.run");
  static obs::Counter &Runs =
      obs::Registry::process().counter("executor.runs");
  static obs::Histogram &RunHostUs =
      obs::Registry::process().histogram("executor.run_host_us");
  Runs.add(1);
  obs::ScopedLatencyUs RunTimer(RunHostUs);
  assert(RO.Iterations > 0 && "iteration count must be positive");

  const int SubRows = Resolved.Result->subRows();
  const int SubCols = Resolved.Result->subCols();
  const StencilSpec &Spec = Compiled.Spec;
  const int K = RO.TimeTile;
  if (Error E = timetile::validateTimeTile(Spec, K, SubRows, SubCols))
    return E;
  const int Radius = Spec.borderWidths().maximum();
  // One exchange at the widened border feeds K chained steps; the
  // coefficient pads only need to reach the deepest intermediate
  // extension, (K-1) x radius.
  const int Border = K * Radius;
  const int CoeffBorder = (K - 1) * Radius;

  // Plan the half-strips once per run: every node executes the same
  // plan (the machine is synchronous SIMD), and the cross-check below
  // reuses it too.
  const std::vector<PlannedStrip> Plan = [&] {
    CMCC_SPAN("executor.plan_strips");
    return resolvedPlanFor(Compiled, SubRows, SubCols);
  }();
  if (Plan.empty())
    return makeError("the available multistencil widths cannot cover a "
                     "subgrid of " + std::to_string(SubCols) +
                     " columns (no width-1 schedule)");
  const std::vector<TiledStep> Steps =
      tiledSteps(Compiled, Plan, SubRows, SubCols, K);

  long Node0Ops = -1;
  if (Opts.Mode != FunctionalMode::None) {
    // The host execution engine: Options::ThreadCount == 0 shares the
    // process-wide pool; otherwise a private pool of exactly that many
    // threads (ThreadCount == 1 degenerates to inline serial loops).
    std::unique_ptr<ThreadPool> PrivatePool;
    ThreadPool *Pool;
    if (Opts.ThreadCount == 0) {
      Pool = &ThreadPool::shared();
    } else {
      PrivatePool = std::make_unique<ThreadPool>(Opts.ThreadCount);
      Pool = PrivatePool.get();
    }

    // Step one of the run-time library: the halo exchange (the paper's
    // three-step protocol), once per source array, all nodes at once.
    // Tiled runs always fetch corners — intermediate side-pad values
    // feed corner-adjacent cells of later steps even for cornerless
    // stencils.
    const bool FetchCorners =
        K > 1 || Spec.needsCornerData() || !Opts.AllowCornerSkip;
    auto Exchange = [&](const DistributedArray &A, int SourceIndex,
                        int B) -> Expected<std::vector<Array2D>> {
      // Probed per exchange step, not per run: any one of a run's
      // exchanges can be lost. Failing before the compute loops means
      // a failed run never leaves partial results — every retry starts
      // from untouched sources.
      if (fault::probe("halo.exchange"))
        return fault::injectedFault("halo.exchange");
      if (Opts.Domain)
        return exchangeHalosPartitioned(A, *Opts.Domain, Opts.Transport,
                                        SourceIndex, B, Spec.BoundaryDim1,
                                        Spec.BoundaryDim2, FetchCorners,
                                        Pool);
      return exchangeHalos(A, B, Spec.BoundaryDim1, Spec.BoundaryDim2,
                           FetchCorners, Pool);
    };
    std::vector<std::vector<Array2D>> PaddedBySource;
    PaddedBySource.reserve(Spec.sourceCount());
    for (int S = 0; S != Spec.sourceCount(); ++S) {
      Expected<std::vector<Array2D>> Padded =
          Exchange(*Resolved.Sources[S], S, Border);
      if (!Padded)
        return Padded.error();
      PaddedBySource.push_back(std::move(*Padded));
    }

    // Tiled runs also exchange each distinct coefficient array once:
    // intermediate pad cells index coefficients at owner positions.
    // Dedup by name in first-appearance tap order — deterministic
    // across shard workers, and matching analyticCycles — with
    // transport source indices following the real sources.
    std::vector<std::vector<Array2D>> CoeffPadded;
    std::vector<int> TapCoeffOrdinal(Spec.Taps.size(), -1);
    if (K > 1) {
      const std::vector<std::string> Names = Spec.coefficientArrayNames();
      for (size_t I = 0; I != Spec.Taps.size(); ++I)
        if (Spec.Taps[I].Coeff.isArray())
          TapCoeffOrdinal[I] = static_cast<int>(
              std::find(Names.begin(), Names.end(), Spec.Taps[I].Coeff.Name) -
              Names.begin());
      CoeffPadded.resize(Names.size());
      for (size_t N = 0; N != Names.size(); ++N) {
        const DistributedArray *C = nullptr;
        for (size_t I = 0; I != Spec.Taps.size(); ++I)
          if (TapCoeffOrdinal[I] == static_cast<int>(N)) {
            C = Resolved.TapCoefficients[I];
            break;
          }
        assert(C && "coefficient name resolved to no array");
        Expected<std::vector<Array2D>> Padded =
            Exchange(*C, Spec.sourceCount() + static_cast<int>(N),
                     CoeffBorder);
        if (!Padded)
          return Padded.error();
        CoeffPadded[N] = std::move(*Padded);
      }
    }

    const NodeGrid &Grid = Resolved.Result->grid();
    std::vector<int> NodeIds;
    if (Opts.Mode == FunctionalMode::AllNodes) {
      NodeIds.resize(static_cast<size_t>(Grid.nodeCount()));
      for (int Id = 0; Id != Grid.nodeCount(); ++Id)
        NodeIds[static_cast<size_t>(Id)] = Id;
    } else {
      NodeIds.push_back(0);
    }

    long TiledNode0Ops = 0;
    std::vector<std::vector<Array2D>> FinalInput;
    if (K == 1) {
      FinalInput = std::move(PaddedBySource);
    } else {
      // K-1 intermediate steps through double-buffered wide scratch,
      // then the final step writes the result subgrids directly. The
      // parallelFor join between steps is the barrier: step s+1 reads
      // only what step s finished writing.
      std::vector<Array2D> Buffers[2];
      Buffers[0].resize(static_cast<size_t>(Grid.nodeCount()));
      Buffers[1].resize(static_cast<size_t>(Grid.nodeCount()));
      for (size_t S = 0; S != Steps.size(); ++S) {
        std::vector<Array2D> &In =
            S == 0 ? PaddedBySource[0] : Buffers[(S - 1) & 1];
        std::vector<Array2D> &Out = Buffers[S & 1];
        Pool->parallelFor(static_cast<int>(NodeIds.size()), [&](int I) {
          const int Id = NodeIds[static_cast<size_t>(I)];
          std::vector<const Array2D *> NodeCoeffs(Spec.Taps.size(), nullptr);
          for (size_t T = 0; T != Spec.Taps.size(); ++T)
            if (TapCoeffOrdinal[T] >= 0)
              NodeCoeffs[T] = &CoeffPadded[static_cast<size_t>(
                  TapCoeffOrdinal[T])][static_cast<size_t>(Id)];
          runNodeTiledStep(Compiled, In[static_cast<size_t>(Id)],
                           Out[static_cast<size_t>(Id)], NodeCoeffs,
                           Steps[S], Grid.coordOf(Id), Border, CoeffBorder,
                           Id == 0 ? &TiledNode0Ops : nullptr);
        });
      }
      FinalInput.resize(1);
      FinalInput[0] = std::move(Buffers[(Steps.size() - 1) & 1]);
    }

    Pool->parallelFor(static_cast<int>(NodeIds.size()), [&](int I) {
      const int Id = NodeIds[static_cast<size_t>(I)];
      long Ops = -1;
      runNode(Compiled, Resolved, *Resolved.Result, FinalInput, Plan,
              Grid.coordOf(Id), Border, Id == 0 ? &Ops : nullptr);
      if (Id == 0)
        Node0Ops = TiledNode0Ops + Ops;
    });
  }

  TimingReport Report = timeOnly(Compiled, SubRows, SubCols, RO);

  // Cross-check: the ops the pipeline model actually executed must match
  // the analytic count the cycle cost is derived from. Node 0 skips the
  // regions where it is Zero-masked (deselected), so its expected count
  // subtracts those.
  if (Node0Ops >= 0) {
    long Analytic = 0;
    for (const PlannedStrip &PS : Plan)
      Analytic += static_cast<long>(PS.Sched->Prologue.size()) +
                  static_cast<long>(PS.HS.lines()) * PS.Sched->opsPerLine();
    if (K > 1) {
      const int GlobalRow = Opts.Domain ? Opts.Domain->globalRow(0) : 0;
      const int GlobalCol = Opts.Domain ? Opts.Domain->globalCol(0) : 0;
      const int GlobalRows =
          Opts.Domain ? Opts.Domain->GlobalRows : Config.NodeRows;
      const int GlobalCols =
          Opts.Domain ? Opts.Domain->GlobalCols : Config.NodeCols;
      for (const TiledStep &Step : Steps) {
        const std::vector<timetile::OwnerRegion> Regions =
            timetile::ownerRegions(SubRows, SubCols, Step.POut,
                                   Spec.BoundaryDim1, Spec.BoundaryDim2,
                                   GlobalRow, GlobalRows, GlobalCol,
                                   GlobalCols);
        for (size_t I = 0; I != Regions.size(); ++I)
          if (!Regions[I].ZeroMasked)
            Analytic += Step.Regions[I].Ops;
      }
    }
    assert(Node0Ops == Analytic &&
           "analytic op count disagrees with executed ops");
    (void)Analytic;
  }
  return Report;
}
