//===- runtime/Executor.cpp -----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Executor.h"
#include "cm2/FloatingPointUnit.h"
#include "cm2/Sequencer.h"
#include "runtime/HaloExchange.h"
#include <algorithm>
#include <cmath>

using namespace cmcc;

namespace {

/// Resolves memory operands for one half-strip on one node: the
/// sequencer's run-time address generation.
class NodeMemoryBinding : public FpuMemoryInterface {
public:
  NodeMemoryBinding(std::vector<const Array2D *> PaddedSources, int Border,
                    const StencilSpec &Spec,
                    std::vector<const Array2D *> TapCoefficients,
                    Array2D &Result, int LeftCol)
      : PaddedSources(std::move(PaddedSources)), Border(Border), Spec(Spec),
        TapCoefficients(std::move(TapCoefficients)), Result(Result),
        LeftCol(LeftCol) {}

  void setLine(int Row) { AbsRow = Row; }

  float loadData(int Source, int Dy, int Dx) override {
    return PaddedSources[Source]->at(AbsRow + Dy + Border,
                                     LeftCol + Dx + Border);
  }

  float loadCoefficient(int TapIndex, int ResultIndex) override {
    const Tap &T = Spec.Taps[TapIndex];
    float C = T.Coeff.isArray()
                  ? TapCoefficients[TapIndex]->at(AbsRow, LeftCol + ResultIndex)
                  : static_cast<float>(T.Coeff.Value);
    return static_cast<float>(T.Sign) * C;
  }

  void storeResult(int ResultIndex, float Value) override {
    Result.at(AbsRow, LeftCol + ResultIndex) = Value;
  }

private:
  std::vector<const Array2D *> PaddedSources;
  int Border;
  const StencilSpec &Spec;
  std::vector<const Array2D *> TapCoefficients;
  Array2D &Result;
  int LeftCol;
  int AbsRow = 0;
};

} // namespace

std::vector<HalfStrip> Executor::planFor(const CompiledStencil &Compiled,
                                         int SubRows, int SubCols) const {
  std::vector<int> Widths;
  for (int W : Compiled.availableWidths()) {
    if (Opts.ForceWidth != 0 && W != Opts.ForceWidth && W != 1)
      continue;
    Widths.push_back(W);
  }
  if (Widths.empty())
    return {};
  return planHalfStrips(planStrips(SubCols, Widths), SubRows,
                        Opts.UseHalfStrips);
}

Error Executor::validateArguments(const CompiledStencil &Compiled,
                                  const StencilArguments &Args) const {
  const StencilSpec &Spec = Compiled.Spec;
  if (!Args.Result || !Args.Source)
    return makeError("result and source arrays must be bound");
  if (Args.Result == Args.Source)
    return makeError("result must not alias the stencil variable");
  const DistributedArray &R = *Args.Result;
  auto SameShape = [&](const DistributedArray &A) {
    return A.subRows() == R.subRows() && A.subCols() == R.subCols() &&
           A.grid().rows() == R.grid().rows() &&
           A.grid().cols() == R.grid().cols();
  };
  if (!SameShape(*Args.Source))
    return makeError("source shape differs from result shape (the paper "
                     "requires all arrays be divided the same way)");
  for (const std::string &Name : Spec.ExtraSources) {
    auto It = Args.ExtraSources.find(Name);
    if (It == Args.ExtraSources.end() || !It->second)
      return makeError("source array '" + Name + "' is not bound");
    if (!SameShape(*It->second))
      return makeError("source array '" + Name +
                       "' has a different shape");
    if (It->second == Args.Result)
      return makeError("result must not alias source '" + Name + "'");
  }
  for (const std::string &Name : Spec.coefficientArrayNames()) {
    auto It = Args.Coefficients.find(Name);
    if (It == Args.Coefficients.end() || !It->second)
      return makeError("coefficient array '" + Name + "' is not bound");
    if (!SameShape(*It->second))
      return makeError("coefficient array '" + Name +
                       "' has a different shape");
  }
  int Border = Spec.borderWidths().maximum();
  if (Border > R.subRows() || Border > R.subCols())
    return makeError("stencil border width " + std::to_string(Border) +
                     " exceeds the per-node subgrid; data would be needed "
                     "from beyond the four neighbors");
  if (R.grid().rows() != Config.NodeRows || R.grid().cols() != Config.NodeCols)
    return makeError("arrays are distributed over a different node grid "
                     "than this executor's machine");
  if (planFor(Compiled, R.subRows(), R.subCols()).empty())
    return makeError("the available multistencil widths cannot cover a "
                     "subgrid of " + std::to_string(R.subCols()) +
                     " columns (no width-1 schedule)");
  return Error::success();
}

void Executor::runNode(const CompiledStencil &Compiled,
                       StencilArguments &Args,
                       const std::vector<std::vector<Array2D>> &PaddedBySource,
                       NodeCoord Node, long *OpsExecuted) const {
  const StencilSpec &Spec = Compiled.Spec;
  const int Border = Spec.borderWidths().maximum();

  // The halo exchange already ran (every node exchanges simultaneously);
  // pick this node's padded copy of each source.
  const int NodeId = Args.Result->grid().nodeId(Node);
  std::vector<const Array2D *> PaddedSources;
  PaddedSources.reserve(Spec.sourceCount());
  for (int S = 0; S != Spec.sourceCount(); ++S)
    PaddedSources.push_back(&PaddedBySource[S][NodeId]);

  std::vector<const Array2D *> TapCoefficients(Spec.Taps.size(), nullptr);
  for (size_t I = 0; I != Spec.Taps.size(); ++I)
    if (Spec.Taps[I].Coeff.isArray())
      TapCoefficients[I] =
          &Args.Coefficients.at(Spec.Taps[I].Coeff.Name)->subgrid(Node);

  Array2D &Result = Args.Result->subgrid(Node);
  const int SubRows = Args.Result->subRows();
  const int SubCols = Args.Result->subCols();

  FloatingPointUnit Fpu(Config);
  long Ops = 0;
  for (const HalfStrip &HS : planFor(Compiled, SubRows, SubCols)) {
    const WidthSchedule *W = Compiled.withWidth(HS.Width);
    assert(W && "strip plan chose an unavailable width");
    Fpu.reset();
    if (W->Regs.hasUnitRegister())
      Fpu.pokeRegister(W->Regs.unitRegister(), 1.0f);

    NodeMemoryBinding Mem(PaddedSources, Border, Spec, TapCoefficients,
                          Result, HS.LeftCol);
    // Lines are processed bottom to top; the prologue's offsets are
    // relative to the first (bottom) line.
    Mem.setLine(HS.RowEnd - 1);
    Fpu.executeSequence(W->Prologue, Mem);
    const int U = static_cast<int>(W->Phases.size());
    for (int T = 0; T != HS.lines(); ++T) {
      Mem.setLine(HS.RowEnd - 1 - T);
      Fpu.executeSequence(W->Phases[T % U], Mem);
    }
    Fpu.drainPipeline();
    Ops += Fpu.loadsExecuted() + Fpu.maddsExecuted() +
           Fpu.storesExecuted() + Fpu.fillersExecuted();
  }
  if (OpsExecuted)
    *OpsExecuted = Ops;
}

CycleBreakdown Executor::analyticCycles(const CompiledStencil &Compiled,
                                        int SubRows, int SubCols) const {
  const StencilSpec &Spec = Compiled.Spec;
  CycleBreakdown Cycles;

  Sequencer Seq(Config);
  for (const HalfStrip &HS : planFor(Compiled, SubRows, SubCols)) {
    const WidthSchedule *W = Compiled.withWidth(HS.Width);
    assert(W && "strip plan chose an unavailable width");
    Cycles += Seq.halfStripCycles(static_cast<int>(W->Prologue.size()),
                                  HS.lines(), W->opsPerLine(),
                                  W->maddsPerLine());
  }

  int Border = Spec.borderWidths().maximum();
  HaloExchangeShape Shape;
  Shape.SubgridRows = SubRows;
  Shape.SubgridCols = SubCols;
  Shape.BorderWidth = Border;
  Shape.NeedsCorners = Spec.needsCornerData() || !Opts.AllowCornerSkip;
  // Every source array needs its own halo exchange.
  Cycles.Communication =
      haloExchangeCycles(Config, Shape, Opts.Primitive) *
      std::max(1, Spec.sourceCount());
  return Cycles;
}

double Executor::hostSecondsPerIteration(const CompiledStencil &Compiled,
                                         int SubCols) const {
  // The run-time library's outer loops run on the front-end computer:
  // one dispatch per call plus one per half-strip. SubRows only affects
  // the microcode's internal line count, not the dispatch count.
  size_t Dispatches = planFor(Compiled, /*SubRows=*/2, SubCols).size();
  return (Config.HostOverheadUsPerCall +
          static_cast<double>(Dispatches) * Config.HostOverheadUsPerStrip) *
         1e-6;
}

TimingReport Executor::timeOnly(const CompiledStencil &Compiled, int SubRows,
                                int SubCols, int Iterations) const {
  TimingReport Report;
  Report.Cycles = analyticCycles(Compiled, SubRows, SubCols);
  Report.Iterations = Iterations;
  Report.Nodes = Config.nodeCount();
  Report.ClockMHz = Config.ClockMHz;
  Report.HostSecondsPerIteration = hostSecondsPerIteration(Compiled, SubCols);
  Report.UsefulFlopsPerNodePerIteration =
      static_cast<long>(Compiled.Spec.usefulFlopsPerPoint()) * SubRows *
      SubCols;
  return Report;
}

Expected<TimingReport> Executor::run(const CompiledStencil &Compiled,
                                     StencilArguments &Args,
                                     int Iterations) const {
  if (Error E = validateArguments(Compiled, Args))
    return E;
  assert(Iterations > 0 && "iteration count must be positive");

  const int SubRows = Args.Result->subRows();
  const int SubCols = Args.Result->subCols();

  long Node0Ops = -1;
  if (Opts.Mode != FunctionalMode::None) {
    // Step one of the run-time library: the halo exchange (the paper's
    // three-step protocol), once per source array, all nodes at once.
    const StencilSpec &Spec = Compiled.Spec;
    const int Border = Spec.borderWidths().maximum();
    const bool FetchCorners =
        Spec.needsCornerData() || !Opts.AllowCornerSkip;
    std::vector<std::vector<Array2D>> PaddedBySource;
    PaddedBySource.reserve(Spec.sourceCount());
    for (int S = 0; S != Spec.sourceCount(); ++S) {
      const DistributedArray *Src =
          S == 0 ? Args.Source : Args.ExtraSources.at(Spec.sourceName(S));
      PaddedBySource.push_back(exchangeHalos(*Src, Border,
                                             Spec.BoundaryDim1,
                                             Spec.BoundaryDim2,
                                             FetchCorners));
    }

    switch (Opts.Mode) {
    case FunctionalMode::AllNodes: {
      const NodeGrid &Grid = Args.Result->grid();
      for (int NR = 0; NR != Grid.rows(); ++NR)
        for (int NC = 0; NC != Grid.cols(); ++NC) {
          long Ops = 0;
          runNode(Compiled, Args, PaddedBySource, {NR, NC}, &Ops);
          if (NR == 0 && NC == 0)
            Node0Ops = Ops;
        }
      break;
    }
    case FunctionalMode::SingleNode:
      runNode(Compiled, Args, PaddedBySource, {0, 0}, &Node0Ops);
      break;
    case FunctionalMode::None:
      break;
    }
  }

  TimingReport Report = timeOnly(Compiled, SubRows, SubCols, Iterations);

  // Cross-check: the ops the pipeline model actually executed must match
  // the analytic count the cycle cost is derived from.
  if (Node0Ops >= 0) {
    long Analytic = 0;
    for (const HalfStrip &HS : planFor(Compiled, SubRows, SubCols)) {
      const WidthSchedule *W = Compiled.withWidth(HS.Width);
      Analytic += static_cast<long>(W->Prologue.size()) +
                  static_cast<long>(HS.lines()) * W->opsPerLine();
    }
    assert(Node0Ops == Analytic &&
           "analytic op count disagrees with executed ops");
    (void)Analytic;
  }
  return Report;
}
