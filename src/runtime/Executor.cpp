//===- runtime/Executor.cpp -----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Executor.h"
#include "cm2/FloatingPointUnit.h"
#include "cm2/Sequencer.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/FpuBinding.h"
#include "runtime/HaloExchange.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"
#include <algorithm>
#include <cmath>
#include <memory>

using namespace cmcc;

namespace {

/// Drives the FPU through one node's planned half-strips with \p
/// BindingT resolving memory operands (FastNodeBinding by default,
/// VirtualNodeBinding when Options::UseFastPath is off). Returns the
/// executed-op count for the cross-check against the analytic total.
template <typename BindingT>
long runStripsWithBinding(FloatingPointUnit &Fpu,
                          const std::vector<const Array2D *> &PaddedSources,
                          int Border, const StencilSpec &Spec,
                          const std::vector<const Array2D *> &TapCoefficients,
                          Array2D &Result,
                          const std::vector<Executor::PlannedStrip> &Plan) {
  long Ops = 0;
  for (const Executor::PlannedStrip &PS : Plan) {
    // Trace-only: one relaxed load + branch per half-strip when off.
    CMCC_SPAN("fpu.half_strip");
    const HalfStrip &HS = PS.HS;
    const WidthSchedule *W = PS.Sched;
    Fpu.reset();
    if (W->Regs.hasUnitRegister())
      Fpu.pokeRegister(W->Regs.unitRegister(), 1.0f);

    HalfStripOperands Operands;
    Operands.PaddedSources = &PaddedSources;
    Operands.Border = Border;
    Operands.Spec = &Spec;
    Operands.TapCoefficients = &TapCoefficients;
    Operands.Result = &Result;
    Operands.LeftCol = HS.LeftCol;
    BindingT Mem(Operands);
    // Lines are processed bottom to top; the prologue's offsets are
    // relative to the first (bottom) line.
    Mem.setLine(HS.RowEnd - 1);
    Fpu.executeSequence(W->Prologue, Mem);
    const int U = static_cast<int>(W->Phases.size());
    for (int T = 0; T != HS.lines(); ++T) {
      Mem.setLine(HS.RowEnd - 1 - T);
      Fpu.executeSequence(W->Phases[T % U], Mem);
    }
    Fpu.drainPipeline();
    Ops += Fpu.loadsExecuted() + Fpu.maddsExecuted() +
           Fpu.storesExecuted() + Fpu.fillersExecuted();
  }
  return Ops;
}

} // namespace

std::vector<HalfStrip> Executor::planFor(const CompiledStencil &Compiled,
                                         int SubRows, int SubCols) const {
  std::vector<int> Widths;
  for (int W : Compiled.availableWidths()) {
    if (Opts.ForceWidth != 0 && W != Opts.ForceWidth && W != 1)
      continue;
    Widths.push_back(W);
  }
  if (Widths.empty())
    return {};
  return planHalfStrips(planStrips(SubCols, Widths), SubRows,
                        Opts.UseHalfStrips);
}

std::vector<Executor::PlannedStrip>
Executor::resolvedPlanFor(const CompiledStencil &Compiled, int SubRows,
                          int SubCols) const {
  std::vector<PlannedStrip> Plan;
  for (const HalfStrip &HS : planFor(Compiled, SubRows, SubCols)) {
    const WidthSchedule *W = Compiled.withWidth(HS.Width);
    assert(W && "strip plan chose an unavailable width");
    Plan.push_back({HS, W});
  }
  return Plan;
}

void Executor::runNode(const CompiledStencil &Compiled,
                       const ResolvedStencilArguments &Resolved,
                       DistributedArray &ResultArray,
                       const std::vector<std::vector<Array2D>> &PaddedBySource,
                       const std::vector<PlannedStrip> &Plan, NodeCoord Node,
                       long *OpsExecuted) const {
  const StencilSpec &Spec = Compiled.Spec;
  const int Border = Spec.borderWidths().maximum();

  // The halo exchange already ran (every node exchanges simultaneously);
  // pick this node's padded copy of each source.
  const int NodeId = ResultArray.grid().nodeId(Node);
  std::vector<const Array2D *> PaddedSources;
  PaddedSources.reserve(Spec.sourceCount());
  for (int S = 0; S != Spec.sourceCount(); ++S)
    PaddedSources.push_back(&PaddedBySource[S][NodeId]);

  // Coefficient names were resolved once per run(); index, don't look up.
  std::vector<const Array2D *> TapCoefficients(Spec.Taps.size(), nullptr);
  for (size_t I = 0; I != Spec.Taps.size(); ++I)
    if (const DistributedArray *C = Resolved.TapCoefficients[I])
      TapCoefficients[I] = &C->subgrid(Node);

  Array2D &Result = ResultArray.subgrid(Node);

  FloatingPointUnit Fpu(Config);
  long Ops =
      Opts.UseFastPath
          ? runStripsWithBinding<FastNodeBinding>(Fpu, PaddedSources, Border,
                                                  Spec, TapCoefficients,
                                                  Result, Plan)
          : runStripsWithBinding<VirtualNodeBinding>(Fpu, PaddedSources,
                                                     Border, Spec,
                                                     TapCoefficients, Result,
                                                     Plan);
  if (OpsExecuted)
    *OpsExecuted = Ops;
}

CycleBreakdown Executor::analyticCycles(const CompiledStencil &Compiled,
                                        int SubRows, int SubCols) const {
  const StencilSpec &Spec = Compiled.Spec;
  CycleBreakdown Cycles;

  Sequencer Seq(Config);
  for (const HalfStrip &HS : planFor(Compiled, SubRows, SubCols)) {
    const WidthSchedule *W = Compiled.withWidth(HS.Width);
    assert(W && "strip plan chose an unavailable width");
    Cycles += Seq.halfStripCycles(static_cast<int>(W->Prologue.size()),
                                  HS.lines(), W->opsPerLine(),
                                  W->maddsPerLine());
  }

  int Border = Spec.borderWidths().maximum();
  HaloExchangeShape Shape;
  Shape.SubgridRows = SubRows;
  Shape.SubgridCols = SubCols;
  Shape.BorderWidth = Border;
  Shape.NeedsCorners = Spec.needsCornerData() || !Opts.AllowCornerSkip;
  // Every source array needs its own halo exchange.
  Cycles.Communication =
      haloExchangeCycles(Config, Shape, Opts.Primitive) *
      std::max(1, Spec.sourceCount());
  return Cycles;
}

double Executor::hostSecondsPerIteration(const CompiledStencil &Compiled,
                                         int SubCols) const {
  // The run-time library's outer loops run on the front-end computer:
  // one dispatch per call plus one per half-strip. SubRows only affects
  // the microcode's internal line count, not the dispatch count.
  size_t Dispatches = planFor(Compiled, /*SubRows=*/2, SubCols).size();
  return (Config.HostOverheadUsPerCall +
          static_cast<double>(Dispatches) * Config.HostOverheadUsPerStrip) *
         1e-6;
}

TimingReport Executor::timeOnly(const CompiledStencil &Compiled, int SubRows,
                                int SubCols, int Iterations) const {
  CMCC_SPAN("executor.time_only");
  TimingReport Report;
  Report.Cycles = analyticCycles(Compiled, SubRows, SubCols);
  Report.Iterations = Iterations;
  Report.Nodes = Config.nodeCount();
  Report.ClockMHz = Config.ClockMHz;
  Report.HostSecondsPerIteration = hostSecondsPerIteration(Compiled, SubCols);
  Report.UsefulFlopsPerNodePerIteration =
      static_cast<long>(Compiled.Spec.usefulFlopsPerPoint()) * SubRows *
      SubCols;
  return Report;
}

Expected<TimingReport> Executor::run(const CompiledStencil &Compiled,
                                     StencilArguments &Args,
                                     int Iterations) const {
  // Validate and resolve every bound name exactly once; the per-node
  // paths index the flat vectors.
  Expected<ResolvedStencilArguments> Resolved =
      resolveStencilArguments(Config, Compiled, Args);
  if (!Resolved)
    return Resolved.error();
  return runResolved(Compiled, *Resolved, Iterations);
}

Expected<TimingReport>
Executor::runResolved(const CompiledStencil &Compiled,
                      const ResolvedStencilArguments &Resolved,
                      int Iterations) const {
  CMCC_SPAN("executor.run");
  static obs::Counter &Runs =
      obs::Registry::process().counter("executor.runs");
  static obs::Histogram &RunHostUs =
      obs::Registry::process().histogram("executor.run_host_us");
  Runs.add(1);
  obs::ScopedLatencyUs RunTimer(RunHostUs);
  assert(Iterations > 0 && "iteration count must be positive");

  const int SubRows = Resolved.Result->subRows();
  const int SubCols = Resolved.Result->subCols();

  // Plan the half-strips once per run: every node executes the same
  // plan (the machine is synchronous SIMD), and the cross-check below
  // reuses it too.
  const std::vector<PlannedStrip> Plan = [&] {
    CMCC_SPAN("executor.plan_strips");
    return resolvedPlanFor(Compiled, SubRows, SubCols);
  }();
  if (Plan.empty())
    return makeError("the available multistencil widths cannot cover a "
                     "subgrid of " + std::to_string(SubCols) +
                     " columns (no width-1 schedule)");

  long Node0Ops = -1;
  if (Opts.Mode != FunctionalMode::None) {
    // The host execution engine: Options::ThreadCount == 0 shares the
    // process-wide pool; otherwise a private pool of exactly that many
    // threads (ThreadCount == 1 degenerates to inline serial loops).
    std::unique_ptr<ThreadPool> PrivatePool;
    ThreadPool *Pool;
    if (Opts.ThreadCount == 0) {
      Pool = &ThreadPool::shared();
    } else {
      PrivatePool = std::make_unique<ThreadPool>(Opts.ThreadCount);
      Pool = PrivatePool.get();
    }

    // Step one of the run-time library: the halo exchange (the paper's
    // three-step protocol), once per source array, all nodes at once.
    const StencilSpec &Spec = Compiled.Spec;
    const int Border = Spec.borderWidths().maximum();
    const bool FetchCorners =
        Spec.needsCornerData() || !Opts.AllowCornerSkip;
    std::vector<std::vector<Array2D>> PaddedBySource;
    PaddedBySource.reserve(Spec.sourceCount());
    for (int S = 0; S != Spec.sourceCount(); ++S) {
      // Probed per exchange step, not per run: a multi-source stencil
      // can lose any one of its exchanges. Failing before the compute
      // loops means a failed run never leaves partial results — every
      // retry starts from untouched sources.
      if (fault::probe("halo.exchange"))
        return fault::injectedFault("halo.exchange");
      if (Opts.Domain) {
        Expected<std::vector<Array2D>> Padded = exchangeHalosPartitioned(
            *Resolved.Sources[S], *Opts.Domain, Opts.Transport, S, Border,
            Spec.BoundaryDim1, Spec.BoundaryDim2, FetchCorners, Pool);
        if (!Padded)
          return Padded.error();
        PaddedBySource.push_back(std::move(*Padded));
      } else {
        PaddedBySource.push_back(exchangeHalos(*Resolved.Sources[S], Border,
                                               Spec.BoundaryDim1,
                                               Spec.BoundaryDim2,
                                               FetchCorners, Pool));
      }
    }

    switch (Opts.Mode) {
    case FunctionalMode::AllNodes: {
      // Nodes are independent after the halo exchange — each writes
      // only its own result subgrid — so the functional loop fans out
      // over the pool; any thread count computes identical bits.
      const NodeGrid &Grid = Resolved.Result->grid();
      Pool->parallelFor(Grid.nodeCount(), [&](int Id) {
        runNode(Compiled, Resolved, *Resolved.Result, PaddedBySource, Plan,
                Grid.coordOf(Id), Id == 0 ? &Node0Ops : nullptr);
      });
      break;
    }
    case FunctionalMode::SingleNode:
      runNode(Compiled, Resolved, *Resolved.Result, PaddedBySource, Plan,
              {0, 0}, &Node0Ops);
      break;
    case FunctionalMode::None:
      break;
    }
  }

  TimingReport Report = timeOnly(Compiled, SubRows, SubCols, Iterations);

  // Cross-check: the ops the pipeline model actually executed must match
  // the analytic count the cycle cost is derived from.
  if (Node0Ops >= 0) {
    long Analytic = 0;
    for (const PlannedStrip &PS : Plan)
      Analytic += static_cast<long>(PS.Sched->Prologue.size()) +
                  static_cast<long>(PS.HS.lines()) * PS.Sched->opsPerLine();
    assert(Node0Ops == Analytic &&
           "analytic op count disagrees with executed ops");
    (void)Analytic;
  }
  return Report;
}
