//===- runtime/Partition.h - Shard partitions of the node grid *- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The partition seam: which rectangular block of the machine's node
/// grid one executor instance owns. The paper's runtime decomposes a
/// grid over nodes inside one synchronous machine; scaling the same
/// decomposition across OS processes means every executor runs the
/// §5.1 protocol over its *local* node block and hands the block-edge
/// traffic to a HaloTransport instead of reading a neighbor's memory.
///
/// A PartitionDomain describes the block: its offset and shape in node
/// coordinates plus the global grid shape. The whole-grid domain (the
/// unsharded case every existing caller uses) degenerates exactly to
/// the original in-process exchange — local torus wraparound *is* the
/// global torus when the block spans the axis — which is what keeps
/// the refactor bitwise-invisible to the determinism suites.
///
/// A ShardGrid is the factorization of the node grid into such blocks,
/// one per worker. Both dimensions must be powers of two dividing the
/// node-grid dimensions (node grids are hypercube sub-dimensions, so
/// the per-shard quotients stay powers of two).
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_RUNTIME_PARTITION_H
#define CMCC_RUNTIME_PARTITION_H

#include "cm2/MachineConfig.h"
#include "support/Error.h"

namespace cmcc {

/// The rectangular node-grid block one shard owns, in node coordinates.
/// Local node (r, c) is global node (NodeRowBegin + r, NodeColBegin + c).
struct PartitionDomain {
  int NodeRowBegin = 0;
  int NodeColBegin = 0;
  /// Shape of the owned block.
  int LocalRows = 0;
  int LocalCols = 0;
  /// Shape of the whole machine's node grid.
  int GlobalRows = 0;
  int GlobalCols = 0;

  /// True when the block is the whole grid (the unsharded case).
  bool wholeGrid() const { return spansAllRows() && spansAllCols(); }

  /// When the block spans an entire axis, that axis's exchange wraps
  /// locally (the local torus is the global torus) and needs no
  /// transport.
  bool spansAllRows() const { return LocalRows == GlobalRows; }
  bool spansAllCols() const { return LocalCols == GlobalCols; }

  int globalRow(int LocalRow) const { return NodeRowBegin + LocalRow; }
  int globalCol(int LocalCol) const { return NodeColBegin + LocalCol; }

  int localNodeCount() const { return LocalRows * LocalCols; }

  static PartitionDomain whole(int NodeRows, int NodeCols) {
    return {0, 0, NodeRows, NodeCols, NodeRows, NodeCols};
  }

  friend bool operator==(const PartitionDomain &A, const PartitionDomain &B) {
    return A.NodeRowBegin == B.NodeRowBegin &&
           A.NodeColBegin == B.NodeColBegin && A.LocalRows == B.LocalRows &&
           A.LocalCols == B.LocalCols && A.GlobalRows == B.GlobalRows &&
           A.GlobalCols == B.GlobalCols;
  }
};

/// The factorization of the node grid into ShardRows x ShardCols equal
/// blocks, shard ids row-major (the same numbering NodeGrid uses for
/// nodes).
struct ShardGrid {
  int Rows = 1;
  int Cols = 1;

  int count() const { return Rows * Cols; }
  int shardId(int R, int C) const { return R * Cols + C; }
  int rowOf(int Shard) const { return Shard / Cols; }
  int colOf(int Shard) const { return Shard % Cols; }

  /// Torus neighbors in the shard grid (block-level wraparound mirrors
  /// the node-level torus).
  int westOf(int Shard) const {
    return shardId(rowOf(Shard), (colOf(Shard) + Cols - 1) % Cols);
  }
  int eastOf(int Shard) const {
    return shardId(rowOf(Shard), (colOf(Shard) + 1) % Cols);
  }
  int northOf(int Shard) const {
    return shardId((rowOf(Shard) + Rows - 1) % Rows, colOf(Shard));
  }
  int southOf(int Shard) const {
    return shardId((rowOf(Shard) + 1) % Rows, colOf(Shard));
  }
};

/// Validates an explicit ShardRows x ShardCols decomposition of a
/// NodeRows x NodeCols grid: both shard dimensions must be powers of
/// two that divide the grid dimensions.
Expected<ShardGrid> makeShardGrid(int NodeRows, int NodeCols, int ShardRows,
                                  int ShardCols);

/// Chooses a near-square decomposition into \p Shards blocks (a power
/// of two), splitting the longer node-grid axis first.
Expected<ShardGrid> chooseShardGrid(int NodeRows, int NodeCols, int Shards);

/// The node block shard \p Shard owns under \p SG.
PartitionDomain shardDomain(const ShardGrid &SG, int Shard, int NodeRows,
                            int NodeCols);

/// The machine one shard's executor runs: the global config with the
/// node grid narrowed to the shard's block. Every timing constant is
/// copied verbatim — a worker's per-node cycle accounting must be
/// bit-identical to the unsharded machine's (synchronous SIMD: one
/// node's cycles are the machine's).
MachineConfig shardMachineConfig(const MachineConfig &Global,
                                 const PartitionDomain &Domain);

} // namespace cmcc

#endif // CMCC_RUNTIME_PARTITION_H
