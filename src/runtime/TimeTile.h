//===- runtime/TimeTile.h - Time-tiled execution geometry -----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared geometry of time-tiled execution (ROADMAP item 5): with a
/// tile depth of k, one halo exchange at border B = k x radius feeds k
/// fused, *chained* timesteps. Step s (1-based) consumes an input valid
/// to extension (k - s + 1) x radius beyond the subgrid and produces an
/// output valid to (k - s) x radius; the final step's extension is zero
/// — exactly the result subgrid. The paper's seismic workload unrolls
/// by 3 for the same reason: fusing steps amortizes communication.
///
/// Two execution styles consume this geometry:
///
///   * the cm2 backend replays, for every pad cell of an intermediate
///     step, the *owner* node's strip plan at owner-relative positions
///     (the 3x3 owner regions below), so tiled results are bitwise
///     equal to step-by-step simulated runs;
///   * the native/njit backends compute the whole extended rectangle
///     directly (their per-point arithmetic is position-independent)
///     and then zero-mask cells that fall outside the global array
///     under Zero (EOSHIFT) boundaries.
///
/// Zero-boundary semantics under wide halos: a cell whose *global*
/// position falls outside the global array is identically zero at every
/// step — the widened exchange zero-fills it at step one, and the
/// masking below keeps it zero through the chain, which is exactly what
/// the per-step exchange of an untiled run would deliver.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_RUNTIME_TIMETILE_H
#define CMCC_RUNTIME_TIMETILE_H

#include "runtime/Array2D.h"
#include "stencil/StencilSpec.h"
#include "support/Error.h"
#include <vector>

namespace cmcc {
namespace timetile {

/// Checks that \p Spec can run with tile depth \p TimeTile over
/// SubRows x SubCols subgrids: depth >= 1, exactly one source array for
/// depths > 1 (chaining a multi-source step is ambiguous — which input
/// does the result feed?), and the widened border k x radius fitting
/// the subgrid (the exchange protocol reaches only the four direct
/// neighbors).
Error validateTimeTile(const StencilSpec &Spec, int TimeTile, int SubRows,
                       int SubCols);

/// The largest depth in [1, \p TimeTile] that validateTimeTile accepts
/// — 1 whenever tiling is impossible (multi-source, no source). The
/// serving layer clamps requested/tuned depths with this so tiling is
/// an optimization, never a new failure mode.
int clampTimeTile(const StencilSpec &Spec, int TimeTile, int SubRows,
                  int SubCols);

/// One of the (up to) 3x3 owner regions of an intermediate step's
/// output: the block of cells owned — in the step-by-step execution —
/// by the neighbor node at offset (DR, DC). Coordinates are in *owner
/// subgrid space*; the owner's cell (r, c) lives at
/// (r + B + DR x SubRows, c + B + DC x SubCols) of this node's B-padded
/// scratch. The self region (0, 0) covers the whole subgrid; ring
/// regions cover the POut-deep slice nearest this node.
struct OwnerRegion {
  int DR = 0, DC = 0;
  /// Kept owner-space row/column windows [R0, R1) x [C0, C1).
  int R0 = 0, R1 = 0, C0 = 0, C1 = 0;
  /// True when the owner lies across a Zero (EOSHIFT) global edge: the
  /// region's cells are outside the global array and are identically
  /// zero — written as zeros, never computed.
  bool ZeroMasked = false;
};

/// The owner regions for one intermediate step with output extension
/// \p POut (> 0), for the node at global grid position (GlobalRow,
/// GlobalCol) of a GlobalRows x GlobalCols node grid. Returns the self
/// region plus the eight ring regions, in deterministic (DR, DC) order;
/// masking follows the Zero/Circular boundary kinds per dimension
/// (circular edges wrap to a real owner and are never masked).
std::vector<OwnerRegion> ownerRegions(int SubRows, int SubCols, int POut,
                                      BoundaryKind BoundaryDim1,
                                      BoundaryKind BoundaryDim2,
                                      int GlobalRow, int GlobalRows,
                                      int GlobalCol, int GlobalCols);

/// Zero-masks the extension cells of \p Padded (a B-padded subgrid
/// holding an intermediate step's output to extension \p POut) whose
/// global positions fall outside the global array under Zero
/// boundaries. Rows [B - POut, B + SubRows + POut) x the matching
/// columns are visited; core cells are never touched. No-op when both
/// boundaries are circular.
void applyZeroMask(Array2D &Padded, int Border, int POut, int SubRows,
                   int SubCols, BoundaryKind BoundaryDim1,
                   BoundaryKind BoundaryDim2, int GlobalRow, int GlobalRows,
                   int GlobalCol, int GlobalCols);

} // namespace timetile
} // namespace cmcc

#endif // CMCC_RUNTIME_TIMETILE_H
