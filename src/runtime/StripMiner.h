//===- runtime/StripMiner.h - Strip and half-strip planning ---*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strip-mining step of §5.2–5.3. The subgrid is partitioned along
/// its column axis into strips, greedily shaving off the widest strip for
/// which the compiler produced a workable multistencil (a length-21 axis
/// with widths {8,4,2,1} becomes 8+8+4+1). Each strip is processed as two
/// half-strips so that the microcode handles only one boundary condition
/// per loop, at the price of starting the loop twice as often.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_RUNTIME_STRIPMINER_H
#define CMCC_RUNTIME_STRIPMINER_H

#include <vector>

namespace cmcc {

/// One vertical strip of a subgrid.
struct Strip {
  int LeftCol = 0;
  int Width = 0;
};

/// One half of a strip (a row range; [RowBegin, RowEnd)).
struct HalfStrip {
  int LeftCol = 0;
  int Width = 0;
  int RowBegin = 0;
  int RowEnd = 0;

  int lines() const { return RowEnd - RowBegin; }
};

/// Greedy decomposition of \p SubCols columns into strips drawn from
/// \p AvailableWidths (must be sorted descending and end with 1).
std::vector<Strip> planStrips(int SubCols,
                              const std::vector<int> &AvailableWidths);

/// Splits each strip into half-strips over \p SubRows lines. When
/// \p UseHalfStrips is false (ablation A3), whole strips are emitted —
/// the model then charges the full-strip microcode's double boundary
/// handling elsewhere.
std::vector<HalfStrip> planHalfStrips(const std::vector<Strip> &Strips,
                                      int SubRows, bool UseHalfStrips);

} // namespace cmcc

#endif // CMCC_RUNTIME_STRIPMINER_H
