//===- runtime/Array2D.cpp ------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Array2D.h"
#include "support/Random.h"
#include <cmath>
#include <limits>

using namespace cmcc;

/// Non-negative modulus.
static int wrap(int V, int M) {
  int R = V % M;
  return R < 0 ? R + M : R;
}

float Array2D::atWrapped(int R, int C) const {
  assert(Rows > 0 && Cols > 0 && "wrapped access to an empty array");
  return at(wrap(R, Rows), wrap(C, Cols));
}

void Array2D::fillRandom(uint64_t Seed, float Low, float High) {
  SplitMix64 Rng(Seed);
  for (float &V : Data)
    V = Rng.nextFloatInRange(Low, High);
}

float Array2D::maxAbsDifference(const Array2D &A, const Array2D &B) {
  if (A.Rows != B.Rows || A.Cols != B.Cols)
    return std::numeric_limits<float>::infinity();
  float Max = 0.0f;
  for (size_t I = 0; I != A.Data.size(); ++I) {
    float D = std::fabs(A.Data[I] - B.Data[I]);
    if (std::isnan(D))
      return std::numeric_limits<float>::infinity();
    if (D > Max)
      Max = D;
  }
  return Max;
}
