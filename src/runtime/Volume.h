//===- runtime/Volume.h - Multidimensional array support ------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rank-3 arrays for the run-time library. The paper's library "provides
/// the outer loop structure for strip-mining and for handling
/// multidimensional arrays": the two stencil axes are distributed over
/// the node grid, and any further axis is serial — the runtime loops
/// over its planes, re-dispatching the same microcode with new base
/// addresses. The stencil itself only ever shifts along DIM=1 and DIM=2
/// (the recognizer enforces this), so a rank-3 computation is exactly a
/// plane-by-plane sweep.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_RUNTIME_VOLUME_H
#define CMCC_RUNTIME_VOLUME_H

#include "runtime/Executor.h"
#include <memory>
#include <vector>

namespace cmcc {

/// A depth-major stack of distributed 2-D planes: a global
/// (Depth, SubRows*NodeRows, SubCols*NodeCols) array.
class DistributedVolume {
public:
  DistributedVolume(const NodeGrid &Grid, int Depth, int SubRows,
                    int SubCols);

  int depth() const { return static_cast<int>(Planes.size()); }
  DistributedArray &plane(int D) { return *Planes[D]; }
  const DistributedArray &plane(int D) const { return *Planes[D]; }

  int subRows() const { return Planes.front()->subRows(); }
  int subCols() const { return Planes.front()->subCols(); }

private:
  std::vector<std::unique_ptr<DistributedArray>> Planes;
};

/// Arrays bound to one rank-3 stencil call. All volumes must share depth
/// and plane shape.
struct VolumeArguments {
  DistributedVolume *Result = nullptr;
  const DistributedVolume *Source = nullptr;
  std::map<std::string, const DistributedVolume *> Coefficients;
  std::map<std::string, const DistributedVolume *> ExtraSources;
};

/// Applies \p Compiled to every plane of \p Args (the paper's serial
/// outer loop), accumulating machine cycles across planes; the per-call
/// host overhead is paid once, the per-strip dispatch cost once per
/// plane.
Expected<TimingReport> runVolume(const Executor &Exec,
                                 const CompiledStencil &Compiled,
                                 VolumeArguments &Args, int Iterations);

} // namespace cmcc

#endif // CMCC_RUNTIME_VOLUME_H
