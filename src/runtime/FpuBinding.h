//===- runtime/FpuBinding.h - Half-strip operand bindings -----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run-time address generation for one half-strip on one node — the
/// sequencer's job in the real machine — in two interchangeable forms:
///
///   * VirtualNodeBinding implements the FpuMemoryInterface abstract
///     interface and resolves every operand through Array2D::at. It is
///     the readable reference form, kept for tests.
///
///   * FastNodeBinding is a concrete (non-virtual) binding that resolves
///     each WidthSchedule operand class once per half-strip into flat
///     arrays: padded-source row pointers with a common row stride,
///     per-tap coefficient-stream pointers or sign-folded scalar
///     immediates, and a result row pointer. FloatingPointUnit's
///     templated executeSequence then runs against it with every call
///     inlined — no virtual dispatch, no per-access bounds re-checks.
///
/// Both forms perform the *same* float operations in the same order, so
/// their results are bitwise identical and their op counters agree — a
/// property the tests assert. The executor uses the fast form by
/// default (Options::UseFastPath).
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_RUNTIME_FPUBINDING_H
#define CMCC_RUNTIME_FPUBINDING_H

#include "cm2/FloatingPointUnit.h"
#include "runtime/Array2D.h"
#include "stencil/StencilSpec.h"
#include <limits>
#include <vector>

namespace cmcc {

/// The inputs shared by both binding forms: everything that identifies
/// one half-strip's operands on one node.
struct HalfStripOperands {
  /// One halo-padded source subgrid per source array (all padded by the
  /// same border, so all share one shape).
  const std::vector<const Array2D *> *PaddedSources = nullptr;
  int Border = 0;
  const StencilSpec *Spec = nullptr;
  /// Parallel to Spec->Taps; null for scalar coefficients.
  const std::vector<const Array2D *> *TapCoefficients = nullptr;
  Array2D *Result = nullptr;
  int LeftCol = 0;
};

/// Reference binding: resolves operands through the virtual
/// FpuMemoryInterface, one Array2D::at per access.
class VirtualNodeBinding : public FpuMemoryInterface {
public:
  explicit VirtualNodeBinding(const HalfStripOperands &O) : O(O) {}

  void setLine(int Row) { AbsRow = Row; }

  float loadData(int Source, int Dy, int Dx) override {
    return (*O.PaddedSources)[Source]->at(AbsRow + Dy + O.Border,
                                          O.LeftCol + Dx + O.Border);
  }

  float loadCoefficient(int TapIndex, int ResultIndex) override {
    const Tap &T = O.Spec->Taps[TapIndex];
    float C = T.Coeff.isArray()
                  ? (*O.TapCoefficients)[TapIndex]->at(AbsRow,
                                                       O.LeftCol + ResultIndex)
                  : static_cast<float>(T.Coeff.Value);
    return static_cast<float>(T.Sign) * C;
  }

  void storeResult(int ResultIndex, float Value) override {
    O.Result->at(AbsRow, O.LeftCol + ResultIndex) = Value;
  }

private:
  HalfStripOperands O;
  int AbsRow = 0;
};

/// Owner-region binding for time-tiled intermediate steps: executes one
/// *owner* node's half-strip at owner-relative positions against this
/// node's wide-padded scratch arrays (runtime/TimeTile.h). Coordinates
/// stay in owner subgrid space; the binding translates them through the
/// per-array origin offsets. Two clamps make full-width strip replay
/// safe:
///
///   * loads falling outside an array's allocation (a full-width owner
///     strip can reach beyond the scratch pad) return NaN — such values
///     only ever feed result columns outside the kept window;
///   * stores land only inside the kept owner-space window; everything
///     else is dropped (but still *counted* as executed, matching the
///     SIMD machine, where deselected processors burn the cycles).
///
/// The float operations for kept cells are exactly the owner's — same
/// schedule, same order — so intermediate pad values are bitwise equal
/// to the owner's step-by-step results.
class ClampedRegionBinding {
public:
  /// Owner cell (r, c) reads input at (r + InRow0, c + InCol0), reads
  /// tap I's coefficient at (r + CoRow0, c + CoCol0) of
  /// PaddedCoefficients[I], and writes output at (r + OutRow0,
  /// c + OutCol0). Kept window [KeepRow0, KeepRow1) x [KeepCol0,
  /// KeepCol1) is in owner space.
  struct Operands {
    const Array2D *Input = nullptr;
    int InRow0 = 0, InCol0 = 0;
    const StencilSpec *Spec = nullptr;
    /// Parallel to Spec->Taps; null for scalar coefficients. Entries
    /// are *padded* coefficient subgrids (border (k-1) x radius).
    const std::vector<const Array2D *> *PaddedCoefficients = nullptr;
    int CoRow0 = 0, CoCol0 = 0;
    Array2D *Output = nullptr;
    int OutRow0 = 0, OutCol0 = 0;
    int LeftCol = 0;
    int KeepRow0 = 0, KeepRow1 = 0, KeepCol0 = 0, KeepCol1 = 0;
  };

  explicit ClampedRegionBinding(const Operands &O) : O(O) {}

  void setLine(int Row) { AbsRow = Row; }

  float loadData(int Source, int Dy, int Dx) {
    (void)Source; // Depths > 1 imply a single source (validated).
    return clampedAt(*O.Input, AbsRow + Dy + O.InRow0,
                     O.LeftCol + Dx + O.InCol0);
  }

  float loadCoefficient(int TapIndex, int ResultIndex) {
    const Tap &T = O.Spec->Taps[TapIndex];
    float C = T.Coeff.isArray()
                  ? clampedAt(*(*O.PaddedCoefficients)[TapIndex],
                              AbsRow + O.CoRow0,
                              O.LeftCol + ResultIndex + O.CoCol0)
                  : static_cast<float>(T.Coeff.Value);
    return static_cast<float>(T.Sign) * C;
  }

  void storeResult(int ResultIndex, float Value) {
    const int Col = O.LeftCol + ResultIndex;
    if (AbsRow < O.KeepRow0 || AbsRow >= O.KeepRow1 || Col < O.KeepCol0 ||
        Col >= O.KeepCol1)
      return;
    O.Output->at(AbsRow + O.OutRow0, Col + O.OutCol0) = Value;
  }

private:
  static float clampedAt(const Array2D &A, int R, int C) {
    if (R < 0 || R >= A.rows() || C < 0 || C >= A.cols())
      return std::numeric_limits<float>::quiet_NaN();
    return A.at(R, C);
  }

  Operands O;
  int AbsRow = 0;
};

/// Fast binding: operand references pre-resolved to raw pointers and
/// strides once per half-strip; setLine only advances row pointers.
class FastNodeBinding {
public:
  explicit FastNodeBinding(const HalfStripOperands &O);

  void setLine(int Row);

  float loadData(int Source, int Dy, int Dx) {
    return SourceRows[Source][Dy * SourceStride + Dx];
  }

  float loadCoefficient(int TapIndex, int ResultIndex) {
    const TapStream &T = Taps[TapIndex];
    return T.Row ? T.Sign * T.Row[ResultIndex] : T.Immediate;
  }

  void storeResult(int ResultIndex, float Value) {
    ResultRow[ResultIndex] = Value;
  }

private:
  struct TapStream {
    /// Base of the coefficient subgrid at column LeftCol (row 0); null
    /// for scalar coefficients.
    const float *Base = nullptr;
    /// Base + AbsRow * Stride, updated by setLine.
    const float *Row = nullptr;
    int Stride = 0;
    float Sign = 1.0f;
    /// Sign-folded scalar value (scalar coefficients only).
    float Immediate = 0.0f;
  };

  /// Per source: padded base translated so that index 0 is the element
  /// at (Border, LeftCol + Border) of the padded array — i.e. (0,
  /// LeftCol) of the subgrid.
  std::vector<const float *> SourceOrigins;
  std::vector<const float *> SourceRows;
  int SourceStride = 0;
  std::vector<TapStream> Taps;
  float *ResultBase = nullptr;
  float *ResultRow = nullptr;
  int ResultStride = 0;
};

} // namespace cmcc

#endif // CMCC_RUNTIME_FPUBINDING_H
