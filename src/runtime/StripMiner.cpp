//===- runtime/StripMiner.cpp ---------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/StripMiner.h"
#include "support/Assert.h"

using namespace cmcc;

std::vector<Strip>
cmcc::planStrips(int SubCols, const std::vector<int> &AvailableWidths) {
  assert(!AvailableWidths.empty() && "no widths available");
  std::vector<Strip> Strips;
  int Col = 0;
  while (Col < SubCols) {
    int Remaining = SubCols - Col;
    int Chosen = 0;
    for (int W : AvailableWidths) {
      if (W <= Remaining) {
        Chosen = W;
        break;
      }
    }
    // No available width fits the leftover columns (width 1 missing):
    // the subgrid cannot be covered; signal failure with an empty plan.
    if (Chosen == 0)
      return {};
    Strips.push_back({Col, Chosen});
    Col += Chosen;
  }
  return Strips;
}

std::vector<HalfStrip>
cmcc::planHalfStrips(const std::vector<Strip> &Strips, int SubRows,
                     bool UseHalfStrips) {
  std::vector<HalfStrip> Out;
  for (const Strip &S : Strips) {
    if (!UseHalfStrips || SubRows < 2) {
      Out.push_back({S.LeftCol, S.Width, 0, SubRows});
      continue;
    }
    int Mid = SubRows / 2;
    Out.push_back({S.LeftCol, S.Width, 0, Mid});
    Out.push_back({S.LeftCol, S.Width, Mid, SubRows});
  }
  return Out;
}
