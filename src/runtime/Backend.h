//===- runtime/Backend.h - The execution-backend seam ---------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The architecture seam between the compiled stencil description and
/// the machinery that executes it. The paper fixes one execution target
/// (CM-2 sequencer microcode); systems that outlived their first
/// machine — Devito's interchangeable backends, ForOpenCL's plain-loop
/// accelerator target — did so by making "what to compute" (the
/// recognized StencilSpec and its verified schedules) independent of
/// "how to run it".
///
/// An ExecutionBackend takes a CompiledStencil plus the bound
/// StencilArguments and returns results in the arrays plus a
/// TimingReport. Two backends exist today:
///
///   * backends/cm2  — the paper's simulated machine: halo-exchange
///     protocol, strip mining, FPU pipeline model, analytic cycle
///     accounting. Reports *simulated* machine time.
///   * backends/native — a host-speed lowering of the recognized spec
///     to a tiled, thread-pooled, auto-vectorizable C++ loop nest (no
///     simulation). Reports measured *wall-clock* time.
///
/// Both resolve argument names through the same once-per-run
/// resolution below, exchange halos through the same protocol, and are
/// asserted equivalent (1 ulp per term; bitwise for single-term
/// stencils) by tests/backend_equivalence_test.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_RUNTIME_BACKEND_H
#define CMCC_RUNTIME_BACKEND_H

#include "cm2/Timing.h"
#include "core/Compiler.h"
#include "runtime/DistributedArray.h"
#include <map>
#include <string>
#include <vector>

namespace cmcc {

/// Per-call execution options shared by every backend.
struct RunOptions {
  /// Timing repetitions of the run's fused unit. As everywhere in the
  /// runtime, iterations scale the reported cost; the arrays are
  /// written once.
  int Iterations = 1;
  /// Time-tile depth k (ROADMAP item 5): the run computes k *chained*
  /// timesteps — step s feeds step s+1 — behind a single halo exchange
  /// whose border widens to k x radius. The result arrays hold the
  /// k-step evolution, bitwise equal to k separate runs feeding each
  /// result back as the next source. 1 (the default) is exactly the
  /// classic single-step run. Depths k > 1 require a single-source
  /// stencil and k x radius <= the subgrid extent.
  int TimeTile = 1;
};

/// Arrays bound to one stencil call.
struct StencilArguments {
  DistributedArray *Result = nullptr;
  const DistributedArray *Source = nullptr;
  std::map<std::string, const DistributedArray *> Coefficients;
  /// Additional source arrays, by name (multi-source extension).
  std::map<std::string, const DistributedArray *> ExtraSources;
};

/// StencilArguments with every name resolved once per run into flat,
/// index-addressed vectors: the per-node execution paths (all backends)
/// index these instead of doing std::map lookups per node or per
/// half-strip setup.
struct ResolvedStencilArguments {
  /// The destination array the run writes.
  DistributedArray *Result = nullptr;
  /// By StencilSpec source index (0 = primary source).
  std::vector<const DistributedArray *> Sources;
  /// Parallel to StencilSpec::Taps; null for scalar coefficients and
  /// for bare terms.
  std::vector<const DistributedArray *> TapCoefficients;
};

/// Validates \p Args against \p Compiled for a machine of \p Config's
/// node grid (shape agreement, no aliasing, border fits the subgrid)
/// and resolves every array name to a pointer exactly once. Returns a
/// failure describing the first problem — the messages are shared by
/// every backend.
Expected<ResolvedStencilArguments>
resolveStencilArguments(const MachineConfig &Config,
                        const CompiledStencil &Compiled,
                        const StencilArguments &Args);

/// One interchangeable execution engine behind the seam.
class ExecutionBackend {
public:
  virtual ~ExecutionBackend();

  /// Stable identifier ("cm2", "native"): participates in plan-cache
  /// fingerprints, metric/span names, and the tools' --backend flag.
  virtual const char *name() const = 0;

  /// True when this backend's TimingReports carry measured host
  /// wall-clock rather than simulated machine cycles.
  virtual bool reportsWallClock() const = 0;

  /// Runs \p Compiled over \p Args under \p Opts (iterations and time
  /// tile), writing the result subgrids and returning the backend's
  /// timing report. Resolves the by-name arguments exactly once and
  /// dispatches to runResolved — backends never re-resolve, and callers
  /// that already hold resolved arguments (the shard workers, whose
  /// arrays arrive indexed rather than named) call runResolved
  /// directly.
  Expected<TimingReport> run(const CompiledStencil &Compiled,
                             StencilArguments &Args,
                             const RunOptions &Opts) const;

  /// Classic form: \p Iterations timing repetitions, no time tiling.
  Expected<TimingReport> run(const CompiledStencil &Compiled,
                             StencilArguments &Args, int Iterations) const {
    RunOptions Opts;
    Opts.Iterations = Iterations;
    return run(Compiled, Args, Opts);
  }

  /// The backend's execution body, over arguments resolved by
  /// resolveStencilArguments against this backend's machine().
  virtual Expected<TimingReport>
  runResolved(const CompiledStencil &Compiled,
              const ResolvedStencilArguments &Resolved,
              const RunOptions &Opts) const = 0;

  /// Classic form of runResolved (no time tiling).
  Expected<TimingReport> runResolved(const CompiledStencil &Compiled,
                                     const ResolvedStencilArguments &Resolved,
                                     int Iterations) const {
    RunOptions Opts;
    Opts.Iterations = Iterations;
    return runResolved(Compiled, Resolved, Opts);
  }

  /// A timing report for SubRows x SubCols per-node subgrids without
  /// caller-provided arrays. The cm2 backend computes this analytically
  /// (exact for any machine size); the native backend measures a real
  /// run over scratch arrays. Fails only where a run would (e.g. the
  /// border exceeds the subgrid on a measuring backend).
  virtual Expected<TimingReport> timeOnly(const CompiledStencil &Compiled,
                                          int SubRows, int SubCols,
                                          const RunOptions &Opts) const = 0;

  /// Classic form of timeOnly (no time tiling).
  Expected<TimingReport> timeOnly(const CompiledStencil &Compiled,
                                  int SubRows, int SubCols,
                                  int Iterations) const {
    RunOptions Opts;
    Opts.Iterations = Iterations;
    return timeOnly(Compiled, SubRows, SubCols, Opts);
  }

  /// The machine this backend executes for (node grid, clock).
  virtual const MachineConfig &machine() const = 0;
};

} // namespace cmcc

#endif // CMCC_RUNTIME_BACKEND_H
