//===- runtime/DistributedArray.cpp ---------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/DistributedArray.h"
#include <cmath>
#include <limits>

using namespace cmcc;

DistributedArray::DistributedArray(const NodeGrid &Grid, int SubRows,
                                   int SubCols)
    : Grid(Grid), SubRows(SubRows), SubCols(SubCols) {
  assert(SubRows > 0 && SubCols > 0 && "subgrid must be nonempty");
  Subgrids.reserve(Grid.nodeCount());
  for (int I = 0; I != Grid.nodeCount(); ++I)
    Subgrids.emplace_back(SubRows, SubCols);
}

Array2D &DistributedArray::subgrid(NodeCoord C) {
  return Subgrids[Grid.nodeId(C)];
}

const Array2D &DistributedArray::subgrid(NodeCoord C) const {
  return Subgrids[Grid.nodeId(C)];
}

void DistributedArray::scatter(const Array2D &Global) {
  assert(Global.rows() == globalRows() && Global.cols() == globalCols() &&
         "global shape mismatch");
  for (int NR = 0; NR != Grid.rows(); ++NR)
    for (int NC = 0; NC != Grid.cols(); ++NC) {
      Array2D &Sub = subgrid({NR, NC});
      for (int R = 0; R != SubRows; ++R)
        for (int C = 0; C != SubCols; ++C)
          Sub.at(R, C) = Global.at(NR * SubRows + R, NC * SubCols + C);
    }
}

Array2D DistributedArray::gather() const {
  Array2D Global(globalRows(), globalCols());
  for (int NR = 0; NR != Grid.rows(); ++NR)
    for (int NC = 0; NC != Grid.cols(); ++NC) {
      const Array2D &Sub = subgrid({NR, NC});
      for (int R = 0; R != SubRows; ++R)
        for (int C = 0; C != SubCols; ++C)
          Global.at(NR * SubRows + R, NC * SubCols + C) = Sub.at(R, C);
    }
  return Global;
}

float DistributedArray::atGlobal(int R, int C) const {
  assert(R >= 0 && R < globalRows() && C >= 0 && C < globalCols() &&
         "global index out of range");
  NodeCoord Node{R / SubRows, C / SubCols};
  return subgrid(Node).at(R % SubRows, C % SubCols);
}

std::string
DistributedArray::describeDecomposition(const std::string &Name) const {
  std::string Out;
  for (int NR = 0; NR != Grid.rows(); ++NR) {
    for (int NC = 0; NC != Grid.cols(); ++NC) {
      Out += Name + "(" + std::to_string(NR * SubRows + 1) + ":" +
             std::to_string((NR + 1) * SubRows) + "," +
             std::to_string(NC * SubCols + 1) + ":" +
             std::to_string((NC + 1) * SubCols) + ")";
      Out += NC + 1 == Grid.cols() ? "\n" : "  ";
    }
  }
  return Out;
}

Array2D cmcc::buildPaddedSubgrid(const DistributedArray &A, NodeCoord Node,
                                 int Border, BoundaryKind BoundaryDim1,
                                 BoundaryKind BoundaryDim2,
                                 bool FetchCorners) {
  const int SR = A.subRows();
  const int SC = A.subCols();
  const int GR = A.globalRows();
  const int GC = A.globalCols();
  assert(Border >= 0 && "negative border width");
  assert(Border <= SR && Border <= SC &&
         "border width exceeds the subgrid (data would come from beyond "
         "the four neighbors)");

  const float Nan = std::numeric_limits<float>::quiet_NaN();
  Array2D Padded(SR + 2 * Border, SC + 2 * Border);

  const int BaseR = Node.Row * SR;
  const int BaseC = Node.Col * SC;
  for (int R = -Border; R != SR + Border; ++R) {
    for (int C = -Border; C != SC + Border; ++C) {
      bool RowPad = R < 0 || R >= SR;
      bool ColPad = C < 0 || C >= SC;
      if (RowPad && ColPad && !FetchCorners) {
        // Corner data was not exchanged: poison it so that any kernel
        // that touches unfetched data is caught.
        Padded.at(R + Border, C + Border) = Nan;
        continue;
      }
      int GRow = BaseR + R;
      int GCol = BaseC + C;
      bool RowOutside = GRow < 0 || GRow >= GR;
      bool ColOutside = GCol < 0 || GCol >= GC;
      float Value;
      if ((RowOutside && BoundaryDim1 == BoundaryKind::Zero) ||
          (ColOutside && BoundaryDim2 == BoundaryKind::Zero)) {
        Value = 0.0f;
      } else {
        int WR = ((GRow % GR) + GR) % GR;
        int WC = ((GCol % GC) + GC) % GC;
        Value = A.atGlobal(WR, WC);
      }
      Padded.at(R + Border, C + Border) = Value;
    }
  }
  return Padded;
}
