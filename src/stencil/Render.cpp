//===- stencil/Render.cpp -------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "stencil/Render.h"
#include <algorithm>

using namespace cmcc;

std::string cmcc::renderOffsets(const std::vector<Offset> &Offsets) {
  if (Offsets.empty())
    return "(empty)\n";
  int MinDy = 0, MaxDy = 0, MinDx = 0, MaxDx = 0;
  for (Offset At : Offsets) {
    MinDy = std::min(MinDy, At.Dy);
    MaxDy = std::max(MaxDy, At.Dy);
    MinDx = std::min(MinDx, At.Dx);
    MaxDx = std::max(MaxDx, At.Dx);
  }
  std::string Out;
  for (int Dy = MinDy; Dy <= MaxDy; ++Dy) {
    for (int Dx = MinDx; Dx <= MaxDx; ++Dx) {
      bool IsTap =
          std::find(Offsets.begin(), Offsets.end(), Offset{Dy, Dx}) !=
          Offsets.end();
      char C = '.';
      if (Dy == 0 && Dx == 0)
        C = IsTap ? '@' : 'o';
      else if (IsTap)
        C = '#';
      Out.push_back(C);
      if (Dx != MaxDx)
        Out.push_back(' ');
    }
    Out.push_back('\n');
  }
  return Out;
}

std::string cmcc::renderStencil(const StencilSpec &Spec) {
  return renderOffsets(Spec.distinctDataOffsets());
}

std::string cmcc::renderBorderWidths(const BorderWidths &B) {
  return "north=" + std::to_string(B.North) +
         " south=" + std::to_string(B.South) +
         " west=" + std::to_string(B.West) +
         " east=" + std::to_string(B.East) +
         " (max=" + std::to_string(B.maximum()) + ")";
}
