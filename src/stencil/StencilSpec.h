//===- stencil/StencilSpec.h - Stencil intermediate form ------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stencil intermediate representation produced by the recognizer and
/// consumed by the convolution compiler and run-time library.
///
/// A stencil computes, for every (i, j):
///
///   R(i,j) = sum over taps t of
///              Sign_t * Coeff_t(i,j) * X(i + Dy_t, j + Dx_t)
///
/// where Dy is the offset along Fortran DIM=1 (rows) and Dx along DIM=2
/// (columns), and the boundary is circular (CSHIFT) or zero (EOSHIFT) per
/// dimension. A tap may also have no data factor at all (the paper's bare
/// "c" term), in which case Coeff_t(i,j) is simply added in.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_STENCIL_STENCILSPEC_H
#define CMCC_STENCIL_STENCILSPEC_H

#include "support/Error.h"
#include <string>
#include <vector>

namespace cmcc {

/// A relative grid offset. Dy indexes DIM=1 (rows, increasing southward in
/// diagrams), Dx indexes DIM=2 (columns, increasing eastward).
struct Offset {
  int Dy = 0;
  int Dx = 0;

  friend bool operator==(Offset A, Offset B) {
    return A.Dy == B.Dy && A.Dx == B.Dx;
  }
  friend bool operator<(Offset A, Offset B) {
    if (A.Dy != B.Dy)
      return A.Dy < B.Dy;
    return A.Dx < B.Dx;
  }
};

/// The coefficient of one term: either a whole coefficient array (the
/// paper's normal case) or a scalar literal (a convenience extension).
struct Coefficient {
  enum class Kind { Array, Scalar };

  Kind TheKind = Kind::Scalar;
  std::string Name;   ///< Valid for Array.
  double Value = 0.0; ///< Valid for Scalar.

  static Coefficient array(std::string Name) {
    Coefficient C;
    C.TheKind = Kind::Array;
    C.Name = std::move(Name);
    return C;
  }
  static Coefficient scalar(double Value) {
    Coefficient C;
    C.TheKind = Kind::Scalar;
    C.Value = Value;
    return C;
  }

  bool isArray() const { return TheKind == Kind::Array; }
};

/// One term of the recognized sum.
struct Tap {
  Offset At;
  Coefficient Coeff;
  /// +1.0 or -1.0, folding the surrounding +/- and unary signs.
  double Sign = 1.0;
  /// False for a bare-coefficient term (no shifted-data factor); such a
  /// term consumes the reserved 1.0 register at run time.
  bool HasData = true;
  /// Which source array the data factor shifts: 0 is StencilSpec::Source,
  /// k > 0 is ExtraSources[k-1]. Always 0 in the paper's recognized form;
  /// additional sources implement the §9 extension ("handle all ten
  /// terms as one stencil pattern").
  int SourceIndex = 0;
};

/// Per-direction halo extents of a pattern (the paper's border widths).
struct BorderWidths {
  int North = 0; ///< max(0, -min Dy)
  int South = 0; ///< max(0, max Dy)
  int West = 0;  ///< max(0, -min Dx)
  int East = 0;  ///< max(0, max Dx)

  int maximum() const;
};

/// How out-of-range source indices behave along one dimension.
enum class BoundaryKind {
  Circular, ///< CSHIFT wraparound.
  Zero,     ///< EOSHIFT end-off with zero fill.
};

/// A fully recognized stencil assignment statement.
class StencilSpec {
public:
  std::string Result;
  std::string Source;
  /// Additional shifted arrays (the multi-source extension); tap source
  /// index k refers to ExtraSources[k-1].
  std::vector<std::string> ExtraSources;
  std::vector<Tap> Taps;
  BoundaryKind BoundaryDim1 = BoundaryKind::Circular;
  BoundaryKind BoundaryDim2 = BoundaryKind::Circular;

  /// Number of source arrays (0 when the statement has no data terms).
  int sourceCount() const {
    return Source.empty() ? 0 : 1 + static_cast<int>(ExtraSources.size());
  }

  /// Name of source \p I (0 = Source).
  const std::string &sourceName(int I) const {
    return I == 0 ? Source : ExtraSources[I - 1];
  }

  /// Checks internal consistency (nonempty, no result/source aliasing,
  /// signs are ±1). Returns a failure describing the first problem.
  Error validate() const;

  /// Border widths of the tap pattern.
  BorderWidths borderWidths() const;

  /// The distinct data offsets referenced by data-bearing taps (of all
  /// sources), sorted. Two taps at the same offset of the same source
  /// share one data element (and one register), exactly as in the
  /// paper's multistencils.
  std::vector<Offset> distinctDataOffsets() const;

  /// The distinct data offsets of one source only.
  std::vector<Offset> distinctDataOffsets(int SourceIdx) const;

  /// True if any tap needs data that is diagonal from the subgrid (both
  /// offsets nonzero) — such stencils require the corner-exchange step.
  bool needsCornerData() const;

  /// True if any bare-coefficient term is present (consumes the reserved
  /// 1.0 register).
  bool needsUnitRegister() const;

  /// Useful floating-point operations per result point, counted the way
  /// the paper counts them: one multiply per data-bearing tap with a
  /// coefficient, plus (number of terms - 1) adds. A 5-tap cross counts 9
  /// even though it executes as 5 multiply-add steps.
  int usefulFlopsPerPoint() const;

  /// The number of multiply-add machine operations per result point (one
  /// per tap; the first add is a wasted add-to-zero).
  int machineOpsPerPoint() const { return static_cast<int>(Taps.size()); }

  /// Names of all coefficient arrays, in tap order, without duplicates.
  std::vector<std::string> coefficientArrayNames() const;

  /// A canonical Fortran-style rendering (for tests and messages).
  std::string str() const;
};

} // namespace cmcc

#endif // CMCC_STENCIL_STENCILSPEC_H
