//===- stencil/Recognizer.h - Assignment pattern matcher ------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pattern matcher at the heart of the paper's compiler module. It
/// accepts single arithmetic assignment statements of the form
///
///   R = T + T + ... + T
///
/// where each term T is c*s(x), s(x)*c, s(x), or c, with c a whole-array
/// (or scalar literal) coefficient and s(x) a possibly nested
/// CSHIFT/EOSHIFT shifting of a single variable x. All shiftings within
/// one statement must shift the same variable name, exactly as the paper
/// requires. Violations produce diagnostics — the feedback the paper's
/// production version planned to give for flagged statements.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_STENCIL_RECOGNIZER_H
#define CMCC_STENCIL_RECOGNIZER_H

#include "fortran/Ast.h"
#include "stencil/StencilSpec.h"
#include "support/Diagnostic.h"
#include <optional>

namespace cmcc {

/// Knobs controlling how permissive recognition is.
struct RecognizerOptions {
  /// The paper requires all shiftings in one statement to shift the same
  /// variable. Enabling this implements the §9 extension: terms may
  /// shift several different arrays ("future versions of the compiler
  /// should be able to handle all ten terms as one stencil pattern"),
  /// which become additional sources with their own register columns
  /// and halo exchanges.
  bool AllowMultipleSources = false;
};

/// Matches assignment ASTs against the recognized stencil form.
class Recognizer {
public:
  explicit Recognizer(DiagnosticEngine &Diags) : Diags(Diags) {}
  Recognizer(DiagnosticEngine &Diags, RecognizerOptions Opts)
      : Diags(Diags), Opts(Opts) {}

  /// Recognizes one assignment statement. Returns std::nullopt (with
  /// diagnostics) when the statement is outside the supported form.
  std::optional<StencilSpec> recognize(const fortran::AssignmentStmt &S);

  /// Recognizes the paper's version-2 unit: a subroutine whose body is a
  /// single stencil assignment. Declarations, when present, are checked
  /// (every referenced array must be declared rank-2 or be a parameter).
  std::optional<StencilSpec> recognize(const fortran::Subroutine &Sub);

private:
  /// One additive term with its folded sign.
  struct Term {
    const fortran::Expr *E;
    double Sign;
  };

  /// Result of analyzing one shift chain s(x).
  struct ShiftChain {
    std::string Variable;
    Offset At;
    bool UsedCircularDim1 = false, UsedZeroDim1 = false;
    bool UsedCircularDim2 = false, UsedZeroDim2 = false;
  };

  void flattenSum(const fortran::Expr &E, double Sign,
                  std::vector<Term> &Out);
  std::optional<ShiftChain> matchShiftChain(const fortran::Expr &E);
  bool isShiftChain(const fortran::Expr &E) const;
  std::optional<double> matchScalar(const fortran::Expr &E) const;

  DiagnosticEngine &Diags;
  RecognizerOptions Opts;
};

} // namespace cmcc

#endif // CMCC_STENCIL_RECOGNIZER_H
