//===- stencil/PatternLibrary.h - Paper's named stencils ------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stencil patterns that appear in the paper's figures and results
/// table, both as ready-made StencilSpecs and as the Fortran subroutine
/// sources the paper's second prototype would process. Having both lets
/// tests and benchmarks drive either the IR directly or the full
/// lexer → parser → recognizer pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_STENCIL_PATTERNLIBRARY_H
#define CMCC_STENCIL_PATTERNLIBRARY_H

#include "stencil/StencilSpec.h"
#include <string>
#include <vector>

namespace cmcc {

/// The named patterns used throughout the paper.
enum class PatternId {
  Cross5,    ///< §2 first example: N/S/E/W + center (9 useful flops).
  Square9,   ///< §2 third example: full 3x3 block (17 useful flops).
  Cross9R2,  ///< §2 second example: radius-2 cross (17 useful flops).
  Diamond13, ///< §5.3: the 13-point diamond (25 useful flops).
  Asym5,     ///< §2 fourth example: the asymmetric 5-point pattern.
};

/// All patterns, in the order they appear in the paper.
std::vector<PatternId> allPatterns();

/// A short stable name ("cross5", "diamond13", ...).
const char *patternName(PatternId Id);

/// Builds the StencilSpec with coefficient arrays C1..Cn, source X,
/// result R, circular boundaries.
StencilSpec makePattern(PatternId Id);

/// The Fortran subroutine source for the pattern, in the paper's
/// isolated-subroutine style.
std::string patternFortranSource(PatternId Id);

/// Builds a StencilSpec from a plain offset list with scalar coefficient
/// 1.0 everywhere (convenient for property tests).
StencilSpec makeSpecFromOffsets(const std::vector<Offset> &Offsets);

} // namespace cmcc

#endif // CMCC_STENCIL_PATTERNLIBRARY_H
