//===- stencil/StencilSpec.cpp --------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "stencil/StencilSpec.h"
#include "support/StringUtils.h"
#include <algorithm>

using namespace cmcc;

int BorderWidths::maximum() const {
  return std::max(std::max(North, South), std::max(West, East));
}

Error StencilSpec::validate() const {
  if (Result.empty())
    return makeError("stencil has no result array");
  if (Taps.empty())
    return makeError("stencil has no terms");

  bool AnyData = false;
  for (const Tap &T : Taps) {
    if (T.Sign != 1.0 && T.Sign != -1.0)
      return makeError("tap sign must be +1 or -1");
    if (T.HasData)
      AnyData = true;
    if (!T.HasData && (T.At.Dy != 0 || T.At.Dx != 0))
      return makeError("bare-coefficient term cannot carry a data offset");
    if (T.HasData && (T.SourceIndex < 0 || T.SourceIndex >= sourceCount()))
      return makeError("tap references source index " +
                       std::to_string(T.SourceIndex) + " of " +
                       std::to_string(sourceCount()));
    if (T.Coeff.isArray()) {
      for (int S = 0; S != sourceCount(); ++S)
        if (T.Coeff.Name == sourceName(S))
          return makeError("coefficient array '" + T.Coeff.Name +
                           "' aliases a stencil variable");
      if (T.Coeff.Name == Result)
        return makeError("coefficient array '" + T.Coeff.Name +
                         "' aliases the result array");
    }
  }
  if (AnyData && Source.empty())
    return makeError("stencil has data terms but no source array");
  for (int S = 0; S != sourceCount(); ++S)
    if (Result == sourceName(S))
      return makeError("result array '" + Result +
                       "' aliases a stencil variable (the run-time library "
                       "stores results while neighbors are still live)");
  for (int S = 0; S != sourceCount(); ++S)
    for (int S2 = S + 1; S2 != sourceCount(); ++S2)
      if (sourceName(S) == sourceName(S2))
        return makeError("duplicate source array '" + sourceName(S) + "'");
  return Error::success();
}

BorderWidths StencilSpec::borderWidths() const {
  BorderWidths B;
  for (const Tap &T : Taps) {
    if (!T.HasData)
      continue;
    B.North = std::max(B.North, -T.At.Dy);
    B.South = std::max(B.South, T.At.Dy);
    B.West = std::max(B.West, -T.At.Dx);
    B.East = std::max(B.East, T.At.Dx);
  }
  return B;
}

std::vector<Offset> StencilSpec::distinctDataOffsets() const {
  std::vector<Offset> Offsets;
  for (const Tap &T : Taps)
    if (T.HasData)
      Offsets.push_back(T.At);
  std::sort(Offsets.begin(), Offsets.end());
  Offsets.erase(std::unique(Offsets.begin(), Offsets.end()), Offsets.end());
  return Offsets;
}

std::vector<Offset> StencilSpec::distinctDataOffsets(int SourceIdx) const {
  std::vector<Offset> Offsets;
  for (const Tap &T : Taps)
    if (T.HasData && T.SourceIndex == SourceIdx)
      Offsets.push_back(T.At);
  std::sort(Offsets.begin(), Offsets.end());
  Offsets.erase(std::unique(Offsets.begin(), Offsets.end()), Offsets.end());
  return Offsets;
}

bool StencilSpec::needsCornerData() const {
  for (const Tap &T : Taps)
    if (T.HasData && T.At.Dy != 0 && T.At.Dx != 0)
      return true;
  return false;
}

bool StencilSpec::needsUnitRegister() const {
  for (const Tap &T : Taps)
    if (!T.HasData)
      return true;
  return false;
}

int StencilSpec::usefulFlopsPerPoint() const {
  int Multiplies = 0;
  for (const Tap &T : Taps)
    if (T.HasData)
      ++Multiplies;
  int Adds = static_cast<int>(Taps.size()) - 1;
  return Multiplies + std::max(Adds, 0);
}

std::vector<std::string> StencilSpec::coefficientArrayNames() const {
  std::vector<std::string> Names;
  for (const Tap &T : Taps) {
    if (!T.Coeff.isArray())
      continue;
    if (std::find(Names.begin(), Names.end(), T.Coeff.Name) == Names.end())
      Names.push_back(T.Coeff.Name);
  }
  return Names;
}

std::string StencilSpec::str() const {
  std::string Out = Result + " =";
  bool First = true;
  for (const Tap &T : Taps) {
    if (First) {
      Out += T.Sign < 0 ? " -" : " ";
      First = false;
    } else {
      Out += T.Sign < 0 ? " - " : " + ";
    }
    std::string CoeffText = T.Coeff.isArray()
                                ? T.Coeff.Name
                                : formatFixed(T.Coeff.Value, 3);
    if (!T.HasData) {
      Out += CoeffText;
      continue;
    }
    Out += CoeffText + "*";
    const std::string &Src = sourceName(T.SourceIndex);
    if (T.At.Dy == 0 && T.At.Dx == 0) {
      Out += Src;
      continue;
    }
    Out += Src + "(" + std::to_string(T.At.Dy) + "," +
           std::to_string(T.At.Dx) + ")";
  }
  return Out;
}
