//===- stencil/Recognizer.cpp ---------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "stencil/Recognizer.h"
#include "fortran/AstPrinter.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Assert.h"
#include <algorithm>

using namespace cmcc;
using namespace cmcc::fortran;

void Recognizer::flattenSum(const Expr &E, double Sign,
                            std::vector<Term> &Out) {
  if (const auto *B = exprDynCast<BinaryExpr>(&E)) {
    if (B->op() == BinaryExpr::Op::Add) {
      flattenSum(B->lhs(), Sign, Out);
      flattenSum(B->rhs(), Sign, Out);
      return;
    }
    if (B->op() == BinaryExpr::Op::Sub) {
      flattenSum(B->lhs(), Sign, Out);
      flattenSum(B->rhs(), -Sign, Out);
      return;
    }
  }
  if (const auto *U = exprDynCast<UnaryExpr>(&E)) {
    double S = U->op() == UnaryExpr::Op::Minus ? -Sign : Sign;
    flattenSum(U->operand(), S, Out);
    return;
  }
  Out.push_back({&E, Sign});
}

bool Recognizer::isShiftChain(const Expr &E) const {
  if (exprDynCast<ArrayNameExpr>(&E))
    return true;
  if (const auto *S = exprDynCast<ShiftCallExpr>(&E))
    return isShiftChain(S->array());
  return false;
}

std::optional<Recognizer::ShiftChain>
Recognizer::matchShiftChain(const Expr &E) {
  if (const auto *Name = exprDynCast<ArrayNameExpr>(&E)) {
    ShiftChain C;
    C.Variable = Name->name();
    return C;
  }
  const auto *S = exprDynCast<ShiftCallExpr>(&E);
  if (!S)
    return std::nullopt;
  std::optional<ShiftChain> Inner = matchShiftChain(S->array());
  if (!Inner)
    return std::nullopt;

  // Composition sums offsets: CSHIFT(CSHIFT(X,1,a),2,b) reads
  // X(i+a, j+b), matching the paper's composed-shift examples.
  bool Circular = S->shiftKind() == ShiftCallExpr::ShiftKind::Circular;
  if (S->dim() == 1) {
    Inner->At.Dy += S->shift();
    (Circular ? Inner->UsedCircularDim1 : Inner->UsedZeroDim1) = true;
  } else {
    assert(S->dim() == 2 && "parser guarantees DIM is 1 or 2");
    Inner->At.Dx += S->shift();
    (Circular ? Inner->UsedCircularDim2 : Inner->UsedZeroDim2) = true;
  }
  return Inner;
}

std::optional<double> Recognizer::matchScalar(const Expr &E) const {
  if (const auto *Lit = exprDynCast<RealLiteralExpr>(&E))
    return Lit->value();
  if (const auto *U = exprDynCast<UnaryExpr>(&E)) {
    std::optional<double> Inner = matchScalar(U->operand());
    if (!Inner)
      return std::nullopt;
    return U->op() == UnaryExpr::Op::Minus ? -*Inner : *Inner;
  }
  return std::nullopt;
}

std::optional<StencilSpec>
Recognizer::recognize(const AssignmentStmt &Stmt) {
  CMCC_SPAN("frontend.recognize");
  static obs::Counter &RecognizeRuns =
      obs::Registry::process().counter("frontend.recognize_runs");
  RecognizeRuns.add(1);
  std::vector<Term> Terms;
  flattenSum(*Stmt.Value, 1.0, Terms);

  // First pass: the stencil variable is whatever appears under a shift.
  // All shiftings within the statement must shift the same name, unless
  // the multi-source extension is enabled.
  std::string Source;
  std::vector<std::string> ExtraSources;
  for (const Term &T : Terms) {
    const Expr *Candidates[2] = {T.E, nullptr};
    if (const auto *B = exprDynCast<BinaryExpr>(T.E);
        B && B->op() == BinaryExpr::Op::Mul) {
      Candidates[0] = &B->lhs();
      Candidates[1] = &B->rhs();
    }
    for (const Expr *C : Candidates) {
      if (!C || !exprDynCast<ShiftCallExpr>(C))
        continue;
      std::optional<ShiftChain> Chain = matchShiftChain(*C);
      if (!Chain) {
        Diags.error(C->location(),
                    "shift intrinsic must be applied to a (possibly "
                    "shifted) array name");
        return std::nullopt;
      }
      if (Source.empty()) {
        Source = Chain->Variable;
      } else if (Source != Chain->Variable) {
        if (!Opts.AllowMultipleSources) {
          Diags.error(C->location(),
                      "all shiftings in one statement must shift the same "
                      "variable: found '" +
                          Chain->Variable + "' after '" + Source +
                          "' (the multi-source extension lifts this)");
          return std::nullopt;
        }
        if (std::find(ExtraSources.begin(), ExtraSources.end(),
                      Chain->Variable) == ExtraSources.end())
          ExtraSources.push_back(Chain->Variable);
      }
    }
  }

  StencilSpec Spec;
  Spec.Result = Stmt.Target;
  Spec.Source = Source;
  Spec.ExtraSources = ExtraSources;

  // Index of an already-registered source, or -1.
  auto SourceIndexOf = [&Spec](const std::string &Name) -> int {
    for (int I = 0; I != Spec.sourceCount(); ++I)
      if (Spec.sourceName(I) == Name)
        return I;
    return -1;
  };

  bool SawCircular1 = false, SawZero1 = false;
  bool SawCircular2 = false, SawZero2 = false;

  // Strips unary +/- layers, folding them into *SignOut.
  auto PeelSign = [](const Expr &E, double *SignOut) -> const Expr * {
    const Expr *Cur = &E;
    while (const auto *U = exprDynCast<UnaryExpr>(Cur)) {
      if (U->op() == UnaryExpr::Op::Minus)
        *SignOut = -*SignOut;
      Cur = &U->operand();
    }
    return Cur;
  };

  // Classifies one factor of a product as a data factor over an
  // already-registered source.
  auto IsDataFactor = [&](const Expr &E) {
    double Sign = 1.0;
    const Expr *Core = PeelSign(E, &Sign);
    if (!isShiftChain(*Core))
      return false;
    std::optional<ShiftChain> C = matchShiftChain(*Core);
    assert(C && "isShiftChain and matchShiftChain disagree");
    if (!Spec.Source.empty())
      return SourceIndexOf(C->Variable) >= 0;
    // No shift appears anywhere in the statement: only a bare name can
    // be data, and we have nothing to distinguish it by yet.
    return exprDynCast<ShiftCallExpr>(Core) != nullptr;
  };

  // Builds a coefficient from a factor, folding unary signs into
  // *SignInOut.
  auto MakeCoefficient = [&](const Expr &E,
                             double *SignInOut) -> std::optional<Coefficient> {
    if (std::optional<double> S = matchScalar(E))
      return Coefficient::scalar(*S); // Sign already inside the value.
    const Expr *Core = PeelSign(E, SignInOut);
    if (const auto *Name = exprDynCast<ArrayNameExpr>(Core))
      return Coefficient::array(Name->name());
    return std::nullopt;
  };

  auto AddDataTap = [&](const Expr &ChainOrSigned, Coefficient Coeff,
                        double Sign) -> bool {
    const Expr &ChainExpr = *PeelSign(ChainOrSigned, &Sign);
    std::optional<ShiftChain> Chain = matchShiftChain(ChainExpr);
    if (!Chain)
      return false;
    int SourceIdx;
    if (Spec.Source.empty()) {
      Spec.Source = Chain->Variable;
      SourceIdx = 0;
    } else {
      SourceIdx = SourceIndexOf(Chain->Variable);
      if (SourceIdx < 0) {
        if (!Opts.AllowMultipleSources)
          return false;
        Spec.ExtraSources.push_back(Chain->Variable);
        SourceIdx = Spec.sourceCount() - 1;
      }
    }
    SawCircular1 |= Chain->UsedCircularDim1;
    SawZero1 |= Chain->UsedZeroDim1;
    SawCircular2 |= Chain->UsedCircularDim2;
    SawZero2 |= Chain->UsedZeroDim2;
    Tap T;
    T.At = Chain->At;
    T.Coeff = std::move(Coeff);
    T.Sign = Sign;
    T.HasData = true;
    T.SourceIndex = SourceIdx;
    Spec.Taps.push_back(std::move(T));
    return true;
  };

  for (const Term &T : Terms) {
    const Expr &E = *T.E;

    if (const auto *B = exprDynCast<BinaryExpr>(&E);
        B && B->op() == BinaryExpr::Op::Mul) {
      const Expr &L = B->lhs();
      const Expr &R = B->rhs();
      const Expr *Data = nullptr;
      const Expr *Coeff = nullptr;
      if (IsDataFactor(L) && !IsDataFactor(R)) {
        Data = &L;
        Coeff = &R;
      } else if (IsDataFactor(R) && !IsDataFactor(L)) {
        Data = &R;
        Coeff = &L;
      } else if (IsDataFactor(L) && IsDataFactor(R)) {
        Diags.error(B->location(),
                    "term multiplies the stencil variable by itself; the "
                    "recognized form is linear in the shifted variable");
        return std::nullopt;
      } else if (double Tmp = 1.0;
                 (Spec.Source.empty() || Opts.AllowMultipleSources) &&
                 [&] {
                   // Neither factor is a registered source. Either the
                   // statement has no shifts at all (classic pointwise
                   // fallback) or the multi-source extension is on and
                   // this term introduces a new source. Prefer a shifted
                   // factor as data; between two bare names take the
                   // right one (documented convention).
                   const Expr *LCore = PeelSign(L, &Tmp);
                   const Expr *RCore = PeelSign(R, &Tmp);
                   bool LCall = exprDynCast<ShiftCallExpr>(LCore) != nullptr;
                   bool RCall = exprDynCast<ShiftCallExpr>(RCore) != nullptr;
                   if (isShiftChain(*RCore) && (RCall || !LCall)) {
                     Data = &R;
                     Coeff = &L;
                     return true;
                   }
                   if (isShiftChain(*LCore) && LCall) {
                     Data = &L;
                     Coeff = &R;
                     return true;
                   }
                   return false;
                 }()) {
        // Data/Coeff set by the lambda above.
      } else {
        Diags.error(B->location(),
                    "term is not of the form c * s(" +
                        (Spec.Source.empty() ? std::string("x")
                                             : Spec.Source) +
                        "): " + printExpr(E));
        return std::nullopt;
      }
      double Sign = T.Sign;
      std::optional<Coefficient> C = MakeCoefficient(*Coeff, &Sign);
      if (!C) {
        Diags.error(Coeff->location(),
                    "coefficient must be a whole-array name or a scalar "
                    "constant: " +
                        printExpr(*Coeff));
        return std::nullopt;
      }
      if (!AddDataTap(*Data, std::move(*C), Sign))
        CMCC_UNREACHABLE("data factor stopped matching");
      continue;
    }

    // A lone shift chain of a stencil variable: coefficient 1.0.
    if (isShiftChain(E)) {
      std::optional<ShiftChain> Chain = matchShiftChain(E);
      assert(Chain && "isShiftChain and matchShiftChain disagree");
      bool IsSourceChain =
          !Spec.Source.empty() ? SourceIndexOf(Chain->Variable) >= 0
                               : exprDynCast<ShiftCallExpr>(&E) != nullptr;
      if (IsSourceChain) {
        if (!AddDataTap(E, Coefficient::scalar(1.0), T.Sign))
          CMCC_UNREACHABLE("data factor stopped matching");
        continue;
      }
      // A bare array name that is not the stencil variable: the paper's
      // "c" term, added in via the reserved 1.0 register.
      if (const auto *Name = exprDynCast<ArrayNameExpr>(&E)) {
        Tap Bare;
        Bare.Coeff = Coefficient::array(Name->name());
        Bare.Sign = T.Sign;
        Bare.HasData = false;
        Spec.Taps.push_back(std::move(Bare));
        continue;
      }
    }

    if (std::optional<double> S = matchScalar(E)) {
      Tap Bare;
      Bare.Coeff = Coefficient::scalar(*S);
      Bare.Sign = T.Sign;
      Bare.HasData = false;
      Spec.Taps.push_back(std::move(Bare));
      continue;
    }

    Diags.error(E.location(),
                "term is outside the recognized stencil form: " +
                    printExpr(E));
    return std::nullopt;
  }

  if (SawCircular1 && SawZero1) {
    Diags.error(Stmt.Location,
                "mixing CSHIFT and EOSHIFT along DIM=1 is not supported "
                "(the composition is order-dependent)");
    return std::nullopt;
  }
  if (SawCircular2 && SawZero2) {
    Diags.error(Stmt.Location,
                "mixing CSHIFT and EOSHIFT along DIM=2 is not supported "
                "(the composition is order-dependent)");
    return std::nullopt;
  }
  Spec.BoundaryDim1 = SawZero1 ? BoundaryKind::Zero : BoundaryKind::Circular;
  Spec.BoundaryDim2 = SawZero2 ? BoundaryKind::Zero : BoundaryKind::Circular;

  if (Error E = Spec.validate()) {
    Diags.error(Stmt.Location, E.message());
    return std::nullopt;
  }
  return Spec;
}

std::optional<StencilSpec> Recognizer::recognize(const Subroutine &Sub) {
  if (Sub.Body.size() != 1) {
    Diags.error(Sub.Location,
                "stencil subroutine must contain exactly one assignment "
                "statement (found " +
                    std::to_string(Sub.Body.size()) + ")");
    return std::nullopt;
  }
  std::optional<StencilSpec> Spec = recognize(Sub.Body.front());
  if (!Spec)
    return std::nullopt;

  if (!Sub.Declarations.empty()) {
    auto CheckDeclared = [&](const std::string &Name) {
      const ArrayDecl *D = Sub.findDeclaration(Name);
      if (!D) {
        Diags.error(Sub.Location,
                    "array '" + Name + "' is not declared in subroutine '" +
                        Sub.Name + "'");
        return false;
      }
      if (D->Rank != 2)
        Diags.warning(D->Location,
                      "array '" + Name + "' has rank " +
                          std::to_string(D->Rank) +
                          "; the convolution kernel operates on the two "
                          "distributed axes");
      return true;
    };
    bool Ok = CheckDeclared(Spec->Result);
    if (!Spec->Source.empty())
      Ok &= CheckDeclared(Spec->Source);
    for (const std::string &Name : Spec->ExtraSources)
      Ok &= CheckDeclared(Name);
    for (const std::string &Name : Spec->coefficientArrayNames())
      Ok &= CheckDeclared(Name);
    if (!Ok)
      return std::nullopt;
  }
  return Spec;
}
