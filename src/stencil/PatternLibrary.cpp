//===- stencil/PatternLibrary.cpp -----------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "stencil/PatternLibrary.h"
#include "support/Assert.h"

using namespace cmcc;

std::vector<PatternId> cmcc::allPatterns() {
  return {PatternId::Cross5, PatternId::Square9, PatternId::Cross9R2,
          PatternId::Diamond13, PatternId::Asym5};
}

const char *cmcc::patternName(PatternId Id) {
  switch (Id) {
  case PatternId::Cross5:
    return "cross5";
  case PatternId::Square9:
    return "square9";
  case PatternId::Cross9R2:
    return "cross9r2";
  case PatternId::Diamond13:
    return "diamond13";
  case PatternId::Asym5:
    return "asym5";
  }
  CMCC_UNREACHABLE("unknown pattern id");
}

/// Returns the tap offsets of \p Id in the order the paper writes the
/// corresponding Fortran terms.
static std::vector<Offset> patternOffsets(PatternId Id) {
  switch (Id) {
  case PatternId::Cross5:
    // R = C1*CSHIFT(X,1,-1) + C2*CSHIFT(X,2,-1) + C3*X
    //   + C4*CSHIFT(X,2,+1) + C5*CSHIFT(X,1,+1)
    return {{-1, 0}, {0, -1}, {0, 0}, {0, 1}, {1, 0}};
  case PatternId::Square9:
    return {{-1, -1}, {-1, 0}, {-1, 1}, {0, -1}, {0, 0},
            {0, 1},   {1, -1}, {1, 0},  {1, 1}};
  case PatternId::Cross9R2:
    // R = C1*CSHIFT(X,1,-2) + C2*CSHIFT(X,1,-1) + C3*CSHIFT(X,2,-2)
    //   + C4*CSHIFT(X,2,-1) + C5*X + C6*CSHIFT(X,2,+2)
    //   + C7*CSHIFT(X,2,+1) + C8*CSHIFT(X,1,+1) + C9*CSHIFT(X,1,+2)
    return {{-2, 0}, {-1, 0}, {0, -2}, {0, -1}, {0, 0},
            {0, 2},  {0, 1},  {1, 0},  {2, 0}};
  case PatternId::Diamond13: {
    // All offsets with |dy| + |dx| <= 2: the 13-point diamond of §5.3.
    std::vector<Offset> Offsets;
    for (int Dy = -2; Dy <= 2; ++Dy)
      for (int Dx = -2; Dx <= 2; ++Dx)
        if (std::abs(Dy) + std::abs(Dx) <= 2)
          Offsets.push_back({Dy, Dx});
    return Offsets;
  }
  case PatternId::Asym5:
    // R = C1*X + C2*CSHIFT(X,2,+1) + C3*CSHIFT(CSHIFT(X,1,+1),2,-1)
    //   + C4*CSHIFT(X,1,+1) + C5*CSHIFT(X,1,+2)
    return {{0, 0}, {0, 1}, {1, -1}, {1, 0}, {2, 0}};
  }
  CMCC_UNREACHABLE("unknown pattern id");
}

StencilSpec cmcc::makePattern(PatternId Id) {
  StencilSpec Spec;
  Spec.Result = "R";
  Spec.Source = "X";
  std::vector<Offset> Offsets = patternOffsets(Id);
  for (size_t I = 0; I != Offsets.size(); ++I) {
    Tap T;
    T.At = Offsets[I];
    T.Coeff = Coefficient::array("C" + std::to_string(I + 1));
    Spec.Taps.push_back(std::move(T));
  }
  return Spec;
}

/// Renders the term for a single offset, composing CSHIFTs the way the
/// paper does for diagonal taps.
static std::string termForOffset(Offset At) {
  if (At.Dy == 0 && At.Dx == 0)
    return "X";
  auto Signed = [](int V) {
    return V > 0 ? "+" + std::to_string(V) : std::to_string(V);
  };
  if (At.Dy == 0)
    return "CSHIFT(X, 2, " + Signed(At.Dx) + ")";
  if (At.Dx == 0)
    return "CSHIFT(X, 1, " + Signed(At.Dy) + ")";
  return "CSHIFT(CSHIFT(X, 1, " + Signed(At.Dy) + "), 2, " + Signed(At.Dx) +
         ")";
}

std::string cmcc::patternFortranSource(PatternId Id) {
  std::vector<Offset> Offsets = patternOffsets(Id);
  std::string ArgList = "R, X";
  for (size_t I = 0; I != Offsets.size(); ++I)
    ArgList += ", C" + std::to_string(I + 1);

  std::string Source;
  Source += "      SUBROUTINE " + std::string(patternName(Id)) + " (" +
            ArgList + ")\n";
  Source += "      REAL, ARRAY(:,:) :: " + ArgList + "\n";
  for (size_t I = 0; I != Offsets.size(); ++I) {
    Source += I == 0 ? "      R = " : "     &  + ";
    Source += "C" + std::to_string(I + 1) + " * " + termForOffset(Offsets[I]);
    if (I + 1 != Offsets.size())
      Source += " &";
    Source += "\n";
  }
  Source += "      END\n";
  return Source;
}

StencilSpec cmcc::makeSpecFromOffsets(const std::vector<Offset> &Offsets) {
  StencilSpec Spec;
  Spec.Result = "R";
  Spec.Source = "X";
  for (Offset At : Offsets) {
    Tap T;
    T.At = At;
    T.Coeff = Coefficient::scalar(1.0);
    Spec.Taps.push_back(std::move(T));
  }
  return Spec;
}
