//===- stencil/Render.h - ASCII stencil diagrams --------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ASCII renderings of the paper's figures: stencil patterns (shaded
/// squares with a bullet at the store position), border widths, and the
/// halo-padding picture of §5.1. Multistencil renderings live with the
/// Multistencil class in core/.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_STENCIL_RENDER_H
#define CMCC_STENCIL_RENDER_H

#include "stencil/StencilSpec.h"
#include <string>

namespace cmcc {

/// Renders the tap pattern: '#' for a tap, '@' for the center when it is
/// itself a tap, 'o' for the (store) center when it is not, '.' empty.
/// North (negative Dy) is the top row.
std::string renderStencil(const StencilSpec &Spec);

/// Renders the same pattern from a bare offset list.
std::string renderOffsets(const std::vector<Offset> &Offsets);

/// Renders the border widths as the paper annotates them, e.g.
/// "north=2 south=0 west=3 east=1 (max=3)".
std::string renderBorderWidths(const BorderWidths &B);

} // namespace cmcc

#endif // CMCC_STENCIL_RENDER_H
