//===- obs/FlightRecorder.h - Lock-free black-box event ring --*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide, fixed-size, lock-free ring of structured events —
/// the black box a chaos-killed cmcc_serve leaves behind. Producers
/// (fault injector, service admission/retry/fallback paths, server
/// connection handling) record from any thread with a handful of
/// relaxed atomic stores; readers snapshot without stopping writers and
/// discard torn slots via a per-slot sequence word (seqlock-style, but
/// every field is an atomic so the race is benign and TSan-clean).
///
/// Dumped as JSON on SIGUSR1 (cmcc_serve polls a flag set by the
/// handler), on fatal error (reportUnreachable), or over the wire via
/// the `dump` request.
///
/// The detail string is recorded by pointer: pass string literals (all
/// call sites do — fault site names, fixed event descriptions).
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_OBS_FLIGHTRECORDER_H
#define CMCC_OBS_FLIGHTRECORDER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cmcc {
namespace obs {

class FlightRecorder {
public:
  enum class EventKind : std::uint8_t {
    None = 0,
    ServerStart,
    ServerStop,
    FaultFired,
    AdmissionReject,
    Retry,
    Fallback,
    DeadlineExceeded,
    Cancelled,
    JobFailed,
    SlowJob,
    DrainBegin,
    ConnAccepted,
    ConnClosed,
    ConnRejected,
    DecodeError,
    FatalError,
  };

  /// A consistent snapshot of one recorded event.
  struct Event {
    std::uint64_t Seq = 0; ///< 1-based global record index (monotonic).
    std::uint64_t Ns = 0;  ///< Steady-clock nanoseconds (obs::detail::nowNs).
    EventKind Kind = EventKind::None;
    std::uint64_t A = 0;       ///< Kind-specific (job id, conn id, ...).
    std::uint64_t B = 0;       ///< Kind-specific (tenant, attempt, ms, ...).
    std::uint64_t TraceId = 0; ///< Originating trace id, 0 if none.
    const char *Detail = nullptr; ///< Literal site / description, may be null.
  };

  /// Number of slots; events older than the newest Capacity are
  /// overwritten. Power of two (index masking).
  static constexpr std::size_t Capacity = 4096;

  FlightRecorder();

  /// Records one event. Lock-free on the common path: one fetch_add,
  /// one claim CAS, six relaxed stores, and one release store. Two
  /// writers contend on a slot only when one slept through a full ring
  /// wrap; the newer event wins and the stale one is dropped (it was
  /// logically overwritten already). Safe from any thread, including
  /// while other threads snapshot.
  void record(EventKind Kind, const char *Detail = nullptr,
              std::uint64_t A = 0, std::uint64_t B = 0,
              std::uint64_t TraceId = 0);

  /// Copies out every slot that reads back consistent (writers racing
  /// with the snapshot lose only their own in-flight slot), oldest
  /// first.
  std::vector<Event> snapshot() const;

  /// Total events ever recorded (including overwritten ones).
  std::uint64_t totalRecorded() const {
    return Head.load(std::memory_order_relaxed);
  }

  /// The snapshot as one JSON object:
  /// {"capacity":..,"recorded":..,"dropped":..,"events":[...]}.
  std::string json() const;

  /// Human-readable name for \p Kind ("fault_fired", ...).
  static const char *kindName(EventKind Kind);

  /// The process-wide recorder every hook reports into.
  static FlightRecorder &process();

  /// Dumps the process recorder on the way to an abort: to the path in
  /// CMCC_FLIGHT_DUMP if set, else to stderr. Keeps the work out of
  /// Assert.h (which must stay header-light).
  static void dumpOnFatal(const char *Reason);

private:
  /// Set in a slot's Seq word while a writer owns the payload fields.
  /// Makes writers mutually exclusive per slot, so a published Seq can
  /// never sit over a mix of two writers' payloads.
  static constexpr std::uint64_t ClaimBit = 1ULL << 63;

  struct Slot {
    /// 0 = never written; Seq | ClaimBit = write in flight; otherwise
    /// the event's Seq. Published last (release) and read twice around
    /// the payload to detect tearing.
    std::atomic<std::uint64_t> Seq{0};
    std::atomic<std::uint64_t> Ns{0};
    std::atomic<std::uint64_t> KindBits{0};
    std::atomic<std::uint64_t> A{0};
    std::atomic<std::uint64_t> B{0};
    std::atomic<std::uint64_t> Trace{0};
    std::atomic<const char *> Detail{nullptr};
  };

  std::atomic<std::uint64_t> Head{0};
  std::unique_ptr<Slot[]> Slots;
};

} // namespace obs
} // namespace cmcc

#endif // CMCC_OBS_FLIGHTRECORDER_H
