//===- obs/Trace.h - Scoped tracing to Chrome trace JSON ------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII scoped spans recording host-side phases (front end, compiler
/// phases, halo-exchange steps, per-half-strip FPU execution, service
/// job stages) into per-thread buffers, flushed as Chrome trace-event
/// JSON loadable in Perfetto / chrome://tracing.
///
/// Off by default. When disabled, a span costs exactly one relaxed
/// atomic load and one branch — cheap enough to leave CMCC_SPAN in the
/// per-half-strip inner loop (bench_obs measures the cost and holds it
/// under 2% of a functional run). Enable either with the CMCC_TRACE
/// environment variable (`CMCC_TRACE=trace.json cmccc ...`) or
/// programmatically with Trace::start / Trace::stop.
///
/// The trace file is written incrementally: start() writes a valid
/// empty trace immediately, and every flush (periodic when a flush
/// interval is configured — CMCC_TRACE_FLUSH_MS, default 500 ms, for
/// env-started traces — or explicit via Trace::flush()) appends the
/// accumulated spans and rewrites the closing bracket, so the file on
/// disk parses as JSON at every flush boundary and a killed process
/// loses at most one interval of spans, not the whole trace.
///
/// When a thread has an obs::TraceContext established (a job carried a
/// client-minted trace id across the wire), each span additionally
/// records the trace id plus its own and its parent's span ids, so
/// spans from the client, server, and service processes line up under
/// one id in a merged trace.
///
/// Tracing can never change results: spans observe host wall-clock
/// only, and the simulated cycle accounting is analytic (bench_obs
/// asserts bitwise-identical arrays and cycle totals with tracing on
/// and off).
///
/// Span names must be string literals (or otherwise outlive the trace):
/// only the pointer is recorded.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_OBS_TRACE_H
#define CMCC_OBS_TRACE_H

#include "obs/TraceContext.h"
#include <atomic>
#include <cstdint>
#include <string>

namespace cmcc {
namespace obs {

namespace detail {
extern std::atomic<bool> TraceOn;
/// Monotonic nanoseconds (steady clock).
std::uint64_t nowNs();
/// Appends one complete span to the calling thread's buffer. The id
/// triple is zero for spans recorded outside any trace context.
void recordSpan(const char *Name, std::uint64_t BeginNs, std::uint64_t EndNs,
                std::uint64_t TraceId = 0, std::uint64_t SpanId = 0,
                std::uint64_t ParentId = 0);
} // namespace detail

/// True while a trace is being recorded. The single branch every
/// disabled span pays.
inline bool traceEnabled() {
  return detail::TraceOn.load(std::memory_order_relaxed);
}

/// One scoped span: construction notes the begin time, destruction
/// records the complete event. A span constructed while tracing is
/// disabled does nothing at all. While tracing, a span also threads the
/// ambient TraceContext: it becomes the thread's current parent for its
/// dynamic extent, so nested spans (and spans on pool workers the
/// context was propagated to) form a tree under the job's trace id.
class Span {
public:
  explicit Span(const char *SpanName) {
    if (traceEnabled()) {
      Name = SpanName;
      TraceContext Ctx = currentTraceContext();
      CtxTrace = Ctx.TraceId;
      CtxParent = Ctx.SpanId;
      if (CtxTrace) {
        OwnId = mintSpanId();
        exchangeTraceContext({CtxTrace, OwnId});
      }
      BeginNs = detail::nowNs();
    }
  }
  ~Span() {
    if (Name) {
      std::uint64_t EndNs = detail::nowNs();
      if (CtxTrace)
        exchangeTraceContext({CtxTrace, CtxParent});
      detail::recordSpan(Name, BeginNs, EndNs, CtxTrace,
                         CtxTrace ? OwnId : 0, CtxTrace ? CtxParent : 0);
    }
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name = nullptr;
  // Only read while tracing (Name != nullptr); the zero-inits are
  // cheap stack stores (bench_obs keeps the disabled span under its
  // budget with them).
  std::uint64_t BeginNs = 0;
  std::uint64_t CtxTrace = 0;
  std::uint64_t CtxParent = 0;
  std::uint64_t OwnId = 0;
};

/// The process-wide trace recorder.
class Trace {
public:
  /// Begins recording; spans accumulate in per-thread buffers and are
  /// appended to \p Path (valid Chrome trace-event JSON from the first
  /// write) by flush()/stop(). With \p FlushIntervalMs > 0 a
  /// background thread flushes that often. Returns false (and records
  /// nothing) if a trace is already active or the file cannot be
  /// opened.
  static bool start(const std::string &Path, long FlushIntervalMs = 0);

  /// Appends every thread's accumulated spans to the file and rewrites
  /// the JSON tail, leaving the file parseable. No-op when not
  /// recording. Returns true if the write succeeded.
  static bool flush();

  /// Final flush, then disables recording and closes the file. Safe to
  /// call when not recording (no-op). Returns true if the file was
  /// written successfully.
  static bool stop();

  /// True between start() and stop(). (CMCC_TRACE starts a trace at
  /// process start and stops it at exit.)
  static bool active();
};

} // namespace obs
} // namespace cmcc

#define CMCC_OBS_CONCAT_IMPL(A, B) A##B
#define CMCC_OBS_CONCAT(A, B) CMCC_OBS_CONCAT_IMPL(A, B)
/// Declares an anonymous scoped span covering the rest of the enclosing
/// block. \p Name must be a string literal.
#define CMCC_SPAN(Name)                                                      \
  ::cmcc::obs::Span CMCC_OBS_CONCAT(CmccObsSpan_, __LINE__)(Name)

#endif // CMCC_OBS_TRACE_H
