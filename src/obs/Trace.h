//===- obs/Trace.h - Scoped tracing to Chrome trace JSON ------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII scoped spans recording host-side phases (front end, compiler
/// phases, halo-exchange steps, per-half-strip FPU execution, service
/// job stages) into per-thread buffers, flushed as Chrome trace-event
/// JSON loadable in Perfetto / chrome://tracing.
///
/// Off by default. When disabled, a span costs exactly one relaxed
/// atomic load and one branch — cheap enough to leave CMCC_SPAN in the
/// per-half-strip inner loop (bench_obs measures the cost and holds it
/// under 2% of a functional run). Enable either with the CMCC_TRACE
/// environment variable (`CMCC_TRACE=trace.json cmccc ...`; the file is
/// written at process exit) or programmatically with Trace::start /
/// Trace::stop.
///
/// Tracing can never change results: spans observe host wall-clock
/// only, and the simulated cycle accounting is analytic (bench_obs
/// asserts bitwise-identical arrays and cycle totals with tracing on
/// and off).
///
/// Span names must be string literals (or otherwise outlive the trace):
/// only the pointer is recorded.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_OBS_TRACE_H
#define CMCC_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace cmcc {
namespace obs {

namespace detail {
extern std::atomic<bool> TraceOn;
/// Monotonic nanoseconds (steady clock).
std::uint64_t nowNs();
/// Appends one complete span to the calling thread's buffer.
void recordSpan(const char *Name, std::uint64_t BeginNs,
                std::uint64_t EndNs);
} // namespace detail

/// True while a trace is being recorded. The single branch every
/// disabled span pays.
inline bool traceEnabled() {
  return detail::TraceOn.load(std::memory_order_relaxed);
}

/// One scoped span: construction notes the begin time, destruction
/// records the complete event. A span constructed while tracing is
/// disabled does nothing at all.
class Span {
public:
  explicit Span(const char *SpanName) {
    if (traceEnabled()) {
      Name = SpanName;
      BeginNs = detail::nowNs();
    }
  }
  ~Span() {
    if (Name)
      detail::recordSpan(Name, BeginNs, detail::nowNs());
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name = nullptr;
  std::uint64_t BeginNs = 0;
};

/// The process-wide trace recorder.
class Trace {
public:
  /// Begins recording; spans accumulate until stop() writes them to
  /// \p Path as Chrome trace-event JSON. Returns false (and records
  /// nothing) if a trace is already active.
  static bool start(const std::string &Path);

  /// Flushes every thread's spans to the file given to start() and
  /// disables recording. Safe to call when not recording (no-op).
  /// Returns true if the file was written successfully.
  static bool stop();

  /// True between start() and stop(). (CMCC_TRACE starts a trace at
  /// process start and stops it at exit.)
  static bool active();
};

} // namespace obs
} // namespace cmcc

#define CMCC_OBS_CONCAT_IMPL(A, B) A##B
#define CMCC_OBS_CONCAT(A, B) CMCC_OBS_CONCAT_IMPL(A, B)
/// Declares an anonymous scoped span covering the rest of the enclosing
/// block. \p Name must be a string literal.
#define CMCC_SPAN(Name)                                                      \
  ::cmcc::obs::Span CMCC_OBS_CONCAT(CmccObsSpan_, __LINE__)(Name)

#endif // CMCC_OBS_TRACE_H
