//===- obs/TraceContext.cpp -----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/TraceContext.h"
#include <atomic>
#include <chrono>
#include <cstdio>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

using namespace cmcc;
using namespace cmcc::obs;

namespace {

thread_local TraceContext CurrentContext;

/// SplitMix64: full-period mixing, the same generator the fault
/// injector and data fills use.
std::uint64_t splitMix64(std::uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  std::uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

std::uint64_t processSeed() {
  std::uint64_t Seed = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  Seed ^= static_cast<std::uint64_t>(
              std::chrono::system_clock::now().time_since_epoch().count())
          << 1;
#if defined(_WIN32)
  Seed ^= static_cast<std::uint64_t>(_getpid()) << 32;
#else
  Seed ^= static_cast<std::uint64_t>(::getpid()) << 32;
#endif
  // ASLR contributes entropy across processes started the same tick.
  Seed ^= reinterpret_cast<std::uintptr_t>(&Seed);
  return Seed;
}

} // namespace

TraceContext obs::currentTraceContext() { return CurrentContext; }

TraceContext obs::exchangeTraceContext(TraceContext Ctx) {
  TraceContext Prev = CurrentContext;
  CurrentContext = Ctx;
  return Prev;
}

std::uint64_t obs::mintTraceId() {
  static std::atomic<std::uint64_t> State{processSeed()};
  std::uint64_t Id = 0;
  while (Id == 0) {
    std::uint64_t S = State.fetch_add(0x9e3779b97f4a7c15ULL,
                                      std::memory_order_relaxed);
    std::uint64_t Z = S + 0x9e3779b97f4a7c15ULL;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    Id = Z ^ (Z >> 31);
  }
  return Id;
}

std::uint64_t obs::mintSpanId() {
  // Per-thread stream: no synchronization on the traced hot path.
  static thread_local std::uint64_t State = mintTraceId();
  std::uint64_t Id = 0;
  while (Id == 0)
    Id = splitMix64(State);
  return Id;
}

std::string obs::formatTraceId(std::uint64_t Id) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Id));
  return Buf;
}

std::uint64_t obs::parseTraceId(const std::string &Text) {
  std::size_t Pos = 0;
  if (Text.size() > 2 && Text[0] == '0' && (Text[1] == 'x' || Text[1] == 'X'))
    Pos = 2;
  if (Pos == Text.size() || Text.size() - Pos > 16)
    return 0;
  std::uint64_t Value = 0;
  for (; Pos < Text.size(); ++Pos) {
    char C = Text[Pos];
    std::uint64_t Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<std::uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<std::uint64_t>(C - 'a') + 10;
    else if (C >= 'A' && C <= 'F')
      Digit = static_cast<std::uint64_t>(C - 'A') + 10;
    else
      return 0;
    Value = (Value << 4) | Digit;
  }
  return Value;
}
