//===- obs/FlightRecorder.cpp ---------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "obs/TraceContext.h"
#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace cmcc;
using namespace cmcc::obs;

FlightRecorder::FlightRecorder() : Slots(new Slot[Capacity]) {}

FlightRecorder &FlightRecorder::process() {
  // Leaked: producers (pool workers, the serve main loop's signal
  // path) may record during static destruction.
  static FlightRecorder *R = new FlightRecorder;
  return *R;
}

void FlightRecorder::record(EventKind Kind, const char *Detail,
                            std::uint64_t A, std::uint64_t B,
                            std::uint64_t TraceId) {
  if (TraceId == 0)
    TraceId = currentTraceContext().TraceId;
  std::uint64_t Seq = Head.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot &S = Slots[(Seq - 1) & (Capacity - 1)];
  // Claim the slot before touching the payload: two writers meet on one
  // slot only when one of them slept through a full ring wrap (their
  // Seqs differ by a multiple of Capacity), and interleaved payload
  // stores would publish a mixed event the Seq re-read cannot detect.
  // The claim makes the writer exclusive: a *newer* in-flight or
  // published event wins and the stale write is dropped (it was
  // logically overwritten already); an *older* in-flight write is
  // waited out — a handful of relaxed stores, so the spin is bounded
  // and in practice never taken.
  for (;;) {
    std::uint64_t Cur = S.Seq.load(std::memory_order_relaxed);
    if (Cur & ClaimBit) {
      if ((Cur & ~ClaimBit) > Seq)
        return;
      continue;
    }
    if (Cur > Seq)
      return;
    if (S.Seq.compare_exchange_weak(Cur, Seq | ClaimBit,
                                    std::memory_order_acquire,
                                    std::memory_order_relaxed))
      break;
  }
  S.Ns.store(detail::nowNs(), std::memory_order_relaxed);
  S.KindBits.store(static_cast<std::uint64_t>(Kind),
                   std::memory_order_relaxed);
  S.A.store(A, std::memory_order_relaxed);
  S.B.store(B, std::memory_order_relaxed);
  S.Trace.store(TraceId, std::memory_order_relaxed);
  S.Detail.store(Detail, std::memory_order_relaxed);
  S.Seq.store(Seq, std::memory_order_release);
  Registry::process().counter("obs.flight_events").add(1);
}

std::vector<FlightRecorder::Event> FlightRecorder::snapshot() const {
  std::vector<Event> Out;
  Out.reserve(Capacity);
  for (std::size_t I = 0; I < Capacity; ++I) {
    const Slot &S = Slots[I];
    std::uint64_t Seq1 = S.Seq.load(std::memory_order_acquire);
    if (Seq1 == 0 || (Seq1 & ClaimBit))
      continue;
    Event E;
    E.Seq = Seq1;
    E.Ns = S.Ns.load(std::memory_order_relaxed);
    E.Kind = static_cast<EventKind>(S.KindBits.load(std::memory_order_relaxed));
    E.A = S.A.load(std::memory_order_relaxed);
    E.B = S.B.load(std::memory_order_relaxed);
    E.TraceId = S.Trace.load(std::memory_order_relaxed);
    E.Detail = S.Detail.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    // Torn if a writer claimed the slot (Seq -> Seq|ClaimBit) or
    // finished a new event in it while we read the payload.
    if (S.Seq.load(std::memory_order_relaxed) != Seq1)
      continue;
    Out.push_back(E);
  }
  std::sort(Out.begin(), Out.end(),
            [](const Event &L, const Event &R) { return L.Seq < R.Seq; });
  return Out;
}

const char *FlightRecorder::kindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::None:
    return "none";
  case EventKind::ServerStart:
    return "server_start";
  case EventKind::ServerStop:
    return "server_stop";
  case EventKind::FaultFired:
    return "fault_fired";
  case EventKind::AdmissionReject:
    return "admission_reject";
  case EventKind::Retry:
    return "retry";
  case EventKind::Fallback:
    return "fallback";
  case EventKind::DeadlineExceeded:
    return "deadline_exceeded";
  case EventKind::Cancelled:
    return "cancelled";
  case EventKind::JobFailed:
    return "job_failed";
  case EventKind::SlowJob:
    return "slow_job";
  case EventKind::DrainBegin:
    return "drain_begin";
  case EventKind::ConnAccepted:
    return "conn_accepted";
  case EventKind::ConnClosed:
    return "conn_closed";
  case EventKind::ConnRejected:
    return "conn_rejected";
  case EventKind::DecodeError:
    return "decode_error";
  case EventKind::FatalError:
    return "fatal_error";
  }
  return "unknown";
}

namespace {

void appendEscaped(std::string &Out, const char *Text) {
  for (const char *P = Text; *P; ++P) {
    if (*P == '"' || *P == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(*P) < 0x20)
      Out += ' ';
    else
      Out += *P;
  }
}

} // namespace

std::string FlightRecorder::json() const {
  std::vector<Event> Events = snapshot();
  std::uint64_t Total = totalRecorded();
  std::uint64_t Dropped = Total > Events.size()
                              ? Total - static_cast<std::uint64_t>(Events.size())
                              : 0;
  std::string Out;
  Out.reserve(128 + Events.size() * 96);
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "{\"capacity\": %llu, \"recorded\": %llu, \"dropped\": %llu, "
                "\"events\": [",
                static_cast<unsigned long long>(Capacity),
                static_cast<unsigned long long>(Total),
                static_cast<unsigned long long>(Dropped));
  Out += Buf;
  bool First = true;
  for (const Event &E : Events) {
    std::snprintf(Buf, sizeof(Buf),
                  "%s\n{\"seq\": %llu, \"ns\": %llu, \"kind\": \"%s\", "
                  "\"a\": %llu, \"b\": %llu",
                  First ? "" : ",", static_cast<unsigned long long>(E.Seq),
                  static_cast<unsigned long long>(E.Ns), kindName(E.Kind),
                  static_cast<unsigned long long>(E.A),
                  static_cast<unsigned long long>(E.B));
    Out += Buf;
    First = false;
    if (E.TraceId) {
      Out += ", \"trace_id\": \"";
      Out += formatTraceId(E.TraceId);
      Out += '"';
    }
    if (E.Detail) {
      Out += ", \"detail\": \"";
      appendEscaped(Out, E.Detail);
      Out += '"';
    }
    Out += '}';
  }
  Out += "\n]}\n";
  return Out;
}

void FlightRecorder::dumpOnFatal(const char *Reason) {
  FlightRecorder &R = process();
  R.record(EventKind::FatalError, Reason);
  std::string Json = R.json();
  const char *Path = std::getenv("CMCC_FLIGHT_DUMP");
  if (Path && *Path) {
    if (std::FILE *F = std::fopen(Path, "w")) {
      std::fwrite(Json.data(), 1, Json.size(), F);
      std::fclose(F);
      std::fprintf(stderr, "cmcc: flight recorder dumped to %s\n", Path);
      return;
    }
  }
  std::fprintf(stderr, "cmcc: flight recorder dump:\n%s", Json.c_str());
}
