//===- obs/Trace.cpp ------------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "obs/Metrics.h"
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

using namespace cmcc;
using namespace cmcc::obs;

std::atomic<bool> detail::TraceOn{false};

std::uint64_t detail::nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

struct SpanEvent {
  const char *Name;
  std::uint64_t BeginNs, EndNs;
  std::uint64_t TraceId, SpanId, ParentId;
};

/// One thread's span log. The per-buffer mutex is effectively
/// uncontended (the owning thread appends; the flusher drains in the
/// gaps) but makes the flush race-free under ThreadSanitizer.
struct ThreadBuffer {
  std::mutex Mutex;
  std::vector<SpanEvent> Events;
  int Tid = 0;
};

struct TraceState {
  std::mutex Mutex;
  bool Active = false;
  std::string Path;
  std::FILE *File = nullptr;
  /// Offset of the JSON tail ("\n]}"): each flush seeks here, appends
  /// the new events plus a fresh tail in one write, and advances it.
  long TailPos = 0;
  bool FirstEvent = true;
  bool WriteError = false;
  std::uint64_t EpochNs = 0;
  int Pid = 1;
  /// shared_ptr keeps a buffer alive past its thread's exit.
  std::vector<std::shared_ptr<ThreadBuffer>> Buffers;
  /// Background flusher (only when a flush interval was requested).
  std::thread Flusher;
  std::condition_variable FlusherCv;
  bool FlusherStop = false;
  long FlushMs = 0;
};

TraceState &state() {
  // Leaked: worker threads (e.g. the shared ThreadPool's) may record
  // spans during static destruction.
  static TraceState *S = new TraceState;
  return *S;
}

ThreadBuffer &threadBuffer() {
  static thread_local std::shared_ptr<ThreadBuffer> Buf = [] {
    auto B = std::make_shared<ThreadBuffer>();
    TraceState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mutex);
    B->Tid = static_cast<int>(S.Buffers.size());
    S.Buffers.push_back(B);
    return B;
  }();
  return *Buf;
}

/// Minimal JSON string escaping for span names.
std::string escaped(const char *Name) {
  std::string Out;
  for (const char *P = Name; *P; ++P) {
    if (*P == '"' || *P == '\\')
      Out += '\\';
    Out += *P;
  }
  return Out;
}

void appendEvent(std::string &Out, const TraceState &S, int Tid,
                 const SpanEvent &E, bool First) {
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "%s\n{\"name\": \"%s\", \"cat\": \"cmcc\", \"ph\": \"X\", "
                "\"pid\": %d, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f",
                First ? "" : ",", escaped(E.Name).c_str(), S.Pid, Tid,
                static_cast<double>(E.BeginNs - S.EpochNs) / 1000.0,
                static_cast<double>(E.EndNs - E.BeginNs) / 1000.0);
  Out += Buf;
  if (E.TraceId) {
    // Ids as 16-hex-digit strings: JSON numbers lose precision past
    // 2^53 and Perfetto renders args verbatim.
    Out += ", \"args\": {\"trace_id\": \"";
    Out += formatTraceId(E.TraceId);
    Out += "\", \"span_id\": \"";
    Out += formatTraceId(E.SpanId);
    Out += "\", \"parent_id\": \"";
    Out += formatTraceId(E.ParentId);
    Out += "\"}";
  }
  Out += '}';
}

/// Drains every buffer and rewrites the file tail. Caller holds
/// S.Mutex. The batch plus the new tail go out in a single fwrite so
/// the window in which a kill can leave the file unparseable is one
/// partial write, not the whole flush.
bool flushLocked(TraceState &S) {
  if (!S.File)
    return false;
  std::string Batch;
  for (const std::shared_ptr<ThreadBuffer> &Buf : S.Buffers) {
    std::lock_guard<std::mutex> BufLock(Buf->Mutex);
    for (const SpanEvent &E : Buf->Events) {
      appendEvent(Batch, S, Buf->Tid, E, S.FirstEvent);
      S.FirstEvent = false;
    }
    Buf->Events.clear();
  }
  if (Batch.empty())
    return !S.WriteError;
  std::size_t EventsLen = Batch.size();
  Batch += "\n]}\n";
  if (std::fseek(S.File, S.TailPos, SEEK_SET) != 0 ||
      std::fwrite(Batch.data(), 1, Batch.size(), S.File) != Batch.size() ||
      std::fflush(S.File) != 0) {
    S.WriteError = true;
    return false;
  }
  S.TailPos += static_cast<long>(EventsLen);
  return !S.WriteError;
}

void flusherMain() {
  TraceState &S = state();
  std::unique_lock<std::mutex> Lock(S.Mutex);
  while (!S.FlusherStop) {
    S.FlusherCv.wait_for(Lock, std::chrono::milliseconds(S.FlushMs));
    if (S.FlusherStop)
      break;
    if (S.Active)
      flushLocked(S);
  }
}

/// Reads CMCC_TRACE at static-initialization time and arranges the
/// flush at process exit, so every tool is traceable without code.
/// CMCC_TRACE_FLUSH_MS overrides the 500 ms incremental-flush cadence
/// (0 disables the background flusher; the exit flush still runs).
struct EnvTrace {
  EnvTrace() {
    const char *Path = std::getenv("CMCC_TRACE");
    if (!Path || !*Path)
      return;
    long FlushMs = 500;
    if (const char *Interval = std::getenv("CMCC_TRACE_FLUSH_MS"))
      FlushMs = std::strtol(Interval, nullptr, 10);
    if (Trace::start(Path, FlushMs))
      std::atexit([] { Trace::stop(); });
  }
} TheEnvTrace;

} // namespace

void detail::recordSpan(const char *Name, std::uint64_t BeginNs,
                        std::uint64_t EndNs, std::uint64_t TraceId,
                        std::uint64_t SpanId, std::uint64_t ParentId) {
  ThreadBuffer &Buf = threadBuffer();
  {
    std::lock_guard<std::mutex> Lock(Buf.Mutex);
    Buf.Events.push_back({Name, BeginNs, EndNs, TraceId, SpanId, ParentId});
  }
  Registry::process().counter("obs.trace_spans").add(1);
}

bool Trace::active() { return traceEnabled(); }

bool Trace::start(const std::string &Path, long FlushIntervalMs) {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (S.Active)
    return false;
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
#if defined(_WIN32)
  int Pid = _getpid();
#else
  int Pid = static_cast<int>(::getpid());
#endif
  // A valid (empty) trace is on disk before the first span: truncation
  // at any later flush boundary still parses.
  std::fprintf(F, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
  long Tail = std::ftell(F);
  std::fprintf(F, "\n]}\n");
  if (Tail < 0 || std::fflush(F) != 0) {
    std::fclose(F);
    return false;
  }
  S.Active = true;
  S.Path = Path;
  S.File = F;
  S.TailPos = Tail;
  S.FirstEvent = true;
  S.WriteError = false;
  S.Pid = Pid;
  // Drop anything a span in flight at the previous stop() left behind,
  // so a restarted trace never shows events before its own epoch.
  for (const std::shared_ptr<ThreadBuffer> &Buf : S.Buffers) {
    std::lock_guard<std::mutex> BufLock(Buf->Mutex);
    Buf->Events.clear();
  }
  S.EpochNs = detail::nowNs();
  if (FlushIntervalMs > 0) {
    S.FlushMs = FlushIntervalMs;
    S.FlusherStop = false;
    S.Flusher = std::thread(flusherMain);
  }
  detail::TraceOn.store(true, std::memory_order_relaxed);
  return true;
}

bool Trace::flush() {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (!S.Active)
    return false;
  return flushLocked(S);
}

bool Trace::stop() {
  TraceState &S = state();
  std::thread Flusher;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    if (!S.Active)
      return false;
    // Disable first: spans that begin after this line are dropped at
    // construction; spans already in flight land in a buffer and are
    // simply carried into the next trace (or never written).
    detail::TraceOn.store(false, std::memory_order_relaxed);
    S.Active = false;
    S.FlusherStop = true;
    Flusher = std::move(S.Flusher);
  }
  S.FlusherCv.notify_all();
  if (Flusher.joinable())
    Flusher.join();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  bool Ok = flushLocked(S);
  if (S.File) {
    Ok = (std::fclose(S.File) == 0) && Ok;
    S.File = nullptr;
  }
  return Ok && !S.WriteError;
}
