//===- obs/Trace.cpp ------------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "obs/Metrics.h"
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

using namespace cmcc;
using namespace cmcc::obs;

std::atomic<bool> detail::TraceOn{false};

std::uint64_t detail::nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

struct SpanEvent {
  const char *Name;
  std::uint64_t BeginNs, EndNs;
};

/// One thread's span log. The per-buffer mutex is effectively
/// uncontended (the owning thread appends; the flusher drains after the
/// work is over) but makes the flush race-free under ThreadSanitizer.
struct ThreadBuffer {
  std::mutex Mutex;
  std::vector<SpanEvent> Events;
  int Tid = 0;
};

struct TraceState {
  std::mutex Mutex;
  bool Active = false;
  std::string Path;
  std::uint64_t EpochNs = 0;
  /// shared_ptr keeps a buffer alive past its thread's exit.
  std::vector<std::shared_ptr<ThreadBuffer>> Buffers;
};

TraceState &state() {
  // Leaked: worker threads (e.g. the shared ThreadPool's) may record
  // spans during static destruction.
  static TraceState *S = new TraceState;
  return *S;
}

ThreadBuffer &threadBuffer() {
  static thread_local std::shared_ptr<ThreadBuffer> Buf = [] {
    auto B = std::make_shared<ThreadBuffer>();
    TraceState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mutex);
    B->Tid = static_cast<int>(S.Buffers.size());
    S.Buffers.push_back(B);
    return B;
  }();
  return *Buf;
}

/// Minimal JSON string escaping for span names.
std::string escaped(const char *Name) {
  std::string Out;
  for (const char *P = Name; *P; ++P) {
    if (*P == '"' || *P == '\\')
      Out += '\\';
    Out += *P;
  }
  return Out;
}

/// Reads CMCC_TRACE at static-initialization time and arranges the
/// flush at process exit, so every tool is traceable without code.
struct EnvTrace {
  EnvTrace() {
    const char *Path = std::getenv("CMCC_TRACE");
    if (Path && *Path && Trace::start(Path))
      std::atexit([] { Trace::stop(); });
  }
} TheEnvTrace;

} // namespace

void detail::recordSpan(const char *Name, std::uint64_t BeginNs,
                        std::uint64_t EndNs) {
  ThreadBuffer &Buf = threadBuffer();
  {
    std::lock_guard<std::mutex> Lock(Buf.Mutex);
    Buf.Events.push_back({Name, BeginNs, EndNs});
  }
  Registry::process().counter("obs.trace_spans").add(1);
}

bool Trace::active() { return traceEnabled(); }

bool Trace::start(const std::string &Path) {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (S.Active)
    return false;
  S.Active = true;
  S.Path = Path;
  // Drop anything a span in flight at the previous stop() left behind,
  // so a restarted trace never shows events before its own epoch.
  for (const std::shared_ptr<ThreadBuffer> &Buf : S.Buffers) {
    std::lock_guard<std::mutex> BufLock(Buf->Mutex);
    Buf->Events.clear();
  }
  S.EpochNs = detail::nowNs();
  detail::TraceOn.store(true, std::memory_order_relaxed);
  return true;
}

bool Trace::stop() {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (!S.Active)
    return false;
  // Disable first: spans that begin after this line are dropped at
  // construction; spans already in flight land in a buffer and are
  // simply carried into the next trace (or never written).
  detail::TraceOn.store(false, std::memory_order_relaxed);
  S.Active = false;

  std::FILE *F = std::fopen(S.Path.c_str(), "w");
  if (!F)
    return false;
  std::fprintf(F, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
  bool First = true;
  for (const std::shared_ptr<ThreadBuffer> &Buf : S.Buffers) {
    std::lock_guard<std::mutex> BufLock(Buf->Mutex);
    for (const SpanEvent &E : Buf->Events) {
      // Chrome trace-event "complete" (ph:X) events; ts/dur in
      // microseconds relative to the trace epoch.
      std::fprintf(
          F, "%s\n{\"name\": \"%s\", \"cat\": \"cmcc\", \"ph\": \"X\", "
             "\"pid\": 1, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
          First ? "" : ",", escaped(E.Name).c_str(), Buf->Tid,
          static_cast<double>(E.BeginNs - S.EpochNs) / 1000.0,
          static_cast<double>(E.EndNs - E.BeginNs) / 1000.0);
      First = false;
    }
    Buf->Events.clear();
  }
  std::fprintf(F, "\n]}\n");
  bool Ok = std::fclose(F) == 0;
  return Ok;
}
