//===- obs/TraceContext.h - Job-scoped trace propagation ------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 64-bit trace id plus parent span id, carried with a job across
/// process boundaries so one Perfetto trace shows the whole tree:
/// client submit -> server dispatch -> service stages -> backend
/// execution. The context lives in a thread-local; every Span records
/// the current context (when one is set) so spans from different
/// processes sharing a trace id line up under one flow.
///
/// The client mints the trace id (mintTraceId), stamps it into the
/// submit payload, and the service worker re-establishes it around the
/// job with ScopedTraceContext. When no context is set (TraceId == 0)
/// spans record exactly as before — the plumbing costs one thread-local
/// read on the traced path and nothing on the disabled path.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_OBS_TRACECONTEXT_H
#define CMCC_OBS_TRACECONTEXT_H

#include <cstdint>
#include <string>

namespace cmcc {
namespace obs {

/// The propagated identity: which trace this thread's spans belong to
/// and which span is their parent. TraceId == 0 means "no context".
struct TraceContext {
  std::uint64_t TraceId = 0;
  std::uint64_t SpanId = 0;

  bool valid() const { return TraceId != 0; }
};

/// The calling thread's current context ({0, 0} when none is set).
TraceContext currentTraceContext();

/// Replaces the calling thread's context; returns the previous one.
/// Prefer ScopedTraceContext.
TraceContext exchangeTraceContext(TraceContext Ctx);

/// Mints a fresh process-unique, collision-resistant 64-bit trace id
/// (never 0). Seeded from the clock, pid, and address-space layout so
/// concurrent clients mint distinct ids.
std::uint64_t mintTraceId();

/// Mints a fresh span id for the calling thread (never 0). Cheap: one
/// thread-local counter step through a mixing function.
std::uint64_t mintSpanId();

/// Formats an id the way trace JSON and the CLI print it (16 hex
/// digits), and parses it back (accepts an optional 0x prefix; returns
/// 0 on malformed input).
std::string formatTraceId(std::uint64_t Id);
std::uint64_t parseTraceId(const std::string &Text);

/// Establishes \p Ctx as the thread's context for the enclosing scope
/// and restores the previous context on destruction. A default or
/// zero-trace-id context leaves the thread untouched, so un-traced jobs
/// pay only the TraceId != 0 branch.
class ScopedTraceContext {
public:
  ScopedTraceContext() = default;
  explicit ScopedTraceContext(TraceContext Ctx) {
    if (Ctx.valid()) {
      Saved = exchangeTraceContext(Ctx);
      Active = true;
    }
  }
  ScopedTraceContext(std::uint64_t TraceId, std::uint64_t ParentSpan)
      : ScopedTraceContext(TraceContext{TraceId, ParentSpan}) {}
  ~ScopedTraceContext() {
    if (Active)
      exchangeTraceContext(Saved);
  }
  ScopedTraceContext(const ScopedTraceContext &) = delete;
  ScopedTraceContext &operator=(const ScopedTraceContext &) = delete;

private:
  TraceContext Saved;
  bool Active = false;
};

} // namespace obs
} // namespace cmcc

#endif // CMCC_OBS_TRACECONTEXT_H
