//===- obs/Metrics.h - Process metrics registry ---------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counter system behind every operational number the host-side
/// system reports: named counters, gauges, double accumulators, and
/// fixed-bucket latency histograms collected in a Registry and exported
/// as an aligned text table, a JSON object, or Prometheus exposition
/// text.
///
/// The paper accounts for every simulated cycle (§7); this registry does
/// the same for the host side — compiler phases, thread-pool dispatch,
/// halo exchanges, cache traffic — without ever touching the simulation:
/// recording a metric can change neither numerical results nor simulated
/// cycle counts, an invariant bench_obs enforces.
///
/// Hot-path cost: counters are sharded over cache-line-padded atomic
/// cells indexed by a per-thread slot, so concurrent increments do not
/// bounce one cache line; everything uses relaxed atomics (the values
/// are statistics, not synchronization). Handles returned by the
/// Registry are stable for the Registry's lifetime — resolve a metric
/// once, keep the reference.
///
/// `Registry::process()` is the process-wide instance used by the
/// subsystems that are themselves process-wide (the shared ThreadPool,
/// the compiler, the runtime). Subsystems with per-instance totals (a
/// StencilService) own a private Registry of the same type, so there is
/// exactly one counter *system* even where there are several scopes.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_OBS_METRICS_H
#define CMCC_OBS_METRICS_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cmcc {
namespace obs {

namespace detail {
/// Small per-thread slot used to spread hot counters over shards.
unsigned threadSlot();
} // namespace detail

/// A monotonically increasing count, sharded so concurrent writers from
/// different threads hit different cache lines.
class Counter {
public:
  static constexpr int NumCells = 16;

  void add(long N = 1) {
    Cells[detail::threadSlot() % NumCells].V.fetch_add(
        N, std::memory_order_relaxed);
  }

  long value() const {
    long Total = 0;
    for (const Cell &C : Cells)
      Total += C.V.load(std::memory_order_relaxed);
    return Total;
  }

private:
  struct alignas(64) Cell {
    std::atomic<long> V{0};
  };
  Cell Cells[NumCells];
};

/// A point-in-time level (queue depth, entries in flight) with a
/// high-water mark.
class Gauge {
public:
  void set(long V) {
    Current.store(V, std::memory_order_relaxed);
    raiseMax(V);
  }

  void add(long Delta) {
    long Now = Current.fetch_add(Delta, std::memory_order_relaxed) + Delta;
    raiseMax(Now);
  }

  long value() const { return Current.load(std::memory_order_relaxed); }
  long maximum() const { return Max.load(std::memory_order_relaxed); }

private:
  void raiseMax(long V) {
    long Prev = Max.load(std::memory_order_relaxed);
    while (V > Prev &&
           !Max.compare_exchange_weak(Prev, V, std::memory_order_relaxed)) {
    }
  }

  std::atomic<long> Current{0};
  std::atomic<long> Max{0};
};

/// A double accumulator (total simulated seconds, total useful flops):
/// the quantities the service sums that are not integer counts.
class Sum {
public:
  void add(double V) { Total.fetch_add(V, std::memory_order_relaxed); }
  double value() const { return Total.load(std::memory_order_relaxed); }

private:
  std::atomic<double> Total{0.0};
};

/// A fixed-bucket histogram: bucket upper bounds are chosen at creation
/// and never change, so recording is one bucket search plus relaxed
/// atomic adds. Percentiles are estimated by linear interpolation within
/// the containing bucket (exact when every observation lands on a
/// bucket boundary — the property the tests exploit).
class Histogram {
public:
  /// \p UpperBounds must be strictly increasing; values above the last
  /// bound land in an overflow bucket.
  explicit Histogram(std::vector<double> UpperBounds);

  void observe(double V);

  long count() const { return N.load(std::memory_order_relaxed); }
  double sum() const { return Total.load(std::memory_order_relaxed); }
  double mean() const {
    long C = count();
    return C == 0 ? 0.0 : sum() / static_cast<double>(C);
  }

  /// Value at percentile \p P in [0, 100], interpolated within the
  /// containing bucket (0 when empty). The overflow bucket reports the
  /// last finite bound.
  double percentile(double P) const;

  const std::vector<double> &upperBounds() const { return Bounds; }
  /// One count per bound plus the overflow bucket (a relaxed snapshot).
  std::vector<long> bucketCounts() const;

  /// The default latency scale: power-of-two microsecond buckets from
  /// 1 us to ~17 minutes.
  static std::vector<double> latencyBoundsUs();

  /// The size scale for wire frames: power-of-two byte buckets from
  /// 16 B to 64 MiB (the frame payload cap).
  static std::vector<double> byteBounds();

private:
  std::vector<double> Bounds;
  std::unique_ptr<std::atomic<long>[]> Buckets; ///< Bounds.size() + 1.
  std::atomic<long> N{0};
  std::atomic<double> Total{0.0};
};

/// A named collection of metrics. Lookup creates on first use and is
/// mutex-guarded; the returned references stay valid for the Registry's
/// lifetime, so hot paths resolve once and then touch only atomics.
class Registry {
public:
  Registry() = default;
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Sum &sum(const std::string &Name);
  Histogram &histogram(const std::string &Name);
  Histogram &histogram(const std::string &Name,
                       std::vector<double> UpperBounds);

  /// Aligned two-column text (names sorted; histograms show count, mean
  /// and the p50/p90/p99 estimates). A non-empty \p Prefix restricts
  /// every exporter to metrics whose name starts with it (e.g. "net.").
  std::string table(const std::string &Prefix = std::string()) const;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "sums": {...}, "histograms": {...}}.
  std::string json(const std::string &Prefix = std::string()) const;

  /// Prometheus exposition text ('.' becomes '_', names prefixed
  /// cmcc_; histograms emit cumulative le buckets, _count and _sum).
  std::string prometheus(const std::string &Prefix = std::string()) const;

  /// The process-wide registry.
  static Registry &process();

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Sum>> Sums;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// Observes the elapsed host time, in microseconds, into a histogram
/// when the scope closes.
class ScopedLatencyUs {
public:
  explicit ScopedLatencyUs(Histogram &H);
  ~ScopedLatencyUs();
  ScopedLatencyUs(const ScopedLatencyUs &) = delete;
  ScopedLatencyUs &operator=(const ScopedLatencyUs &) = delete;

private:
  Histogram &H;
  unsigned long long BeginNs;
};

} // namespace obs
} // namespace cmcc

#endif // CMCC_OBS_METRICS_H
