//===- obs/Metrics.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include <algorithm>
#include <cassert>
#include <cctype>
#include <cstdio>
#include <sstream>

using namespace cmcc;
using namespace cmcc::obs;

unsigned detail::threadSlot() {
  static std::atomic<unsigned> NextSlot{0};
  static thread_local unsigned Slot =
      NextSlot.fetch_add(1, std::memory_order_relaxed);
  return Slot;
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<double> UpperBounds)
    : Bounds(std::move(UpperBounds)),
      Buckets(new std::atomic<long>[Bounds.size() + 1]) {
  assert(!Bounds.empty() && "histogram needs at least one bucket bound");
  assert(std::is_sorted(Bounds.begin(), Bounds.end()) &&
         "bucket bounds must be increasing");
  for (size_t I = 0; I != Bounds.size() + 1; ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double V) {
  size_t I = std::lower_bound(Bounds.begin(), Bounds.end(), V) -
             Bounds.begin(); // First bound >= V; past-the-end = overflow.
  Buckets[I].fetch_add(1, std::memory_order_relaxed);
  N.fetch_add(1, std::memory_order_relaxed);
  Total.fetch_add(V, std::memory_order_relaxed);
}

std::vector<long> Histogram::bucketCounts() const {
  std::vector<long> Out(Bounds.size() + 1);
  for (size_t I = 0; I != Out.size(); ++I)
    Out[I] = Buckets[I].load(std::memory_order_relaxed);
  return Out;
}

double Histogram::percentile(double P) const {
  std::vector<long> Counts = bucketCounts();
  long C = 0;
  for (long B : Counts)
    C += B;
  if (C == 0)
    return 0.0;
  double Rank = std::min(std::max(P, 0.0), 100.0) / 100.0 *
                static_cast<double>(C);
  long Seen = 0;
  for (size_t I = 0; I != Counts.size(); ++I) {
    if (Counts[I] == 0)
      continue;
    double Before = static_cast<double>(Seen);
    Seen += Counts[I];
    if (static_cast<double>(Seen) < Rank)
      continue;
    // The rank falls in bucket I: interpolate between the bucket's
    // bounds ([0, B0] for the first, [Bi-1, Bi] otherwise; the overflow
    // bucket reports the last finite bound).
    if (I == Counts.size() - 1 && I == Bounds.size())
      return Bounds.back();
    double Lo = I == 0 ? 0.0 : Bounds[I - 1];
    double Hi = Bounds[I];
    double Frac = (Rank - Before) / static_cast<double>(Counts[I]);
    return Lo + (Hi - Lo) * Frac;
  }
  return Bounds.back();
}

std::vector<double> Histogram::latencyBoundsUs() {
  std::vector<double> Bounds;
  for (double B = 1.0; B <= 1024.0 * 1024.0 * 1024.0; B *= 2.0)
    Bounds.push_back(B); // 1 us .. 2^30 us (~17.9 minutes).
  return Bounds;
}

std::vector<double> Histogram::byteBounds() {
  std::vector<double> Bounds;
  for (double B = 16.0; B <= 64.0 * 1024.0 * 1024.0; B *= 2.0)
    Bounds.push_back(B); // 16 B .. 64 MiB (MaxPayloadBytes).
  return Bounds;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

Registry &Registry::process() {
  // Leaked intentionally: metrics handles must outlive every static
  // destructor (worker threads may still be counting at exit).
  static Registry *R = new Registry;
  return *R;
}

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Sum &Registry::sum(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = Sums[Name];
  if (!Slot)
    Slot = std::make_unique<Sum>();
  return *Slot;
}

Histogram &Registry::histogram(const std::string &Name) {
  return histogram(Name, Histogram::latencyBoundsUs());
}

Histogram &Registry::histogram(const std::string &Name,
                               std::vector<double> UpperBounds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>(std::move(UpperBounds));
  return *Slot;
}

namespace {

std::string formatDouble(double V) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.6g", V);
  return Buffer;
}

bool hasPrefix(const std::string &Name, const std::string &Prefix) {
  return Prefix.empty() || Name.compare(0, Prefix.size(), Prefix) == 0;
}

std::string promName(const std::string &Name) {
  std::string Out = "cmcc_";
  for (char C : Name)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '_')
               ? C
               : '_';
  return Out;
}

} // namespace

std::string Registry::table(const std::string &Prefix) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  struct Row {
    std::string Name, Value;
  };
  std::vector<Row> Rows;
  for (const auto &[Name, C] : Counters)
    if (hasPrefix(Name, Prefix))
      Rows.push_back({Name, std::to_string(C->value())});
  for (const auto &[Name, G] : Gauges)
    if (hasPrefix(Name, Prefix))
      Rows.push_back({Name, std::to_string(G->value()) + " (max " +
                                std::to_string(G->maximum()) + ")"});
  for (const auto &[Name, S] : Sums)
    if (hasPrefix(Name, Prefix))
      Rows.push_back({Name, formatDouble(S->value())});
  for (const auto &[Name, H] : Histograms)
    if (hasPrefix(Name, Prefix))
      Rows.push_back({Name, "count " + std::to_string(H->count()) +
                                "  mean " + formatDouble(H->mean()) +
                                "  p50 " + formatDouble(H->percentile(50)) +
                                "  p90 " + formatDouble(H->percentile(90)) +
                                "  p99 " + formatDouble(H->percentile(99))});
  std::sort(Rows.begin(), Rows.end(),
            [](const Row &A, const Row &B) { return A.Name < B.Name; });
  size_t Width = 0;
  for (const Row &R : Rows)
    Width = std::max(Width, R.Name.size());
  std::ostringstream Out;
  for (const Row &R : Rows)
    Out << R.Name << std::string(Width - R.Name.size() + 2, ' ') << R.Value
        << "\n";
  return Out.str();
}

std::string Registry::json(const std::string &Prefix) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::ostringstream Out;
  Out << "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    if (!hasPrefix(Name, Prefix))
      continue;
    Out << (First ? "" : ",") << "\n    \"" << Name
        << "\": " << C->value();
    First = false;
  }
  Out << (First ? "" : "\n  ") << "},\n  \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    if (!hasPrefix(Name, Prefix))
      continue;
    Out << (First ? "" : ",") << "\n    \"" << Name << "\": {\"value\": "
        << G->value() << ", \"max\": " << G->maximum() << "}";
    First = false;
  }
  Out << (First ? "" : "\n  ") << "},\n  \"sums\": {";
  First = true;
  for (const auto &[Name, S] : Sums) {
    if (!hasPrefix(Name, Prefix))
      continue;
    Out << (First ? "" : ",") << "\n    \"" << Name
        << "\": " << formatDouble(S->value());
    First = false;
  }
  Out << (First ? "" : "\n  ") << "},\n  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    if (!hasPrefix(Name, Prefix))
      continue;
    Out << (First ? "" : ",") << "\n    \"" << Name << "\": {\"count\": "
        << H->count() << ", \"sum\": " << formatDouble(H->sum())
        << ", \"mean\": " << formatDouble(H->mean())
        << ", \"p50\": " << formatDouble(H->percentile(50))
        << ", \"p90\": " << formatDouble(H->percentile(90))
        << ", \"p99\": " << formatDouble(H->percentile(99)) << "}";
    First = false;
  }
  Out << (First ? "" : "\n  ") << "}\n}\n";
  return Out.str();
}

std::string Registry::prometheus(const std::string &Prefix) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::ostringstream Out;
  for (const auto &[Name, C] : Counters) {
    if (!hasPrefix(Name, Prefix))
      continue;
    std::string P = promName(Name);
    Out << "# TYPE " << P << " counter\n" << P << " " << C->value() << "\n";
  }
  for (const auto &[Name, G] : Gauges) {
    if (!hasPrefix(Name, Prefix))
      continue;
    std::string P = promName(Name);
    Out << "# TYPE " << P << " gauge\n" << P << " " << G->value() << "\n";
    Out << "# TYPE " << P << "_max gauge\n"
        << P << "_max " << G->maximum() << "\n";
  }
  for (const auto &[Name, S] : Sums) {
    if (!hasPrefix(Name, Prefix))
      continue;
    std::string P = promName(Name);
    Out << "# TYPE " << P << " counter\n"
        << P << " " << formatDouble(S->value()) << "\n";
  }
  for (const auto &[Name, H] : Histograms) {
    if (!hasPrefix(Name, Prefix))
      continue;
    std::string P = promName(Name);
    Out << "# TYPE " << P << " histogram\n";
    std::vector<long> Counts = H->bucketCounts();
    long Cumulative = 0;
    for (size_t I = 0; I != H->upperBounds().size(); ++I) {
      Cumulative += Counts[I];
      Out << P << "_bucket{le=\"" << formatDouble(H->upperBounds()[I])
          << "\"} " << Cumulative << "\n";
    }
    Cumulative += Counts.back();
    Out << P << "_bucket{le=\"+Inf\"} " << Cumulative << "\n";
    Out << P << "_sum " << formatDouble(H->sum()) << "\n";
    Out << P << "_count " << H->count() << "\n";
  }
  return Out.str();
}

//===----------------------------------------------------------------------===//
// ScopedLatencyUs
//===----------------------------------------------------------------------===//

ScopedLatencyUs::ScopedLatencyUs(Histogram &H)
    : H(H), BeginNs(detail::nowNs()) {}

ScopedLatencyUs::~ScopedLatencyUs() {
  H.observe(static_cast<double>(detail::nowNs() - BeginNs) / 1000.0);
}
