//===- core/Verifier.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Assert.h"
#include <algorithm>
#include <vector>

using namespace cmcc;

namespace {

/// A symbolic register value.
struct SymVal {
  enum class Kind : uint8_t {
    Zero,    ///< The constant 0.0 (reset state / zero register).
    One,     ///< The constant 1.0 (unit register).
    Data,    ///< Source element at absolute (Row, Col).
    Partial, ///< Partial or finished sum for (Line, Result).
  };

  Kind TheKind = Kind::Zero;
  // Data: absolute position and source array. Lines are processed bottom
  // to top; line t sits at absolute row -t, so element row = -t + dy.
  int Source = 0;
  int Row = 0, Col = 0;
  // Partial: which result of which line, and which taps are folded in.
  int Line = 0, Result = 0;
  uint64_t TapsSeen = 0;
  bool TapsDuplicated = false;

  static SymVal zero() { return SymVal{}; }
  static SymVal one() {
    SymVal V;
    V.TheKind = Kind::One;
    return V;
  }
  static SymVal data(int Source, int Row, int Col) {
    SymVal V;
    V.TheKind = Kind::Data;
    V.Source = Source;
    V.Row = Row;
    V.Col = Col;
    return V;
  }
};

/// Symbolic twin of the FloatingPointUnit's write pipeline.
class SymbolicFpu {
public:
  SymbolicFpu(const MachineConfig &Config, int UnitReg)
      : Config(Config) {
    Registers.assign(64, SymVal::zero());
    if (UnitReg >= 0)
      Registers[UnitReg] = SymVal::one();
  }

  SymVal read(int Reg) { return Registers[Reg]; }

  void applyUpTo(long Cycle) {
    size_t Kept = 0;
    for (auto &W : Pending) {
      if (W.Cycle <= Cycle)
        Registers[W.Reg] = W.Value;
      else
        Pending[Kept++] = W;
    }
    Pending.resize(Kept);
  }

  void scheduleWrite(long Cycle, int Reg, SymVal Value) {
    Pending.push_back({Cycle, Reg, Value});
  }

  long CycleNow = 0;
  const MachineConfig &Config;

private:
  struct PendingWrite {
    long Cycle;
    int Reg;
    SymVal Value;
  };
  std::vector<SymVal> Registers;
  std::vector<PendingWrite> Pending;
};

} // namespace

Error cmcc::verifySchedule(const WidthSchedule &Sched,
                           const StencilSpec &Spec,
                           const MachineConfig &Config) {
  CMCC_SPAN("compile.verify");
  static obs::Counter &VerifyRuns =
      obs::Registry::process().counter("compile.verify_runs");
  static obs::Histogram &VerifyUs =
      obs::Registry::process().histogram("compile.verify_us");
  VerifyRuns.add(1);
  obs::ScopedLatencyUs Timer(VerifyUs);
  const int T = static_cast<int>(Spec.Taps.size());
  if (T > 63)
    return makeError("verifier supports at most 63 taps");
  const uint64_t AllTaps = (uint64_t(1) << T) - 1;
  const int Regs = Config.NumRegisters;
  const int Zero = Sched.Regs.zeroRegister();
  const int Unit =
      Sched.Regs.hasUnitRegister() ? Sched.Regs.unitRegister() : -1;
  const int WriteDelay = Config.MulToAddCycles + Config.AddToWriteCycles;
  const int U = static_cast<int>(Sched.Phases.size());

  // Enough lines to cover the unroll period twice plus the deepest ring.
  int MaxExtent = 1;
  for (const MultistencilColumn &C : Sched.MS.columns())
    MaxExtent = std::max(MaxExtent, C.extent());
  const int LinesToCheck = 2 * U + MaxExtent + 2;

  SymbolicFpu Fpu(Config, Unit);
  // Running chain state per thread.
  SymVal ChainSum[2] = {SymVal::zero(), SymVal::zero()};
  bool ChainOpen[2] = {false, false};
  long LastChainIssue[2] = {-1, -1};

  auto CheckCommon = [&](const DynamicPart &Op) -> Error {
    if (Op.DestReg >= Regs || Op.MulReg >= Regs || Op.AddReg >= Regs)
      return makeError("register number out of range in: " + Op.str());
    if (Op.TheKind != DynamicPart::Kind::Store &&
        Op.DestReg == static_cast<uint8_t>(Zero) &&
        Op.TheKind != DynamicPart::Kind::Filler)
      return makeError("non-filler writes the zero register: " + Op.str());
    if (Unit >= 0 && Op.DestReg == static_cast<uint8_t>(Unit) &&
        Op.TheKind != DynamicPart::Kind::Store)
      return makeError("operation writes the 1.0 register: " + Op.str());
    return Error::success();
  };

  auto RunSequence = [&](const LineSchedule &Ops, int Line) -> Error {
    for (const DynamicPart &Op : Ops) {
      long Cycle = Fpu.CycleNow++;
      Fpu.applyUpTo(Cycle);
      if (Error E = CheckCommon(Op))
        return E;
      switch (Op.TheKind) {
      case DynamicPart::Kind::Load: {
        // Loads never clobber an open chain's accumulator register in
        // our schedules; data correctness is checked at the reads.
        SymVal V =
            SymVal::data(Op.DataSource, -Line + Op.DataDy, Op.DataDx);
        Fpu.scheduleWrite(Cycle + Config.LoadLatencyCycles, Op.DestReg, V);
        break;
      }
      case DynamicPart::Kind::Madd: {
        int Thread = Op.ThreadId & 1;
        if (Op.TapIndex < 0 || Op.TapIndex >= T)
          return makeError("madd has invalid tap index: " + Op.str());
        const Tap &TheTap = Spec.Taps[Op.TapIndex];
        SymVal Mul = Fpu.read(Op.MulReg);
        if (TheTap.HasData) {
          int WantRow = -Line + TheTap.At.Dy;
          int WantCol = TheTap.At.Dx + Op.ResultIndex;
          if (Mul.TheKind != SymVal::Kind::Data ||
              Mul.Source != TheTap.SourceIndex || Mul.Row != WantRow ||
              Mul.Col != WantCol)
            return makeError("line " + std::to_string(Line) + ": " +
                             Op.str() + " reads the wrong value (wanted "
                             "data element (" + std::to_string(WantRow) +
                             "," + std::to_string(WantCol) + "))");
        } else if (Mul.TheKind != SymVal::Kind::One) {
          return makeError("line " + std::to_string(Line) + ": " +
                           Op.str() +
                           " should multiply the 1.0 register");
        }
        // A thread's chained multiply-adds must issue exactly every
        // other cycle: the add of the op issued at k starts at k+2,
        // just as the next op of the same thread supplies its operand.
        if (!Op.ChainStart && LastChainIssue[Thread] >= 0 &&
            Cycle - LastChainIssue[Thread] != Config.MulToAddCycles)
          return makeError("chained madd off its every-other-cycle slot: " +
                           Op.str());
        LastChainIssue[Thread] = Cycle;
        SymVal Sum;
        if (Op.ChainStart) {
          if (ChainOpen[Thread])
            return makeError("chain restarted while open: " + Op.str());
          SymVal Add = Fpu.read(Op.AddReg);
          if (Add.TheKind != SymVal::Kind::Zero)
            return makeError("chain start does not add zero: " + Op.str());
          Sum.TheKind = SymVal::Kind::Partial;
          Sum.Line = Line;
          Sum.Result = Op.ResultIndex;
          Sum.TapsSeen = 0;
          ChainOpen[Thread] = true;
        } else {
          Sum = ChainSum[Thread];
          if (!ChainOpen[Thread] || Sum.TheKind != SymVal::Kind::Partial)
            return makeError("madd chains with no open chain: " + Op.str());
          if (Sum.Line != Line || Sum.Result != Op.ResultIndex)
            return makeError("madd chains into the wrong result: " +
                             Op.str());
        }
        uint64_t Bit = uint64_t(1) << Op.TapIndex;
        if (Sum.TapsSeen & Bit)
          Sum.TapsDuplicated = true;
        Sum.TapsSeen |= Bit;
        ChainSum[Thread] = Sum;
        if (Op.ChainEnd)
          ChainOpen[Thread] = false;
        Fpu.scheduleWrite(Cycle + WriteDelay, Op.DestReg, Sum);
        break;
      }
      case DynamicPart::Kind::Store: {
        SymVal V = Fpu.read(Op.MulReg);
        if (V.TheKind != SymVal::Kind::Partial || V.Line != Line ||
            V.Result != Op.ResultIndex)
          return makeError("line " + std::to_string(Line) + ": " +
                           Op.str() + " does not read its finished result");
        if (V.TapsSeen != AllTaps || V.TapsDuplicated)
          return makeError("line " + std::to_string(Line) + ": " +
                           Op.str() +
                           " stores a sum with missing or duplicated taps");
        break;
      }
      case DynamicPart::Kind::Filler: {
        // Fillers are legal even while a chain is open: they occupy the
        // other interleave slot (a one-result tail pairs its chain with
        // fillers). Chain integrity is guaranteed by the exact
        // every-other-cycle spacing check on chained madds above.
        if (Op.MulReg != static_cast<uint8_t>(Zero) ||
            Op.AddReg != static_cast<uint8_t>(Zero) ||
            Op.DestReg != static_cast<uint8_t>(Zero))
          return makeError("filler must use only the zero register: " +
                           Op.str());
        SymVal Z = Fpu.read(Op.MulReg);
        if (Z.TheKind != SymVal::Kind::Zero)
          return makeError("zero register corrupted before filler: " +
                           Op.str());
        Fpu.scheduleWrite(Cycle + WriteDelay, Op.DestReg, SymVal::zero());
        break;
      }
      }
    }
    return Error::success();
  };

  if (Error E = RunSequence(Sched.Prologue, /*Line=*/0))
    return E;
  for (int Line = 0; Line != LinesToCheck; ++Line)
    if (Error E = RunSequence(Sched.Phases[Line % U], Line))
      return E;
  return Error::success();
}
