//===- core/ScheduleStats.cpp ---------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/ScheduleStats.h"
#include "support/StringUtils.h"

using namespace cmcc;

double ScheduleStats::usefulFlopsPerOp() const {
  int Ops = opsPerLine();
  return Ops == 0 ? 0.0 : static_cast<double>(UsefulFlopsPerLine) / Ops;
}

double ScheduleStats::maddFraction() const {
  int Ops = opsPerLine();
  return Ops == 0 ? 0.0 : static_cast<double>(MaddsPerLine) / Ops;
}

double ScheduleStats::peakFraction(const MachineConfig &Config) const {
  // Peak is flopsPerMaddCycle useful flops every cycle; the inner loop
  // delivers UsefulFlopsPerLine flops in opsPerLine dynamic parts, each
  // costing SequencerCyclesPerOp cycles.
  double CyclesPerLine = opsPerLine() * Config.SequencerCyclesPerOp;
  if (Config.Fpu == FpuKind::WTL3132)
    CyclesPerLine += MaddsPerLine * Config.SequencerCyclesPerOp;
  if (CyclesPerLine == 0.0)
    return 0.0;
  double FlopsPerCycle = UsefulFlopsPerLine / CyclesPerLine;
  return FlopsPerCycle / Config.flopsPerMaddCycle();
}

ScheduleStats ScheduleStats::analyze(const WidthSchedule &Sched,
                                     const StencilSpec &Spec) {
  ScheduleStats S;
  S.Width = Sched.Width;
  for (const DynamicPart &Op : Sched.Phases.front()) {
    switch (Op.TheKind) {
    case DynamicPart::Kind::Load:
      ++S.LoadsPerLine;
      break;
    case DynamicPart::Kind::Madd:
      ++S.MaddsPerLine;
      break;
    case DynamicPart::Kind::Store:
      ++S.StoresPerLine;
      break;
    case DynamicPart::Kind::Filler:
      ++S.FillersPerLine;
      break;
    }
  }
  S.PrologueOps = static_cast<int>(Sched.Prologue.size());
  S.UnrollFactor = Sched.Regs.plan().UnrollFactor;
  S.RegistersUsed = Sched.registersUsed();
  S.ScratchParts = Sched.scratchPartsUsed();
  S.UsefulFlopsPerLine = Sched.Width * Spec.usefulFlopsPerPoint();
  return S;
}

std::string ScheduleStats::str(const MachineConfig &Config) const {
  std::string Out;
  Out += "width " + std::to_string(Width) + ": " +
         std::to_string(opsPerLine()) + " ops/line (" +
         std::to_string(LoadsPerLine) + " load, " +
         std::to_string(MaddsPerLine) + " madd, " +
         std::to_string(StoresPerLine) + " store, " +
         std::to_string(FillersPerLine) + " filler)\n";
  Out += "  registers " + std::to_string(RegistersUsed) + ", unroll " +
         std::to_string(UnrollFactor) + ", scratch parts " +
         std::to_string(ScratchParts) + ", prologue " +
         std::to_string(PrologueOps) + " ops\n";
  Out += "  useful flops: " + formatFixed(usefulFlopsPerOp(), 2) +
         " per op, madd slots " + formatFixed(100 * maddFraction(), 1) +
         "%, inner-loop ceiling " +
         formatFixed(100 * peakFraction(Config), 1) + "% of peak\n";
  return Out;
}
