//===- core/Schedule.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Schedule.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Assert.h"
#include <algorithm>

using namespace cmcc;

int WidthSchedule::maddsPerLine() const {
  int Madds = 0;
  for (const DynamicPart &Op : Phases.front())
    if (Op.TheKind == DynamicPart::Kind::Madd)
      ++Madds;
  return Madds;
}

int WidthSchedule::scratchPartsUsed() const {
  int Total = static_cast<int>(Prologue.size());
  for (const LineSchedule &L : Phases)
    Total += static_cast<int>(L.size());
  return Total;
}

namespace {

/// One tap with its scheduling metadata for a particular result index.
struct OrderedTap {
  int TapIndex;   ///< Index into Spec.Taps.
  bool HasData;   ///< False for bare-coefficient terms.
  Offset At;      ///< Pattern offset (data taps only).
  int ColumnIdx;  ///< Multistencil column for this result (data taps).
  int Priority;   ///< Lower runs earlier.
  bool IsFreshLoad; ///< Reads a register loaded by this line's load block.
};

} // namespace

Expected<WidthSchedule> cmcc::buildWidthSchedule(const StencilSpec &Spec,
                                                 const MachineConfig &Config,
                                                 int Width,
                                                 bool DedicatedAccumulators) {
  if (Error E = Spec.validate())
    return E;
  if (Spec.distinctDataOffsets().empty())
    return makeError("statement has no data taps; nothing to convolve");

  static obs::Histogram &MultistencilUs =
      obs::Registry::process().histogram("compile.multistencil_us");
  static obs::Histogram &RingPlanUs =
      obs::Registry::process().histogram("compile.ringplan_us");
  static obs::Histogram &ScheduleUs =
      obs::Registry::process().histogram("compile.schedule_us");

  Multistencil MS = [&] {
    CMCC_SPAN("compile.multistencil");
    obs::ScopedLatencyUs Timer(MultistencilUs);
    return Multistencil::build(Spec, Width);
  }();

  // Register budget: 32 minus the reserved zero register, minus the 1.0
  // register when a bare-coefficient term is present (paper §5.3), minus
  // the dedicated accumulators when the fallback mode is in force.
  bool NeedUnit = Spec.needsUnitRegister();
  int Budget = Config.NumRegisters - 1 - (NeedUnit ? 1 : 0) -
               (DedicatedAccumulators ? Width : 0);
  std::optional<RingBufferPlan> Plan = [&] {
    CMCC_SPAN("compile.ringplan");
    obs::ScopedLatencyUs Timer(RingPlanUs);
    return RingBufferPlan::plan(MS, Budget);
  }();
  if (!Plan)
    return makeError(
        "width-" + std::to_string(Width) + " multistencil would require " +
        std::to_string(MS.naturalRegisterCount()) + " registers but only " +
        std::to_string(Budget) + " are available");

  CMCC_SPAN("compile.schedule");
  obs::ScopedLatencyUs EmitTimer(ScheduleUs);
  RegisterAllocation Regs(MS, *Plan, NeedUnit);
  WidthSchedule Sched(MS, Regs);
  Sched.Width = Width;
  Sched.DedicatedAccumulators = DedicatedAccumulators;

  const int Zero = Regs.zeroRegister();
  const int T = static_cast<int>(Spec.Taps.size());
  const Offset Tag = MS.taggedOffset();
  const int WriteDelay = Config.MulToAddCycles + Config.AddToWriteCycles;

  //===--- Prologue: fill the ring buffers --------------------------------===//
  // Element loaded at virtual step t0 < 0 sits at relative row
  // (minRow - t0) when line 0 is processed.
  for (int C = 0; C != MS.columnCount(); ++C) {
    const MultistencilColumn &Col = MS.column(C);
    for (int T0 = -(Col.extent() - 1); T0 <= -1; ++T0) {
      int Reg = Regs.leadingEdgeRegister(C, T0);
      Sched.Prologue.push_back(DynamicPart::load(
          Reg, Col.minRow() - T0, Col.Dx, Col.SourceIndex));
    }
  }

  //===--- Per-phase line schedules ---------------------------------------===//
  const int U = Plan->UnrollFactor;
  const int NumPairs = (Width + 1) / 2;

  for (int Phase = 0; Phase != U; ++Phase) {
    LineSchedule Line;

    // 1. Leading-edge loads, left to right.
    const int NumLoads = MS.columnCount();
    for (int C = 0; C != MS.columnCount(); ++C)
      Line.push_back(DynamicPart::load(Regs.leadingEdgeRegister(C, Phase),
                                       MS.column(C).minRow(),
                                       MS.column(C).Dx,
                                       MS.column(C).SourceIndex));

    // Accumulator register of each result this phase: the tagged cell
    // of its own occurrence, or a dedicated register past the data
    // block in the fallback mode.
    std::vector<int> AccReg(Width);
    for (int R = 0; R != Width; ++R)
      AccReg[R] = DedicatedAccumulators
                      ? Regs.registersUsed() + R
                      : Regs.registerForElement(
                            MS.columnIndexFor(MS.taggedSource(), Tag.Dx, R),
                            Tag.Dy, Phase);

    // 2. Build each result's tap order.
    auto OrderedTapsFor = [&](int R) {
      std::vector<OrderedTap> Taps;
      Taps.reserve(T);
      for (int I = 0; I != T; ++I) {
        const Tap &TheTap = Spec.Taps[I];
        OrderedTap O;
        O.TapIndex = I;
        O.HasData = TheTap.HasData;
        O.At = TheTap.At;
        O.ColumnIdx = 0;
        O.IsFreshLoad = false;
        O.Priority = 2;
        if (TheTap.HasData) {
          O.ColumnIdx =
              MS.columnIndexFor(TheTap.SourceIndex, TheTap.At.Dx, R);
          const MultistencilColumn &Col = MS.column(O.ColumnIdx);
          O.IsFreshLoad = TheTap.At.Dy == Col.minRow();
          // Own tagged cell first; the pair partner's tagged cell (one
          // column to the right in pattern space) next.
          bool IsTagSource = TheTap.SourceIndex == MS.taggedSource();
          if (IsTagSource && TheTap.At == Tag)
            O.Priority = 0;
          else if (IsTagSource && (R & 1) == 0 && R + 1 < Width &&
                   TheTap.At.Dy == Tag.Dy && TheTap.At.Dx == Tag.Dx + 1)
            O.Priority = 1;
        }
        Taps.push_back(O);
      }
      std::stable_sort(Taps.begin(), Taps.end(),
                       [](const OrderedTap &A, const OrderedTap &B) {
                         if (A.Priority != B.Priority)
                           return A.Priority < B.Priority;
                         // Fresh loads later (load latency), earlier
                         // columns first (loaded earlier).
                         if (A.IsFreshLoad != B.IsFreshLoad)
                           return !A.IsFreshLoad;
                         return false;
                       });
      return Taps;
    };

    std::vector<std::vector<OrderedTap>> ResultTaps;
    ResultTaps.reserve(Width);
    for (int R = 0; R != Width; ++R)
      ResultTaps.push_back(OrderedTapsFor(R));

    // Fillers between loads and multiply-adds to cover the load latency
    // of fresh elements read early in the multiply-add block.
    int LoadGap = 0;
    for (int R = 0; R != Width; ++R) {
      for (int J = 0; J != T; ++J) {
        const OrderedTap &O = ResultTaps[R][J];
        if (!O.HasData || !O.IsFreshLoad)
          continue;
        long LoadCycle = O.ColumnIdx; // loads issue at cycles 0..C-1
        long ReadCycle = NumLoads + 2L * T * (R / 2) + 2L * J + (R & 1);
        long Needed = LoadCycle + Config.LoadLatencyCycles - ReadCycle;
        LoadGap = std::max(LoadGap, static_cast<int>(Needed));
      }
    }
    for (int I = 0; I != LoadGap; ++I)
      Line.push_back(DynamicPart::filler(Zero));

    // 3. Multiply-adds, two interleaved threads per pair of results.
    for (int Pair = 0; Pair != NumPairs; ++Pair) {
      int RA = 2 * Pair;
      int RB = RA + 1;
      bool HasB = RB < Width;
      for (int J = 0; J != T; ++J) {
        // Thread 0 (result RA).
        {
          const OrderedTap &O = ResultTaps[RA][J];
          int MulReg = O.HasData
                           ? Regs.registerForElement(O.ColumnIdx, O.At.Dy,
                                                     Phase)
                           : Regs.unitRegister();
          Line.push_back(DynamicPart::madd(MulReg, AccReg[RA], Zero,
                                           /*Thread=*/0, O.TapIndex, RA,
                                           /*Start=*/J == 0,
                                           /*End=*/J == T - 1));
        }
        // Thread 1 (result RB), or a filler to keep thread 0's chain on
        // its every-other-cycle schedule.
        if (HasB) {
          const OrderedTap &O = ResultTaps[RB][J];
          int MulReg = O.HasData
                           ? Regs.registerForElement(O.ColumnIdx, O.At.Dy,
                                                     Phase)
                           : Regs.unitRegister();
          Line.push_back(DynamicPart::madd(MulReg, AccReg[RB], Zero,
                                           /*Thread=*/1, O.TapIndex, RB,
                                           /*Start=*/J == 0,
                                           /*End=*/J == T - 1));
        } else {
          Line.push_back(DynamicPart::filler(Zero));
        }
      }
    }

    // 4. Pipeline drain, then the consecutive stores.
    long MaddBase = NumLoads + LoadGap;
    long StoreBase = MaddBase + 2L * T * NumPairs;
    int Drain = 0;
    for (int R = 0; R != Width; ++R) {
      long LastMadd = MaddBase + 2L * T * (R / 2) + 2L * (T - 1) + (R & 1);
      long Needed = (LastMadd + WriteDelay) - (StoreBase + R);
      Drain = std::max(Drain, static_cast<int>(Needed));
    }
    for (int I = 0; I != Drain; ++I)
      Line.push_back(DynamicPart::filler(Zero));
    for (int R = 0; R != Width; ++R)
      Line.push_back(DynamicPart::store(AccReg[R], R));

    Sched.Phases.push_back(std::move(Line));
  }

  // All phases have identical length (same structure, possibly differing
  // only in register numbers).
  for (const LineSchedule &L : Sched.Phases)
    assert(L.size() == Sched.Phases.front().size() &&
           "phases must have uniform length");

  if (Sched.scratchPartsUsed() > Config.ScratchMemoryParts)
    return makeError("width-" + std::to_string(Width) +
                     " unrolled schedule needs " +
                     std::to_string(Sched.scratchPartsUsed()) +
                     " scratch-memory parts; the sequencer has " +
                     std::to_string(Config.ScratchMemoryParts));
  return Sched;
}
