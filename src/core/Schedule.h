//===- core/Schedule.h - Dynamic-part schedule generation -----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the per-line dynamic-part sequences for one multistencil
/// width. Each line of w results is processed as (§5.3–5.4):
///
///   1. one leading-edge load per multistencil column (left to right),
///      plus any fillers needed to cover the load latency;
///   2. the multiply-adds, two results at a time as two interleaved
///      chained threads (the WTL3164 accepts a chained multiply-add
///      every other cycle per thread); result r accumulates into the
///      register of the *tagged* cell of its own occurrence, which the
///      pipeline frees just in time;
///   3. fillers draining the pipeline so the last results have landed;
///   4. w consecutive stores (avoiding memory-pipe direction reversals).
///
/// The register-access pattern repeats with period UnrollFactor, so
/// UnrollFactor line variants are emitted — this is the paper's unrolled
/// pattern kept in sequencer scratch memory. A prologue fills the ring
/// buffers before the first line of each half-strip.
///
/// Within each result the taps are ordered so that reads of registers
/// about to be overwritten (the accumulators of this result and of its
/// pair partner) come first; the Verifier then proves every schedule
/// correct against the pipeline timing, and widths whose schedules
/// cannot be proven are simply not offered ("it is all right if some of
/// these don't work").
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CORE_SCHEDULE_H
#define CMCC_CORE_SCHEDULE_H

#include "cm2/Instruction.h"
#include "cm2/MachineConfig.h"
#include "core/RegisterAllocation.h"
#include "stencil/StencilSpec.h"
#include "support/Error.h"
#include <vector>

namespace cmcc {

/// Everything needed to run one width's microcode: the register plan and
/// the dynamic-part streams.
struct WidthSchedule {
  int Width = 1;
  Multistencil MS{};
  RegisterAllocation Regs;
  /// True when results accumulate into dedicated registers instead of
  /// the freed tagged data registers — the fallback for patterns whose
  /// tagged cell is read too many times (three or more taps at the same
  /// offset); costs Width extra registers ("in the general case even
  /// more clever strategies may be required", §5.4).
  bool DedicatedAccumulators = false;
  /// Ring-buffer fill executed once at the start of each half-strip.
  LineSchedule Prologue;
  /// One line variant per phase (size = plan().UnrollFactor).
  std::vector<LineSchedule> Phases;

  WidthSchedule(Multistencil MS, RegisterAllocation Regs)
      : MS(std::move(MS)), Regs(std::move(Regs)) {}

  /// Dynamic parts per line for phase \p P (they all have equal length;
  /// asserted in the builder).
  int opsPerLine() const { return static_cast<int>(Phases.front().size()); }

  /// Multiply-add operations per line (for the WTL3132 ablation, where
  /// each multiply-add costs a separate multiply and add issue).
  int maddsPerLine() const;

  /// Sequencer scratch-memory footprint in dynamic parts.
  int scratchPartsUsed() const;

  /// Physical registers consumed.
  int registersUsed() const {
    return Regs.registersUsed() + (DedicatedAccumulators ? Width : 0);
  }
};

/// Builds the schedule for \p Spec at \p Width under \p Config.
/// Fails (with a paper-style explanation: lack of registers, scratch
/// memory overflow) when the width is not realizable; the caller falls
/// back to the next narrower width. With \p DedicatedAccumulators the
/// tagged-register reuse is abandoned in favor of Width reserved
/// accumulator registers (the fallback the compiler tries when the
/// tagged schedule fails verification).
Expected<WidthSchedule> buildWidthSchedule(const StencilSpec &Spec,
                                           const MachineConfig &Config,
                                           int Width,
                                           bool DedicatedAccumulators = false);

} // namespace cmcc

#endif // CMCC_CORE_SCHEDULE_H
