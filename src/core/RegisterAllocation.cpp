//===- core/RegisterAllocation.cpp ----------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/RegisterAllocation.h"
#include "support/Assert.h"

using namespace cmcc;

RegisterAllocation::RegisterAllocation(const Multistencil &MS,
                                       const RingBufferPlan &Plan,
                                       bool NeedUnitRegister)
    : MS(MS), Plan(Plan) {
  assert(static_cast<int>(Plan.Sizes.size()) == MS.columnCount() &&
         "plan does not match multistencil");
  ZeroReg = 0;
  if (NeedUnitRegister) {
    UnitReg = 1;
    FirstData = 2;
  } else {
    FirstData = 1;
  }
  int Next = FirstData;
  Bases.reserve(Plan.Sizes.size());
  for (int S : Plan.Sizes) {
    Bases.push_back(Next);
    Next += S;
  }
}

int RegisterAllocation::unitRegister() const {
  assert(UnitReg >= 0 && "allocation has no unit register");
  return UnitReg;
}

/// Non-negative modulus.
static int wrap(long V, int M) {
  long R = V % M;
  return static_cast<int>(R < 0 ? R + M : R);
}

int RegisterAllocation::registerForElement(int ColumnIdx, int Dy,
                                           long Step) const {
  const MultistencilColumn &C = MS.column(ColumnIdx);
  assert(Dy >= C.minRow() && Dy <= C.maxRow() &&
         "row not covered by this column");
  // Loaded (Dy - minRow) steps ago into slot (Step - (Dy - minRow)) mod S.
  int Slot = wrap(Step - (Dy - C.minRow()), Plan.Sizes[ColumnIdx]);
  return Bases[ColumnIdx] + Slot;
}

int RegisterAllocation::leadingEdgeRegister(int ColumnIdx, long Step) const {
  int Slot = wrap(Step, Plan.Sizes[ColumnIdx]);
  return Bases[ColumnIdx] + Slot;
}
