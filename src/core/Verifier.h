//===- core/Verifier.h - Symbolic schedule verification -------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Proves a generated WidthSchedule correct against the WTL3164 pipeline
/// timing by symbolic execution: every register holds a tagged symbolic
/// value (zero, one, a specific data element, or a partial sum), writes
/// land with the same delays the hardware imposes (multiply at k → add at
/// k+2 → register at k+4; loads land after the interface-chip latency),
/// and the verifier checks that
///
///   * every multiply-add reads exactly the data element its tap calls
///     for (so the "freed just in time" accumulator reuse is sound),
///   * every chain start reads a true zero and every store reads the
///     finished sum containing each tap exactly once,
///   * fillers touch only the zero register and never appear inside a
///     chain, and register numbers stay within the machine.
///
/// Lines are assumed issued back to back, which is *stricter* than the
/// real microcode (the end-of-line branch adds slack), so a schedule that
/// verifies here is safe on the modeled machine. The compiler discards
/// any width whose schedule fails — the paper's "it is all right if some
/// of these don't work".
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CORE_VERIFIER_H
#define CMCC_CORE_VERIFIER_H

#include "cm2/MachineConfig.h"
#include "core/Schedule.h"
#include "support/Error.h"

namespace cmcc {

/// Verifies \p Sched (built for \p Spec under \p Config). Returns a
/// failure describing the first violation, or success.
Error verifySchedule(const WidthSchedule &Sched, const StencilSpec &Spec,
                     const MachineConfig &Config);

} // namespace cmcc

#endif // CMCC_CORE_VERIFIER_H
