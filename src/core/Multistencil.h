//===- core/Multistencil.h - Width-w composite stencils -------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multistencil of §5.3: the union of w copies of the stencil pattern
/// placed with their centers side by side. Computing w results at once
/// needs only the multistencil's data elements — e.g. the paper's 5-point
/// example spans 26 positions for 8 results instead of 40 naive loads.
///
/// The multistencil is organized by *columns* (§5.4): column c gathers
/// the pattern rows {dy : tap (dy,dx) with c-dx in [0,w)}. Each column
/// becomes a ring buffer of registers; its natural size is the column's
/// row *extent* (max-min+1), the number of lines a data element stays
/// live while it travels from the column's leading edge to its last use.
/// For the paper's patterns (contiguous columns) the extent equals the
/// column height it quotes: the 13-point diamond gives 1,3,5,5,5,5,3,1 =
/// 28 registers at width 4 and 48 at width 8.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CORE_MULTISTENCIL_H
#define CMCC_CORE_MULTISTENCIL_H

#include "stencil/StencilSpec.h"
#include <string>
#include <vector>

namespace cmcc {

/// One column of a multistencil.
struct MultistencilColumn {
  /// Which source array this column's elements come from (0 in the
  /// paper's single-variable form; the multi-source extension adds
  /// independent column groups per source).
  int SourceIndex = 0;
  /// Column offset relative to the leftmost result's center.
  int Dx = 0;
  /// Sorted distinct pattern rows present in this column.
  std::vector<int> Rows;

  int minRow() const { return Rows.front(); }
  int maxRow() const { return Rows.back(); }
  /// Number of distinct data cells (the paper's column height).
  int height() const { return static_cast<int>(Rows.size()); }
  /// Lines a leading-edge element must be retained: the natural ring
  /// size. Equals height() when the rows are contiguous.
  int extent() const { return maxRow() - minRow() + 1; }
};

/// The width-w composite of a stencil pattern.
class Multistencil {
public:
  /// Builds the composite for \p Spec at \p Width (>= 1). The spec must
  /// have at least one data tap.
  static Multistencil build(const StencilSpec &Spec, int Width);

  int width() const { return Width; }
  int columnCount() const { return static_cast<int>(Columns.size()); }
  const MultistencilColumn &column(int I) const { return Columns[I]; }
  const std::vector<MultistencilColumn> &columns() const { return Columns; }

  /// Index into columns() of pattern offset dx of \p Source for result
  /// \p Result.
  int columnIndexFor(int Source, int Dx, int Result) const;

  /// Distinct data cells spanned (26 in the paper's §5.3 example).
  int totalPositions() const;

  /// Registers needed at natural ring sizes (sum of extents): 28/48 for
  /// the diamond at widths 4/8.
  int naturalRegisterCount() const;

  /// Registers needed by the naive uniform-rows plan the paper rejects
  /// (§5.4): full-height ring buffers for every column (40 for the
  /// diamond at width 4).
  int uniformRowsRegisterCount() const;

  /// The tagged position (§5.3): bottommost pattern row of the tag
  /// source, leftmost tap within that row. Result r accumulates into the
  /// register of the tagged cell of its own stencil occurrence. The
  /// element is dead once its own source's bottom row passes it, so the
  /// argument holds per source; we tag within the primary source.
  Offset taggedOffset() const { return Tag; }

  /// The source array the tagged cell belongs to.
  int taggedSource() const { return TagSource; }

  /// Pattern row range.
  int minRow() const { return MinRow; }
  int maxRow() const { return MaxRow; }

  /// ASCII diagram (rows north to south): '#' cell, '.' empty, 'T'
  /// tagged cells of each of the w occurrences.
  std::string render() const;

private:
  int Width = 1;
  int MinRow = 0, MaxRow = 0;
  Offset Tag;
  int TagSource = 0;
  std::vector<MultistencilColumn> Columns;
};

} // namespace cmcc

#endif // CMCC_CORE_MULTISTENCIL_H
