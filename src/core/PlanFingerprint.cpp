//===- core/PlanFingerprint.cpp -------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/PlanFingerprint.h"
#include <cstdio>
#include <cstring>

using namespace cmcc;

namespace {

/// Renders a double exactly (round-trippable %.17g), so that 0.25 and
/// 0.250000001 never collide and equal values always agree.
std::string exactDouble(double V) {
  char Buffer[48];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", V);
  return Buffer;
}

const char *boundaryWord(BoundaryKind K) {
  return K == BoundaryKind::Circular ? "circular" : "zero";
}

} // namespace

std::string cmcc::planFingerprintText(const StencilSpec &Spec,
                                      const MachineConfig &Config) {
  return planFingerprintText(Spec, Config, "cm2");
}

std::string cmcc::planFingerprintText(const StencilSpec &Spec,
                                      const MachineConfig &Config,
                                      std::string_view Backend) {
  // Version tag: bump when the covered fields or the rendering change,
  // so stale on-disk cache entries from older layouts can never alias a
  // current fingerprint.
  std::string Out = "cmcc-plan-v1\n";

  Out += "result " + Spec.Result + "\n";
  Out += "sources";
  for (int S = 0; S != Spec.sourceCount(); ++S)
    Out += " " + Spec.sourceName(S);
  Out += "\n";
  Out += std::string("boundary ") + boundaryWord(Spec.BoundaryDim1) + " " +
         boundaryWord(Spec.BoundaryDim2) + "\n";
  for (const Tap &T : Spec.Taps) {
    Out += "tap";
    if (T.HasData)
      Out += " data " + std::to_string(T.SourceIndex) + " " +
             std::to_string(T.At.Dy) + " " + std::to_string(T.At.Dx);
    else
      Out += " bare";
    Out += " sign " + exactDouble(T.Sign);
    if (T.Coeff.isArray())
      Out += " coeff array " + T.Coeff.Name;
    else
      Out += " coeff scalar " + exactDouble(T.Coeff.Value);
    Out += "\n";
  }

  // Only what compile() consults: the register budget, the pipeline
  // latencies the schedule builder and verifier enforce, and the
  // scratch-memory capacity the unrolled pattern must fit.
  Out += "machine registers " + std::to_string(Config.NumRegisters) +
         " mul-to-add " + std::to_string(Config.MulToAddCycles) +
         " add-to-write " + std::to_string(Config.AddToWriteCycles) +
         " load-latency " + std::to_string(Config.LoadLatencyCycles) +
         " scratch-parts " + std::to_string(Config.ScratchMemoryParts) +
         "\n";
  // The backend tag is appended only for non-default backends: every
  // pre-seam fingerprint (and on-disk .cmccode stem) stays bit-equal
  // and means "cm2".
  if (Backend != "cm2")
    Out += "backend " + std::string(Backend) + "\n";
  return Out;
}

uint64_t cmcc::planFingerprint(const StencilSpec &Spec,
                               const MachineConfig &Config) {
  return planFingerprint(Spec, Config, "cm2");
}

uint64_t cmcc::planFingerprint(const StencilSpec &Spec,
                               const MachineConfig &Config,
                               std::string_view Backend) {
  const std::string Text = planFingerprintText(Spec, Config, Backend);
  uint64_t H = 1469598103934665603ull; // FNV offset basis
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull; // FNV prime
  }
  return H;
}

std::string cmcc::fingerprintHex(uint64_t Fingerprint) {
  char Buffer[20];
  std::snprintf(Buffer, sizeof(Buffer), "%016llx",
                static_cast<unsigned long long>(Fingerprint));
  return Buffer;
}
