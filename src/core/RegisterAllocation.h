//===- core/RegisterAllocation.h - FPU register assignment ----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps multistencil data cells to physical WTL3164 registers across the
/// unrolled phases. Register 0 is reserved to hold 0.0 (every filler op
/// and every chain start uses it — initializing an accumulator by adding
/// to zero is faster than clearing it, §5.3); register 1 holds 1.0 when
/// the statement has a bare-coefficient term. Each multistencil column
/// owns a contiguous block of registers used as a ring buffer: on line
/// step t the column's leading-edge element is loaded into slot t mod S,
/// so the element for pattern row dy sits in slot (t - (dy - minRow))
/// mod S. The whole mapping repeats with period UnrollFactor.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CORE_REGISTERALLOCATION_H
#define CMCC_CORE_REGISTERALLOCATION_H

#include "core/Multistencil.h"
#include "core/RingBufferPlan.h"
#include <vector>

namespace cmcc {

/// The physical register assignment for one (multistencil, plan) pair.
class RegisterAllocation {
public:
  RegisterAllocation(const Multistencil &MS, const RingBufferPlan &Plan,
                     bool NeedUnitRegister);

  int zeroRegister() const { return ZeroReg; }
  /// Valid only when the allocation was built with NeedUnitRegister.
  int unitRegister() const;
  bool hasUnitRegister() const { return UnitReg >= 0; }

  /// Total physical registers consumed (reserved + data).
  int registersUsed() const { return FirstData + Plan.DataRegisters; }

  /// The register holding the data element of pattern row \p Dy in
  /// column index \p ColumnIdx at line step \p Step (any integer; the
  /// mapping is periodic).
  int registerForElement(int ColumnIdx, int Dy, long Step) const;

  /// The register receiving column \p ColumnIdx's leading-edge load at
  /// line step \p Step.
  int leadingEdgeRegister(int ColumnIdx, long Step) const;

  /// First register of column \p ColumnIdx's ring buffer.
  int columnBase(int ColumnIdx) const { return Bases[ColumnIdx]; }
  int columnSize(int ColumnIdx) const { return Plan.Sizes[ColumnIdx]; }

  const Multistencil &multistencil() const { return MS; }
  const RingBufferPlan &plan() const { return Plan; }

private:
  Multistencil MS;
  RingBufferPlan Plan;
  int ZeroReg = 0;
  int UnitReg = -1;
  int FirstData = 1;
  std::vector<int> Bases;
};

} // namespace cmcc

#endif // CMCC_CORE_REGISTERALLOCATION_H
