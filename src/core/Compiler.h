//===- core/Compiler.h - The convolution compiler -------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top of the compiler module: recognizes a stencil statement and
/// produces, for each workable multistencil width in {8, 4, 2, 1}, a
/// verified register plan and dynamic-part schedule. The run-time library
/// then shaves off, at each step, the widest strip for which a workable
/// multistencil exists (§5.3) — widths that fail for lack of registers or
/// scratch memory are simply absent, with a note explaining why (the
/// user feedback the paper's production version planned).
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CORE_COMPILER_H
#define CMCC_CORE_COMPILER_H

#include "cm2/MachineConfig.h"
#include "core/Schedule.h"
#include "core/Verifier.h"
#include "stencil/Recognizer.h"
#include "stencil/StencilSpec.h"
#include "support/Diagnostic.h"
#include "support/Error.h"
#include <optional>
#include <string_view>
#include <vector>

namespace cmcc {

/// The compiled form of one stencil statement: everything the run-time
/// library needs.
struct CompiledStencil {
  StencilSpec Spec;
  /// Verified schedules in decreasing width order (at least one).
  std::vector<WidthSchedule> Widths;
  /// Human-readable notes about widths that were not generated.
  std::vector<std::string> Notes;

  /// The widest schedule not exceeding \p RemainingCols, or nullptr when
  /// even width 1 does not fit (RemainingCols == 0).
  const WidthSchedule *widestFitting(int RemainingCols) const;

  /// The schedule of exactly \p Width, or nullptr.
  const WidthSchedule *withWidth(int Width) const;

  /// Widths available, e.g. {8, 4, 2, 1}.
  std::vector<int> availableWidths() const;
};

/// Compiles stencil statements for one machine configuration.
class ConvolutionCompiler {
public:
  explicit ConvolutionCompiler(const MachineConfig &Config)
      : Config(Config) {}

  /// Enables the §9 multi-source extension in the front-end recognizer
  /// (terms may shift several different arrays; see RecognizerOptions).
  void setAllowMultipleSources(bool Allow) {
    RecognizerOpts.AllowMultipleSources = Allow;
  }

  /// The widths the compiler attempts, widest first (§5.3: "we have
  /// found it practical for the compiler to attempt to construct
  /// multistencils of width 8, 4, 2, and 1").
  static const int CandidateWidths[4];

  /// Compiles an already-recognized stencil.
  [[nodiscard]] Expected<CompiledStencil>
  compile(const StencilSpec &Spec) const;

  /// Front end entry: a bare assignment statement (the version-3 style
  /// that needs no isolated subroutine).
  [[nodiscard]] std::optional<CompiledStencil>
  compileAssignment(std::string_view FortranSource,
                    DiagnosticEngine &Diags) const;

  /// Front end entry: an isolated SUBROUTINE (the paper's version 2).
  [[nodiscard]] std::optional<CompiledStencil>
  compileSubroutine(std::string_view FortranSource,
                    DiagnosticEngine &Diags) const;

  /// Front end entry: a Lisp (defstencil ...) form (the paper's
  /// version 1).
  [[nodiscard]] std::optional<CompiledStencil>
  compileDefStencil(std::string_view Source, DiagnosticEngine &Diags) const;

  /// A subroutine processed the version-3 way: the compiler recognizes
  /// candidate assignment statements on its own; statements flagged with
  /// the "!CMCC$ STENCIL" directive earn a warning when the technique
  /// does not apply after all (for lack of registers, for example).
  struct ProcessedSubroutine {
    fortran::Subroutine Unit;
    /// Parallel to Unit.Body: the compiled stencil where the convolution
    /// technique applies, std::nullopt where the stock code generator
    /// would take over.
    std::vector<std::optional<CompiledStencil>> Statements;

    /// Number of statements the convolution technique handles.
    int compiledCount() const;
  };

  /// The paper's version-3 driver: processes every assignment in a
  /// subroutine, no isolated-subroutine restriction. Parse errors fail
  /// the whole unit; per-statement rejections do not.
  [[nodiscard]] std::optional<ProcessedSubroutine>
  processSubroutine(std::string_view FortranSource,
                    DiagnosticEngine &Diags) const;

  /// Processes every subroutine in a multi-unit source file the same
  /// way (a whole CM Fortran file, as the integrated version would see
  /// it).
  [[nodiscard]] std::optional<std::vector<ProcessedSubroutine>>
  processProgram(std::string_view FortranSource,
                 DiagnosticEngine &Diags) const;

  const MachineConfig &machine() const { return Config; }

private:
  std::optional<ProcessedSubroutine>
  processUnit(fortran::Subroutine Sub, DiagnosticEngine &Diags) const;

  MachineConfig Config;
  RecognizerOptions RecognizerOpts;
};

} // namespace cmcc

#endif // CMCC_CORE_COMPILER_H
