//===- core/PlanFingerprint.h - Canonical plan identity -------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stable 64-bit fingerprint identifying one compilation: the
/// normalized StencilSpec plus the compilation-relevant fields of the
/// MachineConfig. Two compile() calls with equal fingerprints produce
/// identical CompiledStencils, so the fingerprint is the key of the
/// serving layer's plan cache and of the .cmccode on-disk tier.
///
/// Normalization goes through a canonical text form, not through the
/// in-memory layout, so the fingerprint is independent of which front
/// end produced the spec (Fortran assignment, SUBROUTINE, or Lisp
/// defstencil all recognize into the same StencilSpec and therefore the
/// same fingerprint). Tap order is preserved: it is part of the compiled
/// schedule's identity, not presentation.
///
/// Only fields the compiler actually consults participate for the
/// machine side (register budget, pipeline latencies, scratch-memory
/// capacity). Topology and clock rate affect execution timing, not the
/// compiled plan, so two machines differing only in node count share
/// plans — exactly the reuse the paper's compile-once design enables.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CORE_PLANFINGERPRINT_H
#define CMCC_CORE_PLANFINGERPRINT_H

#include "cm2/MachineConfig.h"
#include "stencil/StencilSpec.h"
#include <cstdint>
#include <string>
#include <string_view>

namespace cmcc {

/// The canonical text the fingerprint hashes: one line per component of
/// the spec and of the compilation-relevant machine fields. Exposed so
/// tests (and humans debugging cache keys) can see exactly what is
/// covered.
///
/// \p Backend scopes the plan to one execution backend so a cache can
/// hold both backends' plans for one spec without aliasing. The default
/// "cm2" contributes nothing to the text — every fingerprint minted
/// before the backend seam existed (including on-disk .cmccode stems)
/// remains valid and means the simulated plan.
std::string planFingerprintText(const StencilSpec &Spec,
                                const MachineConfig &Config,
                                std::string_view Backend);
std::string planFingerprintText(const StencilSpec &Spec,
                                const MachineConfig &Config);

/// FNV-1a 64-bit hash of planFingerprintText().
uint64_t planFingerprint(const StencilSpec &Spec, const MachineConfig &Config,
                         std::string_view Backend);
uint64_t planFingerprint(const StencilSpec &Spec, const MachineConfig &Config);

/// The fingerprint as a fixed-width lower-case hex string (the on-disk
/// cache's file stem).
std::string fingerprintHex(uint64_t Fingerprint);

} // namespace cmcc

#endif // CMCC_CORE_PLANFINGERPRINT_H
