//===- core/RingBufferPlan.cpp --------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/RingBufferPlan.h"
#include "support/Assert.h"
#include <algorithm>
#include <numeric>

using namespace cmcc;

long cmcc::leastCommonMultiple(long A, long B) {
  assert(A > 0 && B > 0 && "LCM of nonpositive sizes");
  return A / std::gcd(A, B) * B;
}

/// Recomputes the derived fields from Sizes.
static void finalize(RingBufferPlan &Plan) {
  Plan.DataRegisters = 0;
  long Lcm = 1;
  for (int S : Plan.Sizes) {
    Plan.DataRegisters += S;
    Lcm = leastCommonMultiple(Lcm, S);
  }
  Plan.UnrollFactor = static_cast<int>(Lcm);
}

RingBufferPlan RingBufferPlan::uniformPlan(const Multistencil &MS) {
  int MaxExtent = 0;
  for (const MultistencilColumn &C : MS.columns())
    MaxExtent = std::max(MaxExtent, C.extent());
  RingBufferPlan Plan;
  Plan.Sizes.assign(MS.columnCount(), MaxExtent);
  finalize(Plan);
  return Plan;
}

std::optional<RingBufferPlan> RingBufferPlan::plan(const Multistencil &MS,
                                                   int RegisterBudget) {
  int MaxExtent = 0;
  for (const MultistencilColumn &C : MS.columns())
    MaxExtent = std::max(MaxExtent, C.extent());

  // Start: everything at the maximum extent, except extent-1 columns.
  RingBufferPlan Plan;
  Plan.Sizes.reserve(MS.columnCount());
  for (const MultistencilColumn &C : MS.columns())
    Plan.Sizes.push_back(C.extent() == 1 ? 1 : MaxExtent);
  finalize(Plan);
  if (Plan.DataRegisters <= RegisterBudget)
    return Plan;

  // Compress columns toward their natural extents, smallest natural
  // extent first (the paper's strategy; it tends to keep the LCM small
  // for the column heights typically encountered).
  std::vector<int> Order(MS.columnCount());
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(), [&](int A, int B) {
    return MS.column(A).extent() < MS.column(B).extent();
  });
  for (int I : Order) {
    if (Plan.DataRegisters <= RegisterBudget)
      break;
    int Natural = MS.column(I).extent();
    if (Plan.Sizes[I] == Natural)
      continue;
    Plan.DataRegisters -= Plan.Sizes[I] - Natural;
    Plan.Sizes[I] = Natural;
  }
  finalize(Plan);
  if (Plan.DataRegisters > RegisterBudget)
    return std::nullopt;
  return Plan;
}
