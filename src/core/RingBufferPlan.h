//===- core/RingBufferPlan.h - Ring-buffer sizing and LCM -----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sizing of the per-column register ring buffers (§5.4). The register
/// access pattern must be unrolled by the least common multiple of the
/// ring-buffer sizes, which costs sequencer scratch memory, so the
/// compiler tries to keep the LCM small: every buffer starts at the
/// maximum column extent — except extent-1 columns, which always stay at
/// 1 ("reducing a ring buffer to size 1 always saves registers and never
/// makes the LCM larger") — and if the total exceeds the register budget
/// the columns are compressed toward their natural sizes, from smallest
/// to largest. For the 13-point diamond at width 4 this yields sizes
/// 1,3,5,5,5,5,3,1 (28 registers) and unroll factor LCM(5,3,1) = 15,
/// matching the paper.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CORE_RINGBUFFERPLAN_H
#define CMCC_CORE_RINGBUFFERPLAN_H

#include "core/Multistencil.h"
#include <optional>
#include <vector>

namespace cmcc {

/// The chosen ring-buffer sizes for one multistencil.
struct RingBufferPlan {
  /// One size per multistencil column; Sizes[i] >= extent of column i.
  std::vector<int> Sizes;
  /// LCM of the sizes: the register-access pattern repeats with this
  /// period, so the microcode loop is unrolled this many times.
  int UnrollFactor = 1;
  /// Total data registers consumed (sum of sizes).
  int DataRegisters = 0;

  /// Plans buffers for \p MS within \p RegisterBudget data registers.
  /// Returns std::nullopt when even the natural sizes do not fit — the
  /// compiler then simply does not generate code for this width.
  static std::optional<RingBufferPlan> plan(const Multistencil &MS,
                                            int RegisterBudget);

  /// The naive uniform plan (every column at the maximum extent, no
  /// height-1 exception): the §5.4 strawman, kept for ablation A2.
  static RingBufferPlan uniformPlan(const Multistencil &MS);
};

/// Least common multiple (safe for the small sizes involved).
long leastCommonMultiple(long A, long B);

} // namespace cmcc

#endif // CMCC_CORE_RINGBUFFERPLAN_H
