//===- core/Multistencil.cpp ----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Multistencil.h"
#include "support/Assert.h"
#include <algorithm>
#include <map>

using namespace cmcc;

Multistencil Multistencil::build(const StencilSpec &Spec, int Width) {
  assert(Width >= 1 && "multistencil width must be positive");
  std::vector<Offset> AllOffsets = Spec.distinctDataOffsets();
  assert(!AllOffsets.empty() && "multistencil needs at least one data tap");

  Multistencil MS;
  MS.Width = Width;

  // Per source: the union of Width copies shifted right by 0..Width-1.
  for (int Source = 0; Source != Spec.sourceCount(); ++Source) {
    std::map<int, std::vector<int>> RowsByColumn;
    for (const Offset &At : Spec.distinctDataOffsets(Source))
      for (int R = 0; R != Width; ++R)
        RowsByColumn[At.Dx + R].push_back(At.Dy);
    for (auto &[Dx, Rows] : RowsByColumn) {
      std::sort(Rows.begin(), Rows.end());
      Rows.erase(std::unique(Rows.begin(), Rows.end()), Rows.end());
      MultistencilColumn C;
      C.SourceIndex = Source;
      C.Dx = Dx;
      C.Rows = Rows;
      MS.Columns.push_back(std::move(C));
    }
  }

  MS.MinRow = AllOffsets.front().Dy;
  MS.MaxRow = AllOffsets.front().Dy;
  for (const Offset &At : AllOffsets) {
    MS.MinRow = std::min(MS.MinRow, At.Dy);
    MS.MaxRow = std::max(MS.MaxRow, At.Dy);
  }

  // Tag: bottommost row of the primary source, leftmost tap in it (§5.3
  // — "in practice we always choose the bottommost row"). An element is
  // dead once its own source's bottom row passes it, so tagging within
  // one source is sound even with extra sources present.
  std::vector<Offset> Primary = Spec.distinctDataOffsets(0);
  assert(!Primary.empty() && "primary source has no taps");
  int TagDy = Primary.front().Dy;
  for (const Offset &At : Primary)
    TagDy = std::max(TagDy, At.Dy);
  int TagDx = 0;
  bool Found = false;
  for (const Offset &At : Primary) {
    if (At.Dy != TagDy)
      continue;
    if (!Found || At.Dx < TagDx) {
      TagDx = At.Dx;
      Found = true;
    }
  }
  assert(Found && "pattern has no tap in its bottommost row?");
  MS.Tag = {TagDy, TagDx};
  MS.TagSource = 0;
  return MS;
}

int Multistencil::columnIndexFor(int Source, int Dx, int Result) const {
  int Wanted = Dx + Result;
  for (int I = 0; I != columnCount(); ++I)
    if (Columns[I].SourceIndex == Source && Columns[I].Dx == Wanted)
      return I;
  CMCC_UNREACHABLE("offset outside the multistencil");
}

int Multistencil::totalPositions() const {
  int Total = 0;
  for (const MultistencilColumn &C : Columns)
    Total += C.height();
  return Total;
}

int Multistencil::naturalRegisterCount() const {
  int Total = 0;
  for (const MultistencilColumn &C : Columns)
    Total += C.extent();
  return Total;
}

int Multistencil::uniformRowsRegisterCount() const {
  int MaxExtent = 0;
  for (const MultistencilColumn &C : Columns)
    MaxExtent = std::max(MaxExtent, C.extent());
  return MaxExtent * columnCount();
}

std::string Multistencil::render() const {
  std::string Out;
  int Sources = Columns.empty() ? 0 : Columns.back().SourceIndex + 1;
  for (int Source = 0; Source != Sources; ++Source) {
    if (Sources > 1)
      Out += "source " + std::to_string(Source) + ":\n";
    for (int Dy = MinRow; Dy <= MaxRow; ++Dy) {
      bool FirstColumn = true;
      for (int I = 0; I != columnCount(); ++I) {
        const MultistencilColumn &C = Columns[I];
        if (C.SourceIndex != Source)
          continue;
        if (!FirstColumn)
          Out.push_back(' ');
        FirstColumn = false;
        bool Present =
            std::find(C.Rows.begin(), C.Rows.end(), Dy) != C.Rows.end();
        bool Tagged = Present && Source == TagSource && Dy == Tag.Dy &&
                      C.Dx >= Tag.Dx && C.Dx < Tag.Dx + Width;
        Out.push_back(Tagged ? 'T' : (Present ? '#' : '.'));
      }
      Out.push_back('\n');
    }
  }
  return Out;
}
