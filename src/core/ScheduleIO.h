//===- core/ScheduleIO.h - Compiled-stencil serialization -----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A text serialization of compiled stencils (the ".cmccode" format).
///
/// In the paper's system the compiler's entire output is *data*: the
/// register-access patterns (dynamic instruction parts) are computed at
/// compile time and loaded into the sequencer's scratch memory at run
/// time, where fixed microcode streams them. This module makes that
/// split concrete — a stencil can be compiled once, written out, and
/// later loaded and executed without the compiler. The loader
/// revalidates everything: the op streams are re-verified against the
/// pipeline model before they may run.
///
/// Format (line-oriented; '#' starts a comment):
///
///   cmccode 1
///   machine registers 32
///   stencil result R sources 2 X UPREV boundary circular zero
///   tap data 0 -1 0 sign + coeff array C1
///   tap bare sign - coeff scalar 0.5
///   width 4 dedicated 0 unit 0
///   sizes 1 3 5 5 5 5 3 1
///   prologue 16
///   L <reg> <dy> <dx> <src>
///   ...
///   phase 0 64
///   M <mulreg> <destreg> <addreg> <thread> <tap> <result> <start> <end>
///   S <reg> <result>
///   F <zeroreg>
///   ...
///   end
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CORE_SCHEDULEIO_H
#define CMCC_CORE_SCHEDULEIO_H

#include "core/Compiler.h"
#include "support/Error.h"
#include <string>

namespace cmcc {

/// Serializes \p Compiled (all widths) to the .cmccode text format.
std::string writeCompiledStencil(const CompiledStencil &Compiled,
                                 const MachineConfig &Config);

/// Parses a .cmccode document, reconstructing the compiled stencil. The
/// register plans are rebuilt from the stored ring sizes and every op
/// stream is checked against the stored counts and re-verified against
/// the pipeline model under \p Config; any mismatch is an error.
Expected<CompiledStencil> parseCompiledStencil(const std::string &Text,
                                               const MachineConfig &Config);

} // namespace cmcc

#endif // CMCC_CORE_SCHEDULEIO_H
