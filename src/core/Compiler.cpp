//===- core/Compiler.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"
#include "fortran/Lexer.h"
#include "fortran/Parser.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "sexpr/DefStencil.h"
#include "stencil/Recognizer.h"

using namespace cmcc;

const int ConvolutionCompiler::CandidateWidths[4] = {8, 4, 2, 1};

const WidthSchedule *CompiledStencil::widestFitting(int RemainingCols) const {
  for (const WidthSchedule &W : Widths)
    if (W.Width <= RemainingCols)
      return &W;
  return nullptr;
}

const WidthSchedule *CompiledStencil::withWidth(int Width) const {
  for (const WidthSchedule &W : Widths)
    if (W.Width == Width)
      return &W;
  return nullptr;
}

std::vector<int> CompiledStencil::availableWidths() const {
  std::vector<int> Out;
  Out.reserve(Widths.size());
  for (const WidthSchedule &W : Widths)
    Out.push_back(W.Width);
  return Out;
}

Expected<CompiledStencil> ConvolutionCompiler::compile(
    const StencilSpec &Spec) const {
  CMCC_SPAN("compiler.compile");
  static obs::Counter &Compiles =
      obs::Registry::process().counter("compiler.compiles");
  static obs::Histogram &CompileUs =
      obs::Registry::process().histogram("compiler.compile_us");
  Compiles.add(1);
  obs::ScopedLatencyUs Timer(CompileUs);
  if (Error E = Spec.validate())
    return E;
  if (Spec.distinctDataOffsets().empty())
    return makeError("statement has no shifted-data terms; the convolution "
                     "technique does not apply");

  CompiledStencil Out;
  Out.Spec = Spec;
  for (int Width : CandidateWidths) {
    Expected<WidthSchedule> Sched = buildWidthSchedule(Spec, Config, Width);
    if (!Sched) {
      Out.Notes.push_back(Sched.error().message());
      continue;
    }
    if (Error E = verifySchedule(*Sched, Spec, Config)) {
      // The tagged-register accumulator reuse is unprovable for this
      // pattern (e.g. three taps at the tagged cell). Fall back to
      // dedicated accumulator registers, spending Width more of the
      // register budget.
      Expected<WidthSchedule> Retry = buildWidthSchedule(
          Spec, Config, Width, /*DedicatedAccumulators=*/true);
      if (Retry && !verifySchedule(*Retry, Spec, Config)) {
        Out.Notes.push_back("width " + std::to_string(Width) +
                            " uses dedicated accumulators (" + E.message() +
                            ")");
        Out.Widths.push_back(std::move(*Retry));
        continue;
      }
      Out.Notes.push_back("width " + std::to_string(Width) +
                          " failed verification: " + E.message());
      continue;
    }
    Out.Widths.push_back(std::move(*Sched));
  }
  if (Out.Widths.empty()) {
    std::string Why = "no workable multistencil width";
    for (const std::string &Note : Out.Notes)
      Why += "; " + Note;
    return makeError(Why);
  }
  return Out;
}

std::optional<CompiledStencil>
ConvolutionCompiler::compileAssignment(std::string_view FortranSource,
                                       DiagnosticEngine &Diags) const {
  std::optional<fortran::AssignmentStmt> Stmt =
      fortran::Parser::assignmentFromSource(FortranSource, Diags);
  if (!Stmt)
    return std::nullopt;
  Recognizer R(Diags, RecognizerOpts);
  std::optional<StencilSpec> Spec = R.recognize(*Stmt);
  if (!Spec)
    return std::nullopt;
  Expected<CompiledStencil> Result = compile(*Spec);
  if (!Result) {
    Diags.error(Stmt->Location, Result.error().message());
    return std::nullopt;
  }
  return Result.takeValue();
}

std::optional<CompiledStencil>
ConvolutionCompiler::compileSubroutine(std::string_view FortranSource,
                                       DiagnosticEngine &Diags) const {
  std::optional<fortran::Subroutine> Sub =
      fortran::Parser::subroutineFromSource(FortranSource, Diags);
  if (!Sub)
    return std::nullopt;
  Recognizer R(Diags, RecognizerOpts);
  std::optional<StencilSpec> Spec = R.recognize(*Sub);
  if (!Spec)
    return std::nullopt;
  Expected<CompiledStencil> Result = compile(*Spec);
  if (!Result) {
    Diags.error(Sub->Location, Result.error().message());
    return std::nullopt;
  }
  return Result.takeValue();
}

int ConvolutionCompiler::ProcessedSubroutine::compiledCount() const {
  int N = 0;
  for (const std::optional<CompiledStencil> &S : Statements)
    if (S)
      ++N;
  return N;
}

std::optional<ConvolutionCompiler::ProcessedSubroutine>
ConvolutionCompiler::processSubroutine(std::string_view FortranSource,
                                       DiagnosticEngine &Diags) const {
  std::optional<fortran::Subroutine> Sub =
      fortran::Parser::subroutineFromSource(FortranSource, Diags);
  if (!Sub)
    return std::nullopt;
  return processUnit(std::move(*Sub), Diags);
}

std::optional<std::vector<ConvolutionCompiler::ProcessedSubroutine>>
ConvolutionCompiler::processProgram(std::string_view FortranSource,
                                    DiagnosticEngine &Diags) const {
  fortran::Lexer L(FortranSource, Diags);
  fortran::Parser P(L.lexAll(), Diags);
  std::optional<std::vector<fortran::Subroutine>> Units = P.parseProgram();
  if (!Units || Diags.hasErrors())
    return std::nullopt;
  std::vector<ProcessedSubroutine> Out;
  Out.reserve(Units->size());
  for (fortran::Subroutine &Sub : *Units) {
    std::optional<ProcessedSubroutine> Processed =
        processUnit(std::move(Sub), Diags);
    if (!Processed)
      return std::nullopt;
    Out.push_back(std::move(*Processed));
  }
  return Out;
}

std::optional<ConvolutionCompiler::ProcessedSubroutine>
ConvolutionCompiler::processUnit(fortran::Subroutine Sub,
                                 DiagnosticEngine &Diags) const {
  ProcessedSubroutine Out;
  Out.Statements.reserve(Sub.Body.size());
  for (const fortran::AssignmentStmt &Stmt : Sub.Body) {
    // Recognition failures are not unit errors: unflagged statements
    // silently fall back to the stock code generator; flagged ones earn
    // the paper's warning.
    DiagnosticEngine Scratch;
    Recognizer R(Scratch, RecognizerOpts);
    std::optional<StencilSpec> Spec = R.recognize(Stmt);
    std::optional<CompiledStencil> Compiled;
    std::string Why;
    if (Spec) {
      Expected<CompiledStencil> Result = compile(*Spec);
      if (Result)
        Compiled = Result.takeValue();
      else
        Why = Result.error().message();
    } else {
      for (const Diagnostic &D : Scratch.diagnostics())
        if (D.Severity == DiagnosticSeverity::Error) {
          Why = D.Message;
          break;
        }
    }
    if (!Compiled && Stmt.Flagged) {
      Diags.warning(Stmt.Location,
                    "statement is flagged !CMCC$ STENCIL but could not be "
                    "processed by the convolution technique: " +
                        (Why.empty() ? std::string("unrecognized form")
                                     : Why));
    }
    Out.Statements.push_back(std::move(Compiled));
  }
  Out.Unit = std::move(Sub);
  return Out;
}

std::optional<CompiledStencil>
ConvolutionCompiler::compileDefStencil(std::string_view Source,
                                       DiagnosticEngine &Diags) const {
  std::optional<sexpr::DefStencil> Def =
      sexpr::defStencilFromSource(Source, Diags);
  if (!Def)
    return std::nullopt;
  Expected<CompiledStencil> Result = compile(Def->Spec);
  if (!Result) {
    Diags.error({1, 1}, Result.error().message());
    return std::nullopt;
  }
  return Result.takeValue();
}
