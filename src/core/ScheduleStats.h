//===- core/ScheduleStats.h - Static schedule analysis --------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static analysis of a generated width schedule: the op mix of one
/// line, issue efficiency (useful flops per dynamic part), and the
/// fraction of the machine's multiply-add peak the inner loop can
/// sustain before per-line, strip, communication, and front-end
/// overheads. This is the number the paper's whole design maximizes —
/// wider multistencils exist exactly to raise it.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CORE_SCHEDULESTATS_H
#define CMCC_CORE_SCHEDULESTATS_H

#include "cm2/MachineConfig.h"
#include "core/Schedule.h"
#include "stencil/StencilSpec.h"
#include <string>

namespace cmcc {

/// Per-line static properties of one width's inner loop.
struct ScheduleStats {
  int Width = 0;
  int LoadsPerLine = 0;
  int MaddsPerLine = 0;
  int StoresPerLine = 0;
  int FillersPerLine = 0;
  int PrologueOps = 0;
  int UnrollFactor = 0;
  int RegistersUsed = 0;
  int ScratchParts = 0;
  /// Useful flops produced by one line (Width * usefulFlopsPerPoint).
  int UsefulFlopsPerLine = 0;

  int opsPerLine() const {
    return LoadsPerLine + MaddsPerLine + StoresPerLine + FillersPerLine;
  }

  /// Useful flops per issued dynamic part (the memory-bandwidth economy
  /// of §5.3: wider multistencils amortize loads and stores).
  double usefulFlopsPerOp() const;

  /// Fraction of issue slots doing multiply-adds.
  double maddFraction() const;

  /// The inner loop's ceiling as a fraction of the machine's
  /// multiply-add peak, accounting for the sequencer's cycles-per-op
  /// and the wasted first add of every chain.
  double peakFraction(const MachineConfig &Config) const;

  /// Analyzes one width of a compiled stencil.
  static ScheduleStats analyze(const WidthSchedule &Sched,
                               const StencilSpec &Spec);

  /// Multi-line human-readable summary.
  std::string str(const MachineConfig &Config) const;
};

} // namespace cmcc

#endif // CMCC_CORE_SCHEDULESTATS_H
