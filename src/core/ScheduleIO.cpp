//===- core/ScheduleIO.cpp ------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/ScheduleIO.h"
#include "core/RingBufferPlan.h"
#include "core/Verifier.h"
#include "support/Assert.h"
#include <cerrno>
#include <cstdio>
#include <limits>
#include <sstream>

using namespace cmcc;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

static void writeOp(std::string &Out, const DynamicPart &Op) {
  char Buffer[96];
  switch (Op.TheKind) {
  case DynamicPart::Kind::Load:
    std::snprintf(Buffer, sizeof(Buffer), "L %d %d %d %d\n", Op.DestReg,
                  Op.DataDy, Op.DataDx, Op.DataSource);
    break;
  case DynamicPart::Kind::Madd:
    std::snprintf(Buffer, sizeof(Buffer), "M %d %d %d %d %d %d %d %d\n",
                  Op.MulReg, Op.DestReg, Op.AddReg, Op.ThreadId,
                  Op.TapIndex, Op.ResultIndex, Op.ChainStart ? 1 : 0,
                  Op.ChainEnd ? 1 : 0);
    break;
  case DynamicPart::Kind::Store:
    std::snprintf(Buffer, sizeof(Buffer), "S %d %d\n", Op.MulReg,
                  Op.ResultIndex);
    break;
  case DynamicPart::Kind::Filler:
    std::snprintf(Buffer, sizeof(Buffer), "F %d\n", Op.DestReg);
    break;
  }
  Out += Buffer;
}

std::string cmcc::writeCompiledStencil(const CompiledStencil &Compiled,
                                       const MachineConfig &Config) {
  const StencilSpec &Spec = Compiled.Spec;
  std::string Out;
  Out += "cmccode 1\n";
  Out += "# " + Spec.str() + "\n";
  Out += "machine registers " + std::to_string(Config.NumRegisters) + "\n";

  Out += "stencil result " + Spec.Result + " sources " +
         std::to_string(Spec.sourceCount());
  for (int S = 0; S != Spec.sourceCount(); ++S)
    Out += " " + Spec.sourceName(S);
  Out += " boundary ";
  Out += Spec.BoundaryDim1 == BoundaryKind::Circular ? "circular" : "zero";
  Out += " ";
  Out += Spec.BoundaryDim2 == BoundaryKind::Circular ? "circular" : "zero";
  Out += "\n";

  for (const Tap &T : Spec.Taps) {
    Out += "tap ";
    if (T.HasData)
      Out += "data " + std::to_string(T.SourceIndex) + " " +
             std::to_string(T.At.Dy) + " " + std::to_string(T.At.Dx);
    else
      Out += "bare";
    Out += std::string(" sign ") + (T.Sign < 0 ? "-" : "+");
    if (T.Coeff.isArray()) {
      Out += " coeff array " + T.Coeff.Name;
    } else {
      char Buffer[48];
      std::snprintf(Buffer, sizeof(Buffer), " coeff scalar %.17g",
                    T.Coeff.Value);
      Out += Buffer;
    }
    Out += "\n";
  }

  for (const WidthSchedule &W : Compiled.Widths) {
    Out += "width " + std::to_string(W.Width) + " dedicated " +
           std::to_string(W.DedicatedAccumulators ? 1 : 0) + " unit " +
           std::to_string(W.Regs.hasUnitRegister() ? 1 : 0) + "\n";
    Out += "sizes";
    for (int S : W.Regs.plan().Sizes)
      Out += " " + std::to_string(S);
    Out += "\n";
    Out += "prologue " + std::to_string(W.Prologue.size()) + "\n";
    for (const DynamicPart &Op : W.Prologue)
      writeOp(Out, Op);
    for (size_t P = 0; P != W.Phases.size(); ++P) {
      Out += "phase " + std::to_string(P) + " " +
             std::to_string(W.Phases[P].size()) + "\n";
      for (const DynamicPart &Op : W.Phases[P])
        writeOp(Out, Op);
    }
  }
  Out += "end\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Line-based reader with one-token lookahead convenience.
class Reader {
public:
  explicit Reader(const std::string &Text) : Stream(Text) {}

  /// Reads the next non-empty, non-comment line into word tokens.
  /// Returns false at end of input.
  bool nextLine(std::vector<std::string> &Words) {
    std::string Line;
    while (std::getline(Stream, Line)) {
      ++LineNo;
      size_t Hash = Line.find('#');
      if (Hash != std::string::npos)
        Line.resize(Hash);
      Words.clear();
      std::istringstream WordStream(Line);
      std::string W;
      while (WordStream >> W)
        Words.push_back(W);
      if (!Words.empty())
        return true;
    }
    return false;
  }

  Error fail(const std::string &Message) const {
    return makeError("cmccode line " + std::to_string(LineNo) + ": " +
                     Message);
  }

private:
  std::istringstream Stream;
  int LineNo = 0;
};

bool toInt(const std::string &W, int *Out) {
  char *End = nullptr;
  errno = 0;
  long V = std::strtol(W.c_str(), &End, 10);
  if (End == W.c_str() || *End != '\0' || errno == ERANGE ||
      V < std::numeric_limits<int>::min() || V > std::numeric_limits<int>::max())
    return false;
  *Out = static_cast<int>(V);
  return true;
}

/// Parses one op line already split into words.
bool parseOp(const std::vector<std::string> &W, DynamicPart *Out) {
  auto Int = [&](size_t I, int *V) { return I < W.size() && toInt(W[I], V); };
  if (W[0] == "L" && W.size() == 5) {
    int Reg, Dy, Dx, Src;
    if (!Int(1, &Reg) || !Int(2, &Dy) || !Int(3, &Dx) || !Int(4, &Src))
      return false;
    *Out = DynamicPart::load(Reg, Dy, Dx, Src);
    return true;
  }
  if (W[0] == "M" && W.size() == 9) {
    int Mul, Dest, Add, Thread, Tap, Result, Start, End;
    if (!Int(1, &Mul) || !Int(2, &Dest) || !Int(3, &Add) ||
        !Int(4, &Thread) || !Int(5, &Tap) || !Int(6, &Result) ||
        !Int(7, &Start) || !Int(8, &End))
      return false;
    *Out = DynamicPart::madd(Mul, Dest, Add, Thread, Tap, Result,
                             Start != 0, End != 0);
    return true;
  }
  if (W[0] == "S" && W.size() == 3) {
    int Reg, Result;
    if (!Int(1, &Reg) || !Int(2, &Result))
      return false;
    *Out = DynamicPart::store(Reg, Result);
    return true;
  }
  if (W[0] == "F" && W.size() == 2) {
    int Zero;
    if (!Int(1, &Zero))
      return false;
    *Out = DynamicPart::filler(Zero);
    return true;
  }
  return false;
}

} // namespace

Expected<CompiledStencil>
cmcc::parseCompiledStencil(const std::string &Text,
                           const MachineConfig &Config) {
  Reader R(Text);
  std::vector<std::string> W;

  if (!R.nextLine(W) || W.size() != 2 || W[0] != "cmccode" || W[1] != "1")
    return R.fail("expected header 'cmccode 1'");

  if (!R.nextLine(W) || W.size() != 3 || W[0] != "machine" ||
      W[1] != "registers")
    return R.fail("expected 'machine registers N'");
  int Registers = 0;
  if (!toInt(W[2], &Registers) || Registers != Config.NumRegisters)
    return R.fail("schedule was compiled for a machine with " + W[2] +
                  " registers, not " +
                  std::to_string(Config.NumRegisters));

  // stencil result R sources N name... boundary b1 b2
  if (!R.nextLine(W) || W.size() < 7 || W[0] != "stencil" ||
      W[1] != "result" || W[3] != "sources")
    return R.fail("expected the 'stencil' line");
  CompiledStencil Out;
  Out.Spec.Result = W[2];
  int Sources = 0;
  if (!toInt(W[4], &Sources) || Sources < 0 ||
      W.size() != static_cast<size_t>(5 + Sources + 3))
    return R.fail("malformed source list");
  for (int S = 0; S != Sources; ++S) {
    if (S == 0)
      Out.Spec.Source = W[5 + S];
    else
      Out.Spec.ExtraSources.push_back(W[5 + S]);
  }
  size_t B = 5 + Sources;
  if (W[B] != "boundary")
    return R.fail("expected 'boundary'");
  auto ParseBoundary = [&](const std::string &Word,
                           BoundaryKind *Kind) -> bool {
    if (Word == "circular")
      *Kind = BoundaryKind::Circular;
    else if (Word == "zero")
      *Kind = BoundaryKind::Zero;
    else
      return false;
    return true;
  };
  if (!ParseBoundary(W[B + 1], &Out.Spec.BoundaryDim1) ||
      !ParseBoundary(W[B + 2], &Out.Spec.BoundaryDim2))
    return R.fail("bad boundary kind");

  // Taps, then width blocks, then "end".
  bool SawEnd = false;
  while (R.nextLine(W)) {
    if (W[0] == "end") {
      SawEnd = true;
      break;
    }
    if (W[0] == "tap") {
      Tap T;
      size_t I = 1;
      if (I < W.size() && W[I] == "data") {
        if (W.size() < I + 4)
          return R.fail("malformed data tap");
        int Src, Dy, Dx;
        if (!toInt(W[I + 1], &Src) || !toInt(W[I + 2], &Dy) ||
            !toInt(W[I + 3], &Dx))
          return R.fail("malformed data tap numbers");
        T.HasData = true;
        T.SourceIndex = Src;
        T.At = {Dy, Dx};
        I += 4;
      } else if (I < W.size() && W[I] == "bare") {
        T.HasData = false;
        I += 1;
      } else {
        return R.fail("tap must be 'data' or 'bare'");
      }
      if (I + 1 >= W.size() || W[I] != "sign")
        return R.fail("expected tap sign");
      T.Sign = W[I + 1] == "-" ? -1.0 : 1.0;
      I += 2;
      if (I + 2 > W.size() || W[I] != "coeff")
        return R.fail("expected tap coefficient");
      if (W[I + 1] == "array") {
        if (I + 3 > W.size())
          return R.fail("missing coefficient array name");
        T.Coeff = Coefficient::array(W[I + 2]);
      } else if (W[I + 1] == "scalar") {
        if (I + 3 > W.size())
          return R.fail("missing scalar coefficient value");
        T.Coeff = Coefficient::scalar(std::strtod(W[I + 2].c_str(), nullptr));
      } else {
        return R.fail("coefficient must be 'array' or 'scalar'");
      }
      Out.Spec.Taps.push_back(std::move(T));
      continue;
    }
    if (W[0] == "width") {
      if (Error E = Out.Spec.validate())
        return makeError("invalid stencil in cmccode: " + E.message());
      if (W.size() != 6 || W[2] != "dedicated" || W[4] != "unit")
        return R.fail("malformed width line");
      int Width = 0, Dedicated = 0, Unit = 0;
      if (!toInt(W[1], &Width) || !toInt(W[3], &Dedicated) ||
          !toInt(W[5], &Unit) || Width < 1)
        return R.fail("malformed width numbers");
      // A plan wider than the register file cannot have come from the
      // compiler; reject before Multistencil::build sizes anything to it.
      if (Width > Config.NumRegisters)
        return R.fail("width exceeds the register file");
      if ((Unit != 0) != Out.Spec.needsUnitRegister())
        return R.fail("unit-register flag disagrees with the stencil");

      // Ring sizes.
      if (!R.nextLine(W) || W.empty() || W[0] != "sizes")
        return R.fail("expected 'sizes'");
      Multistencil MS = Multistencil::build(Out.Spec, Width);
      if (static_cast<int>(W.size()) - 1 != MS.columnCount())
        return R.fail("ring-size count disagrees with the multistencil");
      RingBufferPlan Plan;
      long Lcm = 1;
      for (size_t I = 1; I != W.size(); ++I) {
        int S = 0;
        if (!toInt(W[I], &S) || S < 1)
          return R.fail("bad ring size");
        if (S < MS.column(static_cast<int>(I - 1)).extent())
          return R.fail("ring size below the column extent");
        Plan.Sizes.push_back(S);
        Plan.DataRegisters += S;
        // Ring buffers live in registers, so their total bounds both the
        // allocation and the unroll factor (the LCM of numbers summing to
        // at most NumRegisters is small). Oversized corrupt values would
        // otherwise drive giant allocations below.
        if (Plan.DataRegisters > Config.NumRegisters)
          return R.fail("ring sizes exceed the register file");
        Lcm = leastCommonMultiple(Lcm, S);
      }
      Plan.UnrollFactor = static_cast<int>(Lcm);

      RegisterAllocation Regs(MS, Plan, Unit != 0);
      WidthSchedule Sched(std::move(MS), std::move(Regs));
      Sched.Width = Width;
      Sched.DedicatedAccumulators = Dedicated != 0;

      // Prologue ops.
      if (!R.nextLine(W) || W.size() != 2 || W[0] != "prologue")
        return R.fail("expected 'prologue N'");
      int PrologueOps = 0;
      if (!toInt(W[1], &PrologueOps) || PrologueOps < 0)
        return R.fail("bad prologue count");
      for (int I = 0; I != PrologueOps; ++I) {
        DynamicPart Op;
        if (!R.nextLine(W) || !parseOp(W, &Op))
          return R.fail("bad prologue op");
        Sched.Prologue.push_back(Op);
      }

      // Phases.
      for (int P = 0; P != Plan.UnrollFactor; ++P) {
        if (!R.nextLine(W) || W.size() != 3 || W[0] != "phase")
          return R.fail("expected 'phase " + std::to_string(P) + " N'");
        int Index = 0, Ops = 0;
        if (!toInt(W[1], &Index) || Index != P || !toInt(W[2], &Ops) ||
            Ops < 0)
          return R.fail("bad phase header");
        LineSchedule Line;
        for (int I = 0; I != Ops; ++I) {
          DynamicPart Op;
          if (!R.nextLine(W) || !parseOp(W, &Op))
            return R.fail("bad phase op");
          Line.push_back(Op);
        }
        Sched.Phases.push_back(std::move(Line));
      }

      // Loaded code is untrusted until proven: re-verify against the
      // pipeline model.
      if (Error E = verifySchedule(Sched, Out.Spec, Config))
        return makeError("loaded width-" + std::to_string(Width) +
                         " schedule failed verification: " + E.message());
      Out.Widths.push_back(std::move(Sched));
      continue;
    }
    return R.fail("unexpected line '" + W[0] + "'");
  }

  if (!SawEnd)
    return makeError("cmccode input is truncated (missing 'end')");
  if (R.nextLine(W))
    return R.fail("trailing content after 'end'");
  if (Error E = Out.Spec.validate())
    return makeError("invalid stencil in cmccode: " + E.message());
  if (Out.Widths.empty())
    return makeError("cmccode contains no width schedules");
  return Out;
}
