//===- cm2/NodeGrid.h - 2-D node grid in the hypercube --------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arrangement of CM-2 nodes into a two-dimensional grid, embedded in
/// the machine's boolean hypercube with a Gray-code numbering so that
/// grid neighbors are hypercube neighbors (one address bit apart) — the
/// property the paper's grid primitives rely on to use the network
/// effectively.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CM2_NODEGRID_H
#define CMCC_CM2_NODEGRID_H

#include "cm2/MachineConfig.h"
#include <cstdint>

namespace cmcc {

/// A node's position in the 2-D grid.
struct NodeCoord {
  int Row = 0;
  int Col = 0;

  friend bool operator==(NodeCoord A, NodeCoord B) {
    return A.Row == B.Row && A.Col == B.Col;
  }
};

/// The four grid directions of the exchange primitive.
enum class Direction { North, South, West, East };

/// The node grid of one machine. Rows and columns must be powers of two
/// (they are sub-dimensions of the hypercube).
class NodeGrid {
public:
  NodeGrid(int Rows, int Cols);

  explicit NodeGrid(const MachineConfig &Config)
      : NodeGrid(Config.NodeRows, Config.NodeCols) {}

  int rows() const { return Rows; }
  int cols() const { return Cols; }
  int nodeCount() const { return Rows * Cols; }

  /// Linear node id, row-major.
  int nodeId(NodeCoord C) const { return C.Row * Cols + C.Col; }
  NodeCoord coordOf(int NodeId) const {
    return {NodeId / Cols, NodeId % Cols};
  }

  /// The grid neighbor in \p D, with wraparound (the grid is a torus; the
  /// paper's CSHIFT semantics are circular).
  NodeCoord neighbor(NodeCoord C, Direction D) const;

  /// The hypercube address of a node: Gray(row) in the high bits,
  /// Gray(col) in the low bits.
  uint32_t hypercubeAddress(NodeCoord C) const;

  /// Number of address bits (the hypercube dimension for this grid).
  int hypercubeDimension() const;

  /// True if two nodes are neighbors in the hypercube (addresses differ
  /// in exactly one bit).
  bool areHypercubeNeighbors(NodeCoord A, NodeCoord B) const;

  /// The binary-reflected Gray code of \p V.
  static uint32_t grayCode(uint32_t V) { return V ^ (V >> 1); }

private:
  int Rows, Cols;
  int RowBits, ColBits;
};

} // namespace cmcc

#endif // CMCC_CM2_NODEGRID_H
