//===- cm2/FloatingPointUnit.h - WTL3164 pipeline model -------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A functional, cycle-ordered model of one node's Weitek WTL3164
/// floating-point ALU executing a stream of dynamic instruction parts.
///
/// Pipeline timing follows the paper exactly: a multiplication started on
/// cycle k becomes an operand of the addition started on cycle k+2, and
/// the addition's result is stored into the destination register on cycle
/// k+4; a load's value reaches its register LoadLatencyCycles after
/// issue. Register reads observe only writes that have already landed, so
/// the paper's "just barely allows use of that data element before it is
/// first written" register reuse is *exercised*, not assumed: a schedule
/// that reuses a register one cycle too early computes wrong numbers and
/// is caught by the tests comparing against the reference evaluator.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CM2_FLOATINGPOINTUNIT_H
#define CMCC_CM2_FLOATINGPOINTUNIT_H

#include "cm2/Instruction.h"
#include "cm2/MachineConfig.h"
#include <array>
#include <cstdint>
#include <vector>

namespace cmcc {

/// Resolves the memory side of dynamic parts for the current line: the
/// sequencer generates these addresses at run time from half-strip
/// parameters, so the FPU model only sees values.
class FpuMemoryInterface {
public:
  virtual ~FpuMemoryInterface();

  /// Reads the element of source array \p Source at (Dy, Dx) relative to
  /// the current (line, strip-left) position, through the halo-padded
  /// storage. Source is 0 except in multi-source stencils.
  virtual float loadData(int Source, int Dy, int Dx) = 0;

  /// Reads the coefficient-stream operand for tap \p Tap of result
  /// \p Result in the current line (sign already folded in).
  virtual float loadCoefficient(int Tap, int Result) = 0;

  /// Writes a finished result element.
  virtual void storeResult(int Result, float Value) = 0;
};

/// One node's floating-point unit.
class FloatingPointUnit {
public:
  explicit FloatingPointUnit(const MachineConfig &Config);

  /// Clears registers, pending writes, and counters (start of a
  /// half-strip: the real microcode reloads everything anyway).
  void reset();

  /// Executes one dynamic-part sequence against \p Mem. May be called
  /// repeatedly (prologue, then one call per line). \p Mem may be any
  /// type providing loadData/loadCoefficient/storeResult — a virtual
  /// FpuMemoryInterface, or a concrete binding the compiler can inline
  /// (the executor's fast path). Both resolve the same operands, so the
  /// numerical behavior and every counter are identical; the tests
  /// assert it.
  template <typename MemoryT>
  void executeSequence(const LineSchedule &Ops, MemoryT &Mem);

  /// Applies all in-flight register writes (end of half-strip).
  void drainPipeline();

  /// Register file access for tests.
  float readRegister(int R) const { return Registers.at(R); }
  void pokeRegister(int R, float Value) { Registers.at(R) = Value; }

  //===--- Counters -------------------------------------------------------===//

  long cyclesExecuted() const { return CycleNow; }
  long maddsExecuted() const { return MaddCount; }
  long loadsExecuted() const { return LoadCount; }
  long storesExecuted() const { return StoreCount; }
  long fillersExecuted() const { return FillerCount; }

private:
  struct PendingWrite {
    long Cycle;
    uint8_t Reg;
    float Value;
  };

  void applyWritesUpTo(long Cycle);
  void scheduleWrite(long Cycle, uint8_t Reg, float Value);
  float readNow(uint8_t Reg) { return Registers[Reg]; }

  const MachineConfig &Config;
  std::array<float, 64> Registers{};
  /// In-flight writes, kept sorted by landing cycle; never more than a
  /// few entries deep (the pipeline is 4 cycles).
  std::vector<PendingWrite> Pending;
  /// Running accumulator of each interleaved multiply-add thread.
  std::array<float, 2> ChainSum{};
  long CycleNow = 0;
  long MaddCount = 0;
  long LoadCount = 0;
  long StoreCount = 0;
  long FillerCount = 0;
};

template <typename MemoryT>
void FloatingPointUnit::executeSequence(const LineSchedule &Ops,
                                        MemoryT &Mem) {
  const int WriteDelay = Config.MulToAddCycles + Config.AddToWriteCycles;
  for (const DynamicPart &Op : Ops) {
    long Cycle = CycleNow++;
    applyWritesUpTo(Cycle);
    switch (Op.TheKind) {
    case DynamicPart::Kind::Load: {
      float Value = Mem.loadData(Op.DataSource, Op.DataDy, Op.DataDx);
      scheduleWrite(Cycle + Config.LoadLatencyCycles, Op.DestReg, Value);
      ++LoadCount;
      break;
    }
    case DynamicPart::Kind::Madd: {
      float Data = readNow(Op.MulReg);
      float Coefficient = Mem.loadCoefficient(Op.TapIndex, Op.ResultIndex);
      float Product = Data * Coefficient;
      float &Sum = ChainSum[Op.ThreadId & 1];
      Sum = Op.ChainStart ? readNow(Op.AddReg) + Product : Sum + Product;
      scheduleWrite(Cycle + WriteDelay, Op.DestReg, Sum);
      ++MaddCount;
      break;
    }
    case DynamicPart::Kind::Store: {
      Mem.storeResult(Op.ResultIndex, readNow(Op.MulReg));
      ++StoreCount;
      break;
    }
    case DynamicPart::Kind::Filler: {
      // 0 * 0 + 0, stored into the zero register: if the zero register
      // were corrupted this keeps (and exposes) the corruption, exactly
      // like the hardware.
      float Z = readNow(Op.MulReg);
      float Value = Z * Z + readNow(Op.AddReg);
      scheduleWrite(Cycle + WriteDelay, Op.DestReg, Value);
      ++FillerCount;
      break;
    }
    }
  }
}

} // namespace cmcc

#endif // CMCC_CM2_FLOATINGPOINTUNIT_H
