//===- cm2/Timing.h - Cycle accounting and flop rates ---------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle breakdowns and the paper's figures of merit. The CM-2 is fully
/// synchronous SIMD: every node spends the same cycles, so one node's
/// cycle count *is* the machine's, and per-node rates extrapolate to
/// larger machines by multiplying by the node count (the paper's
/// extrapolation method, "quite reliable").
///
/// Only *useful* flops are counted (a 5-tap pattern counts 9 flops per
/// point, not 10 — the first add-to-zero is wasted), matching the paper's
/// accounting in §7.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CM2_TIMING_H
#define CMCC_CM2_TIMING_H

#include "cm2/MachineConfig.h"
#include <string>

namespace cmcc {

/// Cycle breakdown for one stencil invocation on one node (= the whole
/// synchronous machine).
struct CycleBreakdown {
  /// Dynamic-part issue cycles in the microcode inner loops (loads,
  /// multiply-adds, stores, fillers, pipeline-drain slack).
  long Compute = 0;
  /// Memory-pipe direction-reversal penalties.
  long PipeReversal = 0;
  /// Per-line sequencer bookkeeping (branch + address updates).
  long LineOverhead = 0;
  /// Half-strip start-ups (static-part latch, parameter setup).
  long StripStartup = 0;
  /// Halo exchange.
  long Communication = 0;

  long total() const {
    return Compute + PipeReversal + LineOverhead + StripStartup +
           Communication;
  }

  CycleBreakdown &operator+=(const CycleBreakdown &O);
};

/// The outcome of timing one stencil computation for a number of
/// iterations.
class TimingReport {
public:
  CycleBreakdown Cycles;
  /// Useful flops per iteration per node (the paper's counting).
  long UsefulFlopsPerNodePerIteration = 0;
  long Iterations = 1;
  /// Host front-end overhead per iteration, in seconds.
  double HostSecondsPerIteration = 0.0;
  /// The machine this was measured on.
  int Nodes = 1;
  double ClockMHz = 7.0;

  /// Machine seconds for one iteration (cycles / clock + host overhead).
  double secondsPerIteration() const;

  /// Total elapsed seconds for all iterations.
  double elapsedSeconds() const { return secondsPerIteration() * Iterations; }

  /// Sustained rate over the whole machine, in Mflops.
  double measuredMflops() const;

  /// Sustained rate in Gflops.
  double measuredGflops() const { return measuredMflops() / 1000.0; }

  /// The paper's extrapolation: per-node subgrids (and therefore cycle
  /// counts) are unchanged on a bigger machine, so the rate scales by
  /// the node ratio.
  double extrapolatedGflops(int TargetNodes) const;

  /// Fraction of cycles spent in useful multiply-add issue slots.
  double computeFraction() const;

  /// Multi-line human-readable description.
  std::string str() const;
};

} // namespace cmcc

#endif // CMCC_CM2_TIMING_H
