//===- cm2/Sequencer.h - Instruction-sequencer cost model -----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CM-2 instruction sequencer driving one microcode half-strip
/// invocation (§4.3): it latches the static instruction part once,
/// streams the dynamic parts from scratch data memory — generating a
/// parallel-memory address for each through its ALU, the dominant
/// per-op cost — and pays per-line bookkeeping (the conditional branch
/// cannot share a cycle with a dynamic-part issue) plus the memory-pipe
/// reversal penalties between the load, multiply-add, and store blocks.
///
/// The class turns a width schedule and a line count into a cycle
/// breakdown; the run-time library sums it over the strip plan.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CM2_SEQUENCER_H
#define CMCC_CM2_SEQUENCER_H

#include "cm2/MachineConfig.h"
#include "cm2/Timing.h"

namespace cmcc {

/// Cost model of one sequencer (every node's sequencer is the same
/// physical unit on a SIMD machine).
class Sequencer {
public:
  explicit Sequencer(const MachineConfig &Config) : Config(Config) {}

  /// Cycles to run one half-strip: \p PrologueOps ring-fill loads, then
  /// \p Lines lines of \p OpsPerLine dynamic parts each (of which
  /// \p MaddsPerLine are multiply-adds — they cost an extra issue slot
  /// on the WTL3132, which has no usable chaining).
  CycleBreakdown halfStripCycles(int PrologueOps, int Lines, int OpsPerLine,
                                 int MaddsPerLine) const;

  /// True when \p Parts dynamic parts fit the scratch data memory.
  bool fitsScratch(int Parts) const {
    return Parts <= Config.ScratchMemoryParts;
  }

  const MachineConfig &machine() const { return Config; }

private:
  MachineConfig Config;
};

} // namespace cmcc

#endif // CMCC_CM2_SEQUENCER_H
