//===- cm2/NodeGrid.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "cm2/NodeGrid.h"
#include "support/Assert.h"
#include <cassert>

using namespace cmcc;

/// Returns log2 of \p V, asserting V is a power of two.
static int log2Exact(int V) {
  assert(V > 0 && (V & (V - 1)) == 0 && "grid side must be a power of two");
  int Bits = 0;
  while ((1 << Bits) < V)
    ++Bits;
  return Bits;
}

NodeGrid::NodeGrid(int Rows, int Cols)
    : Rows(Rows), Cols(Cols), RowBits(log2Exact(Rows)),
      ColBits(log2Exact(Cols)) {}

NodeCoord NodeGrid::neighbor(NodeCoord C, Direction D) const {
  switch (D) {
  case Direction::North:
    return {(C.Row - 1 + Rows) % Rows, C.Col};
  case Direction::South:
    return {(C.Row + 1) % Rows, C.Col};
  case Direction::West:
    return {C.Row, (C.Col - 1 + Cols) % Cols};
  case Direction::East:
    return {C.Row, (C.Col + 1) % Cols};
  }
  CMCC_UNREACHABLE("unknown direction");
}

uint32_t NodeGrid::hypercubeAddress(NodeCoord C) const {
  assert(C.Row >= 0 && C.Row < Rows && C.Col >= 0 && C.Col < Cols &&
         "coordinate out of grid");
  return (grayCode(static_cast<uint32_t>(C.Row)) << ColBits) |
         grayCode(static_cast<uint32_t>(C.Col));
}

int NodeGrid::hypercubeDimension() const { return RowBits + ColBits; }

bool NodeGrid::areHypercubeNeighbors(NodeCoord A, NodeCoord B) const {
  uint32_t Diff = hypercubeAddress(A) ^ hypercubeAddress(B);
  return Diff != 0 && (Diff & (Diff - 1)) == 0;
}
