//===- cm2/FloatingPointUnit.cpp ------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "cm2/FloatingPointUnit.h"
#include "support/Assert.h"
#include <algorithm>

using namespace cmcc;

FpuMemoryInterface::~FpuMemoryInterface() = default;

FloatingPointUnit::FloatingPointUnit(const MachineConfig &Config)
    : Config(Config) {
  assert(Config.NumRegisters <= static_cast<int>(Registers.size()) &&
         "register file model too small");
}

void FloatingPointUnit::reset() {
  Registers.fill(0.0f);
  Pending.clear();
  ChainSum.fill(0.0f);
  CycleNow = 0;
  MaddCount = 0;
  LoadCount = 0;
  StoreCount = 0;
  FillerCount = 0;
}

void FloatingPointUnit::applyWritesUpTo(long Cycle) {
  if (Pending.empty())
    return;
  size_t Kept = 0;
  for (PendingWrite &W : Pending) {
    if (W.Cycle <= Cycle)
      Registers[W.Reg] = W.Value;
    else
      Pending[Kept++] = W;
  }
  Pending.resize(Kept);
}

void FloatingPointUnit::scheduleWrite(long Cycle, uint8_t Reg, float Value) {
  // Two writes landing on the same register must land in issue order;
  // keeping the vector unsorted but scanning fully preserves that because
  // applyWritesUpTo applies in insertion order.
  Pending.push_back({Cycle, Reg, Value});
}

void FloatingPointUnit::drainPipeline() {
  long Last = CycleNow;
  for (const PendingWrite &W : Pending)
    Last = std::max(Last, W.Cycle);
  applyWritesUpTo(Last);
  CycleNow = Last;
}

// executeSequence is a template (see the header): the executor's fast
// path instantiates it with a concrete, non-virtual memory binding.
