//===- cm2/FloatingPointUnit.cpp ------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "cm2/FloatingPointUnit.h"
#include "support/Assert.h"
#include <algorithm>

using namespace cmcc;

FpuMemoryInterface::~FpuMemoryInterface() = default;

FloatingPointUnit::FloatingPointUnit(const MachineConfig &Config)
    : Config(Config) {
  assert(Config.NumRegisters <= static_cast<int>(Registers.size()) &&
         "register file model too small");
}

void FloatingPointUnit::reset() {
  Registers.fill(0.0f);
  Pending.clear();
  ChainSum.fill(0.0f);
  CycleNow = 0;
  MaddCount = 0;
  LoadCount = 0;
  StoreCount = 0;
  FillerCount = 0;
}

void FloatingPointUnit::applyWritesUpTo(long Cycle) {
  if (Pending.empty())
    return;
  size_t Kept = 0;
  for (PendingWrite &W : Pending) {
    if (W.Cycle <= Cycle)
      Registers[W.Reg] = W.Value;
    else
      Pending[Kept++] = W;
  }
  Pending.resize(Kept);
}

void FloatingPointUnit::scheduleWrite(long Cycle, uint8_t Reg, float Value) {
  // Two writes landing on the same register must land in issue order;
  // keeping the vector unsorted but scanning fully preserves that because
  // applyWritesUpTo applies in insertion order.
  Pending.push_back({Cycle, Reg, Value});
}

void FloatingPointUnit::drainPipeline() {
  long Last = CycleNow;
  for (const PendingWrite &W : Pending)
    Last = std::max(Last, W.Cycle);
  applyWritesUpTo(Last);
  CycleNow = Last;
}

void FloatingPointUnit::executeSequence(const LineSchedule &Ops,
                                        FpuMemoryInterface &Mem) {
  const int WriteDelay = Config.MulToAddCycles + Config.AddToWriteCycles;
  for (const DynamicPart &Op : Ops) {
    long Cycle = CycleNow++;
    applyWritesUpTo(Cycle);
    switch (Op.TheKind) {
    case DynamicPart::Kind::Load: {
      float Value = Mem.loadData(Op.DataSource, Op.DataDy, Op.DataDx);
      scheduleWrite(Cycle + Config.LoadLatencyCycles, Op.DestReg, Value);
      ++LoadCount;
      break;
    }
    case DynamicPart::Kind::Madd: {
      float Data = readNow(Op.MulReg);
      float Coefficient = Mem.loadCoefficient(Op.TapIndex, Op.ResultIndex);
      float Product = Data * Coefficient;
      float &Sum = ChainSum[Op.ThreadId & 1];
      Sum = Op.ChainStart ? readNow(Op.AddReg) + Product : Sum + Product;
      scheduleWrite(Cycle + WriteDelay, Op.DestReg, Sum);
      ++MaddCount;
      break;
    }
    case DynamicPart::Kind::Store: {
      Mem.storeResult(Op.ResultIndex, readNow(Op.MulReg));
      ++StoreCount;
      break;
    }
    case DynamicPart::Kind::Filler: {
      // 0 * 0 + 0, stored into the zero register: if the zero register
      // were corrupted this keeps (and exposes) the corruption, exactly
      // like the hardware.
      float Z = readNow(Op.MulReg);
      float Value = Z * Z + readNow(Op.AddReg);
      scheduleWrite(Cycle + WriteDelay, Op.DestReg, Value);
      ++FillerCount;
      break;
    }
    }
  }
}
