//===- cm2/Instruction.h - Static/dynamic instruction parts ---*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instructions to the CM-2 floating-point units are split in two: the
/// *static part* (operation codes, latched once on the processor boards)
/// and the *dynamic part* (load/store control and internal register
/// addresses, issued one per cycle from the sequencer's scratch data
/// memory). The convolution compiler's whole output is a stream of
/// dynamic parts; the static part is fixed per microcode routine.
///
/// Memory operands are symbolic: the sequencer generates the actual
/// addresses at run time from half-strip parameters, so a dynamic part
/// only records *what* to address (a data element of the shifted array, a
/// coefficient stream element, or a result slot) relative to the current
/// line and strip.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CM2_INSTRUCTION_H
#define CMCC_CM2_INSTRUCTION_H

#include <cstdint>
#include <string>
#include <vector>

namespace cmcc {

/// One dynamic instruction part; the FPU consumes exactly one per cycle.
struct DynamicPart {
  enum class Kind : uint8_t {
    /// Move a source-array element from (padded) memory into a register.
    Load,
    /// Chained multiply-add: multiply register MulReg by the memory
    /// operand (a coefficient element, or the 1.0 register for bare
    /// terms) and feed the pipelined adder.
    Madd,
    /// Store register SrcReg to the result array.
    Store,
    /// A wasted cycle: the FPU multiplies zero by zero, adds zero, and
    /// stores the result into the reserved zero register — there is no
    /// way not to store the result (paper §5.3).
    Filler,
  };

  Kind TheKind = Kind::Filler;

  /// Madd: the register holding the data element. Store: the register
  /// holding the finished result.
  uint8_t MulReg = 0;

  /// Load: destination register. Madd: the accumulator register that
  /// receives the add result on cycle k+4. Filler: the zero register.
  uint8_t DestReg = 0;

  /// Madd: which of the two interleaved multiply-add threads this op
  /// belongs to (paper §5.3 computes results in pairs).
  uint8_t ThreadId = 0;

  /// Madd with ChainStart, and Filler: the register whose value begins
  /// the accumulation (the reserved zero register). The simulator reads
  /// it — rather than assuming 0.0 — so corruption of the zero register
  /// is observable, as it would be on the real machine.
  uint8_t AddReg = 0;

  /// Madd: true when this is the first multiply of a result (its add
  /// consumes the zero register); false when it chains.
  bool ChainStart = false;

  /// Madd: true when this is the last multiply of a result.
  bool ChainEnd = false;

  /// Madd: the tap this operation evaluates (indexes StencilSpec::Taps);
  /// selects the coefficient stream. Sign is folded in by the executor.
  int16_t TapIndex = -1;

  /// Madd/Store: which of the line's w results this op contributes to.
  int16_t ResultIndex = -1;

  /// Load: data element offset relative to (current line, strip left
  /// column).
  int16_t DataDy = 0;
  int16_t DataDx = 0;

  /// Load: which source array the element comes from (multi-source
  /// extension; always 0 for the paper's single-variable form).
  int8_t DataSource = 0;

  //===--- Constructors ---------------------------------------------------===//

  static DynamicPart load(int DestReg, int Dy, int Dx, int Source = 0) {
    DynamicPart P;
    P.TheKind = Kind::Load;
    P.DestReg = static_cast<uint8_t>(DestReg);
    P.DataDy = static_cast<int16_t>(Dy);
    P.DataDx = static_cast<int16_t>(Dx);
    P.DataSource = static_cast<int8_t>(Source);
    return P;
  }

  static DynamicPart madd(int MulReg, int DestReg, int ZeroReg, int Thread,
                          int Tap, int Result, bool Start, bool End) {
    DynamicPart P;
    P.TheKind = Kind::Madd;
    P.MulReg = static_cast<uint8_t>(MulReg);
    P.DestReg = static_cast<uint8_t>(DestReg);
    P.AddReg = static_cast<uint8_t>(ZeroReg);
    P.ThreadId = static_cast<uint8_t>(Thread);
    P.TapIndex = static_cast<int16_t>(Tap);
    P.ResultIndex = static_cast<int16_t>(Result);
    P.ChainStart = Start;
    P.ChainEnd = End;
    return P;
  }

  static DynamicPart store(int SrcReg, int Result) {
    DynamicPart P;
    P.TheKind = Kind::Store;
    P.MulReg = static_cast<uint8_t>(SrcReg);
    P.ResultIndex = static_cast<int16_t>(Result);
    return P;
  }

  static DynamicPart filler(int ZeroReg) {
    DynamicPart P;
    P.TheKind = Kind::Filler;
    P.MulReg = static_cast<uint8_t>(ZeroReg);
    P.DestReg = static_cast<uint8_t>(ZeroReg);
    P.AddReg = static_cast<uint8_t>(ZeroReg);
    return P;
  }

  /// Compact rendering for dumps and tests, e.g. "madd r5*coef[3]->r9".
  std::string str() const;
};

/// The static instruction part: fixed per microcode routine. Only its
/// identity matters to the model (it is latched once per half-strip).
struct StaticPart {
  std::string RoutineName;
};

/// The per-line dynamic-part sequence for one phase of the unrolled
/// register-access pattern.
using LineSchedule = std::vector<DynamicPart>;

} // namespace cmcc

#endif // CMCC_CM2_INSTRUCTION_H
