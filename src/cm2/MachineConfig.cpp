//===- cm2/MachineConfig.cpp ----------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "cm2/MachineConfig.h"
#include "support/StringUtils.h"

using namespace cmcc;

double MachineConfig::peakGflops() const {
  return nodeCount() * flopsPerMaddCycle() * ClockMHz * 1e6 / 1e9;
}

std::string MachineConfig::summary() const {
  return std::to_string(nodeCount()) + " nodes (" + std::to_string(NodeRows) +
         "x" + std::to_string(NodeCols) + "), " + formatFixed(ClockMHz, 1) +
         " MHz, " + (Fpu == FpuKind::WTL3164 ? "WTL3164" : "WTL3132") +
         ", peak " + formatFixed(peakGflops(), 2) + " Gflops";
}

MachineConfig MachineConfig::testMachine16() {
  MachineConfig C;
  C.NodeRows = 4;
  C.NodeCols = 4;
  return C;
}

MachineConfig MachineConfig::fullMachine2048() {
  MachineConfig C;
  C.NodeRows = 64;
  C.NodeCols = 32;
  return C;
}

MachineConfig MachineConfig::withNodeGrid(int Rows, int Cols) {
  MachineConfig C;
  C.NodeRows = Rows;
  C.NodeCols = Cols;
  return C;
}
