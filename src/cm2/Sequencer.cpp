//===- cm2/Sequencer.cpp --------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "cm2/Sequencer.h"
#include "obs/Metrics.h"
#include <cmath>

using namespace cmcc;

CycleBreakdown Sequencer::halfStripCycles(int PrologueOps, int Lines,
                                          int OpsPerLine,
                                          int MaddsPerLine) const {
  static obs::Counter &CostEvals =
      obs::Registry::process().counter("cm2.halfstrip_cost_evals");
  CostEvals.add(1);
  CycleBreakdown Cycles;
  long Ops = static_cast<long>(PrologueOps) +
             static_cast<long>(Lines) * OpsPerLine;
  // The WTL3132 cannot chain: every multiply-add needs a separate
  // multiply and add issue.
  if (Config.Fpu == FpuKind::WTL3132)
    Ops += static_cast<long>(Lines) * MaddsPerLine;
  Cycles.Compute =
      static_cast<long>(std::llround(Ops * Config.SequencerCyclesPerOp));
  Cycles.LineOverhead = static_cast<long>(Lines) *
                        Config.PerLineOverheadCycles;
  Cycles.PipeReversal = static_cast<long>(Lines) * 2L *
                        Config.PipeReversalCycles;
  Cycles.StripStartup =
      Config.HalfStripStartupCycles + Config.StaticPartLatchCycles;
  return Cycles;
}
