//===- cm2/GridComm.h - Halo-exchange cost model --------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle costs of the interprocessor communication step (§4.1, §5.1).
///
/// The paper microcodes a *new* grid primitive that organizes nodes (not
/// bit-serial processors) into a 2-D grid and lets every node exchange
/// with all four neighbors simultaneously; a second step handles corner
/// (diagonal) data and may be skipped for cornerless stencils. The
/// pre-existing primitives moved data in a single direction per call over
/// the processor grid and are kept as the legacy baseline for ablation
/// A1. The SIMD machine cannot overlap communication with computation, so
/// these cycles are pure overhead added to every iteration.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_CM2_GRIDCOMM_H
#define CMCC_CM2_GRIDCOMM_H

#include "cm2/MachineConfig.h"

namespace cmcc {

/// Which communication implementation to cost.
enum class CommPrimitive {
  NodeGridExchange, ///< The paper's new 4-neighbors-at-once primitive.
  LegacyNews,       ///< Old processor-grid, one direction per call.
};

/// Inputs of one halo exchange.
struct HaloExchangeShape {
  int SubgridRows = 0;
  int SubgridCols = 0;
  /// All four sides are padded by the same amount — the maximum border
  /// width — per the paper's simplification (§5.1).
  int BorderWidth = 0;
  /// Whether the third (corner/diagonal) step is required.
  bool NeedsCorners = false;
};

/// Cycles for one complete halo exchange with \p Primitive.
///
/// The edge step of the new primitive transfers BorderWidth rows/columns
/// to all four neighbors simultaneously, so its per-element term is
/// proportional to the *longer* side (the paper: "the communications time
/// will be proportional to the length of the longer side"). The corner
/// step moves BorderWidth^2 elements. The legacy primitive serializes the
/// four directions.
long haloExchangeCycles(const MachineConfig &Config,
                        const HaloExchangeShape &Shape,
                        CommPrimitive Primitive);

} // namespace cmcc

#endif // CMCC_CM2_GRIDCOMM_H
