//===- cm2/Instruction.cpp ------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "cm2/Instruction.h"
#include "support/Assert.h"

using namespace cmcc;

std::string DynamicPart::str() const {
  switch (TheKind) {
  case Kind::Load:
    return "load data(" + std::to_string(DataDy) + "," +
           std::to_string(DataDx) + ")->r" + std::to_string(DestReg);
  case Kind::Madd: {
    std::string Out = "madd r" + std::to_string(MulReg) + "*coef[" +
                      std::to_string(TapIndex) + "]->r" +
                      std::to_string(DestReg) + " res" +
                      std::to_string(ResultIndex) + " t" +
                      std::to_string(ThreadId);
    if (ChainStart)
      Out += " start";
    if (ChainEnd)
      Out += " end";
    return Out;
  }
  case Kind::Store:
    return "store r" + std::to_string(MulReg) + "->res" +
           std::to_string(ResultIndex);
  case Kind::Filler:
    return "filler->r" + std::to_string(DestReg);
  }
  CMCC_UNREACHABLE("unknown dynamic-part kind");
}
