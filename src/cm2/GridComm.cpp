//===- cm2/GridComm.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "cm2/GridComm.h"
#include "obs/Metrics.h"
#include "support/Assert.h"
#include <algorithm>

using namespace cmcc;

long cmcc::haloExchangeCycles(const MachineConfig &Config,
                              const HaloExchangeShape &Shape,
                              CommPrimitive Primitive) {
  static obs::Counter &CostEvals =
      obs::Registry::process().counter("cm2.halo_cost_evals");
  CostEvals.add(1);
  if (Shape.BorderWidth == 0)
    return 0;

  long LongerSide =
      std::max(Shape.SubgridRows, Shape.SubgridCols) + 2L * Shape.BorderWidth;
  long EdgeElements = static_cast<long>(Shape.BorderWidth) * LongerSide;
  long CornerElements =
      static_cast<long>(Shape.BorderWidth) * Shape.BorderWidth;

  switch (Primitive) {
  case CommPrimitive::NodeGridExchange: {
    // One start-up, all four directions in flight together: the element
    // term is the maximum over directions (rows vs columns), i.e. the
    // longer side.
    long Cycles = Config.CommStartupCycles +
                  EdgeElements * Config.CommCyclesPerElement;
    if (Shape.NeedsCorners)
      Cycles += Config.CornerStartupCycles +
                CornerElements * Config.CommCyclesPerElement;
    return Cycles;
  }
  case CommPrimitive::LegacyNews: {
    // Four sequential one-direction transfers over the processor grid;
    // corner data takes two further relayed steps. Each element is also
    // slower by the legacy factor (processor-level addressing).
    double PerElement =
        Config.CommCyclesPerElement * Config.LegacyCommElementFactor;
    long RowElements =
        static_cast<long>(Shape.BorderWidth) *
        (Shape.SubgridCols + 2L * Shape.BorderWidth);
    long ColElements =
        static_cast<long>(Shape.BorderWidth) *
        (Shape.SubgridRows + 2L * Shape.BorderWidth);
    long Cycles = 4L * Config.LegacyCommStartupCycles +
                  static_cast<long>((2.0 * RowElements + 2.0 * ColElements) *
                                    PerElement);
    if (Shape.NeedsCorners)
      Cycles += 2L * Config.LegacyCommStartupCycles +
                static_cast<long>(4.0 * CornerElements * PerElement);
    return Cycles;
  }
  }
  CMCC_UNREACHABLE("unknown communication primitive");
}
