//===- cm2/Timing.cpp -----------------------------------------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//

#include "cm2/Timing.h"
#include "support/StringUtils.h"

using namespace cmcc;

CycleBreakdown &CycleBreakdown::operator+=(const CycleBreakdown &O) {
  Compute += O.Compute;
  PipeReversal += O.PipeReversal;
  LineOverhead += O.LineOverhead;
  StripStartup += O.StripStartup;
  Communication += O.Communication;
  return *this;
}

double TimingReport::secondsPerIteration() const {
  double MachineSeconds = static_cast<double>(Cycles.total()) /
                          (ClockMHz * 1e6);
  return MachineSeconds + HostSecondsPerIteration;
}

double TimingReport::measuredMflops() const {
  double Seconds = secondsPerIteration();
  if (Seconds <= 0.0)
    return 0.0;
  double FlopsPerIteration =
      static_cast<double>(UsefulFlopsPerNodePerIteration) * Nodes;
  return FlopsPerIteration / Seconds / 1e6;
}

double TimingReport::extrapolatedGflops(int TargetNodes) const {
  if (Nodes == 0)
    return 0.0;
  return measuredGflops() * (static_cast<double>(TargetNodes) / Nodes);
}

double TimingReport::computeFraction() const {
  long Total = Cycles.total();
  if (Total == 0)
    return 0.0;
  return static_cast<double>(Cycles.Compute) / static_cast<double>(Total);
}

std::string TimingReport::str() const {
  std::string Out;
  Out += "iterations:        " + std::to_string(Iterations) + "\n";
  Out += "nodes:             " + std::to_string(Nodes) + "\n";
  Out += "cycles/iteration:  " + std::to_string(Cycles.total()) + "\n";
  Out += "  compute:         " + std::to_string(Cycles.Compute) + "\n";
  Out += "  pipe reversal:   " + std::to_string(Cycles.PipeReversal) + "\n";
  Out += "  line overhead:   " + std::to_string(Cycles.LineOverhead) + "\n";
  Out += "  strip startup:   " + std::to_string(Cycles.StripStartup) + "\n";
  Out += "  communication:   " + std::to_string(Cycles.Communication) + "\n";
  Out += "host s/iteration:  " + formatFixed(HostSecondsPerIteration, 6) +
         "\n";
  Out += "elapsed seconds:   " + formatFixed(elapsedSeconds(), 2) + "\n";
  Out += "measured Mflops:   " + formatFixed(measuredMflops(), 1) + "\n";
  return Out;
}
