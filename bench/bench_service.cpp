//===- bench/bench_service.cpp - Serving-layer throughput -----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment S1: cold-cache vs warm-cache serving throughput on the
/// paper's five T1 patterns. Cold submissions pay the full front end +
/// recognition + planning + verification pipeline; warm submissions are
/// resolved through the source memo and the plan cache, so the only work
/// left is streaming the cached register patterns — the paper's
/// compile-once amortization measured as host throughput.
///
/// Simulated timing is identical in both phases (the cache can never
/// change plans, hence never cycles); what shrinks is host seconds per
/// job, reported per pattern and as a cold/warm speedup.
///
/// Experiment S2: the price of the fault-injection seams (DESIGN.md
/// §5f). With nothing armed a probe is one relaxed load + branch; this
/// benchmark measures that cost directly, counts how many probes one
/// warm job actually crosses, and ASSERTS the product stays under 1% of
/// the job's host time — the contract that lets the probes live on the
/// serving path permanently.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "service/StencilService.h"
#include "support/FaultInjection.h"
#include <chrono>

using namespace cmccbench;

namespace {

constexpr int SubRows = 64, SubCols = 64;
constexpr int Iterations = 100;
constexpr int WarmRounds = 50;

double hostSeconds(StencilService &Service,
                   const StencilService::JobRequest &Req, int Count) {
  auto Begin = std::chrono::steady_clock::now();
  std::vector<StencilService::JobId> Ids;
  Ids.reserve(Count);
  for (int I = 0; I != Count; ++I)
    Ids.push_back(Service.submit(Req));
  for (StencilService::JobId Id : Ids) {
    StencilService::JobResult R = Service.wait(Id);
    if (!R.Ok) {
      std::fprintf(stderr, "bench_service: job failed: %s\n",
                   R.Message.c_str());
      std::abort();
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Begin)
      .count();
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);

  MachineConfig Config = MachineConfig::testMachine16();
  StencilService::Options Opts;
  Opts.Workers = 4;
  StencilService Service(Config, Opts);

  TextTable T;
  BenchJsonWriter Json("service");
  T.setHeader({"pattern", "cold(ms)", "warm(ms/job)", "speedup",
               "sim Mflops"});

  double ColdTotal = 0.0, WarmTotal = 0.0;
  for (PatternId Id : allPatterns()) {
    StencilService::JobRequest Req;
    Req.Kind = StencilService::SourceKind::FortranSubroutine;
    Req.Source = patternFortranSource(Id);
    Req.SubRows = SubRows;
    Req.SubCols = SubCols;
    Req.Iterations = Iterations;

    // Cold: first submission ever — front end, recognition, planning,
    // verification, then execution.
    double Cold = hostSeconds(Service, Req, 1);
    // Warm: the same source streamed WarmRounds more times. The service
    // must resolve every one through the memo + cache (asserted below).
    double Warm = hostSeconds(Service, Req, WarmRounds) / WarmRounds;
    ColdTotal += Cold;
    WarmTotal += Warm;

    StencilService::JobResult Probe = Service.wait(Service.submit(Req));
    T.addRow({patternName(Id), formatFixed(Cold * 1e3, 3),
              formatFixed(Warm * 1e3, 3), formatFixed(Cold / Warm, 1),
              formatFixed(Probe.Report.measuredMflops(), 1)});
    Json.addRow(std::string("S1/cold/") + patternName(Id),
                Probe.Report.measuredMflops(),
                Probe.Report.elapsedSeconds(), Cold);
    Json.addRow(std::string("S1/warm/") + patternName(Id),
                Probe.Report.measuredMflops(),
                Probe.Report.elapsedSeconds(), Warm);
  }

  ServiceStats Stats = Service.stats();
  size_t Patterns = allPatterns().size();
  if (Stats.CompilesPerformed != static_cast<long>(Patterns) ||
      Stats.FrontEndRuns != static_cast<long>(Patterns)) {
    std::fprintf(stderr,
                 "bench_service: warm path ran the compiler (%ld compiles, "
                 "%ld front-end runs for %zu patterns)\n",
                 Stats.CompilesPerformed, Stats.FrontEndRuns, Patterns);
    return 1;
  }

  // S2: disabled-probe overhead on the serving hot path.
  fault::Registry &Faults = fault::Registry::process();
  Faults.reset(); // Nothing armed: measure the disabled path itself.
  constexpr long ProbeReps = 20'000'000;
  long Fired = 0;
  auto ProbeBegin = std::chrono::steady_clock::now();
  for (long I = 0; I != ProbeReps; ++I)
    Fired += fault::probe("bench.disabled") ? 1 : 0;
  double ProbeNs = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - ProbeBegin)
                       .count() /
                   ProbeReps * 1e9;
  if (Fired != 0) {
    std::fprintf(stderr, "bench_service: disarmed probe fired\n");
    return 1;
  }

  // How many probes does one warm job cross? A rate-0 wildcard arms the
  // counters without ever firing (armed probes are slow, so this run
  // only counts — the timing denominator is the unarmed warm mean).
  StencilService::JobRequest CountReq;
  CountReq.Kind = StencilService::SourceKind::FortranSubroutine;
  CountReq.Source = patternFortranSource(allPatterns().front());
  CountReq.SubRows = SubRows;
  CountReq.SubCols = SubCols;
  CountReq.Iterations = Iterations;
  fault::Rule CountAll;
  CountAll.Site = "*";
  CountAll.Rate = 0.0;
  Faults.arm(CountAll);
  constexpr int CountJobs = 10;
  hostSeconds(Service, CountReq, CountJobs);
  double ProbesPerJob =
      static_cast<double>(Faults.totalProbes()) / CountJobs;
  Faults.reset();

  const double WarmJobSeconds = WarmTotal / Patterns;
  const double OverheadFraction =
      ProbesPerJob * ProbeNs * 1e-9 / WarmJobSeconds;
  std::printf("\n=== S2: fault-probe overhead ===\n"
              "disabled probe: %.2f ns; %.0f probes per warm job; "
              "overhead %.5f%% of a %.3f ms job\n",
              ProbeNs, ProbesPerJob, OverheadFraction * 100.0,
              WarmJobSeconds * 1e3);
  if (OverheadFraction >= 0.01) {
    std::fprintf(stderr,
                 "bench_service: disabled fault probes cost %.3f%% of a warm "
                 "job (budget is 1%%)\n",
                 OverheadFraction * 100.0);
    return 1;
  }

  std::string Path = Json.write();
  std::printf("\n=== S1: serving throughput, %d warm rounds per pattern, "
              "%dx%d subgrids on 16 nodes ===\n\n%s\n"
              "cold total %.3f ms, warm mean %.3f ms/job, amortized "
              "speedup %.1fx\n\n%s\n%s%s\n",
              WarmRounds, SubRows, SubCols, T.str().c_str(),
              ColdTotal * 1e3, WarmTotal / Patterns * 1e3,
              ColdTotal / Patterns / (WarmTotal / Patterns),
              Stats.str().c_str(), Path.empty() ? "" : "wrote ",
              Path.c_str());
  benchmark::Shutdown();
  return 0;
}
