//===- bench/bench_timetile.cpp - Time-tiled execution --------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment K (DESIGN.md §5k): what time tiling buys.
///
/// K1 — exchange traffic. A depth-k tile sends one wide halo (k*r rows)
/// where the step-by-step program sends k narrow ones. Both programs
/// run functionally on the cm2 backend with the halo.exchanges counter
/// read around each. On a scalar-coefficient stencil the source is the
/// only exchanged array, so the reduction is exactly k; on the seismic
/// kernel (Cross9R2, nine coefficient arrays) the tiled run also pays a
/// one-time wide exchange per coefficient array — arrays the untiled
/// program never exchanges at all, because only chained steps read
/// coefficients outside the owned region. Both columns are reported:
/// the win is per *source* step, the coefficient cost amortizes only
/// across the tile.
///
/// K2 — the modeled (simulated CM-2) cost per timestep versus depth.
/// On exchange-light stencils the per-run overhead amortizes across the
/// k chained steps and the per-step cost dips at moderate depths, then
/// climbs as edge recompute takes over — the non-monotone curve the
/// autotuner exists to sweep. Coefficient-array stencils pay wide
/// coefficient halos the untiled program never sends, pushing their
/// best depth toward 1. The host wall-clock of the native backend is
/// reported alongside, honestly: on a small shared-memory host the
/// redundant edge compute outweighs memcpy-cheap exchanges, so host
/// seconds grow with k — the tile pays off where exchanges have real
/// latency, which is what the simulated column models.
///
/// K3 — plan batching. The same warm fingerprint burst through a
/// non-batching service and a batching one (--batch-window-ms); grouped
/// execution amortizes plan resolution, and the ServiceStats counters
/// printed alongside prove the grouping actually happened.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "backends/cm2/Cm2Backend.h"
#include "obs/Metrics.h"
#include "runtime/TimeTile.h"
#include "service/StencilService.h"
#include <chrono>

using namespace cmccbench;

namespace {

constexpr int Depths[] = {1, 2, 4, 8};

/// Functional argument set for one side of a K1 run.
struct TileArrays {
  TileArrays(const MachineConfig &Config, const StencilSpec &Spec,
             int SubRows, int SubCols, uint64_t Seed)
      : Grid(Config), R(Grid, SubRows, SubCols) {
    Args.Result = &R;
    auto MakeArray = [&](uint64_t S) {
      auto A = std::make_unique<DistributedArray>(Grid, SubRows, SubCols);
      Array2D G(R.globalRows(), R.globalCols());
      G.fillRandom(S);
      A->scatter(G);
      Owned.push_back(std::move(A));
      return Owned.back().get();
    };
    Args.Source = MakeArray(Seed);
    std::vector<std::string> Coeffs = Spec.coefficientArrayNames();
    for (size_t I = 0; I != Coeffs.size(); ++I)
      Args.Coefficients[Coeffs[I]] = MakeArray(Seed + 5000 + I);
  }

  NodeGrid Grid;
  DistributedArray R;
  std::vector<std::unique_ptr<DistributedArray>> Owned;
  StencilArguments Args;
};

double seconds(std::chrono::steady_clock::time_point Begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Begin)
      .count();
}

/// Five-point cross with scalar coefficients: the source is the only
/// exchanged array, so K1's reduction is exactly k on it.
StencilSpec scalarCross() {
  StencilSpec Spec;
  Spec.Result = "R";
  Spec.Source = "X";
  const int Offsets[][2] = {{0, 0}, {0, 1}, {0, -1}, {1, 0}, {-1, 0}};
  const float Coeffs[] = {0.5f, 0.125f, 0.125f, 0.125f, 0.125f};
  for (int I = 0; I != 5; ++I) {
    Tap T;
    T.At.Dy = Offsets[I][0];
    T.At.Dx = Offsets[I][1];
    T.Coeff = Coefficient::scalar(Coeffs[I]);
    Spec.Taps.push_back(std::move(T));
  }
  return Spec;
}

/// K1: halo.exchanges deltas, stepwise vs tiled, per depth and spec.
void benchExchangeTraffic(BenchJsonWriter &Json) {
  MachineConfig Config = MachineConfig::testMachine16();
  obs::Counter &Exchanges =
      obs::Registry::process().counter("halo.exchanges");
  constexpr int Sub = 32;

  struct Subject {
    const char *Name;
    CompiledStencil Compiled;
  };
  ConvolutionCompiler CC(Config);
  Expected<CompiledStencil> Scalar = CC.compile(scalarCross());
  if (!Scalar) {
    std::fprintf(stderr, "bench_timetile: scalar-cross failed to compile\n");
    std::abort();
  }
  Subject Subjects[] = {
      {"scalar-cross", *Scalar},
      {patternName(PatternId::Cross9R2),
       compilePattern(Config, PatternId::Cross9R2)},
  };

  Cm2Backend Backend(Config);
  TextTable T;
  T.setHeader({"stencil", "depth k", "stepwise exchanges",
               "tiled exchanges", "reduction", "tiled host(s)"});
  for (const Subject &S : Subjects) {
    for (int K : Depths) {
      // Step-by-step: k runs, result copied back into the source
      // between them — the program a user would write without tiling.
      TileArrays Base(Config, S.Compiled.Spec, Sub, Sub, 42);
      long Before = Exchanges.value();
      for (int Step = 0; Step != K; ++Step) {
        if (Step > 0)
          Base.Owned[0]->scatter(Base.R.gather());
        Expected<TimingReport> R = Backend.run(S.Compiled, Base.Args, 1);
        if (!R) {
          std::fprintf(stderr, "bench_timetile: stepwise run failed: %s\n",
                       R.error().message().c_str());
          std::abort();
        }
      }
      long Stepwise = Exchanges.value() - Before;

      TileArrays Tiled(Config, S.Compiled.Spec, Sub, Sub, 42);
      RunOptions RO;
      RO.TimeTile = K;
      Before = Exchanges.value();
      auto Begin = std::chrono::steady_clock::now();
      Expected<TimingReport> Run = Backend.run(S.Compiled, Tiled.Args, RO);
      double TiledHostS = seconds(Begin);
      long TiledExchanges = Exchanges.value() - Before;
      if (!Run) {
        std::fprintf(stderr, "bench_timetile: tiled run failed: %s\n",
                     Run.error().message().c_str());
        std::abort();
      }

      double Reduction =
          static_cast<double>(Stepwise) / static_cast<double>(TiledExchanges);
      T.addRow({S.Name, std::to_string(K), std::to_string(Stepwise),
                std::to_string(TiledExchanges),
                formatFixed(Reduction, 1) + "x",
                formatFixed(TiledHostS, 4)});
      Json.addRow("K1/exchanges/" + std::string(S.Name) +
                      "/k=" + std::to_string(K),
                  Run->measuredMflops(), Run->elapsedSeconds(), TiledHostS);
      Json.addScalar("exchange_reduction_" + std::string(S.Name) + "_k" +
                         std::to_string(K),
                     Reduction);
    }
  }
  std::printf("=== K1: exchange traffic on 16 nodes, %dx%d subgrids ===\n"
              "(coefficient arrays are exchanged only by tiled runs — "
              "chained steps read them outside the owned region)\n\n%s\n",
              Sub, Sub, T.str().c_str());
}

/// K2a: the modeled per-timestep cost versus depth on the cm2 backend —
/// simulated communication cycles per step fall as the exchange startup
/// amortizes across the tile.
void benchSimulatedDepth(BenchJsonWriter &Json) {
  MachineConfig Config = MachineConfig::testMachine16();
  Cm2Backend Backend(Config);
  constexpr int Sub = 64;

  ConvolutionCompiler CC(Config);
  Expected<CompiledStencil> Scalar = CC.compile(scalarCross());
  if (!Scalar) {
    std::fprintf(stderr, "bench_timetile: scalar-cross failed to compile\n");
    std::abort();
  }
  struct Subject {
    const char *Name;
    CompiledStencil Compiled;
  };
  Subject Subjects[] = {
      {"scalar-cross", *Scalar},
      {patternName(PatternId::Cross9R2),
       compilePattern(Config, PatternId::Cross9R2)},
  };

  TextTable T;
  T.setHeader({"stencil", "depth k", "comm cycles/step",
               "compute cycles/step", "sim us/step"});
  for (const Subject &S : Subjects) {
    double BaseCommPerStep = 0.0, LastCommPerStep = 0.0;
    for (int K : Depths) {
      RunOptions RO;
      RO.TimeTile = K;
      Expected<TimingReport> R = Backend.timeOnly(S.Compiled, Sub, Sub, RO);
      if (!R) {
        std::fprintf(stderr,
                     "bench_timetile: depth-%d timeOnly failed: %s\n", K,
                     R.error().message().c_str());
        std::abort();
      }
      double CommPerStep = static_cast<double>(R->Cycles.Communication) / K;
      double ComputePerStep = static_cast<double>(R->Cycles.Compute) / K;
      double UsPerStep = R->secondsPerIteration() * 1e6 / K;
      if (K == 1)
        BaseCommPerStep = CommPerStep;
      LastCommPerStep = CommPerStep;
      T.addRow({S.Name, std::to_string(K), formatFixed(CommPerStep, 0),
                formatFixed(ComputePerStep, 0), formatFixed(UsPerStep, 1)});
      Json.addRow("K2a/sim/" + std::string(S.Name) +
                      "/k=" + std::to_string(K),
                  R->measuredMflops() / K, R->secondsPerIteration(), -1.0);
      Json.addScalar("sim_comm_cycles_per_step_" + std::string(S.Name) +
                         "_k" + std::to_string(K),
                     CommPerStep);
    }
    if (LastCommPerStep > 0.0)
      Json.addScalar("sim_comm_reduction_" + std::string(S.Name) + "_k8",
                     BaseCommPerStep / LastCommPerStep);
  }
  std::printf("=== K2a: modeled per-timestep cost vs depth, cm2 backend, "
              "%dx%d subgrids ===\n(per-step cost dips where per-run "
              "overhead amortizes faster than edge recompute grows; "
              "coefficient-array wide halos work against the tile — the "
              "curve is exactly what the autotuner sweeps)\n\n%s\n",
              Sub, Sub, T.str().c_str());
}

/// K2b: native-backend serving wall-clock versus tile depth on the
/// seismic kernel. Every depth runs the same timestep budget. Host
/// seconds grow with k here (redundant edge compute is real, exchange
/// latency is a memcpy) — the honest counterpoint to K2a's model.
void benchServiceDepth(BenchJsonWriter &Json) {
  constexpr int Sub = 64;
  constexpr int StepBudget = 64; // Timesteps per job, split as Iters * k.
  constexpr int Jobs = 24;

  TextTable T;
  T.setHeader({"depth k", "jobs/s", "ksteps/s", "host(s)"});
  for (int K : Depths) {
    StencilService::Options Opts;
    Opts.Workers = 2;
    Opts.Backend = "native";
    Opts.TimeTile = K;
    StencilService Service(MachineConfig::testMachine16(), Opts);

    StencilService::JobRequest Req;
    Req.Kind = StencilService::SourceKind::FortranSubroutine;
    Req.Source = patternFortranSource(PatternId::Cross9R2);
    Req.SubRows = Sub;
    Req.SubCols = Sub;
    Req.Iterations = StepBudget / K;

    // Warm: compile once, and let the first job page everything in.
    StencilService::JobResult Warm = Service.wait(Service.submit(Req));
    if (!Warm.Ok || Warm.TimeTileUsed != K) {
      std::fprintf(stderr,
                   "bench_timetile: depth-%d warmup failed (used %d): %s\n",
                   K, Warm.TimeTileUsed, Warm.Message.c_str());
      std::abort();
    }

    auto Begin = std::chrono::steady_clock::now();
    std::vector<StencilService::JobId> Ids;
    for (int I = 0; I != Jobs; ++I)
      Ids.push_back(Service.submit(Req));
    for (StencilService::JobId Id : Ids)
      if (StencilService::JobResult R = Service.wait(Id); !R.Ok) {
        std::fprintf(stderr, "bench_timetile: job failed: %s\n",
                     R.Message.c_str());
        std::abort();
      }
    double HostS = seconds(Begin);

    double StepsPerS = static_cast<double>(Jobs) * Req.Iterations * K / HostS;
    T.addRow({std::to_string(K), formatFixed(Jobs / HostS, 1),
              formatFixed(StepsPerS / 1e3, 2), formatFixed(HostS, 3)});
    Json.addRow("K2b/seismic/native/k=" + std::to_string(K), -1.0, -1.0,
                HostS);
    Json.addScalar("seismic_steps_per_s_k" + std::to_string(K), StepsPerS);
  }
  std::printf("=== K2b: seismic kernel (%s) serving wall-clock vs depth, "
              "native backend, %d timesteps/job ===\n\n%s\n",
              patternName(PatternId::Cross9R2), StepBudget, T.str().c_str());
}

/// K3: the same warm burst, unbatched vs batched.
void benchBatching(BenchJsonWriter &Json) {
  constexpr int Jobs = 48;
  constexpr int Sub = 64;

  TextTable T;
  T.setHeader({"window(ms)", "jobs/s", "host(s)", "batches",
               "batched jobs"});
  for (long WindowMs : {0L, 8L}) {
    StencilService::Options Opts;
    Opts.Workers = 1; // One worker: every queued job is claimable.
    Opts.BatchWindowMs = WindowMs;
    StencilService Service(MachineConfig::testMachine16(), Opts);

    StencilService::JobRequest Req;
    Req.Kind = StencilService::SourceKind::FortranSubroutine;
    Req.Source = patternFortranSource(PatternId::Diamond13);
    Req.SubRows = Sub;
    Req.SubCols = Sub;
    Req.Iterations = 10;
    StencilService::JobResult Warm = Service.wait(Service.submit(Req));
    if (!Warm.Ok) {
      std::fprintf(stderr, "bench_timetile: batch warmup failed: %s\n",
                   Warm.Message.c_str());
      std::abort();
    }

    auto Begin = std::chrono::steady_clock::now();
    std::vector<StencilService::JobId> Ids;
    for (int I = 0; I != Jobs; ++I)
      Ids.push_back(Service.submit(Req));
    for (StencilService::JobId Id : Ids)
      if (StencilService::JobResult R = Service.wait(Id); !R.Ok) {
        std::fprintf(stderr, "bench_timetile: batch job failed: %s\n",
                     R.Message.c_str());
        std::abort();
      }
    double HostS = seconds(Begin);

    ServiceStats S = Service.stats();
    if (WindowMs > 0 && S.BatchedJobs == 0)
      std::fprintf(stderr, "bench_timetile: warning: window %ldms grouped "
                           "nothing (loaded host?)\n",
                   WindowMs);
    T.addRow({std::to_string(WindowMs), formatFixed(Jobs / HostS, 1),
              formatFixed(HostS, 3), std::to_string(S.Batches),
              std::to_string(S.BatchedJobs)});
    Json.addRow("K3/batch/window=" + std::to_string(WindowMs) + "ms", -1.0,
                -1.0, HostS);
    Json.addScalar("batched_jobs_window" + std::to_string(WindowMs),
                   static_cast<double>(S.BatchedJobs));
  }
  std::printf("=== K3: warm %s burst (%d jobs), unbatched vs batched "
              "===\n\n%s\n",
              patternName(PatternId::Diamond13), Jobs, T.str().c_str());
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  std::printf("built with: %s\n\n", benchProvenance().c_str());

  BenchJsonWriter Json("timetile");
  benchExchangeTraffic(Json);
  benchSimulatedDepth(Json);
  benchServiceDepth(Json);
  benchBatching(Json);

  std::string Path = Json.write();
  if (!Path.empty())
    std::printf("wrote %s\n", Path.c_str());
  benchmark::Shutdown();
  return 0;
}
