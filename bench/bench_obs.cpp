//===- bench/bench_obs.cpp - Observability overhead benchmark -*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment O1: the observability layer's cost and its zero-effect
/// guarantee.
///
///   1. Measures the disabled-span cost (one relaxed load + branch) in
///      nanoseconds per span.
///   2. Runs the same functional stencil execution with tracing OFF and
///      with tracing ON, and asserts the results are bitwise identical —
///      every result array float and every simulated cycle total.
///   3. Estimates the disabled-path overhead of a real run: spans the
///      traced run recorded x the measured per-span disabled cost,
///      as a percentage of the untraced run's host wall-clock. The
///      bench fails if that exceeds 2% (DESIGN.md 5d's bound).
///   4. Repeats the exercise over the wire: warm networked jobs through
///      a real unix-socket server, untraced vs traced, plus the cost of
///      an untraced ScopedTraceContext (what every request pays when no
///      client sends a trace id). The disabled-probe overhead of the
///      wire path must also stay under 2%.
///
/// Writes BENCH_obs.json with the overhead scalars.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "net/Client.h"
#include "net/Server.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "obs/TraceContext.h"
#include "service/StencilService.h"
#include <cstring>
#include <filesystem>
#include <unistd.h>

using namespace cmccbench;

namespace {

constexpr int SubRows = 64, SubCols = 64;

/// Nanoseconds one *disabled* span costs, measured over many spans.
double measureDisabledSpanNs() {
  if (obs::Trace::active()) {
    std::fprintf(stderr, "bench_obs: tracing must be off for the "
                         "disabled-path measurement\n");
    std::abort();
  }
  constexpr long Spans = 20'000'000;
  auto Begin = std::chrono::steady_clock::now();
  for (long I = 0; I != Spans; ++I) {
    CMCC_SPAN("bench.disabled");
    benchmark::DoNotOptimize(I);
  }
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(End - Begin).count() /
         Spans;
}

/// One functional execution's complete observable output: every result
/// float plus the simulated timing report.
struct RunOutput {
  std::vector<float> ResultBits;
  TimingReport Report;
  double HostSeconds = 0.0;
};

RunOutput runFunctional(const MachineConfig &Config,
                        const CompiledStencil &Compiled) {
  NodeGrid Grid(Config);
  DistributedArray Result(Grid, SubRows, SubCols);
  DistributedArray Source(Grid, SubRows, SubCols);
  Array2D GlobalSource(Result.globalRows(), Result.globalCols());
  GlobalSource.fillRandom(1);
  Source.scatter(GlobalSource);
  StencilArguments Args;
  Args.Result = &Result;
  Args.Source = &Source;
  std::vector<std::unique_ptr<DistributedArray>> Coefficients;
  int Index = 0;
  for (const std::string &Name : Compiled.Spec.coefficientArrayNames()) {
    auto Coeff =
        std::make_unique<DistributedArray>(Grid, SubRows, SubCols);
    Array2D Global(Result.globalRows(), Result.globalCols());
    Global.fillRandom(1000 + Index++);
    Coeff->scatter(Global);
    Args.Coefficients[Name] = Coeff.get();
    Coefficients.push_back(std::move(Coeff));
  }

  Executor Exec(Config);
  auto Begin = std::chrono::steady_clock::now();
  Expected<TimingReport> Report = Exec.run(Compiled, Args, 1);
  auto End = std::chrono::steady_clock::now();
  if (!Report) {
    std::fprintf(stderr, "bench_obs: functional run failed: %s\n",
                 Report.error().message().c_str());
    std::abort();
  }

  RunOutput Out;
  Out.Report = *Report;
  Out.HostSeconds = std::chrono::duration<double>(End - Begin).count();
  Out.ResultBits.reserve(static_cast<size_t>(Grid.nodeCount()) * SubRows *
                         SubCols);
  for (int Id = 0; Id != Grid.nodeCount(); ++Id) {
    const Array2D &Sub = Result.subgrid(Grid.coordOf(Id));
    for (int R = 0; R != SubRows; ++R)
      for (int C = 0; C != SubCols; ++C)
        Out.ResultBits.push_back(Sub.at(R, C));
  }
  return Out;
}

/// Nanoseconds an untraced ScopedTraceContext costs — the price every
/// server request pays when the client sent no trace id.
double measureZeroContextScopeNs() {
  constexpr long Scopes = 20'000'000;
  auto Begin = std::chrono::steady_clock::now();
  for (long I = 0; I != Scopes; ++I) {
    obs::ScopedTraceContext Scope(0, 0);
    benchmark::DoNotOptimize(I);
  }
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(End - Begin).count() /
         Scopes;
}

/// One service + server + client over a unix socket, for the wire-path
/// overhead measurement.
struct WireBench {
  std::unique_ptr<StencilService> Service;
  std::unique_ptr<cmcc::net::Server> Server;
  std::unique_ptr<cmcc::net::Client> Client;
  std::string SocketPath;

  explicit WireBench(const MachineConfig &Config) {
    SocketPath = (std::filesystem::temp_directory_path() /
                  ("bench_obs_" + std::to_string(::getpid()) + ".sock"))
                     .string();
    Service = std::make_unique<StencilService>(Config,
                                               StencilService::Options{});
    cmcc::net::Endpoint Ep;
    Ep.Transport = cmcc::net::Endpoint::Kind::Unix;
    Ep.Path = SocketPath;
    cmcc::net::Server::Options NOpts;
    NOpts.Listen.push_back(Ep);
    NOpts.Banner = "bench_obs";
    Server = std::make_unique<cmcc::net::Server>(*Service, NOpts);
    if (Error E = Server->start()) {
      std::fprintf(stderr, "bench_obs: server start failed: %s\n",
                   E.message().c_str());
      std::abort();
    }
    cmcc::net::Client::Options COpts;
    COpts.Target = Ep;
    Expected<std::unique_ptr<cmcc::net::Client>> C =
        cmcc::net::Client::connect(COpts);
    if (!C) {
      std::fprintf(stderr, "bench_obs: client connect failed: %s\n",
                   C.error().message().c_str());
      std::abort();
    }
    Client = C.takeValue();
  }

  ~WireBench() {
    Client.reset();
    Server->stop();
    std::filesystem::remove(SocketPath);
  }

  /// One warm timing-only job, submit through wait; returns host
  /// seconds for the round trip.
  double runJob(uint64_t TraceId) {
    cmcc::net::SubmitRequest Req;
    Req.Kind =
        static_cast<uint8_t>(StencilService::SourceKind::FortranAssignment);
    Req.Source = "R = C1*CSHIFT(X,1,-1) + C2*X";
    Req.SubRows = Req.SubCols = 16;
    Req.Iterations = 1;
    Req.TraceId = TraceId;
    Req.ParentSpan = TraceId ? obs::mintSpanId() : 0;
    auto Begin = std::chrono::steady_clock::now();
    Expected<cmcc::net::SubmitResponse> S = Client->submit(Req);
    if (!S) {
      std::fprintf(stderr, "bench_obs: submit failed: %s\n",
                   S.error().message().c_str());
      std::abort();
    }
    Expected<cmcc::net::WaitResponse> W = Client->wait(S->JobId);
    if (!W || !W->Ok) {
      std::fprintf(stderr, "bench_obs: wire job failed\n");
      std::abort();
    }
    auto End = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(End - Begin).count();
  }
};

bool bitwiseEqual(const RunOutput &A, const RunOutput &B) {
  if (A.ResultBits.size() != B.ResultBits.size())
    return false;
  if (std::memcmp(A.ResultBits.data(), B.ResultBits.data(),
                  A.ResultBits.size() * sizeof(float)) != 0)
    return false;
  return A.Report.Cycles.total() == B.Report.Cycles.total() &&
         A.Report.Cycles.Communication == B.Report.Cycles.Communication &&
         A.Report.elapsedSeconds() == B.Report.elapsedSeconds();
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);

  MachineConfig Config = MachineConfig::testMachine16();
  CompiledStencil Compiled = compilePattern(Config, PatternId::Square9);

  //===--- 1. Disabled-span microbenchmark --------------------------------===//
  double DisabledNs = measureDisabledSpanNs();

  //===--- 2. Tracing off vs on: bitwise-identical output -----------------===//
  obs::Counter &SpanCounter =
      obs::Registry::process().counter("obs.trace_spans");

  RunOutput Off = runFunctional(Config, Compiled);
  // Second untraced run: establishes that repeat runs are deterministic
  // at all (otherwise the traced comparison below would prove nothing).
  RunOutput Off2 = runFunctional(Config, Compiled);
  if (!bitwiseEqual(Off, Off2)) {
    std::fprintf(stderr,
                 "bench_obs: untraced runs are not deterministic\n");
    return 1;
  }

  long SpansBefore = SpanCounter.value();
  std::string TracePath = "bench_obs_trace.json";
  if (!obs::Trace::start(TracePath)) {
    std::fprintf(stderr, "bench_obs: could not start trace\n");
    return 1;
  }
  RunOutput On = runFunctional(Config, Compiled);
  if (!obs::Trace::stop()) {
    std::fprintf(stderr, "bench_obs: trace flush failed\n");
    return 1;
  }
  long SpansRecorded = SpanCounter.value() - SpansBefore;

  if (!bitwiseEqual(Off, On)) {
    std::fprintf(stderr,
                 "bench_obs: tracing changed results or cycle totals\n");
    return 1;
  }

  //===--- 4. Wire-path disabled-probe overhead ---------------------------===//
  // Warm networked jobs through a real unix-socket server. The traced
  // leg counts the spans a wire job records end to end (client submit,
  // server dispatch, service stages); the untraced leg prices what the
  // instrumentation costs when no one is tracing — per-span disabled
  // cost plus the untraced ScopedTraceContext every request installs —
  // as a fraction of the measured round-trip latency.
  double ZeroCtxNs = measureZeroContextScopeNs();
  constexpr int WireJobs = 200;
  double WireUntracedSeconds = 0.0, WireTracedSeconds = 0.0;
  long WireSpans = 0;
  {
    WireBench Wire(Config);
    Wire.runJob(0); // Warm: compile once, prime the plan cache.
    for (int I = 0; I != WireJobs; ++I)
      WireUntracedSeconds += Wire.runJob(0);

    std::string WireTracePath = "bench_obs_wire_trace.json";
    long Before = SpanCounter.value();
    if (!obs::Trace::start(WireTracePath)) {
      std::fprintf(stderr, "bench_obs: could not start wire trace\n");
      return 1;
    }
    for (int I = 0; I != WireJobs; ++I)
      WireTracedSeconds += Wire.runJob(obs::mintTraceId());
    if (!obs::Trace::stop()) {
      std::fprintf(stderr, "bench_obs: wire trace flush failed\n");
      return 1;
    }
    WireSpans = SpanCounter.value() - Before;
    std::remove(WireTracePath.c_str());
  }
  double WireJobUs = WireUntracedSeconds / WireJobs * 1e6;
  double WireSpansPerJob = static_cast<double>(WireSpans) / WireJobs;
  // Disabled-path cost per job: every span site at its disabled price,
  // plus the request's zero-context scope.
  double WireOverheadPct = 100.0 *
                           (WireSpansPerJob * DisabledNs + ZeroCtxNs) /
                           (WireJobUs * 1000.0);
  bool WireOverheadOk = WireOverheadPct < 2.0;

  //===--- 3. Disabled-path overhead bound --------------------------------===//
  // Every span the traced run recorded is a CMCC_SPAN site the untraced
  // run paid the disabled cost for; their total as a fraction of the
  // untraced wall-clock is the instrumentation overhead with tracing
  // off.
  double OverheadSeconds = SpansRecorded * DisabledNs * 1e-9;
  double OverheadPct = 100.0 * OverheadSeconds / Off.HostSeconds;
  bool OverheadOk = OverheadPct < 2.0;

  TextTable T;
  T.setHeader({"measurement", "value"});
  T.addRow({"disabled span cost", formatFixed(DisabledNs, 2) + " ns"});
  T.addRow({"spans in traced run", std::to_string(SpansRecorded)});
  T.addRow({"untraced host seconds", formatFixed(Off.HostSeconds, 4)});
  T.addRow({"disabled-path overhead", formatFixed(OverheadPct, 4) + " %"});
  T.addRow({"results tracing on vs off", "bitwise identical"});
  T.addRow({"sim cycles tracing on vs off", "identical (" +
                std::to_string(Off.Report.Cycles.total()) + ")"});
  T.addRow({"untraced scope cost", formatFixed(ZeroCtxNs, 2) + " ns"});
  T.addRow({"wire job latency (warm)", formatFixed(WireJobUs, 1) + " us"});
  T.addRow({"spans per wire job", formatFixed(WireSpansPerJob, 1)});
  T.addRow({"wire disabled-path overhead",
            formatFixed(WireOverheadPct, 4) + " %"});

  BenchJsonWriter Json("obs");
  Json.addRow("O1/square9_64x64_functional",
              Off.Report.measuredMflops(), Off.Report.elapsedSeconds(),
              Off.HostSeconds);
  Json.addScalar("disabled_span_ns", DisabledNs);
  Json.addScalar("spans_per_run", static_cast<double>(SpansRecorded));
  Json.addScalar("disabled_overhead_pct", OverheadPct);
  Json.addScalar("zero_context_scope_ns", ZeroCtxNs);
  Json.addScalar("wire_job_us", WireJobUs);
  Json.addScalar("wire_spans_per_job", WireSpansPerJob);
  Json.addScalar("wire_disabled_overhead_pct", WireOverheadPct);
  std::string Path = Json.write();

  std::printf("\n=== O1: observability overhead, square9 %dx%d functional "
              "run on 16 nodes ===\n\n%s\n%s%s\n",
              SubRows, SubCols, T.str().c_str(),
              Path.empty() ? "" : "wrote ", Path.c_str());
  std::remove(TracePath.c_str());

  if (!OverheadOk) {
    std::fprintf(stderr,
                 "bench_obs: disabled-path overhead %.4f%% exceeds the "
                 "2%% bound\n",
                 OverheadPct);
    return 1;
  }
  if (!WireOverheadOk) {
    std::fprintf(stderr,
                 "bench_obs: wire disabled-path overhead %.4f%% exceeds "
                 "the 2%% bound\n",
                 WireOverheadPct);
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
