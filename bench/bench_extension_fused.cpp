//===- bench/bench_extension_fused.cpp - §9 extension bench ---*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E1 (extension): the paper's §9 future work, quantified.
/// "Future versions of the compiler should be able to handle all ten
/// terms as one stencil pattern": the Gordon Bell seismic update is
/// compiled as ONE multi-source statement (nine-point cross on U plus
/// C10 * UPREV) and compared with the 1990 structure (stencil call +
/// separately-added tenth term through the stock code generator), and
/// also with the WTL3132 FPU (no chained multiply-add) as a hardware
/// ablation.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "baseline/VectorUnitModel.h"
#include "fortran/Parser.h"
#include "stencil/Recognizer.h"

using namespace cmccbench;

namespace {

const char *FusedSeismic =
    "R = C1 * CSHIFT(U, 1, -2) + C2 * CSHIFT(U, 1, -1) "
    "  + C3 * CSHIFT(U, 2, -2) + C4 * CSHIFT(U, 2, -1) "
    "  + C5 * U "
    "  + C6 * CSHIFT(U, 2, +1) + C7 * CSHIFT(U, 2, +2) "
    "  + C8 * CSHIFT(U, 1, +1) + C9 * CSHIFT(U, 1, +2) "
    "  - C10 * UPREV";

constexpr int SubRows = 64, SubCols = 128, Iterations = 35000;

CompiledStencil compileFused(const MachineConfig &Config) {
  DiagnosticEngine Diags;
  ConvolutionCompiler CC(Config);
  CC.setAllowMultipleSources(true);
  std::optional<CompiledStencil> Compiled =
      CC.compileAssignment(FusedSeismic, Diags);
  if (!Compiled) {
    std::fprintf(stderr, "fused compile failed:\n%s", Diags.str().c_str());
    std::abort();
  }
  return std::move(*Compiled);
}

/// The 1990 structure: nine-point cross call + tenth term added by the
/// stock code generator (two elementwise passes).
TimingReport separateReport(const MachineConfig &Config) {
  CompiledStencil Cross = compilePattern(Config, PatternId::Cross9R2);
  Executor Exec(Config);
  TimingReport Step = Exec.timeOnly(Cross, SubRows, SubCols, Iterations);
  VectorUnitCosts Costs;
  long Elements = static_cast<long>(SubRows) * SubCols;
  Step.Cycles.Compute += static_cast<long>(
      2 * (Costs.PassStartupCycles + Costs.CyclesPerElementPerPass * Elements));
  Step.HostSecondsPerIteration +=
      (Config.HostOverheadUsPerCall + 2 * Config.HostOverheadUsPerStrip) *
      1e-6;
  Step.UsefulFlopsPerNodePerIteration += 2 * Elements;
  return Step;
}

TimingReport fusedReport(const MachineConfig &Config) {
  CompiledStencil Fused = compileFused(Config);
  Executor Exec(Config);
  return Exec.timeOnly(Fused, SubRows, SubCols, Iterations);
}

} // namespace

int main(int argc, char **argv) {
  MachineConfig Full = MachineConfig::fullMachine2048();
  MachineConfig Wtl3132 = Full;
  Wtl3132.Fpu = FpuKind::WTL3132;

  registerSimulatedBenchmark("E1/separate-ten-terms/nodes:2048",
                             separateReport(Full));
  registerSimulatedBenchmark("E1/fused-ten-terms/nodes:2048",
                             fusedReport(Full));
  registerSimulatedBenchmark("E1/fused-ten-terms-wtl3132/nodes:2048",
                             fusedReport(Wtl3132));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  TimingReport Separate = separateReport(Full);
  TimingReport Fused = fusedReport(Full);
  TimingReport Fused3132 = fusedReport(Wtl3132);

  TextTable T;
  T.setHeader({"variant", "elapsed(s)", "Gflops", "speedup"});
  T.addRow({"1990: stencil + separate tenth term",
            formatFixed(Separate.elapsedSeconds(), 1),
            formatFixed(Separate.measuredGflops(), 2), "1.000"});
  T.addRow({"S9 extension: fused ten-term statement",
            formatFixed(Fused.elapsedSeconds(), 1),
            formatFixed(Fused.measuredGflops(), 2),
            formatFixed(Separate.elapsedSeconds() / Fused.elapsedSeconds(),
                        3)});
  T.addRow({"fused, WTL3132 FPU (no chained madd)",
            formatFixed(Fused3132.elapsedSeconds(), 1),
            formatFixed(Fused3132.measuredGflops(), 2),
            formatFixed(Separate.elapsedSeconds() /
                            Fused3132.elapsedSeconds(),
                        3)});
  std::printf("\n=== E1: fusing all ten seismic terms into one stencil "
              "(64x128 subgrids, 2048 nodes, %d steps) ===\n\n%s\n"
              "The fused statement folds the tenth term's multiply-add "
              "into the chained inner loop\n(it costs 2 more multiply-add "
              "slots per point instead of two full-array passes and\nan "
              "extra front-end dispatch) at the price of one more halo "
              "exchange for UPREV.\nThe WTL3132 row shows why the paper "
              "targets the WTL3164: without chained\nmultiply-adds every "
              "tap pays separate multiply and add issues.\n",
              Iterations, T.str().c_str());
  return 0;
}
