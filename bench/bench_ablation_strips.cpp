//===- bench/bench_ablation_strips.cpp - Half-strip ablation --*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment A3: the half-strip trade-off of §5.2. Processing each
/// strip as two half-strips means the microcode handles only one
/// boundary condition — halving the boundary-handling variants that must
/// fit in scarce microcode instruction memory — at the price of starting
/// the loop twice as often. This bench shows both sides: the run-time
/// cost of the doubled start-ups (small for medium-to-large arrays,
/// exactly as the paper claims) and the microcode-memory cost a
/// full-strip implementation would pay.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace cmccbench;

namespace {

TimingReport runCase(PatternId Id, int Sub, bool UseHalfStrips) {
  MachineConfig Config = MachineConfig::testMachine16();
  CompiledStencil Compiled = compilePattern(Config, Id);
  Executor::Options Opts;
  Opts.UseHalfStrips = UseHalfStrips;
  Opts.Mode = Executor::FunctionalMode::None;
  Executor Exec(Config, Opts);
  return Exec.timeOnly(Compiled, Sub, Sub, 100);
}

void printTable() {
  TextTable T;
  T.setHeader({"stencil", "subgrid", "startup cyc (half)",
               "startup cyc (full)", "Mflops half", "Mflops full",
               "slowdown", "boundary variants"});
  for (PatternId Id : {PatternId::Square9, PatternId::Diamond13}) {
    for (int Sub : {16, 32, 64, 128, 256}) {
      TimingReport Half = runCase(Id, Sub, true);
      TimingReport Full = runCase(Id, Sub, false);
      T.addRow({patternName(Id), std::to_string(Sub) + "x" +
                    std::to_string(Sub),
                std::to_string(Half.Cycles.StripStartup),
                std::to_string(Full.Cycles.StripStartup),
                formatFixed(Half.measuredMflops(), 1),
                formatFixed(Full.measuredMflops(), 1),
                formatFixed(Full.measuredMflops() / Half.measuredMflops(),
                            4),
                "half: 1, full: 2"});
    }
  }
  std::printf("\n=== A3: half-strips vs full strips (16 nodes, 100 "
              "iterations) ===\n\n%s\n"
              "Half-strips cost twice the start-ups but keep one boundary "
              "condition per microcode\nloop; the run-time penalty is "
              "\"relatively small when operating on medium to large\n"
              "arrays\" (§5.2) — visible above as a slowdown factor near "
              "1.0 for 128x128 and up.\nA full-strip microcode would need "
              "both boundary variants resident in the scarce\nmicrocode "
              "instruction memory.\n",
              T.str().c_str());
}

} // namespace

int main(int argc, char **argv) {
  for (PatternId Id : {PatternId::Square9, PatternId::Diamond13})
    for (int Sub : {16, 64, 256}) {
      registerSimulatedBenchmark(std::string("A3/") + patternName(Id) + "/" +
                                     std::to_string(Sub) + "/half",
                                 runCase(Id, Sub, true));
      registerSimulatedBenchmark(std::string("A3/") + patternName(Id) + "/" +
                                     std::to_string(Sub) + "/full",
                                 runCase(Id, Sub, false));
    }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printTable();
  return 0;
}
