//===- bench/bench_net.cpp - Multi-process network load harness -*-C++-*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The load half of the network front door (DESIGN.md §5h): a
/// multi-process generator that drives many concurrent submit/wait
/// streams against ONE server process and reports end-to-end job
/// latency (p50/p99) and throughput into BENCH_net.json.
///
/// Topology: the parent forks a server child (StencilService + Server
/// on a unix socket), then forks worker processes. Each worker opens
/// --conns connections (one thread each, its own tenant id), and each
/// connection pipelines --streams independent submit->wait streams
/// using the raw request-id-correlated protocol — so the default
/// 8 x 8 x 16 = 1024 streams are genuinely concurrent against one
/// event loop. Latency is measured per stream cycle from submit to the
/// arrival of its WaitResponse.
///
///   bench_net [--procs=8] [--conns=8] [--streams=16] [--rounds=4]
///             [--server-workers=4] [--fault-rate=0] [--endpoint=SPEC]
///
/// --fault-rate arms the server's net.* fault sites (dropped
/// connections at accept/read/write): the fault drill. Workers respond
/// like real clients — reconnect and resubmit — so the run also proves
/// the recovery story at load. With --endpoint the harness drives an
/// external server instead of forking its own.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "net/Client.h"
#include "net/Server.h"
#include "service/StencilService.h"
#include "support/FaultInjection.h"
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace cmcc;
using cmcc::net::decodeSubmitResponse;
using cmcc::net::decodeWaitResponse;
using cmccbench::BenchJsonWriter;

namespace {

struct BenchOptions {
  int Procs = 8;
  int Conns = 8;
  int Streams = 16;
  int Rounds = 4;
  int ServerWorkers = 4;
  double FaultRate = 0.0;
  std::string EndpointSpec; ///< Empty: fork our own server.
};

/// The job mix: a few distinct plans so the server's cache serves warm
/// hits at load the way a real tenant population would.
const char *const Sources[] = {
    "R = C1*CSHIFT(X,1,-1) + C2*X",
    "R = 0.5*CSHIFT(X,1,-1) + 0.5*CSHIFT(X,1,1)",
    "R = C1*CSHIFT(X,2,1) + C2*CSHIFT(X,2,-1) + 1.0*X",
};

std::atomic<net::Server *> GServer{nullptr};

void onTerm(int) {
  if (net::Server *S = GServer.load(std::memory_order_acquire))
    S->requestDrain();
}

/// The forked server process: serve until SIGTERM, drain, exit.
int runServer(const net::Endpoint &Ep, const BenchOptions &Opts) {
  if (Opts.FaultRate > 0.0) {
    fault::Registry &Reg = fault::Registry::process();
    Reg.setSeed(7);
    for (const char *Site : {"net.accept", "net.read", "net.write"}) {
      fault::Rule R;
      R.Site = Site;
      R.Rate = Opts.FaultRate;
      Reg.arm(R);
    }
  }
  StencilService::Options SOpts;
  SOpts.Workers = Opts.ServerWorkers;
  StencilService Service(MachineConfig::testMachine16(), SOpts);
  net::Server::Options NOpts;
  NOpts.Listen.push_back(Ep);
  NOpts.MaxConnections = 4096;
  net::Server Server(Service, NOpts);
  if (Error E = Server.start()) {
    std::fprintf(stderr, "bench_net server: %s\n", E.message().c_str());
    return 1;
  }
  GServer.store(&Server, std::memory_order_release);
  struct sigaction SA {};
  SA.sa_handler = onTerm;
  ::sigaction(SIGTERM, &SA, nullptr);
  while (!Server.finished())
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  GServer.store(nullptr, std::memory_order_release);
  Server.stop();
  return 0;
}

/// One pipelined connection: \p Streams independent submit->wait
/// streams of \p Rounds cycles each, correlated by request id.
/// Reconnects and resubmits on any socket failure (the fault drill's
/// recovery path). Appends one latency sample per completed cycle.
bool runConnection(const net::Endpoint &Ep, uint32_t Tenant, int Streams,
                   int Rounds, std::vector<double> &Latencies) {
  using Clock = std::chrono::steady_clock;
  struct Stream {
    int RoundsLeft;
    Clock::time_point Start;
    net::SubmitRequest Job;
  };
  std::vector<Stream> Work(static_cast<size_t>(Streams));
  for (int I = 0; I != Streams; ++I) {
    Stream &S = Work[I];
    S.RoundsLeft = Rounds;
    S.Job.Kind =
        static_cast<uint8_t>(StencilService::SourceKind::FortranAssignment);
    S.Job.Source = Sources[I % (sizeof(Sources) / sizeof(Sources[0]))];
    S.Job.SubRows = 16;
    S.Job.SubCols = 16;
    S.Job.Iterations = 10;
  }

  std::unique_ptr<net::Client> Conn;
  // RequestId -> (stream, isWait): wait responses complete a cycle,
  // submit responses trigger the wait.
  std::map<uint64_t, std::pair<int, bool>> Pending;
  int Incomplete = Streams;
  long Failures = 0;

  auto Connect = [&]() -> bool {
    Pending.clear();
    for (int Attempt = 0; Attempt != 100; ++Attempt) {
      net::Client::Options COpts;
      COpts.Target = Ep;
      COpts.Tenant = Tenant;
      Expected<std::unique_ptr<net::Client>> C = net::Client::connect(COpts);
      if (C) {
        Conn = C.takeValue();
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  };
  auto SendSubmit = [&](int S) -> bool {
    const uint64_t Id = Conn->nextRequestId();
    Work[S].Start = Clock::now();
    if (Conn->sendRequest(net::MsgType::SubmitRequest, Id,
                          encode(Work[S].Job)))
      return false;
    Pending[Id] = {S, false};
    return true;
  };
  auto Resubmit = [&]() -> bool {
    // Connection died: every in-flight cycle restarts from submit (a
    // duplicate submit at the server is fine — its orphaned job runs
    // and is discarded).
    if (!Connect())
      return false;
    for (int S = 0; S != Streams; ++S)
      if (Work[S].RoundsLeft > 0)
        if (!SendSubmit(S))
          return false;
    return true;
  };

  if (!Resubmit())
    return false;
  while (Incomplete > 0) {
    if (++Failures > 10000)
      return false; // Pathological network: give up loudly.
    Expected<net::Client::RawResponse> R = Conn->receive();
    if (!R) {
      if (!Resubmit())
        return false;
      continue;
    }
    --Failures; // Progress: relax the give-up budget.
    auto It = Pending.find(R->Header.RequestId);
    if (It == Pending.end())
      continue; // A stale response from before a reconnect.
    const auto [S, IsWait] = It->second;
    Pending.erase(It);
    if (R->Header.Type == net::MsgType::ErrorResponse) {
      if (!SendSubmit(S) && !Resubmit())
        return false;
      continue;
    }
    if (!IsWait) {
      Expected<net::SubmitResponse> Sub =
          decodeSubmitResponse(R->Payload.data(), R->Payload.size());
      if (!Sub)
        return false;
      net::WaitRequest W;
      W.JobId = Sub->JobId;
      const uint64_t Id = Conn->nextRequestId();
      if (Conn->sendRequest(net::MsgType::WaitRequest, Id, encode(W))) {
        if (!Resubmit())
          return false;
        continue;
      }
      Pending[Id] = {S, true};
      continue;
    }
    Expected<net::WaitResponse> W =
        decodeWaitResponse(R->Payload.data(), R->Payload.size());
    if (!W)
      return false;
    if (!W->Ok) {
      // Transient job failure: retry the cycle.
      if (!SendSubmit(S) && !Resubmit())
        return false;
      continue;
    }
    Latencies.push_back(
        std::chrono::duration<double>(Clock::now() - Work[S].Start).count());
    if (--Work[S].RoundsLeft == 0) {
      --Incomplete;
      continue;
    }
    if (!SendSubmit(S) && !Resubmit())
      return false;
  }
  return true;
}

/// One worker process: --conns connection threads, all samples written
/// to the parent over \p PipeFd as (u64 count, doubles).
int runWorker(const net::Endpoint &Ep, const BenchOptions &Opts, int Index,
              int PipeFd) {
  std::vector<std::vector<double>> PerConn(static_cast<size_t>(Opts.Conns));
  std::vector<char> Ok(static_cast<size_t>(Opts.Conns), 1);
  {
    std::vector<std::thread> Threads;
    for (int C = 0; C != Opts.Conns; ++C)
      Threads.emplace_back([&, C] {
        const uint32_t Tenant = static_cast<uint32_t>(Index + 1);
        if (!runConnection(Ep, Tenant, Opts.Streams, Opts.Rounds, PerConn[C]))
          Ok[C] = 0;
      });
    for (std::thread &T : Threads)
      T.join();
  }
  std::vector<double> All;
  bool AllOk = true;
  for (int C = 0; C != Opts.Conns; ++C) {
    AllOk = AllOk && Ok[C];
    All.insert(All.end(), PerConn[C].begin(), PerConn[C].end());
  }
  const uint64_t N = All.size();
  if (::write(PipeFd, &N, sizeof(N)) != sizeof(N))
    return 1;
  size_t Done = 0;
  const char *Bytes = reinterpret_cast<const char *>(All.data());
  const size_t Total = N * sizeof(double);
  while (Done < Total) {
    const ssize_t W = ::write(PipeFd, Bytes + Done, Total - Done);
    if (W <= 0)
      return 1;
    Done += static_cast<size_t>(W);
  }
  ::close(PipeFd);
  return AllOk ? 0 : 1;
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  const size_t I = static_cast<size_t>(P * (Sorted.size() - 1));
  return Sorted[I];
}

bool parseArguments(int Argc, char **Argv, BenchOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t N = std::strlen(Prefix);
      return Arg.compare(0, N, Prefix) == 0 ? Arg.c_str() + N : nullptr;
    };
    if (const char *V = Value("--procs="))
      Opts.Procs = std::atoi(V);
    else if (const char *V = Value("--conns="))
      Opts.Conns = std::atoi(V);
    else if (const char *V = Value("--streams="))
      Opts.Streams = std::atoi(V);
    else if (const char *V = Value("--rounds="))
      Opts.Rounds = std::atoi(V);
    else if (const char *V = Value("--server-workers="))
      Opts.ServerWorkers = std::atoi(V);
    else if (const char *V = Value("--fault-rate="))
      Opts.FaultRate = std::atof(V);
    else if (const char *V = Value("--endpoint="))
      Opts.EndpointSpec = V;
    else {
      std::fprintf(stderr, "bench_net: unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  return Opts.Procs > 0 && Opts.Conns > 0 && Opts.Streams > 0 &&
         Opts.Rounds > 0;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts;
  if (!parseArguments(Argc, Argv, Opts))
    return 2;

  net::Endpoint Ep;
  pid_t ServerPid = -1;
  if (!Opts.EndpointSpec.empty()) {
    Expected<net::Endpoint> E = net::Endpoint::parse(Opts.EndpointSpec);
    if (!E) {
      std::fprintf(stderr, "bench_net: %s\n", E.error().message().c_str());
      return 2;
    }
    Ep = *E;
  } else {
    Ep.Transport = net::Endpoint::Kind::Unix;
    Ep.Path = "bench_net_" + std::to_string(::getpid()) + ".sock";
    ::unlink(Ep.Path.c_str());
    // Fork the server FIRST — before any thread exists anywhere.
    ServerPid = ::fork();
    if (ServerPid == 0)
      ::_exit(runServer(Ep, Opts));
    // Wait for the socket to appear.
    for (int I = 0; I != 500; ++I) {
      if (::access(Ep.Path.c_str(), F_OK) == 0)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  const long TotalStreams = 1L * Opts.Procs * Opts.Conns * Opts.Streams;
  const long ExpectedJobs = TotalStreams * Opts.Rounds;
  std::printf("bench_net: %d procs x %d conns x %d streams = %ld concurrent "
              "streams, %d rounds (%ld jobs), fault rate %.0f%%\n",
              Opts.Procs, Opts.Conns, Opts.Streams, TotalStreams, Opts.Rounds,
              ExpectedJobs, Opts.FaultRate * 100.0);
  std::printf("provenance: %s\n", cmccbench::benchProvenance().c_str());

  // Workers: fork them all, then read every pipe.
  const auto Begin = std::chrono::steady_clock::now();
  std::vector<pid_t> Workers;
  std::vector<int> Pipes;
  for (int P = 0; P != Opts.Procs; ++P) {
    int Fds[2];
    if (::pipe(Fds) != 0) {
      std::perror("pipe");
      return 1;
    }
    const pid_t Pid = ::fork();
    if (Pid == 0) {
      ::close(Fds[0]);
      ::_exit(runWorker(Ep, Opts, P, Fds[1]));
    }
    ::close(Fds[1]);
    Workers.push_back(Pid);
    Pipes.push_back(Fds[0]);
  }

  std::vector<double> Latencies;
  Latencies.reserve(static_cast<size_t>(ExpectedJobs));
  for (int Fd : Pipes) {
    uint64_t N = 0;
    if (::read(Fd, &N, sizeof(N)) == sizeof(N)) {
      std::vector<double> Buf(N);
      size_t Done = 0;
      const size_t Total = N * sizeof(double);
      char *Bytes = reinterpret_cast<char *>(Buf.data());
      while (Done < Total) {
        const ssize_t R = ::read(Fd, Bytes + Done, Total - Done);
        if (R <= 0)
          break;
        Done += static_cast<size_t>(R);
      }
      if (Done == Total)
        Latencies.insert(Latencies.end(), Buf.begin(), Buf.end());
    }
    ::close(Fd);
  }
  int WorkerFailures = 0;
  for (pid_t Pid : Workers) {
    int Status = 0;
    ::waitpid(Pid, &Status, 0);
    if (!WIFEXITED(Status) || WEXITSTATUS(Status) != 0)
      ++WorkerFailures;
  }
  const double Elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Begin)
          .count();

  if (ServerPid > 0) {
    ::kill(ServerPid, SIGTERM);
    int Status = 0;
    ::waitpid(ServerPid, &Status, 0);
    ::unlink(Ep.Path.c_str());
    if (!WIFEXITED(Status) || WEXITSTATUS(Status) != 0) {
      std::fprintf(stderr, "bench_net: server exited abnormally\n");
      return 1;
    }
  }

  std::sort(Latencies.begin(), Latencies.end());
  const double P50 = percentile(Latencies, 0.50);
  const double P99 = percentile(Latencies, 0.99);
  double Sum = 0.0;
  for (double L : Latencies)
    Sum += L;
  const double Mean = Latencies.empty() ? 0.0 : Sum / Latencies.size();
  const double JobsPerSecond =
      Elapsed > 0.0 ? static_cast<double>(Latencies.size()) / Elapsed : 0.0;

  std::printf("completed %zu jobs in %.2f s: %.0f jobs/s\n", Latencies.size(),
              Elapsed, JobsPerSecond);
  std::printf("latency p50 %.3f ms  p99 %.3f ms  mean %.3f ms\n", P50 * 1e3,
              P99 * 1e3, Mean * 1e3);
  if (WorkerFailures)
    std::fprintf(stderr, "bench_net: %d worker(s) failed\n", WorkerFailures);

  BenchJsonWriter Json("net");
  Json.addScalar("concurrent_streams", static_cast<double>(TotalStreams));
  Json.addScalar("jobs_completed", static_cast<double>(Latencies.size()));
  Json.addScalar("elapsed_seconds", Elapsed);
  Json.addScalar("jobs_per_second", JobsPerSecond);
  Json.addScalar("latency_p50_ms", P50 * 1e3);
  Json.addScalar("latency_p99_ms", P99 * 1e3);
  Json.addScalar("latency_mean_ms", Mean * 1e3);
  Json.addScalar("fault_rate", Opts.FaultRate);
  Json.addScalar("worker_failures", static_cast<double>(WorkerFailures));
  const std::string Path = Json.write();
  if (!Path.empty())
    std::printf("wrote %s\n", Path.c_str());

  // The acceptance bar: every expected job completed (faults may cost
  // retries, never results) and no worker gave up.
  return WorkerFailures == 0 &&
                 Latencies.size() >= static_cast<size_t>(ExpectedJobs)
             ? 0
             : 1;
}
