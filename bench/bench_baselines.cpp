//===- bench/bench_baselines.cpp - The 4 / 5.6 / 10+ Gflops story -*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment B1: the paper's headline comparison on a full 2,048-node
/// CM-2 —
///
///   * stock slicewise CM Fortran code generation: "routinely around 4
///     gigaflops" (§3);
///   * the 1989 hand-coded fixed library (one preselected nine-point
///     cross, old grid primitives): 5.6 Gflops;
///   * the convolution compiler of this paper: above 10 Gflops.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "baseline/FixedLibrary.h"
#include "baseline/VectorUnitModel.h"

using namespace cmccbench;

namespace {

constexpr int Iterations = 100;

TimingReport convolutionReport(const MachineConfig &Config, PatternId Id,
                               int Sub) {
  CompiledStencil Compiled = compilePattern(Config, Id);
  Executor Exec(Config);
  return Exec.timeOnly(Compiled, Sub, Sub, Iterations);
}

void printTable(const MachineConfig &Config, int Sub) {
  TextTable T;
  BenchJsonWriter Json("baselines");
  T.setHeader({"system", "stencil", "Gflops", "paper says", "vs stock"});
  double Stock = 0.0;
  for (PatternId Id : {PatternId::Square9, PatternId::Cross9R2}) {
    TimingReport Vector = vectorUnitStencilReport(
        Config, makePattern(Id), Sub, Sub, Iterations);
    if (Id == PatternId::Square9)
      Stock = Vector.measuredGflops();
    T.addRow({"stock slicewise CM Fortran", patternName(Id),
              formatFixed(Vector.measuredGflops(), 2), "~4",
              formatFixed(Vector.measuredGflops() / Stock, 2)});
    Json.addRow(std::string("B1/stock-slicewise/") + patternName(Id),
                Vector.measuredMflops(), Vector.elapsedSeconds(), -1.0);
  }
  Expected<TimingReport> Fixed =
      fixedLibraryReport(Config, Sub, Sub, Iterations);
  if (Fixed) {
    T.addRow({"1989 hand-coded library", "cross9r2 (only)",
              formatFixed(Fixed->measuredGflops(), 2), "5.6",
              formatFixed(Fixed->measuredGflops() / Stock, 2)});
    Json.addRow("B1/fixed-library-1989/cross9r2", Fixed->measuredMflops(),
                Fixed->elapsedSeconds(), -1.0);
  }
  for (PatternId Id : {PatternId::Square9, PatternId::Cross9R2,
                       PatternId::Diamond13}) {
    TimingReport Conv = convolutionReport(Config, Id, Sub);
    T.addRow({"convolution compiler (this paper)", patternName(Id),
              formatFixed(Conv.measuredGflops(), 2), ">10",
              formatFixed(Conv.measuredGflops() / Stock, 2)});
    Json.addRow(std::string("B1/convolution-compiler/") + patternName(Id),
                Conv.measuredMflops(), Conv.elapsedSeconds(), -1.0);
  }
  std::string Path = Json.write();
  std::printf("\n=== B1: baselines on a full 2048-node CM-2, %dx%d "
              "per-node subgrids ===\n\n%s\n%s%s\n",
              Sub, Sub, T.str().c_str(), Path.empty() ? "" : "wrote ",
              Path.c_str());
}

} // namespace

int main(int argc, char **argv) {
  MachineConfig Config = MachineConfig::fullMachine2048();
  const int Sub = 256;

  registerSimulatedBenchmark(
      "B1/stock-slicewise/square9",
      vectorUnitStencilReport(Config, makePattern(PatternId::Square9), Sub,
                              Sub, Iterations));
  if (Expected<TimingReport> Fixed =
          fixedLibraryReport(Config, Sub, Sub, Iterations))
    registerSimulatedBenchmark("B1/fixed-library-1989/cross9r2", *Fixed);
  for (PatternId Id : {PatternId::Square9, PatternId::Cross9R2,
                       PatternId::Diamond13})
    registerSimulatedBenchmark(std::string("B1/convolution-compiler/") +
                                   patternName(Id),
                               convolutionReport(Config, Id, Sub));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printTable(Config, Sub);
  return 0;
}
