//===- bench/bench_results_table.cpp - Paper §7 results table -*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment T1 (DESIGN.md §4): regenerates the paper's §7 results
/// table — four stencil patterns across per-node subgrid sizes on the
/// 16-node test machine, with measured Mflops and the extrapolation to a
/// full 2,048-node CM-2, plus the full-machine rows. One benchmark entry
/// per table row; simulated machine time is the reported time.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace cmccbench;

namespace {

void emitTimeTiledRows(BenchJsonWriter &Json);

/// Functionally executes every 16-node row (all nodes, real arrays)
/// twice — serial and on the shared pool — prints the host wall-clock
/// speedup of the parallel execution engine, and emits
/// BENCH_results_table.json with per-row simulated Mflops and host
/// seconds. Simulated numbers are identical in every configuration.
void measureHostEngineAndEmitJson() {
  BenchJsonWriter Json("results_table");
  TextTable T;
  T.setHeader({"stencil", "subgrid", "host serial(s)",
               "host pool(s)", "speedup"});
  double SerialTotal = 0.0, PoolTotal = 0.0;
  for (const PaperRow &Row : PaperRows16) {
    Executor::Options Serial;
    Serial.ThreadCount = 1;
    double SerialS = measureFunctionalHostSeconds(Row, Serial);
    double PoolS = measureFunctionalHostSeconds(Row);
    SerialTotal += SerialS;
    PoolTotal += PoolS;
    TimingReport Report = simulateRow(Row);
    Json.addRow(std::string("T1/") + patternName(Row.Pattern) + "/" +
                    std::to_string(Row.SubRows) + "x" +
                    std::to_string(Row.SubCols) + "/nodes:16",
                Report.measuredMflops(), Report.elapsedSeconds(), PoolS);
    T.addRow({patternName(Row.Pattern),
              std::to_string(Row.SubRows) + "x" + std::to_string(Row.SubCols),
              formatFixed(SerialS, 4), formatFixed(PoolS, 4),
              formatFixed(SerialS / PoolS, 2) + "x"});
  }
  // The full-machine rows are timing-model only (a functional 2048-node
  // run would need gigabytes of arrays); host seconds stay unmeasured.
  for (const PaperRow &Row : PaperRows2048) {
    TimingReport Report = simulateRow(Row);
    Json.addRow(std::string("T1/") + patternName(Row.Pattern) + "/" +
                    std::to_string(Row.SubRows) + "x" +
                    std::to_string(Row.SubCols) + "/nodes:2048",
                Report.measuredMflops(), Report.elapsedSeconds(), -1.0);
  }
  emitTimeTiledRows(Json);
  std::string Path = Json.write();
  std::printf("\n=== Host execution engine (functional AllNodes runs) ===\n"
              "built with: %s\nshared pool threads: %d\n\n%s\ntotal: serial "
              "%.3fs, pool %.3fs, speedup %.2fx\n%s%s\n",
              benchProvenance().c_str(),
              cmcc::ThreadPool::sharedThreadCount(), T.str().c_str(),
              SerialTotal, PoolTotal, SerialTotal / PoolTotal,
              Path.empty() ? "" : "wrote ", Path.c_str());
}

/// Time-tiled variants of the representative seismic row (DESIGN.md
/// §5k): the same simulated machine advances k chained timesteps behind
/// a single wide halo exchange. Useful flops count all k steps (the
/// redundant edge recomputation is spent time, not useful work), so the
/// Mflops column is directly comparable with the classic row; the
/// iteration count shrinks by k to keep the total timestep budget
/// equal. Host seconds are not re-measured for these rows (-1).
void emitTimeTiledRows(BenchJsonWriter &Json) {
  const PaperRow *Rep = nullptr;
  for (const PaperRow &Row : PaperRows16)
    if (Row.Pattern == PatternId::Cross9R2 && Row.SubRows == 256)
      Rep = &Row;
  if (!Rep)
    return;
  MachineConfig Config = MachineConfig::testMachine16();
  CompiledStencil Compiled = compilePattern(Config, Rep->Pattern);
  Executor Exec(Config);
  RunOptions Classic;
  Classic.Iterations = Rep->Iterations;
  double ClassicMflops =
      Exec.timeOnly(Compiled, Rep->SubRows, Rep->SubCols, Classic)
          .measuredMflops();
  TextTable T;
  T.setHeader({"k", "iters", "elapsed(s)", "Mflops", "vs classic"});
  for (int K : {2, 4, 8}) {
    RunOptions RO;
    RO.TimeTile = K;
    RO.Iterations = std::max(1, Rep->Iterations / K);
    TimingReport Report =
        Exec.timeOnly(Compiled, Rep->SubRows, Rep->SubCols, RO);
    Json.addRow(std::string("T1/") + patternName(Rep->Pattern) + "/" +
                    std::to_string(Rep->SubRows) + "x" +
                    std::to_string(Rep->SubCols) + "/nodes:16/timetile:" +
                    std::to_string(K),
                Report.measuredMflops(), Report.elapsedSeconds(), -1.0);
    T.addRow({std::to_string(K), std::to_string(RO.Iterations),
              formatFixed(Report.elapsedSeconds(), 2),
              formatFixed(Report.measuredMflops(), 1),
              formatFixed(Report.measuredMflops() / ClassicMflops, 2) + "x"});
  }
  std::printf("\n=== T1: time-tiled %s %dx%d (classic %.1f Mflops) ===\n\n%s\n",
              patternName(Rep->Pattern), Rep->SubRows, Rep->SubCols,
              ClassicMflops, T.str().c_str());
}

void printComparisonTables() {
  TextTable T;
  T.setHeader({"stencil", "subgrid", "nodes", "iters", "elapsed(s)",
               "paper(s)", "Mflops", "paper", "extrap Gf", "paper"});
  for (const PaperRow &Row : PaperRows16) {
    TimingReport Report = simulateRow(Row);
    T.addRow({patternName(Row.Pattern),
              std::to_string(Row.SubRows) + "x" + std::to_string(Row.SubCols),
              std::to_string(Row.Nodes), std::to_string(Row.Iterations),
              formatFixed(Report.elapsedSeconds(), 2),
              formatFixed(Row.ElapsedSeconds, 2),
              formatFixed(Report.measuredMflops(), 1),
              formatFixed(Row.Mflops, 1),
              formatFixed(Report.extrapolatedGflops(2048), 2),
              formatFixed(Row.ExtrapolatedGflops, 2)});
  }
  T.addSeparator();
  for (const PaperRow &Row : PaperRows2048) {
    TimingReport Report = simulateRow(Row);
    T.addRow({patternName(Row.Pattern),
              std::to_string(Row.SubRows) + "x" + std::to_string(Row.SubCols),
              std::to_string(Row.Nodes), std::to_string(Row.Iterations),
              formatFixed(Report.elapsedSeconds(), 2),
              formatFixed(Row.ElapsedSeconds, 2),
              formatFixed(Report.measuredMflops(), 1),
              formatFixed(Row.Mflops, 1), "-", "-"});
  }
  std::printf("\n=== T1: the paper's results table (model vs paper) ===\n"
              "Useful flops per point: cross5=9 square9=17 cross9r2=17 "
              "diamond13=25\n\n%s\n",
              T.str().c_str());
  std::printf(
      "Notes: the paper's full-machine rows ran faster than its own 16-node\n"
      "extrapolation (13.65/14.95 vs ~11 Gflops), most plausibly a faster\n"
      "front end on the big machine; the model keeps one front-end constant\n"
      "for all machines, so its 2048-node rows match the extrapolated\n"
      "column. See EXPERIMENTS.md.\n");
}

} // namespace

int main(int argc, char **argv) {
  for (const PaperRow &Row : PaperRows16)
    registerSimulatedBenchmark(
        std::string("T1/") + patternName(Row.Pattern) + "/" +
            std::to_string(Row.SubRows) + "x" + std::to_string(Row.SubCols) +
            "/nodes:16",
        simulateRow(Row));
  for (const PaperRow &Row : PaperRows2048)
    registerSimulatedBenchmark(
        std::string("T1/") + patternName(Row.Pattern) + "/" +
            std::to_string(Row.SubRows) + "x" + std::to_string(Row.SubCols) +
            "/nodes:2048",
        simulateRow(Row));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printComparisonTables();
  measureHostEngineAndEmitJson();
  return 0;
}
