//===- bench/bench_backends.cpp - cm2 vs native backend table -*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment B1: the same serving workload through each execution
/// backend. For every paper pattern and every backend the table reports
///
///   * cold service latency — first submission ever against a fresh
///     service (front end + recognition + planning + verification +
///     execution on that backend);
///   * warm service latency — the same source streamed again, resolved
///     through the memo and plan cache, so only execution remains;
///   * steady-state execution throughput — best of several timeOnly
///     runs. For cm2 this is *simulated* machine Mflops at the paper's
///     clock; for native it is measured host wall-clock Mflops.
///
/// The two throughput columns are deliberately not comparable to each
/// other — one is a model of a 1990 machine, the other is this host —
/// but each is comparable to itself across PRs, which is what
/// BENCH_backends.json records.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "backends/Registry.h"
#include "service/StencilService.h"
#include <chrono>

using namespace cmccbench;

namespace {

constexpr int SubRows = 64, SubCols = 64;
constexpr int Iterations = 50;
constexpr int WarmRounds = 20;
constexpr int SteadyRepeats = 5;

double hostSeconds(StencilService &Service,
                   const StencilService::JobRequest &Req, int Count) {
  auto Begin = std::chrono::steady_clock::now();
  std::vector<StencilService::JobId> Ids;
  Ids.reserve(Count);
  for (int I = 0; I != Count; ++I)
    Ids.push_back(Service.submit(Req));
  for (StencilService::JobId Id : Ids) {
    StencilService::JobResult R = Service.wait(Id);
    if (!R.Ok) {
      std::fprintf(stderr, "bench_backends: job failed: %s\n",
                   R.Message.c_str());
      std::abort();
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Begin)
      .count();
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);

  MachineConfig Config = MachineConfig::testMachine16();
  TextTable T;
  T.setHeader({"backend", "pattern", "cold(ms)", "warm(ms/job)",
               "throughput(Mflops)", "timing"});
  BenchJsonWriter Json("backends");

  for (const std::string &Name : availableBackendNames()) {
    std::unique_ptr<ExecutionBackend> Backend = createBackend(Name, Config);
    if (!Backend) {
      std::fprintf(stderr, "bench_backends: unknown backend %s\n",
                   Name.c_str());
      return 1;
    }
    const char *Timing = Backend->reportsWallClock() ? "wall" : "sim";

    // A fresh service per backend: cold really means cold.
    StencilService::Options Opts;
    Opts.Workers = 4;
    Opts.Backend = Name;
    StencilService Service(Config, Opts);

    double ColdTotal = 0.0, WarmTotal = 0.0;
    for (PatternId Id : allPatterns()) {
      StencilService::JobRequest Req;
      Req.Kind = StencilService::SourceKind::FortranSubroutine;
      Req.Source = patternFortranSource(Id);
      Req.SubRows = SubRows;
      Req.SubCols = SubCols;
      Req.Iterations = Iterations;

      double Cold = hostSeconds(Service, Req, 1);
      double Warm = hostSeconds(Service, Req, WarmRounds) / WarmRounds;
      ColdTotal += Cold;
      WarmTotal += Warm;

      // Steady state: direct timeOnly on the backend, best of a few
      // repeats (for cm2 every repeat is the same analytic number).
      CompiledStencil Compiled = compilePattern(Config, Id);
      double BestMflops = 0.0, BestSeconds = 0.0;
      for (int R = 0; R != SteadyRepeats; ++R) {
        Expected<TimingReport> Report =
            Backend->timeOnly(Compiled, SubRows, SubCols, Iterations);
        if (!Report) {
          std::fprintf(stderr, "bench_backends: timeOnly failed: %s\n",
                       Report.error().message().c_str());
          return 1;
        }
        if (Report->measuredMflops() > BestMflops) {
          BestMflops = Report->measuredMflops();
          BestSeconds = Report->elapsedSeconds();
        }
      }

      std::string Base = Name + "/" + patternName(Id);
      T.addRow({Name, patternName(Id), formatFixed(Cold * 1e3, 3),
                formatFixed(Warm * 1e3, 3), formatFixed(BestMflops, 1),
                Timing});
      Json.addRow(Base + "/service_cold", BestMflops, BestSeconds, Cold);
      Json.addRow(Base + "/service_warm", BestMflops, BestSeconds, Warm);
      Json.addRow(Base + "/steady", BestMflops, BestSeconds,
                  Backend->reportsWallClock() ? BestSeconds : -1.0);
    }

    // The warm path must never have touched the compiler again.
    ServiceStats Stats = Service.stats();
    size_t Patterns = allPatterns().size();
    if (Stats.CompilesPerformed != static_cast<long>(Patterns)) {
      std::fprintf(stderr,
                   "bench_backends: %s warm path recompiled (%ld compiles "
                   "for %zu patterns)\n",
                   Name.c_str(), Stats.CompilesPerformed, Patterns);
      return 1;
    }
    Json.addScalar(Name + "/cold_total_ms", ColdTotal * 1e3);
    Json.addScalar(Name + "/warm_mean_ms",
                   WarmTotal / static_cast<double>(Patterns) * 1e3);
  }

  std::string Path = Json.write();
  std::printf("\n=== B1: backends compared, %d warm rounds per pattern, "
              "%dx%d subgrids on 16 nodes ===\n\n%s\n"
              "sim rows model the 7 MHz CM-2; wall rows are this host.\n"
              "%s%s\n",
              WarmRounds, SubRows, SubCols, T.str().c_str(),
              Path.empty() ? "" : "wrote ", Path.c_str());
  benchmark::Shutdown();
  return 0;
}
