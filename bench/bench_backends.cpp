//===- bench/bench_backends.cpp - cm2 vs native backend table -*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment B1: the same serving workload through each execution
/// backend. For every paper pattern and every backend the table reports
///
///   * cold service latency — first submission ever against a fresh
///     service (front end + recognition + planning + verification +
///     execution on that backend);
///   * warm service latency — the same source streamed again, resolved
///     through the memo and plan cache, so only execution remains;
///   * steady-state execution throughput — best of several timeOnly
///     runs. For cm2 this is *simulated* machine Mflops at the paper's
///     clock; for native it is measured host wall-clock Mflops.
///
/// The two throughput columns are deliberately not comparable to each
/// other — one is a model of a 1990 machine, the other is this host —
/// but each is comparable to itself across PRs, which is what
/// BENCH_backends.json records.
///
/// The njit backend runs under a fresh artifact-cache directory, so its
/// cold rows include the real emit + cc + dlopen cost. A second section
/// compares njit against native steady-state throughput on the seismic
/// loop body and on every examples/stencils source — the speedup the
/// plan-specialized kernel buys over the generic interpreter is the
/// njit_vs_native/* scalar family.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "backends/Registry.h"
#include "service/StencilService.h"
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <unistd.h>

using namespace cmccbench;

namespace {

constexpr int SubRows = 64, SubCols = 64;
constexpr int Iterations = 50;
constexpr int WarmRounds = 20;
constexpr int SteadyRepeats = 5;

double hostSeconds(StencilService &Service,
                   const StencilService::JobRequest &Req, int Count) {
  auto Begin = std::chrono::steady_clock::now();
  std::vector<StencilService::JobId> Ids;
  Ids.reserve(Count);
  for (int I = 0; I != Count; ++I)
    Ids.push_back(Service.submit(Req));
  for (StencilService::JobId Id : Ids) {
    StencilService::JobResult R = Service.wait(Id);
    if (!R.Ok) {
      std::fprintf(stderr, "bench_backends: job failed: %s\n",
                   R.Message.c_str());
      std::abort();
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Begin)
      .count();
}

/// Best steady-state Mflops of \p Backend over a few timeOnly repeats.
double steadyMflops(const ExecutionBackend &Backend,
                    const CompiledStencil &Compiled, int SubRows,
                    int SubCols) {
  double Best = 0.0;
  for (int R = 0; R != SteadyRepeats; ++R) {
    Expected<TimingReport> Report =
        Backend.timeOnly(Compiled, SubRows, SubCols, Iterations);
    if (!Report) {
      std::fprintf(stderr, "bench_backends: timeOnly failed: %s\n",
                   Report.error().message().c_str());
      std::abort();
    }
    Best = std::max(Best, Report->measuredMflops());
  }
  return Best;
}

/// One njit-vs-native comparison workload.
struct RatioWorkload {
  std::string Name;
  CompiledStencil Compiled;
  int SubRows, SubCols;
};

/// The seismic loop body plus every compilable examples/stencils
/// source, compiled for \p Config.
std::vector<RatioWorkload> ratioWorkloads(const MachineConfig &Config) {
  namespace fs = std::filesystem;
  std::vector<RatioWorkload> W;
  // The Gordon Bell production loop's stencil at bench_seismic's
  // per-node shape.
  W.push_back({"seismic", compilePattern(Config, PatternId::Cross9R2), 64,
               128});
#ifdef CMCC_EXAMPLES_DIR
  ConvolutionCompiler CC(Config);
  CC.setAllowMultipleSources(true);
  std::vector<fs::path> Files;
  for (const fs::directory_entry &E : fs::directory_iterator(CMCC_EXAMPLES_DIR))
    Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  for (const fs::path &Path : Files) {
    std::string Ext = Path.extension().string();
    if (Ext != ".f90" && Ext != ".lisp")
      continue;
    std::ifstream In(Path);
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    std::string Source = Buffer.str();
    std::optional<CompiledStencil> Compiled;
    if (Ext == ".lisp") {
      DiagnosticEngine Diags;
      Compiled = CC.compileDefStencil(Source, Diags);
    } else {
      DiagnosticEngine SubDiags;
      Compiled = CC.compileSubroutine(Source, SubDiags);
      if (!Compiled) {
        DiagnosticEngine AsgDiags;
        Compiled = CC.compileAssignment(Source, AsgDiags);
      }
    }
    if (!Compiled) {
      std::fprintf(stderr, "bench_backends: cannot compile %s\n",
                   Path.c_str());
      std::abort();
    }
    W.push_back({"examples/" + Path.filename().string(), *Compiled, 64, 64});
  }
#endif
  return W;
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);

  // A fresh artifact-cache directory so njit's cold rows pay the real
  // emit + cc + dlopen cost, not a previous run's warm disk tier.
  const std::string NjitCacheDir =
      "/tmp/cmcc_bench_njit." + std::to_string(::getpid());
  ::setenv("CMCC_NJIT_CACHE_DIR", NjitCacheDir.c_str(), 1);

  MachineConfig Config = MachineConfig::testMachine16();
  TextTable T;
  T.setHeader({"backend", "pattern", "cold(ms)", "warm(ms/job)",
               "throughput(Mflops)", "timing"});
  BenchJsonWriter Json("backends");

  for (const std::string &Name : availableBackendNames()) {
    if (!isBackendAvailable(Name)) {
      std::fprintf(stderr, "bench_backends: skipping unavailable backend %s\n",
                   Name.c_str());
      continue;
    }
    std::unique_ptr<ExecutionBackend> Backend = createBackend(Name, Config);
    if (!Backend) {
      std::fprintf(stderr, "bench_backends: unknown backend %s\n",
                   Name.c_str());
      return 1;
    }
    const char *Timing = Backend->reportsWallClock() ? "wall" : "sim";

    // A fresh service per backend: cold really means cold.
    StencilService::Options Opts;
    Opts.Workers = 4;
    Opts.Backend = Name;
    StencilService Service(Config, Opts);

    double ColdTotal = 0.0, WarmTotal = 0.0;
    for (PatternId Id : allPatterns()) {
      StencilService::JobRequest Req;
      Req.Kind = StencilService::SourceKind::FortranSubroutine;
      Req.Source = patternFortranSource(Id);
      Req.SubRows = SubRows;
      Req.SubCols = SubCols;
      Req.Iterations = Iterations;

      double Cold = hostSeconds(Service, Req, 1);
      double Warm = hostSeconds(Service, Req, WarmRounds) / WarmRounds;
      ColdTotal += Cold;
      WarmTotal += Warm;

      // Steady state: direct timeOnly on the backend, best of a few
      // repeats (for cm2 every repeat is the same analytic number).
      CompiledStencil Compiled = compilePattern(Config, Id);
      double BestMflops = 0.0, BestSeconds = 0.0;
      for (int R = 0; R != SteadyRepeats; ++R) {
        Expected<TimingReport> Report =
            Backend->timeOnly(Compiled, SubRows, SubCols, Iterations);
        if (!Report) {
          std::fprintf(stderr, "bench_backends: timeOnly failed: %s\n",
                       Report.error().message().c_str());
          return 1;
        }
        if (Report->measuredMflops() > BestMflops) {
          BestMflops = Report->measuredMflops();
          BestSeconds = Report->elapsedSeconds();
        }
      }

      std::string Base = Name + "/" + patternName(Id);
      T.addRow({Name, patternName(Id), formatFixed(Cold * 1e3, 3),
                formatFixed(Warm * 1e3, 3), formatFixed(BestMflops, 1),
                Timing});
      Json.addRow(Base + "/service_cold", BestMflops, BestSeconds, Cold);
      Json.addRow(Base + "/service_warm", BestMflops, BestSeconds, Warm);
      Json.addRow(Base + "/steady", BestMflops, BestSeconds,
                  Backend->reportsWallClock() ? BestSeconds : -1.0);
    }

    // The warm path must never have touched the compiler again.
    ServiceStats Stats = Service.stats();
    size_t Patterns = allPatterns().size();
    if (Stats.CompilesPerformed != static_cast<long>(Patterns)) {
      std::fprintf(stderr,
                   "bench_backends: %s warm path recompiled (%ld compiles "
                   "for %zu patterns)\n",
                   Name.c_str(), Stats.CompilesPerformed, Patterns);
      return 1;
    }
    Json.addScalar(Name + "/cold_total_ms", ColdTotal * 1e3);
    Json.addScalar(Name + "/warm_mean_ms",
                   WarmTotal / static_cast<double>(Patterns) * 1e3);
  }

  // B1b: the payoff of plan specialization — njit against native,
  // steady state, on the seismic loop body and the examples corpus.
  if (isBackendAvailable("njit")) {
    std::unique_ptr<ExecutionBackend> Native =
        createBackend("native", Config);
    std::unique_ptr<ExecutionBackend> Njit = createBackend("njit", Config);
    TextTable R;
    R.setHeader({"workload", "subgrid", "native(Mflops)", "njit(Mflops)",
                 "njit/native"});
    for (const RatioWorkload &W : ratioWorkloads(Config)) {
      double NativeMflops =
          steadyMflops(*Native, W.Compiled, W.SubRows, W.SubCols);
      double NjitMflops =
          steadyMflops(*Njit, W.Compiled, W.SubRows, W.SubCols);
      double Ratio = NjitMflops / NativeMflops;
      R.addRow({W.Name,
                std::to_string(W.SubRows) + "x" + std::to_string(W.SubCols),
                formatFixed(NativeMflops, 1), formatFixed(NjitMflops, 1),
                formatFixed(Ratio, 2) + "x"});
      Json.addScalar("njit_vs_native/" + W.Name, Ratio);
    }
    std::printf("\n=== B1b: njit vs native, steady state (best of %d) "
                "===\n\n%s\n",
                SteadyRepeats, R.str().c_str());
  }

  std::string Path = Json.write();
  std::printf("\n=== B1: backends compared, %d warm rounds per pattern, "
              "%dx%d subgrids on 16 nodes ===\nbuilt with: %s\n\n%s\n"
              "sim rows model the 7 MHz CM-2; wall rows are this host.\n"
              "%s%s\n",
              WarmRounds, SubRows, SubCols, benchProvenance().c_str(),
              T.str().c_str(), Path.empty() ? "" : "wrote ", Path.c_str());
  std::system(("rm -rf '" + NjitCacheDir + "'").c_str());
  benchmark::Shutdown();
  return 0;
}
