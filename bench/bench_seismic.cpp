//===- bench/bench_seismic.cpp - Gordon Bell seismic rows -----*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment T1b: the seismic (Gordon Bell) rows of the paper's table.
/// The production code's main loop is a nine-point cross stencil plus a
/// term from two time steps before the current one, added in separately
/// (the tenth term), followed by either
///
///   * rolled: two assignment statements that shift the time-step data
///     into the correct variables for the next iteration (full-array
///     copies through the stock code generator) — 11.62 Gflops in the
///     paper; or
///   * unrolled: the main loop unrolled by three so the three time-level
///     arrays exchange roles without copying — 14.88 Gflops.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "baseline/VectorUnitModel.h"

using namespace cmccbench;

namespace {

struct SeismicVariant {
  const char *Name;
  int Iterations;
  double PaperSeconds;
  double PaperGflops;
  bool Rolled;
};

const SeismicVariant Variants[] = {
    {"rolled", 35000, 1919.41, 11.62, true},
    {"unrolled-by-3", 38001, 1627.59, 14.88, false},
};

constexpr int SubRows = 64, SubCols = 128;

/// One seismic time step's timing on the full machine.
TimingReport seismicStep(const MachineConfig &Config, bool Rolled,
                         int Iterations) {
  CompiledStencil Stencil = compilePattern(Config, PatternId::Cross9R2);
  Executor Exec(Config);
  TimingReport Step = Exec.timeOnly(Stencil, SubRows, SubCols, Iterations);

  // The tenth term, added in separately by the stock code generator:
  // one multiply pass and one accumulate pass, 2 useful flops per point.
  VectorUnitCosts Costs;
  long Elements = static_cast<long>(SubRows) * SubCols;
  Step.Cycles.Compute += static_cast<long>(
      2 * (Costs.PassStartupCycles + Costs.CyclesPerElementPerPass * Elements));
  Step.HostSecondsPerIteration +=
      (Config.HostOverheadUsPerCall + 2 * Config.HostOverheadUsPerStrip) *
      1e-6;
  Step.UsefulFlopsPerNodePerIteration += 2 * Elements;

  if (Rolled) {
    // Two whole-array copies to rotate the time levels.
    TimingReport Copy =
        vectorUnitCopyReport(Config, SubRows, SubCols, Iterations);
    Step.Cycles.Compute += 2 * Copy.Cycles.Compute;
    Step.HostSecondsPerIteration += 2 * Copy.HostSecondsPerIteration;
  }
  return Step;
}

} // namespace

int main(int argc, char **argv) {
  MachineConfig Config = MachineConfig::fullMachine2048();

  for (const SeismicVariant &V : Variants)
    registerSimulatedBenchmark(std::string("T1b/seismic/") + V.Name +
                                   "/nodes:2048",
                               seismicStep(Config, V.Rolled, V.Iterations));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  TextTable T;
  BenchJsonWriter Json("seismic");
  T.setHeader({"variant", "iters", "elapsed(s)", "paper(s)", "Gflops",
               "paper", "ratio vs rolled"});
  double RolledG = 0.0;
  for (const SeismicVariant &V : Variants) {
    TimingReport Report = seismicStep(Config, V.Rolled, V.Iterations);
    double G = Report.measuredGflops();
    if (V.Rolled)
      RolledG = G;
    T.addRow({V.Name, std::to_string(V.Iterations),
              formatFixed(Report.elapsedSeconds(), 2),
              formatFixed(V.PaperSeconds, 2), formatFixed(G, 2),
              formatFixed(V.PaperGflops, 2),
              formatFixed(RolledG > 0 ? G / RolledG : 1.0, 3)});
    Json.addRow(std::string("T1b/seismic/") + V.Name + "/nodes:2048",
                Report.measuredMflops(), Report.elapsedSeconds(), -1.0);
  }
  std::string Path = Json.write();
  std::printf("\n=== T1b: seismic finite-difference main loop, 64x128 "
              "subgrids on 2048 nodes ===\n"
              "(9-pt cross + separately-added tenth term; 19 useful "
              "flops/point — see EXPERIMENTS.md\n"
              "for the paper's flop-accounting discrepancy on these rows)\n"
              "\n%s\nPaper's unrolled/rolled speedup: %.3f\n%s%s\n",
              T.str().c_str(), 14.88 / 11.62, Path.empty() ? "" : "wrote ",
              Path.c_str());
  return 0;
}
