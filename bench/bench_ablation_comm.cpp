//===- bench/bench_ablation_comm.cpp - Communication ablation -*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment A1: the paper's communication design choices — the new
/// node-grid primitive that exchanges with all four neighbors at once
/// versus the pre-existing one-direction-per-call primitives, and the
/// skipped corner step for cornerless stencils ("saves a noticeable
/// amount of time for smaller arrays").
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace cmccbench;

namespace {

struct Case {
  PatternId Pattern;
  int Sub;
};

const Case Cases[] = {
    {PatternId::Cross5, 32},    {PatternId::Cross5, 128},
    {PatternId::Square9, 32},   {PatternId::Square9, 128},
    {PatternId::Cross9R2, 32},  {PatternId::Cross9R2, 128},
    {PatternId::Diamond13, 32}, {PatternId::Diamond13, 128},
};

TimingReport runCase(const Case &C, CommPrimitive Primitive,
                     bool AllowCornerSkip) {
  MachineConfig Config = MachineConfig::testMachine16();
  CompiledStencil Compiled = compilePattern(Config, C.Pattern);
  Executor::Options Opts;
  Opts.Primitive = Primitive;
  Opts.AllowCornerSkip = AllowCornerSkip;
  Executor Exec(Config, Opts);
  return Exec.timeOnly(Compiled, C.Sub, C.Sub, 100);
}

void printTable() {
  TextTable T;
  T.setHeader({"stencil", "subgrid", "comm cyc (new)", "comm cyc (legacy)",
               "legacy/new", "Mflops new", "Mflops legacy",
               "corner-skip saves"});
  for (const Case &C : Cases) {
    TimingReport New = runCase(C, CommPrimitive::NodeGridExchange, true);
    TimingReport Legacy = runCase(C, CommPrimitive::LegacyNews, true);
    TimingReport NoSkip = runCase(C, CommPrimitive::NodeGridExchange, false);
    long Saved = NoSkip.Cycles.Communication - New.Cycles.Communication;
    T.addRow({patternName(C.Pattern),
              std::to_string(C.Sub) + "x" + std::to_string(C.Sub),
              std::to_string(New.Cycles.Communication),
              std::to_string(Legacy.Cycles.Communication),
              formatFixed(double(Legacy.Cycles.Communication) /
                              double(New.Cycles.Communication),
                          2),
              formatFixed(New.measuredMflops(), 1),
              formatFixed(Legacy.measuredMflops(), 1),
              Saved == 0 ? std::string("n/a (corners needed)")
                         : std::to_string(Saved) + " cyc"});
  }
  std::printf("\n=== A1: halo-exchange primitive ablation (16 nodes, 100 "
              "iterations) ===\n\n%s\n"
              "The SIMD machine cannot overlap communication with compute "
              "(paper §4.1), so every\ncommunication cycle is pure "
              "overhead; for fixed hardware the comm share shrinks as\n"
              "the square root of the work, which the 32 -> 128 rows "
              "show.\n",
              T.str().c_str());
}

} // namespace

int main(int argc, char **argv) {
  for (const Case &C : Cases) {
    registerSimulatedBenchmark(
        std::string("A1/") + patternName(C.Pattern) + "/" +
            std::to_string(C.Sub) + "/new",
        runCase(C, CommPrimitive::NodeGridExchange, true));
    registerSimulatedBenchmark(
        std::string("A1/") + patternName(C.Pattern) + "/" +
            std::to_string(C.Sub) + "/legacy",
        runCase(C, CommPrimitive::LegacyNews, true));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printTable();
  return 0;
}
