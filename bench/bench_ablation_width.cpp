//===- bench/bench_ablation_width.cpp - Width/register ablation -*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment A2: the register-strategy design space of §5.3–5.4 —
/// multistencil width sweep (1/2/4/8) and per-column ring buffers versus
/// the uniform-rows strawman the paper rejects (for the 13-point diamond
/// at width 4: 28 vs 40 registers).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/Multistencil.h"
#include "core/RingBufferPlan.h"

using namespace cmccbench;

namespace {

void printWidthSweep() {
  MachineConfig Config = MachineConfig::testMachine16();
  TextTable T;
  T.setHeader({"stencil", "width", "registers", "unroll", "scratch parts",
               "ops/line", "Mflops@128x128", "extrap Gf@2048"});
  for (PatternId Id : allPatterns()) {
    CompiledStencil Compiled = compilePattern(Config, Id);
    for (int W : {1, 2, 4, 8}) {
      const WidthSchedule *Sched = Compiled.withWidth(W);
      if (!Sched) {
        T.addRow({patternName(Id), std::to_string(W),
                  "- (does not fit: " +
                      std::to_string(
                          Multistencil::build(Compiled.Spec, W)
                              .naturalRegisterCount()) +
                      " needed)",
                  "-", "-", "-", "-", "-"});
        continue;
      }
      Executor::Options Opts;
      Opts.ForceWidth = W;
      Opts.Mode = Executor::FunctionalMode::None;
      Executor Exec(Config, Opts);
      TimingReport Report = Exec.timeOnly(Compiled, 128, 128, 100);
      T.addRow({patternName(Id), std::to_string(W),
                std::to_string(Sched->registersUsed()),
                std::to_string(Sched->Regs.plan().UnrollFactor),
                std::to_string(Sched->scratchPartsUsed()),
                std::to_string(Sched->opsPerLine()),
                formatFixed(Report.measuredMflops(), 1),
                formatFixed(Report.extrapolatedGflops(2048), 2)});
    }
  }
  std::printf("\n=== A2a: multistencil width sweep (16 nodes, 128x128 "
              "subgrids) ===\n\n%s\n",
              T.str().c_str());
}

void printRingBufferComparison() {
  TextTable T;
  T.setHeader({"stencil", "width", "per-column regs", "uniform-rows regs",
               "saved", "per-column LCM", "uniform LCM"});
  for (PatternId Id : allPatterns()) {
    StencilSpec Spec = makePattern(Id);
    for (int W : {4, 8}) {
      Multistencil MS = Multistencil::build(Spec, W);
      RingBufferPlan Uniform = RingBufferPlan::uniformPlan(MS);
      auto PerColumn = RingBufferPlan::plan(MS, 31);
      T.addRow({patternName(Id), std::to_string(W),
                PerColumn ? std::to_string(PerColumn->DataRegisters)
                          : "(" + std::to_string(MS.naturalRegisterCount()) +
                                ", no fit)",
                std::to_string(Uniform.DataRegisters),
                std::to_string(Uniform.DataRegisters -
                               (PerColumn ? PerColumn->DataRegisters
                                          : MS.naturalRegisterCount())),
                PerColumn ? std::to_string(PerColumn->UnrollFactor) : "-",
                std::to_string(Uniform.UnrollFactor)});
    }
  }
  std::printf("=== A2b: per-column ring buffers vs the uniform-rows "
              "strawman (§5.4) ===\n"
              "(paper: diamond13 at width 4 needs 28 registers per-column "
              "but 40 uniform)\n\n%s\n",
              T.str().c_str());
}

} // namespace

int main(int argc, char **argv) {
  MachineConfig Config = MachineConfig::testMachine16();
  for (PatternId Id : allPatterns()) {
    CompiledStencil Compiled = compilePattern(Config, Id);
    for (int W : {1, 2, 4, 8}) {
      if (!Compiled.withWidth(W))
        continue;
      Executor::Options Opts;
      Opts.ForceWidth = W;
      Opts.Mode = Executor::FunctionalMode::None;
      Executor Exec(Config, Opts);
      registerSimulatedBenchmark(std::string("A2/") + patternName(Id) +
                                     "/width:" + std::to_string(W),
                                 Exec.timeOnly(Compiled, 128, 128, 100));
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printWidthSweep();
  printRingBufferComparison();
  return 0;
}
