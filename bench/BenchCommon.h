//===- bench/BenchCommon.h - Shared benchmark helpers ---------*- C++ -*-===//
//
// Part of the CMCC project (PLDI 1991 convolution-compiler reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the benchmark binaries: the paper's published rows
/// (§7, measurements of 21 Nov / 7 Dec 1990), and a runner that compiles
/// a pattern and produces its simulated TimingReport.
///
/// The figure of merit is *simulated machine time* at the paper's 7 MHz
/// clock — the quantity the paper reports. Each google-benchmark entry
/// reports that simulated time via manual timing, so the benchmark
/// output table reads like the paper's; a paper-vs-model comparison
/// table is printed after the run.
///
//===----------------------------------------------------------------------===//

#ifndef CMCC_BENCH_BENCHCOMMON_H
#define CMCC_BENCH_BENCHCOMMON_H

#include "core/Compiler.h"
#include "runtime/Executor.h"
#include "stencil/PatternLibrary.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"
#include <benchmark/benchmark.h>
#include <cstdio>
#include <string>

namespace cmccbench {

using namespace cmcc;

/// One published row of the paper's results table.
struct PaperRow {
  PatternId Pattern;
  int SubRows, SubCols;
  int Nodes;
  int Iterations;
  double ElapsedSeconds; ///< Paper's measured elapsed time.
  double Mflops;         ///< Paper's measured rate.
  double ExtrapolatedGflops; ///< Paper's 2048-node extrapolation (0 = n/a).
};

/// The 16-node rows (measured 21 Nov 90).
inline const PaperRow PaperRows16[] = {
    {PatternId::Cross5, 64, 128, 16, 250, 4.54, 44.6, 5.31},
    {PatternId::Cross5, 128, 256, 16, 100, 6.78, 69.5, 8.90},
    {PatternId::Cross5, 256, 256, 16, 100, 13.00, 72.8, 9.29},
    {PatternId::Square9, 64, 64, 16, 500, 8.10, 68.8, 8.80},
    {PatternId::Square9, 64, 128, 16, 250, 6.07, 91.7, 11.74},
    {PatternId::Square9, 128, 128, 16, 250, 12.40, 89.8, 11.50},
    {PatternId::Square9, 128, 256, 16, 100, 10.26, 86.7, 11.10},
    {PatternId::Square9, 256, 256, 16, 100, 20.12, 88.6, 11.34},
    {PatternId::Cross9R2, 64, 64, 16, 500, 9.81, 56.8, 7.27},
    {PatternId::Cross9R2, 64, 128, 16, 250, 8.19, 68.0, 8.70},
    {PatternId::Cross9R2, 128, 128, 16, 250, 15.30, 72.9, 9.34},
    {PatternId::Cross9R2, 128, 256, 16, 100, 10.44, 85.3, 10.92},
    {PatternId::Cross9R2, 256, 256, 16, 100, 20.80, 85.6, 10.95},
    {PatternId::Diamond13, 64, 64, 16, 500, 11.40, 71.6, 9.16},
    {PatternId::Diamond13, 64, 128, 16, 250, 9.98, 82.0, 10.50},
    {PatternId::Diamond13, 128, 128, 16, 250, 18.70, 87.7, 11.23},
    {PatternId::Diamond13, 128, 256, 16, 100, 15.30, 85.6, 10.95},
    {PatternId::Diamond13, 256, 256, 16, 100, 30.51, 85.9, 11.00},
};

/// The full-machine rows (measured 7 Dec 90; the paper reports
/// 13.65 / 14.95 Gflops on the 2,048-node machine).
inline const PaperRow PaperRows2048[] = {
    {PatternId::Diamond13, 128, 256, 2048, 100, 12.30, 13650.0, 0.0},
    {PatternId::Diamond13, 256, 256, 2048, 100, 22.43, 14950.0, 0.0},
};

/// Compiles \p Id for \p Config (aborts on failure — the paper patterns
/// always compile).
inline CompiledStencil compilePattern(const MachineConfig &Config,
                                      PatternId Id) {
  ConvolutionCompiler CC(Config);
  Expected<CompiledStencil> Compiled = CC.compile(makePattern(Id));
  if (!Compiled) {
    std::fprintf(stderr, "failed to compile %s: %s\n", patternName(Id),
                 Compiled.error().message().c_str());
    std::abort();
  }
  return Compiled.takeValue();
}

/// Simulated timing of \p Id on a machine with \p Nodes nodes (node grid
/// chosen as in the real machines: 4x4 or 64x32).
inline TimingReport simulateRow(const PaperRow &Row,
                                Executor::Options Opts = {}) {
  MachineConfig Config = Row.Nodes == 16 ? MachineConfig::testMachine16()
                                         : MachineConfig::fullMachine2048();
  CompiledStencil Compiled = compilePattern(Config, Row.Pattern);
  Executor Exec(Config, Opts);
  return Exec.timeOnly(Compiled, Row.SubRows, Row.SubCols, Row.Iterations);
}

/// Registers one google-benchmark entry whose manual time is the
/// simulated elapsed seconds of \p Report's whole run.
inline void registerSimulatedBenchmark(const std::string &Name,
                                       TimingReport Report) {
  benchmark::RegisterBenchmark(Name.c_str(),
                               [Report](benchmark::State &State) {
                                 for (auto _ : State) {
                                   (void)_;
                                   State.SetIterationTime(
                                       Report.elapsedSeconds());
                                 }
                                 State.counters["Mflops"] =
                                     Report.measuredMflops();
                                 State.counters["sim_s"] =
                                     Report.elapsedSeconds();
                               })
      ->Iterations(1)
      ->UseManualTime();
}

} // namespace cmccbench

#endif // CMCC_BENCH_BENCHCOMMON_H
